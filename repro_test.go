package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// TestFacadeEndToEnd walks the whole public API: parse a bundled machine,
// compile a kernel, assemble, marshal/unmarshal, disassemble, simulate,
// synthesize and evaluate.
func TestFacadeEndToEnd(t *testing.T) {
	srcs := repro.Machines()
	for _, name := range []string{"toy", "spam", "spam2", "risc32"} {
		if _, ok := srcs[name]; !ok {
			t.Fatalf("machine %s missing", name)
		}
	}

	d, err := repro.ParseISDL(srcs["spam2"])
	if err != nil {
		t.Fatal(err)
	}
	if text := repro.FormatISDL(d); !strings.Contains(text, "Machine spam2;") {
		t.Fatal("FormatISDL lost the header")
	}

	asmText, err := repro.Compile(d, "var x, y; x = 6; y = x + x + 2;")
	if err != nil {
		t.Fatal(err)
	}
	p, err := repro.Assemble(d, asmText)
	if err != nil {
		t.Fatal(err)
	}

	// Object-format round trip.
	p2, err := repro.UnmarshalProgram(d, repro.MarshalProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Words) != len(p.Words) {
		t.Fatal("XBIN round trip changed the program")
	}
	if repro.Disassemble(p) == "" {
		t.Fatal("empty disassembly")
	}

	sim := repro.NewSimulator(d)
	if err := sim.Load(p2); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	depth := d.StorageByName["RF"].Depth
	if got := sim.State().Get("RF", depth-2).Uint64(); got != 14 {
		t.Fatalf("y = %d, want 14", got)
	}

	hw, err := repro.Synthesize(d, nil, repro.DefaultSynthesisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hw.VerilogLines == 0 || hw.CycleNs <= 0 {
		t.Fatalf("synthesis result: %+v", hw)
	}
	if repro.LSI10K().Name != "lsi10k" {
		t.Fatal("default library")
	}

	eval, err := repro.Evaluate(d, p, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if eval.RuntimeUs <= 0 {
		t.Fatalf("evaluation: %+v", eval)
	}
}

// TestFacadeExplorer runs a one-iteration exploration through the facade.
func TestFacadeExplorer(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration is slow")
	}
	ex := &repro.Explorer{
		Base:     repro.Machines()["spam2"],
		Kernel:   "var x; x = 41; x = x + 1;",
		MaxIters: 1,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Initial == nil || res.Final == nil {
		t.Fatal("incomplete result")
	}
}
