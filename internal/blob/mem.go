package blob

import "sync"

// Mem is the in-process Store: a mutex-guarded map. It is the
// single-process behavior the stage cache always had, and the test
// double for everything layered on Store.
type Mem struct {
	mu sync.RWMutex
	m  map[string]map[Key][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: map[string]map[Key][]byte{}} }

// Get implements Store.
func (s *Mem) Get(ns string, key Key) ([]byte, error) {
	if err := checkNS(ns); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[ns][key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Store.
func (s *Mem) Put(ns string, key Key, data []byte) error {
	if err := checkNS(ns); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.m[ns]
	if t == nil {
		t = map[Key][]byte{}
		s.m[ns] = t
	}
	t[key] = cp
	return nil
}

// Has implements Store.
func (s *Mem) Has(ns string, key Key) (bool, error) {
	if err := checkNS(ns); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.m[ns][key]
	return ok, nil
}

// Len returns the total number of blobs across namespaces (tests).
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, t := range s.m {
		n += len(t)
	}
	return n
}
