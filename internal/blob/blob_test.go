package blob

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
)

// stores builds one of each implementation over fresh backing state; the
// HTTP store is a client against a Handler over a Dir store, exactly the
// cmd/served topology.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	d, err := NewDir(filepath.Join(t.TempDir(), "cas"))
	if err != nil {
		t.Fatal(err)
	}
	backing, err := NewDir(filepath.Join(t.TempDir(), "remote"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(backing))
	t.Cleanup(srv.Close)
	return map[string]Store{"mem": NewMem(), "dir": d, "http": NewHTTP(srv.URL)}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := KeyOf("compile", "machine A", "kernel 1")
			if _, err := s.Get("compile.v2", k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store = %v, want ErrNotFound", err)
			}
			if ok, err := s.Has("compile.v2", k); err != nil || ok {
				t.Fatalf("Has on empty store = %v, %v", ok, err)
			}
			want := []byte(`{"compile":"add R1, R2, R3"}`)
			if err := s.Put("compile.v2", k, want); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("compile.v2", k)
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v; want %q", got, err, want)
			}
			if ok, err := s.Has("compile.v2", k); err != nil || !ok {
				t.Fatalf("Has after Put = %v, %v; want true", ok, err)
			}
			// Same key, different namespace: separate entry.
			if _, err := s.Get("simulate.v2", k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("namespaces bleed: %v", err)
			}
			// Idempotent re-Put.
			if err := s.Put("compile.v2", k, want); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
		})
	}
}

func TestStoreRejectsBadNamespace(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k := KeyOf("x")
			for _, ns := range []string{"", "..", "a/b", "a b", ".hidden"} {
				if err := s.Put(ns, k, []byte("x")); err == nil {
					t.Errorf("Put accepted namespace %q", ns)
				}
			}
		})
	}
}

func TestKeyOfLengthPrefixed(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("concatenation collision")
	}
	k := KeyOf("stage", "input")
	back, err := ParseKey(k.String())
	if err != nil || back != k {
		t.Fatalf("ParseKey(String) = %v, %v", back, err)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

func TestOpenSpecs(t *testing.T) {
	if s, err := Open("mem"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*Mem); !ok {
		t.Fatalf("Open(mem) = %T", s)
	}
	dir := filepath.Join(t.TempDir(), "deep", "store")
	s, err := Open("dir:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Dir); !ok {
		t.Fatalf("Open(dir:) = %T", s)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("dir store root not created: %v", err)
	}
	if s, err := Open("http://localhost:1"); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*HTTP); !ok {
		t.Fatalf("Open(http://) = %T", s)
	}
	if _, err := Open("s3://bucket"); err == nil {
		t.Fatal("Open accepted unknown scheme")
	}
}

func TestStoreConcurrent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						// Writers of the same key carry the same bytes —
						// the store contract — while distinct keys mix.
						k := KeyOf("item", fmt.Sprint(i))
						want := []byte(fmt.Sprintf("blob %d", i))
						if err := s.Put("race.test", k, want); err != nil {
							t.Error(err)
							return
						}
						got, err := s.Get("race.test", k)
						if err != nil || !bytes.Equal(got, want) {
							t.Errorf("Get(%d) = %q, %v", i, got, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestDirStoreTwoProcesses proves the cross-process contract: a writer
// process (a re-exec of this test binary) populates a directory store,
// and the reader process (this one) hits every blob.
func TestDirStoreTwoProcesses(t *testing.T) {
	root := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestDirStoreWriterProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "BLOB_TEST_WRITER_ROOT="+root)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("writer process failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("PASS")) {
		t.Fatalf("writer process did not pass:\n%s", out)
	}
	s, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		got, err := s.Get("twoproc", KeyOf("entry", fmt.Sprint(i)))
		if err != nil {
			t.Fatalf("reader miss on entry %d: %v", i, err)
		}
		var v struct{ N int }
		if err := json.Unmarshal(got, &v); err != nil || v.N != i {
			t.Fatalf("entry %d = %q, %v", i, got, err)
		}
	}
}

// TestDirStoreWriterProcess is the writer half of
// TestDirStoreTwoProcesses; it only runs when re-executed with the
// environment set.
func TestDirStoreWriterProcess(t *testing.T) {
	root := os.Getenv("BLOB_TEST_WRITER_ROOT")
	if root == "" {
		t.Skip("writer-process helper; run via TestDirStoreTwoProcesses")
	}
	s, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		data, _ := json.Marshal(struct{ N int }{i})
		if err := s.Put("twoproc", KeyOf("entry", fmt.Sprint(i)), data); err != nil {
			t.Fatal(err)
		}
	}
}
