package blob

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// blobsPrefix is the URL tree both the client and Handler agree on; the
// server (cmd/served, or any process mounting Handler there) is the
// shared front door two explorers on different machines meet at.
const blobsPrefix = "/v1/blobs/"

// maxBlobBytes bounds one blob on the wire (and in a Handler-backed
// server's memory). Stage artifacts are a few KB of JSON; aot simulator
// binaries are a few MB; 64 MiB is comfortably past both.
const maxBlobBytes = 64 << 20

// HTTP is the remote Store client: GET/PUT/HEAD against
// base + /v1/blobs/{ns}/{key}.
type HTTP struct {
	base   string
	client *http.Client
}

// NewHTTP returns a client for the store served at base
// (e.g. "http://build-host:8344"). A trailing slash is tolerated.
func NewHTTP(base string) *HTTP {
	return &HTTP{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (s *HTTP) url(ns string, key Key) string {
	return s.base + blobsPrefix + ns + "/" + key.String()
}

// Get implements Store.
func (s *HTTP) Get(ns string, key Key) ([]byte, error) {
	if err := checkNS(ns); err != nil {
		return nil, err
	}
	resp, err := s.client.Get(s.url(ns, key))
	if err != nil {
		return nil, fmt.Errorf("blob: http get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
		if err != nil {
			return nil, fmt.Errorf("blob: http get: %w", err)
		}
		if len(data) > maxBlobBytes {
			return nil, fmt.Errorf("blob: http get %s/%s: blob exceeds %d bytes", ns, key, maxBlobBytes)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("blob: %s/%s: %w", ns, key, ErrNotFound)
	default:
		return nil, fmt.Errorf("blob: http get %s/%s: %s", ns, key, resp.Status)
	}
}

// Put implements Store.
func (s *HTTP) Put(ns string, key Key, data []byte) error {
	if err := checkNS(ns); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, s.url(ns, key), strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("blob: http put: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("blob: http put: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("blob: http put %s/%s: %s", ns, key, resp.Status)
	}
	return nil
}

// Has implements Store.
func (s *HTTP) Has(ns string, key Key) (bool, error) {
	if err := checkNS(ns); err != nil {
		return false, err
	}
	resp, err := s.client.Head(s.url(ns, key))
	if err != nil {
		return false, fmt.Errorf("blob: http has: %w", err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("blob: http has %s/%s: %s", ns, key, resp.Status)
	}
}

// Handler serves a Store over the /v1/blobs/{ns}/{key} tree the HTTP
// client speaks: GET returns the blob (404 when absent), HEAD probes it,
// PUT stores the body (idempotently; 204 on success). Mount it at the
// server root — it routes by full path, so it composes with other
// handlers on the same mux.
func Handler(s Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(blobsPrefix+"{ns}/{key}", func(w http.ResponseWriter, r *http.Request) {
		ns := r.PathValue("ns")
		if err := checkNS(ns); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key, err := ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := s.Get(ns, key)
			if errors.Is(err, ErrNotFound) {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		case http.MethodHead:
			ok, err := s.Has(ns, key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodPut:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			if err := s.Put(ns, key, data); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
