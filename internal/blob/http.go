package blob

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// blobsPrefix is the URL tree both the client and Handler agree on; the
// server (cmd/served, or any process mounting Handler there) is the
// shared front door two explorers on different machines meet at.
const blobsPrefix = "/v1/blobs/"

// maxBlobBytes bounds one blob on the wire (and in a Handler-backed
// server's memory). Stage artifacts are a few KB of JSON; aot simulator
// binaries are a few MB; 64 MiB is comfortably past both.
const maxBlobBytes = 64 << 20

// HTTP is the remote Store client: GET/PUT/HEAD against
// base + /v1/blobs/{ns}/{key}.
type HTTP struct {
	base   string
	client *http.Client

	mu    sync.Mutex
	trace obs.TraceContext
}

// NewHTTP returns a client for the store served at base
// (e.g. "http://build-host:8344"). A trailing slash is tolerated.
func NewHTTP(base string) *HTTP {
	return &HTTP{
		base:   strings.TrimSuffix(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (s *HTTP) url(ns string, key Key) string {
	return s.base + blobsPrefix + ns + "/" + key.String()
}

// SetTrace makes every subsequent request carry tc in the X-Repro-Trace
// header, so a traced server (HandlerObs) records its side of each blob
// transfer under the caller's trace. An invalid context clears it; a
// nil client is a no-op. Safe for concurrent use with requests.
func (s *HTTP) SetTrace(tc obs.TraceContext) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.trace = tc
	s.mu.Unlock()
}

// newRequest builds a request with the trace header (when set) injected.
func (s *HTTP) newRequest(method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	tc := s.trace
	s.mu.Unlock()
	tc.Inject(req.Header)
	return req, nil
}

// Get implements Store.
func (s *HTTP) Get(ns string, key Key) ([]byte, error) {
	if err := checkNS(ns); err != nil {
		return nil, err
	}
	req, err := s.newRequest(http.MethodGet, s.url(ns, key), nil)
	if err != nil {
		return nil, fmt.Errorf("blob: http get: %w", err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("blob: http get: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
		if err != nil {
			return nil, fmt.Errorf("blob: http get: %w", err)
		}
		if len(data) > maxBlobBytes {
			return nil, fmt.Errorf("blob: http get %s/%s: blob exceeds %d bytes", ns, key, maxBlobBytes)
		}
		return data, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("blob: %s/%s: %w", ns, key, ErrNotFound)
	default:
		return nil, fmt.Errorf("blob: http get %s/%s: %s", ns, key, resp.Status)
	}
}

// Put implements Store.
func (s *HTTP) Put(ns string, key Key, data []byte) error {
	if err := checkNS(ns); err != nil {
		return err
	}
	req, err := s.newRequest(http.MethodPut, s.url(ns, key), strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("blob: http put: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("blob: http put: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("blob: http put %s/%s: %s", ns, key, resp.Status)
	}
	return nil
}

// Has implements Store.
func (s *HTTP) Has(ns string, key Key) (bool, error) {
	if err := checkNS(ns); err != nil {
		return false, err
	}
	req, err := s.newRequest(http.MethodHead, s.url(ns, key), nil)
	if err != nil {
		return false, fmt.Errorf("blob: http has: %w", err)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false, fmt.Errorf("blob: http has: %w", err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("blob: http has %s/%s: %s", ns, key, resp.Status)
	}
}

// Handler serves a Store over the /v1/blobs/{ns}/{key} tree the HTTP
// client speaks: GET returns the blob (404 when absent), HEAD probes it,
// PUT stores the body (idempotently; 204 on success). Mount it at the
// server root — it routes by full path, so it composes with other
// handlers on the same mux.
func Handler(s Store) http.Handler { return HandlerObs(s, nil) }

// HandlerObs is Handler with server-side observability: every request
// bumps a blob.http.<method> counter and observes a blob.http.<method>.ns
// latency histogram, and requests carrying an X-Repro-Trace header (see
// HTTP.SetTrace) additionally record one blob.<method> span tagged with
// the namespace, key prefix, and remote trace context — so a traced
// client's transfers are visible on the server's own timeline without
// flooding the registry with a span per untraced request. A nil registry
// is exactly Handler.
func HandlerObs(s Store, reg *obs.Registry) http.Handler {
	inner := blobMux(s)
	if reg == nil {
		return inner
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		method := strings.ToLower(r.Method)
		start := time.Now()
		var sp *obs.Span
		if tc, ok := obs.ExtractTrace(r.Header); ok {
			sp = reg.StartSpanLane("blob."+method, blobSpanLane)
			sp.SetArg("path", strings.TrimPrefix(r.URL.Path, blobsPrefix))
			sp.SetArg("remote", tc.String())
		}
		inner.ServeHTTP(w, r)
		sp.End()
		reg.Counter("blob.http." + method).Inc()
		reg.Histogram("blob.http." + method + ".ns").Observe(time.Since(start))
	})
}

// blobSpanLane keeps server-side blob spans off the job/worker lanes in
// the exported trace.
const blobSpanLane = 9

// blobMux is the uninstrumented request handler behind Handler and
// HandlerObs.
func blobMux(s Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(blobsPrefix+"{ns}/{key}", func(w http.ResponseWriter, r *http.Request) {
		ns := r.PathValue("ns")
		if err := checkNS(ns); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key, err := ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, err := s.Get(ns, key)
			if errors.Is(err, ErrNotFound) {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
		case http.MethodHead:
			ok, err := s.Has(ns, key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodPut:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
				return
			}
			if err := s.Put(ns, key, data); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}
