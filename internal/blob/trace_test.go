package blob

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

// TestHTTPSetTraceHeader: after SetTrace, every client verb carries the
// X-Repro-Trace header; before it (and after clearing), none do.
func TestHTTPSetTraceHeader(t *testing.T) {
	var headers []string
	backing := NewMem()
	inner := Handler(backing)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		headers = append(headers, r.Header.Get(obs.TraceHeader))
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	c := NewHTTP(srv.URL)
	k := KeyOf("trace", "test")
	if err := c.Put("compile.v2", k, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if headers[0] != "" {
		t.Errorf("untraced request carried header %q", headers[0])
	}

	tc := obs.TraceContext{TraceID: 0xabc, SpanID: 7}
	c.SetTrace(tc)
	if _, err := c.Get("compile.v2", k); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Has("compile.v2", k); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("compile.v2", KeyOf("trace", "second"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, h := range headers[1:] {
		if h != tc.String() {
			t.Errorf("traced request header = %q, want %q", h, tc.String())
		}
	}

	c.SetTrace(obs.TraceContext{}) // invalid clears
	if _, err := c.Has("compile.v2", k); err != nil {
		t.Fatal(err)
	}
	if last := headers[len(headers)-1]; last != "" {
		t.Errorf("cleared client still sends header %q", last)
	}

	var nilClient *HTTP
	nilClient.SetTrace(tc) // must not panic
}

// TestHandlerObsInstrumentation: counters and latency histograms on
// every request; spans only for requests carrying a trace context.
func TestHandlerObsInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(HandlerObs(NewMem(), reg))
	t.Cleanup(srv.Close)

	c := NewHTTP(srv.URL)
	k := KeyOf("obs", "test")
	if err := c.Put("compile.v2", k, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("compile.v2", k); err != nil {
		t.Fatal(err)
	}
	if len(reg.Spans()) != 0 {
		t.Errorf("untraced requests recorded %d spans, want 0", len(reg.Spans()))
	}

	c.SetTrace(obs.TraceContext{TraceID: 0xfeed, SpanID: 1})
	if _, err := c.Get("compile.v2", k); err != nil {
		t.Fatal(err)
	}

	counters := reg.Counters()
	if counters["blob.http.get"] != 2 || counters["blob.http.put"] != 1 {
		t.Errorf("counters = %v, want 2 gets and 1 put", counters)
	}
	if reg.Histograms()["blob.http.get.ns"].Count != 2 {
		t.Errorf("get latency histogram count = %d, want 2", reg.Histograms()["blob.http.get.ns"].Count)
	}
	spans := reg.Spans()
	if len(spans) != 1 {
		t.Fatalf("traced request recorded %d spans, want exactly 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "blob.get" || sp.Args["remote"] == "" {
		t.Errorf("span = %+v, want blob.get tagged with the remote trace", sp)
	}
}
