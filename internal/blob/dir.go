package blob

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/atomicfile"
)

// Dir is the local-directory CAS: one file per blob at
// root/ns/kk/keyhex (kk = the first two hex digits, a fan-out so no
// directory grows unbounded). Writes go through internal/atomicfile's
// temp+fsync+rename, so any number of processes can share the root
// concurrently — a reader either sees a complete blob or none, and
// same-key writers race benignly because equal keys carry equal bytes.
type Dir struct {
	root string
}

// NewDir opens (creating if needed) a directory store rooted at root.
func NewDir(root string) (*Dir, error) {
	if root == "" {
		return nil, errors.New("blob: empty dir store path")
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("blob: dir store: %w", err)
	}
	return &Dir{root: root}, nil
}

// Root returns the store's root directory.
func (s *Dir) Root() string { return s.root }

// path maps ns/key to the blob's file path.
func (s *Dir) path(ns string, key Key) string {
	hex := key.String()
	return filepath.Join(s.root, ns, hex[:2], hex)
}

// Get implements Store.
func (s *Dir) Get(ns string, key Key) ([]byte, error) {
	if err := checkNS(ns); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.path(ns, key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("blob: %s/%s: %w", ns, key, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("blob: dir get: %w", err)
	}
	return data, nil
}

// Put implements Store.
func (s *Dir) Put(ns string, key Key, data []byte) error {
	if err := checkNS(ns); err != nil {
		return err
	}
	p := s.path(ns, key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("blob: dir put: %w", err)
	}
	if err := atomicfile.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("blob: dir put: %w", err)
	}
	return nil
}

// Has implements Store.
func (s *Dir) Has(ns string, key Key) (bool, error) {
	if err := checkNS(ns); err != nil {
		return false, err
	}
	_, err := os.Stat(s.path(ns, key))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("blob: dir has: %w", err)
	}
	return true, nil
}
