// Package blob is the shared content-addressed artifact substrate
// (ROADMAP item 2): a Store holds immutable blobs under a SHA-256 key
// inside a flat namespace (one namespace per pipeline stage or artifact
// family), so any artifact produced by one process — a compiled kernel,
// a simulation measurement, a synthesized cost model, a built aot
// simulator binary — is available to every other process, on this
// machine or another. Three implementations ship:
//
//   - Mem: in-process map, the single-process behavior the StageCache
//     always had.
//   - Dir: one file per blob under a root directory, written atomically
//     (temp+fsync+rename via internal/atomicfile) so concurrent
//     processes sharing the directory never observe a partial blob.
//   - HTTP: a thin remote client speaking GET/PUT/HEAD against the
//     /v1/blobs/{ns}/{key} tree that Handler serves (cmd/served mounts
//     it), so explorers on different machines share every artifact.
//
// Keys are produced by the callers (internal/core stage keys hash the
// exact inputs a stage reads; internal/gensim keys by description
// fingerprint), so the store itself is a dumb, durable map: a blob's
// bytes are fully determined by its key, writes of the same key are
// idempotent, and entries never expire.
package blob

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Key addresses one blob inside a namespace: a SHA-256 digest of the
// inputs that determine the blob's content.
type Key [sha256.Size]byte

// String renders the key as lowercase hex (the on-disk and on-wire form).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey decodes a 64-character hex key.
func ParseKey(s string) (Key, error) {
	var k Key
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != len(k) {
		return k, fmt.Errorf("blob: bad key %q", s)
	}
	copy(k[:], raw)
	return k, nil
}

// KeyOf hashes the parts into a Key. Parts are length-prefixed, so no
// two distinct part sequences collide by concatenation.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		for i, l := 0, len(p); i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// ErrNotFound reports a key with no blob in its namespace.
var ErrNotFound = errors.New("blob: not found")

// Store is a durable, concurrency-safe map from (namespace, key) to an
// immutable byte blob. Put is idempotent — the same key always carries
// the same bytes, so concurrent writers race benignly — and Get returns
// ErrNotFound (possibly wrapped) for absent keys. Any other error is
// environmental (I/O, network) and callers should degrade to
// recomputing, never fail.
type Store interface {
	// Get returns the blob stored under ns/key, or an error wrapping
	// ErrNotFound.
	Get(ns string, key Key) ([]byte, error)
	// Put stores the blob under ns/key, durably for Dir (atomic write)
	// and remote stores.
	Put(ns string, key Key, data []byte) error
	// Has reports whether ns/key holds a blob, without fetching it.
	Has(ns string, key Key) (bool, error)
}

// checkNS validates a namespace: non-empty, and restricted to a charset
// that is safe as a single path segment on every store (no separators,
// no dot-dot, nothing needing escaping).
func checkNS(ns string) error {
	if ns == "" {
		return errors.New("blob: empty namespace")
	}
	if strings.HasPrefix(ns, ".") {
		return fmt.Errorf("blob: bad namespace %q", ns)
	}
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '_':
		default:
			return fmt.Errorf("blob: bad namespace %q", ns)
		}
	}
	return nil
}

// Open builds a store from a spec string (the CLIs' -store flag):
//
//	mem            in-process only (testing)
//	dir:PATH       shared directory CAS, created if absent
//	http://HOST    remote store served by cmd/served (or any Handler)
//	https://HOST
func Open(spec string) (Store, error) {
	switch {
	case spec == "mem":
		return NewMem(), nil
	case strings.HasPrefix(spec, "dir:"):
		return NewDir(strings.TrimPrefix(spec, "dir:"))
	case strings.HasPrefix(spec, "http://"), strings.HasPrefix(spec, "https://"):
		return NewHTTP(spec), nil
	}
	return nil, fmt.Errorf("blob: unknown store spec %q (want mem, dir:PATH or http(s)://HOST)", spec)
}
