// Package decode implements the disassembly function of the paper (§3.3.2,
// Figure 4): the reverse of the ISDL assembly function. Given the raw bits
// of an instruction it identifies the operation selected in every field and
// recovers every parameter value, recursing through non-terminal options.
//
// The XSIM simulators disassemble the whole program off-line at load time
// (§3.1) using this package; the textual disassembler of internal/asm and
// the decode-logic generator of internal/hgen share the same signatures.
package decode

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// Arg is one recovered parameter binding.
type Arg struct {
	Param *isdl.Param
	// Value is the parameter's return value: the token value, or the
	// non-terminal's return bitfield.
	Value bitvec.Value
	// Option is the decoded option when Param is a non-terminal.
	Option *isdl.Option
	// Sub holds the option's own recovered parameters.
	Sub []Arg
}

// Op is one decoded operation instance.
type Op struct {
	Op   *isdl.Operation
	Args []Arg
}

// Inst is one decoded VLIW instruction: one operation per field, in field
// order.
type Inst struct {
	// Word is the full fetched instruction image (MaxSize words wide).
	Word bitvec.Value
	Ops  []*Op
	// Size is the number of instruction words the instruction occupies:
	// the maximum Size cost over the selected operations.
	Size int
}

// ErrIllegal is returned when no operation signature matches; it corresponds
// to Figure 4's ILLEGAL INSTRUCTION result.
type ErrIllegal struct {
	Field string
	Word  bitvec.Value
}

func (e *ErrIllegal) Error() string {
	return fmt.Sprintf("illegal instruction: no operation of field %s matches %s", e.Field, e.Word)
}

// Field decodes the operation selected in one field from the instruction
// image. The match over signature constants is unique for a decodeable
// assembly function (verified during semantic analysis), so the first match
// wins.
func Field(f *isdl.Field, word bitvec.Value) (*Op, error) {
	for _, op := range f.Ops {
		if !op.Sig.Match(word) {
			continue
		}
		args, err := extractArgs(op.Params, &op.Sig, word)
		if err != nil {
			return nil, err
		}
		return &Op{Op: op, Args: args}, nil
	}
	return nil, &ErrIllegal{Field: f.Name, Word: word}
}

func extractArgs(params []*isdl.Param, sig *isdl.Signature, word bitvec.Value) ([]Arg, error) {
	args := make([]Arg, len(params))
	for i, prm := range params {
		v := sig.Extract(i, prm.RetWidth(), word)
		args[i] = Arg{Param: prm, Value: v}
		if prm.NT != nil {
			opt, sub, err := NT(prm.NT, v)
			if err != nil {
				return nil, err
			}
			args[i].Option, args[i].Sub = opt, sub
		}
	}
	return args, nil
}

// NT decodes a non-terminal return value into the option that produced it
// and the option's recovered parameters (Figure 4's disassemble_ntl).
func NT(nt *isdl.NonTerminal, ret bitvec.Value) (*isdl.Option, []Arg, error) {
	for _, opt := range nt.Options {
		if !opt.Sig.Match(ret) {
			continue
		}
		sub, err := extractArgs(opt.Params, &opt.Sig, ret)
		if err != nil {
			return nil, nil, err
		}
		return opt, sub, nil
	}
	return nil, nil, fmt.Errorf("illegal instruction: no option of non-terminal %s matches %s", nt.Name, ret)
}

// Instruction decodes a full VLIW instruction image: one operation from each
// field, then the constraint check.
func Instruction(d *isdl.Description, word bitvec.Value) (*Inst, error) {
	inst := &Inst{Word: word, Size: 1}
	sel := make(map[*isdl.Operation]bool, len(d.Fields))
	for _, f := range d.Fields {
		op, err := Field(f, word)
		if err != nil {
			return nil, err
		}
		inst.Ops = append(inst.Ops, op)
		sel[op.Op] = true
		if op.Op.Costs.Size > inst.Size {
			inst.Size = op.Op.Costs.Size
		}
	}
	if err := CheckConstraints(d, sel); err != nil {
		return nil, err
	}
	return inst, nil
}

// CheckConstraints verifies that the selected operation set satisfies every
// constraint of the description (§2.1.4).
func CheckConstraints(d *isdl.Description, selected map[*isdl.Operation]bool) error {
	for _, c := range d.Constraints {
		if !c.Eval(selected) {
			return fmt.Errorf("constraint violated: %s", c.Text)
		}
	}
	return nil
}

// FetchWord assembles the instruction image at address pc from an
// instruction-memory read function: MaxSize consecutive words concatenated
// little-endian (word 0 in the low bits). Reads past the end of memory wrap,
// matching the address truncation of the state package.
func FetchWord(d *isdl.Description, read func(addr int) bitvec.Value, pc int) bitvec.Value {
	n := d.MaxSize()
	img := read(pc)
	for i := 1; i < n; i++ {
		img = read(pc + i).Concat(img)
	}
	return img
}
