package decode_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/machines"
)

func TestFieldDecode(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "sub R6, R2, R1")
	if err != nil {
		t.Fatal(err)
	}
	op, err := decode.Field(d.Fields[0], p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	if op.Op.Name != "sub" {
		t.Fatalf("op = %s", op.Op.Name)
	}
	if op.Args[0].Value.Uint64() != 6 || op.Args[1].Value.Uint64() != 2 {
		t.Fatalf("args: %v %v", op.Args[0].Value, op.Args[1].Value)
	}
}

func TestFieldIllegal(t *testing.T) {
	d := machines.Toy()
	_, err := decode.Field(d.Fields[0], bitvec.FromUint64(24, 0xe00000))
	var ill *decode.ErrIllegal
	if !errors.As(err, &ill) {
		t.Fatalf("err = %v, want ErrIllegal", err)
	}
	if !strings.Contains(ill.Error(), "EX") {
		t.Fatalf("error should name the field: %v", ill)
	}
}

func TestNTDecode(t *testing.T) {
	d := machines.Toy()
	nt := d.NonTerminals["SRC"]
	// Immediate option: R[8]=1, value bits -3.
	ret := bitvec.FromUint64(9, 0x100|uint64(uint8(0xfd)))
	opt, sub, err := decode.NT(nt, ret)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Index != 1 {
		t.Fatalf("option %d", opt.Index)
	}
	if sub[0].Value.Int64() != -3 {
		t.Fatalf("imm = %d", sub[0].Value.Int64())
	}
	// Register option.
	opt, sub, err = decode.NT(nt, bitvec.FromUint64(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Index != 0 || sub[0].Value.Uint64() != 5 {
		t.Fatalf("reg option: %d %v", opt.Index, sub[0].Value)
	}
}

func TestInstructionConstraintViolation(t *testing.T) {
	d := machines.SPAM2()
	// Build a word selecting MV.ld together with BR.jmp, violating
	// "MV.ld -> BR.nop". Assemble the pieces separately, then merge bits.
	ld, err := asm.Assemble(d, "ld R1, @A0")
	if err != nil {
		t.Fatal(err)
	}
	jmp, err := asm.Assemble(d, "jmp 0")
	if err != nil {
		t.Fatal(err)
	}
	// ld's word has BR.nop in [29:28] (0b11); clear those bits and insert
	// jmp's BR bits (0b01 at [29:28]).
	w := ld.Words[0]
	for b := 15; b <= 29; b++ {
		w = w.WithBit(b, jmp.Words[0].Bit(b))
	}
	_, err = decode.Instruction(d, w)
	if err == nil || !strings.Contains(err.Error(), "constraint violated") {
		t.Fatalf("err = %v, want constraint violation", err)
	}
}

func TestInstructionSizeIsMaxOverOps(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "nop")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := decode.Instruction(d, p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	if inst.Size != 1 || len(inst.Ops) != 1 {
		t.Fatalf("inst: size %d, ops %d", inst.Size, len(inst.Ops))
	}
}

func TestFetchWordSingle(t *testing.T) {
	d := machines.Toy()
	w := bitvec.FromUint64(24, 0x123456)
	img := decode.FetchWord(d, func(addr int) bitvec.Value {
		if addr != 7 {
			t.Fatalf("unexpected read at %d", addr)
		}
		return w
	}, 7)
	if !img.Eq(w) {
		t.Fatalf("img = %s", img)
	}
}

func TestCheckConstraintsEmpty(t *testing.T) {
	d := machines.Toy() // toy has no constraints
	if err := decode.CheckConstraints(d, nil); err != nil {
		t.Fatal(err)
	}
}
