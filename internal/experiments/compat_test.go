package experiments_test

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/experiments"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/suite"
	"repro/internal/tech"
	"repro/internal/xsim"
)

// These tests prove the deprecated experiments entry points — now thin
// wrappers over the suite registry and the machine zoo — produce output
// identical to direct construction from the machines generators, which is
// what they compiled down to before the registry existed.

// TestFIRWorkloadCompat: FIRWorkload's registry-resolved 16×48 shape must
// assemble to the exact program that direct generator construction yields.
func TestFIRWorkloadCompat(t *testing.T) {
	d, p, err := experiments.FIRWorkload(16, 48)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "spam" {
		t.Fatalf("machine %q, want spam", d.Name)
	}
	samples, coefs := machines.FIRTestVectors(16, 48)
	direct, err := asm.Assemble(machines.SPAM(), machines.FIRSPAM(16, 48, samples, coefs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Words, direct.Words) || !reflect.DeepEqual(p.Data, direct.Data) {
		t.Fatal("registry-resolved FIR program differs from direct construction")
	}
	// A non-canonical shape takes the direct path; it must still assemble.
	if _, p2, err := experiments.FIRWorkload(8, 8); err != nil || len(p2.Words) == 0 {
		t.Fatalf("FIRWorkload(8,8): %v", err)
	}
}

// TestAsmWorkloadsCompat: every pinned asm workload in the registry must
// assemble to the same program as its machines generator.
func TestAsmWorkloadsCompat(t *testing.T) {
	x, y := machines.VecTestVectors(32)
	a, b := machines.VecTestVectors(64)
	s, c := machines.FIRTestVectors(16, 48)
	for _, tc := range []struct {
		workload string
		machine  func() string
		src      string
	}{
		{"fir16.spam", nil, machines.FIRSPAM(16, 48, s, c)},
		{"dot32.spam", nil, machines.DotSPAM(32, x, y)},
		{"vecadd64.spam2", nil, machines.VecAddSPAM2(64, a, b)},
	} {
		w, err := suite.Get(tc.workload)
		if err != nil {
			t.Fatal(err)
		}
		d, err := machines.ByName(w.Machine)
		if err != nil {
			t.Fatal(err)
		}
		p, _, _, err := suite.Prepare(w, d)
		if err != nil {
			t.Fatalf("%s: %v", tc.workload, err)
		}
		direct, err := asm.Assemble(d, tc.src)
		if err != nil {
			t.Fatalf("%s direct: %v", tc.workload, err)
		}
		if !reflect.DeepEqual(p.Words, direct.Words) || !reflect.DeepEqual(p.Data, direct.Data) {
			t.Errorf("%s: registry program differs from direct construction", tc.workload)
		}
	}
}

// TestRunTable2Compat: the zoo-resolved machine list behind RunTable2 must
// synthesize the same deterministic statistics as direct construction
// (SynthSec is wall clock and excluded).
func TestRunTable2Compat(t *testing.T) {
	rows, err := experiments.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Processor != "SPAM" || rows[1].Processor != "SPAM2" {
		t.Fatalf("rows: %+v", rows)
	}
	for i, d := range []*isdl.Description{machines.SPAM(), machines.SPAM2()} {
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if rows[i].CycleNs != r.CycleNs || rows[i].VerilogLines != r.VerilogLines ||
			rows[i].DieSizeCells != r.AreaCells {
			t.Errorf("%s: wrapper row %+v differs from direct synthesis", rows[i].Processor, rows[i])
		}
	}
}

// TestRunAblationStallsCompat: the registry-resolved dot32 workload must
// yield the same ablation rows as direct generator construction.
func TestRunAblationStallsCompat(t *testing.T) {
	rows, err := experiments.RunAblationStalls()
	if err != nil {
		t.Fatal(err)
	}
	x, y := machines.VecTestVectors(32)
	d := machines.SPAM()
	p, err := asm.Assemble(d, machines.DotSPAM(32, x, y))
	if err != nil {
		t.Fatal(err)
	}
	want := machines.DotReference(32, x, y)
	var direct []experiments.StallRow
	for _, stall := range []bool{true, false} {
		sim := xsim.New(d)
		sim.StallModel = stall
		if err := sim.Load(p); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		model := "interlock (paper §3.3.3)"
		if !stall {
			model = "no stall model"
		}
		direct = append(direct, experiments.StallRow{
			Workload: "dot32", Model: model,
			Cycles: sim.Cycle(), DataStalls: sim.Stats().DataStalls,
			Correct: sim.State().Get("RF", 8).Eq(bitvec.FromUint64(32, uint64(want))),
		})
	}
	if !reflect.DeepEqual(rows, direct) {
		t.Fatalf("wrapper rows %+v differ from direct construction %+v", rows, direct)
	}
}
