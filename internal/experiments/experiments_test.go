package experiments_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestTable1Shape runs the Table 1 measurement with a tiny budget and checks
// the paper's headline: the ILS is much faster than simulating the Verilog
// model.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	t1, err := experiments.RunTable1(150 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Speedup() < 10 {
		t.Errorf("ILS speedup only %.1fx over the Verilog model", t1.Speedup())
	}
	if t1.ILS.CyclesPerSec <= t1.ILSInterp.CyclesPerSec*0.8 {
		t.Errorf("compiled core (%.0f c/s) should not be slower than interpreted (%.0f c/s)",
			t1.ILS.CyclesPerSec, t1.ILSInterp.CyclesPerSec)
	}
	out := t1.Render()
	for _, want := range []string{"Table 1", "XSIM", "Verilog", "Speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := experiments.RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Processor != "SPAM" || rows[1].Processor != "SPAM2" {
		t.Fatalf("rows: %+v", rows)
	}
	if !(rows[0].CycleNs > rows[1].CycleNs && rows[0].DieSizeCells > rows[1].DieSizeCells && rows[0].VerilogLines > rows[1].VerilogLines) {
		t.Errorf("SPAM should dominate SPAM2 on every column: %+v", rows)
	}
	if !strings.Contains(experiments.RenderTable2(rows), "Table 2") {
		t.Error("render missing header")
	}
}

func TestAblations(t *testing.T) {
	sh, err := experiments.RunAblationSharing()
	if err != nil {
		t.Fatal(err)
	}
	// SPAM rows come first: off > rules >= rules+constraints on datapath.
	if !(sh[0].Datapath > sh[1].Datapath && sh[1].Datapath >= sh[2].Datapath) {
		t.Errorf("sharing ablation shape: %+v", sh[:3])
	}
	if !strings.Contains(experiments.RenderSharing(sh), "Ablation A") {
		t.Error("sharing render missing header")
	}

	de, err := experiments.RunAblationDecode()
	if err != nil {
		t.Fatal(err)
	}
	if !(de[0].DecodeArea < de[1].DecodeArea) {
		t.Errorf("two-level decode should be smaller: %+v", de[:2])
	}
	if !strings.Contains(experiments.RenderDecode(de), "Ablation B") {
		t.Error("decode render missing header")
	}

	st, err := experiments.RunAblationStalls()
	if err != nil {
		t.Fatal(err)
	}
	if !(st[0].Correct && !st[1].Correct) {
		t.Errorf("stall ablation correctness: %+v", st)
	}
	if !(st[0].Cycles > st[1].Cycles && st[0].DataStalls > 0) {
		t.Errorf("stall ablation cycles: %+v", st)
	}
	if !strings.Contains(experiments.RenderStalls(st), "Ablation C") {
		t.Error("stalls render missing header")
	}
}
