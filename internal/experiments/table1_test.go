package experiments

// White-box regression tests for the Table 1 measurement bugs: stale event
// counts, setup time billed as simulation time, the unguarded Render
// division — plus the parallel-vs-serial bit-identity of the co-simulated
// Verilog measurement.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/cosim"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/tech"
	"repro/internal/verilog"
)

// smallFIR builds a reduced FIR workload (4 taps, 8 outputs) so the
// event-driven runs below stay fast, even under -race.
func smallFIR(t *testing.T) (*isdl.Description, *asm.Program, *verilog.Module) {
	t.Helper()
	d, p, err := FIRWorkload(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mod, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}
	return d, p, mod
}

// TestVerilogEventsAccumulate: Table 1's event total must accumulate over
// every workload run, pairing with the cumulative cycle count — the old
// loop overwrote hwEvents each iteration and reported only the last run.
func TestVerilogEventsAccumulate(t *testing.T) {
	_, p, mod := smallFIR(t)
	one, err := measureVerilog(mod, p, Table1Options{Workers: 1, MinVerilogRuns: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	three, err := measureVerilog(mod, p, Table1Options{Workers: 1, MinVerilogRuns: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if one.Jobs != 1 || three.Jobs != 3 {
		t.Fatalf("run counts: %d and %d, want 1 and 3", one.Jobs, three.Jobs)
	}
	if one.Events == 0 || one.Cycles == 0 {
		t.Fatalf("degenerate single run: %+v", one)
	}
	if three.Events != 3*one.Events {
		t.Errorf("events = %d after 3 runs, want 3×%d (stale per-run overwrite?)", three.Events, one.Events)
	}
	if three.Cycles != 3*one.Cycles {
		t.Errorf("cycles = %d after 3 runs, want 3×%d", three.Cycles, one.Cycles)
	}
}

// TestVerilogSetupExcluded pins the timed windows with an injected clock
// that advances one second per reading: each run must bill exactly one
// clock step to setup (NewSim + LoadProgram) and one to simulation (the
// Tick loop), so the cycles/sec denominator is the Tick loop alone — the
// old code started the clock before elaboration.
func TestVerilogSetupExcluded(t *testing.T) {
	_, p, mod := smallFIR(t)
	var ticks int
	clock := func() time.Time {
		ticks++
		return time.Unix(int64(ticks), 0)
	}
	st, err := measureVerilog(mod, p, Table1Options{Workers: 1, MinVerilogRuns: 2}, clock)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * time.Second; st.Setup != want {
		t.Errorf("setup window = %v, want %v (one clock step per run)", st.Setup, want)
	}
	if want := 2 * time.Second; st.Sim != want {
		t.Errorf("sim window = %v, want %v — elaboration/load leaked into the timed window", st.Sim, want)
	}
	if got, want := st.SimCyclesPerSec(), float64(st.Cycles)/2; got != want {
		t.Errorf("SimCyclesPerSec = %v, want %v (denominator must be the Tick loop only)", got, want)
	}
}

// stateSnapshot reads every architectural storage element ("s_"-prefixed
// net or memory) of a finished hardware model.
func stateSnapshot(t *testing.T, d *isdl.Description, hw *verilog.Sim) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, st := range d.Storage {
		if st.Kind == isdl.StInstructionMemory {
			continue
		}
		if st.Kind.Addressed() {
			for i := 0; i < st.Depth; i++ {
				v, err := hw.GetMem("s_"+st.Name, i)
				if err != nil {
					t.Fatal(err)
				}
				out[fmt.Sprintf("%s[%d]", st.Name, i)] = v.String()
			}
		} else {
			v, err := hw.Get("s_" + st.Name)
			if err != nil {
				t.Fatal(err)
			}
			out[st.Name] = v.String()
		}
	}
	return out
}

// TestVerilogParallelBitIdentity: the same four whole FIR workloads, run
// serially and at workers=4, must leave identical final storage state per
// run and identical aggregate cycle/event totals (exercised under -race by
// the CI race job).
func TestVerilogParallelBitIdentity(t *testing.T) {
	d, p, mod := smallFIR(t)
	const runs = 4
	measure := func(workers int) ([]map[string]string, cosim.Stats) {
		pool := &cosim.Pool{Workers: workers}
		finals := make([]map[string]string, runs)
		stats, err := pool.Run("identity", runs, func(i int, l *cosim.Lane) error {
			hw, err := cosim.Workload{Mod: mod, Init: func(hw *verilog.Sim) error { return LoadProgram(hw, p) }}.Run(l)
			if err != nil {
				return err
			}
			finals[i] = stateSnapshot(t, d, hw)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return finals, stats
	}
	serial, sstats := measure(1)
	parallel, pstats := measure(4)
	if sstats.Cycles != pstats.Cycles || sstats.Events != pstats.Events {
		t.Errorf("aggregate counts diverged: serial %d/%d, parallel %d/%d",
			sstats.Cycles, sstats.Events, pstats.Cycles, pstats.Events)
	}
	for i := range serial {
		if len(serial[i]) == 0 {
			t.Fatalf("run %d: empty state snapshot", i)
		}
		for k, v := range serial[i] {
			if parallel[i][k] != v {
				t.Errorf("run %d: %s = %q serial vs %q parallel", i, k, v, parallel[i][k])
			}
		}
	}
}

// TestRenderZeroVerilogSpeed: a degenerate run (Verilog speed 0) must
// render finite numbers in every row — the interpreted-core row used to
// divide by zero and print +Inf.
func TestRenderZeroVerilogSpeed(t *testing.T) {
	t1 := &Table1{
		ILS:       Table1Row{Model: "XSIM (ILS) Simulator", CyclesPerSec: 1e6},
		ILSInterp: Table1Row{Model: "XSIM (interpreted core)", CyclesPerSec: 9e5},
		Verilog:   Table1Row{Model: "Synthesizable Verilog"},
	}
	if got := t1.Speedup(); got != 0 {
		t.Errorf("Speedup = %v, want 0", got)
	}
	if got := t1.InterpSpeedup(); got != 0 {
		t.Errorf("InterpSpeedup = %v, want 0", got)
	}
	out := t1.Render()
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(out, bad) {
			t.Errorf("render contains %q on a degenerate run:\n%s", bad, out)
		}
	}
}
