// Package experiments regenerates the paper's evaluation (§6): Table 1
// (simulation speed of the generated ILS vs. the synthesizable Verilog
// model) and Table 2 (hardware synthesis statistics for SPAM and SPAM2),
// plus the ablations DESIGN.md defines for the design choices of §3–4.
// cmd/paper prints the tables; bench_test.go reports the same measurements
// through testing.B.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/cosim"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/suite"
	"repro/internal/tech"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// FIRWorkload builds the SPAM FIR benchmark program used for the Table 1
// speed measurements (the realistic simulation run §6.2 argues the fast ILS
// enables).
//
// Deprecated: the canonical 16-tap/48-output shape lives in the suite
// registry as "fir16.spam" — prefer suite.Get + suite.Prepare (or RunSuite).
// This wrapper resolves through the registry for that shape and is proven
// identical to direct construction by the compat tests.
func FIRWorkload(taps, nout int) (*isdl.Description, *asm.Program, error) {
	d, err := machines.ByName("spam")
	if err != nil {
		return nil, nil, err
	}
	if taps == 16 && nout == 48 {
		w, err := suite.Get("fir16.spam")
		if err != nil {
			return nil, nil, err
		}
		p, _, _, err := suite.Prepare(w, d)
		if err != nil {
			return nil, nil, err
		}
		return d, p, nil
	}
	samples, coefs := machines.FIRTestVectors(taps, nout)
	p, err := asm.Assemble(d, machines.FIRSPAM(taps, nout, samples, coefs))
	if err != nil {
		return nil, nil, err
	}
	return d, p, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Model        string
	CyclesPerSec float64
	Cycles       uint64
	Elapsed      time.Duration
}

// Table1 measures both simulators on the SPAM FIR workload. The budget
// bounds each measurement (the ILS re-runs the workload until the budget is
// spent; the event-driven model runs whole workloads — concurrently, on the
// co-simulation pool — until it is).
type Table1 struct {
	ILS Table1Row
	// ILSInterp measures the AST-interpreting core — the baseline the
	// paper's §6.2 "compiled-code simulator" remark is about (the default
	// core compiles operations to closures, like GENSIM's generated C).
	ILSInterp Table1Row
	// Verilog is the event-driven hardware-model row. Its timed window is
	// the Tick loop only (summed per run): elaboration and program/data
	// loading are reported in VerilogSetup, never in the denominator.
	Verilog Table1Row
	// Events accumulates the event count over every Verilog run, so it
	// pairs with the cumulative Verilog.Cycles.
	Events uint64
	// VerilogRuns is how many whole workloads the Verilog model completed.
	VerilogRuns int
	// VerilogSetup is the summed elaboration + memory-load time, excluded
	// from the timed window above.
	VerilogSetup time.Duration
	// VerilogWall is the wall clock of the whole (parallel) Verilog
	// measurement.
	VerilogWall time.Duration
	// VerilogAggregate is the pool throughput in cycles/sec: cumulative
	// cycles over wall clock, which credits the parallel fan-out.
	VerilogAggregate float64
	// CosimWorkers is the worker count the Verilog measurement used.
	CosimWorkers int
	// CosimSpeedup is the measured parallel-vs-serial speedup of the
	// co-simulation pool: summed per-instance simulation time over wall
	// clock (≈1 when serial, → CosimWorkers when the fan-out scales).
	CosimSpeedup float64
}

// ratio divides num by den, reporting 0 instead of ±Inf/NaN on a
// degenerate (zero-denominator) measurement. Every speed/speedup quotient
// in this file routes through it.
func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Speedup returns the ILS speed over the Verilog-model speed.
func (t *Table1) Speedup() float64 {
	return ratio(t.ILS.CyclesPerSec, t.Verilog.CyclesPerSec)
}

// InterpSpeedup returns the interpreted-core speed over the Verilog-model
// speed.
func (t *Table1) InterpSpeedup() float64 {
	return ratio(t.ILSInterp.CyclesPerSec, t.Verilog.CyclesPerSec)
}

// Table1Options configures RunTable1Opts.
type Table1Options struct {
	// Budget bounds each simulator's measurement.
	Budget time.Duration
	// Workers is the Verilog co-simulation fan-out (<= 0: NumCPU).
	Workers int
	// MinVerilogRuns is a cycle floor: at least this many whole Verilog
	// workloads run regardless of Budget (default 1), so short budgets
	// still measure complete runs.
	MinVerilogRuns int
	// Obs, when non-nil, receives the co-simulation pool's metrics and
	// spans (cosim.* counters and per-worker lanes).
	Obs *obs.Registry
}

// RunTable1 performs the Table 1 measurement with default options
// (co-simulation workers = NumCPU).
func RunTable1(minDuration time.Duration) (*Table1, error) {
	return RunTable1Opts(Table1Options{Budget: minDuration})
}

// RunTable1Opts performs the Table 1 measurement.
func RunTable1Opts(o Table1Options) (*Table1, error) {
	d, p, err := FIRWorkload(16, 48)
	if err != nil {
		return nil, err
	}

	// Instruction-level simulator speed, compiled and interpreted cores.
	measureILS := func(compiled bool) (Table1Row, error) {
		sim := xsim.New(d)
		sim.CompiledCore = compiled
		var cycles uint64
		start := time.Now()
		for cycles == 0 || time.Since(start) < o.Budget {
			if err := sim.Load(p); err != nil {
				return Table1Row{}, err
			}
			if err := sim.Run(0); err != nil {
				return Table1Row{}, err
			}
			cycles += sim.Cycle()
		}
		elapsed := time.Since(start)
		name := "XSIM (ILS) Simulator"
		if !compiled {
			name = "XSIM (interpreted core)"
		}
		return Table1Row{Model: name, CyclesPerSec: ratio(float64(cycles), elapsed.Seconds()), Cycles: cycles, Elapsed: elapsed}, nil
	}
	ils, err := measureILS(true)
	if err != nil {
		return nil, err
	}
	ilsInterp, err := measureILS(false)
	if err != nil {
		return nil, err
	}

	// Synthesizable-Verilog model under the event-driven simulator, fanned
	// out on the co-simulation pool.
	synth, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
	if err != nil {
		return nil, err
	}
	mod, err := verilog.Parse(synth.VerilogText)
	if err != nil {
		return nil, err
	}
	stats, err := measureVerilog(mod, p, o, nil)
	if err != nil {
		return nil, err
	}

	return &Table1{
		ILS:       ils,
		ILSInterp: ilsInterp,
		Verilog: Table1Row{
			Model:        "Synthesizable Verilog",
			CyclesPerSec: stats.SimCyclesPerSec(),
			Cycles:       stats.Cycles,
			Elapsed:      stats.Sim,
		},
		Events:           stats.Events,
		VerilogRuns:      stats.Jobs,
		VerilogSetup:     stats.Setup,
		VerilogWall:      stats.Wall,
		VerilogAggregate: stats.AggregateCyclesPerSec(),
		CosimWorkers:     stats.Workers,
		CosimSpeedup:     stats.Speedup(),
	}, nil
}

// LoadProgram loads an assembled program image — instruction words plus
// initialized data — into a generated hardware model's memories (the
// "s_"-prefixed storage nets HGEN emits). Shared by the Table 1
// measurement and the co-simulation benchmarks.
func LoadProgram(hw *verilog.Sim, p *asm.Program) error {
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", p.Base+i, w); err != nil {
			return err
		}
	}
	for _, di := range p.Data {
		for i, v := range di.Values {
			if err := hw.SetMem("s_"+di.Storage, di.Base+i, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureVerilog runs whole FIR workloads on the event-driven model across
// the co-simulation pool until the budget is spent (and at least
// MinVerilogRuns workloads either way). Only the Tick loops are timed as
// simulation; elaboration and program loading accumulate separately as
// setup (the satellite fix for the deflated Verilog cycles/sec). The now
// parameter injects a test clock; nil means time.Now.
func measureVerilog(mod *verilog.Module, p *asm.Program, o Table1Options, now func() time.Time) (cosim.Stats, error) {
	if now == nil {
		now = time.Now
	}
	minRuns := o.MinVerilogRuns
	if minRuns <= 0 {
		minRuns = 1
	}
	pool := &cosim.Pool{Workers: o.Workers, Obs: o.Obs, Now: now}
	start := now()
	// Budget guard for very slow hosts: give up mid-workload past 4× the
	// budget. Disabled for untimed (budget 0) runs, which are bounded by
	// the run floor instead — those must complete exactly minRuns whole
	// workloads so their cycle/event totals are deterministic.
	var stop func() bool
	if o.Budget > 0 {
		stop = func() bool { return now().Sub(start) > 4*o.Budget }
	}
	wl := cosim.Workload{Mod: mod, Init: func(hw *verilog.Sim) error { return LoadProgram(hw, p) }, Stop: stop}

	var total cosim.Stats
	for {
		batch := pool.NumWorkers()
		if o.Budget == 0 && total.Jobs+batch > minRuns {
			batch = minRuns - total.Jobs
		}
		st, err := pool.Run("table1.verilog", batch, func(i int, l *cosim.Lane) error {
			_, err := wl.Run(l)
			return err
		})
		total = total.Add(st)
		if err != nil {
			return total, err
		}
		if total.Jobs >= minRuns {
			if o.Budget == 0 || now().Sub(start) >= o.Budget || (stop != nil && stop()) {
				break
			}
		}
	}
	return total, nil
}

// Render prints Table 1 in the paper's layout.
func (t *Table1) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Simulation Speeds for XSIM vs Hardware Model\n")
	sb.WriteString("(SPAM running the 16-tap FIR workload)\n\n")
	fmt.Fprintf(&sb, "  %-24s %18s %10s\n", "Model", "Speed (cycles/sec)", "Speedup")
	fmt.Fprintf(&sb, "  %-24s %18.0f %9.0fx\n", t.ILS.Model, t.ILS.CyclesPerSec, t.Speedup())
	fmt.Fprintf(&sb, "  %-24s %18.0f %9.0fx\n", t.ILSInterp.Model, t.ILSInterp.CyclesPerSec, t.InterpSpeedup())
	fmt.Fprintf(&sb, "  %-24s %18.0f %10s\n", t.Verilog.Model, t.Verilog.CyclesPerSec, "1")
	fmt.Fprintf(&sb, "\n  (event-driven model: %d runs evaluated %d events over %d cycles;\n",
		t.VerilogRuns, t.Events, t.Verilog.Cycles)
	fmt.Fprintf(&sb, "   elaboration+load %s excluded from the %s timed window)\n",
		t.VerilogSetup.Round(time.Millisecond), t.Verilog.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  (co-simulation pool: %d workers, aggregate %.0f cycles/sec, measured speedup %.2fx)\n",
		t.CosimWorkers, t.VerilogAggregate, t.CosimSpeedup)
	return sb.String()
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Processor    string
	CycleNs      float64
	VerilogLines int
	DieSizeCells float64
	SynthSec     float64
}

// RunTable2 synthesizes both processors with the paper's configuration.
//
// Deprecated: retained for the paper's Table 2 reproduction; the machine
// list now resolves through the zoo registry (machines.ByName), proven
// identical to direct construction by the compat tests.
func RunTable2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, d := range zooPair() {
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Processor:    strings.ToUpper(d.Name),
			CycleNs:      r.CycleNs,
			VerilogLines: r.VerilogLines,
			DieSizeCells: r.AreaCells,
			SynthSec:     r.SynthSeconds,
		})
	}
	return rows, nil
}

// RenderTable2 prints Table 2 in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: Hardware Synthesis Statistics\n\n")
	fmt.Fprintf(&sb, "  %-10s %12s %18s %22s %20s\n",
		"Processor", "Cycle (nsec)", "Lines of Verilog", "Die Size (grid cells)", "Synthesis time (sec)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %12.1f %18d %22.0f %20.3f\n",
			r.Processor, r.CycleNs, r.VerilogLines, r.DieSizeCells, r.SynthSec)
	}
	return sb.String()
}

// SharingRow is one ablation-A measurement.
type SharingRow struct {
	Processor string
	Mode      hgen.SharingMode
	DieSize   float64
	Datapath  float64 // units + operand muxes (where sharing acts)
	Units     int
	Nodes     int
}

// zooPair resolves the paper's two DSPs through the machine zoo (the
// registry the deprecated Table/ablation wrappers are re-expressed over).
func zooPair() []*isdl.Description {
	var ds []*isdl.Description
	for _, name := range []string{"spam", "spam2"} {
		d, err := machines.ByName(name)
		if err != nil {
			panic("experiments: zoo lost " + name + ": " + err.Error())
		}
		ds = append(ds, d)
	}
	return ds
}

// RunAblationSharing measures die size under the three sharing modes
// (§4.1.1–4.1.2).
//
// Deprecated: retained for the DESIGN.md ablation; machines resolve
// through the zoo registry.
func RunAblationSharing() ([]SharingRow, error) {
	var rows []SharingRow
	for _, d := range zooPair() {
		for _, mode := range []hgen.SharingMode{hgen.ShareOff, hgen.ShareRules, hgen.ShareRulesAndConstraints} {
			r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.Options{Sharing: mode, Decode: hgen.DecodeTwoLevel})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SharingRow{
				Processor: strings.ToUpper(d.Name), Mode: mode,
				DieSize:  r.AreaCells,
				Datapath: r.Breakdown["datapath"] + r.Breakdown["operand muxes"],
				Units:    len(r.Units), Nodes: len(r.Nodes),
			})
		}
	}
	return rows, nil
}

// RenderSharing prints ablation A.
func RenderSharing(rows []SharingRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation A: Resource sharing (Figure 5) — die size by sharing mode\n\n")
	fmt.Fprintf(&sb, "  %-10s %-20s %12s %16s %8s %8s\n", "Processor", "Sharing", "Die (cells)", "Datapath (cells)", "Units", "Nodes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %-20s %12.0f %16.0f %8d %8d\n", r.Processor, r.Mode.String(), r.DieSize, r.Datapath, r.Units, r.Nodes)
	}
	return sb.String()
}

// DecodeRow is one ablation-B measurement.
type DecodeRow struct {
	Processor  string
	Style      hgen.DecodeStyle
	DecodeArea float64
	CycleNs    float64
}

// RunAblationDecode measures the decode-logic styles of §4.2.
//
// Deprecated: retained for the DESIGN.md ablation; machines resolve
// through the zoo registry.
func RunAblationDecode() ([]DecodeRow, error) {
	var rows []DecodeRow
	for _, d := range zooPair() {
		for _, style := range []hgen.DecodeStyle{hgen.DecodeTwoLevel, hgen.DecodeComparator} {
			r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.Options{Sharing: hgen.ShareRulesAndConstraints, Decode: style})
			if err != nil {
				return nil, err
			}
			rows = append(rows, DecodeRow{
				Processor: strings.ToUpper(d.Name), Style: style,
				DecodeArea: r.Breakdown["decode"], CycleNs: r.CycleNs,
			})
		}
	}
	return rows, nil
}

// RenderDecode prints ablation B.
func RenderDecode(rows []DecodeRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation B: Decode logic (§4.2) — signature product terms vs naive comparators\n\n")
	fmt.Fprintf(&sb, "  %-10s %-12s %18s %14s\n", "Processor", "Style", "Decode area (cells)", "Cycle (nsec)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %-12s %18.0f %14.1f\n", r.Processor, r.Style.String(), r.DecodeArea, r.CycleNs)
	}
	return sb.String()
}

// StallRow is one ablation-C measurement.
type StallRow struct {
	Workload   string
	Model      string
	Cycles     uint64
	DataStalls uint64
	Correct    bool
}

// RunAblationStalls compares the §3.3.3 stall model against back-to-back
// issue on the SPAM dot-product (whose loads and multiplies have non-unit
// latency). The interlock model both counts stalls and keeps results
// correct; disabling it shows what interlock-free hardware would compute.
//
// Deprecated: the workload resolves through the suite registry
// ("dot32.spam"); prefer RunSuite for plain workload evaluation. Retained
// because the stall-model toggle is not part of the suite API.
func RunAblationStalls() ([]StallRow, error) {
	w, err := suite.Get("dot32.spam")
	if err != nil {
		return nil, err
	}
	d, err := machines.ByName(w.Machine)
	if err != nil {
		return nil, err
	}
	p, out, ref, err := suite.Prepare(w, d)
	if err != nil {
		return nil, err
	}

	var rows []StallRow
	for _, stall := range []bool{true, false} {
		sim := xsim.New(d)
		sim.StallModel = stall
		if err := sim.Load(p); err != nil {
			return nil, err
		}
		if err := sim.Run(0); err != nil {
			return nil, err
		}
		model := "interlock (paper §3.3.3)"
		if !stall {
			model = "no stall model"
		}
		got := sim.State().Get(out.Storage, out.Base)
		rows = append(rows, StallRow{
			Workload: "dot32", Model: model,
			Cycles: sim.Cycle(), DataStalls: sim.Stats().DataStalls,
			Correct: got.Eq(bitvec.FromUint64(32, ref[0])),
		})
	}
	return rows, nil
}

// RenderStalls prints ablation C.
func RenderStalls(rows []StallRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation C: Stall accounting (§3.3.3) on the SPAM dot-product\n\n")
	fmt.Fprintf(&sb, "  %-10s %-26s %10s %12s %10s\n", "Workload", "Model", "Cycles", "Data stalls", "Correct")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %-26s %10d %12d %10v\n", r.Workload, r.Model, r.Cycles, r.DataStalls, r.Correct)
	}
	return sb.String()
}
