package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/machines"
	"repro/internal/suite"
	"repro/internal/xsim"
)

// This file is the experiments layer's view of the suite registry (ROADMAP
// item 4): RunSuite runs every registered workload passing a filter on
// every machine in the zoo, reference-checks each run, and returns a typed
// report that cmd/paper renders (-suite) or serializes (-suite-json). The
// historical entry points (RunTable1/RunTable2/RunAblation*) remain as
// deprecated wrappers re-expressed over the same registry — compat tests
// prove them identical.

// SuiteOptions configures a suite run.
type SuiteOptions struct {
	// Backend selects the xsim backend (empty: compiled).
	Backend xsim.Backend
	// Machines restricts the machine list (default: the whole zoo).
	Machines []string
	// Limit bounds instructions per run (0: suite.DefaultLimit).
	Limit int64
}

// SuiteRow is one (workload, machine) cell of the suite report.
type SuiteRow struct {
	Workload string   `json:"workload"`
	Machine  string   `json:"machine"`
	Tags     []string `json:"tags,omitempty"`

	// Supported is false when the toolchain cannot target the pair (Note
	// says why); such rows carry no measurements.
	Supported bool   `json:"supported"`
	Note      string `json:"note,omitempty"`
	// Verified reports the reference-output check (always true for rows a
	// successful RunSuite returns — a failed check aborts the run).
	Verified bool `json:"verified"`

	Backend      string  `json:"backend,omitempty"`
	Cycles       uint64  `json:"cycles,omitempty"`
	Instructions uint64  `json:"instructions,omitempty"`
	DataStalls   uint64  `json:"data_stalls,omitempty"`
	StructStalls uint64  `json:"struct_stalls,omitempty"`
	MIPS         float64 `json:"mips,omitempty"`
}

// SuiteReport is the full suite run.
type SuiteReport struct {
	Backend     string     `json:"backend"`
	Machines    []string   `json:"machines"`
	Workloads   []string   `json:"workloads"`
	Rows        []SuiteRow `json:"rows"`
	Verified    int        `json:"verified"`
	Unsupported int        `json:"unsupported"`
}

// RunSuite runs the registered workloads passing the filter on each machine
// and reference-checks every run. Workload/machine pairs the toolchain
// cannot target become unsupported rows; any real failure — a fault, a
// timeout, a reference mismatch — aborts with an error, because a suite
// that silently drops failing measurements is worse than none.
func RunSuite(f suite.Filter, o SuiteOptions) (*SuiteReport, error) {
	ms := o.Machines
	if len(ms) == 0 {
		ms = machines.ZooNames()
	}
	ws := suite.All(f)
	backend, err := xsim.ParseBackend(string(o.Backend))
	if err != nil {
		return nil, err
	}
	rep := &SuiteReport{Backend: string(backend), Machines: ms, Workloads: suite.Names(f)}
	for _, w := range ws {
		for _, m := range ms {
			if w.Machine != "" && w.Machine != m {
				continue // asm workload pinned elsewhere
			}
			res, err := suite.Run(w, m, suite.Options{Backend: backend, Limit: o.Limit})
			if err != nil {
				var u *suite.Unsupported
				if errors.As(err, &u) {
					rep.Rows = append(rep.Rows, SuiteRow{
						Workload: w.Name, Machine: m, Tags: w.Tags,
						Note: unwrapNote(u),
					})
					rep.Unsupported++
					continue
				}
				return nil, err
			}
			rep.Rows = append(rep.Rows, SuiteRow{
				Workload: w.Name, Machine: m, Tags: w.Tags,
				Supported: true, Verified: true,
				Backend:      string(res.BackendUsed),
				Cycles:       res.Cycles,
				Instructions: res.Instructions,
				DataStalls:   res.DataStalls,
				StructStalls: res.StructStalls,
				MIPS:         res.MIPS,
			})
			rep.Verified++
		}
	}
	return rep, nil
}

func unwrapNote(u *suite.Unsupported) string {
	note := u.Err.Error()
	return strings.TrimPrefix(note, "compiler: ")
}

// Render formats the suite report as the evaluation table.
func (r *SuiteReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Benchmark suite: %d workloads × %d machines (backend %s)\n\n",
		len(r.Workloads), len(r.Machines), r.Backend)
	fmt.Fprintf(&sb, "  %-14s %-8s %10s %10s %10s %10s %9s  %s\n",
		"workload", "machine", "cycles", "instrs", "data-st", "struct-st", "MIPS", "ref")
	for _, row := range r.Rows {
		if !row.Supported {
			fmt.Fprintf(&sb, "  %-14s %-8s %s\n", row.Workload, row.Machine,
				"unsupported: "+row.Note)
			continue
		}
		fmt.Fprintf(&sb, "  %-14s %-8s %10d %10d %10d %10d %9.1f  %s\n",
			row.Workload, row.Machine, row.Cycles, row.Instructions,
			row.DataStalls, row.StructStalls, row.MIPS, "ok")
	}
	fmt.Fprintf(&sb, "\n  %d runs verified against reference outputs, %d unsupported pairs\n",
		r.Verified, r.Unsupported)
	return sb.String()
}

// JSON serializes the report (stable field order, trailing newline).
func (r *SuiteReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
