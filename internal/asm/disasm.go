package asm

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
)

// This file renders decoded instructions back to assembly text: the textual
// face of the Figure 4 disassembly function. The XSIM simulators use it for
// listings and traces; round-tripping assemble → disassemble → assemble is a
// property test of Axiom 1.

// DisassembleWord decodes and renders the instruction image starting at
// words[0] (the image must already be MaxSize words wide; use
// decode.FetchWord to build it).
func DisassembleWord(d *isdl.Description, word bitvec.Value) (string, error) {
	inst, err := decode.Instruction(d, word)
	if err != nil {
		return "", err
	}
	return RenderInst(d, inst), nil
}

// RenderInst renders a decoded instruction as assembly text. Every field's
// operation is rendered (including nops) so the text is a faithful image of
// the instruction word.
func RenderInst(d *isdl.Description, inst *decode.Inst) string {
	parts := make([]string, 0, len(inst.Ops))
	for _, op := range inst.Ops {
		parts = append(parts, RenderOp(d, op))
	}
	return strings.Join(parts, " || ")
}

// RenderOp renders one decoded operation, qualifying the mnemonic with its
// field when the name is ambiguous across fields.
func RenderOp(d *isdl.Description, op *decode.Op) string {
	var sb strings.Builder
	count := 0
	for _, f := range d.Fields {
		if _, ok := f.ByName[op.Op.Name]; ok {
			count++
		}
	}
	if count > 1 {
		sb.WriteString(op.Op.Field.Name)
		sb.WriteByte('.')
	}
	sb.WriteString(op.Op.Name)
	renderSyntax(&sb, op.Op.Syntax, op.Args, true)
	return sb.String()
}

func renderSyntax(sb *strings.Builder, syn []isdl.SynElem, args []decode.Arg, leadingSpace bool) {
	first := leadingSpace
	for _, el := range syn {
		switch {
		case el.Lit == ",":
			sb.WriteString(", ")
			first = false
		case el.Lit != "":
			if first {
				sb.WriteByte(' ')
				first = false
			}
			sb.WriteString(el.Lit)
		default:
			if first {
				sb.WriteByte(' ')
				first = false
			}
			renderArg(sb, &args[el.Param])
		}
	}
}

func renderArg(sb *strings.Builder, a *decode.Arg) {
	if a.Param.Token != nil {
		name, ok := a.Param.Token.NameFor(a.Value)
		if !ok {
			// A decoded value outside the token's range (possible for
			// sparse enums); render the raw bits so nothing is hidden.
			name = a.Value.String()
		}
		sb.WriteString(name)
		return
	}
	renderSyntax(sb, a.Option.Syntax, a.Sub, false)
}

// DisassembleProgram renders a whole program as an address-annotated
// listing. Words that do not decode are rendered as .word directives so the
// listing is still assemblable.
func DisassembleProgram(p *Program) string {
	d := p.Desc
	var sb strings.Builder
	if p.Base != 0 {
		fmt.Fprintf(&sb, ".org %d\n", p.Base)
	}
	for _, di := range p.Data {
		fmt.Fprintf(&sb, ".data %s %d", di.Storage, di.Base)
		for _, v := range di.Values {
			fmt.Fprintf(&sb, " %d", v.Uint64())
		}
		sb.WriteByte('\n')
	}
	addrToSym := map[int][]string{}
	for _, name := range p.SymbolsSorted() {
		addrToSym[p.Symbols[name]] = append(addrToSym[p.Symbols[name]], name)
	}
	i := 0
	for i < len(p.Words) {
		addr := p.Base + i
		for _, s := range addrToSym[addr] {
			fmt.Fprintf(&sb, "%s:\n", s)
		}
		img := decode.FetchWord(d, func(a int) bitvec.Value {
			if a-p.Base >= 0 && a-p.Base < len(p.Words) {
				return p.Words[a-p.Base]
			}
			return bitvec.New(d.WordWidth)
		}, addr)
		inst, err := decode.Instruction(d, img)
		if err != nil {
			fmt.Fprintf(&sb, "    .word 0x%x\n", p.Words[i].Uint64())
			i++
			continue
		}
		fmt.Fprintf(&sb, "    %s\n", RenderInst(d, inst))
		i += inst.Size
	}
	return sb.String()
}
