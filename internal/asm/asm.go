// Package asm implements the retargetable assembler and disassembler of the
// exploration loop (paper Figure 1): the assembly function defined by the
// ISDL bitfield assignments, and its textual reverse built on the Figure 4
// decoder of internal/decode.
package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
)

// Program is an assembled program: an instruction-memory image plus symbols,
// data-memory initializers and a source map for debugging.
type Program struct {
	Desc    *isdl.Description
	Base    int
	Words   []bitvec.Value
	Symbols map[string]int
	// Source maps an instruction-memory address to the source line that
	// produced it.
	Source map[int]string
	Data   []DataInit
}

// DataInit is one ".data" directive: initial contents for a data storage.
type DataInit struct {
	Storage string
	Base    int
	Values  []bitvec.Value
}

// OpSpec is one operation instance to encode: the operation plus one bound
// argument per parameter.
type OpSpec struct {
	Op   *isdl.Operation
	Args []Arg
}

// Arg is one bound argument: for token parameters, Value holds the token
// return value; for non-terminal parameters, Option and Sub select and fill
// an option.
type Arg struct {
	Value  bitvec.Value
	Option *isdl.Option
	Sub    []Arg
}

// retValue computes the argument's encoding bits: the token value itself, or
// the non-terminal return value built from the option's encode assignments.
func (a *Arg) retValue(p *isdl.Param) bitvec.Value {
	if p.Token != nil {
		return a.Value
	}
	vals := make([]bitvec.Value, len(a.Option.Params))
	for i := range a.Option.Params {
		vals[i] = a.Sub[i].retValue(a.Option.Params[i])
	}
	return applyEncode(p.NT.RetWidth, a.Option.Encode, vals)
}

// applyEncode runs the assembly function: it writes constants and parameter
// bits into a width-bit destination.
func applyEncode(width int, encode []*isdl.BitAssign, argVals []bitvec.Value) bitvec.Value {
	out := bitvec.New(width)
	for _, ba := range encode {
		var src bitvec.Value
		if ba.ConstSet {
			src = ba.Const
		} else {
			src = argVals[ba.Param]
			if ba.PHi >= 0 {
				src = src.Slice(ba.PHi, ba.PLo)
			}
		}
		for k := 0; k <= ba.Hi-ba.Lo; k++ {
			out = out.WithBit(ba.Lo+k, src.Bit(k))
		}
	}
	return out
}

// EncodeInstruction encodes one VLIW instruction: one OpSpec per field, in
// field order. It verifies constraints and detects conflicting bit
// assignments between fields, and returns the instruction words (Size words
// of WordWidth bits).
func EncodeInstruction(d *isdl.Description, specs []*OpSpec) ([]bitvec.Value, error) {
	if len(specs) != len(d.Fields) {
		return nil, fmt.Errorf("asm: instruction needs %d operations, got %d", len(d.Fields), len(specs))
	}
	sel := map[*isdl.Operation]bool{}
	size := 1
	for i, sp := range specs {
		if sp.Op.Field != d.Fields[i] {
			return nil, fmt.Errorf("asm: operation %s is not in field %s", sp.Op.QualName(), d.Fields[i].Name)
		}
		sel[sp.Op] = true
		if sp.Op.Costs.Size > size {
			size = sp.Op.Costs.Size
		}
	}
	if err := decode.CheckConstraints(d, sel); err != nil {
		return nil, err
	}

	width := size * d.WordWidth
	img := bitvec.New(width)
	written := make([]int8, width) // -1 unwritten, else the bit value
	for i := range written {
		written[i] = -1
	}
	for _, sp := range specs {
		vals := make([]bitvec.Value, len(sp.Op.Params))
		for i, prm := range sp.Op.Params {
			vals[i] = sp.Args[i].retValue(prm)
		}
		part := applyEncode(size*d.WordWidth, sp.Op.Encode, vals)
		for _, ba := range sp.Op.Encode {
			for b := ba.Lo; b <= ba.Hi; b++ {
				v := int8(part.Bit(b))
				if written[b] >= 0 && written[b] != v {
					return nil, fmt.Errorf("asm: operations of different fields assign conflicting values to instruction bit %d", b)
				}
				written[b] = v
				img = img.WithBit(b, uint(v))
			}
		}
	}

	words := make([]bitvec.Value, size)
	for w := 0; w < size; w++ {
		words[w] = img.Slice((w+1)*d.WordWidth-1, w*d.WordWidth)
	}
	return words, nil
}

// NopSpec returns the OpSpec for a field's parameterless "nop" operation, or
// an error if the field has none. The assembler fills unmentioned VLIW
// fields with it.
func NopSpec(f *isdl.Field) (*OpSpec, error) {
	op, ok := f.ByName["nop"]
	if !ok {
		return nil, fmt.Errorf("asm: field %s has no nop operation to fill an unused slot", f.Name)
	}
	if len(op.Params) != 0 {
		return nil, fmt.Errorf("asm: field %s nop takes parameters", f.Name)
	}
	return &OpSpec{Op: op}, nil
}

// ImmFits reports whether value v (as written, possibly negative) fits an
// immediate token's width and signedness.
func ImmFits(t *isdl.Token, v int64) bool {
	if t.Signed {
		min := int64(-1) << uint(t.RetWidth-1)
		max := int64(1)<<uint(t.RetWidth-1) - 1
		return v >= min && v <= max
	}
	return v >= 0 && (t.RetWidth >= 64 || v < int64(1)<<uint(t.RetWidth))
}

// SymbolsSorted returns the program's symbols in address order, for listings.
func (p *Program) SymbolsSorted() []string {
	names := make([]string, 0, len(p.Symbols))
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if p.Symbols[names[i]] != p.Symbols[names[j]] {
			return p.Symbols[names[i]] < p.Symbols[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Listing renders an address/hex/source listing of the program.
func (p *Program) Listing() string {
	var sb strings.Builder
	for i, w := range p.Words {
		addr := p.Base + i
		src := p.Source[addr]
		fmt.Fprintf(&sb, "%04x  %s", addr, w)
		if src != "" {
			fmt.Fprintf(&sb, "  ; %s", src)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
