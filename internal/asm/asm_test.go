package asm_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
	"repro/internal/machines"
)

func toy(t testing.TB) *isdl.Description {
	t.Helper()
	return machines.Toy()
}

func TestAssembleBasic(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, `
; toy program
start:
    mv R1, #5
    add R2, R1, R1
    add R2, R2, #-3
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 4 {
		t.Fatalf("words: %d", len(p.Words))
	}
	if p.Symbols["start"] != 0 {
		t.Fatalf("symbols: %v", p.Symbols)
	}
	// mv R1, #5: opcode 3, d=1, s = {1,00000101} = 0x105.
	want := uint64(0x3<<20 | 1<<17 | 0x105)
	if got := p.Words[0].Uint64(); got != want {
		t.Fatalf("word0 = %#x, want %#x", got, want)
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, `
    jmp end
    halt
end:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["end"] != 2 {
		t.Fatalf("end = %d", p.Symbols["end"])
	}
	if got := p.Words[0].Uint64() & 0xff; got != 2 {
		t.Fatalf("jmp target = %d", got)
	}
}

func TestAssembleDirectives(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, `
.org 16
.data DMEM 4 10, 20, 30
loop:
    beq R0, R0, loop
.word 0xffffff
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 16 {
		t.Fatalf("base = %d", p.Base)
	}
	if p.Symbols["loop"] != 16 {
		t.Fatalf("loop = %d", p.Symbols["loop"])
	}
	if len(p.Data) != 1 || p.Data[0].Base != 4 || p.Data[0].Values[2].Uint64() != 30 {
		t.Fatalf("data: %+v", p.Data)
	}
	if p.Words[1].Uint64() != 0xffffff {
		t.Fatalf("raw word: %#x", p.Words[1].Uint64())
	}
}

func TestAssembleErrors(t *testing.T) {
	d := toy(t)
	cases := []struct{ name, src, want string }{
		{"unknown op", "frob R1", "unknown operation"},
		{"bad reg", "mv R9, #1", "not a valid"},
		{"imm range", "mv R1, #200", "no option"},
		{"uimm negative", "jmp -1", "does not fit"},
		{"undefined symbol", "jmp nowhere", "undefined symbol"},
		{"dup label", "x:\nhalt\nx:\nhalt", "duplicate label"},
		{"trailing", "halt R1", "trailing input"},
		{"two ops same field", "halt || halt", "two operations"},
		{"org after code", "halt\n.org 4", ".org must precede"},
		{"bad directive", ".frob 1", "unknown directive"},
		{"data overflow", ".data RF 7 1 2 3", "overflows"},
		{"data bad storage", ".data ACC 0 1", "not addressed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := asm.Assemble(d, c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestDecodeInstruction(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, "add R3, R2, #7")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := decode.Instruction(d, p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	op := inst.Ops[0]
	if op.Op.Name != "add" {
		t.Fatalf("op: %s", op.Op.Name)
	}
	if op.Args[0].Value.Uint64() != 3 || op.Args[1].Value.Uint64() != 2 {
		t.Fatalf("regs: %v %v", op.Args[0].Value, op.Args[1].Value)
	}
	src := op.Args[2]
	if src.Option.Index != 1 {
		t.Fatalf("SRC option %d, want 1 (immediate)", src.Option.Index)
	}
	if src.Sub[0].Value.Int64() != 7 {
		t.Fatalf("imm = %d", src.Sub[0].Value.Int64())
	}
}

func TestDecodeIllegal(t *testing.T) {
	d := toy(t)
	w := bitvec.FromUint64(24, 0xe00000) // opcode 0xe is unassigned
	if _, err := decode.Instruction(d, w); err == nil {
		t.Fatal("expected illegal instruction")
	}
}

func TestDisassembleRendering(t *testing.T) {
	d := toy(t)
	cases := []string{
		"add R1, R2, R3",
		"add R1, R2, #-5",
		"mv R7, #127",
		"ld R1, @R2",
		"st @R3, R4",
		"beq R1, R2, 9",
		"jmp 0",
		"push R5",
		"ret",
		"halt",
		"nop",
	}
	for _, src := range cases {
		p, err := asm.Assemble(d, src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		got, err := asm.DisassembleWord(d, p.Words[0])
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got != src {
			t.Errorf("disassemble(%q) = %q", src, got)
		}
	}
}

// TestRoundTripProperty is the Axiom 1 property test: for random operation
// instances, assemble → decode recovers the exact operation and parameter
// values, and the rendered text re-assembles to the identical words.
func TestRoundTripProperty(t *testing.T) {
	d := toy(t)
	rnd := rand.New(rand.NewSource(99))
	f := d.Fields[0]
	for iter := 0; iter < 2000; iter++ {
		op := f.Ops[rnd.Intn(len(f.Ops))]
		spec := randomSpec(rnd, op)
		words, err := asm.EncodeInstruction(d, []*asm.OpSpec{spec})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := decode.Instruction(d, words[0])
		if err != nil {
			t.Fatalf("%s: decode: %v", op.Name, err)
		}
		got := inst.Ops[0]
		if got.Op != op {
			t.Fatalf("decoded %s, want %s", got.Op.Name, op.Name)
		}
		for i := range spec.Args {
			wantRet := specRet(&spec.Args[i], op.Params[i])
			if !got.Args[i].Value.Eq(wantRet) {
				t.Fatalf("%s arg %d: decoded %s, want %s", op.Name, i, got.Args[i].Value, wantRet)
			}
		}
		// Text round trip.
		text := asm.RenderInst(d, inst)
		p2, err := asm.Assemble(d, text)
		if err != nil {
			t.Fatalf("reassemble %q: %v", text, err)
		}
		if !p2.Words[0].Eq(words[0]) {
			t.Fatalf("text round trip %q: %s != %s", text, p2.Words[0], words[0])
		}
	}
}

func specRet(a *asm.Arg, p *isdl.Param) bitvec.Value {
	if p.Token != nil {
		return a.Value
	}
	// Recompute via the public encode path: encode a one-op instruction and
	// extract — instead just rebuild with the same helper the assembler
	// used. Simpler: compare against the decode of the encoded value is
	// already done; here rebuild via option encode.
	vals := make([]bitvec.Value, len(a.Option.Params))
	for i := range a.Option.Params {
		vals[i] = specRet(&a.Sub[i], a.Option.Params[i])
	}
	ret := bitvec.New(p.NT.RetWidth)
	for _, ba := range a.Option.Encode {
		src := ba.Const
		if !ba.ConstSet {
			src = vals[ba.Param]
			if ba.PHi >= 0 {
				src = src.Slice(ba.PHi, ba.PLo)
			}
		}
		for k := 0; k <= ba.Hi-ba.Lo; k++ {
			ret = ret.WithBit(ba.Lo+k, src.Bit(k))
		}
	}
	return ret
}

func randomSpec(rnd *rand.Rand, op *isdl.Operation) *asm.OpSpec {
	spec := &asm.OpSpec{Op: op, Args: make([]asm.Arg, len(op.Params))}
	for i, prm := range op.Params {
		spec.Args[i] = randomArg(rnd, prm)
	}
	return spec
}

func randomArg(rnd *rand.Rand, p *isdl.Param) asm.Arg {
	if tok := p.Token; tok != nil {
		switch tok.Kind {
		case isdl.TokRegSet:
			n := tok.Lo + rnd.Intn(tok.Hi-tok.Lo+1)
			return asm.Arg{Value: bitvec.FromUint64(tok.RetWidth, uint64(n))}
		case isdl.TokEnum:
			i := rnd.Intn(len(tok.EnumValues))
			return asm.Arg{Value: bitvec.FromUint64(tok.RetWidth, tok.EnumValues[i])}
		default: // TokImm
			var v int64
			if tok.Signed {
				span := int64(1) << uint(tok.RetWidth)
				v = rnd.Int63n(span) - span/2
			} else {
				v = rnd.Int63n(int64(1) << uint(tok.RetWidth))
			}
			return asm.Arg{Value: bitvec.FromInt64(tok.RetWidth, v)}
		}
	}
	opt := p.NT.Options[rnd.Intn(len(p.NT.Options))]
	arg := asm.Arg{Option: opt, Sub: make([]asm.Arg, len(opt.Params))}
	for i, sp := range opt.Params {
		arg.Sub[i] = randomArg(rnd, sp)
	}
	return arg
}

func TestXBINRoundTrip(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, `
.org 8
.data DMEM 0 1 2 3
start:
    mv R1, #5
    jmp start
`)
	if err != nil {
		t.Fatal(err)
	}
	blob := asm.Marshal(p)
	p2, err := asm.Unmarshal(d, blob)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Base != p.Base || len(p2.Words) != len(p.Words) {
		t.Fatalf("base/words: %d/%d vs %d/%d", p2.Base, len(p2.Words), p.Base, len(p.Words))
	}
	for i := range p.Words {
		if !p2.Words[i].Eq(p.Words[i]) {
			t.Fatalf("word %d: %s != %s", i, p2.Words[i], p.Words[i])
		}
	}
	if p2.Symbols["start"] != 8 {
		t.Fatalf("symbols: %v", p2.Symbols)
	}
	if len(p2.Data) != 1 || p2.Data[0].Values[2].Uint64() != 3 {
		t.Fatalf("data: %+v", p2.Data)
	}
}

func TestXBINErrors(t *testing.T) {
	d := toy(t)
	cases := []struct{ name, src string }{
		{"no header", "W 000000\n"},
		{"wrong machine", "XBIN other 24\n"},
		{"wrong width", "XBIN toy 16\n"},
		{"bad word", "XBIN toy 24\nW zz\n"},
		{"bad record", "XBIN toy 24\nQ 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := asm.Unmarshal(d, []byte(c.src)); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestDisassembleProgramRoundTrip(t *testing.T) {
	d := toy(t)
	src := `
.org 4
.data DMEM 0 7 8
main:
    mv R1, #3
    call fn
    halt
fn:
    add R1, R1, #1
    ret
`
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	text := asm.DisassembleProgram(p)
	p2, err := asm.Assemble(d, text)
	if err != nil {
		t.Fatalf("listing did not re-assemble: %v\n%s", err, text)
	}
	if len(p2.Words) != len(p.Words) {
		t.Fatalf("listing changed length: %d vs %d", len(p2.Words), len(p.Words))
	}
	for i := range p.Words {
		if !p2.Words[i].Eq(p.Words[i]) {
			t.Fatalf("word %d differs after listing round trip:\n%s", i, text)
		}
	}
}

func TestListing(t *testing.T) {
	d := toy(t)
	p, err := asm.Assemble(d, "halt")
	if err != nil {
		t.Fatal(err)
	}
	l := p.Listing()
	if !strings.Contains(l, "halt") || !strings.Contains(l, "0000") {
		t.Fatalf("listing: %q", l)
	}
}

func TestFetchWordMultiWord(t *testing.T) {
	// A machine with a two-word operation exercises MaxSize > 1 paths.
	src := `
Machine wide;
Format 8;
Section Global_Definitions
Token IMM12 imm unsigned 12;
Section Storage
InstructionMemory IMEM width 8 depth 32;
Register ACC width 12;
ProgramCounter PC width 5;
Section Instruction_Set
Field F:
  op ldi (v: IMM12)
    Encode { I[7:4] = 0x1; I[3:0] = v[11:8]; I[15:8] = v[7:0]; }
    Action { ACC <- v; }
    Cost { Cycle = 1; Size = 2; }
  op nop
    Encode { I[7:4] = 0x0; }
`
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxSize() != 2 {
		t.Fatalf("MaxSize = %d", d.MaxSize())
	}
	p, err := asm.Assemble(d, "ldi 3000\nnop")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 3 {
		t.Fatalf("words: %d", len(p.Words))
	}
	img := decode.FetchWord(d, func(a int) bitvec.Value { return p.Words[a] }, 0)
	inst, err := decode.Instruction(d, img)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Size != 2 {
		t.Fatalf("size: %d", inst.Size)
	}
	if got := inst.Ops[0].Args[0].Value.Uint64(); got != 3000 {
		t.Fatalf("imm: %d", got)
	}
	text := asm.RenderInst(d, inst)
	if text != "ldi 3000" {
		t.Fatalf("render: %q", text)
	}
}
