package asm

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// The XBIN format is the simple textual object format the cmd tools exchange
// (the "BIN" box of Figure 1): a header naming the machine, the load base,
// symbols, data initializers and hex instruction words, one per line.

// Marshal renders the program in XBIN format.
func Marshal(p *Program) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "XBIN %s %d\n", p.Desc.Name, p.Desc.WordWidth)
	fmt.Fprintf(&sb, "ORG %d\n", p.Base)
	for _, name := range p.SymbolsSorted() {
		fmt.Fprintf(&sb, "SYM %s %d\n", name, p.Symbols[name])
	}
	for _, di := range p.Data {
		fmt.Fprintf(&sb, "DATA %s %d", di.Storage, di.Base)
		for _, v := range di.Values {
			fmt.Fprintf(&sb, " %x", v.Uint64())
		}
		sb.WriteByte('\n')
	}
	for _, w := range p.Words {
		fmt.Fprintf(&sb, "W %s\n", hexWord(w))
	}
	return []byte(sb.String())
}

func hexWord(v bitvec.Value) string {
	digits := (v.Width() + 3) / 4
	s := ""
	for i := 0; i < digits; i++ {
		nib := v.ShrL(4*i).Uint64() & 0xf
		s = fmt.Sprintf("%x", nib) + s
	}
	return s
}

// Unmarshal parses XBIN text against a description, verifying the machine
// name and word width.
func Unmarshal(d *isdl.Description, data []byte) (*Program, error) {
	p := &Program{Desc: d, Symbols: map[string]int{}, Source: map[int]string{}}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	lineNo := 0
	seenHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("xbin line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "XBIN":
			if len(fields) != 3 {
				return nil, fail("malformed header")
			}
			if fields[1] != d.Name {
				return nil, fail("program is for machine %q, description is %q", fields[1], d.Name)
			}
			w, err := strconv.Atoi(fields[2])
			if err != nil || w != d.WordWidth {
				return nil, fail("word width %s does not match description width %d", fields[2], d.WordWidth)
			}
			seenHeader = true
		case "ORG":
			if len(fields) != 2 {
				return nil, fail("malformed ORG")
			}
			b, err := strconv.Atoi(fields[1])
			if err != nil || b < 0 {
				return nil, fail("bad base %q", fields[1])
			}
			p.Base = b
		case "SYM":
			if len(fields) != 3 {
				return nil, fail("malformed SYM")
			}
			a, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fail("bad symbol address %q", fields[2])
			}
			p.Symbols[fields[1]] = a
		case "DATA":
			if len(fields) < 3 {
				return nil, fail("malformed DATA")
			}
			st, ok := d.StorageByName[fields[1]]
			if !ok {
				return nil, fail("unknown storage %s", fields[1])
			}
			base, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fail("bad DATA base %q", fields[2])
			}
			di := DataInit{Storage: fields[1], Base: base}
			for _, h := range fields[3:] {
				v, err := strconv.ParseUint(h, 16, 64)
				if err != nil {
					return nil, fail("bad DATA value %q", h)
				}
				di.Values = append(di.Values, bitvec.FromUint64(st.Width, v))
			}
			p.Data = append(p.Data, di)
		case "W":
			if len(fields) != 2 {
				return nil, fail("malformed W")
			}
			v, err := parseHexWord(d.WordWidth, fields[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Words = append(p.Words, v)
		default:
			return nil, fail("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("xbin: missing XBIN header")
	}
	return p, nil
}

func parseHexWord(width int, s string) (bitvec.Value, error) {
	v := bitvec.New(width)
	for _, c := range s {
		if !isHexDigit(byte(c)) {
			return bitvec.Value{}, fmt.Errorf("bad hex word %q", s)
		}
		v = v.Shl(4).Or(bitvec.FromUint64(width, uint64(hexVal(byte(c)))))
	}
	return v, nil
}
