package asm

import (
	"fmt"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// This file parses assembly text. The operand grammar is defined entirely by
// the ISDL description: operation syntax elements, token forms, and
// non-terminal options (tried in order, with backtracking). VLIW slots are
// separated by "||"; unmentioned fields are filled with the field's nop.
//
// Directives:
//
//	label:              define a symbol at the current address
//	.org N              set the location counter
//	.data STG BASE v…   initialize a data storage
//	.word v…            emit raw instruction words

// Assemble assembles source text into a Program. Assembly is two-pass so
// forward label references work.
func Assemble(d *isdl.Description, src string) (*Program, error) {
	a := &assembler{d: d}
	// Pass 1: compute label addresses.
	if _, err := a.run(src, nil, true); err != nil {
		return nil, err
	}
	syms := a.symbols
	// Pass 2: emit.
	p, err := a.run(src, syms, false)
	if err != nil {
		return nil, err
	}
	return p, nil
}

type assembler struct {
	d       *isdl.Description
	symbols map[string]int
}

func (a *assembler) run(src string, syms map[string]int, sizing bool) (*Program, error) {
	p := &Program{
		Desc:    a.d,
		Symbols: map[string]int{},
		Source:  map[int]string{},
	}
	a.symbols = p.Symbols
	lc := 0
	org := -1
	emitted := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}

		// Label definitions (possibly several) at the start of the line.
		for {
			name, rest, ok := splitLabel(line)
			if !ok {
				break
			}
			if _, dup := p.Symbols[name]; dup {
				return nil, fail("duplicate label %s", name)
			}
			p.Symbols[name] = lc
			line = rest
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}

		sc, err := scanLine(line)
		if err != nil {
			return nil, fail("%v", err)
		}

		switch {
		case sc.peekPunct("."):
			// Directive.
			sc.next()
			dir, ok := sc.ident()
			if !ok {
				return nil, fail("expected directive name after '.'")
			}
			switch dir {
			case "org":
				n, ok := sc.number()
				if !ok || n < 0 {
					return nil, fail(".org needs a non-negative address")
				}
				if emitted {
					return nil, fail(".org must precede instructions")
				}
				lc = int(n)
				org = int(n)
			case "data":
				stg, ok := sc.ident()
				if !ok {
					return nil, fail(".data needs a storage name")
				}
				st, okS := a.d.StorageByName[stg]
				if !okS || !st.Kind.Addressed() {
					return nil, fail(".data target %s is not addressed storage", stg)
				}
				base, ok := sc.number()
				if !ok || base < 0 {
					return nil, fail(".data needs a base address")
				}
				var vals []bitvec.Value
				for !sc.eol() {
					v, ok := sc.number()
					if !ok {
						return nil, fail(".data values must be numbers")
					}
					vals = append(vals, bitvec.FromInt64(st.Width, v))
					sc.acceptPunct(",")
				}
				if int(base)+len(vals) > st.Depth {
					return nil, fail(".data overflows %s (depth %d)", stg, st.Depth)
				}
				p.Data = append(p.Data, DataInit{Storage: stg, Base: int(base), Values: vals})
			case "word":
				for !sc.eol() {
					v, ok := sc.number()
					if !ok {
						return nil, fail(".word values must be numbers")
					}
					p.Words = append(p.Words, bitvec.FromInt64(a.d.WordWidth, v))
					p.Source[lc] = line
					lc++
					emitted = true
					sc.acceptPunct(",")
				}
			default:
				return nil, fail("unknown directive .%s", dir)
			}
			if !sc.eol() {
				return nil, fail("trailing input %q", sc.rest())
			}
			continue
		}

		words, err := a.assembleInstruction(sc, syms, sizing)
		if err != nil {
			return nil, fail("%v", err)
		}
		p.Source[lc] = line
		p.Words = append(p.Words, words...)
		lc += len(words)
		emitted = true
	}
	if org >= 0 {
		p.Base = org
	}
	return p, nil
}

func splitLabel(line string) (name, rest string, ok bool) {
	i := 0
	for i < len(line) && (isWordChar(line[i])) {
		i++
	}
	if i == 0 || i >= len(line) || line[i] != ':' || isDigitB(line[0]) {
		return "", "", false
	}
	return line[:i], strings.TrimSpace(line[i+1:]), true
}

// assembleInstruction parses "opspec (|| opspec)*" and encodes it.
func (a *assembler) assembleInstruction(sc *lineScan, syms map[string]int, sizing bool) ([]bitvec.Value, error) {
	specs := make([]*OpSpec, len(a.d.Fields))
	for {
		spec, err := a.parseOpSpec(sc, syms, sizing)
		if err != nil {
			return nil, err
		}
		idx := spec.Op.Field.Index
		if specs[idx] != nil {
			return nil, fmt.Errorf("two operations for field %s", spec.Op.Field.Name)
		}
		specs[idx] = spec
		if !sc.acceptPunct("||") {
			break
		}
	}
	if !sc.eol() {
		return nil, fmt.Errorf("trailing input %q", sc.rest())
	}
	for i, f := range a.d.Fields {
		if specs[i] == nil {
			nop, err := NopSpec(f)
			if err != nil {
				return nil, err
			}
			specs[i] = nop
		}
	}
	return EncodeInstruction(a.d, specs)
}

// parseOpSpec parses one "[field.]mnemonic operands" slot.
func (a *assembler) parseOpSpec(sc *lineScan, syms map[string]int, sizing bool) (*OpSpec, error) {
	name, ok := sc.ident()
	if !ok {
		return nil, fmt.Errorf("expected operation mnemonic, found %q", sc.rest())
	}
	var op *isdl.Operation
	if sc.acceptPunct(".") {
		f := a.d.FieldByName(name)
		if f == nil {
			return nil, fmt.Errorf("unknown field %s", name)
		}
		opName, ok := sc.ident()
		if !ok {
			return nil, fmt.Errorf("expected operation after %s.", name)
		}
		op = f.ByName[opName]
		if op == nil {
			return nil, fmt.Errorf("field %s has no operation %s", f.Name, opName)
		}
	} else {
		var matches []*isdl.Operation
		for _, f := range a.d.Fields {
			if o, ok := f.ByName[name]; ok {
				matches = append(matches, o)
			}
		}
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("unknown operation %s", name)
		case 1:
			op = matches[0]
		default:
			return nil, fmt.Errorf("operation %s exists in several fields; qualify it as FIELD.%s", name, name)
		}
	}

	args, err := a.matchSyntax(sc, op.Syntax, op.Params, syms, sizing)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", op.QualName(), err)
	}
	return &OpSpec{Op: op, Args: args}, nil
}

// matchSyntax matches syntax elements in order, producing one Arg per
// parameter.
func (a *assembler) matchSyntax(sc *lineScan, syn []isdl.SynElem, params []*isdl.Param, syms map[string]int, sizing bool) ([]Arg, error) {
	args := make([]Arg, len(params))
	for _, el := range syn {
		if el.Lit != "" {
			if !sc.acceptLit(el.Lit) {
				return nil, fmt.Errorf("expected %q, found %q", el.Lit, sc.rest())
			}
			continue
		}
		arg, err := a.matchParam(sc, params[el.Param], syms, sizing)
		if err != nil {
			return nil, err
		}
		args[el.Param] = arg
	}
	return args, nil
}

func (a *assembler) matchParam(sc *lineScan, p *isdl.Param, syms map[string]int, sizing bool) (Arg, error) {
	if p.Token != nil {
		return a.matchToken(sc, p.Token, syms, sizing)
	}
	// Non-terminal: try every option with backtracking and keep the one
	// that consumes the most input (so "@A0+" prefers the post-increment
	// option over its "@A0" prefix).
	var firstErr error
	best := Arg{}
	bestEnd := -1
	save := sc.save()
	for _, opt := range p.NT.Options {
		sc.restore(save)
		sub, err := a.matchSyntax(sc, opt.Syntax, opt.Params, syms, sizing)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if end := sc.save(); end > bestEnd {
			best = Arg{Option: opt, Sub: sub}
			bestEnd = end
		}
	}
	if bestEnd < 0 {
		sc.restore(save)
		return Arg{}, fmt.Errorf("no option of %s matches %q: %v", p.NT.Name, sc.rest(), firstErr)
	}
	sc.restore(bestEnd)
	return best, nil
}

func (a *assembler) matchToken(sc *lineScan, t *isdl.Token, syms map[string]int, sizing bool) (Arg, error) {
	switch t.Kind {
	case isdl.TokRegSet, isdl.TokEnum:
		save := sc.save()
		name, ok := sc.ident()
		if !ok {
			return Arg{}, fmt.Errorf("expected %s, found %q", t.Name, sc.rest())
		}
		v, ok := t.ValueFor(name)
		if !ok {
			sc.restore(save)
			return Arg{}, fmt.Errorf("%q is not a valid %s", name, t.Name)
		}
		return Arg{Value: v}, nil
	case isdl.TokImm:
		save := sc.save()
		if n, ok := sc.number(); ok {
			if !ImmFits(t, n) {
				sc.restore(save)
				return Arg{}, fmt.Errorf("immediate %d does not fit %s (%s %d bits)", n, t.Name, signedness(t), t.RetWidth)
			}
			return Arg{Value: bitvec.FromInt64(t.RetWidth, n)}, nil
		}
		if name, ok := sc.ident(); ok {
			addr, found := a.symbols[name]
			if syms != nil {
				addr, found = syms[name]
			}
			if !found {
				if sizing {
					return Arg{Value: bitvec.New(t.RetWidth)}, nil
				}
				sc.restore(save)
				return Arg{}, fmt.Errorf("undefined symbol %s", name)
			}
			if !ImmFits(t, int64(addr)) {
				sc.restore(save)
				return Arg{}, fmt.Errorf("symbol %s (=%d) does not fit %s", name, addr, t.Name)
			}
			return Arg{Value: bitvec.FromInt64(t.RetWidth, int64(addr))}, nil
		}
		return Arg{}, fmt.Errorf("expected immediate, found %q", sc.rest())
	}
	return Arg{}, fmt.Errorf("unsupported token kind")
}

func signedness(t *isdl.Token) string {
	if t.Signed {
		return "signed"
	}
	return "unsigned"
}

// ------------------------------------------------------------- scanner --

type atok struct {
	text  string
	num   int64
	isNum bool
}

type lineScan struct {
	toks []atok
	pos  int
	line string
}

func isWordChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }

func scanLine(line string) (*lineScan, error) {
	sc := &lineScan{line: line}
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case isDigitB(c):
			j := i
			base := 10
			if c == '0' && j+1 < len(line) && (line[j+1] == 'x' || line[j+1] == 'X') {
				base = 16
				j += 2
			}
			start := j
			for j < len(line) && isHexDigit(line[j]) {
				j++
			}
			digits := line[start:j]
			if base == 10 {
				// Re-scan decimal strictly.
				j = i
				for j < len(line) && isDigitB(line[j]) {
					j++
				}
				digits = line[i:j]
			}
			var v int64
			for _, ch := range digits {
				d := hexVal(byte(ch))
				if base == 10 && d > 9 {
					return nil, fmt.Errorf("invalid decimal digit %q", ch)
				}
				v = v*int64(base) + int64(d)
			}
			sc.toks = append(sc.toks, atok{text: line[i:j], num: v, isNum: true})
			i = j
		case isWordChar(c):
			j := i
			for j < len(line) && isWordChar(line[j]) {
				j++
			}
			sc.toks = append(sc.toks, atok{text: line[i:j]})
			i = j
		case c == '|' && i+1 < len(line) && line[i+1] == '|':
			sc.toks = append(sc.toks, atok{text: "||"})
			i += 2
		default:
			sc.toks = append(sc.toks, atok{text: string(c)})
			i++
		}
	}
	return sc, nil
}

func isHexDigit(c byte) bool {
	return isDigitB(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (sc *lineScan) save() int     { return sc.pos }
func (sc *lineScan) restore(p int) { sc.pos = p }
func (sc *lineScan) eol() bool     { return sc.pos >= len(sc.toks) }
func (sc *lineScan) peek() atok    { return sc.toks[sc.pos] }
func (sc *lineScan) next() atok    { t := sc.toks[sc.pos]; sc.pos++; return t }
func (sc *lineScan) peekPunct(s string) bool {
	return !sc.eol() && !sc.peek().isNum && sc.peek().text == s
}

func (sc *lineScan) acceptPunct(s string) bool {
	if sc.peekPunct(s) {
		sc.pos++
		return true
	}
	return false
}

// acceptLit matches a literal syntax element, which may span several scanner
// tokens (e.g. "]+").
func (sc *lineScan) acceptLit(lit string) bool {
	save := sc.pos
	rest := lit
	for rest != "" {
		if sc.eol() {
			sc.pos = save
			return false
		}
		t := sc.next().text
		if !strings.HasPrefix(rest, t) {
			sc.pos = save
			return false
		}
		rest = rest[len(t):]
	}
	return true
}

func (sc *lineScan) ident() (string, bool) {
	if sc.eol() || sc.peek().isNum || !isWordChar(sc.peek().text[0]) {
		return "", false
	}
	return sc.next().text, true
}

// number parses an optionally negated numeric token.
func (sc *lineScan) number() (int64, bool) {
	save := sc.pos
	neg := sc.acceptPunct("-")
	if sc.eol() || !sc.peek().isNum {
		sc.pos = save
		return 0, false
	}
	v := sc.next().num
	if neg {
		v = -v
	}
	return v, true
}

// rest renders the unconsumed tail for diagnostics.
func (sc *lineScan) rest() string {
	var parts []string
	for _, t := range sc.toks[sc.pos:] {
		parts = append(parts, t.text)
	}
	return strings.Join(parts, " ")
}
