package machines_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
)

func TestToyParses(t *testing.T) {
	d := machines.Toy()
	if d.Name != "toy" || len(d.Fields) != 1 {
		t.Fatalf("toy: %s, %d fields", d.Name, len(d.Fields))
	}
}

func TestSPAMParses(t *testing.T) {
	d := machines.SPAM()
	if d.Name != "spam" {
		t.Fatalf("name %q", d.Name)
	}
	// 4 operation fields + 3 parallel move fields, as the paper states.
	if len(d.Fields) != 7 { // ALU MAC BR ALU2 MV1 MV2 MV3
		t.Fatalf("fields: %d, want 7", len(d.Fields))
	}
	if d.WordWidth != 96 {
		t.Fatalf("width: %d", d.WordWidth)
	}
	if len(d.Constraints) != 5 {
		t.Fatalf("constraints: %d", len(d.Constraints))
	}
	mul := d.FieldByName("MAC").ByName["mul"]
	if mul.Costs.Stall != 2 || mul.Timing.Latency != 3 {
		t.Fatalf("mul timing: %+v %+v", mul.Costs, mul.Timing)
	}
}

func TestSPAM2Parses(t *testing.T) {
	d := machines.SPAM2()
	if d.Name != "spam2" || len(d.Fields) != 3 || d.WordWidth != 48 {
		t.Fatalf("spam2: %s, %d fields, %d bits", d.Name, len(d.Fields), d.WordWidth)
	}
}

// TestSPAMSmallerThanSPAM2 pins the relative complexity the Table 2 shape
// depends on.
func TestSPAMBiggerThanSPAM2(t *testing.T) {
	spam, spam2 := machines.SPAM(), machines.SPAM2()
	nSpam, nSpam2 := 0, 0
	for _, f := range spam.Fields {
		nSpam += len(f.Ops)
	}
	for _, f := range spam2.Fields {
		nSpam2 += len(f.Ops)
	}
	if nSpam <= nSpam2 {
		t.Fatalf("SPAM (%d ops) should be larger than SPAM2 (%d ops)", nSpam, nSpam2)
	}
}

func TestRISC32Parses(t *testing.T) {
	d := machines.RISC32()
	if d.Name != "risc32" || len(d.Fields) != 1 || d.WordWidth != 32 {
		t.Fatalf("risc32: %s, %d fields, %d bits", d.Name, len(d.Fields), d.WordWidth)
	}
	if d.StorageByName["RF"].Depth != 32 {
		t.Fatal("register file should have 32 entries")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	// FIR reference model basics.
	samples, coefs := machines.FIRTestVectors(4, 2)
	if len(samples) != 6 || len(coefs) != 4 {
		t.Fatalf("vector sizes: %d %d", len(samples), len(coefs))
	}
	want0 := uint32(samples[0]*coefs[0] + samples[1]*coefs[1] + samples[2]*coefs[2] + samples[3]*coefs[3])
	if got := machines.FIRReference(4, 2, samples, coefs)[0]; got != want0 {
		t.Fatalf("FIRReference[0] = %d, want %d", got, want0)
	}

	// Dot product reference.
	x := []int64{2, 3}
	y := []int64{4, 5}
	if got := machines.DotReference(2, x, y); got != 23 {
		t.Fatalf("DotReference = %d", got)
	}

	// VecAdd reference with 16-bit wrap.
	a := []int64{65535, 1}
	b := []int64{2, 2}
	c, sum := machines.VecAddReference(2, a, b)
	if c[0] != 1 || c[1] != 3 || sum != 4 {
		t.Fatalf("VecAddReference = %v, %d", c, sum)
	}

	// Generator guards.
	for name, f := range map[string]func(){
		"fir short samples": func() { machines.FIRSPAM(8, 8, make([]int64, 4), make([]int64, 8)) },
		"vec too long":      func() { machines.VecAddSPAM2(200, make([]int64, 200), make([]int64, 200)) },
		"dot short":         func() { machines.DotSPAM(4, make([]int64, 2), make([]int64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestWorkloadSourcesAssemble keeps every generator's output assemblable.
func TestWorkloadSourcesAssemble(t *testing.T) {
	spam := machines.SPAM()
	spam2 := machines.SPAM2()
	s, c := machines.FIRTestVectors(8, 8)
	if _, err := asm.Assemble(spam, machines.FIRSPAM(8, 8, s, c)); err != nil {
		t.Fatal(err)
	}
	x, y := machines.VecTestVectors(8)
	if _, err := asm.Assemble(spam, machines.DotSPAM(8, x, y)); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Assemble(spam2, machines.VecAddSPAM2(8, x, y)); err != nil {
		t.Fatal(err)
	}
}
