package machines_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/xsim"
)

func TestToyParses(t *testing.T) {
	d := machines.Toy()
	if d.Name != "toy" || len(d.Fields) != 1 {
		t.Fatalf("toy: %s, %d fields", d.Name, len(d.Fields))
	}
}

func TestSPAMParses(t *testing.T) {
	d := machines.SPAM()
	if d.Name != "spam" {
		t.Fatalf("name %q", d.Name)
	}
	// 4 operation fields + 3 parallel move fields, as the paper states.
	if len(d.Fields) != 7 { // ALU MAC BR ALU2 MV1 MV2 MV3
		t.Fatalf("fields: %d, want 7", len(d.Fields))
	}
	if d.WordWidth != 96 {
		t.Fatalf("width: %d", d.WordWidth)
	}
	if len(d.Constraints) != 5 {
		t.Fatalf("constraints: %d", len(d.Constraints))
	}
	mul := d.FieldByName("MAC").ByName["mul"]
	if mul.Costs.Stall != 2 || mul.Timing.Latency != 3 {
		t.Fatalf("mul timing: %+v %+v", mul.Costs, mul.Timing)
	}
}

func TestSPAM2Parses(t *testing.T) {
	d := machines.SPAM2()
	if d.Name != "spam2" || len(d.Fields) != 3 || d.WordWidth != 48 {
		t.Fatalf("spam2: %s, %d fields, %d bits", d.Name, len(d.Fields), d.WordWidth)
	}
}

// TestSPAMSmallerThanSPAM2 pins the relative complexity the Table 2 shape
// depends on.
func TestSPAMBiggerThanSPAM2(t *testing.T) {
	spam, spam2 := machines.SPAM(), machines.SPAM2()
	nSpam, nSpam2 := 0, 0
	for _, f := range spam.Fields {
		nSpam += len(f.Ops)
	}
	for _, f := range spam2.Fields {
		nSpam2 += len(f.Ops)
	}
	if nSpam <= nSpam2 {
		t.Fatalf("SPAM (%d ops) should be larger than SPAM2 (%d ops)", nSpam, nSpam2)
	}
}

func TestRISC32Parses(t *testing.T) {
	d := machines.RISC32()
	if d.Name != "risc32" || len(d.Fields) != 1 || d.WordWidth != 32 {
		t.Fatalf("risc32: %s, %d fields, %d bits", d.Name, len(d.Fields), d.WordWidth)
	}
	if d.StorageByName["RF"].Depth != 32 {
		t.Fatal("register file should have 32 entries")
	}
}

func TestWorkloadGenerators(t *testing.T) {
	// FIR reference model basics.
	samples, coefs := machines.FIRTestVectors(4, 2)
	if len(samples) != 6 || len(coefs) != 4 {
		t.Fatalf("vector sizes: %d %d", len(samples), len(coefs))
	}
	want0 := uint32(samples[0]*coefs[0] + samples[1]*coefs[1] + samples[2]*coefs[2] + samples[3]*coefs[3])
	if got := machines.FIRReference(4, 2, samples, coefs)[0]; got != want0 {
		t.Fatalf("FIRReference[0] = %d, want %d", got, want0)
	}

	// Dot product reference.
	x := []int64{2, 3}
	y := []int64{4, 5}
	if got := machines.DotReference(2, x, y); got != 23 {
		t.Fatalf("DotReference = %d", got)
	}

	// VecAdd reference with 16-bit wrap.
	a := []int64{65535, 1}
	b := []int64{2, 2}
	c, sum := machines.VecAddReference(2, a, b)
	if c[0] != 1 || c[1] != 3 || sum != 4 {
		t.Fatalf("VecAddReference = %v, %d", c, sum)
	}

	// Generator guards.
	for name, f := range map[string]func(){
		"fir short samples": func() { machines.FIRSPAM(8, 8, make([]int64, 4), make([]int64, 8)) },
		"vec too long":      func() { machines.VecAddSPAM2(200, make([]int64, 200), make([]int64, 200)) },
		"dot short":         func() { machines.DotSPAM(4, make([]int64, 2), make([]int64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestWorkloadSourcesAssemble keeps every generator's output assemblable.
func TestWorkloadSourcesAssemble(t *testing.T) {
	spam := machines.SPAM()
	spam2 := machines.SPAM2()
	s, c := machines.FIRTestVectors(8, 8)
	if _, err := asm.Assemble(spam, machines.FIRSPAM(8, 8, s, c)); err != nil {
		t.Fatal(err)
	}
	x, y := machines.VecTestVectors(8)
	if _, err := asm.Assemble(spam, machines.DotSPAM(8, x, y)); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Assemble(spam2, machines.VecAddSPAM2(8, x, y)); err != nil {
		t.Fatal(err)
	}
}

func TestRISCV5Parses(t *testing.T) {
	d := machines.RISCV5()
	if d.Name != "riscv5" || len(d.Fields) != 1 || d.WordWidth != 32 {
		t.Fatalf("riscv5: %s, %d fields, %d bits", d.Name, len(d.Fields), d.WordWidth)
	}
	if d.StorageByName["RF"].Depth != 32 || d.StorageByName["DMEM"].Depth != 1024 {
		t.Fatal("riscv5 should have 32 registers and 1024 data words")
	}
	ex := d.FieldByName("EX")
	if lw := ex.ByName["lw"]; lw.Timing.Latency != 2 {
		t.Fatalf("lw latency = %d, want 2 (load-use stall)", lw.Timing.Latency)
	}
	if mul := ex.ByName["mul"]; mul.Timing.Latency != 3 {
		t.Fatalf("mul latency = %d, want 3 (unbypassed multiplier)", mul.Timing.Latency)
	}
	if beq := ex.ByName["beq"]; beq.Timing.Usage != 2 {
		t.Fatalf("beq usage = %d, want 2 (branch bubble)", beq.Timing.Usage)
	}
}

func TestZoo(t *testing.T) {
	want := []string{"toy", "risc32", "riscv5", "spam", "spam2"}
	got := machines.ZooNames()
	if len(got) != len(want) {
		t.Fatalf("zoo = %v, want %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("zoo = %v, want %v", got, want)
		}
	}
	for _, e := range machines.Zoo() {
		d, err := machines.ByName(e.Name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != e.Name {
			t.Fatalf("ByName(%q) parsed machine %q", e.Name, d.Name)
		}
	}
	if _, err := machines.ByName("nonesuch"); err == nil {
		t.Fatal("ByName should reject unknown machines")
	}
}

// runRISCV5 assembles and runs src on riscv5, returning the simulator.
func runRISCV5(t *testing.T, src string) *xsim.Simulator {
	t.Helper()
	d := machines.RISCV5()
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !sim.Halted() {
		t.Fatal("program did not halt")
	}
	return sim
}

// TestRISCV5PipelineStalls pins the three timing behaviours the description
// models: the load-use stall, the unbypassed-multiplier latency, and the
// one-bubble branch penalty. Each case pairs a dependent sequence with an
// independent one so the test measures the stall, not the baseline.
func TestRISCV5PipelineStalls(t *testing.T) {
	// Load-use: the add consumes R2 the cycle after lw produces it in MEM.
	dep := runRISCV5(t, "li R1, 5\n sw R1, 0(R0)\n lw R2, 0(R0)\n add R3, R2, R2\n halt")
	indep := runRISCV5(t, "li R1, 5\n sw R1, 0(R0)\n lw R2, 0(R0)\n add R3, R1, R1\n halt")
	if got := dep.Stats().DataStalls - indep.Stats().DataStalls; got != 1 {
		t.Errorf("load-use stall = %d, want 1 (dep %d, indep %d)",
			got, dep.Stats().DataStalls, indep.Stats().DataStalls)
	}
	if got := dep.State().Get("RF", 3).Uint64(); got != 10 {
		t.Errorf("R3 = %d, want 10", got)
	}

	// Multiplier: latency 3 costs an immediate consumer two stall cycles.
	mdep := runRISCV5(t, "li R1, 6\n li R2, 7\n mul R3, R1, R2\n add R4, R3, R3\n halt")
	mindep := runRISCV5(t, "li R1, 6\n li R2, 7\n mul R3, R1, R2\n add R4, R1, R1\n halt")
	if got := mdep.Stats().DataStalls - mindep.Stats().DataStalls; got != 2 {
		t.Errorf("mul-use stalls = %d, want 2 (dep %d, indep %d)",
			got, mdep.Stats().DataStalls, mindep.Stats().DataStalls)
	}
	if got := mdep.State().Get("RF", 4).Uint64(); got != 84 {
		t.Errorf("R4 = %d, want 84", got)
	}

	// Branch bubble: every control transfer holds the issue slot an extra
	// cycle (Usage 2), taken or not.
	br := runRISCV5(t, "beq R0, R0, 2\n nop\n bne R0, R0, 4\n nop\n halt")
	if br.Stats().StructStalls == 0 {
		t.Error("branches should cost structural stall cycles (branch bubble)")
	}
	nobr := runRISCV5(t, "nop\n nop\n nop\n nop\n halt")
	if nobr.Stats().StructStalls != 0 {
		t.Errorf("straight-line code has %d structural stalls, want 0", nobr.Stats().StructStalls)
	}
	if br.Stats().Cycles <= nobr.Stats().Cycles {
		t.Errorf("branchy code (%d cycles) should be slower than straight-line (%d)",
			br.Stats().Cycles, nobr.Stats().Cycles)
	}
}
