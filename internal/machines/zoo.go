package machines

import (
	"fmt"
	"sort"

	"repro/internal/isdl"
)

// The machine zoo: every bundled ISDL description under a stable name, in a
// deterministic order. The suite registry, the repro facade and the CLIs all
// enumerate machines through this table, so adding a description here is the
// single step that makes it visible everywhere.

// ZooEntry is one bundled machine.
type ZooEntry struct {
	// Name is the stable lookup key ("toy", "spam", ...).
	Name string
	// Source is the ISDL text.
	Source string
	// Parse builds the parsed description (panics on error; the sources
	// are compiled-in constants covered by tests).
	Parse func() *isdl.Description
}

// Zoo returns the bundled machines in their canonical order.
func Zoo() []ZooEntry {
	return []ZooEntry{
		{Name: "toy", Source: ToySource, Parse: Toy},
		{Name: "risc32", Source: RISC32Source, Parse: RISC32},
		{Name: "riscv5", Source: RISCV5Source, Parse: RISCV5},
		{Name: "spam", Source: SPAMSource, Parse: SPAM},
		{Name: "spam2", Source: SPAM2Source, Parse: SPAM2},
	}
}

// ZooNames returns the zoo's machine names in canonical order.
func ZooNames() []string {
	zoo := Zoo()
	names := make([]string, len(zoo))
	for i, e := range zoo {
		names[i] = e.Name
	}
	return names
}

// ByName parses the named zoo machine.
func ByName(name string) (*isdl.Description, error) {
	for _, e := range Zoo() {
		if e.Name == name {
			return e.Parse(), nil
		}
	}
	known := ZooNames()
	sort.Strings(known)
	return nil, fmt.Errorf("machines: unknown machine %q (have %v)", name, known)
}
