package machines

import "repro/internal/isdl"

// RISCV5Source is a pipelined RISC-V-flavoured 32-bit load/store machine —
// the "machine zoo" member that stresses the §3.3.3 latency/usage model
// beyond SPAM's DSP shape (ROADMAP item 4; PAPERS.md: "Towards Accurate
// Performance Modeling of RISC-V Designs"). The description models a classic
// 5-stage pipeline (IF ID EX MEM WB) with full forwarding through the
// Timing annotations:
//
//   - ALU results forward EX→EX: Latency 1, no stall.
//   - Loads produce in MEM: Latency 2, so a dependent consumer in the next
//     slot takes the one-cycle load-use stall (counted as a data stall).
//   - The multiplier is a 3-stage pipelined unit without a bypass:
//     Latency 3 (up to two data-stall cycles for an immediate consumer),
//     but Usage 1 — back-to-back independent multiplies issue every cycle.
//   - Control transfers (branches taken or not, jumps) hold the single
//     issue field for an extra cycle (Usage 2): the static one-bubble
//     fetch-redirect penalty of a pipeline without branch prediction,
//     counted as a structural stall.
//
// The instruction set is RV32I-flavoured (addi/slli/srli immediates,
// lui/li constants, lw/sw with register+offset addressing, beq/bne plus the
// beqz/bnez compare-to-zero forms, jal with a link register in R31) so the
// retargetable compiler classifies a rich target: three-address ALU ops
// with immediate forms, shift-immediates, an RF-destination multiply, and
// both branch primitives.
const RISCV5Source = `
Machine riscv5;
Format 32;

Section Global_Definitions

Token GPR "R" [0..31];
Token IMM16 imm signed 16;
Token SH5 imm unsigned 5;
Token OFF imm signed 10;
Token TGT imm unsigned 10;

Section Storage

InstructionMemory IMEM width 32 depth 1024;
DataMemory DMEM width 32 depth 1024;
RegFile RF width 32 depth 32;
ControlRegister HLT width 1;
ProgramCounter PC width 10;

Section Instruction_Set

Field EX:
  op add (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000000; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] + RF[b]; }
    Timing { Latency = 1; Usage = 1; }
  op sub (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000001; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] - RF[b]; }
  op and (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000010; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] & RF[b]; }
  op or (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000011; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] | RF[b]; }
  op xor (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000100; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] ^ RF[b]; }
  op sll (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000101; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] << (RF[b] & 31); }
  op srl (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000110; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] >> (RF[b] & 31); }
  op sra (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000111; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- asr(RF[a], RF[b] & 31); }
  op mul (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b001000; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] * RF[b]; }
    Cost { Cycle = 1; Stall = 2; }
    Timing { Latency = 3; Usage = 1; }
  op addi (d: GPR) "," (a: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001001; I[25:21] = d; I[20:16] = a; I[15:0] = i; }
    Action { RF[d] <- RF[a] + sext(i, 32); }
  op andi (d: GPR) "," (a: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001010; I[25:21] = d; I[20:16] = a; I[15:0] = i; }
    Action { RF[d] <- RF[a] & sext(i, 32); }
  op ori (d: GPR) "," (a: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001011; I[25:21] = d; I[20:16] = a; I[15:0] = i; }
    Action { RF[d] <- RF[a] | sext(i, 32); }
  op slli (d: GPR) "," (a: GPR) "," (i: SH5)
    Encode { I[31:26] = 0b001100; I[25:21] = d; I[20:16] = a; I[15:11] = i; }
    Action { RF[d] <- RF[a] << i; }
  op srli (d: GPR) "," (a: GPR) "," (i: SH5)
    Encode { I[31:26] = 0b001101; I[25:21] = d; I[20:16] = a; I[15:11] = i; }
    Action { RF[d] <- RF[a] >> i; }
  op li (d: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001110; I[25:21] = d; I[15:0] = i; }
    Action { RF[d] <- sext(i, 32); }
  op lui (d: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001111; I[25:21] = d; I[15:0] = i; }
    Action { RF[d] <- concat(i, 0x0000); }
  op lw (d: GPR) "," (o: OFF) "(" (a: GPR) ")"
    Encode { I[31:26] = 0b010000; I[25:21] = d; I[20:16] = a; I[9:0] = o; }
    Action { RF[d] <- DMEM[RF[a] + sext(o, 32)]; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 2; Usage = 1; }
  op sw (v: GPR) "," (o: OFF) "(" (a: GPR) ")"
    Encode { I[31:26] = 0b010001; I[25:21] = v; I[20:16] = a; I[9:0] = o; }
    Action { DMEM[RF[a] + sext(o, 32)] <- RF[v]; }
  op beq (a: GPR) "," (b: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b010010; I[25:21] = a; I[20:16] = b; I[9:0] = t; }
    Action { if (RF[a] == RF[b]) { PC <- t; } }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op bne (a: GPR) "," (b: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b010011; I[25:21] = a; I[20:16] = b; I[9:0] = t; }
    Action { if (RF[a] != RF[b]) { PC <- t; } }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op beqz (a: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b010100; I[25:21] = a; I[9:0] = t; }
    Action { if (RF[a] == 0) { PC <- t; } }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op bnez (a: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b010101; I[25:21] = a; I[9:0] = t; }
    Action { if (RF[a] != 0) { PC <- t; } }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op j (t: TGT)
    Encode { I[31:26] = 0b010110; I[9:0] = t; }
    Action { PC <- t; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op jal (t: TGT)
    Encode { I[31:26] = 0b010111; I[9:0] = t; }
    Action { RF[31] <- zext(PC, 32); PC <- t; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op jr (a: GPR)
    Encode { I[31:26] = 0b011000; I[20:16] = a; }
    Action { PC <- trunc(RF[a], 10); }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 1; Usage = 2; }
  op halt
    Encode { I[31:26] = 0b111110; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[31:26] = 0b111111; }

Section Architectural_Information

issue_width = 1;
description = "5-stage pipelined RISC-V-flavoured 32-bit RISC with load-use and branch stalls";
`

// RISCV5 parses RISCV5Source; panics on error (compiled-in constant,
// covered by tests).
func RISCV5() *isdl.Description {
	d, err := isdl.Parse(RISCV5Source)
	if err != nil {
		panic("machines: RISCV5 description invalid: " + err.Error())
	}
	return d
}
