package machines

import "repro/internal/isdl"

// SPAMSource is our reconstruction of the SPAM processor the paper
// evaluates (§6): a 4-way VLIW that "can do 4 operations and 3 parallel
// moves at the same time". The original ISDL description is unpublished;
// this one matches the stated shape: four operation fields (two ALU-class
// units, a multiply-accumulate unit, and a branch unit) plus three parallel
// move fields over two data memories with post-increment address-register
// addressing. The paper's floating-point datapath is modeled as fixed-point
// of the same width (see DESIGN.md substitutions): identical field
// structure, port pressure and unit mix, without an IEEE-754 substrate that
// ISDL's RTL never exposes.
//
// The constraints express write-port and bus conflicts (accumulator stores
// use the ALU write port; the two store buses are shared), which is exactly
// the structural information §4.1.1 mines for resource sharing.
const SPAMSource = `
Machine spam;
Format 96;

Section Global_Definitions

Token GPR "R" [0..15];
Token AR  "A" [0..7];
Token IMM8 imm signed 8;
Token UIMM12 imm unsigned 12;

// Register-or-immediate ALU operand.
Non_Terminal ALUSRC width 9 :
  option (r: GPR)
    Encode { R[8] = 0b0; R[7:4] = 0b0000; R[3:0] = r; }
    Value { RF[r] }
  option "#" (i: IMM8)
    Encode { R[8] = 0b1; R[7:0] = i; }
    Value { sext(i, 32) }
;

// X-memory operand with optional post-increment.
Non_Terminal MEMX width 4 :
  option "@" (a: AR)
    Encode { R[3] = 0b0; R[2:0] = a; }
    Value { DMX[AR[a]] }
  option "@" (a: AR) "+"
    Encode { R[3] = 0b1; R[2:0] = a; }
    Value { DMX[AR[a]] }
    SideEffect { AR[a] <- AR[a] + 1; }
;

// Y-memory operand with optional post-increment.
Non_Terminal MEMY width 4 :
  option "@" (a: AR)
    Encode { R[3] = 0b0; R[2:0] = a; }
    Value { DMY[AR[a]] }
  option "@" (a: AR) "+"
    Encode { R[3] = 0b1; R[2:0] = a; }
    Value { DMY[AR[a]] }
    SideEffect { AR[a] <- AR[a] + 1; }
;

Section Storage

InstructionMemory IMEM width 96 depth 1024;
DataMemory DMX width 32 depth 1024;
DataMemory DMY width 32 depth 1024;
RegFile RF width 32 depth 16;
RegFile AR width 16 depth 8;
Register ACC width 64;
Register LR width 12;
ControlRegister SR width 4;
ControlRegister HLT width 1;
ProgramCounter PC width 12;
Alias ACCHI = ACC[63:32];
Alias ACCLO = ACC[31:0];

Section Instruction_Set

// Primary ALU: bits [95:75].
Field ALU:
  op add (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x0; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] + s; }
    SideEffect { SR[2:2] <- carry(RF[a], s); }
  op sub (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x1; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] - s; }
    SideEffect { SR[3:3] <- borrow(RF[a], s); }
  op and (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x2; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] & s; }
  op or (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x3; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] | s; }
  op xor (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x4; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] ^ s; }
  op shl (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x5; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] << s; }
  op shr (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x6; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- RF[a] >> s; }
  op asr (d: GPR) "," (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x7; I[91:88] = d; I[87:84] = a; I[83:75] = s; }
    Action { RF[d] <- asr(RF[a], s); }
  op mvi (d: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x8; I[91:88] = d; I[83:75] = s; }
    Action { RF[d] <- s; }
  op cmp (a: GPR) "," (s: ALUSRC)
    Encode { I[95:92] = 0x9; I[87:84] = a; I[83:75] = s; }
    Action { SR[0:0] <- RF[a] == s; SR[1:1] <- slt(RF[a], s); }
  op nop
    Encode { I[95:92] = 0xf; }

// Multiply-accumulate unit: bits [74:60]. The multiplier is pipelined:
// Cycle 1, Stall 2, Latency 3 (§4.1.3 infers a 3-stage datapath without
// bypass for it).
Field MAC:
  op mul (a: GPR) "," (b: GPR)
    Encode { I[74:72] = 0b000; I[71:68] = a; I[67:64] = b; }
    Action { ACC <- zext(RF[a], 64) * zext(RF[b], 64); }
    Cost { Cycle = 1; Stall = 2; Size = 1; }
    Timing { Latency = 3; Usage = 1; }
  op mac (a: GPR) "," (b: GPR)
    Encode { I[74:72] = 0b001; I[71:68] = a; I[67:64] = b; }
    Action { ACC <- ACC + zext(RF[a], 64) * zext(RF[b], 64); }
    Cost { Cycle = 1; Stall = 2; Size = 1; }
    Timing { Latency = 3; Usage = 1; }
  op clr
    Encode { I[74:72] = 0b010; }
    Action { ACC <- 0; }
  op sachi (d: GPR)
    Encode { I[74:72] = 0b011; I[63:60] = d; }
    Action { RF[d] <- ACCHI; }
  op saclo (d: GPR)
    Encode { I[74:72] = 0b100; I[63:60] = d; }
    Action { RF[d] <- ACCLO; }
  op nop
    Encode { I[74:72] = 0b111; }

// Branch unit: bits [59:41].
Field BR:
  op beqz (r: GPR) "," (t: UIMM12)
    Encode { I[59:57] = 0b000; I[56:53] = r; I[52:41] = t; }
    Action { if (RF[r] == 0) { PC <- t; } }
  op bnez (r: GPR) "," (t: UIMM12)
    Encode { I[59:57] = 0b001; I[56:53] = r; I[52:41] = t; }
    Action { if (RF[r] != 0) { PC <- t; } }
  op jmp (t: UIMM12)
    Encode { I[59:57] = 0b010; I[52:41] = t; }
    Action { PC <- t; }
  op call (t: UIMM12)
    Encode { I[59:57] = 0b011; I[52:41] = t; }
    Action { LR <- PC; PC <- t; }
  op ret
    Encode { I[59:57] = 0b100; }
    Action { PC <- LR; }
  op djnz (r: GPR) "," (t: UIMM12)
    Encode { I[59:57] = 0b101; I[56:53] = r; I[52:41] = t; }
    Action { RF[r] <- RF[r] - 1; if (RF[r] != 1) { PC <- t; } }
  op halt
    Encode { I[59:57] = 0b110; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[59:57] = 0b111; }

// Move field 1: X-memory loads and stores, bits [40:31]. Loads have a
// one-cycle load-use penalty (Latency 2, Stall 1).
Field MV1:
  op ldx (d: GPR) "," (m: MEMX)
    Encode { I[40:39] = 0b00; I[38:35] = d; I[34:31] = m; }
    Action { RF[d] <- m; }
    Cost { Cycle = 1; Stall = 1; Size = 1; }
    Timing { Latency = 2; Usage = 1; }
  op stx (m: MEMX) "," (v: GPR)
    Encode { I[40:39] = 0b01; I[38:35] = v; I[34:31] = m; }
    Action { m <- RF[v]; }
  op nop
    Encode { I[40:39] = 0b11; }

// Move field 2: Y-memory loads and stores, bits [30:21].
Field MV2:
  op ldy (d: GPR) "," (m: MEMY)
    Encode { I[30:29] = 0b00; I[28:25] = d; I[24:21] = m; }
    Action { RF[d] <- m; }
    Cost { Cycle = 1; Stall = 1; Size = 1; }
    Timing { Latency = 2; Usage = 1; }
  op sty (m: MEMY) "," (v: GPR)
    Encode { I[30:29] = 0b01; I[28:25] = v; I[24:21] = m; }
    Action { m <- RF[v]; }
  op nop
    Encode { I[30:29] = 0b11; }

// Move field 3: register-to-register traffic, bits [20:11].
Field MV3:
  op mvr (d: GPR) "," (s: GPR)
    Encode { I[20:19] = 0b00; I[18:15] = d; I[14:11] = s; }
    Action { RF[d] <- RF[s]; }
  op mvar (a: AR) "," (s: GPR)
    Encode { I[20:19] = 0b01; I[17:15] = a; I[14:11] = s; }
    Action { AR[a] <- RF[s][15:0]; }
  op mvra (d: GPR) "," (a: AR)
    Encode { I[20:19] = 0b10; I[18:15] = d; I[13:11] = a; }
    Action { RF[d] <- zext(AR[a], 32); }
  op nop
    Encode { I[20:19] = 0b11; }

// Secondary ALU (two-operand, destructive): bits [10:0]. Together with
// ALU, MAC and BR this makes the four operation units of the paper's
// "4 operations and 3 parallel moves".
Field ALU2:
  op add2 (d: GPR) "," (a: GPR)
    Encode { I[10:9] = 0b00; I[8:5] = d; I[4:1] = a; }
    Action { RF[d] <- RF[d] + RF[a]; }
  op sub2 (d: GPR) "," (a: GPR)
    Encode { I[10:9] = 0b01; I[8:5] = d; I[4:1] = a; }
    Action { RF[d] <- RF[d] - RF[a]; }
  op neg2 (d: GPR)
    Encode { I[10:9] = 0b10; I[8:5] = d; }
    Action { RF[d] <- -RF[d]; }
  op nop
    Encode { I[10:9] = 0b11; }

Section Constraints

// Accumulator stores use the ALU's register-file write port.
constraint MAC.sachi -> ALU.nop;
constraint MAC.saclo -> ALU.nop;
// The two store buses are shared: at most one store per instruction.
never MV1.stx & MV2.sty;
// The branch unit's link-register path shares the MV3 write bus.
constraint BR.call -> MV3.nop;
// djnz borrows the primary ALU's subtracter — the paper's §4.1.1 pattern
// where a constraint is what makes a cross-field resource share legal.
constraint BR.djnz -> ALU.nop;

Section Architectural_Information

issue_width = 7;
description = "4-way fixed-point VLIW with 3 parallel moves (SPAM reconstruction)";
`

// SPAM2Source reconstructs SPAM2, "a simpler 3-way VLIW architecture with a
// limited number of operations" (§6): one ALU field, one branch field and a
// single move field over one data memory.
const SPAM2Source = `
Machine spam2;
Format 48;

Section Global_Definitions

Token GPR "R" [0..7];
Token AR  "A" [0..3];
Token IMM8 imm signed 8;
Token UIMM10 imm unsigned 10;

Non_Terminal SRC width 9 :
  option (r: GPR)
    Encode { R[8] = 0b0; R[7:3] = 0b00000; R[2:0] = r; }
    Value { RF[r] }
  option "#" (i: IMM8)
    Encode { R[8] = 0b1; R[7:0] = i; }
    Value { sext(i, 16) }
;

Non_Terminal MEM width 3 :
  option "@" (a: AR)
    Encode { R[2] = 0b0; R[1:0] = a; }
    Value { DM[AR[a]] }
  option "@" (a: AR) "+"
    Encode { R[2] = 0b1; R[1:0] = a; }
    Value { DM[AR[a]] }
    SideEffect { AR[a] <- AR[a] + 1; }
;

Section Storage

InstructionMemory IMEM width 48 depth 1024;
DataMemory DM width 16 depth 512;
RegFile RF width 16 depth 8;
RegFile AR width 10 depth 4;
ControlRegister SR width 2;
ControlRegister HLT width 1;
ProgramCounter PC width 10;

Section Instruction_Set

// ALU: bits [47:30].
Field ALU:
  op add (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[47:45] = 0b000; I[44:42] = d; I[41:39] = a; I[38:30] = s; }
    Action { RF[d] <- RF[a] + s; }
  op sub (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[47:45] = 0b001; I[44:42] = d; I[41:39] = a; I[38:30] = s; }
    Action { RF[d] <- RF[a] - s; }
  op and (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[47:45] = 0b010; I[44:42] = d; I[41:39] = a; I[38:30] = s; }
    Action { RF[d] <- RF[a] & s; }
  op mvi (d: GPR) "," (s: SRC)
    Encode { I[47:45] = 0b011; I[44:42] = d; I[38:30] = s; }
    Action { RF[d] <- s; }
  op cmp (a: GPR) "," (s: SRC)
    Encode { I[47:45] = 0b100; I[41:39] = a; I[38:30] = s; }
    Action { SR[0:0] <- RF[a] == s; SR[1:1] <- slt(RF[a], s); }
  op nop
    Encode { I[47:45] = 0b111; }

// Branch unit: bits [29:15].
Field BR:
  op beqz (r: GPR) "," (t: UIMM10)
    Encode { I[29:28] = 0b00; I[27:25] = r; I[24:15] = t; }
    Action { if (RF[r] == 0) { PC <- t; } }
  op jmp (t: UIMM10)
    Encode { I[29:28] = 0b01; I[24:15] = t; }
    Action { PC <- t; }
  op halt
    Encode { I[29:28] = 0b10; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[29:28] = 0b11; }

// Single move field: bits [14:4].
Field MV:
  op ld (d: GPR) "," (m: MEM)
    Encode { I[14:13] = 0b00; I[12:10] = d; I[9:7] = m; }
    Action { RF[d] <- m; }
    Cost { Cycle = 1; Stall = 1; Size = 1; }
    Timing { Latency = 2; Usage = 1; }
  op st (m: MEM) "," (v: GPR)
    Encode { I[14:13] = 0b01; I[12:10] = v; I[9:7] = m; }
    Action { m <- RF[v]; }
  op mvar (a: AR) "," (s: GPR)
    Encode { I[14:13] = 0b10; I[6:5] = a; I[12:10] = s; }
    Action { AR[a] <- zext(RF[s], 10); }
  op nop
    Encode { I[14:13] = 0b11; }

Section Constraints

// A load and a taken branch share the memory/PC address bus.
constraint MV.ld -> BR.nop;

Section Architectural_Information

issue_width = 3;
description = "3-way VLIW with a limited operation set (SPAM2 reconstruction)";
`

// SPAM parses SPAMSource; panics on error (compiled-in constant, covered by
// tests).
func SPAM() *isdl.Description {
	d, err := isdl.Parse(SPAMSource)
	if err != nil {
		panic("machines: SPAM description invalid: " + err.Error())
	}
	return d
}

// SPAM2 parses SPAM2Source; panics on error.
func SPAM2() *isdl.Description {
	d, err := isdl.Parse(SPAM2Source)
	if err != nil {
		panic("machines: SPAM2 description invalid: " + err.Error())
	}
	return d
}
