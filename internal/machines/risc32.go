package machines

import "repro/internal/isdl"

// RISC32Source is a single-issue 32-bit load/store RISC, included alongside
// the paper's two VLIWs to demonstrate the breadth ISDL targets (§2: "ISDL
// attempts to cover a wide range of architectures"): a large register file,
// register+offset addressing, compare-into-register, and a link-register
// call — a very different shape from the DSP-style SPAM machines, consumed
// by the same generated tools without modification.
const RISC32Source = `
Machine risc32;
Format 32;

Section Global_Definitions

Token GPR "R" [0..31];
Token IMM16 imm signed 16;
Token OFF imm signed 10;
Token TGT imm unsigned 10;

Section Storage

InstructionMemory IMEM width 32 depth 1024;
DataMemory DMEM width 32 depth 1024;
RegFile RF width 32 depth 32;
ControlRegister HLT width 1;
ProgramCounter PC width 10;

Section Instruction_Set

Field EX:
  op add (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000000; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] + RF[b]; }
  op sub (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000001; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] - RF[b]; }
  op and (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000010; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] & RF[b]; }
  op or (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000011; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] | RF[b]; }
  op xor (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000100; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] ^ RF[b]; }
  op sll (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000101; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] << (RF[b] & 31); }
  op srl (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000110; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- RF[a] >> (RF[b] & 31); }
  op sra (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b000111; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- asr(RF[a], RF[b] & 31); }
  op slt (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:26] = 0b001000; I[25:21] = d; I[20:16] = a; I[15:11] = b; }
    Action { RF[d] <- zext(slt(RF[a], RF[b]), 32); }
  op addi (d: GPR) "," (a: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001001; I[25:21] = d; I[20:16] = a; I[15:0] = i; }
    Action { RF[d] <- RF[a] + sext(i, 32); }
  op lui (d: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001010; I[25:21] = d; I[15:0] = i; }
    Action { RF[d] <- concat(i, 0x0000); }
  op li (d: GPR) "," (i: IMM16)
    Encode { I[31:26] = 0b001011; I[25:21] = d; I[15:0] = i; }
    Action { RF[d] <- sext(i, 32); }
  op lw (d: GPR) "," (o: OFF) "(" (a: GPR) ")"
    Encode { I[31:26] = 0b001100; I[25:21] = d; I[20:16] = a; I[9:0] = o; }
    Action { RF[d] <- DMEM[RF[a] + sext(o, 32)]; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 2; Usage = 1; }
  op sw (v: GPR) "," (o: OFF) "(" (a: GPR) ")"
    Encode { I[31:26] = 0b001101; I[25:21] = v; I[20:16] = a; I[9:0] = o; }
    Action { DMEM[RF[a] + sext(o, 32)] <- RF[v]; }
  op beq (a: GPR) "," (b: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b001110; I[25:21] = a; I[20:16] = b; I[9:0] = t; }
    Action { if (RF[a] == RF[b]) { PC <- t; } }
  op bne (a: GPR) "," (b: GPR) "," (t: TGT)
    Encode { I[31:26] = 0b001111; I[25:21] = a; I[20:16] = b; I[9:0] = t; }
    Action { if (RF[a] != RF[b]) { PC <- t; } }
  op j (t: TGT)
    Encode { I[31:26] = 0b010000; I[9:0] = t; }
    Action { PC <- t; }
  op jal (t: TGT)
    Encode { I[31:26] = 0b010001; I[9:0] = t; }
    Action { RF[31] <- zext(PC, 32); PC <- t; }
  op jr (a: GPR)
    Encode { I[31:26] = 0b010010; I[20:16] = a; }
    Action { PC <- trunc(RF[a], 10); }
  op halt
    Encode { I[31:26] = 0b111110; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[31:26] = 0b111111; }

Section Architectural_Information

issue_width = 1;
description = "single-issue 32-bit load/store RISC";
`

// RISC32 parses RISC32Source; panics on error (compiled-in constant,
// covered by tests).
func RISC32() *isdl.Description {
	d, err := isdl.Parse(RISC32Source)
	if err != nil {
		panic("machines: RISC32 description invalid: " + err.Error())
	}
	return d
}
