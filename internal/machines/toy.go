// Package machines holds the ISDL descriptions used throughout the
// repository: Toy (a small single-issue machine used by tests and the
// quickstart), and SPAM / SPAM2, the two VLIW processors of the paper's
// evaluation (§6).
package machines

import "repro/internal/isdl"

// ToySource is the ISDL text of a small 8-bit single-issue accumulator-free
// load/store machine. It exercises every ISDL construct: both token forms,
// a non-terminal with two addressing-mode options, every storage kind,
// control flow through the PC, the stack builtins, and a multi-cycle
// operation with a non-unit latency.
const ToySource = `
Machine toy;
Format 24;

Section Global_Definitions

Token GPR "R" [0..7];
Token IMM8 imm signed 8;
Token UIMM8 imm unsigned 8;

// SRC is a classic register-or-immediate addressing mode.
Non_Terminal SRC width 9 :
  option (r: GPR)
    Encode { R[8] = 0b0; R[7:3] = 0b00000; R[2:0] = r; }
    Value { RF[r] }
  option "#" (i: IMM8)
    Encode { R[8] = 0b1; R[7:0] = i; }
    Value { i }
;

Section Storage

InstructionMemory IMEM width 24 depth 256;
DataMemory DMEM width 8 depth 256;
RegFile RF width 8 depth 8;
Register ACC width 8;
ControlRegister CC width 2;
ControlRegister HLT width 1;
MemoryMappedIO MMIO width 8 depth 4 base 240;
ProgramCounter PC width 8;
Stack STK width 8 depth 16;
Alias RZ = RF[0];
Alias CARRY = CC[0:0];

Section Instruction_Set

Field EX:
  op add (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[23:20] = 0x0; I[19:17] = d; I[16:14] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] + s; }
    SideEffect { CC[0:0] <- carry(RF[a], s); }
    Cost { Cycle = 1; Stall = 0; Size = 1; }
    Timing { Latency = 1; Usage = 1; }
  op sub (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[23:20] = 0x1; I[19:17] = d; I[16:14] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] - s; }
    SideEffect { CC[1:1] <- borrow(RF[a], s); }
  op and (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[23:20] = 0x2; I[19:17] = d; I[16:14] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] & s; }
  op mv (d: GPR) "," (s: SRC)
    Encode { I[23:20] = 0x3; I[19:17] = d; I[8:0] = s; }
    Action { RF[d] <- s; }
  op ld (d: GPR) "," "@" (a: GPR)
    Encode { I[23:20] = 0x4; I[19:17] = d; I[16:14] = a; }
    Action { RF[d] <- DMEM[RF[a]]; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 2; Usage = 1; }
  op st "@" (a: GPR) "," (v: GPR)
    Encode { I[23:20] = 0x5; I[16:14] = a; I[19:17] = v; }
    Action { DMEM[RF[a]] <- RF[v]; }
  op beq (a: GPR) "," (b: GPR) "," (t: UIMM8)
    Encode { I[23:20] = 0x6; I[19:17] = a; I[16:14] = b; I[7:0] = t; }
    Action { if (RF[a] == RF[b]) { PC <- t; } }
  op jmp (t: UIMM8)
    Encode { I[23:20] = 0x7; I[7:0] = t; }
    Action { PC <- t; }
  op push (v: GPR)
    Encode { I[23:20] = 0x8; I[19:17] = v; }
    Action { push(STK, RF[v]); }
  op pop (d: GPR)
    Encode { I[23:20] = 0x9; I[19:17] = d; }
    Action { RF[d] <- pop(STK); }
  op call (t: UIMM8)
    Encode { I[23:20] = 0xa; I[7:0] = t; }
    Action { push(STK, PC); PC <- t; }
  op ret
    Encode { I[23:20] = 0xb; }
    Action { PC <- pop(STK); }
  op mul (d: GPR) "," (a: GPR) "," (s: SRC)
    Encode { I[23:20] = 0xc; I[19:17] = d; I[16:14] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] * s; }
    Cost { Cycle = 1; Stall = 2; Size = 1; }
    Timing { Latency = 3; Usage = 1; }
  // out writes a memory-mapped I/O port; bit 13 is a required constant so
  // not every 0xe-opcode word decodes (tests rely on 0xe00000 being an
  // illegal instruction).
  op out (p: UIMM8) "," (v: GPR)
    Encode { I[23:20] = 0xe; I[13] = 0b1; I[7:0] = p; I[19:17] = v; }
    Action { MMIO[p] <- RF[v]; }
  op halt
    Encode { I[23:20] = 0xd; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[23:20] = 0xf; }

Section Architectural_Information
issue_width = 1;
`

// Toy parses ToySource; it panics on error because the source is a compiled-in
// constant covered by tests.
func Toy() *isdl.Description {
	d, err := isdl.Parse(ToySource)
	if err != nil {
		panic("machines: toy description invalid: " + err.Error())
	}
	return d
}
