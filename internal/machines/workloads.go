package machines

import (
	"fmt"
	"strings"
)

// This file provides the application workloads the evaluation runs: the DSP
// kernels the paper's embedded-systems motivation targets. Each generator
// returns assembly text for its machine plus (where useful) a Go reference
// model so tests can check the simulated results value-for-value.

// FIRSPAM builds a taps-tap FIR filter over nout outputs for the SPAM
// machine: coefficients in DMY, samples in DMX, outputs appended in DMX at
// outBase. The inner loop is software-pipelined two-wide (parallel X/Y loads
// feeding the MAC) and uses post-increment addressing and djnz — the VLIW
// features SPAM exists to showcase.
func FIRSPAM(taps, nout int, samples, coefs []int64) string {
	if len(samples) < nout+taps {
		panic("machines: FIRSPAM needs len(samples) >= nout+taps")
	}
	var sb strings.Builder
	sb.WriteString("; FIR filter on SPAM: y[i] = sum_k c[k] * x[i+k]\n")
	writeData(&sb, "DMX", 0, samples)
	writeData(&sb, "DMY", 0, coefs)
	const outBase = 256
	fmt.Fprintf(&sb, `
    mvi R0, #0            ; coefficient base
    mvi R7, #%d           ; output count
    mvi R5, #0            ; sliding sample index
    mvi R6, #1
    shl R6, R6, #8        ; R6 = %d = output base
    mvar A2, R6
outer:
    mvar A0, R5
    mvi R4, #%d || MV3.mvar A1, R0
    clr
inner:
    ldx R2, @A0+ || ldy R3, @A1+
    mac R2, R3 || BR.djnz R4, inner
    saclo R8
    stx @A2+, R8
    add R5, R5, #1
    djnz R7, outer
    halt
`, nout, outBase, taps)
	return sb.String()
}

// FIRSPAMOutBase is the DMX address where FIRSPAM writes its outputs.
const FIRSPAMOutBase = 256

// FIRReference computes the expected outputs of FIRSPAM, truncated to the
// 32-bit SPAM datapath.
func FIRReference(taps, nout int, samples, coefs []int64) []uint32 {
	out := make([]uint32, nout)
	for i := 0; i < nout; i++ {
		var acc uint64
		for k := 0; k < taps; k++ {
			acc += uint64(uint32(samples[i+k])) * uint64(uint32(coefs[k]))
		}
		out[i] = uint32(acc)
	}
	return out
}

// FIRTestVectors returns deterministic sample and coefficient vectors.
func FIRTestVectors(taps, nout int) (samples, coefs []int64) {
	samples = make([]int64, nout+taps)
	for i := range samples {
		samples[i] = int64((i*37 + 11) % 251)
	}
	coefs = make([]int64, taps)
	for i := range coefs {
		coefs[i] = int64((i*13 + 3) % 97)
	}
	return samples, coefs
}

// VecAddSPAM2 builds c[i] = a[i] + b[i] over n elements on SPAM2, with a
// running checksum left in R7. Arrays a, b, c live in DM at 0, 128 and 256.
func VecAddSPAM2(n int, a, b []int64) string {
	if n > 128 || len(a) < n || len(b) < n {
		panic("machines: VecAddSPAM2 wants n <= 128 elements")
	}
	var sb strings.Builder
	sb.WriteString("; vector add with checksum on SPAM2\n")
	writeData(&sb, "DM", 0, a[:n])
	writeData(&sb, "DM", 128, b[:n])
	// 128 and 256 exceed the signed 8-bit immediate, so the bases are
	// built arithmetically.
	fmt.Fprintf(&sb, `
    mvi R1, #%d
    mvi R7, #0
    mvi R6, #0
    mvar A0, R6          ; a at 0
    mvi R5, #64
    add R6, R5, R5       ; 128
    mvar A1, R6          ; b at 128
    add R6, R6, R6       ; 256
    mvar A2, R6          ; c at 256
loop:
    ld R3, @A0+
    ld R4, @A1+
    add R5, R3, R4
    st @A2+, R5 || ALU.add R7, R7, R5
    sub R1, R1, #1
    beqz R1, done
    jmp loop
done:
    halt
`, n)
	return sb.String()
}

// VecAddReference returns the expected c values (16-bit) and checksum.
func VecAddReference(n int, a, b []int64) (c []uint16, checksum uint16) {
	c = make([]uint16, n)
	for i := 0; i < n; i++ {
		c[i] = uint16(a[i]) + uint16(b[i])
		checksum += c[i]
	}
	return c, checksum
}

// VecTestVectors returns deterministic operand vectors for VecAddSPAM2.
func VecTestVectors(n int) (a, b []int64) {
	a = make([]int64, n)
	b = make([]int64, n)
	for i := range a {
		a[i] = int64((i*29 + 7) % 199)
		b[i] = int64((i*53 + 17) % 211)
	}
	return a, b
}

// DotSPAM builds a dot product of two n-vectors on SPAM (X and Y memories),
// leaving the low accumulator word in R8.
func DotSPAM(n int, x, y []int64) string {
	if len(x) < n || len(y) < n {
		panic("machines: DotSPAM needs n elements")
	}
	var sb strings.Builder
	sb.WriteString("; dot product on SPAM\n")
	writeData(&sb, "DMX", 0, x[:n])
	writeData(&sb, "DMY", 0, y[:n])
	fmt.Fprintf(&sb, `
    mvi R0, #0
    mvar A0, R0
    mvar A1, R0
    mvi R4, #%d
    clr
loop:
    ldx R2, @A0+ || ldy R3, @A1+
    mac R2, R3 || BR.djnz R4, loop
    saclo R8
    halt
`, n)
	return sb.String()
}

// DotReference computes the expected 32-bit dot product.
func DotReference(n int, x, y []int64) uint32 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc += uint64(uint32(x[i])) * uint64(uint32(y[i]))
	}
	return uint32(acc)
}

func writeData(sb *strings.Builder, storage string, base int, vals []int64) {
	const perLine = 16
	for i := 0; i < len(vals); i += perLine {
		end := i + perLine
		if end > len(vals) {
			end = len(vals)
		}
		fmt.Fprintf(sb, ".data %s %d", storage, base+i)
		for _, v := range vals[i:end] {
			fmt.Fprintf(sb, " %d", v)
		}
		sb.WriteByte('\n')
	}
}
