package core

// Evaluation memoization. One hill-climbing iteration regenerates many
// candidates a previous iteration already scored (only one operation changes
// per accepted move), and the full parse → compile → assemble → simulate →
// synthesize pipeline is by far the most expensive part of the exploration
// loop of Figure 1. The cache keys an Evaluation by a cryptographic hash of
// the canonical ISDL source and the workload, so identical architectures are
// scored exactly once per cache lifetime.

import (
	"crypto/sha256"
	"sync"
)

// CacheKey identifies one (architecture, workload) evaluation. Build it with
// EvalKey over the *canonical* ISDL text (isdl.Format output) so that
// formatting differences never split equivalent architectures.
type CacheKey [sha256.Size]byte

// EvalKey hashes a canonical ISDL source and a workload identity (the kernel
// or assembly text plus any label that selects the workload) into a cache
// key. The two inputs are length-prefix separated, so no pair of distinct
// (source, workload) inputs can collide by concatenation.
func EvalKey(canonicalISDL, workload string) CacheKey {
	h := sha256.New()
	var n [8]byte
	for i, l := 0, len(canonicalISDL); i < 8; i++ {
		n[i] = byte(l >> (8 * i))
	}
	h.Write(n[:])
	h.Write([]byte(canonicalISDL))
	h.Write([]byte(workload))
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// cacheEntry records one completed pipeline run: either a scored evaluation
// or the deterministic error the pipeline produced (an infeasible candidate
// stays infeasible, so failures are worth memoizing too).
type cacheEntry struct {
	eval *Evaluation
	err  error
}

// EvalCache is a thread-safe memo table for evaluations. A cache is only
// valid for one evaluator configuration (technology library, synthesis
// options, instruction limit) and one meaning of the workload string —
// changing any of those invalidates every entry, so use a fresh cache per
// configuration. Entries never expire otherwise: an (ISDL, workload) pair
// fully determines the pipeline's deterministic result.
//
// Cached *Evaluation values are shared across callers and must be treated
// as immutable.
type EvalCache struct {
	mu      sync.Mutex
	entries map[CacheKey]cacheEntry
	hits    uint64
	misses  uint64
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{entries: map[CacheKey]cacheEntry{}}
}

// Get looks up a key, counting a hit or a miss. On a hit it returns the
// memoized evaluation or error.
func (c *EvalCache) Get(k CacheKey) (ev *Evaluation, err error, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e.eval, e.err, ok
}

// Put stores a completed evaluation (or its deterministic failure) under a
// key. Concurrent Puts for the same key are benign: the pipeline is a pure
// function of the key, so every writer stores the same result.
func (c *EvalCache) Put(k CacheKey, ev *Evaluation, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = cacheEntry{eval: ev, err: err}
}

// Stats returns the hit and miss counts so far.
func (c *EvalCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of memoized evaluations.
func (c *EvalCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
