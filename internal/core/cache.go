package core

// Stage-level memoization. One hill-climbing iteration regenerates many
// candidates a previous iteration already scored (only one operation
// changes per accepted move), and the paper's single-description design
// makes every generated tool a pure function of its inputs: synthesis
// depends only on the ISDL description, compilation and assembly only on
// the (description, kernel) pair, simulation only on the description and
// the program image. The StageCache keys each pipeline stage's artifact by
// a cryptographic hash of exactly those inputs — canonical ISDL text
// (isdl.Format output) so that formatting differences never split
// equivalent architectures — so a stage re-runs only when something it
// actually reads has changed. The legacy EvalCache is a thin view of the
// final (combine) stage.

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Stage enumerates the evaluation pipeline's stages (docs/PIPELINE.md).
type Stage uint8

const (
	// StageParse is ISDL parsing + canonicalization. It is never cached —
	// the artifact would be a mutable AST, which stages deliberately do
	// not share across goroutines — but its runs are counted so the
	// metrics show the full pipeline.
	StageParse Stage = iota
	// StageCompile is the retargetable compiler: (canonical ISDL, kernel)
	// → assembly text.
	StageCompile
	// StageAssemble is the assembler: (canonical ISDL, kernel) →
	// *asm.Program.
	StageAssemble
	// StageSimulate is the instruction-level simulator: (canonical ISDL,
	// program image) → SimArtifact.
	StageSimulate
	// StageSynthesize is the hardware model: canonical ISDL →
	// SynthArtifact.
	StageSynthesize
	// StageCombine folds simulation and synthesis into the final
	// *Evaluation, keyed like the whole pipeline: (canonical ISDL,
	// kernel) via EvalKey.
	StageCombine
	// StageCodegen is the aot simulator generator (internal/gensim):
	// canonical ISDL → generated+compiled specialized simulator binary.
	// Only run when the evaluator selects the aot backend. Memoized in
	// process (success and unsupported-description outcomes) but never
	// persisted — the artifact is a path into gensim's own on-disk build
	// cache, which already survives processes.
	StageCodegen
	// NumStages is the stage count (for iteration).
	NumStages
)

var stageNames = [NumStages]string{"parse", "compile", "assemble", "simulate", "synthesize", "combine", "codegen"}

// String returns the stage's short name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// CacheKey identifies one stage artifact (or one whole-pipeline
// evaluation). Build it with StageKey, or EvalKey for the final stage.
type CacheKey [sha256.Size]byte

// StageKey hashes a stage tag and its input parts into a cache key. Every
// part is length-prefixed, so no two distinct part sequences collide by
// concatenation, and the stage tag separates the key domains.
func StageKey(s Stage, parts ...string) CacheKey {
	h := sha256.New()
	h.Write([]byte{'s', byte(s)})
	var n [8]byte
	for _, p := range parts {
		for i, l := 0, len(p); i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// EvalKey hashes a canonical ISDL source and a workload identity (the kernel
// or assembly text plus any label that selects the workload) into the final
// stage's cache key. The two inputs are length-prefix separated, so no pair
// of distinct (source, workload) inputs can collide by concatenation.
func EvalKey(canonicalISDL, workload string) CacheKey {
	h := sha256.New()
	var n [8]byte
	for i, l := 0, len(canonicalISDL); i < 8; i++ {
		n[i] = byte(l >> (8 * i))
	}
	h.Write(n[:])
	h.Write([]byte(canonicalISDL))
	h.Write([]byte(workload))
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// stageEntry records one completed stage run: either an artifact or the
// deterministic error the stage produced (an infeasible candidate stays
// infeasible, so failures are worth memoizing too).
type stageEntry struct {
	val any
	err error
}

// StageStats are one stage's hit and miss counts.
type StageStats struct {
	Hits, Misses uint64
}

// StageCache is a thread-safe memo table for pipeline stage artifacts. A
// cache is only valid for one evaluator configuration (technology library,
// synthesis options, instruction limit) — the keys do not cover it — so
// use a fresh cache per configuration. Entries never expire otherwise: a
// stage's inputs fully determine its deterministic result.
//
// Hit and miss counts live in obs.Counter instruments: standalone ones by
// default, or — after Bind — counters owned by an obs.Registry, so cache
// traffic appears in exported metrics under cache.<stage>.hits/.misses.
//
// Cached artifacts are shared across callers (and goroutines) and must be
// treated as immutable.
//
// The memory tables are the first tier. With SetStore, a BlobStore
// (internal/blob — shared directory or remote HTTP) becomes the second:
// serializable stage artifacts are written through on Put and consulted
// on a memory miss, so processes sharing a store share every artifact
// (see blobstore.go and docs/PIPELINE.md).
type StageCache struct {
	mu     sync.Mutex
	tables [NumStages]map[CacheKey]stageEntry
	hits   [NumStages]*obs.Counter
	misses [NumStages]*obs.Counter
	bound  *obs.Registry // registry the counters live in, nil if standalone
	store  BlobStore     // second tier, nil for memory-only
	// Store-tier traffic, in registry counters after Bind
	// (cache.store.hits/.misses/.errors).
	storeHits, storeMisses, storeErrs *obs.Counter
}

// NewStageCache returns an empty cache.
func NewStageCache() *StageCache {
	c := &StageCache{}
	for i := range c.tables {
		c.tables[i] = map[CacheKey]stageEntry{}
		c.hits[i] = obs.NewCounter()
		c.misses[i] = obs.NewCounter()
	}
	c.storeHits = obs.NewCounter()
	c.storeMisses = obs.NewCounter()
	c.storeErrs = obs.NewCounter()
	return c
}

// Bind re-homes the cache's hit/miss counters into a registry, under
// cache.<stage>.hits and cache.<stage>.misses. Counts accumulated so far
// carry over, and every future Get/countRun lands in the registry's
// counters, so cache traffic shows up in its exports. Binding the same
// registry again is a no-op (so repeated Explorer.Run calls over a shared
// cache never double-count); binding a different registry migrates the
// current counts there.
func (c *StageCache) Bind(r *obs.Registry) {
	if r == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bound == r {
		return
	}
	c.bound = r
	for s := Stage(0); s < NumStages; s++ {
		h := r.Counter("cache." + s.String() + ".hits")
		h.Add(c.hits[s].Value())
		c.hits[s] = h
		m := r.Counter("cache." + s.String() + ".misses")
		m.Add(c.misses[s].Value())
		c.misses[s] = m
	}
	for _, ct := range []struct {
		name string
		c    **obs.Counter
	}{
		{"cache.store.hits", &c.storeHits},
		{"cache.store.misses", &c.storeMisses},
		{"cache.store.errors", &c.storeErrs},
	} {
		n := r.Counter(ct.name)
		n.Add((*ct.c).Value())
		*ct.c = n
	}
}

// Get looks up a stage's key, counting a hit or a miss. On a hit it
// returns the memoized artifact or error. A memory miss consults the
// attached BlobStore (if any) for the serializable stages before
// counting the miss; a store hit installs the entry in memory and counts
// as a hit, so StageStats reflect work avoided, wherever the artifact
// came from.
func (c *StageCache) Get(s Stage, k CacheKey) (val any, err error, ok bool) {
	c.mu.Lock()
	if e, ok := c.tables[s][k]; ok {
		c.hits[s].Inc()
		c.mu.Unlock()
		return e.val, e.err, true
	}
	bs := c.store
	c.mu.Unlock()
	if bs != nil && storeBacked[s] {
		if e, ok := c.storeGet(bs, s, k); ok {
			return e.val, e.err, true
		}
	}
	c.mu.Lock()
	c.misses[s].Inc()
	c.mu.Unlock()
	return nil, nil, false
}

// Put stores a completed stage artifact (or its deterministic failure)
// under a key, writing serializable stages through to the attached
// BlobStore. Concurrent Puts for the same key are benign: every stage is
// a pure function of the key, so every writer stores the same result.
func (c *StageCache) Put(s Stage, k CacheKey, val any, err error) {
	e := stageEntry{val: val, err: err}
	c.mu.Lock()
	c.tables[s][k] = e
	bs := c.store
	c.mu.Unlock()
	if bs != nil && storeBacked[s] {
		c.storePut(bs, s, k, e)
	}
}

// countRun records an uncached stage execution (StageParse) as a miss, so
// per-stage metrics cover the full pipeline.
func (c *StageCache) countRun(s Stage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses[s].Inc()
}

// PerStage returns the hit and miss counts of every stage, indexed by
// Stage.
func (c *StageCache) PerStage() [NumStages]StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [NumStages]StageStats
	for s := range out {
		out[s] = StageStats{Hits: c.hits[s].Value(), Misses: c.misses[s].Value()}
	}
	return out
}

// Stats returns the aggregate hit and miss counts across all stages.
func (c *StageCache) Stats() (hits, misses uint64) {
	ps := c.PerStage()
	for _, s := range ps {
		hits += s.Hits
		misses += s.Misses
	}
	return hits, misses
}

// StatsLine renders the per-stage counters compactly for logs, one
// "name hits/misses" pair per stage in pipeline order.
func (c *StageCache) StatsLine() string {
	ps := c.PerStage()
	parts := make([]string, 0, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		parts = append(parts, fmt.Sprintf("%s %d/%d", s, ps[s].Hits, ps[s].Misses))
	}
	return strings.Join(parts, " ")
}

// Len returns the total number of memoized artifacts across all stages.
func (c *StageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.tables {
		n += len(t)
	}
	return n
}

// StageLen returns the number of memoized artifacts of one stage.
func (c *StageCache) StageLen(s Stage) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tables[s])
}

// EvalCache is the legacy whole-pipeline memo table, kept as a thin
// compatibility layer over the final (combine) stage of a StageCache.
// Share one across exploration runs only if the Evaluator configuration is
// identical (stage keys cover the description, kernel and program image,
// but not the evaluator configuration).
type EvalCache struct {
	stages *StageCache
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache { return &EvalCache{stages: NewStageCache()} }

// Stages exposes the underlying per-stage cache (for the staged pipeline,
// per-stage metrics and persistence).
func (c *EvalCache) Stages() *StageCache { return c.stages }

// Get looks up a final-stage key, counting a hit or a miss. On a hit it
// returns the memoized evaluation or error.
func (c *EvalCache) Get(k CacheKey) (ev *Evaluation, err error, ok bool) {
	v, err, ok := c.stages.Get(StageCombine, k)
	if e, isEval := v.(*Evaluation); isEval {
		return e, err, ok
	}
	return nil, err, ok
}

// Put stores a completed evaluation (or its deterministic failure) under a
// final-stage key.
func (c *EvalCache) Put(k CacheKey, ev *Evaluation, err error) {
	c.stages.Put(StageCombine, k, ev, err)
}

// Stats returns the final stage's hit and miss counts — the whole-pipeline
// memoization rate. Use Stages().PerStage() for the per-stage breakdown.
func (c *EvalCache) Stats() (hits, misses uint64) {
	s := c.stages.PerStage()[StageCombine]
	return s.Hits, s.Misses
}

// Len returns the number of memoized evaluations.
func (c *EvalCache) Len() int { return c.stages.StageLen(StageCombine) }
