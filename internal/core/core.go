// Package core implements the paper's primary contribution: accurate
// performance evaluation for architecture exploration. For one candidate
// architecture (an ISDL description) and one application workload it
// combines the two automatically generated models —
//
//   - the cycle count, stalls and utilization statistics measured by the
//     GENSIM instruction-level simulator (internal/xsim), and
//   - the cycle length, die size and power obtained from the HGEN hardware
//     implementation model (internal/hgen + internal/tech)
//
// into the figures the exploration loop of Figure 1 ranks candidates by:
// run time = cycles × cycle length, silicon cost, and power consumption.
package core

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/tech"
	"repro/internal/xsim"
)

// Evaluation is the complete figure of merit for one (architecture,
// workload) pair.
type Evaluation struct {
	Machine  string
	Workload string

	// From the instruction-level simulator.
	Cycles       uint64
	Instructions uint64
	Stats        *xsim.Stats

	// From the hardware model.
	CycleNs   float64
	AreaCells float64
	Hardware  *hgen.Result

	// Combined figures.
	RuntimeUs float64 // cycles × cycle length
	PowerMW   float64 // activity-scaled dynamic + leakage
	// EnergyUJ is the energy of the whole run.
	EnergyUJ float64
}

// Score folds the evaluation into a single scalar for hill climbing: run
// time weighted against area and power. Lower is better.
func (e *Evaluation) Score(runtimeWeight, areaWeight, powerWeight float64) float64 {
	return runtimeWeight*e.RuntimeUs + areaWeight*e.AreaCells/1e4 + powerWeight*e.PowerMW
}

// Summary renders the evaluation report.
func (e *Evaluation) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine %s running %s\n", e.Machine, e.Workload)
	fmt.Fprintf(&sb, "  cycles:       %d (%d instructions, %d data + %d structural stalls)\n",
		e.Cycles, e.Instructions, e.Stats.DataStalls, e.Stats.StructStalls)
	fmt.Fprintf(&sb, "  cycle length: %.1f ns\n", e.CycleNs)
	fmt.Fprintf(&sb, "  run time:     %.2f us\n", e.RuntimeUs)
	fmt.Fprintf(&sb, "  die size:     %.0f grid cells\n", e.AreaCells)
	fmt.Fprintf(&sb, "  power:        %.1f mW (%.2f uJ for the run)\n", e.PowerMW, e.EnergyUJ)
	return sb.String()
}

// Evaluator configures the methodology.
type Evaluator struct {
	// Lib is the implementation technology; defaults to tech.LSI10K().
	Lib *tech.Library
	// Synthesis options; Verilog emission is off by default here because
	// the exploration loop only needs the cost model (the hardware model
	// is still fully generatable via internal/hgen).
	Synthesis hgen.Options
	// MaxInstructions bounds a single simulation (0 = one hundred million,
	// a backstop against non-halting candidates).
	MaxInstructions int64
	// SimBackend selects the simulator execution strategy (interp,
	// compiled, aot); empty is the compiled default. The aot backend
	// generates and natively compiles a specialized simulator per
	// description (internal/gensim) and falls back to compiled when the
	// toolchain is unavailable or the description is unsupported, so
	// setting it never makes an evaluation fail.
	SimBackend xsim.Backend
}

// NewEvaluator returns an evaluator with the paper's defaults.
func NewEvaluator() *Evaluator {
	opts := hgen.DefaultOptions()
	opts.EmitVerilog = false
	return &Evaluator{Lib: tech.LSI10K(), Synthesis: opts}
}

// Evaluate runs the full methodology for one candidate and workload.
func (ev *Evaluator) Evaluate(d *isdl.Description, prog *asm.Program, workload string) (*Evaluation, error) {
	simArt, err := runSimulation(d, prog, ev.MaxInstructions, workload, ev.SimBackend, nil)
	if err != nil {
		return nil, err
	}

	hw, err := hgen.Synthesize(d, ev.Lib, ev.Synthesis)
	if err != nil {
		return nil, fmt.Errorf("core: synthesize: %w", err)
	}

	return combineArtifacts(d.Name, workload, simArt,
		SynthArtifact{CycleNs: hw.CycleNs, AreaCells: hw.AreaCells, EnergyPerInstrPJ: hw.EnergyPerInstrPJ, Result: hw},
		ev.Lib), nil
}

// EvaluateSource is the convenience entry point over raw text: the ISDL
// description and the assembly workload.
func (ev *Evaluator) EvaluateSource(isdlText, asmText, workload string) (*Evaluation, error) {
	d, err := isdl.Parse(isdlText)
	if err != nil {
		return nil, fmt.Errorf("core: parse ISDL: %w", err)
	}
	prog, err := asm.Assemble(d, asmText)
	if err != nil {
		return nil, fmt.Errorf("core: assemble: %w", err)
	}
	return ev.Evaluate(d, prog, workload)
}

// Combine folds a finished simulation and a synthesized hardware model into
// the evaluation figures. It is exported so callers that already ran the
// simulator (e.g. with breakpoints or traces) can reuse the methodology.
func Combine(d *isdl.Description, workload string, sim *xsim.Simulator, hw *hgen.Result, lib *tech.Library) *Evaluation {
	return combineArtifacts(d.Name, workload,
		SimArtifact{Cycles: sim.Cycle(), Stats: sim.Stats()},
		SynthArtifact{CycleNs: hw.CycleNs, AreaCells: hw.AreaCells, EnergyPerInstrPJ: hw.EnergyPerInstrPJ, Result: hw},
		lib)
}

// combineArtifacts is the stage-artifact form of Combine: pure arithmetic
// over detached simulation measurements and synthesis figures, so it works
// for artifacts restored from a persisted cache just as for live runs.
func combineArtifacts(machine, workload string, sa SimArtifact, ha SynthArtifact, lib *tech.Library) *Evaluation {
	stats := sa.Stats
	e := &Evaluation{
		Machine:      machine,
		Workload:     workload,
		Cycles:       sa.Cycles,
		Instructions: stats.Instructions,
		Stats:        stats,
		CycleNs:      ha.CycleNs,
		AreaCells:    ha.AreaCells,
		Hardware:     ha.Result,
	}
	e.RuntimeUs = float64(e.Cycles) * e.CycleNs / 1e3

	// Power: the per-instruction switched energy assumes every field
	// active; scale it by the measured utilization, charge idle cycles
	// (stalls) at a fraction of that, and add area leakage.
	activity := 0.0
	for _, u := range stats.Utilization() {
		activity += u
	}
	if n := len(stats.FieldIssue); n > 0 {
		activity /= float64(n)
	}
	busy := float64(e.Instructions)
	idle := float64(e.Cycles) - busy
	if idle < 0 {
		idle = 0
	}
	var switchedPJ float64
	if e.Cycles > 0 {
		switchedPJ = ha.EnergyPerInstrPJ * (busy*activity + idle*0.1)
	}
	dynamicMW := 0.0
	if e.Cycles > 0 {
		dynamicMW = lib.DynamicMW(switchedPJ/float64(e.Cycles), e.CycleNs)
	}
	e.PowerMW = dynamicMW + lib.LeakageMW(e.AreaCells)
	e.EnergyUJ = e.PowerMW * e.RuntimeUs / 1e3
	return e
}
