package core

// The StageCache's shared substrate. A BlobStore (internal/blob) turns
// the per-process memo table into a cross-process, cross-machine cache:
// every serializable stage artifact is written through to the store on
// Put, and a memory miss consults the store before declaring a real
// miss — so an architecture evaluated by any process against the same
// store is never evaluated again by anyone. The in-memory tables remain
// the first tier (they also hold the unserializable stages: parse ASTs
// and assembled programs), the store is the second.

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/blob"
)

// BlobStore is the pluggable artifact substrate behind a StageCache:
// Get/Put/Has by SHA-256 key inside a stage namespace. Three
// implementations ship in internal/blob — in-memory (blob.Mem, the old
// single-process behavior), local-directory CAS (blob.Dir, safe for
// concurrent processes via atomic temp+fsync+rename writes) and an HTTP
// remote client (blob.HTTP, served by cmd/served) — selected by
// blob.Open("mem" | "dir:PATH" | "http://HOST").
type BlobStore = blob.Store

// storeBacked marks the stages whose artifacts serialize to store blobs.
// Parse and Assemble hold live ASTs and stay memory-only; everything
// else — including Combine, whose hit short-circuits the whole
// pipeline, and Codegen, whose artifact is validated against the local
// filesystem on the way in — is shared.
var storeBacked = [NumStages]bool{
	StageCompile:    true,
	StageSimulate:   true,
	StageSynthesize: true,
	StageCombine:    true,
	StageCodegen:    true,
}

// storeNS is a stage's blob namespace. It carries the persistence format
// version, so a store populated by an older toolchain is simply invisible
// to a newer one instead of misread.
func storeNS(s Stage) string { return fmt.Sprintf("%s.v%d", s, persistVersion) }

// SetStore attaches the shared artifact store. Set it before evaluation
// starts; entries already memoized are not backfilled. A nil store
// detaches (memory-only, the default).
func (c *StageCache) SetStore(bs BlobStore) {
	c.mu.Lock()
	c.store = bs
	c.mu.Unlock()
}

// storeGet consults the attached store after a memory miss. A store hit
// is decoded, installed in the memory tier and counted as a stage hit;
// store trouble (network, decode, a codegen binary that does not exist
// on this machine) degrades to a miss — the stage recomputes, evaluation
// never fails on the store's account.
func (c *StageCache) storeGet(bs BlobStore, s Stage, k CacheKey) (stageEntry, bool) {
	data, err := bs.Get(storeNS(s), blob.Key(k))
	if err != nil {
		c.mu.Lock()
		if errors.Is(err, blob.ErrNotFound) {
			c.storeMisses.Inc()
		} else {
			c.storeErrs.Inc()
		}
		c.mu.Unlock()
		return stageEntry{}, false
	}
	e, err := decodeStageBlob(s, data)
	if err != nil {
		c.mu.Lock()
		c.storeErrs.Inc()
		c.mu.Unlock()
		return stageEntry{}, false
	}
	if !storeEntryUsable(s, e) {
		c.mu.Lock()
		c.storeMisses.Inc()
		c.mu.Unlock()
		return stageEntry{}, false
	}
	c.mu.Lock()
	c.tables[s][k] = e
	c.hits[s].Inc()
	c.storeHits.Inc()
	c.mu.Unlock()
	return e, true
}

// storePut writes one completed entry through to the store. Entries that
// do not serialize (live ASTs, nil values) and store errors are silently
// skipped — the memory tier already has the artifact.
func (c *StageCache) storePut(bs BlobStore, s Stage, k CacheKey, e stageEntry) {
	data, ok := encodeStageBlob(s, e)
	if !ok {
		return
	}
	if err := bs.Put(storeNS(s), blob.Key(k), data); err != nil {
		c.mu.Lock()
		c.storeErrs.Inc()
		c.mu.Unlock()
	}
}

// storeEntryUsable rejects store entries that are valid JSON but useless
// on this machine: a Codegen artifact names a binary in a local build
// cache, so an entry written by another host (or a since-cleaned cache)
// must recompute rather than hand the simulator a dangling path.
func storeEntryUsable(s Stage, e stageEntry) bool {
	if s != StageCodegen || e.err != nil {
		return true
	}
	a, ok := e.val.(CodegenArtifact)
	if !ok {
		return false
	}
	_, err := os.Stat(a.Bin)
	return err == nil
}

// StoreStats returns the store-tier traffic: hits served from the
// attached BlobStore, store lookups that found nothing, and store or
// decode errors that degraded to recomputation.
func (c *StageCache) StoreStats() (hits, misses, errors uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeHits.Value(), c.storeMisses.Value(), c.storeErrs.Value()
}
