package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/gensim"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/xsim"
)

const pipeKernelA = "var x, y;\nx = 2;\ny = x + 3;\n"
const pipeKernelB = "var x, y;\nx = 4;\ny = x + x;\n"

func toyCanonical(t *testing.T) string {
	t.Helper()
	return isdl.Format(machines.Toy())
}

// statsDelta subtracts two per-stage snapshots.
func statsDelta(before, after [NumStages]StageStats) [NumStages]StageStats {
	var d [NumStages]StageStats
	for s := range after {
		d[s] = StageStats{Hits: after[s].Hits - before[s].Hits, Misses: after[s].Misses - before[s].Misses}
	}
	return d
}

func wantStage(t *testing.T, d [NumStages]StageStats, s Stage, hits, misses uint64) {
	t.Helper()
	if d[s].Hits != hits || d[s].Misses != misses {
		t.Errorf("stage %s: %d hits / %d misses, want %d/%d", s, d[s].Hits, d[s].Misses, hits, misses)
	}
}

// TestPipelineStageKeyComposition checks that each stage key covers exactly
// its inputs: a formatting-only ISDL change reuses every artifact, and a
// kernel-only change reuses the Synthesize artifact while redoing the
// workload-dependent stages.
func TestPipelineStageKeyComposition(t *testing.T) {
	src := toyCanonical(t)
	cache := NewStageCache()
	pipe := &Pipeline{Cache: cache}

	base, err := pipe.EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	cold := cache.PerStage()
	for s := StageCompile; s < NumStages; s++ {
		if s == StageCodegen {
			// Codegen runs only when the aot simulator backend is
			// requested (TestPipelineCodegenStage).
			wantStage(t, cold, s, 0, 0)
			continue
		}
		if cold[s].Misses != 1 || cold[s].Hits != 0 {
			t.Errorf("cold run, stage %s: %+v, want exactly one miss", s, cold[s])
		}
	}

	// Formatting-only change: same canonical text, so every stage key is
	// unchanged and the final (combine) key already answers.
	reformatted := strings.ReplaceAll(src, "\n", "\n\n")
	if isdl.Format(mustParse(t, reformatted)) != src {
		t.Fatal("reformatted source is not formatting-only")
	}
	again, err := pipe.EvaluateKernel(reformatted, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Error("formatting-only change did not return the memoized evaluation")
	}
	d := statsDelta(cold, cache.PerStage())
	wantStage(t, d, StageCombine, 1, 0)
	for s := StageCompile; s < StageCombine; s++ {
		wantStage(t, d, s, 0, 0)
	}

	// Kernel-only change: Synthesize depends only on the description, so
	// its artifact is reused; the workload-dependent stages re-run.
	snap := cache.PerStage()
	kb, err := pipe.EvaluateKernel(src, pipeKernelB, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	d = statsDelta(snap, cache.PerStage())
	wantStage(t, d, StageSynthesize, 1, 0)
	wantStage(t, d, StageCompile, 0, 1)
	wantStage(t, d, StageAssemble, 0, 1)
	wantStage(t, d, StageSimulate, 0, 1)
	wantStage(t, d, StageCombine, 0, 1)
	if kb.CycleNs != base.CycleNs || kb.AreaCells != base.AreaCells {
		t.Error("kernel-only change altered the hardware figures")
	}
}

// TestPipelineSynthKeyIgnoresEncoding: the Synthesize stage keys by the
// structural fingerprint of what synthesis reads, so an encoding-only
// mutation (reassigning opcodes) reuses the hardware artifact while the
// workload-dependent stages (whose output bits change) re-run.
func TestPipelineSynthKeyIgnoresEncoding(t *testing.T) {
	d := machines.SPAM()
	base := isdl.Format(d)

	// Swap the ALU add/sub opcode constants — decode stays unambiguous,
	// program images change, hardware structure does not.
	var add, sub *isdl.Operation
	for _, f := range d.Fields {
		if f.ByName["add"] != nil && f.ByName["sub"] != nil {
			add, sub = f.ByName["add"], f.ByName["sub"]
			break
		}
	}
	if add == nil || sub == nil || !add.Encode[0].ConstSet || !sub.Encode[0].ConstSet {
		t.Fatal("SPAM ALU add/sub opcode layout changed; update this test")
	}
	add.Encode[0].Const, sub.Encode[0].Const = sub.Encode[0].Const, add.Encode[0].Const
	mutated := isdl.Format(d)
	if mutated == base {
		t.Fatal("opcode swap did not change the canonical text")
	}

	cache := NewStageCache()
	pipe := &Pipeline{Cache: cache}
	e1, err := pipe.EvaluateKernel(base, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	snap := cache.PerStage()
	e2, err := pipe.EvaluateKernel(mutated, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	delta := statsDelta(snap, cache.PerStage())
	wantStage(t, delta, StageSynthesize, 1, 0)
	wantStage(t, delta, StageCompile, 0, 1)
	wantStage(t, delta, StageSimulate, 0, 1)
	wantStage(t, delta, StageCombine, 0, 1)
	if e2.CycleNs != e1.CycleNs || e2.AreaCells != e1.AreaCells {
		t.Error("encoding-only change altered the hardware figures")
	}
	if e2.Cycles != e1.Cycles {
		t.Errorf("opcode reassignment changed the cycle count: %d vs %d", e2.Cycles, e1.Cycles)
	}
}

// TestPipelineInstrumentation: with a registry configured, every executed
// stage leaves a latency histogram, a balanced in-flight gauge and a span;
// simulator perf counters and synthesis phase timings are published; and
// Bind re-homes the cache counters so hits/misses appear in the metrics.
func TestPipelineInstrumentation(t *testing.T) {
	src := toyCanonical(t)
	reg := obs.NewRegistry()
	cache := NewStageCache()
	pipe := &Pipeline{Cache: cache, Obs: reg}
	if _, err := pipe.EvaluateKernel(src, pipeKernelA, "kernel"); err != nil {
		t.Fatal(err)
	}

	hists := reg.Histograms()
	for _, name := range []string{"stage.parse.ns", "stage.compile.ns", "stage.assemble.ns",
		"stage.simulate.ns", "stage.synthesize.ns", "stage.combine.ns",
		"synth.share.ns", "synth.retime.ns"} {
		if hists[name].Count == 0 {
			t.Errorf("histogram %s not recorded", name)
		}
	}
	for name, v := range reg.Gauges() {
		if v != 0 {
			t.Errorf("gauge %s = %d after completion, want 0", name, v)
		}
	}
	counters := reg.Counters()
	if counters["xsim.instructions"] == 0 {
		t.Error("simulator perf counters not published")
	}
	spans := reg.Spans()
	if len(spans) != 4 { // compile, assemble, simulate, synthesize
		t.Errorf("got %d spans, want 4: %+v", len(spans), spans)
	}

	// Span linkage: a parent span makes stage spans its children.
	parent := reg.StartSpan("candidate")
	if _, err := pipe.EvaluateKernelTraced(src, pipeKernelB, "kernel", parent); err != nil {
		t.Fatal(err)
	}
	parent.End()
	var linked int
	for _, s := range reg.Spans() {
		if s.Parent != 0 {
			linked++
		}
	}
	// Compile, assemble, simulate re-ran under the parent; synthesize hit.
	if linked != 3 {
		t.Errorf("got %d child spans, want 3", linked)
	}

	// Bind carries accumulated counts into the registry.
	cache.Bind(reg)
	counters = reg.Counters()
	ps := cache.PerStage()
	if counters["cache.synthesize.hits"] != ps[StageSynthesize].Hits || ps[StageSynthesize].Hits == 0 {
		t.Errorf("bound hit counter = %d, want %d", counters["cache.synthesize.hits"], ps[StageSynthesize].Hits)
	}
	// Post-bind traffic lands in the registry counters too.
	if _, err := pipe.EvaluateKernel(src, pipeKernelA, "kernel"); err != nil {
		t.Fatal(err)
	}
	after := reg.Counters()
	if after["cache.combine.hits"] != counters["cache.combine.hits"]+1 {
		t.Errorf("post-bind combine hits = %d, want %d", after["cache.combine.hits"], counters["cache.combine.hits"]+1)
	}
}

// TestPipelineCodegenStage: with the aot simulator backend, codegen runs as
// its own memoized stage — one miss on the first evaluation of a
// description, a hit for every later kernel on the same description — and
// the resulting figures are bit-identical to the default backend's.
func TestPipelineCodegenStage(t *testing.T) {
	if _, err := gensim.Build(machines.Toy()); err != nil {
		t.Skipf("aot backend unavailable: %v", err)
	}
	src := toyCanonical(t)
	cache := NewStageCache()
	ev := NewEvaluator()
	ev.SimBackend = xsim.BackendAOT
	pipe := &Pipeline{Evaluator: ev, Cache: cache}

	aot, err := pipe.EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	cold := cache.PerStage()
	wantStage(t, cold, StageCodegen, 0, 1)

	// A different kernel on the same description reuses the built simulator.
	snap := cache.PerStage()
	if _, err := pipe.EvaluateKernel(src, pipeKernelB, "kernel"); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(snap, cache.PerStage())
	wantStage(t, d, StageCodegen, 1, 0)

	// The aot path produces the same evaluation as the default backend.
	plain, err := (&Pipeline{}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if aot.Cycles != plain.Cycles || aot.RuntimeUs != plain.RuntimeUs ||
		aot.AreaCells != plain.AreaCells || aot.PowerMW != plain.PowerMW {
		t.Errorf("aot evaluation differs from default backend: %+v vs %+v", aot, plain)
	}
}

func mustParse(t *testing.T, src string) *isdl.Description {
	t.Helper()
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPipelineNilCache: the pipeline works without memoization and produces
// the same figures as the cached path.
func TestPipelineNilCache(t *testing.T) {
	src := toyCanonical(t)
	cached, err := (&Pipeline{Cache: NewStageCache()}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (&Pipeline{}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != cached.Cycles || plain.RuntimeUs != cached.RuntimeUs || plain.PowerMW != cached.PowerMW {
		t.Errorf("uncached evaluation differs: %+v vs %+v", plain, cached)
	}
}

// TestPipelineMemoizesFailures: an uncompilable candidate is rejected once;
// the second attempt answers from the final stage.
func TestPipelineMemoizesFailures(t *testing.T) {
	src := toyCanonical(t)
	cache := NewStageCache()
	pipe := &Pipeline{Cache: cache}
	bad := "var x;\nx = undefinedCall();\n"
	if _, err := pipe.EvaluateKernel(src, bad, "kernel"); err == nil {
		t.Fatal("expected a compile failure")
	}
	snap := cache.PerStage()
	_, err := pipe.EvaluateKernel(src, bad, "kernel")
	if err == nil {
		t.Fatal("memoized failure lost")
	}
	d := statsDelta(snap, cache.PerStage())
	wantStage(t, d, StageCombine, 1, 0)
	wantStage(t, d, StageCompile, 0, 0)
}

// TestStageCachePersistenceRoundTrip: Save/Load carries the compile,
// simulate and synthesize artifacts (and memoized failures) across caches,
// so a fresh process re-evaluates a known candidate without compiling,
// simulating or synthesizing — only assembly and the final combine re-run.
func TestStageCachePersistenceRoundTrip(t *testing.T) {
	src := toyCanonical(t)
	first := NewStageCache()
	base, err := (&Pipeline{Cache: first}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	bad := "var x;\nx = undefinedCall();\n"
	if _, err := (&Pipeline{Cache: first}).EvaluateKernel(src, bad, "kernel"); err == nil {
		t.Fatal("expected a compile failure")
	}

	var blob bytes.Buffer
	if err := first.Save(&blob); err != nil {
		t.Fatal(err)
	}

	second := NewStageCache()
	if err := second.Load(bytes.NewReader(blob.Bytes())); err != nil {
		t.Fatal(err)
	}
	reloaded, err := (&Pipeline{Cache: second}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}
	ps := second.PerStage()
	wantStage(t, ps, StageCompile, 1, 0)
	wantStage(t, ps, StageSimulate, 1, 0)
	wantStage(t, ps, StageSynthesize, 1, 0)
	wantStage(t, ps, StageAssemble, 0, 1)
	wantStage(t, ps, StageCombine, 0, 1)

	if reloaded.Cycles != base.Cycles || reloaded.RuntimeUs != base.RuntimeUs ||
		reloaded.AreaCells != base.AreaCells || reloaded.PowerMW != base.PowerMW {
		t.Errorf("reloaded evaluation differs: %+v vs %+v", reloaded, base)
	}

	// The memoized failure survives persistence too.
	if _, err := (&Pipeline{Cache: second}).EvaluateKernel(src, bad, "kernel"); err == nil {
		t.Error("persisted failure lost")
	}

	// Version skew is rejected instead of misread.
	cur := fmt.Sprintf(`"version":%d`, persistVersion)
	skew := strings.Replace(blob.String(), cur, `"version":99`, 1)
	if skew == blob.String() {
		t.Fatalf("persisted blob does not contain %s", cur)
	}
	if err := NewStageCache().Load(strings.NewReader(skew)); err == nil {
		t.Error("incompatible cache version accepted")
	}
}
