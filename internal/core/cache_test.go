package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestEvalKeyDistinguishesInputs(t *testing.T) {
	base := EvalKey("machine A", "kernel 1")
	if EvalKey("machine A", "kernel 1") != base {
		t.Error("key not stable for identical inputs")
	}
	if EvalKey("machine B", "kernel 1") == base {
		t.Error("key ignores the ISDL source")
	}
	if EvalKey("machine A", "kernel 2") == base {
		t.Error("key ignores the workload")
	}
	// The length prefix keeps shifted concatenations apart.
	if EvalKey("machine A kernel", " 1") == EvalKey("machine A", " kernel 1") {
		t.Error("concatenation collision")
	}
}

func TestEvalCacheHitMissCounting(t *testing.T) {
	c := NewEvalCache()
	k := EvalKey("m", "w")
	if _, _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	want := &Evaluation{Machine: "m", Cycles: 42}
	c.Put(k, want, nil)
	got, err, ok := c.Get(k)
	if !ok || err != nil || got != want {
		t.Fatalf("Get = (%v, %v, %v), want cached evaluation", got, err, ok)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestEvalCacheMemoizesFailures(t *testing.T) {
	c := NewEvalCache()
	k := EvalKey("m", "w")
	infeasible := errors.New("compile: no add operation")
	c.Put(k, nil, infeasible)
	ev, err, ok := c.Get(k)
	if !ok || ev != nil || !errors.Is(err, infeasible) {
		t.Fatalf("Get = (%v, %v, %v), want cached failure", ev, err, ok)
	}
}

// TestEvalCacheConcurrent exercises the cache the way the parallel explorer
// does — many goroutines mixing Gets and Puts — and relies on the race
// detector for the actual verdict.
func TestEvalCacheConcurrent(t *testing.T) {
	c := NewEvalCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := EvalKey(fmt.Sprintf("m%d", i%17), "w")
				if _, _, ok := c.Get(k); !ok {
					c.Put(k, &Evaluation{Cycles: uint64(i)}, nil)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 17 {
		t.Errorf("Len = %d, want 17", c.Len())
	}
	hits, misses := c.Stats()
	if hits+misses != 800 {
		t.Errorf("hits+misses = %d, want 800", hits+misses)
	}
}
