package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/obs"
)

// TestStageCacheStoreWriteThrough: Puts of serializable stages land in
// the store, and a fresh cache over the same store serves them as hits.
func TestStageCacheStoreWriteThrough(t *testing.T) {
	st := blob.NewMem()
	a := NewStageCache()
	a.SetStore(st)

	kc := StageKey(StageCompile, "machine", "kernel")
	a.Put(StageCompile, kc, "add R1, R2, R3", nil)
	ks := StageKey(StageSimulate, "machine", "image")
	a.Put(StageSimulate, ks, SimArtifact{Cycles: 42}, nil)
	ke := EvalKey("machine", "kernel")
	a.Put(StageCombine, ke, &Evaluation{Machine: "m", Cycles: 42, RuntimeUs: 1.5}, nil)
	if st.Len() != 3 {
		t.Fatalf("store holds %d blobs, want 3", st.Len())
	}

	b := NewStageCache()
	b.SetStore(st)
	if v, err, ok := b.Get(StageCompile, kc); !ok || err != nil || v.(string) != "add R1, R2, R3" {
		t.Fatalf("compile via store = (%v, %v, %v)", v, err, ok)
	}
	if v, _, ok := b.Get(StageSimulate, ks); !ok || v.(SimArtifact).Cycles != 42 {
		t.Fatalf("simulate via store = (%v, %v)", v, ok)
	}
	ev, err, ok := b.Get(StageCombine, ke)
	if !ok || err != nil {
		t.Fatalf("combine via store = (%v, %v, %v)", ev, err, ok)
	}
	if e := ev.(*Evaluation); e.Cycles != 42 || e.RuntimeUs != 1.5 {
		t.Fatalf("combine artifact mangled: %+v", e)
	}
	ps := b.PerStage()
	if ps[StageCompile].Hits != 1 || ps[StageCompile].Misses != 0 {
		t.Errorf("store-served Get counted as %d hits / %d misses", ps[StageCompile].Hits, ps[StageCompile].Misses)
	}
	if hits, misses, errs := b.StoreStats(); hits != 3 || misses != 0 || errs != 0 {
		t.Errorf("StoreStats = %d/%d/%d, want 3/0/0", hits, misses, errs)
	}
	// Second Get of the same key is a pure memory hit: no new store traffic.
	b.Get(StageCompile, kc)
	if hits, _, _ := b.StoreStats(); hits != 3 {
		t.Errorf("memory-tier hit went to the store (store hits %d)", hits)
	}
}

// Memoized deterministic failures travel through the store too.
func TestStageCacheStoreSharesFailures(t *testing.T) {
	st := blob.NewMem()
	a := NewStageCache()
	a.SetStore(st)
	k := StageKey(StageCompile, "machine", "bad kernel")
	a.Put(StageCompile, k, nil, fmt.Errorf("compile: no add operation"))

	b := NewStageCache()
	b.SetStore(st)
	_, err, ok := b.Get(StageCompile, k)
	if !ok || err == nil || err.Error() != "compile: no add operation" {
		t.Fatalf("failure via store = (%v, %v)", err, ok)
	}
}

// Unserializable stages stay memory-only: nothing in the store, and a
// fresh cache misses.
func TestStageCacheStoreSkipsMemoryOnlyStages(t *testing.T) {
	st := blob.NewMem()
	a := NewStageCache()
	a.SetStore(st)
	k := StageKey(StageAssemble, "machine", "kernel")
	a.Put(StageAssemble, k, struct{ live bool }{true}, nil)
	if st.Len() != 0 {
		t.Fatalf("assemble entry leaked into the store (%d blobs)", st.Len())
	}
	b := NewStageCache()
	b.SetStore(st)
	if _, _, ok := b.Get(StageAssemble, k); ok {
		t.Fatal("assemble entry served from store")
	}
}

// A Codegen artifact names a binary in a local build cache; an entry
// whose binary does not exist on this machine must degrade to a miss,
// while one whose binary exists is served.
func TestStageCacheStoreValidatesCodegenBinary(t *testing.T) {
	st := blob.NewMem()
	a := NewStageCache()
	a.SetStore(st)

	gone := StageKey(StageCodegen, "desc-elsewhere")
	a.Put(StageCodegen, gone, CodegenArtifact{Fingerprint: "f1", Bin: "/nonexistent/path/sim"}, nil)

	bin := filepath.Join(t.TempDir(), "sim")
	if err := os.WriteFile(bin, []byte("#!/bin/true\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	here := StageKey(StageCodegen, "desc-here")
	a.Put(StageCodegen, here, CodegenArtifact{Fingerprint: "f2", Bin: bin}, nil)

	b := NewStageCache()
	b.SetStore(st)
	if _, _, ok := b.Get(StageCodegen, gone); ok {
		t.Fatal("served a codegen artifact with a dangling binary path")
	}
	v, _, ok := b.Get(StageCodegen, here)
	if !ok || v.(CodegenArtifact).Bin != bin {
		t.Fatalf("codegen with live binary = (%v, %v)", v, ok)
	}
}

// TestStageCacheConcurrentStore exercises mixed Put/Get from many
// goroutines over a shared dir store; the race detector gives the
// verdict. (Satellite: concurrent StageCache traffic under -race.)
func TestStageCacheConcurrentStore(t *testing.T) {
	st, err := blob.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewStageCache()
	c.SetStore(st)
	c.Bind(obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := StageKey(StageCompile, "m", fmt.Sprint(i))
				want := fmt.Sprintf("asm %d", i)
				c.Put(StageCompile, k, want, nil)
				if v, _, ok := c.Get(StageCompile, k); !ok || v.(string) != want {
					t.Errorf("goroutine %d: Get(%d) = (%v, %v)", g, i, v, ok)
					return
				}
				ke := EvalKey("m", fmt.Sprint(i))
				c.Put(StageCombine, ke, &Evaluation{Cycles: uint64(i)}, nil)
				c.Get(StageCombine, ke)
			}
		}(g)
	}
	wg.Wait()
}

// TestPipelineFullyServedFromStore is the tentpole property in one
// process pair: pipeline A evaluates against an empty shared store;
// pipeline B, with a cold memory cache over the same store, re-evaluates
// and recomputes nothing — every stage after Parse is zero-miss, the
// Combine hit short-circuits the walk, and the figures are identical.
// (The cross-process version lives in internal/explore.)
func TestPipelineFullyServedFromStore(t *testing.T) {
	src := toyCanonical(t)
	st := blob.NewMem()

	ca := NewStageCache()
	ca.SetStore(st)
	a, err := (&Pipeline{Cache: ca}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}

	cb := NewStageCache()
	cb.SetStore(st)
	b, err := (&Pipeline{Cache: cb}).EvaluateKernel(src, pipeKernelA, "kernel")
	if err != nil {
		t.Fatal(err)
	}

	ps := cb.PerStage()
	for s := Stage(0); s < NumStages; s++ {
		if s == StageParse {
			continue // parse is never cached; its runs are counted as misses
		}
		if ps[s].Misses != 0 {
			t.Errorf("stage %s recomputed (%d misses) despite shared store", s, ps[s].Misses)
		}
	}
	if ps[StageCombine].Hits != 1 {
		t.Errorf("combine hits = %d, want 1 (store-served short circuit)", ps[StageCombine].Hits)
	}

	// Figures identical; only the live hardware model (deliberately not
	// serialized) differs.
	aj := mustJSON(t, evalFigures(a))
	bj := mustJSON(t, evalFigures(b))
	if aj != bj {
		t.Errorf("figures diverge:\nA: %s\nB: %s", aj, bj)
	}
	if b.Hardware != nil {
		t.Error("store-served evaluation resurrected a live hardware model")
	}
}

// evalFigures strips the live model so serialized and in-process
// evaluations compare equal.
func evalFigures(e *Evaluation) Evaluation {
	cp := *e
	cp.Hardware = nil
	return cp
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
