package core

// The staged evaluation pipeline. The paper's Figure 1 loop regenerates
// every tool from one ISDL description per candidate:
//
//	Parse → CompileKernel → Assemble → Simulate ┐
//	                      Synthesize ───────────┴→ Combine
//
// Each stage is a pure function of its inputs, so the Pipeline memoizes
// every stage in a StageCache keyed by exactly those inputs (see cache.go
// and docs/PIPELINE.md): a kernel-only change reuses the Synthesize
// artifact, a formatting-only change reuses everything, and a persisted
// cache makes repeated CLI explorations start with compilation and
// synthesis fully warm.

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/gensim" // registers the aot backend with xsim
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// SimArtifact is the Simulate stage's result: the measurements Combine
// needs, detached from the live simulator. Cached artifacts are shared and
// must be treated as immutable.
type SimArtifact struct {
	Cycles uint64
	Stats  *xsim.Stats
}

// CodegenArtifact is the Codegen stage's result: where the aot simulator
// binary for the description landed in gensim's on-disk build cache.
type CodegenArtifact struct {
	Fingerprint string
	Bin         string
	// BuildNs is the generate+compile time; zero when gensim's own disk
	// cache already held the binary.
	BuildNs int64
}

// SynthArtifact is the Synthesize stage's result: the cost figures Combine
// needs. Result carries the full hardware model when synthesis ran in this
// process; it is dropped by cache persistence (only the figures are
// serialized), so evaluations rebuilt from a loaded cache have a nil
// Hardware.
type SynthArtifact struct {
	CycleNs          float64
	AreaCells        float64
	EnergyPerInstrPJ float64
	Result           *hgen.Result `json:"-"`
}

// Pipeline runs the staged methodology with per-stage memoization.
type Pipeline struct {
	// Evaluator configures the methodology; nil uses NewEvaluator().
	Evaluator *Evaluator
	// Cache memoizes stage artifacts; nil runs every stage every time.
	// The cache is only valid for one Evaluator configuration.
	Cache *StageCache
	// Obs receives per-stage latency histograms (stage.<name>.ns),
	// in-flight gauges (pipeline.<name>.inflight), one span per executed
	// stage, simulator perf counters and synthesis phase timings. Nil
	// disables instrumentation entirely (no clock reads on the hot path).
	// Obs does not bind the Cache's hit/miss counters — call
	// Cache.Bind(Obs) for that.
	Obs *obs.Registry
}

// EvaluateKernel runs the full pipeline for one candidate ISDL source and
// one kernel-language workload: parse, compile the kernel, assemble,
// simulate, synthesize, and combine. Every stage after parsing is
// memoized when a cache is configured. Parse errors are returned uncached
// (an unparsable text has no canonical form to key by); all later
// deterministic failures are memoized under the final key too, so an
// infeasible candidate is rejected once per cache lifetime.
func (p *Pipeline) EvaluateKernel(isdlSrc, kernel, workload string) (*Evaluation, error) {
	return p.EvaluateKernelTraced(isdlSrc, kernel, workload, nil)
}

// EvaluateKernelTraced is EvaluateKernel with span linkage: executed
// stages become children of parent in the exported trace (the explorer
// passes its per-candidate span). A nil parent starts stage spans at the
// root; with a nil Obs registry it behaves exactly like EvaluateKernel.
func (p *Pipeline) EvaluateKernelTraced(isdlSrc, kernel, workload string, parent *obs.Span) (*Evaluation, error) {
	ev := p.Evaluator
	if ev == nil {
		ev = NewEvaluator()
	}
	c := p.Cache

	// Parse + canonicalize. Never cached: the artifact would be a mutable
	// AST, which stages deliberately do not share across candidates.
	if c != nil {
		c.countRun(StageParse)
	}
	var start time.Time
	if p.Obs != nil {
		start = time.Now()
	}
	d, err := isdl.Parse(isdlSrc)
	if p.Obs != nil {
		p.Obs.Histogram("stage.parse.ns").Observe(time.Since(start))
	}
	if err != nil {
		return nil, fmt.Errorf("core: parse ISDL: %w", err)
	}
	canonical := isdl.Format(d)

	finalKey := EvalKey(canonical, kernel)
	if c != nil {
		if v, err, ok := c.Get(StageCombine, finalKey); ok {
			e, _ := v.(*Evaluation)
			return e, err
		}
	}
	e, err := p.runStages(ev, c, d, canonical, kernel, workload, parent)
	if c != nil {
		c.Put(StageCombine, finalKey, e, err)
	}
	return e, err
}

// runStages is the post-parse pipeline; every stage memoized individually.
func (p *Pipeline) runStages(ev *Evaluator, c *StageCache, d *isdl.Description, canonical, kernel, workload string, parent *obs.Span) (*Evaluation, error) {
	// Codegen: with the aot backend, generating and natively compiling the
	// specialized simulator is a first-class pipeline stage — cached,
	// spanned and timed like the others — so the cost the paper attributes
	// to simulator generation (§3.3) is visible in the same instruments.
	// A codegen failure downgrades this evaluation to the compiled
	// backend; it never fails the candidate.
	simBackend := ev.SimBackend
	if simBackend == xsim.BackendAOT {
		if _, err := p.runCodegen(parent, canonical, d); err != nil {
			simBackend = xsim.BackendCompiled
		}
	}

	// CompileKernel: (canonical ISDL, kernel) → assembly text.
	asmText, err := stageRun(p, parent, StageCompile, StageKey(StageCompile, canonical, kernel), func() (string, error) {
		return compiler.Compile(d, kernel)
	})
	if err != nil {
		return nil, err
	}

	// Assemble: (canonical ISDL, kernel) → *asm.Program. The compiler is
	// deterministic, so the kernel stands in for its assembly output in
	// the key. A cached program may have been assembled against an
	// earlier, textually identical parse of the description; programs are
	// read-only after assembly, so sharing is sound.
	prog, err := stageRun(p, parent, StageAssemble, StageKey(StageAssemble, canonical, kernel), func() (*asm.Program, error) {
		return asm.Assemble(d, asmText)
	})
	if err != nil {
		return nil, err
	}

	// Simulate: (canonical ISDL, program image) → SimArtifact. Keyed by
	// the marshalled image — not the kernel — so callers that feed
	// hand-written or hand-optimized assembly share entries with compiled
	// kernels that produce the same program.
	img := asm.Marshal(prog)
	simArt, err := stageRun(p, parent, StageSimulate, StageKey(StageSimulate, canonical, string(img)), func() (SimArtifact, error) {
		return runSimulation(d, prog, ev.MaxInstructions, workload, simBackend, p.Obs)
	})
	if err != nil {
		return nil, err
	}

	// Synthesize: independent of the workload, so a kernel change reuses
	// the hardware model — and keyed by the structural fingerprint of what
	// synthesis actually reads (layout, RTL, costs, signature shapes), not
	// the whole canonical text, so an encoding-only mutation (opcode
	// reassignment) reuses the artifact too. Verilog emission embeds the
	// opcode values, so that mode keys by the full canonical text.
	synthKey := StageKey(StageSynthesize, "fp", isdl.SynthFingerprint(d).String())
	if ev.Synthesis.EmitVerilog {
		synthKey = StageKey(StageSynthesize, canonical)
	}
	synthArt, err := stageRun(p, parent, StageSynthesize, synthKey, func() (SynthArtifact, error) {
		hw, err := hgen.Synthesize(d, ev.Lib, ev.Synthesis)
		if err != nil {
			return SynthArtifact{}, fmt.Errorf("core: synthesize: %w", err)
		}
		if p.Obs != nil {
			for ph, sec := range hw.PhaseSeconds {
				p.Obs.Histogram("synth." + ph + ".ns").ObserveNs(sec * 1e9)
			}
		}
		return SynthArtifact{
			CycleNs:          hw.CycleNs,
			AreaCells:        hw.AreaCells,
			EnergyPerInstrPJ: hw.EnergyPerInstrPJ,
			Result:           hw,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Combine: pure arithmetic over the two artifacts; not cached on its
	// own (the final key memoizes the result in EvaluateKernel).
	var start time.Time
	if p.Obs != nil {
		start = time.Now()
	}
	e := combineArtifacts(d.Name, workload, simArt, synthArt, ev.Lib)
	if p.Obs != nil {
		p.Obs.Histogram("stage.combine.ns").Observe(time.Since(start))
	}
	return e, nil
}

// runCodegen generates and natively compiles the aot simulator for the
// description, memoizing deterministic outcomes (a built binary, or an
// unsupported-description rejection) under the canonical text. Environmental
// failures — toolchain missing, backend disabled — are not cached, so a
// host that gains a toolchain mid-process is picked up.
func (p *Pipeline) runCodegen(parent *obs.Span, canonical string, d *isdl.Description) (CodegenArtifact, error) {
	c := p.Cache
	k := StageKey(StageCodegen, canonical)
	if c != nil {
		if v, err, ok := c.Get(StageCodegen, k); ok {
			a, _ := v.(CodegenArtifact)
			return a, err
		}
	}
	r := p.Obs
	var sp *obs.Span
	var start time.Time
	if r != nil {
		if parent != nil {
			sp = parent.Child(StageCodegen.String())
		} else {
			sp = r.StartSpan(StageCodegen.String())
		}
		r.Gauge("pipeline." + StageCodegen.String() + ".inflight").Add(1)
		start = time.Now()
	}
	br, err := gensim.Build(d)
	var art CodegenArtifact
	if err == nil {
		art = CodegenArtifact{Fingerprint: br.Fingerprint, Bin: br.Bin, BuildNs: br.BuildNs}
	}
	if r != nil {
		r.Histogram("stage." + StageCodegen.String() + ".ns").Observe(time.Since(start))
		r.Gauge("pipeline." + StageCodegen.String() + ".inflight").Add(-1)
		if err != nil {
			sp.SetArg("err", err.Error())
		} else {
			sp.SetArg("fp", br.Fingerprint)
			if br.CacheHit {
				sp.SetArg("cache", "hit")
			}
		}
		sp.End()
	}
	if c != nil && (err == nil || gensim.IsUnsupported(err)) {
		c.Put(StageCodegen, k, art, err)
	}
	return art, err
}

// runSimulation executes a program on a fresh engine of the requested
// backend and detaches the measurements; the engine's own perf counters are
// published into the registry (they are per-run deltas here, so repeated
// publishes sum to the total simulated work).
func runSimulation(d *isdl.Description, prog *asm.Program, limit int64, workload string, backend xsim.Backend, r *obs.Registry) (SimArtifact, error) {
	eng, info, err := xsim.NewEngine(d, backend)
	if err != nil {
		return SimArtifact{}, fmt.Errorf("core: simulator backend: %w", err)
	}
	defer eng.Close()
	if r != nil && info.FallbackReason != "" {
		r.Counter("sim.backend.fallback").Inc()
	}
	if err := eng.Load(prog); err != nil {
		return SimArtifact{}, fmt.Errorf("core: load: %w", err)
	}
	if limit <= 0 {
		limit = 100_000_000
	}
	err = eng.Run(limit)
	if r != nil {
		eng.Perf().Publish(r)
	}
	if err != nil {
		return SimArtifact{}, fmt.Errorf("core: simulate: %w", err)
	}
	if !eng.Halted() {
		return SimArtifact{}, fmt.Errorf("core: workload %s did not halt within %d instructions", workload, limit)
	}
	return SimArtifact{Cycles: eng.Cycle(), Stats: eng.Stats()}, nil
}

// stageRun memoizes one stage execution: on a cache miss it runs the
// stage — instrumented with a latency histogram, an in-flight gauge and a
// span when the pipeline has a registry — and stores the artifact (or the
// deterministic error) under the key. With a nil cache it just runs the
// stage.
func stageRun[T any](p *Pipeline, parent *obs.Span, s Stage, k CacheKey, run func() (T, error)) (T, error) {
	c := p.Cache
	if c != nil {
		if v, err, ok := c.Get(s, k); ok {
			t, _ := v.(T)
			return t, err
		}
	}
	r := p.Obs
	var sp *obs.Span
	var start time.Time
	if r != nil {
		if parent != nil {
			sp = parent.Child(s.String())
		} else {
			sp = r.StartSpan(s.String())
		}
		r.Gauge("pipeline." + s.String() + ".inflight").Add(1)
		start = time.Now()
	}
	t, err := run()
	if r != nil {
		r.Histogram("stage." + s.String() + ".ns").Observe(time.Since(start))
		r.Gauge("pipeline." + s.String() + ".inflight").Add(-1)
		if err != nil {
			sp.SetArg("err", err.Error())
		}
		sp.End()
	}
	if c == nil {
		return t, err
	}
	if err != nil {
		var zero T
		c.Put(s, k, zero, err)
		return t, err
	}
	c.Put(s, k, t, nil)
	return t, err
}
