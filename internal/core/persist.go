package core

// Cross-run cache persistence. Compile, Simulate and Synthesize artifacts
// are plain data, so they serialize to JSON and survive the process: a
// second `cmd/explore -cache-file` run starts with compilation and
// synthesis fully warm. Assemble entries hold live ASTs and Combine
// entries are cheap arithmetic over the persisted stages, so neither is
// saved — reloading recomputes them (and the per-stage metrics then show
// exactly which stages the persisted cache satisfied).

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// persistVersion guards the on-disk format; bump it whenever a persisted
// artifact's shape or a stage key's composition changes, so stale caches
// are rejected instead of silently misread. Version 2: the Synthesize
// stage keys by isdl.SynthFingerprint instead of the canonical text.
const persistVersion = 2

// persistedEntry is one stage artifact on disk. Exactly one of the value
// fields (or Err, for a memoized deterministic failure) is set, matching
// the entry's stage.
type persistedEntry struct {
	Key        string         `json:"key"` // hex CacheKey
	Err        string         `json:"err,omitempty"`
	Compile    *string        `json:"compile,omitempty"`
	Simulate   *SimArtifact   `json:"simulate,omitempty"`
	Synthesize *SynthArtifact `json:"synthesize,omitempty"`
}

// persistedCache is the on-disk form of a StageCache's serializable stages.
type persistedCache struct {
	Version int                         `json:"version"`
	Stages  map[string][]persistedEntry `json:"stages"`
}

// persistableStages lists the stages Save writes and Load accepts.
var persistableStages = []Stage{StageCompile, StageSimulate, StageSynthesize}

// Save writes the cache's serializable stages (compile, simulate,
// synthesize) as JSON. Assemble and combine entries are skipped; see the
// package comment above.
func (c *StageCache) Save(w io.Writer) error {
	out := persistedCache{Version: persistVersion, Stages: map[string][]persistedEntry{}}
	c.mu.Lock()
	for _, s := range persistableStages {
		entries := make([]persistedEntry, 0, len(c.tables[s]))
		for k, e := range c.tables[s] {
			pe := persistedEntry{Key: hex.EncodeToString(k[:])}
			if e.err != nil {
				pe.Err = e.err.Error()
			} else {
				switch s {
				case StageCompile:
					v, ok := e.val.(string)
					if !ok {
						continue
					}
					pe.Compile = &v
				case StageSimulate:
					v, ok := e.val.(SimArtifact)
					if !ok {
						continue
					}
					pe.Simulate = &v
				case StageSynthesize:
					v, ok := e.val.(SynthArtifact)
					if !ok {
						continue
					}
					v.Result = nil // figures only; the model is not serializable
					pe.Synthesize = &v
				}
			}
			entries = append(entries, pe)
		}
		out.Stages[s.String()] = entries
	}
	c.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// Load merges persisted entries into the cache. Entries from an
// incompatible version are rejected; malformed keys are an error. Loading
// does not count hits or misses — metrics start when evaluation does.
func (c *StageCache) Load(r io.Reader) error {
	var in persistedCache
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("core: decode cache: %w", err)
	}
	if in.Version != persistVersion {
		return fmt.Errorf("core: cache version %d, want %d", in.Version, persistVersion)
	}
	for _, s := range persistableStages {
		for _, pe := range in.Stages[s.String()] {
			raw, err := hex.DecodeString(pe.Key)
			if err != nil || len(raw) != len(CacheKey{}) {
				return fmt.Errorf("core: bad cache key %q for stage %s", pe.Key, s)
			}
			var k CacheKey
			copy(k[:], raw)
			if pe.Err != "" {
				c.Put(s, k, nil, errors.New(pe.Err))
				continue
			}
			switch s {
			case StageCompile:
				if pe.Compile != nil {
					c.Put(s, k, *pe.Compile, nil)
				}
			case StageSimulate:
				if pe.Simulate != nil {
					c.Put(s, k, *pe.Simulate, nil)
				}
			case StageSynthesize:
				if pe.Synthesize != nil {
					c.Put(s, k, *pe.Synthesize, nil)
				}
			}
		}
	}
	return nil
}

// SaveFile writes the cache to a file (see Save) atomically: the JSON goes
// to a temporary file in the same directory, is fsynced, and is renamed
// over the target. A crash or kill mid-write therefore leaves either the
// old cache or the new one — never a truncated file that would poison the
// next run's -cache-file load.
func (c *StageCache) SaveFile(path string) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: save cache: %w", err)
	}
	if err := c.Save(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save cache: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save cache: %w", err)
	}
	return nil
}

// LoadFile merges a cache file into the cache (see Load).
func (c *StageCache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: load cache: %w", err)
	}
	defer f.Close()
	if err := c.Load(f); err != nil {
		return fmt.Errorf("core: load cache %s: %w", path, err)
	}
	return nil
}
