package core

// Cross-run cache persistence. Compile, Simulate and Synthesize artifacts
// are plain data, so they serialize to JSON and survive the process: a
// second `cmd/explore -cache-file` run starts with compilation and
// synthesis fully warm. Assemble entries hold live ASTs and Combine
// entries are cheap arithmetic over the persisted stages, so neither is
// saved — reloading recomputes them (and the per-stage metrics then show
// exactly which stages the persisted cache satisfied).

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicfile"
)

// persistVersion guards the serialized formats — the cache file and the
// BlobStore namespaces (blobstore.go), which embed it — so stale caches
// are rejected (file) or invisible (store) instead of silently misread.
// Bump it whenever a persisted artifact's shape or a stage key's
// composition changes. Version 2: the Synthesize stage keys by
// isdl.SynthFingerprint instead of the canonical text.
const persistVersion = 2

// persistedEntry is one stage artifact in serialized form — an element of
// the cache file's per-stage arrays, and (without Key, which the blob
// address already carries) the body of one store blob. Exactly one of
// the value fields (or Err, for a memoized deterministic failure) is
// set, matching the entry's stage.
type persistedEntry struct {
	Key        string           `json:"key,omitempty"` // hex CacheKey (cache file only)
	Err        string           `json:"err,omitempty"`
	Compile    *string          `json:"compile,omitempty"`
	Simulate   *SimArtifact     `json:"simulate,omitempty"`
	Synthesize *SynthArtifact   `json:"synthesize,omitempty"`
	Combine    *Evaluation      `json:"combine,omitempty"`
	Codegen    *CodegenArtifact `json:"codegen,omitempty"`
}

// toPersisted converts one memo entry to its serialized form. The second
// result is false for entries that do not serialize: live ASTs (Parse,
// Assemble), nil values, or stages outside the persistable set.
func toPersisted(s Stage, e stageEntry) (persistedEntry, bool) {
	var pe persistedEntry
	if e.err != nil {
		pe.Err = e.err.Error()
		return pe, true
	}
	switch s {
	case StageCompile:
		v, ok := e.val.(string)
		if !ok {
			return pe, false
		}
		pe.Compile = &v
	case StageSimulate:
		v, ok := e.val.(SimArtifact)
		if !ok {
			return pe, false
		}
		pe.Simulate = &v
	case StageSynthesize:
		v, ok := e.val.(SynthArtifact)
		if !ok {
			return pe, false
		}
		v.Result = nil // figures only; the model is not serializable
		pe.Synthesize = &v
	case StageCombine:
		v, ok := e.val.(*Evaluation)
		if !ok || v == nil {
			return pe, false
		}
		cp := *v
		cp.Hardware = nil // like Synthesize: figures travel, the live model does not
		pe.Combine = &cp
	case StageCodegen:
		v, ok := e.val.(CodegenArtifact)
		if !ok {
			return pe, false
		}
		pe.Codegen = &v
	default:
		return pe, false
	}
	return pe, true
}

// fromPersisted converts a serialized entry back to a memo entry. The
// second result is false when the entry carries no value for the stage
// (wrong or empty field — a malformed document, not an error worth
// failing a load over).
func fromPersisted(s Stage, pe persistedEntry) (stageEntry, bool) {
	if pe.Err != "" {
		return stageEntry{err: errors.New(pe.Err)}, true
	}
	switch s {
	case StageCompile:
		if pe.Compile != nil {
			return stageEntry{val: *pe.Compile}, true
		}
	case StageSimulate:
		if pe.Simulate != nil {
			return stageEntry{val: *pe.Simulate}, true
		}
	case StageSynthesize:
		if pe.Synthesize != nil {
			return stageEntry{val: *pe.Synthesize}, true
		}
	case StageCombine:
		if pe.Combine != nil {
			return stageEntry{val: pe.Combine}, true
		}
	case StageCodegen:
		if pe.Codegen != nil {
			return stageEntry{val: *pe.Codegen}, true
		}
	}
	return stageEntry{}, false
}

// encodeStageBlob renders one entry as a store blob (persistedEntry
// JSON, no key — the blob's address carries it).
func encodeStageBlob(s Stage, e stageEntry) ([]byte, bool) {
	pe, ok := toPersisted(s, e)
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(&pe)
	if err != nil {
		return nil, false
	}
	return data, true
}

// decodeStageBlob parses a store blob back into a memo entry.
func decodeStageBlob(s Stage, data []byte) (stageEntry, error) {
	var pe persistedEntry
	if err := json.Unmarshal(data, &pe); err != nil {
		return stageEntry{}, fmt.Errorf("core: decode %s blob: %w", s, err)
	}
	e, ok := fromPersisted(s, pe)
	if !ok {
		return stageEntry{}, fmt.Errorf("core: %s blob carries no %s artifact", s, s)
	}
	return e, nil
}

// persistedCache is the on-disk form of a StageCache's serializable stages.
type persistedCache struct {
	Version int                         `json:"version"`
	Stages  map[string][]persistedEntry `json:"stages"`
}

// persistableStages lists the stages Save writes and Load accepts.
var persistableStages = []Stage{StageCompile, StageSimulate, StageSynthesize}

// Save writes the cache's serializable stages (compile, simulate,
// synthesize) as JSON. Assemble and combine entries are skipped; see the
// package comment above.
func (c *StageCache) Save(w io.Writer) error {
	out := persistedCache{Version: persistVersion, Stages: map[string][]persistedEntry{}}
	c.mu.Lock()
	for _, s := range persistableStages {
		entries := make([]persistedEntry, 0, len(c.tables[s]))
		for k, e := range c.tables[s] {
			pe, ok := toPersisted(s, e)
			if !ok {
				continue
			}
			pe.Key = hex.EncodeToString(k[:])
			entries = append(entries, pe)
		}
		out.Stages[s.String()] = entries
	}
	c.mu.Unlock()

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// Load merges persisted entries into the cache. Entries from an
// incompatible version are rejected; malformed keys are an error. Loading
// does not count hits or misses — metrics start when evaluation does.
func (c *StageCache) Load(r io.Reader) error {
	var in persistedCache
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return fmt.Errorf("core: decode cache: %w", err)
	}
	if in.Version != persistVersion {
		return fmt.Errorf("core: cache version %d, want %d", in.Version, persistVersion)
	}
	for _, s := range persistableStages {
		for _, pe := range in.Stages[s.String()] {
			raw, err := hex.DecodeString(pe.Key)
			if err != nil || len(raw) != len(CacheKey{}) {
				return fmt.Errorf("core: bad cache key %q for stage %s", pe.Key, s)
			}
			var k CacheKey
			copy(k[:], raw)
			if e, ok := fromPersisted(s, pe); ok {
				c.Put(s, k, e.val, e.err)
			}
		}
	}
	return nil
}

// SaveFile writes the cache to a file (see Save) atomically via
// internal/atomicfile: a crash or kill mid-write leaves either the old
// cache or the new one — never a truncated file that would poison the
// next run's -cache-file load.
func (c *StageCache) SaveFile(path string) error {
	if err := atomicfile.WriteTo(path, 0o644, c.Save); err != nil {
		return fmt.Errorf("core: save cache: %w", err)
	}
	return nil
}

// LoadFile merges a cache file into the cache (see Load).
func (c *StageCache) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("core: load cache: %w", err)
	}
	defer f.Close()
	if err := c.Load(f); err != nil {
		return fmt.Errorf("core: load cache %s: %w", path, err)
	}
	return nil
}

// LoadFileIfExists merges a cache file into the cache, distinguishing
// the two cold-start cases callers must treat differently: a missing
// file is a normal first run (returns loaded=false, nil error — start
// empty), while an unreadable or corrupt file is a hard error (the cache
// the user pointed at exists but cannot be trusted; silently starting
// empty would recompute everything and then overwrite it).
func (c *StageCache) LoadFileIfExists(path string) (loaded bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("core: load cache: %w", err)
	}
	defer f.Close()
	if err := c.Load(f); err != nil {
		return false, fmt.Errorf("core: load cache %s: %w", path, err)
	}
	return true, nil
}
