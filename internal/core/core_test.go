package core_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// TestFIROnSPAM runs the FIR workload end-to-end on the generated SPAM
// simulator and checks every output value against the Go reference model —
// the bit-true claim on a real DSP kernel.
func TestFIROnSPAM(t *testing.T) {
	const taps, nout = 16, 32
	samples, coefs := machines.FIRTestVectors(taps, nout)
	d := machines.SPAM()
	p, err := asm.Assemble(d, machines.FIRSPAM(taps, nout, samples, coefs))
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !sim.Halted() {
		t.Fatal("FIR did not halt")
	}
	want := machines.FIRReference(taps, nout, samples, coefs)
	for i, w := range want {
		got := sim.State().Get("DMX", machines.FIRSPAMOutBase+i).Uint64()
		if got != uint64(w) {
			t.Fatalf("y[%d] = %d, want %d", i, got, w)
		}
	}
	// The parallel loads must keep both move fields busy.
	util := sim.Stats().Utilization()
	mv1 := d.FieldByName("MV1").Index
	mv2 := d.FieldByName("MV2").Index
	if util[mv1] < 0.3 || util[mv2] < 0.3 {
		t.Errorf("move-field utilization too low: %v", util)
	}
}

func TestDotOnSPAM(t *testing.T) {
	const n = 24
	x, y := machines.FIRTestVectors(n, 0)
	d := machines.SPAM()
	p, err := asm.Assemble(d, machines.DotSPAM(n, x[:n], y))
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	want := machines.DotReference(n, x[:n], y)
	if got := sim.State().Get("RF", 8).Uint64(); got != uint64(want) {
		t.Fatalf("dot = %d, want %d", got, want)
	}
}

func TestVecAddOnSPAM2(t *testing.T) {
	const n = 40
	a, b := machines.VecTestVectors(n)
	d := machines.SPAM2()
	p, err := asm.Assemble(d, machines.VecAddSPAM2(n, a, b))
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	wantC, wantSum := machines.VecAddReference(n, a, b)
	for i, w := range wantC {
		if got := sim.State().Get("DM", 256+i).Uint64(); got != uint64(w) {
			t.Fatalf("c[%d] = %d, want %d", i, got, w)
		}
	}
	if got := sim.State().Get("RF", 7).Uint64(); got != uint64(wantSum) {
		t.Fatalf("checksum = %d, want %d", got, wantSum)
	}
}

func TestEvaluate(t *testing.T) {
	const taps, nout = 8, 16
	samples, coefs := machines.FIRTestVectors(taps, nout)
	ev := core.NewEvaluator()
	e, err := ev.EvaluateSource(machines.SPAMSource, machines.FIRSPAM(taps, nout, samples, coefs), "fir")
	if err != nil {
		t.Fatal(err)
	}
	if e.Cycles == 0 || e.CycleNs <= 0 || e.AreaCells <= 0 {
		t.Fatalf("degenerate evaluation: %+v", e)
	}
	if e.RuntimeUs <= 0 || e.PowerMW <= 0 || e.EnergyUJ <= 0 {
		t.Fatalf("combined figures missing: %+v", e)
	}
	s := e.Summary()
	for _, want := range []string{"cycles:", "cycle length:", "die size:", "power:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if e.Score(1, 0, 0) != e.RuntimeUs {
		t.Error("runtime-only score should equal runtime")
	}
}

// TestEvaluationShape: SPAM is bigger and hotter than SPAM2, but finishes a
// comparable workload in fewer cycles — the area/performance trade the
// exploration loop navigates.
func TestEvaluationShape(t *testing.T) {
	ev := core.NewEvaluator()

	const n = 32
	a, b := machines.VecTestVectors(n)
	e2, err := ev.EvaluateSource(machines.SPAM2Source, machines.VecAddSPAM2(n, a, b), "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	x, y := machines.VecTestVectors(n)
	eSpam, err := ev.EvaluateSource(machines.SPAMSource, machines.DotSPAM(n, x, y), "dot")
	if err != nil {
		t.Fatal(err)
	}
	if !(eSpam.AreaCells > e2.AreaCells) {
		t.Errorf("SPAM area %.0f should exceed SPAM2 %.0f", eSpam.AreaCells, e2.AreaCells)
	}
	if !(eSpam.Cycles < e2.Cycles) {
		t.Errorf("SPAM dot (%d cycles) should beat SPAM2 vecadd (%d cycles) on a same-length vector", eSpam.Cycles, e2.Cycles)
	}
}

func TestEvaluateErrors(t *testing.T) {
	ev := core.NewEvaluator()
	if _, err := ev.EvaluateSource("garbage", "", "w"); err == nil {
		t.Error("bad ISDL should fail")
	}
	if _, err := ev.EvaluateSource(machines.SPAM2Source, "frob R1", "w"); err == nil {
		t.Error("bad assembly should fail")
	}
	ev.MaxInstructions = 10
	if _, err := ev.EvaluateSource(machines.SPAM2Source, "loop: jmp loop", "w"); err == nil || !strings.Contains(err.Error(), "halt") {
		t.Errorf("non-halting workload: err = %v", err)
	}
}
