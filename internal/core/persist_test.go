package core

// Regression tests for atomic cache persistence: SaveFile must never leave
// a torn file behind (it writes a same-directory temp file, fsyncs and
// renames), and LoadFile must reject a truncated cache gracefully instead
// of poisoning the run.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// persistSeed fills a cache with one persistable entry per stage.
func persistSeed(t *testing.T) *StageCache {
	t.Helper()
	c := NewStageCache()
	c.Put(StageCompile, StageKey(StageCompile, "compile-input"), "compiled text", nil)
	c.Put(StageSimulate, StageKey(StageSimulate, "simulate-input"), SimArtifact{Cycles: 42}, nil)
	return c
}

func TestSaveFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")

	if err := persistSeed(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite with a second save; the file must be replaced wholesale
	// and no temporary files may remain in the directory.
	bigger := persistSeed(t)
	bigger.Put(StageCompile, StageKey(StageCompile, "another-input"), "more compiled text", nil)
	if err := bigger.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "cache.json" {
			t.Errorf("leftover file after SaveFile: %s", e.Name())
		}
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) <= len(first) {
		t.Fatalf("second save (%d bytes) should supersede the first (%d bytes)", len(second), len(first))
	}
	if err := NewStageCache().LoadFile(path); err != nil {
		t.Fatalf("replaced file does not load: %v", err)
	}
}

// TestSaveFileFailureKeepsOldCache: when the write cannot complete (the
// temp file cannot even be created — here the target's directory is gone),
// the existing cache file is untouched.
func TestSaveFileFailureKeepsOldCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "cache.json")
	if err := os.Mkdir(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := persistSeed(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(filepath.Dir(path), 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(filepath.Dir(path), 0o755)
	if err := persistSeed(t).SaveFile(path); err == nil {
		t.Skip("running as a user unaffected by directory permissions")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("failed save modified the existing cache file")
	}
}

// TestLoadFileTruncated: a cache torn mid-write (simulating the old
// os.Create in-place behaviour interrupted by a crash) must fail to load
// with an error — and leave the in-memory cache usable, so the explorer
// can fall back to a cold start.
func TestLoadFileTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.json")
	if err := persistSeed(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewStageCache()
	if err := c.LoadFile(path); err == nil {
		t.Fatal("truncated cache file loaded without error")
	} else if !strings.Contains(err.Error(), "cache") {
		t.Errorf("unhelpful error for truncated cache: %v", err)
	}
	// The cache must still work after the failed load.
	c.Put(StageCompile, StageKey(StageCompile, "fresh"), "fresh text", nil)
	if v, err, ok := c.Get(StageCompile, StageKey(StageCompile, "fresh")); !ok || err != nil || v != "fresh text" {
		t.Errorf("cache unusable after failed load: %v %v %v", v, err, ok)
	}
}

// The two -cache-file cold-start cases (satellite regression tests): a
// missing file is a normal first run — LoadFileIfExists reports "nothing
// loaded" without error — while a corrupt file is a hard error, never a
// silent empty start.
func TestLoadFileIfExistsMissing(t *testing.T) {
	c := NewStageCache()
	loaded, err := c.LoadFileIfExists(filepath.Join(t.TempDir(), "never-written.json"))
	if err != nil {
		t.Fatalf("missing cache file treated as error: %v", err)
	}
	if loaded {
		t.Fatal("LoadFileIfExists claims to have loaded a missing file")
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty after missing-file load: %d entries", c.Len())
	}
}

func TestLoadFileIfExistsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := os.WriteFile(path, []byte("{this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewStageCache()
	loaded, err := c.LoadFileIfExists(path)
	if err == nil || loaded {
		t.Fatalf("corrupt cache file = (loaded=%v, err=%v), want hard error", loaded, err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name the offending file: %v", err)
	}
}

func TestLoadFileIfExistsLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.json")
	if err := persistSeed(t).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	c := NewStageCache()
	loaded, err := c.LoadFileIfExists(path)
	if err != nil || !loaded {
		t.Fatalf("LoadFileIfExists = (%v, %v), want (true, nil)", loaded, err)
	}
	if c.Len() != 2 {
		t.Fatalf("loaded %d entries, want 2", c.Len())
	}
}
