package randmachine

import (
	"fmt"
	"math/rand"

	"repro/internal/isdl"
)

// Perturb applies n random — but always semantically valid — mutations to
// an existing ISDL description and returns the mutated canonical source
// plus a human-readable description of each applied mutation. It powers
// the exploration engine's seeded random restarts: perturbations are drawn
// deterministically from rnd, so a fixed seed reproduces the exact same
// start points.
//
// The mutation set is deliberately conservative — retime an operation's
// pipeline (deepen always, shorten when Latency > 1) or double a data
// memory — so a perturbed machine still compiles every kernel the base
// compiled: no operation is removed and no memory shrinks below data the
// kernel placed in it.
func Perturb(rnd *rand.Rand, src string, n int) (string, []string, error) {
	d, err := isdl.Parse(src)
	if err != nil {
		return "", nil, err
	}
	cur := isdl.Format(d)
	var actions []string
	for step := 0; step < n; step++ {
		d, err := isdl.Parse(cur)
		if err != nil {
			return "", nil, fmt.Errorf("perturb step %d: %w", step, err)
		}
		muts := perturbations(d)
		if len(muts) == 0 {
			break
		}
		m := muts[rnd.Intn(len(muts))]
		m.apply()
		text := isdl.Format(d)
		if _, err := isdl.Parse(text); err != nil {
			// A mutation from the valid set must stay valid; treat a
			// failure as a bug rather than silently skipping it.
			return "", nil, fmt.Errorf("perturb %q produced invalid ISDL: %w", m.action, err)
		}
		cur = text
		actions = append(actions, m.action)
	}
	return cur, actions, nil
}

// perturbation is one applicable mutation of a parsed description.
type perturbation struct {
	action string
	apply  func()
}

// perturbations enumerates the valid mutations of d in a deterministic
// order (field/op/storage declaration order), so rnd draws index i against
// the same list on every run.
func perturbations(d *isdl.Description) []perturbation {
	var out []perturbation
	for fi := range d.Fields {
		for oi := range d.Fields[fi].Ops {
			op := d.Fields[fi].Ops[oi]
			if op.Name == "nop" {
				continue
			}
			name := op.QualName()
			o := op
			out = append(out, perturbation{
				action: "deepen " + name + " pipeline",
				apply:  func() { o.Timing.Latency++; o.Costs.Stall++ },
			})
			if op.Timing.Latency > 1 {
				out = append(out, perturbation{
					action: "shorten " + name + " pipeline",
					apply: func() {
						o.Timing.Latency--
						if o.Costs.Stall > 0 {
							o.Costs.Stall--
						}
					},
				})
			}
		}
	}
	for _, st := range d.Storage {
		if st.Kind == isdl.StDataMemory {
			s := st
			out = append(out, perturbation{
				action: fmt.Sprintf("double %s depth", st.Name),
				apply:  func() { s.Depth *= 2 },
			})
		}
	}
	return out
}
