// Package randmachine generates random — but always semantically valid —
// ISDL machine descriptions and random programs for them. It exists to
// drive property tests across the whole generated-tool pipeline: for any
// machine the generator can produce, parsing must succeed, Format must be a
// fixpoint, assembly must invert disassembly (Axiom 1), and the two
// simulator cores must agree. The space covers varying word widths,
// register-file shapes, immediate widths, operand non-terminals and
// operation mixes.
package randmachine

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated machine.
type Config struct {
	// MaxOps bounds the single field's operation count (≥ 4: mov, halt,
	// nop and at least one ALU op are always present).
	MaxOps int
	// ForCompiler constrains the random space to machines the retargetable
	// compiler can always target (the suite gauntlet's mode): eight
	// registers, 8-bit immediates, add/sub/and guaranteed (or/xor still
	// random), and load, store and branch always present. Word width,
	// register width and the operand non-terminal stay random.
	ForCompiler bool
}

// Machine is a generated machine plus the knowledge needed to generate
// valid programs for it.
type Machine struct {
	Source string

	WordWidth int
	RegCount  int
	RegWidth  int
	ImmWidth  int
	MemDepth  int
	UseNT     bool
	// ALUOps lists the generated three-address mnemonics; HasLoad/HasStore
	// report the memory operations; HasBranch the beq/jump pair.
	ALUOps    []string
	HasLoad   bool
	HasStore  bool
	HasBranch bool
}

var aluSyms = []struct{ name, sym string }{
	{"add", "+"}, {"sub", "-"}, {"and", "&"}, {"or", "|"}, {"xor", "^"},
}

// Generate builds a random machine.
func Generate(rnd *rand.Rand, cfg Config) *Machine {
	if cfg.MaxOps < 4 {
		cfg.MaxOps = 8
	}
	m := &Machine{
		WordWidth: []int{20, 24, 28, 32}[rnd.Intn(4)],
		RegCount:  []int{4, 8}[rnd.Intn(2)],
		RegWidth:  []int{8, 12, 16}[rnd.Intn(3)],
		ImmWidth:  []int{6, 8}[rnd.Intn(2)],
		MemDepth:  64,
		UseNT:     rnd.Intn(2) == 0,
	}
	if cfg.ForCompiler {
		// The compiler needs temps alongside register-resident loop
		// variables, and its relational lowering builds the sign-bit mask
		// 1<<(w-1) by double-and-add from an immediate seed — an 8-bit
		// immediate always suffices, a 6-bit one does not.
		m.RegCount = 8
		m.ImmWidth = 8
	}
	regBits := 2
	if m.RegCount == 8 {
		regBits = 3
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Machine rnd;\nFormat %d;\n\nSection Global_Definitions\n\n", m.WordWidth)
	fmt.Fprintf(&sb, "Token GPR \"R\" [0..%d];\n", m.RegCount-1)
	fmt.Fprintf(&sb, "Token IMM imm signed %d;\n", m.ImmWidth)
	fmt.Fprintf(&sb, "Token UIMM imm unsigned 8;\n")

	srcType := "GPR"
	srcBits := regBits
	if m.UseNT {
		srcType = "SRC"
		srcBits = m.ImmWidth + 1
		zeros := strings.Repeat("0", m.ImmWidth-regBits)
		fmt.Fprintf(&sb, `
Non_Terminal SRC width %d :
  option (r: GPR)
    Encode { R[%d] = 0b0; R[%d:%d] = 0b%s; R[%d:0] = r; }
    Value { RF[r] }
  option "#" (i: IMM)
    Encode { R[%d] = 0b1; R[%d:0] = i; }
    Value { sext(i, %d) }
;
`, m.ImmWidth+1,
			m.ImmWidth, m.ImmWidth-1, regBits, zeros, regBits-1,
			m.ImmWidth, m.ImmWidth-1, m.RegWidth)
	}

	fmt.Fprintf(&sb, `
Section Storage

InstructionMemory IMEM width %d depth 256;
DataMemory DMEM width %d depth %d;
RegFile RF width %d depth %d;
ControlRegister HLT width 1;
ProgramCounter PC width 8;

Section Instruction_Set

Field EX:
`, m.WordWidth, m.RegWidth, m.MemDepth, m.RegWidth, m.RegCount)

	// Fixed operand bit positions: opcode in the top 5 bits, d/a registers
	// below, the source operand at the bottom.
	w := m.WordWidth
	opTop, opBot := w-1, w-5
	dTop := opBot - 1
	dBot := dTop - regBits + 1
	aTop := dBot - 1
	aBot := aTop - regBits + 1
	opcode := 0
	nextOp := func() int { opcode++; return opcode - 1 }

	srcEnc := func() string {
		return fmt.Sprintf("I[%d:0] = s;", srcBits-1)
	}

	var opIdx []int
	if cfg.ForCompiler {
		// add, sub and and are the compiler's floor (arithmetic plus the
		// sign-bit mask of relational lowering); or and xor stay random.
		opIdx = []int{0, 1, 2}
		for i := 3; i < len(aluSyms); i++ {
			if rnd.Intn(2) == 0 {
				opIdx = append(opIdx, i)
			}
		}
	} else {
		nALU := 1 + rnd.Intn(len(aluSyms))
		opIdx = rnd.Perm(len(aluSyms))[:nALU]
	}
	for _, pi := range opIdx {
		op := aluSyms[pi]
		m.ALUOps = append(m.ALUOps, op.name)
		fmt.Fprintf(&sb, `  op %s (d: GPR) "," (a: GPR) "," (s: %s)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = d; I[%d:%d] = a; %s }
    Action { RF[d] <- RF[a] %s %s; }
`, op.name, srcType, opTop, opBot, nextOp(), dTop, dBot, aTop, aBot, srcEnc(), op.sym, srcExpr(m))
	}

	// Always: mov (with immediate reachability), halt, nop.
	fmt.Fprintf(&sb, `  op mv (d: GPR) "," (s: %s)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = d; %s }
    Action { RF[d] <- %s; }
`, srcType, opTop, opBot, nextOp(), dTop, dBot, srcEnc(), srcExpr(m))
	if !m.UseNT {
		// Direct-register machines still need an immediate move.
		fmt.Fprintf(&sb, `  op mvi (d: GPR) "," (i: IMM)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = d; I[%d:0] = i; }
    Action { RF[d] <- sext(i, %d); }
`, opTop, opBot, nextOp(), dTop, dBot, m.ImmWidth-1, m.RegWidth)
	}

	if cfg.ForCompiler || rnd.Intn(2) == 0 {
		m.HasLoad = true
		fmt.Fprintf(&sb, `  op ld (d: GPR) "," "@" (a: GPR)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = d; I[%d:%d] = a; }
    Action { RF[d] <- DMEM[RF[a]]; }
    Cost { Cycle = 1; Stall = 1; }
    Timing { Latency = 2; Usage = 1; }
`, opTop, opBot, nextOp(), dTop, dBot, aTop, aBot)
	}
	if cfg.ForCompiler || rnd.Intn(2) == 0 {
		m.HasStore = true
		fmt.Fprintf(&sb, `  op st "@" (a: GPR) "," (v: GPR)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = v; I[%d:%d] = a; }
    Action { DMEM[RF[a]] <- RF[v]; }
`, opTop, opBot, nextOp(), dTop, dBot, aTop, aBot)
	}
	if cfg.ForCompiler || rnd.Intn(2) == 0 {
		m.HasBranch = true
		fmt.Fprintf(&sb, `  op beq (a: GPR) "," (b: GPR) "," (t: UIMM)
    Encode { I[%d:%d] = 0b%05b; I[%d:%d] = a; I[%d:%d] = b; I[7:0] = t; }
    Action { if (RF[a] == RF[b]) { PC <- t; } }
  op jmp (t: UIMM)
    Encode { I[%d:%d] = 0b%05b; I[7:0] = t; }
    Action { PC <- t; }
`, opTop, opBot, nextOp(), dTop, dBot, aTop, aBot, opTop, opBot, nextOp())
	}

	fmt.Fprintf(&sb, `  op halt
    Encode { I[%d:%d] = 0b%05b; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[%d:%d] = 0b11111; }
`, opTop, opBot, nextOp(), opTop, opBot)

	m.Source = sb.String()
	return m
}

// srcExpr renders the action expression for the source operand.
func srcExpr(m *Machine) string {
	if m.UseNT {
		return "s"
	}
	return "RF[s]"
}

// RandomProgram emits a random straight-line program of n instructions plus
// a halt, using only operand values that are valid for the machine.
func (m *Machine) RandomProgram(rnd *rand.Rand, n int) string {
	var lines []string
	reg := func() int { return rnd.Intn(m.RegCount) }
	immMax := 1 << uint(m.ImmWidth-1)
	imm := func() int { return rnd.Intn(2*immMax) - immMax }
	src := func() string {
		if m.UseNT && rnd.Intn(2) == 0 {
			return fmt.Sprintf("#%d", imm())
		}
		return fmt.Sprintf("R%d", reg())
	}
	for len(lines) < n {
		switch k := rnd.Intn(5); {
		case k == 0 && m.UseNT:
			lines = append(lines, fmt.Sprintf("mv R%d, #%d", reg(), imm()))
		case k == 0:
			lines = append(lines, fmt.Sprintf("mvi R%d, %d", reg(), imm()))
		case k == 1 && m.HasLoad:
			lines = append(lines, fmt.Sprintf("ld R%d, @R%d", reg(), reg()))
		case k == 2 && m.HasStore:
			lines = append(lines, fmt.Sprintf("st @R%d, R%d", reg(), reg()))
		default:
			op := m.ALUOps[rnd.Intn(len(m.ALUOps))]
			lines = append(lines, fmt.Sprintf("%s R%d, R%d, %s", op, reg(), reg(), src()))
		}
	}
	lines = append(lines, "halt")
	return strings.Join(lines, "\n")
}
