package randmachine_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/randmachine"
	"repro/internal/tech"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// TestRandomMachinesPipeline is the whole-pipeline property test: for each
// of a set of randomly generated machines,
//
//  1. the description parses and Format∘Parse is a fixpoint,
//  2. random programs assemble, disassemble back to text, and re-assemble
//     to the identical words (Axiom 1 end to end),
//  3. the compiled-closure and AST-interpreting simulator cores produce
//     identical architectural state and cycle counts.
func TestRandomMachinesPipeline(t *testing.T) {
	rnd := rand.New(rand.NewSource(2024))
	machinesTried := 0
	for trial := 0; trial < 24; trial++ {
		m := randmachine.Generate(rnd, randmachine.Config{})
		d, err := isdl.Parse(m.Source)
		if err != nil {
			t.Fatalf("trial %d: generated machine does not parse: %v\n%s", trial, err, m.Source)
		}
		machinesTried++

		// Format fixpoint.
		text1 := isdl.Format(d)
		d2, err := isdl.Parse(text1)
		if err != nil {
			t.Fatalf("trial %d: Format output does not parse: %v", trial, err)
		}
		if text2 := isdl.Format(d2); text1 != text2 {
			t.Fatalf("trial %d: Format is not a fixpoint", trial)
		}

		for prog := 0; prog < 4; prog++ {
			src := m.RandomProgram(rnd, 20)
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatalf("trial %d: program does not assemble: %v\n%s", trial, err, src)
			}

			// Text round trip.
			listing := asm.DisassembleProgram(p)
			p2, err := asm.Assemble(d, listing)
			if err != nil {
				t.Fatalf("trial %d: listing does not re-assemble: %v\n%s", trial, err, listing)
			}
			if len(p2.Words) != len(p.Words) {
				t.Fatalf("trial %d: round trip changed program length", trial)
			}
			for i := range p.Words {
				if !p2.Words[i].Eq(p.Words[i]) {
					t.Fatalf("trial %d: word %d changed across round trip", trial, i)
				}
			}

			// Core equivalence.
			run := func(compiled bool) *xsim.Simulator {
				sim := xsim.New(d)
				sim.CompiledCore = compiled
				if err := sim.Load(p); err != nil {
					t.Fatal(err)
				}
				if err := sim.Run(1000); err != nil {
					t.Fatalf("trial %d: run: %v\n%s", trial, err, src)
				}
				return sim
			}
			a, b := run(true), run(false)
			if a.Cycle() != b.Cycle() {
				t.Fatalf("trial %d: cores disagree on cycles: %d vs %d", trial, a.Cycle(), b.Cycle())
			}
			sa, sb := a.State().Snapshot(), b.State().Snapshot()
			for name, va := range sa {
				for i := range va {
					if !va[i].Eq(sb[name][i]) {
						t.Fatalf("trial %d: cores disagree on %s[%d]", trial, name, i)
					}
				}
			}
		}
	}
	if machinesTried != 24 {
		t.Fatalf("only %d machines generated", machinesTried)
	}
}

// TestGeneratedMachineShape sanity-checks the generator's bookkeeping.
func TestGeneratedMachineShape(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	m := randmachine.Generate(rnd, randmachine.Config{MaxOps: 2}) // floor applies
	d, err := isdl.Parse(m.Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ALUOps) == 0 {
		t.Fatal("no ALU operations")
	}
	f := d.Fields[0]
	for _, name := range m.ALUOps {
		if _, ok := f.ByName[name]; !ok {
			t.Fatalf("generator lied about op %s", name)
		}
	}
	if _, ok := f.ByName["halt"]; !ok {
		t.Fatal("no halt")
	}
	if _, ok := f.ByName["nop"]; !ok {
		t.Fatal("no nop")
	}
}

// TestRandomMachinesHardwareModel extends the pipeline property to HGEN:
// every random machine synthesizes, its Verilog parses and elaborates, and
// random programs run lock-step on the ILS and the event-driven hardware
// model with identical state after every instruction.
func TestRandomMachinesHardwareModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 10; trial++ {
		m := randmachine.Generate(rnd, randmachine.Config{})
		d, err := isdl.Parse(m.Source)
		if err != nil {
			t.Fatal(err)
		}
		r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: synthesize: %v\n%s", trial, err, m.Source)
		}
		mod, err := verilog.Parse(r.VerilogText)
		if err != nil {
			t.Fatalf("trial %d: verilog re-parse: %v", trial, err)
		}

		for prog := 0; prog < 3; prog++ {
			src := m.RandomProgram(rnd, 15)
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatal(err)
			}
			ils := xsim.New(d)
			if err := ils.Load(p); err != nil {
				t.Fatal(err)
			}
			hw, err := verilog.NewSim(mod)
			if err != nil {
				t.Fatalf("trial %d: elaborate: %v", trial, err)
			}
			for i, w := range p.Words {
				if err := hw.SetMem("s_IMEM", i, w); err != nil {
					t.Fatal(err)
				}
			}
			for step := 0; !ils.Halted(); step++ {
				if err := ils.Step(); err != nil {
					t.Fatalf("trial %d step %d: %v\n%s", trial, step, err, src)
				}
				ils.FlushPending()
				if err := hw.Tick("clk"); err != nil {
					t.Fatal(err)
				}
				for _, st := range d.Storage {
					if st.Kind == isdl.StInstructionMemory {
						continue
					}
					if st.Kind.Addressed() {
						for i := 0; i < st.Depth; i++ {
							want := ils.State().Get(st.Name, i)
							got, err := hw.GetMem("s_"+st.Name, i)
							if err != nil {
								t.Fatal(err)
							}
							if !got.Eq(want) {
								t.Fatalf("trial %d step %d: %s[%d]: hw %s vs ils %s\n%s",
									trial, step, st.Name, i, got, want, src)
							}
						}
					} else {
						want := ils.State().Get(st.Name, 0)
						got, err := hw.Get("s_" + st.Name)
						if err != nil {
							t.Fatal(err)
						}
						if !got.Eq(want) {
							t.Fatalf("trial %d step %d: %s: hw %s vs ils %s\n%s",
								trial, step, st.Name, got, want, src)
						}
					}
				}
			}
		}
	}
}
