package randmachine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isdl"
	"repro/internal/machines"
)

// TestPerturbDeterministic: the same seed must produce byte-identical
// perturbations — the exploration engine's seeded restarts depend on it.
func TestPerturbDeterministic(t *testing.T) {
	srcA, actsA, err := Perturb(rand.New(rand.NewSource(7)), machines.SPAMSource, 3)
	if err != nil {
		t.Fatal(err)
	}
	srcB, actsB, err := Perturb(rand.New(rand.NewSource(7)), machines.SPAMSource, 3)
	if err != nil {
		t.Fatal(err)
	}
	if srcA != srcB {
		t.Error("same seed produced different sources")
	}
	if strings.Join(actsA, ";") != strings.Join(actsB, ";") {
		t.Errorf("same seed produced different actions: %v vs %v", actsA, actsB)
	}
	if len(actsA) != 3 {
		t.Errorf("applied %d mutations, want 3", len(actsA))
	}
}

// TestPerturbStaysValid: every perturbed machine must parse, and the
// mutation set must be conservative — no operation disappears, so any
// kernel the base compiled still compiles.
func TestPerturbStaysValid(t *testing.T) {
	for _, name := range []string{"toy", "spam", "spam2", "risc32"} {
		src := map[string]string{
			"toy": machines.ToySource, "spam": machines.SPAMSource,
			"spam2": machines.SPAM2Source, "risc32": machines.RISC32Source,
		}[name]
		base, err := isdl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 8; seed++ {
			out, _, err := Perturb(rand.New(rand.NewSource(seed)), src, 2)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			d, err := isdl.Parse(out)
			if err != nil {
				t.Fatalf("%s seed %d: perturbed source invalid: %v", name, seed, err)
			}
			for fi := range base.Fields {
				if len(d.Fields[fi].Ops) != len(base.Fields[fi].Ops) {
					t.Errorf("%s seed %d: field %s lost operations", name, seed, base.Fields[fi].Name)
				}
			}
			for _, st := range base.Storage {
				if got := d.StorageByName[st.Name].Depth; got < st.Depth {
					t.Errorf("%s seed %d: %s shrank %d -> %d", name, seed, st.Name, st.Depth, got)
				}
			}
		}
	}
}

// TestPerturbChangesMachine: a perturbation must actually move the start
// point (the canonical text differs from the canonical base).
func TestPerturbChangesMachine(t *testing.T) {
	d, err := isdl.Parse(machines.SPAMSource)
	if err != nil {
		t.Fatal(err)
	}
	canon := isdl.Format(d)
	out, acts, err := Perturb(rand.New(rand.NewSource(1)), machines.SPAMSource, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out == canon {
		t.Errorf("perturbation %v left the machine unchanged", acts)
	}
}
