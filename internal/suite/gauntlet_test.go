package suite_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/suite"
)

// TestGauntletDeterminism proves the acceptance property the nightly CI
// job relies on: the same base seed yields the exact same report —
// per-trial seeds, machine shapes, kernels, counts and renderings.
func TestGauntletDeterminism(t *testing.T) {
	o := suite.GauntletOptions{N: 3, Seed: 99, NoCosim: true}
	a := suite.RunGauntlet(o)
	b := suite.RunGauntlet(o)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed gauntlet reports differ:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	if !a.Clean() {
		t.Fatalf("gauntlet not clean:\n%s", a.Render())
	}
	if a.Render() != b.Render() {
		t.Fatal("same-seed renderings differ")
	}
}

// TestGauntletReplay proves a trial reproduces from its per-trial seed
// alone — the property every divergence report's "replay:" line depends
// on: RunTrial(0, seed) must rebuild the same machine, kernel and counts
// that the full run produced at that seed.
func TestGauntletReplay(t *testing.T) {
	o := suite.GauntletOptions{N: 3, Seed: 12345, NoCosim: true}
	rep := suite.RunGauntlet(o)
	if !rep.Clean() {
		t.Fatalf("gauntlet not clean:\n%s", rep.Render())
	}
	for _, orig := range rep.Trials {
		got := suite.RunTrial(0, orig.Seed, o)
		got.Trial = orig.Trial // the index is positional, not seed-derived
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("trial at seed %d did not replay:\n%+v\nvs\n%+v", orig.Seed, orig, got)
		}
	}
}

// TestGauntletCosimLeg runs one full trial with the Verilog leg enabled so
// the synthesize → parse → lockstep co-simulation path stays covered by
// `go test` (the CI gauntlet smoke covers larger counts).
func TestGauntletCosimLeg(t *testing.T) {
	if testing.Short() {
		t.Skip("Verilog co-simulation is not -short")
	}
	rep := suite.RunGauntlet(suite.GauntletOptions{N: 1, Seed: 7})
	if !rep.Cosim {
		t.Fatal("cosim leg should be on by default")
	}
	if !rep.Clean() {
		t.Fatalf("gauntlet not clean:\n%s", rep.Render())
	}
}

// TestTrialSeed pins the splitmix64 derivation: distinct per-trial seeds,
// and stable values (the replay lines in archived divergence reports must
// keep meaning the same trial).
func TestTrialSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := suite.TrialSeed(1, i)
		if seen[s] {
			t.Fatalf("duplicate per-trial seed at index %d", i)
		}
		seen[s] = true
	}
	if suite.TrialSeed(1, 0) == suite.TrialSeed(2, 0) {
		t.Fatal("different base seeds produced the same trial seed")
	}
	if suite.TrialSeed(1, 0) != suite.TrialSeed(1, 0) {
		t.Fatal("TrialSeed is not a pure function")
	}
}

// TestGauntletRender checks the report prints a replay line for every
// divergence and the clean-run footer otherwise.
func TestGauntletRender(t *testing.T) {
	clean := suite.RunGauntlet(suite.GauntletOptions{N: 1, Seed: 99, NoCosim: true})
	if !strings.Contains(clean.Render(), "all 1 trials agree") {
		t.Fatalf("clean render missing footer:\n%s", clean.Render())
	}
	rigged := &suite.GauntletReport{
		N: 1, Seed: 1, Divergences: 1,
		Trials: []suite.Trial{{
			Kernel: "dot", Seed: 42,
			Divergences: []suite.Divergence{{Leg: "cosim", Kernel: "dot", Seed: 42, Detail: "boom"}},
		}},
	}
	out := rigged.Render()
	if !strings.Contains(out, "-seed-replay 42") || !strings.Contains(out, "boom") {
		t.Fatalf("divergence render missing replay line:\n%s", out)
	}
	if rigged.Clean() {
		t.Fatal("report with divergences counted as clean")
	}
}
