package suite_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/gensim" // register the aot backend
	"repro/internal/machines"
	"repro/internal/suite"
	"repro/internal/xsim"
)

// TestMain points the aot build cache at a shared scratch dir so test runs
// don't pollute the user cache but still reuse binaries across tests.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_GENSIM_CACHE") == "" {
		dir, err := os.MkdirTemp("", "suite-test-cache-*")
		if err == nil {
			os.Setenv("REPRO_GENSIM_CACHE", dir)
			defer os.RemoveAll(dir)
		}
	}
	os.Exit(m.Run())
}

func TestRegistry(t *testing.T) {
	w, err := suite.Get("dot")
	if err != nil {
		t.Fatal(err)
	}
	if w.Kernel == "" || !w.HasTag("dsp") {
		t.Fatalf("dot workload malformed: %+v", w)
	}
	if _, err := suite.Get("nonesuch"); err == nil {
		t.Fatal("Get should reject unknown workloads")
	}

	all := suite.All(suite.Filter{})
	if len(all) < 9 { // 8 kernels + at least one asm workload
		t.Fatalf("registry has %d workloads, want >= 9", len(all))
	}
	dsp := suite.All(suite.Filter{Tag: "dsp"})
	if len(dsp) == 0 {
		t.Fatal("no dsp-tagged workloads")
	}
	for _, w := range dsp {
		if !w.HasTag("dsp") {
			t.Fatalf("%s matched tag dsp without having it", w.Name)
		}
	}
	byName := suite.All(suite.Filter{Name: "crc"})
	if len(byName) != 1 || byName[0].Name != "crc" {
		t.Fatalf("Filter{Name: crc} = %v", suite.Names(suite.Filter{Name: "crc"}))
	}
}

func TestRegisterValidation(t *testing.T) {
	cases := map[string]suite.Workload{
		"empty name":       {Kernel: "var x; x = 1;"},
		"no body":          {Name: "w"},
		"kernel and asm":   {Name: "w", Kernel: "var x;", Asm: func() string { return "" }},
		"asm sans machine": {Name: "w", Asm: func() string { return "" }},
		"duplicate of dot": {Name: "dot", Kernel: "var x; x = 1;"},
	}
	for name, w := range cases {
		if err := suite.Register(w); err == nil {
			t.Errorf("%s: Register accepted %+v", name, w)
		}
	}
}

// TestReferencePinned pins the golden interpreter's outputs for the
// registry kernels on a 32-bit machine: these are the values every
// simulator backend is checked against, so they must never drift.
func TestReferencePinned(t *testing.T) {
	d, err := machines.ByName("riscv5")
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[string]struct {
		idx  int
		want uint64
	}{
		"dot":       {0, 157},
		"mulhw":     {0, 157},
		"crc":       {0, 2908},
		"strsearch": {0, 3}, // occurrence count; out[1] is the first index
	}
	for name, p := range pinned {
		w, err := suite.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		_, _, ref, err := suite.Prepare(w, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ref[p.idx] != p.want {
			t.Errorf("%s: ref[%d] = %d, want %d", name, p.idx, ref[p.idx], p.want)
		}
	}
	// strsearch's first-match index rides in out[1].
	w, _ := suite.Get("strsearch")
	_, _, ref, err := suite.Prepare(w, d)
	if err != nil {
		t.Fatal(err)
	}
	if ref[1] != 0 {
		t.Errorf("strsearch first match = %d, want 0", ref[1])
	}
	// isort's reference output is sorted.
	ws, _ := suite.Get("isort")
	_, _, sorted, err := suite.Prepare(ws, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("isort reference not sorted: %v", sorted)
		}
	}
}

// TestSuiteAcrossBackends runs every registered workload on every zoo
// machine under all three xsim backends, demanding either a clean
// Unsupported classification or a reference-verified run. This is the
// per-kernel regression matrix of the suite registry.
func TestSuiteAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload × machine × backend matrix is not -short")
	}
	verified := 0
	for _, backend := range xsim.Backends() {
		for _, w := range suite.All(suite.Filter{}) {
			for _, m := range machines.ZooNames() {
				if w.Machine != "" && w.Machine != m {
					continue // asm workload pinned to one machine
				}
				res, err := suite.Run(w, m, suite.Options{Backend: backend})
				if err != nil {
					var u *suite.Unsupported
					if errors.As(err, &u) {
						continue // a clean can't-target classification
					}
					t.Errorf("%s on %s (%s): %v", w.Name, m, backend, err)
					continue
				}
				if res.Out == nil || len(res.Out) != len(res.Ref) {
					t.Errorf("%s on %s (%s): malformed result", w.Name, m, backend)
				}
				verified++
			}
		}
	}
	// 37 supported pairs × 3 backends as of the registry's seeding; the
	// floor only guards against the matrix silently collapsing.
	if verified < 90 {
		t.Errorf("only %d verified runs across backends, want >= 90", verified)
	}
}

// TestUnsupportedClassification pins the pairs the toolchain cannot target
// and the error type that reports them.
func TestUnsupportedClassification(t *testing.T) {
	for _, c := range []struct{ workload, machine string }{
		{"crc", "toy"},    // no shift or xor
		{"crc", "risc32"}, // register-only shifts mask their amount operand
		{"mulhw", "spam"}, // mul targets ACC, not the register file
	} {
		_, err := suite.Run(mustGet(t, c.workload), c.machine, suite.Options{})
		var u *suite.Unsupported
		if !errors.As(err, &u) {
			t.Errorf("%s on %s: err = %v, want Unsupported", c.workload, c.machine, err)
		}
	}
	// A workload pinned to one machine must refuse to run elsewhere.
	if _, err := suite.Run(mustGet(t, "fir16.spam"), "toy", suite.Options{}); err == nil {
		t.Error("fir16.spam ran on toy")
	}
}

func mustGet(t *testing.T, name string) *suite.Workload {
	t.Helper()
	w, err := suite.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestKernelFilesInSync keeps examples/kernels/<name>.k bit-identical to
// the registered KernelSources: the files are the user-facing form of the
// suite kernels (kcc/explore take -k paths), the registry is the compiled-in
// form, and they must not drift apart.
func TestKernelFilesInSync(t *testing.T) {
	for name, src := range suite.KernelSources {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "kernels", name+".k"))
		if err != nil {
			t.Errorf("%s: %v (regenerate from suite.KernelSources)", name, err)
			continue
		}
		if string(b) != src {
			t.Errorf("examples/kernels/%s.k differs from suite.KernelSources[%q]", name, name)
		}
	}
}
