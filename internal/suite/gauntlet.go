package suite

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/cosim"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/randmachine"
	"repro/internal/tech"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// The differential fuzz gauntlet: each trial generates a random compilable
// machine (randmachine ForCompiler, optionally timing-perturbed), compiles
// a registry kernel for it, and runs the program through every layer of the
// generated-tool pipeline — the golden kernel interpreter, the three xsim
// backends, and the synthesized Verilog model — demanding bit-identical
// architectural results. Any disagreement is a Divergence carrying the
// trial's seed, and RunTrial(seed) reproduces the whole trial from that
// seed alone: the report prints everything needed to replay a failure on
// another machine. With a fixed base seed the entire report (JSON included)
// is byte-identical across runs — the nightly CI job relies on that to diff
// reruns.

// GauntletOptions configures a gauntlet run.
type GauntletOptions struct {
	// N is the trial count (default 10).
	N int
	// Seed is the base seed; per-trial seeds derive from it by splitmix64.
	Seed int64
	// NoCosim skips the synthesized-Verilog leg (the slowest one).
	NoCosim bool
	// MaxCycles bounds the Verilog model per trial (default 200000 — the
	// hardware model retires one instruction per tick, so this is an
	// instruction bound; the seeded kernels need at most a few thousand).
	MaxCycles uint64
	// MaxPerturb bounds the random timing/depth perturbations applied to
	// each generated machine (default 2; negative disables).
	MaxPerturb int
}

func (o *GauntletOptions) defaults() {
	if o.N <= 0 {
		o.N = 10
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 200_000
	}
	if o.MaxPerturb == 0 {
		o.MaxPerturb = 2
	}
}

// Divergence is one cross-model disagreement, replayable from Seed.
type Divergence struct {
	Trial  int    `json:"trial"`
	Seed   int64  `json:"seed"`
	Kernel string `json:"kernel"`
	// Leg names the comparison that disagreed: "golden" (interp vs the
	// kernel interpreter), "compiled" / "aot" (vs interp), "synth"
	// (hardware generation failed), "cosim" (Verilog vs interp).
	Leg    string `json:"leg"`
	Detail string `json:"detail"`
}

// Trial is one gauntlet trial's deterministic record.
type Trial struct {
	Trial  int    `json:"trial"`
	Seed   int64  `json:"seed"`
	Kernel string `json:"kernel"`

	WordWidth     int      `json:"word_width"`
	RegWidth      int      `json:"reg_width"`
	UseNT         bool     `json:"use_nt"`
	ALUOps        []string `json:"alu_ops"`
	Perturbations []string `json:"perturbations,omitempty"`

	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	AOTUsed      string `json:"aot_used"`

	Divergences []Divergence `json:"divergences,omitempty"`
	// Err records an infrastructure failure (generation, compilation, a
	// faulting run) — not a divergence, but never acceptable either.
	Err string `json:"err,omitempty"`
}

// GauntletReport is a full gauntlet run.
type GauntletReport struct {
	N           int     `json:"n"`
	Seed        int64   `json:"seed"`
	Cosim       bool    `json:"cosim"`
	Trials      []Trial `json:"trials"`
	Divergences int     `json:"divergences"`
	Errors      int     `json:"errors"`
}

// Clean reports whether the run saw no divergences and no errors.
func (r *GauntletReport) Clean() bool { return r.Divergences == 0 && r.Errors == 0 }

// TrialSeed derives trial i's seed from the base seed (splitmix64), so any
// single trial can be replayed without rerunning its predecessors.
func TrialSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// RunGauntlet runs N trials and aggregates the report. Trials run
// sequentially: determinism (byte-identical reruns) is the point of the
// exercise, and the aot leg already parallelizes its builds internally.
func RunGauntlet(o GauntletOptions) *GauntletReport {
	o.defaults()
	r := &GauntletReport{N: o.N, Seed: o.Seed, Cosim: !o.NoCosim}
	for i := 0; i < o.N; i++ {
		tr := RunTrial(i, TrialSeed(o.Seed, i), o)
		r.Trials = append(r.Trials, tr)
		r.Divergences += len(tr.Divergences)
		if tr.Err != "" {
			r.Errors++
		}
	}
	return r
}

// RunTrial runs one gauntlet trial from its seed — the replay entry point
// for a printed divergence.
func RunTrial(trial int, seed int64, o GauntletOptions) Trial {
	o.defaults()
	tr := Trial{Trial: trial, Seed: seed}
	rnd := rand.New(rand.NewSource(seed))

	m := randmachine.Generate(rnd, randmachine.Config{ForCompiler: true})
	tr.WordWidth, tr.RegWidth, tr.UseNT, tr.ALUOps = m.WordWidth, m.RegWidth, m.UseNT, m.ALUOps

	names := PortableNames()
	tr.Kernel = names[rnd.Intn(len(names))]

	src := m.Source
	if o.MaxPerturb > 0 {
		if n := rnd.Intn(o.MaxPerturb + 1); n > 0 {
			var err error
			src, tr.Perturbations, err = randmachine.Perturb(rnd, src, n)
			if err != nil {
				tr.Err = fmt.Sprintf("perturb: %v", err)
				return tr
			}
		}
	}
	d, err := isdl.Parse(src)
	if err != nil {
		tr.Err = fmt.Sprintf("parse generated machine: %v", err)
		return tr
	}

	w, err := Get(tr.Kernel)
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	prog, out, ref, err := Prepare(w, d)
	if err != nil {
		tr.Err = fmt.Sprintf("prepare: %v", err)
		return tr
	}

	diverge := func(leg, detail string) {
		tr.Divergences = append(tr.Divergences, Divergence{
			Trial: trial, Seed: seed, Kernel: tr.Kernel, Leg: leg, Detail: detail,
		})
	}

	// Reference leg: the interp backend, compared against the golden
	// kernel interpreter's output region.
	interp, _, err := xsim.NewEngine(d, xsim.BackendInterp)
	if err != nil {
		tr.Err = err.Error()
		return tr
	}
	defer interp.Close()
	if err := runEngine(interp, prog); err != nil {
		tr.Err = fmt.Sprintf("interp: %v", err)
		return tr
	}
	tr.Cycles = interp.Stats().Cycles
	tr.Instructions = interp.Stats().Instructions
	got, err := extractRegion(interp, d, out)
	if err != nil {
		tr.Err = fmt.Sprintf("interp: %v", err)
		return tr
	}
	if err := compareOutputs(got, ref); err != nil {
		diverge("golden", err.Error())
	}
	want := interp.Snapshot()
	wantStats := interp.Stats()

	// xsim ladder legs: compiled and aot must match interp bit for bit.
	for _, b := range []xsim.Backend{xsim.BackendCompiled, xsim.BackendAOT} {
		eng, info, err := xsim.NewEngine(d, b)
		if err != nil {
			tr.Err = err.Error()
			return tr
		}
		if b == xsim.BackendAOT {
			tr.AOTUsed = string(info.Used)
		}
		if info.Used == xsim.BackendCompiled && b == xsim.BackendAOT {
			// Toolchain fallback: this leg would repeat "compiled".
			eng.Close()
			continue
		}
		func() {
			defer eng.Close()
			if err := runEngine(eng, prog); err != nil {
				diverge(string(b), err.Error())
				return
			}
			if d := diffStats(wantStats, eng.Stats()); d != "" {
				diverge(string(b), d)
			}
			if d := diffSnapshots(want, eng.Snapshot()); d != "" {
				diverge(string(b), d)
			}
		}()
	}

	// Hardware leg: synthesize, then run the event-driven Verilog model to
	// halt and demand the same final architectural state.
	if !o.NoCosim {
		if err := cosimLeg(d, prog, want, o.MaxCycles); err != nil {
			leg := "cosim"
			if strings.HasPrefix(err.Error(), "synthesize:") {
				leg = "synth"
			}
			diverge(leg, err.Error())
		}
	}
	return tr
}

func runEngine(eng xsim.Engine, prog *asm.Program) error {
	if err := eng.Load(prog); err != nil {
		return fmt.Errorf("load: %w", err)
	}
	if err := eng.Run(DefaultLimit); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if err := eng.Err(); err != nil {
		return fmt.Errorf("faulted: %w", err)
	}
	if !eng.Halted() {
		return fmt.Errorf("did not halt within %d instructions", int64(DefaultLimit))
	}
	return nil
}

// diffStats reports the first architectural-statistics disagreement, or "".
func diffStats(a, b *xsim.Stats) string {
	type f struct {
		name string
		a, b uint64
	}
	for _, x := range []f{
		{"cycles", a.Cycles, b.Cycles},
		{"instructions", a.Instructions, b.Instructions},
		{"data stalls", a.DataStalls, b.DataStalls},
		{"struct stalls", a.StructStalls, b.StructStalls},
		{"reads", a.Reads, b.Reads},
		{"writes", a.Writes, b.Writes},
	} {
		if x.a != x.b {
			return fmt.Sprintf("stats: %s %d vs %d (interp)", x.name, x.b, x.a)
		}
	}
	if len(a.OpCounts) != len(b.OpCounts) {
		return fmt.Sprintf("stats: %d op counters vs %d (interp)", len(b.OpCounts), len(a.OpCounts))
	}
	for op, n := range a.OpCounts {
		if b.OpCounts[op] != n {
			return fmt.Sprintf("stats: op %s count %d vs %d (interp)", op, b.OpCounts[op], n)
		}
	}
	return ""
}

// diffSnapshots reports the first storage disagreement, or "".
func diffSnapshots(a, b map[string][]bitvec.Value) string {
	if len(a) != len(b) {
		return fmt.Sprintf("snapshot: %d storages vs %d (interp)", len(b), len(a))
	}
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		av, bv := a[n], b[n]
		if len(av) != len(bv) {
			return fmt.Sprintf("snapshot: %s depth %d vs %d (interp)", n, len(bv), len(av))
		}
		for i := range av {
			if !av[i].Eq(bv[i]) {
				return fmt.Sprintf("snapshot: %s[%d] = %s vs %s (interp)", n, i, bv[i], av[i])
			}
		}
	}
	return ""
}

// cosimLeg synthesizes the machine, runs the program on the event-driven
// Verilog model through internal/cosim, and compares the final
// architectural state against the interp snapshot (IMEM excluded,
// mirroring the hgen co-simulation tests; the hardware model retires one
// instruction per tick, so cycle counts are not comparable to the ILS's
// stall-aware count).
//
// The hardware runs in lockstep with a fresh reference interpreter: one
// clock tick per interpreter step, stopping when the interpreter halts.
// Polling the hardware's own halted net instead would be wrong on machines
// with a pipelined halt (Perturb can deepen it): the datapath is not gated
// once halted, so every extra fetch past the halt executes a ghost
// instruction, and each harness observes the halt a different number of
// cycles after it issues. Lockstep makes both models execute exactly the
// same instruction sequence, so every storage — PC included — must match.
func cosimLeg(d *isdl.Description, prog *asm.Program, want map[string][]bitvec.Value, maxCycles uint64) error {
	r, err := hgen.Synthesize(d, tech.LSI10K(), hgen.DefaultOptions())
	if err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	mod, err := verilog.Parse(r.VerilogText)
	if err != nil {
		return fmt.Errorf("synthesize: parse generated Verilog: %w", err)
	}
	ils := xsim.New(d)
	ils.CompiledCore = false
	if err := ils.Load(prog); err != nil {
		return fmt.Errorf("hw run: load: %w", err)
	}
	var hw *verilog.Sim
	pool := &cosim.Pool{Workers: 1}
	if _, err := pool.Run("gauntlet", 1, func(_ int, l *cosim.Lane) error {
		if err := l.Setup(func() error {
			var err error
			if hw, err = verilog.NewSim(mod); err != nil {
				return err
			}
			return loadHW(hw, prog)
		}); err != nil {
			return err
		}
		var steps uint64
		err := l.Sim(func() error {
			for !ils.Halted() {
				if steps >= maxCycles {
					return fmt.Errorf("hardware model did not halt within %d cycles", maxCycles)
				}
				if err := ils.Step(); err != nil {
					return fmt.Errorf("lockstep reference faulted: %w", err)
				}
				if err := hw.Tick("clk"); err != nil {
					return err
				}
				steps++
			}
			return nil
		})
		l.AddCycles(steps)
		l.AddEvents(hw.Events())
		return err
	}); err != nil {
		return fmt.Errorf("hw run: %w", err)
	}
	hv, err := hw.Get("halted")
	if err != nil {
		return err
	}
	if hv.IsZero() {
		return fmt.Errorf("hardware model did not assert halted at the reference halt point")
	}
	// The lockstep reference must agree with the interp-leg snapshot — it
	// is the same interpreter run the same way; drift here would mean the
	// harness, not the hardware, diverged.
	if drift := diffSnapshots(want, ils.Snapshot()); drift != "" {
		return fmt.Errorf("lockstep reference drifted from interp leg: %s", drift)
	}
	for _, st := range d.Storage {
		if st.Kind == isdl.StInstructionMemory {
			continue
		}
		for i := 0; i < depthOf(st); i++ {
			var got bitvec.Value
			var err error
			if st.Kind.Addressed() {
				got, err = hw.GetMem("s_"+st.Name, i)
			} else {
				got, err = hw.Get("s_" + st.Name)
			}
			if err != nil {
				return err
			}
			if w := want[st.Name][i]; !got.Eq(w) {
				return fmt.Errorf("%s[%d] = %s (hw) vs %s (interp)", st.Name, i, got, w)
			}
		}
	}
	return nil
}

func depthOf(st *isdl.Storage) int {
	if st.Kind.Addressed() {
		return st.Depth
	}
	return 1
}

// loadHW loads the assembled program image and data initializers into the
// hardware model's memories (the suite-local twin of
// experiments.LoadProgram, which cannot be imported without a cycle).
func loadHW(hw *verilog.Sim, p *asm.Program) error {
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", p.Base+i, w); err != nil {
			return err
		}
	}
	for _, di := range p.Data {
		for i, v := range di.Values {
			if err := hw.SetMem("s_"+di.Storage, di.Base+i, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Render formats the report as a fixed-width table plus a divergence list
// (deterministic: rerunning with the same seed reproduces it byte for
// byte).
func (r *GauntletReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "differential gauntlet: %d trials, seed %d, cosim %v\n\n", r.N, r.Seed, r.Cosim)
	fmt.Fprintf(&sb, "%5s  %20s  %-9s  %3s/%2s  %3s  %8s  %8s  %-8s  %s\n",
		"trial", "seed", "kernel", "w", "rw", "nt", "cycles", "instrs", "aot", "status")
	for _, t := range r.Trials {
		status := "ok"
		if t.Err != "" {
			status = "ERROR: " + t.Err
		} else if len(t.Divergences) > 0 {
			status = fmt.Sprintf("DIVERGED (%d)", len(t.Divergences))
		}
		nt := "-"
		if t.UseNT {
			nt = "nt"
		}
		fmt.Fprintf(&sb, "%5d  %20d  %-9s  %3d/%2d  %3s  %8d  %8d  %-8s  %s\n",
			t.Trial, t.Seed, t.Kernel, t.WordWidth, t.RegWidth, nt,
			t.Cycles, t.Instructions, t.AOTUsed, status)
	}
	sb.WriteString("\n")
	if r.Clean() {
		fmt.Fprintf(&sb, "all %d trials agree across interp/compiled/aot%s\n",
			r.N, map[bool]string{true: "/cosim", false: ""}[r.Cosim])
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d divergence(s), %d error(s)\n", r.Divergences, r.Errors)
	for _, t := range r.Trials {
		for _, dv := range t.Divergences {
			fmt.Fprintf(&sb, "  trial %d leg %s kernel %s: %s\n    replay: paper -gauntlet -gauntlet-n 1 -seed-replay %d\n",
				dv.Trial, dv.Leg, dv.Kernel, dv.Detail, dv.Seed)
		}
	}
	return sb.String()
}
