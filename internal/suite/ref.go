package suite

import (
	"fmt"

	"repro/internal/compiler"
)

// The golden kernel interpreter: executes a kernel-language program with
// exactly the arithmetic the compiled code performs — scalars masked to the
// target register width, array elements truncated to the data memory width,
// relationals decided by the sign bit of the masked difference (the
// compiler's sign-of-difference lowering), for loops inclusive with a +1
// step. Because both sides wrap identically, reference checking stays exact
// even when a kernel's intermediate values overflow a narrow machine (toy's
// 8-bit register file, random 12-bit machines): a divergence always means a
// tool bug, never an interpreter/hardware width mismatch.

// refSteps bounds interpreted statements so a buggy kernel cannot hang the
// suite.
const refSteps = 10_000_000

type refInterp struct {
	rfMask   uint64
	rfSign   uint64
	dataMask uint64
	vars     map[string]uint64
	arrays   map[string][]uint64
	steps    int
}

// Reference interprets the loaded kernel and returns the contents of the
// named output array (values truncated to the data memory width).
func Reference(lk *LoadedKernel, outArray string) ([]uint64, error) {
	if lk.RFWidth <= 0 || lk.RFWidth > 64 || lk.DataWidth <= 0 || lk.DataWidth > 64 {
		return nil, fmt.Errorf("suite: reference: unsupported widths rf=%d data=%d", lk.RFWidth, lk.DataWidth)
	}
	in := &refInterp{
		rfMask:   mask(lk.RFWidth),
		rfSign:   1 << uint(lk.RFWidth-1),
		dataMask: mask(lk.DataWidth),
		vars:     map[string]uint64{},
		arrays:   map[string][]uint64{},
	}
	for _, v := range lk.Prog.Vars {
		in.vars[v.Name] = uint64(v.Init) & in.rfMask
	}
	for _, a := range lk.Prog.Arrays {
		vals := make([]uint64, a.Size)
		for i, v := range a.Init {
			vals[i] = uint64(v) & in.dataMask
		}
		in.arrays[a.Name] = vals
	}
	if err := in.block(lk.Prog.Body); err != nil {
		return nil, err
	}
	out, ok := in.arrays[outArray]
	if !ok {
		return nil, fmt.Errorf("suite: reference: no array %q", outArray)
	}
	res := make([]uint64, len(out))
	copy(res, out)
	return res, nil
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(w)) - 1
}

func (in *refInterp) block(stmts []compiler.Stmt) error {
	for _, s := range stmts {
		if err := in.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (in *refInterp) tick() error {
	in.steps++
	if in.steps > refSteps {
		return fmt.Errorf("suite: reference: kernel exceeded %d steps", refSteps)
	}
	return nil
}

func (in *refInterp) stmt(s compiler.Stmt) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch st := s.(type) {
	case *compiler.AssignStmt:
		v, err := in.eval(st.Value)
		if err != nil {
			return err
		}
		if st.Index == nil {
			if _, ok := in.vars[st.Name]; !ok {
				return fmt.Errorf("suite: reference: undeclared variable %s", st.Name)
			}
			in.vars[st.Name] = v
			return nil
		}
		idx, err := in.eval(st.Index)
		if err != nil {
			return err
		}
		arr, ok := in.arrays[st.Name]
		if !ok {
			return fmt.Errorf("suite: reference: undeclared array %s", st.Name)
		}
		if idx >= uint64(len(arr)) {
			return fmt.Errorf("suite: reference: %s[%d] out of range (size %d)", st.Name, idx, len(arr))
		}
		arr[idx] = v & in.dataMask
		return nil
	case *compiler.IfStmt:
		c, err := in.cond(st.Cond)
		if err != nil {
			return err
		}
		if c {
			return in.block(st.Then)
		}
		return in.block(st.Else)
	case *compiler.WhileStmt:
		for {
			c, err := in.cond(st.Cond)
			if err != nil {
				return err
			}
			if !c {
				return nil
			}
			if err := in.block(st.Body); err != nil {
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *compiler.ForStmt:
		// Mirror the compiler's desugaring: init, loop while var <= to
		// (sign-of-difference), +1 step at register width.
		from, err := in.eval(st.From)
		if err != nil {
			return err
		}
		if _, ok := in.vars[st.Var]; !ok {
			return fmt.Errorf("suite: reference: undeclared loop variable %s", st.Var)
		}
		in.vars[st.Var] = from
		for {
			to, err := in.eval(st.To)
			if err != nil {
				return err
			}
			if in.signOfDiff(to, in.vars[st.Var]) { // to < var: done
				return nil
			}
			if err := in.block(st.Body); err != nil {
				return err
			}
			in.vars[st.Var] = (in.vars[st.Var] + 1) & in.rfMask
			if err := in.tick(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("suite: reference: unknown statement %T", s)
	}
}

// signOfDiff reports whether a-b is negative at register width — the
// compiler's primitive for every ordered comparison.
func (in *refInterp) signOfDiff(a, b uint64) bool {
	return (a-b)&in.rfSign != 0
}

func (in *refInterp) cond(c compiler.Cond) (bool, error) {
	l, err := in.eval(c.L)
	if err != nil {
		return false, err
	}
	r, err := in.eval(c.R)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case "==":
		return (l-r)&in.rfMask == 0, nil
	case "!=":
		return (l-r)&in.rfMask != 0, nil
	case "<":
		return in.signOfDiff(l, r), nil
	case "<=":
		return !in.signOfDiff(r, l), nil
	case ">":
		return in.signOfDiff(r, l), nil
	case ">=":
		return !in.signOfDiff(l, r), nil
	default:
		return false, fmt.Errorf("suite: reference: unknown comparison %q", c.Op)
	}
}

func (in *refInterp) eval(e compiler.Expr) (uint64, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch x := e.(type) {
	case *compiler.Num:
		return uint64(x.V) & in.rfMask, nil
	case *compiler.Var:
		v, ok := in.vars[x.Name]
		if !ok {
			return 0, fmt.Errorf("suite: reference: undeclared variable %s", x.Name)
		}
		return v, nil
	case *compiler.Elem:
		idx, err := in.eval(x.Idx)
		if err != nil {
			return 0, err
		}
		arr, ok := in.arrays[x.Name]
		if !ok {
			return 0, fmt.Errorf("suite: reference: undeclared array %s", x.Name)
		}
		if idx >= uint64(len(arr)) {
			return 0, fmt.Errorf("suite: reference: %s[%d] out of range (size %d)", x.Name, idx, len(arr))
		}
		return arr[idx] & in.rfMask, nil
	case *compiler.Bin:
		l, err := in.eval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return (l + r) & in.rfMask, nil
		case "-":
			return (l - r) & in.rfMask, nil
		case "*":
			return (l * r) & in.rfMask, nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "<<":
			if r >= 64 {
				return 0, nil
			}
			return (l << r) & in.rfMask, nil
		case ">>":
			if r >= 64 {
				return 0, nil
			}
			return l >> r, nil
		default:
			return 0, fmt.Errorf("suite: reference: unknown operator %q", x.Op)
		}
	default:
		return 0, fmt.Errorf("suite: reference: unknown expression %T", e)
	}
}
