// Package suite is the workload registry behind the paper's evaluation
// (ROADMAP item 4): named kernels with per-workload reference outputs,
// runnable on every machine in the zoo (internal/machines.Zoo) and on every
// xsim backend, plus the differential fuzz gauntlet that cross-checks the
// whole generated-tool pipeline on random machines.
//
// A workload is either portable kernel-language source (compiled by the
// retargetable compiler for any classifiable machine; arrays live in the
// DATA placeholder storage that LoadKernel resolves per machine) or
// machine-specific assembly (the hand-scheduled SPAM/SPAM2 DSP kernels the
// Table 1 measurements use). Every workload carries the knowledge needed to
// verify its result: an output region and a reference, either an explicit
// expected vector or the golden kernel interpreter (ref.go).
//
//	suite.Register(suite.Workload{Name: "dot", Kernel: src, Tags: []string{"dsp"}})
//	res, err := suite.RunOn(w, "riscv5", suite.Options{Backend: xsim.BackendAOT})
//
// The experiments layer consumes the registry through RunSuite; cmd/paper
// renders it with -suite and fuzzes it with -gauntlet.
package suite

import (
	"fmt"
	"sort"
	"sync"
)

// Out locates a workload's output region.
type Out struct {
	// Array names an output array of a kernel-language workload; LoadKernel
	// resolves it to a storage region. Empty for asm workloads.
	Array string
	// Storage, Base and N locate the region directly (asm workloads; a
	// register-file output like SPAM's R8 is Storage "RF").
	Storage string
	Base    int
	N       int
}

// Workload is one registered benchmark.
type Workload struct {
	// Name is the unique registry key.
	Name string
	// Machine pins the workload to one zoo machine (asm workloads). Empty
	// means portable kernel-language source, runnable on any machine the
	// retargetable compiler can target.
	Machine string
	// Kernel is kernel-language source with arrays declared in the DATA
	// placeholder storage (resolved per machine by LoadKernel).
	Kernel string
	// Asm generates machine-specific assembly text (the alternative to
	// Kernel; requires Machine).
	Asm func() string
	// Out is the output region reference checking reads. For kernel
	// workloads, Out.Array (default "out") names the output array.
	Out Out
	// RefOutput returns the expected output words, already truncated to
	// the output storage's width. Nil for kernel workloads: the golden
	// kernel interpreter computes the reference at the target's width.
	RefOutput func() []uint64
	// Tags classify the workload for Filter ("dsp", "sort", "asm", ...).
	Tags []string
}

// HasTag reports whether the workload carries the tag.
func (w *Workload) HasTag(tag string) bool {
	for _, t := range w.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Filter selects registered workloads.
type Filter struct {
	// Name keeps only the named workload (empty: all).
	Name string
	// Tag keeps only workloads carrying the tag (empty: all).
	Tag string
}

// Match reports whether the workload passes the filter.
func (f Filter) Match(w *Workload) bool {
	if f.Name != "" && w.Name != f.Name {
		return false
	}
	if f.Tag != "" && !w.HasTag(f.Tag) {
		return false
	}
	return true
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Workload{}
	regOrder []string
)

// Register adds a workload to the registry. It returns an error for a
// duplicate name or an inconsistent definition (exactly one of Kernel and
// Asm; Asm requires Machine and an explicit Out and RefOutput).
func Register(w Workload) error {
	if w.Name == "" {
		return fmt.Errorf("suite: workload needs a name")
	}
	if (w.Kernel == "") == (w.Asm == nil) {
		return fmt.Errorf("suite: workload %s: exactly one of Kernel and Asm", w.Name)
	}
	if w.Asm != nil {
		if w.Machine == "" {
			return fmt.Errorf("suite: workload %s: Asm requires Machine", w.Name)
		}
		if w.Out.Storage == "" || w.Out.N == 0 {
			return fmt.Errorf("suite: workload %s: Asm requires an explicit Out region", w.Name)
		}
		if w.RefOutput == nil {
			return fmt.Errorf("suite: workload %s: Asm requires RefOutput", w.Name)
		}
	}
	if w.Kernel != "" && w.Out.Array == "" {
		w.Out.Array = "out"
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[w.Name]; dup {
		return fmt.Errorf("suite: duplicate workload %s", w.Name)
	}
	registry[w.Name] = &w
	regOrder = append(regOrder, w.Name)
	return nil
}

// MustRegister is Register that panics on error (for init-time seeding).
func MustRegister(w Workload) {
	if err := Register(w); err != nil {
		panic(err)
	}
}

// Get returns the named workload.
func Get(name string) (*Workload, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	if !ok {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("suite: unknown workload %q (have %v)", name, names)
	}
	return w, nil
}

// All returns the registered workloads passing the filter, in registration
// order.
func All(f Filter) []*Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []*Workload
	for _, name := range regOrder {
		if w := registry[name]; f.Match(w) {
			out = append(out, w)
		}
	}
	return out
}

// Names returns the names of the workloads passing the filter, in
// registration order.
func Names(f Filter) []string {
	ws := All(f)
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	return names
}
