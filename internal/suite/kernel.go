package suite

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/compiler"
	"repro/internal/isdl"
)

// DataPlaceholder is the storage name portable kernels declare their arrays
// in. LoadKernel resolves it to the machine's first data memory the
// classified target can both load from and store to — DMEM on toy, risc32
// and riscv5, DMX on SPAM, DM on SPAM2 — so one kernel source runs on every
// machine in the zoo without caring what its memory is called.
const DataPlaceholder = "DATA"

// LoadedKernel is a kernel-language workload compiled and assembled for one
// machine.
type LoadedKernel struct {
	// Prog is the parsed kernel with DATA resolved to DataMem.
	Prog *compiler.Program
	// DataMem is the storage name DATA resolved to, and DataWidth its word
	// width (the width stored array elements are truncated to).
	DataMem   string
	DataWidth int
	// RFWidth is the register width scalars are computed at.
	RFWidth int
	// Asm is the compiled assembly text, Program its assembled form.
	Asm     string
	Program *asm.Program
}

// Unsupported marks a workload/machine combination the toolchain cannot
// target — a compile-time incompatibility (missing operation, no data
// memory, array too large), as opposed to a runtime failure.
type Unsupported struct {
	Workload string
	Machine  string
	Err      error
}

func (u *Unsupported) Error() string {
	return fmt.Sprintf("suite: %s unsupported on %s: %v", u.Workload, u.Machine, u.Err)
}

func (u *Unsupported) Unwrap() error { return u.Err }

// DataMemoryFor returns the data memory DATA resolves to on the machine.
func DataMemoryFor(d *isdl.Description) (*isdl.Storage, error) {
	t, err := compiler.NewTarget(d)
	if err != nil {
		return nil, err
	}
	for _, st := range d.Storage {
		if st.Kind == isdl.StDataMemory && len(t.Loads[st.Name]) > 0 && len(t.Stores[st.Name]) > 0 {
			return st, nil
		}
	}
	return nil, fmt.Errorf("machine %s has no data memory with both load and store", d.Name)
}

// LoadKernel parses portable kernel-language source, resolves the DATA
// placeholder storage to the machine's data memory, and compiles and
// assembles the result. It is the single kernel-loading path behind the
// registry, the gauntlet, and the examples/kernels files. Incompatibilities
// (no classifiable target, missing operations such as shifts on toy, arrays
// deeper than the data memory) come back as *Unsupported.
func LoadKernel(d *isdl.Description, src string) (*LoadedKernel, error) {
	prog, err := compiler.ParseKernel(src)
	if err != nil {
		return nil, fmt.Errorf("suite: parse kernel: %w", err)
	}
	t, err := compiler.NewTarget(d)
	if err != nil {
		return nil, &Unsupported{Machine: d.Name, Err: err}
	}
	mem, err := DataMemoryFor(d)
	if err != nil {
		return nil, &Unsupported{Machine: d.Name, Err: err}
	}
	for _, a := range prog.Arrays {
		if a.Storage == DataPlaceholder {
			a.Storage = mem.Name
		}
	}
	text, err := compiler.CompileProgram(d, prog, compiler.Options{})
	if err != nil {
		return nil, &Unsupported{Machine: d.Name, Err: err}
	}
	p, err := asm.Assemble(d, text)
	if err != nil {
		// The compiler emitted something the assembler rejects: a real
		// toolchain bug, not an incompatibility — surface it loudly.
		return nil, fmt.Errorf("suite: assemble compiled kernel for %s: %w", d.Name, err)
	}
	return &LoadedKernel{
		Prog:      prog,
		DataMem:   mem.Name,
		DataWidth: mem.Width,
		RFWidth:   t.RF.Width,
		Asm:       text,
		Program:   p,
	}, nil
}

// OutRegion resolves the workload's output region for a loaded kernel (or,
// for asm workloads, returns the explicit region).
func (w *Workload) OutRegion(lk *LoadedKernel) (Out, error) {
	if w.Asm != nil {
		return w.Out, nil
	}
	name := w.Out.Array
	if name == "" {
		name = "out"
	}
	for _, a := range lk.Prog.Arrays {
		if a.Name == name {
			return Out{Array: name, Storage: a.Storage, Base: a.Base, N: a.Size}, nil
		}
	}
	return Out{}, fmt.Errorf("suite: workload %s: no output array %q", w.Name, name)
}
