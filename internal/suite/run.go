package suite

import (
	"fmt"
	"time"

	"repro/internal/asm"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// Options configures one workload run.
type Options struct {
	// Backend selects the xsim backend (empty: compiled).
	Backend xsim.Backend
	// Limit bounds executed instructions (0: DefaultLimit).
	Limit int64
}

// DefaultLimit is the per-run instruction bound: generous for every seeded
// kernel (the largest needs a few thousand instructions) while keeping a
// runaway program from hanging the suite.
const DefaultLimit = 2_000_000

// Result is one verified workload run.
type Result struct {
	Workload string   `json:"workload"`
	Machine  string   `json:"machine"`
	Tags     []string `json:"tags,omitempty"`

	Backend        xsim.Backend `json:"backend"`
	BackendUsed    xsim.Backend `json:"backend_used"`
	FallbackReason string       `json:"fallback_reason,omitempty"`

	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	DataStalls   uint64 `json:"data_stalls"`
	StructStalls uint64 `json:"struct_stalls"`

	// Out and Ref are the observed and expected output regions (always
	// equal when the run returns without error — a mismatch is an error).
	Out []uint64 `json:"out"`
	Ref []uint64 `json:"ref"`

	Elapsed time.Duration `json:"elapsed_ns"`
	MIPS    float64       `json:"mips"`
}

// Run compiles (or generates), assembles, simulates and reference-checks
// the workload on its pinned machine (asm workloads) or on the named zoo
// machine. Incompatible combinations return *Unsupported; any other error —
// including a reference mismatch — is a real failure.
func Run(w *Workload, machine string, o Options) (*Result, error) {
	if w.Machine != "" && machine != "" && machine != w.Machine {
		return nil, &Unsupported{Workload: w.Name, Machine: machine,
			Err: fmt.Errorf("asm workload pinned to machine %s", w.Machine)}
	}
	if machine == "" {
		machine = w.Machine
	}
	if machine == "" {
		return nil, fmt.Errorf("suite: workload %s: no machine named", w.Name)
	}
	d, err := machines.ByName(machine)
	if err != nil {
		return nil, err
	}
	return RunOn(w, d, machine, o)
}

// RunOn is Run against an already-parsed description (the gauntlet's entry
// point, where the machine is randomly generated rather than a zoo member).
func RunOn(w *Workload, d *isdl.Description, machine string, o Options) (*Result, error) {
	prog, out, ref, err := Prepare(w, d)
	if err != nil {
		return nil, err
	}

	limit := o.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	eng, info, err := xsim.NewEngine(d, o.Backend)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	if err := eng.Load(prog); err != nil {
		return nil, fmt.Errorf("suite: %s on %s: load: %w", w.Name, machine, err)
	}
	start := time.Now()
	if err := eng.Run(limit); err != nil {
		return nil, fmt.Errorf("suite: %s on %s: run: %w", w.Name, machine, err)
	}
	elapsed := time.Since(start)
	if err := eng.Err(); err != nil {
		return nil, fmt.Errorf("suite: %s on %s: faulted: %w", w.Name, machine, err)
	}
	if !eng.Halted() {
		return nil, fmt.Errorf("suite: %s on %s: did not halt within %d instructions", w.Name, machine, limit)
	}

	got, err := extractRegion(eng, d, out)
	if err != nil {
		return nil, fmt.Errorf("suite: %s on %s: %w", w.Name, machine, err)
	}
	if err := compareOutputs(got, ref); err != nil {
		return nil, fmt.Errorf("suite: %s on %s: reference mismatch at %s[%d..]: %w",
			w.Name, machine, out.Storage, out.Base, err)
	}

	st := eng.Stats()
	res := &Result{
		Workload:       w.Name,
		Machine:        machine,
		Tags:           w.Tags,
		Backend:        info.Requested,
		BackendUsed:    info.Used,
		FallbackReason: info.FallbackReason,
		Cycles:         st.Cycles,
		Instructions:   st.Instructions,
		DataStalls:     st.DataStalls,
		StructStalls:   st.StructStalls,
		Out:            got,
		Ref:            ref,
		Elapsed:        elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		res.MIPS = float64(st.Instructions) / s / 1e6
	}
	return res, nil
}

// Prepare builds the workload's assembled program, resolved output region
// and reference output for the machine, without running anything — shared
// by Run, the gauntlet (which runs several engines over one program) and
// the benchmarks.
func Prepare(w *Workload, d *isdl.Description) (*asm.Program, Out, []uint64, error) {
	if w.Asm != nil {
		p, err := asm.Assemble(d, w.Asm())
		if err != nil {
			return nil, Out{}, nil, fmt.Errorf("suite: assemble %s: %w", w.Name, err)
		}
		return p, w.Out, w.RefOutput(), nil
	}
	lk, err := LoadKernel(d, w.Kernel)
	if err != nil {
		if u, ok := err.(*Unsupported); ok {
			u.Workload = w.Name
		}
		return nil, Out{}, nil, err
	}
	out, err := w.OutRegion(lk)
	if err != nil {
		return nil, Out{}, nil, err
	}
	var ref []uint64
	if w.RefOutput != nil {
		ref = w.RefOutput()
	} else {
		ref, err = Reference(lk, out.Array)
		if err != nil {
			return nil, Out{}, nil, err
		}
	}
	return lk.Program, out, ref, nil
}

// extractRegion reads the output region from the engine's final state.
func extractRegion(eng xsim.Engine, d *isdl.Description, out Out) ([]uint64, error) {
	snap := eng.Snapshot()
	vals, ok := snap[out.Storage]
	if !ok {
		return nil, fmt.Errorf("no storage %s in snapshot", out.Storage)
	}
	if out.Base+out.N > len(vals) {
		return nil, fmt.Errorf("output region %s[%d..%d] exceeds depth %d",
			out.Storage, out.Base, out.Base+out.N, len(vals))
	}
	st := d.StorageByName[out.Storage]
	if st != nil && st.Width > 64 {
		return nil, fmt.Errorf("output storage %s wider than 64 bits", out.Storage)
	}
	got := make([]uint64, out.N)
	for i := range got {
		got[i] = vals[out.Base+i].Uint64()
	}
	return got, nil
}

func compareOutputs(got, want []uint64) error {
	if len(got) != len(want) {
		return fmt.Errorf("got %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("index %d: got %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
