package suite

import "repro/internal/machines"

// The seeded catalog: eight portable kernel-language workloads plus the
// hand-scheduled SPAM/SPAM2 assembly kernels the paper's Table 1 and
// ablation measurements use. The kernel sources are the canonical copies —
// examples/kernels/*.k mirrors them (a test keeps the two in sync), and the
// portable ones deliberately restrict themselves to +, -, & and relationals
// with software multiply so they compile for every machine in the zoo,
// including toy (no or/xor/shift) and SPAM2 (no multiplier reachable from
// the register file). crc and mulhw opt into richer operations and are
// skipped (reported as unsupported) on machines that lack them.

// KernelSources maps portable workload names to their kernel-language
// source; examples/kernels/<name>.k carries the same text.
var KernelSources = map[string]string{
	"dot":       DotKernel,
	"fir":       FIRKernel,
	"iir":       IIRKernel,
	"matmul":    MatMulKernel,
	"crc":       CRCKernel,
	"isort":     InsertionSortKernel,
	"strsearch": StringSearchKernel,
	"mulhw":     MulHWKernel,
}

// DotKernel: dot product with software multiply (repeated addition).
const DotKernel = `// dot: out[0] = sum_i x[i]*y[i], multiply by repeated addition so the
// kernel stays portable to machines without a multiplier.
var i, t, acc;
array x[8] in DATA at 0 = { 3, 1, 4, 1, 5, 9, 2, 6 };
array y[8] in DATA at 8 = { 2, 7, 1, 8, 2, 8, 1, 8 };
array out[1] in DATA at 16;
acc = 0;
for i = 0 to 7 {
  t = y[i];
  while (t != 0) { acc = acc + x[i]; t = t - 1; }
}
out[0] = acc;
`

// FIRKernel: 4-tap FIR filter over 8 outputs.
const FIRKernel = `// fir: out[i] = sum_k c[k]*x[i+k], 4 taps, software multiply.
var i, k, acc, t;
array x[12] in DATA at 0 = { 1, 3, 2, 5, 4, 7, 6, 9, 8, 2, 4, 6 };
array c[4] in DATA at 12 = { 2, 0, 3, 1 };
array out[8] in DATA at 16;
for i = 0 to 7 {
  acc = 0;
  for k = 0 to 3 {
    t = c[k];
    while (t != 0) { acc = acc + x[i + k]; t = t - 1; }
  }
  out[i] = acc;
}
`

// IIRKernel: first-order IIR section, y[i] = x[i] + 2*y[i-1].
const IIRKernel = `// iir: first-order recursive filter; the feedback term grows until it
// wraps on narrow machines — reference checking wraps identically.
var i, t, acc, prev;
array x[8] in DATA at 0 = { 5, 3, 8, 1, 9, 4, 7, 2 };
array out[8] in DATA at 8;
prev = 0;
for i = 0 to 7 {
  acc = x[i];
  t = 2;
  while (t != 0) { acc = acc + prev; t = t - 1; }
  out[i] = acc;
  prev = acc;
}
`

// MatMulKernel: 3x3 matrix multiply with addition-maintained row bases.
const MatMulKernel = `// matmul: out = a*b for 3x3 matrices. Row bases ai and bk advance by
// addition so no multiply appears in the index arithmetic.
var i, j, k, acc, ai, bk, t;
array a[9] in DATA at 0 = { 1, 2, 3, 4, 5, 6, 7, 8, 9 };
array b[9] in DATA at 9 = { 2, 0, 1, 1, 3, 2, 0, 1, 4 };
array out[9] in DATA at 18;
ai = 0;
for i = 0 to 2 {
  for j = 0 to 2 {
    acc = 0;
    bk = j;
    for k = 0 to 2 {
      t = b[bk];
      while (t != 0) { acc = acc + a[ai + k]; t = t - 1; }
      bk = bk + 3;
    }
    out[ai + j] = acc;
  }
  ai = ai + 3;
}
`

// CRCKernel: bitwise CRC-16 (polynomial 0x1021) over "12345678".
const CRCKernel = `// crc: bitwise CRC-16 with polynomial 0x1021 over the bytes of
// "12345678". Needs >>, ^ and & so it only targets machines with a
// classifiable shift and xor (riscv5, spam; risc32's register shift
// masks its amount operand, which defeats classification).
var i, b, d, crc;
array msg[8] in DATA at 0 = { 49, 50, 51, 52, 53, 54, 55, 56 };
array out[1] in DATA at 8;
crc = 0;
for i = 0 to 7 {
  crc = crc ^ msg[i];
  for b = 0 to 7 {
    d = crc & 1;
    crc = crc >> 1;
    if (d != 0) { crc = crc ^ 4129; }
  }
}
out[0] = crc;
`

// InsertionSortKernel: insertion sort of 10 elements.
const InsertionSortKernel = `// isort: insertion sort; exercises data-dependent relational compares
// and the j-goes-negative inner-loop guard.
var i, j, key, t, go;
array a[10] in DATA at 0 = { 55, 12, 93, 4, 41, 77, 8, 66, 29, 50 };
array out[10] in DATA at 10;
for i = 0 to 9 { out[i] = a[i]; }
for i = 1 to 9 {
  key = out[i];
  j = i - 1;
  go = 1;
  while (go != 0) {
    if (j < 0) { go = 0; } else {
      t = out[j];
      if (t > key) { out[j + 1] = t; j = j - 1; } else { go = 0; }
    }
  }
  out[j + 1] = key;
}
`

// StringSearchKernel: naive pattern search, reporting count and first hit.
const StringSearchKernel = `// strsearch: count occurrences of pat in txt and record the first match
// index (99 when absent).
var i, j, ok, count, first;
array txt[12] in DATA at 0 = { 1, 2, 3, 1, 2, 1, 2, 3, 4, 1, 2, 3 };
array pat[3] in DATA at 12 = { 1, 2, 3 };
array out[2] in DATA at 15;
count = 0;
first = 99;
for i = 0 to 9 {
  ok = 1;
  for j = 0 to 2 {
    if (txt[i + j] != pat[j]) { ok = 0; }
  }
  if (ok != 0) {
    count = count + 1;
    if (first == 99) { first = i; }
  }
}
out[0] = count;
out[1] = first;
`

// MulHWKernel: the dot product again, but through the machine's multiplier.
const MulHWKernel = `// mulhw: dot product via the hardware multiplier — same answer as the
// portable dot kernel, but only machines with an RF-destination multiply
// (toy, riscv5) can run it; on riscv5 it exercises the pipelined
// multiplier's 3-cycle latency.
var i, acc;
array x[8] in DATA at 0 = { 3, 1, 4, 1, 5, 9, 2, 6 };
array y[8] in DATA at 8 = { 2, 7, 1, 8, 2, 8, 1, 8 };
array out[1] in DATA at 16;
acc = 0;
for i = 0 to 7 { acc = acc + x[i] * y[i]; }
out[0] = acc;
`

// PortableNames lists the kernel workloads every compiler-classifiable
// machine can run (only +, -, & and relationals) — the pool the gauntlet
// draws from, since random machines never have shifts or multipliers.
func PortableNames() []string {
	return []string{"dot", "fir", "iir", "matmul", "isort", "strsearch"}
}

const (
	firTaps   = 16
	firNOut   = 48
	dotN      = 32
	vecAddN   = 64
	spamRFDot = 8 // DotSPAM leaves the low accumulator word in R8
)

func widen[T uint16 | uint32](vals []T) []uint64 {
	out := make([]uint64, len(vals))
	for i, v := range vals {
		out[i] = uint64(v)
	}
	return out
}

func init() {
	kernelTags := map[string][]string{
		"dot":       {"dsp"},
		"fir":       {"dsp", "filter"},
		"iir":       {"dsp", "filter"},
		"matmul":    {"linalg"},
		"crc":       {"bitwise"},
		"isort":     {"sort"},
		"strsearch": {"search"},
		"mulhw":     {"dsp", "mul"},
	}
	for _, name := range []string{"dot", "fir", "iir", "matmul", "crc", "isort", "strsearch", "mulhw"} {
		MustRegister(Workload{
			Name:   name,
			Kernel: KernelSources[name],
			Tags:   kernelTags[name],
		})
	}

	MustRegister(Workload{
		Name:    "fir16.spam",
		Machine: "spam",
		Asm: func() string {
			samples, coefs := machines.FIRTestVectors(firTaps, firNOut)
			return machines.FIRSPAM(firTaps, firNOut, samples, coefs)
		},
		Out: Out{Storage: "DMX", Base: machines.FIRSPAMOutBase, N: firNOut},
		RefOutput: func() []uint64 {
			samples, coefs := machines.FIRTestVectors(firTaps, firNOut)
			return widen(machines.FIRReference(firTaps, firNOut, samples, coefs))
		},
		Tags: []string{"dsp", "filter", "asm"},
	})
	MustRegister(Workload{
		Name:    "dot32.spam",
		Machine: "spam",
		Asm: func() string {
			x, y := machines.VecTestVectors(dotN)
			return machines.DotSPAM(dotN, x, y)
		},
		Out: Out{Storage: "RF", Base: spamRFDot, N: 1},
		RefOutput: func() []uint64 {
			x, y := machines.VecTestVectors(dotN)
			return []uint64{uint64(machines.DotReference(dotN, x, y))}
		},
		Tags: []string{"dsp", "asm"},
	})
	MustRegister(Workload{
		Name:    "vecadd64.spam2",
		Machine: "spam2",
		Asm: func() string {
			a, b := machines.VecTestVectors(vecAddN)
			return machines.VecAddSPAM2(vecAddN, a, b)
		},
		Out: Out{Storage: "DM", Base: 256, N: vecAddN},
		RefOutput: func() []uint64 {
			a, b := machines.VecTestVectors(vecAddN)
			c, _ := machines.VecAddReference(vecAddN, a, b)
			return widen(c)
		},
		Tags: []string{"dsp", "asm"},
	})
}
