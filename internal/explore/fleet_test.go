package explore_test

import (
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/machines"
	"repro/internal/obs"
)

// TestExploreFleetTelemetryBitIdentical (runs under -race in CI): a
// background metrics sampler and an attached flight recorder observe the
// exploration, they must not steer it — the result stays bit-identical
// to a plain instrumented run, the sampler window carries exploration
// gauges, and the flight ring holds the trailing spans.
func TestExploreFleetTelemetryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	plain, _ := runConfig(t, 8, false)

	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(64)
	reg.AttachFlight(flight)
	sampler := obs.NewSampler(reg, time.Millisecond, 128)
	sampler.Start()
	defer sampler.Stop()

	ex := &explore.Explorer{
		Base:     machines.SPAMSource,
		Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
		Weights:  explore.DefaultWeights(),
		MaxIters: 3,
		Workers:  8,
		Obs:      reg,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "sampled+flight", plain, res)

	sampler.SampleNow()
	samples := sampler.Samples()
	if len(samples) == 0 {
		t.Fatal("sampler collected nothing during exploration")
	}
	last := samples[len(samples)-1]
	if last.Counters["explore.candidates"] == 0 {
		t.Error("sampled window missing explore.candidates")
	}
	if _, ok := last.Gauges["explore.best.score.milli"]; !ok {
		t.Error("sampled window missing explore.best.score.milli gauge")
	}
	if len(sampler.DashData().Series) == 0 {
		t.Error("dash data empty after an instrumented exploration")
	}

	if flight.Total() == 0 || len(flight.Spans()) == 0 {
		t.Error("flight recorder saw no spans during exploration")
	}
	// Every span in the ring is a real span the registry also recorded
	// (ring order may interleave with the registry under concurrency).
	known := map[uint64]bool{}
	for _, sp := range reg.Spans() {
		known[sp.ID] = true
	}
	for _, sp := range flight.Spans() {
		if !known[sp.ID] {
			t.Errorf("flight ring span %d (%s) unknown to the registry", sp.ID, sp.Name)
		}
	}
}
