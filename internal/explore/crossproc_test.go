package explore_test

// The tentpole acceptance test: two *processes* sharing a directory
// BlobStore never evaluate the same architecture twice. Process A (a
// re-exec of this test binary) explores SPAM and populates the store;
// process B re-runs the identical exploration and recomputes nothing —
// every stage except Parse (never cached by design) reports zero misses,
// the Combine tier serves every candidate, and the Result is
// byte-identical.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machines"
)

// crossProcOut is what the helper process reports back, bracketed by
// crossProcMarker on its own stdout line.
type crossProcOut struct {
	Report      string               `json:"report"`
	FinalSource string               `json:"final_source"`
	Stages      map[string][2]uint64 `json:"stages"` // name -> [hits, misses]
	StoreHits   uint64               `json:"store_hits"`
}

const crossProcMarker = "CROSSPROC_JSON:"

func runCrossProcExplore(t *testing.T, storeDir string) crossProcOut {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCrossProcessExploreHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "EXPLORE_CROSSPROC_STORE="+storeDir)
	raw, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("helper process failed: %v\n%s", err, raw)
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if rest, ok := bytes.CutPrefix(line, []byte(crossProcMarker)); ok {
			var out crossProcOut
			if err := json.Unmarshal(rest, &out); err != nil {
				t.Fatalf("bad helper payload: %v\n%s", err, rest)
			}
			return out
		}
	}
	t.Fatalf("helper produced no %s line:\n%s", crossProcMarker, raw)
	return crossProcOut{}
}

func TestCrossProcessStoreSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns two exploration processes")
	}
	storeDir := t.TempDir()

	a := runCrossProcExplore(t, storeDir) // process A: populates
	b := runCrossProcExplore(t, storeDir) // process B: must only read

	if a.Report != b.Report || a.FinalSource != b.FinalSource {
		t.Errorf("results diverge across processes:\nA report:\n%s\nB report:\n%s", a.Report, b.Report)
	}
	for name, hm := range b.Stages {
		if name == "parse" {
			continue // parse is never cached; every run is counted a miss
		}
		if hm[1] != 0 {
			t.Errorf("process B recomputed stage %s (%d misses) despite the shared store", name, hm[1])
		}
	}
	if b.Stages["combine"][0] == 0 {
		t.Error("process B's combine stage served no hits; store sharing did not happen")
	}
	if b.StoreHits == 0 {
		t.Error("process B reports zero store-tier hits")
	}
}

// TestCrossProcessExploreHelper is one exploration process; it only runs
// when re-executed with the store directory in the environment.
func TestCrossProcessExploreHelper(t *testing.T) {
	storeDir := os.Getenv("EXPLORE_CROSSPROC_STORE")
	if storeDir == "" {
		t.Skip("helper; run via TestCrossProcessStoreSharing")
	}
	st, err := blob.NewDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewEvalCache()
	cache.Stages().SetStore(st)
	res, err := explore.New(machines.SPAM2Source, kernel,
		explore.WithCache(cache),
		explore.WithMaxIters(2),
		explore.WithWorkers(4),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	out := crossProcOut{
		Report:      res.Report(),
		FinalSource: res.FinalSource,
		Stages:      map[string][2]uint64{},
	}
	for s, hm := range cache.Stages().PerStage() {
		out.Stages[core.Stage(s).String()] = [2]uint64{hm.Hits, hm.Misses}
	}
	out.StoreHits, _, _ = cache.Stages().StoreStats()
	payload, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("%s%s\n", crossProcMarker, payload)
}
