package explore_test

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/isdl"
	"repro/internal/machines"
)

// kernel is a small DSP-flavoured workload: vector scale-and-accumulate.
const kernel = `
var i, s;
array a[16] in DM at 0 = { 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3 };
array b[16] in DM at 64;
s = 0;
for i = 0 to 15 {
  b[i] = a[i] + a[i];
  s = s + b[i];
}
`

func TestExploreSPAM2(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	ex := &explore.Explorer{
		Base:     machines.SPAM2Source,
		Kernel:   kernel,
		Weights:  explore.DefaultWeights(),
		MaxIters: 4,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Initial == nil || res.Final == nil {
		t.Fatal("missing evaluations")
	}
	w := ex.Weights
	if res.Final.Score(w.Runtime, w.Area, w.Power) > res.Initial.Score(w.Runtime, w.Area, w.Power) {
		t.Fatalf("exploration made things worse: %.2f -> %.2f",
			res.Initial.Score(w.Runtime, w.Area, w.Power), res.Final.Score(w.Runtime, w.Area, w.Power))
	}
	if len(res.Steps) == 0 {
		t.Fatal("no candidates were evaluated")
	}
	// The winning candidate must be a valid, self-contained ISDL text.
	if _, err := isdl.Parse(res.FinalSource); err != nil {
		t.Fatalf("final source invalid: %v", err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "initial:") || !strings.Contains(rep, "final:") {
		t.Fatalf("report: %q", rep)
	}
	// The kernel never multiplies or compares through cmp, so exploration
	// should find removable operations and improve the area term.
	if !(res.Final.AreaCells < res.Initial.AreaCells) {
		t.Errorf("expected area to shrink: %.0f -> %.0f", res.Initial.AreaCells, res.Final.AreaCells)
	}
}

func TestExploreInfeasibleBase(t *testing.T) {
	ex := &explore.Explorer{
		Base:   machines.SPAM2Source,
		Kernel: "var x; x = y;", // undeclared: compile fails
	}
	if _, err := ex.Run(); err == nil {
		t.Fatal("expected error for uncompilable kernel")
	}
}

// TestNeighboursPreserveRequiredOps: a move must never produce text that
// fails to parse (such moves are filtered before evaluation).
func TestExploreLogging(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	var events []explore.Event
	ex := &explore.Explorer{
		Base:     machines.SPAM2Source,
		Kernel:   "var x; x = 1;",
		MaxIters: 1,
		Log:      func(ev explore.Event) { events = append(events, ev) },
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("expected log events, got %d", len(events))
	}
	if events[0].Kind != "base" || events[0].Eval == nil || events[0].Iter != 0 {
		t.Errorf("first event should be the base evaluation, got %+v", events[0])
	}
	byKind := map[string]int{}
	for _, ev := range events {
		if ev.Line == "" {
			t.Errorf("event %q has no formatted line", ev.Kind)
		}
		byKind[ev.Kind]++
		switch ev.Kind {
		case "candidate":
			if ev.Eval == nil || ev.Action == "" || ev.Iter < 1 {
				t.Errorf("candidate event missing fields: %+v", ev)
			}
		case "infeasible":
			if ev.Err == nil || ev.Action == "" {
				t.Errorf("infeasible event missing fields: %+v", ev)
			}
		case "base", "cache", "accept", "stop":
		default:
			t.Errorf("unknown event kind %q", ev.Kind)
		}
	}
	if byKind["candidate"] == 0 {
		t.Error("no candidate events emitted")
	}
	if byKind["cache"] == 0 {
		t.Error("no cache statistics event emitted")
	}
}
