package explore_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machines"
	"repro/internal/obs"
)

// spamKernel leaves removable operations and retimable units on the table.
const spamKernel = "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n"

func scoreOf(e *core.Evaluation) float64 {
	w := explore.DefaultWeights()
	return e.Score(w.Runtime, w.Area, w.Power)
}

// sameSteps asserts two runs took the identical step sequence.
func sameSteps(t *testing.T, name string, a, b *explore.Result) {
	t.Helper()
	if a.FinalSource != b.FinalSource {
		t.Errorf("%s: FinalSource differs", name)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: step counts differ: %d vs %d", name, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Iter != sb.Iter || sa.Restart != sb.Restart || sa.Action != sb.Action ||
			sa.Score != sb.Score || sa.Accepted != sb.Accepted {
			t.Errorf("%s: step %d differs: %+v vs %+v", name, i, sa, sb)
		}
	}
}

// TestBeamVsHillOnSPAM is the PR's acceptance criterion: on the SPAM
// workload with default weights, Beam{Width:4} reaches a final score no
// worse than the hill climb's, and both strategies are bit-identical
// across Workers ∈ {1, 8} (runs under -race in CI). One shared stage
// cache keeps the four runs cheap; it cannot change any outcome
// (TestExploreParallelDeterministic).
func TestBeamVsHillOnSPAM(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cache := core.NewEvalCache()
	run := func(workers int, opts ...explore.Option) *explore.Result {
		t.Helper()
		opts = append([]explore.Option{
			explore.WithMaxIters(4),
			explore.WithWorkers(workers),
			explore.WithCache(cache),
		}, opts...)
		res, err := explore.New(machines.SPAMSource, spamKernel, opts...).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hill1 := run(1)
	hill8 := run(8)
	sameSteps(t, "hill workers 1 vs 8", hill1, hill8)

	var events []explore.Event
	reg := obs.NewRegistry()
	beam1 := run(1, explore.WithBeam(4))
	beam8 := run(8, explore.WithBeam(4), explore.WithLog(func(ev explore.Event) { events = append(events, ev) }), explore.WithObs(reg))
	sameSteps(t, "beam workers 1 vs 8", beam1, beam8)

	hillScore, beamScore := scoreOf(hill1.Final), scoreOf(beam1.Final)
	if beamScore > hillScore {
		t.Errorf("beam-4 final %.4f worse than hill-climb final %.4f", beamScore, hillScore)
	}

	// The beam emits frontier events with the surviving scores (best
	// first) and publishes the frontier size gauge.
	var frontiers int
	for _, ev := range events {
		if ev.Kind != "frontier" {
			continue
		}
		frontiers++
		if len(ev.Frontier) == 0 || len(ev.Frontier) > 4 {
			t.Errorf("frontier event with %d scores", len(ev.Frontier))
		}
		for i := 1; i < len(ev.Frontier); i++ {
			if ev.Frontier[i] < ev.Frontier[i-1] {
				t.Errorf("frontier scores not sorted: %v", ev.Frontier)
			}
		}
		if ev.Line == "" {
			t.Error("frontier event has no formatted line")
		}
	}
	if frontiers == 0 {
		t.Error("no frontier events emitted")
	}
	if g := reg.Gauges()["explore.frontier.size"]; g < 1 || g > 4 {
		t.Errorf("explore.frontier.size gauge = %d, want 1..4", g)
	}
}

// TestRestartsSeededDeterministic: a Restarts run with a fixed seed is
// byte-identical across repeated runs and across worker counts — the
// perturbation stream depends only on the seed, and every inner run
// reduces in move order.
func TestRestartsSeededDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cache := core.NewEvalCache()
	run := func(workers int) (*explore.Result, []string) {
		t.Helper()
		var lines []string
		res, err := explore.New(machines.SPAMSource, spamKernel,
			explore.WithMaxIters(2),
			explore.WithWorkers(workers),
			explore.WithCache(cache),
			explore.WithRestarts(2, 7),
			explore.WithLog(func(ev explore.Event) {
				// Cache-statistics lines report the shared cache's
				// cumulative hit/miss counters, which move across the
				// three runs; every search decision line must be
				// byte-identical.
				if ev.Kind != "cache" {
					lines = append(lines, ev.Line)
				}
			}),
		).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, lines
	}
	resA, linesA := run(1)
	resB, linesB := run(1)
	resC, linesC := run(8)
	sameSteps(t, "restarts run A vs B", resA, resB)
	sameSteps(t, "restarts workers 1 vs 8", resA, resC)
	if strings.Join(linesA, "\n") != strings.Join(linesB, "\n") {
		t.Error("restart logs differ between identical runs")
	}
	if strings.Join(linesA, "\n") != strings.Join(linesC, "\n") {
		t.Error("restart logs differ across worker counts")
	}

	// The combined result reports per-restart bests plus the global winner.
	if len(resA.Restarts) != 3 { // restart 0 (base) + 2 perturbed
		t.Fatalf("got %d restart results, want 3", len(resA.Restarts))
	}
	if resA.Restarts[0].Perturbation != "base" {
		t.Errorf("restart 0 perturbation = %q, want base", resA.Restarts[0].Perturbation)
	}
	bestScore := resA.Restarts[0].Score
	for i, rr := range resA.Restarts {
		if rr.Index != i {
			t.Errorf("restart %d has Index %d", i, rr.Index)
		}
		if rr.Err != nil {
			continue
		}
		if i > 0 && rr.Perturbation == "" {
			t.Errorf("restart %d has no perturbation description", i)
		}
		if rr.Score < bestScore {
			bestScore = rr.Score
		}
	}
	if got := scoreOf(resA.Final); got != bestScore {
		t.Errorf("global winner score %.4f, want best restart score %.4f", got, bestScore)
	}
	// Steps are stamped with their restart.
	seen := map[int]bool{}
	for _, s := range resA.Steps {
		seen[s.Restart] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("steps missing restart stamps: %v", seen)
	}
}

// TestEventScoredFlag is the regression test for the Score-0 ambiguity: an
// infeasible candidate's Event used to carry Score 0, indistinguishable in
// a JSON log from a genuinely zero-cost candidate. Scored now says whether
// Score holds a real objective value.
func TestEventScoredFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	var events []explore.Event
	_, err := explore.New(machines.SPAM2Source, "var x; x = 1; x = x + 1;",
		explore.WithMaxIters(1),
		explore.WithLog(func(ev explore.Event) { events = append(events, ev) }),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string]int{}
	for _, ev := range events {
		byKind[ev.Kind]++
		switch ev.Kind {
		case "base", "candidate", "accept":
			if !ev.Scored {
				t.Errorf("%s event not marked Scored: %+v", ev.Kind, ev)
			}
		case "infeasible":
			if ev.Scored {
				t.Errorf("infeasible event marked Scored: %+v", ev)
			}
			if ev.Score != 0 {
				t.Errorf("infeasible event carries Score %.2f", ev.Score)
			}
		}
	}
	// The kernel needs the ALU: removing the op it compiles to must have
	// produced at least one infeasible candidate, and scoring the rest at
	// least one scored one.
	if byKind["infeasible"] == 0 {
		t.Error("expected at least one infeasible candidate")
	}
	if byKind["candidate"] == 0 {
		t.Error("expected at least one scored candidate")
	}
}

// TestStrategyNames pins the strategy identifiers used in logs and traces.
func TestStrategyNames(t *testing.T) {
	for _, tc := range []struct {
		s    explore.Strategy
		want string
	}{
		{explore.HillClimb{}, "hill"},
		{explore.Beam{Width: 4}, "beam-4"},
		{explore.Beam{}, "beam-4"}, // default width
		{explore.Pareto{}, "pareto"},
		{explore.Pareto{Width: 8}, "pareto-8"},
		{explore.Restarts{N: 3}, "restarts-3(hill)"},
		{explore.Restarts{N: 1, Inner: explore.Pareto{}}, "restarts-1(pareto)"},
		{explore.Restarts{N: 2, Inner: explore.Beam{Width: 8}}, "restarts-2(beam-8)"},
	} {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}
