package explore_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machines"
)

// dominatesOrEquals reports a <= b on every objective — the acceptance
// relation between a frontier point and a scalar optimum.
func dominatesOrEquals(a, b *core.Evaluation) bool {
	return a.RuntimeUs <= b.RuntimeUs && a.AreaCells <= b.AreaCells && a.PowerMW <= b.PowerMW
}

// checkMutuallyNonDominated fails if any frontier point dominates another.
func checkMutuallyNonDominated(t *testing.T, frontier []explore.FrontierPoint) {
	t.Helper()
	for i, a := range frontier {
		for j, b := range frontier {
			if i == j {
				continue
			}
			strict := a.Eval.RuntimeUs < b.Eval.RuntimeUs || a.Eval.AreaCells < b.Eval.AreaCells || a.Eval.PowerMW < b.Eval.PowerMW
			if dominatesOrEquals(a.Eval, b.Eval) && strict {
				t.Errorf("frontier point %d (%s) dominates point %d (%s)", i, a.Action, j, b.Action)
			}
		}
	}
}

// sameFrontier asserts two runs produced bit-identical frontiers.
func sameFrontier(t *testing.T, name string, a, b []explore.FrontierPoint) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: frontier sizes differ: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		pa, pb := a[i], b[i]
		if pa.Action != pb.Action || pa.Source != pb.Source || pa.Score != pb.Score ||
			pa.Dominated != pb.Dominated || strings.Join(pa.Binding, "|") != strings.Join(pb.Binding, "|") ||
			pa.Eval.RuntimeUs != pb.Eval.RuntimeUs || pa.Eval.AreaCells != pb.Eval.AreaCells ||
			pa.Eval.PowerMW != pb.Eval.PowerMW || pa.Eval.Cycles != pb.Eval.Cycles {
			t.Errorf("%s: frontier point %d differs:\n  %+v\nvs\n  %+v", name, i, pa, pb)
		}
	}
}

// TestParetoOnSPAM is the PR's acceptance criterion: on the SPAM workload
// the Pareto strategy finds at least 3 mutually non-dominated points,
// bit-identical across Workers ∈ {1, 8} (runs under -race in CI), and each
// per-weight scalar optimum found by hill climbing is dominated-or-equaled
// by some frontier point — one Pareto run answers every weighting.
func TestParetoOnSPAM(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cache := core.NewEvalCache()
	run := func(workers int, opts ...explore.Option) *explore.Result {
		t.Helper()
		opts = append([]explore.Option{
			explore.WithMaxIters(4),
			explore.WithWorkers(workers),
			explore.WithCache(cache),
		}, opts...)
		res, err := explore.New(machines.SPAMSource, spamKernel, opts...).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var events []explore.Event
	p1 := run(1, explore.WithPareto(0, explore.Constraints{}))
	p8 := run(8, explore.WithPareto(0, explore.Constraints{}),
		explore.WithLog(func(ev explore.Event) { events = append(events, ev) }))
	sameSteps(t, "pareto workers 1 vs 8", p1, p8)
	sameFrontier(t, "pareto workers 1 vs 8", p1.Frontier, p8.Frontier)

	if len(p1.Frontier) < 3 {
		t.Fatalf("frontier has %d points, want >= 3", len(p1.Frontier))
	}
	checkMutuallyNonDominated(t, p1.Frontier)

	// Canonical curve order: ascending run time.
	for i := 1; i < len(p1.Frontier); i++ {
		if p1.Frontier[i].Eval.RuntimeUs < p1.Frontier[i-1].Eval.RuntimeUs {
			t.Errorf("frontier not in ascending-runtime order at %d", i)
		}
	}

	// Final is the scalar-best frontier member under the run's weights.
	bestScore := math.Inf(1)
	for _, p := range p1.Frontier {
		if p.Score < bestScore {
			bestScore = p.Score
		}
	}
	if got := scoreOf(p1.Final); got != bestScore {
		t.Errorf("Final score %.4f, want frontier best %.4f", got, bestScore)
	}

	// The run emits frontier events carrying the curve's scores.
	var sawFrontier bool
	for _, ev := range events {
		if ev.Kind == "frontier" && len(ev.Frontier) > 0 {
			sawFrontier = true
		}
	}
	if !sawFrontier {
		t.Error("no frontier events emitted")
	}

	// Every per-weight scalar optimum is dominated-or-equaled by a frontier
	// point: the curve subsumes the runs a user would have done per
	// weighting.
	for _, w := range []explore.Weights{
		{Runtime: 1, Area: 0.5, Power: 0.2}, // defaults
		{Runtime: 1},                        // pure performance
		{Area: 1},                           // pure silicon
		{Power: 1},                          // pure power
	} {
		hill := run(1, explore.WithWeights(w))
		covered := false
		for _, p := range p1.Frontier {
			if dominatesOrEquals(p.Eval, hill.Final) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("hill optimum under weights %+v (%s) not covered by any frontier point",
				w, hill.FinalSource[:40])
		}
	}
}

// TestParetoConstraintsOnSPAM: hard bounds exclude candidates from the
// frontier but still record them as scored-infeasible; every surviving
// frontier point respects the bounds.
func TestParetoConstraintsOnSPAM(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cons := explore.Constraints{MaxArea: 275000, MaxPowerMW: 2.8}
	var events []explore.Event
	res, err := explore.New(machines.SPAMSource, spamKernel,
		explore.WithMaxIters(4),
		explore.WithPareto(0, cons),
		explore.WithLog(func(ev explore.Event) { events = append(events, ev) }),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier under satisfiable constraints")
	}
	checkMutuallyNonDominated(t, res.Frontier)
	for i, p := range res.Frontier {
		if v := cons.Violations(p.Eval); len(v) != 0 {
			t.Errorf("frontier point %d violates constraints %v: %s", i, v, p.Action)
		}
	}
	// Violating candidates appear as Steps with an Infeasible verdict,
	// never Accepted, and as infeasible events that still carry a score
	// (they evaluated fine — the constraint is what excluded them).
	var constrainedSteps int
	for _, s := range res.Steps {
		if strings.HasPrefix(s.Infeasible, "constraint:") {
			constrainedSteps++
			if s.Accepted {
				t.Errorf("constraint-violating step marked Accepted: %+v", s)
			}
		}
	}
	if constrainedSteps == 0 {
		t.Error("no constraint-violating candidates recorded; bounds too loose for the test")
	}
	var scoredInfeasible int
	for _, ev := range events {
		if ev.Kind == "infeasible" && ev.Scored {
			scoredInfeasible++
			if ev.Err == nil {
				t.Error("scored infeasible event has no Err naming the constraint")
			}
		}
	}
	if scoredInfeasible == 0 {
		t.Error("no scored infeasible events emitted for constraint violations")
	}
}

// TestParetoEmptyFeasibleSet: when every candidate (base included)
// violates the constraints, Run fails with a clear error — not an empty
// frontier the caller could mistake for a converged run.
func TestParetoEmptyFeasibleSet(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	_, err := explore.New(machines.SPAMSource, spamKernel,
		explore.WithMaxIters(1),
		explore.WithPareto(0, explore.Constraints{MaxArea: 1}),
	).Run()
	if err == nil {
		t.Fatal("Run succeeded with an unsatisfiable area bound")
	}
	if !strings.Contains(err.Error(), "no feasible candidate") {
		t.Errorf("error %q does not explain the empty feasible set", err)
	}
}

// TestInvalidWeightsRejectedAtRun: bad weight shapes fail before any
// evaluation happens, with an error naming the offending component.
func TestInvalidWeightsRejectedAtRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    explore.Weights
		want string
	}{
		{"NaN", explore.Weights{Runtime: math.NaN(), Area: 0.5}, "runtime weight"},
		{"negative", explore.Weights{Runtime: 1, Power: -0.2}, "power weight"},
		{"all-zero", explore.Weights{}, "all-zero"},
	} {
		_, err := explore.New(machines.SPAMSource, spamKernel,
			explore.WithWeights(tc.w)).Run()
		if err == nil {
			t.Errorf("%s weights accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s weights: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestRestartsWinnerSurvivesReallocation is the regression test for the
// stale-alias bug: Restarts.run kept a *RestartResult into
// combined.Restarts while still appending to it, so once append
// reallocated the backing array, the winner mark written through the
// pointer landed in the dead copy and the reported winner could desync
// from Final. Three restarts force at least one reallocation; exactly one
// result must carry Winner and it must match Final.
func TestRestartsWinnerSurvivesReallocation(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	res, err := explore.New(machines.SPAMSource, spamKernel,
		explore.WithMaxIters(1),
		explore.WithRestarts(2, 7),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restarts) != 3 {
		t.Fatalf("got %d restart results, want 3", len(res.Restarts))
	}
	var winners []explore.RestartResult
	for _, rr := range res.Restarts {
		if rr.Winner {
			winners = append(winners, rr)
		}
	}
	if len(winners) != 1 {
		t.Fatalf("got %d Winner marks, want exactly 1 (%+v)", len(winners), res.Restarts)
	}
	w := winners[0]
	if w.Source != res.FinalSource || scoreOf(res.Final) != w.Score {
		t.Errorf("winner (restart %d, score %.4f) does not match Final (score %.4f)",
			w.Index, w.Score, scoreOf(res.Final))
	}
	for _, rr := range res.Restarts {
		if rr.Err == nil && rr.Score < w.Score {
			t.Errorf("restart %d score %.4f beats the marked winner %.4f", rr.Index, rr.Score, w.Score)
		}
	}
}
