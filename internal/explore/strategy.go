package explore

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// Strategy decides how the exploration loop walks the design space. The
// shipped strategies are HillClimb (accept the best improving neighbour,
// stop at the first local optimum), Beam (keep the top-K frontier alive
// each iteration), Pareto (keep the non-dominated (run time, area, power)
// frontier under optional hard constraints) and Restarts (run an inner
// strategy from seeded random perturbations of the base). All strategies
// evaluate candidates through
// the same move-order-deterministic worker pool and staged pipeline, so
// results are bit-identical across Workers settings.
//
// The interface is sealed: the run method takes the package's internal
// engine, so new strategies are added here, next to the determinism
// machinery they must respect.
type Strategy interface {
	// Name identifies the strategy in logs and results.
	Name() string
	run(e *engine) (*Result, error)
}

// Config is the exploration configuration behind explore.New. The zero
// value of every field is usable: New fills Base, Kernel and default
// Weights, and Run defaults the rest (HillClimb strategy, 16 iterations,
// NumCPU workers, a private per-run cache).
type Config struct {
	// Base is the starting ISDL description source.
	Base string
	// Kernel is the application in the compiler's kernel language.
	Kernel string
	// Weights fold an evaluation into the scalar objective.
	Weights Weights
	// Evaluator runs the methodology; nil uses core.NewEvaluator().
	Evaluator *core.Evaluator
	// MaxIters bounds each strategy's improvement loop (default 16).
	MaxIters int
	// Workers bounds concurrent candidate evaluations (default NumCPU).
	// Results are bit-identical to Workers=1 regardless of completion
	// order: candidates are reduced in move order.
	Workers int
	// NoCache disables evaluation memoization (see docs/PIPELINE.md).
	NoCache bool
	// Cache, when non-nil, is used instead of a fresh per-Run cache.
	Cache *core.EvalCache
	// Log receives one structured Event per exploration observation.
	Log func(Event)
	// Obs, when non-nil, collects exploration metrics and spans.
	Obs *obs.Registry
	// Strategy picks the search walk; nil means HillClimb{}.
	Strategy Strategy

	// restartN/restartSeed record WithRestarts independently of option
	// order: Run wraps whatever Strategy ends up configured.
	restartN    int
	restartSeed int64
}

// Option mutates a Config under construction.
type Option func(*Config)

// New builds an exploration Config over a base description and kernel.
// Without options it hill-climbs with DefaultWeights, NumCPU workers and
// a private stage cache:
//
//	res, err := explore.New(base, kernel, explore.WithBeam(4), explore.WithRestarts(3, 1)).Run()
func New(base, kernel string, opts ...Option) *Config {
	c := &Config{Base: base, Kernel: kernel, Weights: DefaultWeights()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WithWeights sets the objective weights (default DefaultWeights).
func WithWeights(w Weights) Option { return func(c *Config) { c.Weights = w } }

// WithEvaluator sets the methodology evaluator (default core.NewEvaluator).
func WithEvaluator(ev *core.Evaluator) Option { return func(c *Config) { c.Evaluator = ev } }

// WithMaxIters bounds each strategy's improvement loop (default 16).
func WithMaxIters(n int) Option { return func(c *Config) { c.MaxIters = n } }

// WithWorkers bounds concurrent candidate evaluations (0 = NumCPU).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithoutCache disables evaluation memoization.
func WithoutCache() Option { return func(c *Config) { c.NoCache = true } }

// WithCache shares an evaluation cache across runs (see Config.Cache and
// docs/EXPLORE.md for the validity rules).
func WithCache(cache *core.EvalCache) Option { return func(c *Config) { c.Cache = cache } }

// WithLog sets the structured event sink.
func WithLog(fn func(Event)) Option { return func(c *Config) { c.Log = fn } }

// WithObs sets the metrics/span registry.
func WithObs(r *obs.Registry) Option { return func(c *Config) { c.Obs = r } }

// WithStrategy sets the search strategy explicitly.
func WithStrategy(s Strategy) Option { return func(c *Config) { c.Strategy = s } }

// WithBeam selects beam search with the given frontier width.
func WithBeam(width int) Option { return func(c *Config) { c.Strategy = Beam{Width: width} } }

// WithPareto selects Pareto-frontier search under the given hard
// constraints (zero-value Constraints = unconstrained) with an optional
// frontier cap (0 = unbounded).
func WithPareto(width int, cons Constraints) Option {
	return func(c *Config) { c.Strategy = Pareto{Width: width, Constraints: cons} }
}

// WithRestarts adds n seeded random restarts around whichever strategy is
// configured (order relative to WithBeam/WithStrategy does not matter):
// restart 0 runs from the unperturbed base, restarts 1..n from bases
// perturbed by seeded random mutations, and the Result reports each
// restart's best plus the global winner.
func WithRestarts(n int, seed int64) Option {
	return func(c *Config) { c.restartN, c.restartSeed = n, seed }
}

// strategy resolves the effective strategy: explicit > restart wrapping >
// hill climbing.
func (c *Config) strategy() Strategy {
	s := c.Strategy
	if s == nil {
		s = HillClimb{}
	}
	if c.restartN > 0 {
		if _, ok := s.(Restarts); !ok {
			s = Restarts{N: c.restartN, Seed: c.restartSeed, Inner: s}
		}
	}
	return s
}

// Run explores from the base description with the configured strategy.
func (c *Config) Run() (*Result, error) {
	if err := c.Weights.Validate(); err != nil {
		return nil, err
	}
	return c.strategy().run(newEngine(c))
}

// engine owns the per-run machinery every strategy shares: the staged
// pipeline with its cache, the bounded worker pool with move-order
// reduction, scoring, structured events and observability. Strategies
// differ only in which candidates they ask it to evaluate next.
type engine struct {
	cfg      *Config
	pipe     *core.Pipeline
	stages   *core.StageCache
	workers  int
	maxIters int
	// base is the effective starting description: Config.Base, except
	// under Restarts, which substitutes the perturbed source per restart.
	base string
	// restart is stamped on every Event and Step (0 = the base run).
	restart int
	// op-closure cache deltas are reported against the run's baseline.
	opHits0, opMisses0 uint64
}

func newEngine(c *Config) *engine {
	ev := c.Evaluator
	if ev == nil {
		ev = core.NewEvaluator()
	}
	maxIters := c.MaxIters
	if maxIters <= 0 {
		maxIters = 16
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cache := c.Cache
	if cache == nil && !c.NoCache {
		cache = core.NewEvalCache()
	}
	var stages *core.StageCache
	if cache != nil {
		stages = cache.Stages()
		stages.Bind(c.Obs) // no-op when Obs is nil or already bound
	}
	cfg := *c
	cfg.Evaluator = ev
	pipe := &core.Pipeline{Evaluator: ev, Cache: stages, Obs: c.Obs}
	c.Obs.SetLaneName(0, "explore")
	for w := 0; w < workers; w++ {
		c.Obs.SetLaneName(1+w, fmt.Sprintf("worker %d", w))
	}
	// Compiled-op reuse happens below the pipeline, in the process-wide
	// xsim cache; report per-run deltas alongside the stage counters.
	opHits0, opMisses0 := xsim.SharedOpCache().Stats()
	return &engine{
		cfg:       &cfg,
		pipe:      pipe,
		stages:    stages,
		workers:   workers,
		maxIters:  maxIters,
		base:      c.Base,
		opHits0:   opHits0,
		opMisses0: opMisses0,
	}
}

func (e *engine) obs() *obs.Registry { return e.cfg.Obs }

func (e *engine) emit(ev Event) {
	ev.Restart = e.restart
	if e.cfg.Log != nil {
		e.cfg.Log(ev)
	}
}

func (e *engine) score(ev *core.Evaluation) float64 {
	return ev.Score(e.cfg.Weights.Runtime, e.cfg.Weights.Area, e.cfg.Weights.Power)
}

// scoreChecked folds an evaluation into the scalar objective, rejecting
// non-finite figures with an explicit verdict. A NaN score compares
// false against every bound — `s < best` silently rejects forever and
// sort.SliceStable orders unpredictably — so a candidate whose model
// produced NaN/Inf run time, area, power or score is treated as
// infeasible instead of being allowed to poison the accept and frontier
// paths.
func (e *engine) scoreChecked(ev *core.Evaluation) (float64, error) {
	for _, c := range []struct {
		name string
		v    float64
	}{{"run time", ev.RuntimeUs}, {"area", ev.AreaCells}, {"power", ev.PowerMW}} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return 0, fmt.Errorf("non-finite %s %v in evaluation", c.name, c.v)
		}
	}
	s := e.score(ev)
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("non-finite score %v", s)
	}
	return s, nil
}

// evaluate runs the staged pipeline (core.Pipeline) for one candidate:
// parse → compile kernel → assemble → simulate → synthesize → combine,
// with every post-parse stage memoized per content-addressed key when the
// pipeline has a cache (see docs/PIPELINE.md). Stage spans of executed
// stages become children of sp in the trace.
func (e *engine) evaluate(src string, sp *obs.Span) (*core.Evaluation, error) {
	return e.pipe.EvaluateKernelTraced(src, e.cfg.Kernel, "kernel", sp)
}

// evalBase scores the starting candidate and emits the "base" event.
func (e *engine) evalBase() (*core.Evaluation, float64, error) {
	sp := e.obs().StartSpanLane("candidate", 1)
	sp.SetArg("action", "base")
	e.obs().Counter("explore.candidates").Inc()
	eval, err := e.evaluate(e.base, sp)
	sp.End()
	if err != nil {
		return nil, 0, fmt.Errorf("explore: base candidate: %w", err)
	}
	s, err := e.scoreChecked(eval)
	if err != nil {
		return nil, 0, fmt.Errorf("explore: base candidate: %w", err)
	}
	e.setBestScore(s)
	e.emit(Event{Kind: "base", Score: s, Scored: true, Eval: eval,
		Line: fmt.Sprintf("base: score %.2f (%s)", s, oneLine(eval))})
	return eval, s, nil
}

// setBestScore publishes the best score so far for the live dashboard.
// Gauges are integers, so the score travels in fixed-point milli-units
// (the dashboard divides the .milli suffix back out).
func (e *engine) setBestScore(s float64) {
	e.obs().Gauge("explore.best.score.milli").Set(int64(s * 1000))
}

// emitCacheStats publishes the per-iteration cache line.
func (e *engine) emitCacheStats(iter int) {
	if e.stages == nil {
		return
	}
	opHits, opMisses := xsim.SharedOpCache().Stats()
	e.emit(Event{Kind: "cache", Iter: iter,
		Line: fmt.Sprintf("iter %d: cache %s; op-closures %d reused / %d compiled",
			iter, e.stages.StatsLine(), opHits-e.opHits0, opMisses-e.opMisses0)})
}

// outcome is one candidate's pipeline result.
type outcome struct {
	eval *core.Evaluation
	err  error
}

// evaluateAll scores every move, fanning out over the bounded worker pool.
// outs[i] always corresponds to moves[i]; completion order never matters.
// Each scored candidate gets a span on its worker's lane, parented to the
// iteration span, so the trace shows the fan-out side by side.
func (e *engine) evaluateAll(moves []move, iterSpan *obs.Span) []outcome {
	outs := make([]outcome, len(moves))
	workers := e.workers
	if workers > len(moves) {
		workers = len(moves)
	}
	scoreOne := func(i, lane int) {
		sp := iterSpan.ChildLane("candidate", lane)
		sp.SetArg("action", moves[i].action)
		e.obs().Counter("explore.candidates").Inc()
		outs[i].eval, outs[i].err = e.evaluate(moves[i].src, sp)
		if outs[i].err != nil {
			sp.SetArg("err", outs[i].err.Error())
		}
		sp.End()
	}
	if workers <= 1 {
		for i := range moves {
			scoreOne(i, 1)
		}
		return outs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := range next {
				scoreOne(i, lane)
			}
		}(1 + w)
	}
	for i := range moves {
		next <- i
	}
	close(next)
	wg.Wait()
	return outs
}

// HillClimb is the classic strategy: evaluate every neighbour of the
// current candidate, accept the best improving move, stop at the first
// iteration with no improvement (paper §1, Figure 1).
type HillClimb struct{}

// Name implements Strategy.
func (HillClimb) Name() string { return "hill" }

func (HillClimb) run(e *engine) (*Result, error) {
	curEval, curScore, err := e.evalBase()
	if err != nil {
		return nil, err
	}
	curSrc := e.base
	res := &Result{Initial: curEval}

	for iter := 1; iter <= e.maxIters; iter++ {
		iterSpan := e.obs().StartSpan("iteration")
		iterSpan.SetArg("iter", strconv.Itoa(iter))
		moves, err := neighbours(curSrc)
		if err != nil {
			iterSpan.End()
			return nil, err
		}
		outs := e.evaluateAll(moves, iterSpan)
		bestScore := curScore
		var bestSrc, bestAction string
		var bestEval *core.Evaluation
		// Reduce in move order: acceptance and tie-breaking are identical
		// to the sequential loop no matter how the workers interleaved.
		for i, mv := range moves {
			cand, err := outs[i].eval, outs[i].err
			if err != nil {
				// Infeasible candidate (e.g. the compiler lost an
				// operation it needs): skip.
				e.obs().Counter("explore.moves.infeasible").Inc()
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Err: err,
					Line: fmt.Sprintf("iter %d: %-28s infeasible: %v", iter, mv.action, err)})
				continue
			}
			s, serr := e.scoreChecked(cand)
			if serr != nil {
				// A NaN/Inf score would compare false against bestScore
				// forever; make the verdict explicit instead.
				e.obs().Counter("explore.moves.infeasible").Inc()
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Eval: cand, Err: serr,
					Line: fmt.Sprintf("iter %d: %-28s infeasible: %v", iter, mv.action, serr)})
				continue
			}
			accepted := s < bestScore
			if accepted {
				e.obs().Counter("explore.moves.accepted").Inc()
			} else {
				e.obs().Counter("explore.moves.rejected").Inc()
			}
			res.Steps = append(res.Steps, Step{Iter: iter, Restart: e.restart, Action: mv.action, Eval: cand, Score: s, Accepted: accepted})
			e.emit(Event{Kind: "candidate", Iter: iter, Action: mv.action, Score: s, Scored: true, Accepted: accepted, Eval: cand,
				Line: fmt.Sprintf("iter %d: %-28s score %.2f (%s)", iter, mv.action, s, oneLine(cand))})
			if accepted {
				bestScore, bestSrc, bestAction, bestEval = s, mv.src, mv.action, cand
			}
		}
		e.emitCacheStats(iter)
		if bestEval == nil {
			e.emit(Event{Kind: "stop", Iter: iter,
				Line: fmt.Sprintf("iter %d: no improving move; stopping", iter)})
			iterSpan.End()
			break
		}
		e.emit(Event{Kind: "accept", Iter: iter, Action: bestAction, Score: bestScore, Scored: true, Accepted: true, Eval: bestEval,
			Line: fmt.Sprintf("iter %d: ACCEPT %s (score %.2f -> %.2f)", iter, bestAction, curScore, bestScore)})
		iterSpan.SetArg("accepted", bestAction)
		iterSpan.End()
		e.setBestScore(bestScore)
		curSrc, curScore, curEval = bestSrc, bestScore, bestEval
	}
	res.Final = curEval
	res.FinalSource = curSrc
	return res, nil
}
