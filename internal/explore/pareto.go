package explore

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Constraints are hard feasibility bounds on the objective space: "area
// ≤ MaxArea, power ≤ MaxPowerMW, minimize the rest". A zero bound leaves
// that axis unconstrained. Candidates violating any active bound are
// still scored and recorded (as infeasible-by-constraint events and
// Steps), but never enter the Pareto frontier.
type Constraints struct {
	// MaxRuntimeUs bounds the run time in microseconds (0 = none).
	MaxRuntimeUs float64
	// MaxArea bounds the die size in grid cells (0 = none).
	MaxArea float64
	// MaxPowerMW bounds the power in milliwatts (0 = none).
	MaxPowerMW float64
}

// bindingFraction is the budget share above which a constraint counts as
// binding for a frontier point (FrontierPoint.Binding).
const bindingFraction = 0.95

// Active reports whether any bound is set.
func (c Constraints) Active() bool {
	return c.MaxRuntimeUs > 0 || c.MaxArea > 0 || c.MaxPowerMW > 0
}

// Validate rejects bounds no candidate could be compared against: NaN,
// infinities and negative values.
func (c Constraints) Validate() error {
	for _, b := range []struct {
		name string
		v    float64
	}{{"runtime", c.MaxRuntimeUs}, {"area", c.MaxArea}, {"power", c.MaxPowerMW}} {
		if math.IsNaN(b.v) || math.IsInf(b.v, 0) || b.v < 0 {
			return fmt.Errorf("explore: invalid %s constraint %v (want a finite bound >= 0; 0 disables it)", b.name, b.v)
		}
	}
	return nil
}

// Violations returns the names of the constraints e violates, in the
// fixed order runtime, area, power (empty = feasible). A candidate
// exactly at a bound is feasible: the constraint is "≤".
func (c Constraints) Violations(e *core.Evaluation) []string {
	var out []string
	if c.MaxRuntimeUs > 0 && e.RuntimeUs > c.MaxRuntimeUs {
		out = append(out, "runtime")
	}
	if c.MaxArea > 0 && e.AreaCells > c.MaxArea {
		out = append(out, "area")
	}
	if c.MaxPowerMW > 0 && e.PowerMW > c.MaxPowerMW {
		out = append(out, "power")
	}
	return out
}

// Binding returns the constraints e consumes at least bindingFraction of
// — the budgets that effectively pin a frontier point in place.
func (c Constraints) Binding(e *core.Evaluation) []string {
	var out []string
	if c.MaxRuntimeUs > 0 && e.RuntimeUs >= bindingFraction*c.MaxRuntimeUs {
		out = append(out, "runtime")
	}
	if c.MaxArea > 0 && e.AreaCells >= bindingFraction*c.MaxArea {
		out = append(out, "area")
	}
	if c.MaxPowerMW > 0 && e.PowerMW >= bindingFraction*c.MaxPowerMW {
		out = append(out, "power")
	}
	return out
}

// String renders the active bounds ("area <= 9000, power <= 50").
func (c Constraints) String() string {
	var parts []string
	if c.MaxRuntimeUs > 0 {
		parts = append(parts, fmt.Sprintf("runtime <= %g us", c.MaxRuntimeUs))
	}
	if c.MaxArea > 0 {
		parts = append(parts, fmt.Sprintf("area <= %g cells", c.MaxArea))
	}
	if c.MaxPowerMW > 0 {
		parts = append(parts, fmt.Sprintf("power <= %g mW", c.MaxPowerMW))
	}
	if len(parts) == 0 {
		return "unconstrained"
	}
	return strings.Join(parts, ", ")
}

// constraintErr is the Err attached to an infeasible-by-constraint event.
func constraintErr(violated []string) error {
	return fmt.Errorf("violates constraint %s", strings.Join(violated, ", "))
}

// Pareto keeps the whole (run time, area, power) trade-off instead of
// collapsing it into one weighted scalar: per iteration it evaluates the
// union of every frontier member's neighbours through the deterministic
// worker pool — exactly like Beam, including the canonical-ISDL seen-set
// — but the survivors are the *non-dominated* set over the three
// objectives rather than the top-K by score. One run answers every
// weighting a user could ask for: any positive-weight scalar optimum over
// the evaluated space is on (or dominated-or-equaled by) the frontier.
//
// Hard constraints (Constraints) make candidates over an area or power
// budget infeasible: they are scored and recorded but never enter the
// frontier, and a run whose every candidate violates the bounds fails
// with a clear error instead of returning an empty frontier.
//
// Determinism: candidates are reduced in move order, equal points
// collapse to the earliest, the frontier is kept in canonical curve order
// (runtime, area, power, insertion sequence), and the optional Width cap
// truncates by NSGA-II crowding distance with the insertion sequence as
// the final tie-break — so results are bit-identical across Workers
// settings.
type Pareto struct {
	// Width caps the frontier via crowding-distance truncation
	// (0 = unbounded, the default: exploration spaces here are small).
	Width int
	// Constraints are the hard feasibility bounds (zero value = none).
	Constraints Constraints
}

// Name implements Strategy.
func (p Pareto) Name() string {
	if p.Width > 0 {
		return fmt.Sprintf("pareto-%d", p.Width)
	}
	return "pareto"
}

func (p Pareto) run(e *engine) (*Result, error) {
	if err := p.Constraints.Validate(); err != nil {
		return nil, err
	}
	baseEval, baseScore, err := e.evalBase()
	if err != nil {
		return nil, err
	}
	baseKey, err := canonical(e.base)
	if err != nil {
		return nil, err
	}
	res := &Result{Initial: baseEval}
	seen := map[string]bool{baseKey: true}
	var frontier []paretoCand
	// feasible collects every feasible scored evaluation, for the final
	// dominated-count per frontier point.
	var feasible []*core.Evaluation
	evaluated, violated := 1, 0
	seq := 0

	if v := p.Constraints.Violations(baseEval); len(v) > 0 {
		violated++
		e.obs().Counter("explore.moves.constrained").Inc()
		e.emit(Event{Kind: "infeasible", Iter: 0, Action: "base", Score: baseScore, Scored: true, Eval: baseEval, Err: constraintErr(v),
			Line: fmt.Sprintf("base: score %.2f but %v (%s)", baseScore, constraintErr(v), oneLine(baseEval))})
	} else {
		frontier = []paretoCand{{action: "base", src: e.base, eval: baseEval, score: baseScore, seq: seq}}
		feasible = append(feasible, baseEval)
		seq++
	}

	for iter := 1; iter <= e.maxIters; iter++ {
		iterSpan := e.obs().StartSpan("iteration")
		iterSpan.SetArg("iter", strconv.Itoa(iter))
		iterSpan.SetArg("frontier", strconv.Itoa(len(frontier)))
		// Expand the frontier; when everything so far violates the
		// constraints there is no frontier yet, so probe from the base —
		// its neighbourhood is the only ground not yet ruled out.
		expand := make([]string, 0, len(frontier))
		for _, f := range frontier {
			expand = append(expand, f.src)
		}
		if len(expand) == 0 {
			expand = []string{e.base}
		}
		var moves []move
		for _, src := range expand {
			ns, err := neighbours(src)
			if err != nil {
				iterSpan.End()
				return nil, err
			}
			for _, mv := range ns {
				if seen[mv.src] { // mv.src is canonical (isdl.Format output)
					continue
				}
				seen[mv.src] = true
				moves = append(moves, mv)
			}
		}
		if len(moves) == 0 {
			e.emit(Event{Kind: "stop", Iter: iter,
				Line: fmt.Sprintf("iter %d: no unseen neighbour; stopping", iter)})
			iterSpan.End()
			break
		}
		outs := e.evaluateAll(moves, iterSpan)
		entered := map[string]bool{} // this iteration's srcs that entered
		// Reduce in move order, exactly like the other strategies.
		for i, mv := range moves {
			cand, err := outs[i].eval, outs[i].err
			if err != nil {
				e.obs().Counter("explore.moves.infeasible").Inc()
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Err: err,
					Line: fmt.Sprintf("iter %d: %-28s infeasible: %v", iter, mv.action, err)})
				continue
			}
			evaluated++
			s, serr := e.scoreChecked(cand)
			if serr != nil {
				e.obs().Counter("explore.moves.infeasible").Inc()
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Eval: cand, Err: serr,
					Line: fmt.Sprintf("iter %d: %-28s infeasible: %v", iter, mv.action, serr)})
				continue
			}
			if v := p.Constraints.Violations(cand); len(v) > 0 {
				violated++
				e.obs().Counter("explore.moves.constrained").Inc()
				verr := constraintErr(v)
				res.Steps = append(res.Steps, Step{Iter: iter, Restart: e.restart, Action: mv.action, Eval: cand, Score: s,
					Infeasible: "constraint: " + strings.Join(v, ", ")})
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Score: s, Scored: true, Eval: cand, Err: verr,
					Line: fmt.Sprintf("iter %d: %-28s score %.2f but %v", iter, mv.action, s, verr)})
				continue
			}
			feasible = append(feasible, cand)
			var accepted bool
			frontier, accepted = insertNonDominated(frontier, paretoCand{
				action: mv.action, src: mv.src, eval: cand, score: s, seq: seq,
			})
			seq++
			if accepted {
				entered[mv.src] = true
				e.obs().Counter("explore.moves.accepted").Inc()
			} else {
				e.obs().Counter("explore.moves.rejected").Inc()
			}
			res.Steps = append(res.Steps, Step{Iter: iter, Restart: e.restart, Action: mv.action, Eval: cand, Score: s, Accepted: accepted})
			e.emit(Event{Kind: "candidate", Iter: iter, Action: mv.action, Score: s, Scored: true, Accepted: accepted, Eval: cand,
				Line: fmt.Sprintf("iter %d: %-28s score %.2f (%s)", iter, mv.action, s, oneLine(cand))})
		}
		e.emitCacheStats(iter)
		frontier = truncateCrowding(frontier, p.Width)
		sortFrontier(frontier)
		fresh := 0
		scores := make([]float64, len(frontier))
		labels := make([]string, len(frontier))
		for i, f := range frontier {
			scores[i] = f.score
			labels[i] = fmt.Sprintf("%.2f", f.score)
			if entered[f.src] {
				fresh++
			}
		}
		e.obs().Gauge("explore.frontier.size").Set(int64(len(frontier)))
		if len(frontier) > 0 {
			e.setBestScore(minScore(frontier))
		}
		e.emit(Event{Kind: "frontier", Iter: iter, Frontier: scores,
			Line: fmt.Sprintf("iter %d: frontier %d non-dominated [%s] (%d fresh)", iter, len(frontier), strings.Join(labels, " "), fresh)})
		iterSpan.SetArg("fresh", strconv.Itoa(fresh))
		iterSpan.End()
		if fresh == 0 && len(frontier) > 0 {
			e.emit(Event{Kind: "stop", Iter: iter,
				Line: fmt.Sprintf("iter %d: frontier converged; stopping", iter)})
			break
		}
	}

	if len(frontier) == 0 {
		return nil, fmt.Errorf("explore: pareto: no feasible candidate under %s (%d candidates evaluated, %d violated the constraints)",
			p.Constraints, evaluated, violated)
	}
	res.Frontier = make([]FrontierPoint, len(frontier))
	bestIdx := 0
	for i, f := range frontier {
		dominated := 0
		for _, ev := range feasible {
			if dominates(f.eval, ev) {
				dominated++
			}
		}
		res.Frontier[i] = FrontierPoint{
			Action:    f.action,
			Source:    f.src,
			Eval:      f.eval,
			Score:     f.score,
			Dominated: dominated,
			Binding:   p.Constraints.Binding(f.eval),
		}
		if f.score < frontier[bestIdx].score {
			bestIdx = i
		}
	}
	// Final/FinalSource pick the scalar-best frontier member under the
	// run's Weights, so Pareto composes with everything that consumes a
	// single winner (Restarts, -o, the report footer); ties go to the
	// earlier point on the curve.
	res.Final = frontier[bestIdx].eval
	res.FinalSource = frontier[bestIdx].src
	e.emit(Event{Kind: "stop", Iter: 0, Score: frontier[bestIdx].score, Scored: true,
		Line: fmt.Sprintf("pareto done: %d non-dominated points, scalar best %.2f", len(frontier), frontier[bestIdx].score)})
	return res, nil
}

func minScore(frontier []paretoCand) float64 {
	min := frontier[0].score
	for _, f := range frontier[1:] {
		if f.score < min {
			min = f.score
		}
	}
	return min
}
