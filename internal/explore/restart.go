package explore

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/randmachine"
)

// Restarts wraps an inner strategy with seeded random restarts: restart 0
// runs the inner strategy from the unperturbed base, restarts 1..N from
// bases perturbed by random — but always semantically valid — mutations
// drawn from one rand source seeded with Seed, so a run is byte-identical
// for a fixed (base, kernel, N, Seed) no matter how many workers evaluate
// candidates. The combined Result carries every restart's best
// (Result.Restarts, the global winner flagged Winner) and the winner's
// Final/FinalSource (score ties go to the earlier restart); when the
// inner strategy is Pareto, the per-restart frontiers are additionally
// merged into one combined non-dominated curve (Result.Frontier).
type Restarts struct {
	// N is the number of perturbed restarts beyond the base run.
	N int
	// Seed seeds the perturbation stream.
	Seed int64
	// Inner is the strategy each restart runs; nil means HillClimb{}.
	Inner Strategy
}

// PerturbMoves is how many random mutations each restart applies to the
// base description.
const PerturbMoves = 2

// Name implements Strategy.
func (r Restarts) Name() string {
	inner := r.Inner
	if inner == nil {
		inner = HillClimb{}
	}
	return fmt.Sprintf("restarts-%d(%s)", r.N, inner.Name())
}

func (r Restarts) run(e *engine) (*Result, error) {
	inner := r.Inner
	if inner == nil {
		inner = HillClimb{}
	}
	rnd := rand.New(rand.NewSource(r.Seed))
	combined := &Result{}
	base := e.base
	// bestIdx indexes combined.Restarts. It must be an index, not a
	// pointer into the slice: append reallocates the backing array as it
	// grows, and a *RestartResult taken before a reallocation aliases the
	// stale copy — reads still happen to work (the values were copied),
	// but any write through it (the Winner mark below) silently lands in
	// the dead array (TestRestartsWinnerSurvivesReallocation).
	bestIdx := -1
	// frontiers collects per-restart Pareto frontiers for the merged
	// combined curve (empty unless the inner strategy is Pareto).
	var frontiers []FrontierPoint
	// Restarts run sequentially: each inner run owns the whole worker
	// pool, and the shared stage cache carries evaluations from one
	// restart to the next (perturbed bases share most of their stages).
	for i := 0; i <= r.N; i++ {
		src, actions := base, []string(nil)
		if i > 0 {
			var err error
			src, actions, err = randmachine.Perturb(rnd, base, PerturbMoves)
			if err != nil {
				return nil, fmt.Errorf("explore: restart %d perturbation: %w", i, err)
			}
		}
		e.restart = i
		lane := 1 + e.workers + i
		e.obs().SetLaneName(lane, fmt.Sprintf("restart %d", i))
		sp := e.obs().StartSpanLane("restart", lane)
		sp.SetArg("restart", strconv.Itoa(i))
		sp.SetArg("strategy", inner.Name())
		label := "base"
		if i > 0 {
			label = strings.Join(actions, ", ")
			sp.SetArg("perturbation", label)
		}
		e.emit(Event{Kind: "restart", Iter: 0, Action: label,
			Line: fmt.Sprintf("restart %d: %s from %s", i, inner.Name(), label)})
		e.base = src
		res, err := inner.run(e)
		e.base = base
		sp.End()
		if err != nil {
			if i == 0 {
				// The unperturbed base must evaluate; fail like the
				// inner strategy alone would.
				return nil, err
			}
			// A perturbed base can be infeasible for this kernel (e.g. a
			// halved memory the data no longer fits); record and move on.
			e.obs().Counter("explore.restarts.infeasible").Inc()
			e.emit(Event{Kind: "infeasible", Iter: 0, Action: label, Err: err,
				Line: fmt.Sprintf("restart %d: infeasible: %v", i, err)})
			combined.Restarts = append(combined.Restarts, RestartResult{Index: i, Perturbation: label, Err: err})
			continue
		}
		score := e.score(res.Final)
		rr := RestartResult{
			Index:        i,
			Perturbation: label,
			Score:        score,
			Eval:         res.Final,
			Source:       res.FinalSource,
		}
		combined.Restarts = append(combined.Restarts, rr)
		combined.Steps = append(combined.Steps, res.Steps...)
		frontiers = append(frontiers, res.Frontier...)
		if i == 0 {
			combined.Initial = res.Initial
		}
		if bestIdx < 0 || score < combined.Restarts[bestIdx].Score {
			bestIdx = len(combined.Restarts) - 1
		}
		e.emit(Event{Kind: "candidate", Iter: 0, Action: "restart " + strconv.Itoa(i) + " best",
			Score: score, Scored: true, Eval: res.Final,
			Line: fmt.Sprintf("restart %d: best score %.2f (%s)", i, score, oneLine(res.Final))})
	}
	e.restart = 0
	if bestIdx < 0 {
		// Unreachable: restart 0 either succeeded or returned above.
		return nil, fmt.Errorf("explore: no feasible restart")
	}
	best := combined.Restarts[bestIdx]
	combined.Restarts[bestIdx].Winner = true
	combined.Final = best.Eval
	combined.FinalSource = best.Source
	if len(frontiers) > 0 {
		combined.Frontier = mergeFrontiers(frontiers)
	}
	e.emit(Event{Kind: "stop", Iter: 0, Score: best.Score, Scored: true,
		Line: fmt.Sprintf("restarts done: global best %.2f from restart %d", best.Score, best.Index)})
	return combined, nil
}

// RestartResult is one restart's outcome inside a Restarts run.
type RestartResult struct {
	// Index is the restart number (0 = the unperturbed base run).
	Index int
	// Perturbation describes the mutations applied to the base ("base"
	// for restart 0).
	Perturbation string
	// Score is the restart's best objective value.
	Score float64
	// Eval is the restart's best evaluation (nil when Err is set).
	Eval *core.Evaluation
	// Source is the restart's best candidate as ISDL text.
	Source string
	// Winner marks the restart whose best became the run's global
	// Final/FinalSource (exactly one on a successful run; score ties go
	// to the earlier restart).
	Winner bool
	// Err is set when the perturbed base was infeasible for the kernel.
	Err error
}
