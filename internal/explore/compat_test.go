package explore_test

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/machines"
)

// TestExplorerCompatMatchesNew: the deprecated flat-struct Explorer is a
// wrapper over the Config/options API and must produce a Result identical
// to explore.New with the same settings — same final source, same step
// sequence, same scores — on the toy machine.
func TestExplorerCompatMatchesNew(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	const kernel = "var i, s;\ns = 0;\nfor i = 0 to 3 { s = s + i; }\n"
	old := &explore.Explorer{
		Base:     machines.ToySource,
		Kernel:   kernel,
		Weights:  explore.DefaultWeights(),
		MaxIters: 2,
		Workers:  2,
	}
	oldRes, err := old.Run()
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := explore.New(machines.ToySource, kernel,
		explore.WithMaxIters(2),
		explore.WithWorkers(2),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	sameSteps(t, "old Explorer vs explore.New", oldRes, newRes)
	ia, fa := scoreOf(oldRes.Initial), scoreOf(oldRes.Final)
	ib, fb := scoreOf(newRes.Initial), scoreOf(newRes.Final)
	if ia != ib || fa != fb {
		t.Errorf("scores differ: old (%v, %v) vs new (%v, %v)", ia, fa, ib, fb)
	}
	if oldRes.Restarts != nil || newRes.Restarts != nil {
		t.Error("hill-climb runs must not report restart results")
	}
}
