package explore

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// FrontierPoint is one non-dominated design point on the (run time, area,
// power) trade-off curve a Pareto run reports (Result.Frontier). Points
// are ordered by ascending RuntimeUs, so the slice reads as the curve from
// the fastest architecture to the cheapest.
type FrontierPoint struct {
	// Action is the mutation that produced the point ("base" for the
	// starting description).
	Action string
	// Source is the point's canonical ISDL text.
	Source string
	// Eval is the point's full evaluation.
	Eval *core.Evaluation
	// Score is the scalar objective under the run's Weights — reporting
	// only; the frontier itself is selected by dominance, not by Score.
	Score float64
	// Dominated counts the feasible scored candidates of the run this
	// point dominates (its "coverage" of the explored space). Under
	// Restarts the count is relative to the restart that produced the
	// point.
	Dominated int
	// Binding lists the constraints this point consumes at least 95% of
	// ("runtime", "area", "power") — the budgets that effectively pin it.
	Binding []string
}

// dominates reports whether a is no worse than b on every objective —
// run time, area, power, all minimized — and strictly better on at least
// one. Equal points do not dominate each other; the frontier keeps only
// the first of an equal pair (insertion order), so duplicates never
// inflate the curve.
func dominates(a, b *core.Evaluation) bool {
	if a.RuntimeUs > b.RuntimeUs || a.AreaCells > b.AreaCells || a.PowerMW > b.PowerMW {
		return false
	}
	return a.RuntimeUs < b.RuntimeUs || a.AreaCells < b.AreaCells || a.PowerMW < b.PowerMW
}

// sameObjectives reports whether two evaluations are exactly equal on all
// three objectives.
func sameObjectives(a, b *core.Evaluation) bool {
	return a.RuntimeUs == b.RuntimeUs && a.AreaCells == b.AreaCells && a.PowerMW == b.PowerMW
}

// paretoCand is one frontier member during a Pareto run.
type paretoCand struct {
	action string
	src    string
	eval   *core.Evaluation
	score  float64
	// seq is the global insertion sequence, the final determinism
	// tie-break everywhere objective values are exactly equal.
	seq int
}

// insertNonDominated adds cand to the frontier iff no member dominates or
// equals it, removing every member cand dominates. The scan runs in slice
// order and the result depends only on the insertion sequence, never on
// evaluation timing, so the frontier is bit-identical across worker
// counts. Returns the new frontier and whether cand entered.
func insertNonDominated(frontier []paretoCand, cand paretoCand) ([]paretoCand, bool) {
	for _, f := range frontier {
		if dominates(f.eval, cand.eval) || sameObjectives(f.eval, cand.eval) {
			return frontier, false
		}
	}
	kept := frontier[:0]
	for _, f := range frontier {
		if !dominates(cand.eval, f.eval) {
			kept = append(kept, f)
		}
	}
	return append(kept, cand), true
}

// sortFrontier puts the frontier in its canonical order: ascending run
// time, then area, then power, then insertion sequence. Every run and
// worker count sees identical values, so the order is deterministic.
func sortFrontier(frontier []paretoCand) {
	sort.SliceStable(frontier, func(i, j int) bool {
		a, b := frontier[i], frontier[j]
		if a.eval.RuntimeUs != b.eval.RuntimeUs {
			return a.eval.RuntimeUs < b.eval.RuntimeUs
		}
		if a.eval.AreaCells != b.eval.AreaCells {
			return a.eval.AreaCells < b.eval.AreaCells
		}
		if a.eval.PowerMW != b.eval.PowerMW {
			return a.eval.PowerMW < b.eval.PowerMW
		}
		return a.seq < b.seq
	})
}

// truncateCrowding caps the frontier at width members by NSGA-II crowding
// distance: boundary points on each objective are infinitely crowded-out
// protected, interior points keep the largest normalized gap sum, and
// exact distance ties fall back to insertion sequence — a fully
// deterministic rule, so truncation never breaks bit-identity.
func truncateCrowding(frontier []paretoCand, width int) []paretoCand {
	if width <= 0 || len(frontier) <= width {
		return frontier
	}
	dist := make(map[int]float64, len(frontier)) // seq -> crowding distance
	idx := make([]int, len(frontier))
	for i := range frontier {
		idx[i] = i
	}
	for _, obj := range []func(*core.Evaluation) float64{
		func(e *core.Evaluation) float64 { return e.RuntimeUs },
		func(e *core.Evaluation) float64 { return e.AreaCells },
		func(e *core.Evaluation) float64 { return e.PowerMW },
	} {
		sort.SliceStable(idx, func(i, j int) bool {
			a, b := frontier[idx[i]], frontier[idx[j]]
			if obj(a.eval) != obj(b.eval) {
				return obj(a.eval) < obj(b.eval)
			}
			return a.seq < b.seq
		})
		lo, hi := obj(frontier[idx[0]].eval), obj(frontier[idx[len(idx)-1]].eval)
		span := hi - lo
		dist[frontier[idx[0]].seq] = math.Inf(1)
		dist[frontier[idx[len(idx)-1]].seq] = math.Inf(1)
		if span == 0 {
			continue
		}
		for i := 1; i < len(idx)-1; i++ {
			seq := frontier[idx[i]].seq
			if math.IsInf(dist[seq], 1) {
				continue
			}
			gap := (obj(frontier[idx[i+1]].eval) - obj(frontier[idx[i-1]].eval)) / span
			dist[seq] += gap
		}
	}
	byCrowd := append([]paretoCand(nil), frontier...)
	sort.SliceStable(byCrowd, func(i, j int) bool {
		di, dj := dist[byCrowd[i].seq], dist[byCrowd[j].seq]
		if di != dj {
			return di > dj // most isolated first
		}
		return byCrowd[i].seq < byCrowd[j].seq
	})
	kept := byCrowd[:width]
	out := append([]paretoCand(nil), kept...)
	sortFrontier(out)
	return out
}

// mergeFrontiers folds several runs' frontier points (in the order given)
// into one non-dominated set with the same earliest-wins duplicate rule
// as a single run, returned in canonical curve order. Restarts uses it to
// combine per-restart Pareto frontiers.
func mergeFrontiers(pts []FrontierPoint) []FrontierPoint {
	var frontier []paretoCand
	for i, p := range pts {
		frontier, _ = insertNonDominated(frontier, paretoCand{
			action: p.Action, src: p.Source, eval: p.Eval, score: p.Score, seq: i,
		})
	}
	sortFrontier(frontier)
	out := make([]FrontierPoint, len(frontier))
	for i, f := range frontier {
		out[i] = pts[f.seq]
	}
	return out
}

// frontierJSONPoint is the serialized form of one frontier point
// (docs/EXPLORE.md "Frontier output schema").
type frontierJSONPoint struct {
	Action    string   `json:"action"`
	RuntimeUs float64  `json:"runtime_us"`
	AreaCells float64  `json:"area_cells"`
	PowerMW   float64  `json:"power_mw"`
	Cycles    uint64   `json:"cycles"`
	CycleNs   float64  `json:"cycle_ns"`
	EnergyUJ  float64  `json:"energy_uj"`
	Score     float64  `json:"score"`
	Dominated int      `json:"dominated"`
	Binding   []string `json:"binding"`
	Source    string   `json:"source"`
}

// WriteFrontierJSON writes the frontier as a JSON document:
// {"points": [...]} with one object per point carrying the objective
// values, the scalar score under the run's weights, the dominated count,
// the binding constraints and the full ISDL source.
func WriteFrontierJSON(w io.Writer, pts []FrontierPoint) error {
	doc := struct {
		Points []frontierJSONPoint `json:"points"`
	}{Points: make([]frontierJSONPoint, len(pts))}
	for i, p := range pts {
		binding := p.Binding
		if binding == nil {
			binding = []string{}
		}
		doc.Points[i] = frontierJSONPoint{
			Action:    p.Action,
			RuntimeUs: p.Eval.RuntimeUs,
			AreaCells: p.Eval.AreaCells,
			PowerMW:   p.Eval.PowerMW,
			Cycles:    p.Eval.Cycles,
			CycleNs:   p.Eval.CycleNs,
			EnergyUJ:  p.Eval.EnergyUJ,
			Score:     p.Score,
			Dominated: p.Dominated,
			Binding:   binding,
			Source:    p.Source,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFrontierCSV writes the frontier as CSV with a header row. The ISDL
// source is omitted (it is multi-line); binding constraints are joined
// with "|". Column order is fixed and part of the output schema.
func WriteFrontierCSV(w io.Writer, pts []FrontierPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"runtime_us", "area_cells", "power_mw", "cycles", "cycle_ns",
		"energy_uj", "score", "dominated", "binding", "action",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range pts {
		if err := cw.Write([]string{
			f(p.Eval.RuntimeUs), f(p.Eval.AreaCells), f(p.Eval.PowerMW),
			strconv.FormatUint(p.Eval.Cycles, 10), f(p.Eval.CycleNs),
			f(p.Eval.EnergyUJ), f(p.Score), strconv.Itoa(p.Dominated),
			strings.Join(p.Binding, "|"), p.Action,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// frontierLine renders the one-line log form of a frontier point.
func frontierLine(p FrontierPoint) string {
	binding := ""
	if len(p.Binding) > 0 {
		binding = " [" + strings.Join(p.Binding, ",") + "]"
	}
	return fmt.Sprintf("score %8.2f  %s%s  dominates %d  (%s)",
		p.Score, oneLine(p.Eval), binding, p.Dominated, p.Action)
}
