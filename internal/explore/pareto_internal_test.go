package explore

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func ev(runtime, area, power float64) *core.Evaluation {
	return &core.Evaluation{RuntimeUs: runtime, AreaCells: area, PowerMW: power}
}

func TestDominates(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b *core.Evaluation
		want bool
	}{
		{"strictly better everywhere", ev(1, 1, 1), ev(2, 2, 2), true},
		{"better on one axis only", ev(1, 2, 2), ev(2, 2, 2), true},
		{"equal points never dominate", ev(2, 2, 2), ev(2, 2, 2), false},
		{"worse on one axis", ev(1, 3, 1), ev(2, 2, 2), false},
		{"incomparable", ev(1, 3, 1), ev(3, 1, 1), false},
		{"equal on two axes, better on third", ev(2, 2, 1), ev(2, 2, 2), true},
	} {
		if got := dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("%s: dominates = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestInsertNonDominated covers the frontier bookkeeping edge cases: exact
// duplicates collapse to the earliest point, equal-on-one-axis points
// coexist when incomparable, and a dominating insert evicts every point it
// covers.
func TestInsertNonDominated(t *testing.T) {
	var frontier []paretoCand
	add := func(e *core.Evaluation, seq int) bool {
		var ok bool
		frontier, ok = insertNonDominated(frontier, paretoCand{eval: e, seq: seq})
		return ok
	}
	if !add(ev(2, 2, 2), 0) {
		t.Fatal("first point rejected")
	}
	// Exact duplicate: rejected, earliest wins.
	if add(ev(2, 2, 2), 1) {
		t.Error("duplicate point entered the frontier")
	}
	// Equal on one axis, incomparable on the rest: both stay.
	if !add(ev(2, 1, 3), 2) {
		t.Error("incomparable point rejected")
	}
	if len(frontier) != 2 {
		t.Fatalf("frontier size %d, want 2", len(frontier))
	}
	// Dominated insert: rejected.
	if add(ev(3, 2, 2), 3) {
		t.Error("dominated point entered the frontier")
	}
	// Dominating insert: evicts both members.
	if !add(ev(1, 1, 1), 4) {
		t.Error("dominating point rejected")
	}
	if len(frontier) != 1 || frontier[0].seq != 4 {
		t.Fatalf("dominating insert left frontier %+v", frontier)
	}
}

func TestSortFrontierCanonicalOrder(t *testing.T) {
	frontier := []paretoCand{
		{eval: ev(2, 1, 1), seq: 0},
		{eval: ev(1, 3, 1), seq: 1},
		{eval: ev(1, 2, 2), seq: 2},
		{eval: ev(1, 2, 1), seq: 3},
	}
	sortFrontier(frontier)
	want := []int{3, 2, 1, 0} // runtime, then area, then power
	for i, w := range want {
		if frontier[i].seq != w {
			t.Fatalf("position %d: seq %d, want %d (frontier %+v)", i, frontier[i].seq, w, frontier)
		}
	}
}

// TestTruncateCrowding: the cap keeps the objective-space extremes and
// drops the most crowded interior point, deterministically.
func TestTruncateCrowding(t *testing.T) {
	frontier := []paretoCand{
		{eval: ev(1, 10, 1), seq: 0},  // runtime extreme
		{eval: ev(2, 8, 1.1), seq: 1}, // close to seq 0's corner
		{eval: ev(2.1, 7.9, 1.2), seq: 2},
		{eval: ev(6, 5, 2), seq: 3},  // isolated middle
		{eval: ev(10, 1, 3), seq: 4}, // area extreme
	}
	sortFrontier(frontier)
	out := truncateCrowding(frontier, 4)
	if len(out) != 4 {
		t.Fatalf("truncated size %d, want 4", len(out))
	}
	kept := map[int]bool{}
	for _, f := range out {
		kept[f.seq] = true
	}
	for _, extreme := range []int{0, 4} {
		if !kept[extreme] {
			t.Errorf("extreme point seq %d dropped: %v", extreme, kept)
		}
	}
	if !kept[3] {
		t.Errorf("isolated point seq 3 dropped: %v", kept)
	}
	// Unbounded or under-cap: untouched.
	if got := truncateCrowding(frontier, 0); len(got) != len(frontier) {
		t.Error("width 0 must not truncate")
	}
	if got := truncateCrowding(frontier, 10); len(got) != len(frontier) {
		t.Error("width above size must not truncate")
	}
}

// TestConstraintsEdges pins the bound semantics: exactly at the bound is
// feasible (the constraint is <=), just over violates, zero disables.
func TestConstraintsEdges(t *testing.T) {
	c := Constraints{MaxArea: 100, MaxPowerMW: 2}
	if v := c.Violations(ev(1e9, 100, 2)); len(v) != 0 {
		t.Errorf("point exactly at both bounds flagged: %v", v)
	}
	if v := c.Violations(ev(1, 100.0001, 2.0001)); len(v) != 2 || v[0] != "area" || v[1] != "power" {
		t.Errorf("violations = %v, want [area power]", v)
	}
	if v := (Constraints{}).Violations(ev(1e18, 1e18, 1e18)); len(v) != 0 {
		t.Errorf("inactive constraints flagged: %v", v)
	}
	if !c.Active() || (Constraints{}).Active() {
		t.Error("Active() wrong")
	}
	// Binding: >= 95% of a budget.
	if b := c.Binding(ev(1, 96, 1)); len(b) != 1 || b[0] != "area" {
		t.Errorf("binding = %v, want [area]", b)
	}
	if b := c.Binding(ev(1, 94, 1.89)); len(b) != 0 {
		t.Errorf("binding = %v, want none", b)
	}
	// Invalid bounds are rejected before any evaluation runs.
	for _, bad := range []Constraints{
		{MaxArea: math.NaN()},
		{MaxPowerMW: math.Inf(1)},
		{MaxRuntimeUs: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
}

func TestWeightsValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		w    Weights
		ok   bool
	}{
		{"defaults", DefaultWeights(), true},
		{"single axis", Weights{Runtime: 1}, true},
		{"NaN", Weights{Runtime: math.NaN()}, false},
		{"Inf", Weights{Runtime: 1, Area: math.Inf(1)}, false},
		{"negative", Weights{Runtime: 1, Power: -0.1}, false},
		{"all zero", Weights{}, false},
	} {
		err := tc.w.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestScoreCheckedRejectsNonFinite: a NaN anywhere in the objective path
// compares false against every bound (so `s < best` silently rejects
// forever) and makes sort.SliceStable order unpredictably; the engine must
// turn it into an explicit infeasible verdict instead.
func TestScoreCheckedRejectsNonFinite(t *testing.T) {
	e := &engine{cfg: &Config{Weights: DefaultWeights()}}
	if _, err := e.scoreChecked(ev(1, 2, 3)); err != nil {
		t.Fatalf("finite evaluation rejected: %v", err)
	}
	for _, bad := range []*core.Evaluation{
		ev(math.NaN(), 2, 3),
		ev(1, math.NaN(), 3),
		ev(1, 2, math.NaN()),
		ev(math.Inf(1), 2, 3),
		ev(1, math.Inf(-1), 3),
	} {
		if _, err := e.scoreChecked(bad); err == nil {
			t.Errorf("non-finite evaluation %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("verdict %q does not name the non-finite figure", err)
		}
	}
}

// TestMergeFrontiers: restart frontiers fold into one non-dominated set
// with the earliest-wins duplicate rule, in canonical curve order.
func TestMergeFrontiers(t *testing.T) {
	merged := mergeFrontiers([]FrontierPoint{
		{Action: "r0-a", Eval: ev(1, 10, 1)},
		{Action: "r0-b", Eval: ev(5, 5, 1)},
		{Action: "r1-dup", Eval: ev(1, 10, 1)},  // duplicate of r0-a
		{Action: "r1-dom", Eval: ev(4, 4, 0.9)}, // dominates r0-b
		{Action: "r1-worse", Eval: ev(6, 11, 2)},
	})
	if len(merged) != 2 {
		t.Fatalf("merged %d points, want 2: %+v", len(merged), merged)
	}
	if merged[0].Action != "r0-a" || merged[1].Action != "r1-dom" {
		t.Errorf("merged curve = [%s %s], want [r0-a r1-dom]", merged[0].Action, merged[1].Action)
	}
}
