// Package explore implements architecture exploration by iterative
// improvement (paper §1, Figure 1). Each iteration takes the current
// candidate ISDL description, generates neighbours by instruction-set-level
// edits — removing an operation, retiming a functional unit, resizing a
// memory — recompiles the application with the retargetable compiler,
// re-evaluates with the generated simulator and hardware model
// (internal/core), and keeps the best improvement. The loop stops when no
// neighbour improves the objective.
//
// Candidates are materialized as ISDL text (isdl.Format) and re-parsed, so
// every mutation passes the full semantic validation — exactly the paper's
// flow, where the architecture synthesis system outputs an ISDL description
// and every tool is regenerated from it. Changes happen at the granularity
// of a single operation definition, the fine grain §4.1 argues
// parameterized-architecture systems cannot reach.
package explore

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/isdl"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// Weights define the scalar objective (lower is better).
type Weights struct {
	Runtime float64
	Area    float64
	Power   float64
}

// DefaultWeights trade performance against cost the way the paper's
// embedded targets do: run time first, then silicon, then power.
func DefaultWeights() Weights { return Weights{Runtime: 1, Area: 0.5, Power: 0.2} }

// Step records one accepted or rejected exploration move.
type Step struct {
	Iter     int
	Action   string
	Eval     *core.Evaluation
	Score    float64
	Accepted bool
}

// Result is the outcome of an exploration run.
type Result struct {
	Initial *core.Evaluation
	Final   *core.Evaluation
	// FinalSource is the ISDL text of the winning candidate.
	FinalSource string
	Steps       []Step
}

// Explorer drives the loop.
type Explorer struct {
	// Base is the starting ISDL description source.
	Base string
	// Kernel is the application in the compiler's kernel language.
	Kernel string
	// Weights fold an evaluation into the hill-climbing objective.
	Weights Weights
	// Evaluator runs the methodology; nil uses core.NewEvaluator().
	Evaluator *core.Evaluator
	// MaxIters bounds the loop (default 16).
	MaxIters int
	// Workers bounds the number of neighbour candidates evaluated
	// concurrently within one iteration (default runtime.NumCPU()).
	// Results are bit-identical to Workers=1 regardless of completion
	// order: candidates are reduced in move order, so ties break exactly
	// as in the sequential loop.
	Workers int
	// NoCache disables evaluation memoization. By default every pipeline
	// stage of every scored candidate is remembered (content-addressed
	// per-stage keys over canonical ISDL text, kernel and program image;
	// see core.StageCache and docs/PIPELINE.md), so neighbours
	// regenerated across hill-climbing iterations are evaluated once and
	// partial rework (e.g. re-synthesis after a kernel change) is skipped.
	NoCache bool
	// Cache, when non-nil, is used instead of a fresh per-Run cache. Each
	// stage's key covers that stage's true inputs — candidate description
	// (the synthesis stage only its structural fingerprint), kernel,
	// program image — so sharing a cache across runs with different
	// Kernels (or Bases) is sound. The keys do not cover the Evaluator
	// configuration (technology library, synthesis options, instruction
	// limit): share a cache across runs only when that configuration is
	// identical.
	Cache *core.EvalCache
	// Log receives one structured Event per exploration observation: the
	// base score, every scored candidate, infeasible candidates, per-
	// iteration cache statistics, accepted moves and the stop decision.
	// Nil discards. Event.Line always carries the formatted text, so a
	// logger that only wants the classic log prints that. Events are
	// emitted from Run's goroutine, never from evaluation workers.
	Log func(Event)
	// Obs, when non-nil, collects exploration metrics and spans: one span
	// per iteration (lane 0, "explore") and per scored candidate (one
	// lane per worker), counters explore.candidates and
	// explore.moves.accepted / .rejected / .infeasible, the pipeline's
	// per-stage instrumentation (core.Pipeline.Obs) and the stage cache's
	// hit/miss counters (core.StageCache.Bind).
	Obs *obs.Registry
}

// Event is one structured exploration log record. Kind says what
// happened, the typed fields carry what is known at that point, and Line
// always holds the formatted human-readable text (exactly the lines the
// old Log func(string) contract delivered).
type Event struct {
	// Kind is one of "base", "candidate", "infeasible", "cache",
	// "accept", "stop".
	Kind string
	// Iter is the 1-based iteration; 0 for the base evaluation.
	Iter int
	// Action is the mutation that produced the candidate (candidate,
	// infeasible and accept events).
	Action string
	// Score is the objective value (base, candidate and accept events).
	Score float64
	// Accepted marks a candidate that improved on the best-so-far.
	Accepted bool
	// Eval is the candidate's evaluation (base, candidate, accept).
	Eval *core.Evaluation
	// Err says why the candidate was infeasible (infeasible events).
	Err error
	// Line is the formatted log line.
	Line string
}

func (e *Explorer) emit(ev Event) {
	if e.Log != nil {
		e.Log(ev)
	}
}

// Run explores from the base description.
func (e *Explorer) Run() (*Result, error) {
	ev := e.Evaluator
	if ev == nil {
		ev = core.NewEvaluator()
	}
	maxIters := e.MaxIters
	if maxIters <= 0 {
		maxIters = 16
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cache := e.Cache
	if cache == nil && !e.NoCache {
		cache = core.NewEvalCache()
	}
	var stages *core.StageCache
	if cache != nil {
		stages = cache.Stages()
		stages.Bind(e.Obs) // no-op when Obs is nil or already bound
	}
	pipe := &core.Pipeline{Evaluator: ev, Cache: stages, Obs: e.Obs}
	e.Obs.SetLaneName(0, "explore")
	for w := 0; w < workers; w++ {
		e.Obs.SetLaneName(1+w, fmt.Sprintf("worker %d", w))
	}
	// Compiled-op reuse happens below the pipeline, in the process-wide
	// xsim cache; report per-run deltas alongside the stage counters.
	opHits0, opMisses0 := xsim.SharedOpCache().Stats()

	curSrc := e.Base
	baseSpan := e.Obs.StartSpanLane("candidate", 1)
	baseSpan.SetArg("action", "base")
	e.Obs.Counter("explore.candidates").Inc()
	curEval, err := e.evaluate(pipe, curSrc, baseSpan)
	baseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("explore: base candidate: %w", err)
	}
	curScore := e.score(curEval)
	res := &Result{Initial: curEval}
	e.emit(Event{Kind: "base", Score: curScore, Eval: curEval,
		Line: fmt.Sprintf("base: score %.2f (%s)", curScore, oneLine(curEval))})

	for iter := 1; iter <= maxIters; iter++ {
		iterSpan := e.Obs.StartSpan("iteration")
		iterSpan.SetArg("iter", strconv.Itoa(iter))
		moves, err := neighbours(curSrc)
		if err != nil {
			iterSpan.End()
			return nil, err
		}
		outs := e.evaluateAll(pipe, moves, workers, iterSpan)
		bestScore := curScore
		var bestSrc, bestAction string
		var bestEval *core.Evaluation
		// Reduce in move order: acceptance and tie-breaking are identical
		// to the sequential loop no matter how the workers interleaved.
		for i, mv := range moves {
			cand, err := outs[i].eval, outs[i].err
			if err != nil {
				// Infeasible candidate (e.g. the compiler lost an
				// operation it needs): skip.
				e.Obs.Counter("explore.moves.infeasible").Inc()
				e.emit(Event{Kind: "infeasible", Iter: iter, Action: mv.action, Err: err,
					Line: fmt.Sprintf("iter %d: %-28s infeasible: %v", iter, mv.action, err)})
				continue
			}
			s := e.score(cand)
			accepted := s < bestScore
			if accepted {
				e.Obs.Counter("explore.moves.accepted").Inc()
			} else {
				e.Obs.Counter("explore.moves.rejected").Inc()
			}
			res.Steps = append(res.Steps, Step{Iter: iter, Action: mv.action, Eval: cand, Score: s, Accepted: accepted})
			e.emit(Event{Kind: "candidate", Iter: iter, Action: mv.action, Score: s, Accepted: accepted, Eval: cand,
				Line: fmt.Sprintf("iter %d: %-28s score %.2f (%s)", iter, mv.action, s, oneLine(cand))})
			if accepted {
				bestScore, bestSrc, bestAction, bestEval = s, mv.src, mv.action, cand
			}
		}
		if stages != nil {
			opHits, opMisses := xsim.SharedOpCache().Stats()
			e.emit(Event{Kind: "cache", Iter: iter,
				Line: fmt.Sprintf("iter %d: cache %s; op-closures %d reused / %d compiled",
					iter, stages.StatsLine(), opHits-opHits0, opMisses-opMisses0)})
		}
		if bestEval == nil {
			e.emit(Event{Kind: "stop", Iter: iter,
				Line: fmt.Sprintf("iter %d: no improving move; stopping", iter)})
			iterSpan.End()
			break
		}
		e.emit(Event{Kind: "accept", Iter: iter, Action: bestAction, Score: bestScore, Accepted: true, Eval: bestEval,
			Line: fmt.Sprintf("iter %d: ACCEPT %s (score %.2f -> %.2f)", iter, bestAction, curScore, bestScore)})
		iterSpan.SetArg("accepted", bestAction)
		iterSpan.End()
		curSrc, curScore, curEval = bestSrc, bestScore, bestEval
	}
	res.Final = curEval
	res.FinalSource = curSrc
	return res, nil
}

// outcome is one candidate's pipeline result.
type outcome struct {
	eval *core.Evaluation
	err  error
}

// evaluateAll scores every move, fanning out over a bounded worker pool.
// outs[i] always corresponds to moves[i]; completion order never matters.
// Each scored candidate gets a span on its worker's lane, parented to the
// iteration span, so the trace shows the fan-out side by side.
func (e *Explorer) evaluateAll(pipe *core.Pipeline, moves []move, workers int, iterSpan *obs.Span) []outcome {
	outs := make([]outcome, len(moves))
	if workers > len(moves) {
		workers = len(moves)
	}
	scoreOne := func(i, lane int) {
		sp := iterSpan.ChildLane("candidate", lane)
		sp.SetArg("action", moves[i].action)
		e.Obs.Counter("explore.candidates").Inc()
		outs[i].eval, outs[i].err = e.evaluate(pipe, moves[i].src, sp)
		if outs[i].err != nil {
			sp.SetArg("err", outs[i].err.Error())
		}
		sp.End()
	}
	if workers <= 1 {
		for i := range moves {
			scoreOne(i, 1)
		}
		return outs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := range next {
				scoreOne(i, lane)
			}
		}(1 + w)
	}
	for i := range moves {
		next <- i
	}
	close(next)
	wg.Wait()
	return outs
}

func (e *Explorer) score(ev *core.Evaluation) float64 {
	return ev.Score(e.Weights.Runtime, e.Weights.Area, e.Weights.Power)
}

// evaluate runs the staged pipeline (core.Pipeline) for one candidate:
// parse → compile kernel → assemble → simulate → synthesize → combine,
// with every post-parse stage memoized per content-addressed key when the
// pipeline has a cache. The whole-pipeline key is the canonical ISDL text
// (isdl.Format of the parsed candidate) plus the kernel, so the same
// architecture regenerated in a later iteration — or reached through a
// different mutation path — is scored once; partially matching candidates
// (e.g. the same architecture under a changed kernel) still reuse the
// stages whose inputs are unchanged. Deterministic failures (uncompilable
// candidates) are cached too; parse errors are not, since parsing is the
// cheap step and an unparsable text has no canonical form to key by.
// Stage spans of executed stages become children of sp in the trace.
func (e *Explorer) evaluate(pipe *core.Pipeline, src string, sp *obs.Span) (*core.Evaluation, error) {
	return pipe.EvaluateKernelTraced(src, e.Kernel, "kernel", sp)
}

// move is one candidate mutation.
type move struct {
	action string
	src    string
}

// neighbours generates the mutation set of a description.
func neighbours(src string) ([]move, error) {
	base, err := isdl.Parse(src)
	if err != nil {
		return nil, err
	}
	var out []move
	add := func(action string, mutate func(d *isdl.Description) bool) {
		d, err := isdl.Parse(src)
		if err != nil {
			return
		}
		if !mutate(d) {
			return
		}
		text := isdl.Format(d)
		if _, err := isdl.Parse(text); err != nil {
			return // mutation produced an invalid description
		}
		out = append(out, move{action: action, src: text})
	}

	// Remove one operation (never a nop: the assembler and scheduler fill
	// empty VLIW slots with it).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Name == "nop" || len(base.Fields[fi].Ops) == 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("remove "+name, func(d *isdl.Description) bool {
				return removeOp(d, fi, oi)
			})
		}
	}

	// Halve each data memory.
	for _, st := range base.Storage {
		if st.Kind == isdl.StDataMemory && st.Depth >= 64 {
			name := st.Name
			add(fmt.Sprintf("halve %s depth", name), func(d *isdl.Description) bool {
				s := d.StorageByName[name]
				s.Depth /= 2
				return true
			})
		}
	}

	// Retime multi-cycle operations: one pipeline stage fewer (deeper
	// cycle) or one more (shorter cycle, more stalls).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Timing.Latency <= 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("shorten "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency--
				if o.Costs.Stall > 0 {
					o.Costs.Stall--
				}
				return true
			})
			add("deepen "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency++
				o.Costs.Stall++
				return true
			})
		}
	}
	return out, nil
}

// removeOp deletes operation oi from field fi, dropping any constraint that
// mentions it.
func removeOp(d *isdl.Description, fi, oi int) bool {
	f := d.Fields[fi]
	if oi >= len(f.Ops) {
		return false
	}
	op := f.Ops[oi]
	delete(f.ByName, op.Name)
	f.Ops = append(f.Ops[:oi], f.Ops[oi+1:]...)
	kept := d.Constraints[:0]
	for _, c := range d.Constraints {
		if !mentionsOp(c.Expr, f.Name, op.Name) {
			kept = append(kept, c)
		}
	}
	d.Constraints = kept
	return true
}

func mentionsOp(e isdl.CExpr, field, op string) bool {
	switch e := e.(type) {
	case *isdl.CAtom:
		return e.Field == field && e.Op == op
	case *isdl.CNot:
		return mentionsOp(e.X, field, op)
	case *isdl.CBin:
		return mentionsOp(e.X, field, op) || mentionsOp(e.Y, field, op)
	}
	return false
}

func oneLine(e *core.Evaluation) string {
	return fmt.Sprintf("%d cyc × %.1f ns = %.1f us, %.0f cells, %.1f mW",
		e.Cycles, e.CycleNs, e.RuntimeUs, e.AreaCells, e.PowerMW)
}

// Report renders the exploration history.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "initial: %s\n", oneLine(r.Initial))
	for _, s := range r.Steps {
		mark := " "
		if s.Accepted {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s iter %-2d %-30s score %10.2f  %s\n", mark, s.Iter, s.Action, s.Score, oneLine(s.Eval))
	}
	fmt.Fprintf(&sb, "final:   %s\n", oneLine(r.Final))
	return sb.String()
}
