// Package explore implements architecture exploration by iterative
// improvement (paper §1, Figure 1). Each iteration takes the current
// candidate ISDL description, generates neighbours by instruction-set-level
// edits — removing an operation, retiming a functional unit, resizing a
// memory — recompiles the application with the retargetable compiler,
// re-evaluates with the generated simulator and hardware model
// (internal/core), and keeps the best improvement. The loop stops when no
// neighbour improves the objective.
//
// Candidates are materialized as ISDL text (isdl.Format) and re-parsed, so
// every mutation passes the full semantic validation — exactly the paper's
// flow, where the architecture synthesis system outputs an ISDL description
// and every tool is regenerated from it. Changes happen at the granularity
// of a single operation definition, the fine grain §4.1 argues
// parameterized-architecture systems cannot reach.
package explore

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/isdl"
	"repro/internal/xsim"
)

// Weights define the scalar objective (lower is better).
type Weights struct {
	Runtime float64
	Area    float64
	Power   float64
}

// DefaultWeights trade performance against cost the way the paper's
// embedded targets do: run time first, then silicon, then power.
func DefaultWeights() Weights { return Weights{Runtime: 1, Area: 0.5, Power: 0.2} }

// Step records one accepted or rejected exploration move.
type Step struct {
	Iter     int
	Action   string
	Eval     *core.Evaluation
	Score    float64
	Accepted bool
}

// Result is the outcome of an exploration run.
type Result struct {
	Initial *core.Evaluation
	Final   *core.Evaluation
	// FinalSource is the ISDL text of the winning candidate.
	FinalSource string
	Steps       []Step
}

// Explorer drives the loop.
type Explorer struct {
	// Base is the starting ISDL description source.
	Base string
	// Kernel is the application in the compiler's kernel language.
	Kernel string
	// Weights fold an evaluation into the hill-climbing objective.
	Weights Weights
	// Evaluator runs the methodology; nil uses core.NewEvaluator().
	Evaluator *core.Evaluator
	// MaxIters bounds the loop (default 16).
	MaxIters int
	// Workers bounds the number of neighbour candidates evaluated
	// concurrently within one iteration (default runtime.NumCPU()).
	// Results are bit-identical to Workers=1 regardless of completion
	// order: candidates are reduced in move order, so ties break exactly
	// as in the sequential loop.
	Workers int
	// NoCache disables evaluation memoization. By default every pipeline
	// stage of every scored candidate is remembered (content-addressed
	// per-stage keys over canonical ISDL text, kernel and program image;
	// see core.StageCache and docs/PIPELINE.md), so neighbours
	// regenerated across hill-climbing iterations are evaluated once and
	// partial rework (e.g. re-synthesis after a kernel change) is skipped.
	NoCache bool
	// Cache, when non-nil, is used instead of a fresh per-Run cache. The
	// keys cover the candidate description and the kernel, so sharing a
	// cache across runs with different Kernels (or Bases) is sound; only
	// the Evaluator configuration is uncovered — share a cache across
	// runs only if it is identical.
	Cache *core.EvalCache
	// Log receives one line per evaluated candidate; nil discards.
	Log func(string)
}

func (e *Explorer) logf(format string, args ...interface{}) {
	if e.Log != nil {
		e.Log(fmt.Sprintf(format, args...))
	}
}

// Run explores from the base description.
func (e *Explorer) Run() (*Result, error) {
	ev := e.Evaluator
	if ev == nil {
		ev = core.NewEvaluator()
	}
	maxIters := e.MaxIters
	if maxIters <= 0 {
		maxIters = 16
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cache := e.Cache
	if cache == nil && !e.NoCache {
		cache = core.NewEvalCache()
	}
	var stages *core.StageCache
	if cache != nil {
		stages = cache.Stages()
	}
	pipe := &core.Pipeline{Evaluator: ev, Cache: stages}
	// Compiled-op reuse happens below the pipeline, in the process-wide
	// xsim cache; report per-run deltas alongside the stage counters.
	opHits0, opMisses0 := xsim.SharedOpCache().Stats()

	curSrc := e.Base
	curEval, err := e.evaluate(pipe, curSrc)
	if err != nil {
		return nil, fmt.Errorf("explore: base candidate: %w", err)
	}
	curScore := e.score(curEval)
	res := &Result{Initial: curEval}
	e.logf("base: score %.2f (%s)", curScore, oneLine(curEval))

	for iter := 1; iter <= maxIters; iter++ {
		moves, err := neighbours(curSrc)
		if err != nil {
			return nil, err
		}
		outs := e.evaluateAll(pipe, moves, workers)
		bestScore := curScore
		var bestSrc, bestAction string
		var bestEval *core.Evaluation
		// Reduce in move order: acceptance and tie-breaking are identical
		// to the sequential loop no matter how the workers interleaved.
		for i, mv := range moves {
			cand, err := outs[i].eval, outs[i].err
			if err != nil {
				// Infeasible candidate (e.g. the compiler lost an
				// operation it needs): skip.
				e.logf("iter %d: %-28s infeasible: %v", iter, mv.action, err)
				continue
			}
			s := e.score(cand)
			accepted := s < bestScore
			res.Steps = append(res.Steps, Step{Iter: iter, Action: mv.action, Eval: cand, Score: s, Accepted: accepted})
			e.logf("iter %d: %-28s score %.2f (%s)", iter, mv.action, s, oneLine(cand))
			if accepted {
				bestScore, bestSrc, bestAction, bestEval = s, mv.src, mv.action, cand
			}
		}
		if stages != nil {
			opHits, opMisses := xsim.SharedOpCache().Stats()
			e.logf("iter %d: cache %s; op-closures %d reused / %d compiled",
				iter, stages.StatsLine(), opHits-opHits0, opMisses-opMisses0)
		}
		if bestEval == nil {
			e.logf("iter %d: no improving move; stopping", iter)
			break
		}
		e.logf("iter %d: ACCEPT %s (score %.2f -> %.2f)", iter, bestAction, curScore, bestScore)
		curSrc, curScore, curEval = bestSrc, bestScore, bestEval
	}
	res.Final = curEval
	res.FinalSource = curSrc
	return res, nil
}

// outcome is one candidate's pipeline result.
type outcome struct {
	eval *core.Evaluation
	err  error
}

// evaluateAll scores every move, fanning out over a bounded worker pool.
// outs[i] always corresponds to moves[i]; completion order never matters.
func (e *Explorer) evaluateAll(pipe *core.Pipeline, moves []move, workers int) []outcome {
	outs := make([]outcome, len(moves))
	if workers > len(moves) {
		workers = len(moves)
	}
	if workers <= 1 {
		for i := range moves {
			outs[i].eval, outs[i].err = e.evaluate(pipe, moves[i].src)
		}
		return outs
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outs[i].eval, outs[i].err = e.evaluate(pipe, moves[i].src)
			}
		}()
	}
	for i := range moves {
		next <- i
	}
	close(next)
	wg.Wait()
	return outs
}

func (e *Explorer) score(ev *core.Evaluation) float64 {
	return ev.Score(e.Weights.Runtime, e.Weights.Area, e.Weights.Power)
}

// evaluate runs the staged pipeline (core.Pipeline) for one candidate:
// parse → compile kernel → assemble → simulate → synthesize → combine,
// with every post-parse stage memoized per content-addressed key when the
// pipeline has a cache. The whole-pipeline key is the canonical ISDL text
// (isdl.Format of the parsed candidate) plus the kernel, so the same
// architecture regenerated in a later iteration — or reached through a
// different mutation path — is scored once; partially matching candidates
// (e.g. the same architecture under a changed kernel) still reuse the
// stages whose inputs are unchanged. Deterministic failures (uncompilable
// candidates) are cached too; parse errors are not, since parsing is the
// cheap step and an unparsable text has no canonical form to key by.
func (e *Explorer) evaluate(pipe *core.Pipeline, src string) (*core.Evaluation, error) {
	return pipe.EvaluateKernel(src, e.Kernel, "kernel")
}

// move is one candidate mutation.
type move struct {
	action string
	src    string
}

// neighbours generates the mutation set of a description.
func neighbours(src string) ([]move, error) {
	base, err := isdl.Parse(src)
	if err != nil {
		return nil, err
	}
	var out []move
	add := func(action string, mutate func(d *isdl.Description) bool) {
		d, err := isdl.Parse(src)
		if err != nil {
			return
		}
		if !mutate(d) {
			return
		}
		text := isdl.Format(d)
		if _, err := isdl.Parse(text); err != nil {
			return // mutation produced an invalid description
		}
		out = append(out, move{action: action, src: text})
	}

	// Remove one operation (never a nop: the assembler and scheduler fill
	// empty VLIW slots with it).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Name == "nop" || len(base.Fields[fi].Ops) == 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("remove "+name, func(d *isdl.Description) bool {
				return removeOp(d, fi, oi)
			})
		}
	}

	// Halve each data memory.
	for _, st := range base.Storage {
		if st.Kind == isdl.StDataMemory && st.Depth >= 64 {
			name := st.Name
			add(fmt.Sprintf("halve %s depth", name), func(d *isdl.Description) bool {
				s := d.StorageByName[name]
				s.Depth /= 2
				return true
			})
		}
	}

	// Retime multi-cycle operations: one pipeline stage fewer (deeper
	// cycle) or one more (shorter cycle, more stalls).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Timing.Latency <= 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("shorten "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency--
				if o.Costs.Stall > 0 {
					o.Costs.Stall--
				}
				return true
			})
			add("deepen "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency++
				o.Costs.Stall++
				return true
			})
		}
	}
	return out, nil
}

// removeOp deletes operation oi from field fi, dropping any constraint that
// mentions it.
func removeOp(d *isdl.Description, fi, oi int) bool {
	f := d.Fields[fi]
	if oi >= len(f.Ops) {
		return false
	}
	op := f.Ops[oi]
	delete(f.ByName, op.Name)
	f.Ops = append(f.Ops[:oi], f.Ops[oi+1:]...)
	kept := d.Constraints[:0]
	for _, c := range d.Constraints {
		if !mentionsOp(c.Expr, f.Name, op.Name) {
			kept = append(kept, c)
		}
	}
	d.Constraints = kept
	return true
}

func mentionsOp(e isdl.CExpr, field, op string) bool {
	switch e := e.(type) {
	case *isdl.CAtom:
		return e.Field == field && e.Op == op
	case *isdl.CNot:
		return mentionsOp(e.X, field, op)
	case *isdl.CBin:
		return mentionsOp(e.X, field, op) || mentionsOp(e.Y, field, op)
	}
	return false
}

func oneLine(e *core.Evaluation) string {
	return fmt.Sprintf("%d cyc × %.1f ns = %.1f us, %.0f cells, %.1f mW",
		e.Cycles, e.CycleNs, e.RuntimeUs, e.AreaCells, e.PowerMW)
}

// Report renders the exploration history.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "initial: %s\n", oneLine(r.Initial))
	for _, s := range r.Steps {
		mark := " "
		if s.Accepted {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s iter %-2d %-30s score %10.2f  %s\n", mark, s.Iter, s.Action, s.Score, oneLine(s.Eval))
	}
	fmt.Fprintf(&sb, "final:   %s\n", oneLine(r.Final))
	return sb.String()
}
