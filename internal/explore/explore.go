// Package explore implements architecture exploration by iterative
// improvement (paper §1, Figure 1). Each iteration takes the current
// candidate ISDL description(s), generates neighbours by instruction-set-
// level edits — removing an operation, retiming a functional unit, resizing
// a memory — recompiles the application with the retargetable compiler,
// re-evaluates with the generated simulator and hardware model
// (internal/core), and keeps the best candidates according to the
// configured search Strategy: HillClimb (the paper's loop — accept the
// best improving move, stop at the first local optimum), Beam (keep a
// top-K frontier alive per iteration), Pareto (keep the non-dominated
// (run time, area, power) frontier under optional hard constraints — one
// run answers every weighting) or Restarts (re-run an inner strategy from
// seeded random perturbations of the base).
//
// The entry point is New with functional options:
//
//	res, err := explore.New(base, kernel,
//	        explore.WithBeam(4),
//	        explore.WithRestarts(3, 1),
//	        explore.WithWorkers(8)).Run()
//
// Candidates are materialized as ISDL text (isdl.Format) and re-parsed, so
// every mutation passes the full semantic validation — exactly the paper's
// flow, where the architecture synthesis system outputs an ISDL description
// and every tool is regenerated from it. Changes happen at the granularity
// of a single operation definition, the fine grain §4.1 argues
// parameterized-architecture systems cannot reach. Whatever the strategy
// and worker count, results are bit-identical: candidates are evaluated by
// a bounded pool but reduced in move order.
package explore

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/isdl"
	"repro/internal/obs"
)

// Weights define the scalar objective (lower is better).
type Weights struct {
	Runtime float64
	Area    float64
	Power   float64
}

// DefaultWeights trade performance against cost the way the paper's
// embedded targets do: run time first, then silicon, then power.
func DefaultWeights() Weights { return Weights{Runtime: 1, Area: 0.5, Power: 0.2} }

// Validate rejects weights that produce a meaningless objective: NaN or
// infinite components poison every score comparison (NaN compares false
// against everything, so nothing is ever "accepted"), negative weights
// reward cost, and all-zero weights score every candidate 0.0. Config.Run
// calls this before exploring; cmd/explore checks at flag-parse time.
func (w Weights) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{{"runtime", w.Runtime}, {"area", w.Area}, {"power", w.Power}} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("explore: invalid %s weight %v (must be finite)", c.name, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("explore: invalid %s weight %v (must be >= 0)", c.name, c.v)
		}
	}
	if w.Runtime == 0 && w.Area == 0 && w.Power == 0 {
		return fmt.Errorf("explore: all-zero weights score every candidate 0.0; set at least one weight > 0")
	}
	return nil
}

// Step records one accepted or rejected exploration move.
type Step struct {
	Iter int
	// Restart is the restart the step belongs to (0 outside Restarts).
	Restart  int
	Action   string
	Eval     *core.Evaluation
	Score    float64
	Accepted bool
	// Infeasible, when non-empty, says why a scored candidate could not
	// be accepted regardless of its Score — e.g. "constraint: area,
	// power" for a Pareto candidate over a hard bound. Accepted is always
	// false for such steps.
	Infeasible string
}

// Result is the outcome of an exploration run.
type Result struct {
	Initial *core.Evaluation
	Final   *core.Evaluation
	// FinalSource is the ISDL text of the winning candidate.
	FinalSource string
	Steps       []Step
	// Restarts reports each restart's best when the run used the Restarts
	// strategy (nil otherwise). Final/FinalSource are the global winner.
	Restarts []RestartResult
	// Frontier is the non-dominated (run time, area, power) trade-off
	// curve when the run used the Pareto strategy (nil otherwise), in
	// ascending-runtime order. Final/FinalSource then hold the scalar-best
	// frontier point under the run's Weights.
	Frontier []FrontierPoint
}

// Event is one structured exploration log record. Kind says what
// happened, the typed fields carry what is known at that point, and Line
// always holds the formatted human-readable text (exactly the lines the
// old Log func(string) contract delivered).
type Event struct {
	// Kind is one of "base", "candidate", "infeasible", "cache",
	// "accept", "frontier", "restart", "stop".
	Kind string
	// Iter is the 1-based iteration; 0 for the base evaluation and for
	// restart-level events.
	Iter int
	// Restart is the restart the event belongs to (0 outside Restarts).
	Restart int
	// Action is the mutation that produced the candidate (candidate,
	// infeasible and accept events) or the perturbation (restart events).
	Action string
	// Score is the objective value. It is meaningful only when Scored is
	// true: a candidate the pipeline rejected has no score, and its zero
	// Score must not be read as "free" by JSON log consumers. An
	// infeasible event with Scored true is a Pareto candidate that
	// evaluated fine but violates a hard constraint (Err says which).
	Score float64
	// Scored reports whether Score carries a real objective value (base,
	// candidate and accept events).
	Scored bool
	// Accepted marks a candidate that improved on the best-so-far.
	Accepted bool
	// Eval is the candidate's evaluation (base, candidate, accept).
	Eval *core.Evaluation
	// Err says why the candidate was infeasible (infeasible events).
	Err error
	// Frontier lists the surviving frontier's scalar scores (frontier
	// events): best first under Beam, canonical curve order (ascending
	// run time) under Pareto.
	Frontier []float64
	// Line is the formatted log line.
	Line string
}

// Explorer is the original flat-struct exploration API.
//
// Deprecated: use New with functional options (WithWorkers, WithBeam,
// WithRestarts, ...), which reaches the beam and restart strategies this
// struct predates. Explorer remains for one release of grace as a thin
// wrapper over Config and produces results identical to
// New(base, kernel, WithWeights(e.Weights), ...).Run() with a HillClimb
// strategy. A zero-value Weights defaults to DefaultWeights() exactly like
// New (it used to score every candidate 0.0, the all-zero shape
// Weights.Validate now rejects).
type Explorer struct {
	// Base is the starting ISDL description source.
	Base string
	// Kernel is the application in the compiler's kernel language.
	Kernel string
	// Weights fold an evaluation into the hill-climbing objective.
	Weights Weights
	// Evaluator runs the methodology; nil uses core.NewEvaluator().
	Evaluator *core.Evaluator
	// MaxIters bounds the loop (default 16).
	MaxIters int
	// Workers bounds the number of neighbour candidates evaluated
	// concurrently within one iteration (default runtime.NumCPU()).
	Workers int
	// NoCache disables evaluation memoization.
	NoCache bool
	// Cache, when non-nil, is used instead of a fresh per-Run cache.
	Cache *core.EvalCache
	// Log receives one structured Event per exploration observation.
	Log func(Event)
	// Obs, when non-nil, collects exploration metrics and spans.
	Obs *obs.Registry
}

// Run explores from the base description by hill climbing.
func (e *Explorer) Run() (*Result, error) {
	w := e.Weights
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	cfg := &Config{
		Base:      e.Base,
		Kernel:    e.Kernel,
		Weights:   w,
		Evaluator: e.Evaluator,
		MaxIters:  e.MaxIters,
		Workers:   e.Workers,
		NoCache:   e.NoCache,
		Cache:     e.Cache,
		Log:       e.Log,
		Obs:       e.Obs,
		Strategy:  HillClimb{},
	}
	return cfg.Run()
}

// move is one candidate mutation.
type move struct {
	action string
	src    string
}

// neighbours generates the mutation set of a description. Every move's
// src is canonical ISDL text (isdl.Format of the mutated description), so
// equal architectures reached through different paths compare equal as
// strings.
func neighbours(src string) ([]move, error) {
	base, err := isdl.Parse(src)
	if err != nil {
		return nil, err
	}
	var out []move
	add := func(action string, mutate func(d *isdl.Description) bool) {
		d, err := isdl.Parse(src)
		if err != nil {
			return
		}
		if !mutate(d) {
			return
		}
		text := isdl.Format(d)
		if _, err := isdl.Parse(text); err != nil {
			return // mutation produced an invalid description
		}
		out = append(out, move{action: action, src: text})
	}

	// Remove one operation (never a nop: the assembler and scheduler fill
	// empty VLIW slots with it).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Name == "nop" || len(base.Fields[fi].Ops) == 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("remove "+name, func(d *isdl.Description) bool {
				return removeOp(d, fi, oi)
			})
		}
	}

	// Halve each data memory.
	for _, st := range base.Storage {
		if st.Kind == isdl.StDataMemory && st.Depth >= 64 {
			name := st.Name
			add(fmt.Sprintf("halve %s depth", name), func(d *isdl.Description) bool {
				s := d.StorageByName[name]
				s.Depth /= 2
				return true
			})
		}
	}

	// Retime multi-cycle operations: one pipeline stage fewer (deeper
	// cycle) or one more (shorter cycle, more stalls).
	for fi := range base.Fields {
		for oi := range base.Fields[fi].Ops {
			op := base.Fields[fi].Ops[oi]
			if op.Timing.Latency <= 1 {
				continue
			}
			name := op.QualName()
			fi, oi := fi, oi
			add("shorten "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency--
				if o.Costs.Stall > 0 {
					o.Costs.Stall--
				}
				return true
			})
			add("deepen "+name+" pipeline", func(d *isdl.Description) bool {
				o := d.Fields[fi].Ops[oi]
				o.Timing.Latency++
				o.Costs.Stall++
				return true
			})
		}
	}
	return out, nil
}

// removeOp deletes operation oi from field fi, dropping any constraint that
// mentions it.
func removeOp(d *isdl.Description, fi, oi int) bool {
	f := d.Fields[fi]
	if oi >= len(f.Ops) {
		return false
	}
	op := f.Ops[oi]
	delete(f.ByName, op.Name)
	f.Ops = append(f.Ops[:oi], f.Ops[oi+1:]...)
	kept := d.Constraints[:0]
	for _, c := range d.Constraints {
		if !mentionsOp(c.Expr, f.Name, op.Name) {
			kept = append(kept, c)
		}
	}
	d.Constraints = kept
	return true
}

func mentionsOp(e isdl.CExpr, field, op string) bool {
	switch e := e.(type) {
	case *isdl.CAtom:
		return e.Field == field && e.Op == op
	case *isdl.CNot:
		return mentionsOp(e.X, field, op)
	case *isdl.CBin:
		return mentionsOp(e.X, field, op) || mentionsOp(e.Y, field, op)
	}
	return false
}

func oneLine(e *core.Evaluation) string {
	return fmt.Sprintf("%d cyc × %.1f ns = %.1f us, %.0f cells, %.1f mW",
		e.Cycles, e.CycleNs, e.RuntimeUs, e.AreaCells, e.PowerMW)
}

// Report renders the exploration history.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "initial: %s\n", oneLine(r.Initial))
	for _, s := range r.Steps {
		mark := " "
		if s.Accepted {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s iter %-2d %-30s score %10.2f  %s\n", mark, s.Iter, s.Action, s.Score, oneLine(s.Eval))
	}
	for _, rr := range r.Restarts {
		if rr.Err != nil {
			fmt.Fprintf(&sb, "restart %d (%s): infeasible: %v\n", rr.Index, rr.Perturbation, rr.Err)
			continue
		}
		mark := ""
		if rr.Winner {
			mark = "  <- winner"
		}
		fmt.Fprintf(&sb, "restart %d (%s): best score %.2f  %s%s\n", rr.Index, rr.Perturbation, rr.Score, oneLine(rr.Eval), mark)
	}
	if len(r.Frontier) > 0 {
		fmt.Fprintf(&sb, "frontier (%d non-dominated points, fastest first):\n", len(r.Frontier))
		for i, p := range r.Frontier {
			fmt.Fprintf(&sb, "  %2d. %s\n", i+1, frontierLine(p))
		}
	}
	fmt.Fprintf(&sb, "final:   %s\n", oneLine(r.Final))
	return sb.String()
}
