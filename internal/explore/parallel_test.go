package explore_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machines"
)

// runConfig runs one exploration of SPAM with the given concurrency/cache
// knobs over a small kernel that leaves removable operations on the table.
func runConfig(t *testing.T, workers int, noCache bool) (*explore.Result, []string) {
	t.Helper()
	var lines []string
	ex := &explore.Explorer{
		Base:     machines.SPAMSource,
		Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
		Weights:  explore.DefaultWeights(),
		MaxIters: 3,
		Workers:  workers,
		NoCache:  noCache,
		Log:      func(s string) { lines = append(lines, s) },
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, lines
}

// sameResult asserts two exploration runs are bit-identical where the
// engine promises determinism: final source, scores, and the step set.
func sameResult(t *testing.T, name string, a, b *explore.Result) {
	t.Helper()
	if a.FinalSource != b.FinalSource {
		t.Errorf("%s: FinalSource differs", name)
	}
	w := explore.DefaultWeights()
	score := func(r *explore.Result) (float64, float64) {
		return r.Initial.Score(w.Runtime, w.Area, w.Power), r.Final.Score(w.Runtime, w.Area, w.Power)
	}
	ai, af := score(a)
	bi, bf := score(b)
	if ai != bi || af != bf {
		t.Errorf("%s: scores differ: (%v, %v) vs (%v, %v)", name, ai, af, bi, bf)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: step counts differ: %d vs %d", name, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Iter != sb.Iter || sa.Action != sb.Action || sa.Score != sb.Score || sa.Accepted != sb.Accepted {
			t.Errorf("%s: step %d differs: %+v vs %+v", name, i, sa, sb)
		}
		if sa.Eval.Cycles != sb.Eval.Cycles || sa.Eval.AreaCells != sb.Eval.AreaCells || sa.Eval.PowerMW != sb.Eval.PowerMW {
			t.Errorf("%s: step %d evaluation differs", name, i)
		}
	}
}

// TestExploreParallelDeterministic: concurrent neighbour evaluation and the
// memoizing cache must not change the exploration outcome — parallel runs
// are bit-identical to Workers=1, cached runs to uncached ones.
func TestExploreParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	seq, _ := runConfig(t, 1, true)
	for _, tc := range []struct {
		name    string
		workers int
		noCache bool
	}{
		{"workers=1+cache", 1, false},
		{"workers=4", 4, true},
		{"workers=4+cache", 4, false},
		{"workers=32", 32, false},
	} {
		res, _ := runConfig(t, tc.workers, tc.noCache)
		sameResult(t, tc.name, seq, res)
	}
}

// TestExploreSharedCacheAcrossRuns: weights fold an evaluation into the
// objective *after* the pipeline, so a weight sweep over the same base and
// kernel can share one cache — the second run's candidates should be
// overwhelmingly hits.
func TestExploreSharedCacheAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cache := core.NewEvalCache()
	run := func(w explore.Weights) {
		ex := &explore.Explorer{
			Base:     machines.SPAMSource,
			Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
			Weights:  w,
			MaxIters: 2,
			Workers:  2,
			Cache:    cache,
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(explore.Weights{Runtime: 1, Area: 0.5, Power: 0.2})
	h1, m1 := cache.Stats()
	run(explore.Weights{Runtime: 1, Area: 5, Power: 0.2})
	h2, m2 := cache.Stats()
	newHits, newMisses := h2-h1, m2-m1
	if newHits <= newMisses {
		t.Errorf("weight-sweep run: %d hits / %d misses, want mostly hits", newHits, newMisses)
	}
}

// TestExploreCacheHitsAcrossIterations: the hill climb revisits equivalent
// architectures across iterations (e.g. the inverse of an accepted retiming
// move regenerates the previous candidate), so a multi-iteration run must
// report cache hits in the exploration log.
func TestExploreCacheHitsAcrossIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	_, lines := runConfig(t, 4, false)
	var cacheLines []string
	for _, l := range lines {
		if strings.Contains(l, "cache") {
			cacheLines = append(cacheLines, l)
		}
	}
	if len(cacheLines) == 0 {
		t.Fatal("no cache statistics in the exploration log")
	}
	last := cacheLines[len(cacheLines)-1]
	for _, stage := range []string{"parse", "compile", "assemble", "simulate", "synthesize", "combine"} {
		if !strings.Contains(last, stage) {
			t.Errorf("per-stage cache line misses stage %q: %q", stage, last)
		}
	}
	if strings.Contains(last, "combine 0/") {
		t.Errorf("expected cross-iteration whole-pipeline hits, got %q", last)
	}
}
