package explore_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/machines"
	"repro/internal/obs"
)

// runConfig runs one exploration of SPAM with the given concurrency/cache
// knobs over a small kernel that leaves removable operations on the table.
func runConfig(t *testing.T, workers int, noCache bool) (*explore.Result, []string) {
	t.Helper()
	var lines []string
	ex := &explore.Explorer{
		Base:     machines.SPAMSource,
		Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
		Weights:  explore.DefaultWeights(),
		MaxIters: 3,
		Workers:  workers,
		NoCache:  noCache,
		Log:      func(ev explore.Event) { lines = append(lines, ev.Line) },
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, lines
}

// sameResult asserts two exploration runs are bit-identical where the
// engine promises determinism: final source, scores, and the step set.
func sameResult(t *testing.T, name string, a, b *explore.Result) {
	t.Helper()
	if a.FinalSource != b.FinalSource {
		t.Errorf("%s: FinalSource differs", name)
	}
	w := explore.DefaultWeights()
	score := func(r *explore.Result) (float64, float64) {
		return r.Initial.Score(w.Runtime, w.Area, w.Power), r.Final.Score(w.Runtime, w.Area, w.Power)
	}
	ai, af := score(a)
	bi, bf := score(b)
	if ai != bi || af != bf {
		t.Errorf("%s: scores differ: (%v, %v) vs (%v, %v)", name, ai, af, bi, bf)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: step counts differ: %d vs %d", name, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Iter != sb.Iter || sa.Action != sb.Action || sa.Score != sb.Score || sa.Accepted != sb.Accepted {
			t.Errorf("%s: step %d differs: %+v vs %+v", name, i, sa, sb)
		}
		if sa.Eval.Cycles != sb.Eval.Cycles || sa.Eval.AreaCells != sb.Eval.AreaCells || sa.Eval.PowerMW != sb.Eval.PowerMW {
			t.Errorf("%s: step %d evaluation differs", name, i)
		}
	}
}

// TestExploreParallelDeterministic: concurrent neighbour evaluation and the
// memoizing cache must not change the exploration outcome — parallel runs
// are bit-identical to Workers=1, cached runs to uncached ones.
func TestExploreParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	seq, _ := runConfig(t, 1, true)
	for _, tc := range []struct {
		name    string
		workers int
		noCache bool
	}{
		{"workers=1+cache", 1, false},
		{"workers=4", 4, true},
		{"workers=4+cache", 4, false},
		{"workers=32", 32, false},
	} {
		res, _ := runConfig(t, tc.workers, tc.noCache)
		sameResult(t, tc.name, seq, res)
	}
}

// TestExploreSharedCacheAcrossRuns: weights fold an evaluation into the
// objective *after* the pipeline, so a weight sweep over the same base and
// kernel can share one cache — the second run's candidates should be
// overwhelmingly hits.
func TestExploreSharedCacheAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	cache := core.NewEvalCache()
	run := func(w explore.Weights) {
		ex := &explore.Explorer{
			Base:     machines.SPAMSource,
			Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
			Weights:  w,
			MaxIters: 2,
			Workers:  2,
			Cache:    cache,
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run(explore.Weights{Runtime: 1, Area: 0.5, Power: 0.2})
	h1, m1 := cache.Stats()
	run(explore.Weights{Runtime: 1, Area: 5, Power: 0.2})
	h2, m2 := cache.Stats()
	newHits, newMisses := h2-h1, m2-m1
	if newHits <= newMisses {
		t.Errorf("weight-sweep run: %d hits / %d misses, want mostly hits", newHits, newMisses)
	}
}

// TestExploreInstrumentedExactCounters (runs under -race in CI): parallel
// exploration over a shared obs.Registry must lose no increments — the
// concurrently-bumped counters must agree exactly with the event stream,
// which Run emits race-free from its own goroutine — and instrumentation
// must not change the outcome: results stay bit-identical to an
// uninstrumented run.
func TestExploreInstrumentedExactCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	plain, _ := runConfig(t, 8, false)

	reg := obs.NewRegistry()
	var events []explore.Event
	ex := &explore.Explorer{
		Base:     machines.SPAMSource,
		Kernel:   "var i, s;\ns = 0;\nfor i = 0 to 7 { s = s + i; }\n",
		Weights:  explore.DefaultWeights(),
		MaxIters: 3,
		Workers:  8,
		Obs:      reg,
		Log:      func(ev explore.Event) { events = append(events, ev) },
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "instrumented", plain, res)

	byKind := map[string]uint64{}
	for _, ev := range events {
		byKind[ev.Kind]++
	}
	c := reg.Counters()
	// Every evaluated candidate (the base plus each neighbour) increments
	// explore.candidates from a worker goroutine.
	wantCandidates := 1 + byKind["candidate"] + byKind["infeasible"]
	if c["explore.candidates"] != wantCandidates {
		t.Errorf("explore.candidates = %d, want %d", c["explore.candidates"], wantCandidates)
	}
	var accepted, rejected uint64
	for _, s := range res.Steps {
		if s.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	if c["explore.moves.accepted"] != accepted {
		t.Errorf("explore.moves.accepted = %d, want %d", c["explore.moves.accepted"], accepted)
	}
	if c["explore.moves.rejected"] != rejected {
		t.Errorf("explore.moves.rejected = %d, want %d", c["explore.moves.rejected"], rejected)
	}
	if c["explore.moves.infeasible"] != byKind["infeasible"] {
		t.Errorf("explore.moves.infeasible = %d, want %d", c["explore.moves.infeasible"], byKind["infeasible"])
	}

	// The pipeline, stage cache and simulator report through the same
	// registry.
	if reg.Histograms()["stage.simulate.ns"].Count == 0 {
		t.Error("no simulate-stage latency observations")
	}
	if c["xsim.instructions"] == 0 {
		t.Error("no simulator perf counters published")
	}
	if c["cache.combine.misses"] == 0 {
		t.Error("stage-cache counters not bound into the registry")
	}

	// Spans: one per iteration (the cache event count is the iteration
	// count) and one per evaluated candidate.
	spanCount := map[string]uint64{}
	for _, s := range reg.Spans() {
		spanCount[s.Name]++
	}
	if spanCount["candidate"] != wantCandidates {
		t.Errorf("candidate spans = %d, want %d", spanCount["candidate"], wantCandidates)
	}
	if spanCount["iteration"] != byKind["cache"] {
		t.Errorf("iteration spans = %d, want %d", spanCount["iteration"], byKind["cache"])
	}
}

// TestExploreCacheHitsAcrossIterations: the hill climb revisits equivalent
// architectures across iterations (e.g. the inverse of an accepted retiming
// move regenerates the previous candidate), so a multi-iteration run must
// report cache hits in the exploration log.
func TestExploreCacheHitsAcrossIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("exploration loop is slow")
	}
	_, lines := runConfig(t, 4, false)
	var cacheLines []string
	for _, l := range lines {
		if strings.Contains(l, "cache") {
			cacheLines = append(cacheLines, l)
		}
	}
	if len(cacheLines) == 0 {
		t.Fatal("no cache statistics in the exploration log")
	}
	last := cacheLines[len(cacheLines)-1]
	for _, stage := range []string{"parse", "compile", "assemble", "simulate", "synthesize", "combine"} {
		if !strings.Contains(last, stage) {
			t.Errorf("per-stage cache line misses stage %q: %q", stage, last)
		}
	}
	if strings.Contains(last, "combine 0/") {
		t.Errorf("expected cross-iteration whole-pipeline hits, got %q", last)
	}
}
