package verilog_test

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/verilog"
)

// counterSrc is a small sequential design: an enabled counter with a
// combinational comparator output.
const counterSrc = `
// generated test design
module counter (
  clk,
  en,
  count,
  atmax
);
  input clk;
  input en;
  output [7:0] count;
  output atmax;

  reg [7:0] cnt;
  wire [7:0] next;

  assign next = (cnt + 8'h01);
  assign count = cnt;
  assign atmax = (cnt == 8'hff);

  always @(posedge clk) begin
    if (en) begin
      cnt <= next;
    end
  end
endmodule
`

func parse(t *testing.T, src string) *verilog.Module {
	t.Helper()
	m, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseCounter(t *testing.T) {
	m := parse(t, counterSrc)
	if m.Name != "counter" || len(m.Ports) != 4 || len(m.Assigns) != 3 || len(m.Always) != 1 {
		t.Fatalf("module shape: %+v", m)
	}
	w, depth, ok := m.NetByName("cnt")
	if !ok || w != 8 || depth != 0 {
		t.Fatalf("cnt: %d %d %v", w, depth, ok)
	}
}

func TestEmitParseFixpoint(t *testing.T) {
	m := parse(t, counterSrc)
	text1 := verilog.Emit(m)
	m2 := parse(t, text1)
	text2 := verilog.Emit(m2)
	if text1 != text2 {
		t.Fatalf("emit→parse→emit not a fixpoint:\n%s\n---\n%s", text1, text2)
	}
}

func TestSimCounter(t *testing.T) {
	m := parse(t, counterSrc)
	sim, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("en", bitvec.FromUint64(1, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sim.Tick("clk"); err != nil {
			t.Fatal(err)
		}
	}
	v, err := sim.Get("count")
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() != 10 {
		t.Fatalf("count = %d, want 10", v.Uint64())
	}
	// Disable: no further counting.
	if err := sim.SetInput("en", bitvec.New(1)); err != nil {
		t.Fatal(err)
	}
	if err := sim.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	v, _ = sim.Get("count")
	if v.Uint64() != 10 {
		t.Fatalf("count after disable = %d", v.Uint64())
	}
	if sim.Events() == 0 {
		t.Fatal("no events counted")
	}
}

const memSrc = `
module memdut (
  clk,
  we,
  addr,
  din,
  dout
);
  input clk;
  input we;
  input [3:0] addr;
  input [7:0] din;
  output [7:0] dout;

  reg [7:0] mem [0:15];

  assign dout = mem[addr];

  always @(posedge clk) begin
    if (we) begin
      mem[addr] <= din;
    end
  end
endmodule
`

func TestSimMemory(t *testing.T) {
	m := parse(t, memSrc)
	sim, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	set := func(name string, w int, v uint64) {
		t.Helper()
		if err := sim.SetInput(name, bitvec.FromUint64(w, v)); err != nil {
			t.Fatal(err)
		}
	}
	set("we", 1, 1)
	set("addr", 4, 5)
	set("din", 8, 0xab)
	if err := sim.Tick("clk"); err != nil {
		t.Fatal(err)
	}
	set("we", 1, 0)
	v, err := sim.Get("dout")
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() != 0xab {
		t.Fatalf("dout = %#x", v.Uint64())
	}
	mv, err := sim.GetMem("mem", 5)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Uint64() != 0xab {
		t.Fatalf("mem[5] = %#x", mv.Uint64())
	}
	// Combinational read tracks the address input.
	set("addr", 4, 3)
	v, _ = sim.Get("dout")
	if v.Uint64() != 0 {
		t.Fatalf("dout at empty address = %#x", v.Uint64())
	}
	if err := sim.SetMem("mem", 3, bitvec.FromUint64(8, 0x11)); err != nil {
		t.Fatal(err)
	}
	v, _ = sim.Get("dout")
	if v.Uint64() != 0x11 {
		t.Fatalf("dout after SetMem = %#x", v.Uint64())
	}
}

func TestExpressionSemantics(t *testing.T) {
	src := `
module exprs (
  a,
  b,
  y1,
  y2,
  y3,
  y4,
  y5
);
  input [7:0] a;
  input [7:0] b;
  output [7:0] y1;
  output y2;
  output [7:0] y3;
  output [15:0] y4;
  output [7:0] y5;

  assign y1 = ((a & b) | (~a ^ 8'h0f));
  assign y2 = ((a < b) && (a != 8'h00));
  assign y3 = ((a << 2) + (b >> 1));
  assign y4 = {a, b};
  assign y5 = ((a > b) ? a : b);
endmodule
`
	m := parse(t, src)
	sim, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("a", bitvec.FromUint64(8, 0x36)); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("b", bitvec.FromUint64(8, 0x59)); err != nil {
		t.Fatal(err)
	}
	get := func(name string) uint64 {
		t.Helper()
		v, err := sim.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		return v.Uint64()
	}
	a, b := uint64(0x36), uint64(0x59)
	if got := get("y1"); got != ((a&b)|((^a&0xff)^0x0f))&0xff {
		t.Errorf("y1 = %#x", got)
	}
	if got := get("y2"); got != 1 {
		t.Errorf("y2 = %d", got)
	}
	if got := get("y3"); got != ((a<<2)+(b>>1))&0xff {
		t.Errorf("y3 = %#x", got)
	}
	if got := get("y4"); got != a<<8|b {
		t.Errorf("y4 = %#x", got)
	}
	if got := get("y5"); got != b {
		t.Errorf("y5 = %#x", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no module", "wire x;"},
		{"undeclared", "module m (\n a\n);\n input a;\n wire y;\n assign y = z;\nendmodule\n"},
		{"port no dir", "module m (\n a\n);\n wire a;\nendmodule\n"},
		{"bad slice", "module m (\n a\n);\n input [3:0] a;\n wire y;\n assign y = a[9:8];\nendmodule\n"},
		{"mem no index", "module m (\n c\n);\n input c;\n reg [3:0] mm [0:3];\n wire [3:0] y;\n assign y = mm;\nendmodule\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := verilog.Parse(c.src); err == nil {
				t.Fatal("expected parse error")
			}
		})
	}
}

func TestMultipleDriversRejected(t *testing.T) {
	src := `
module m (
  a,
  y
);
  input a;
  output y;
  assign y = a;
  assign y = (!a);
endmodule
`
	m := parse(t, src)
	if _, err := verilog.NewSim(m); err == nil {
		t.Fatal("expected multiple-driver error")
	}
}

func TestCountLines(t *testing.T) {
	if got := verilog.CountLines("a\n\n b \n"); got != 2 {
		t.Fatalf("CountLines = %d", got)
	}
}

func TestSliceLValueAssign(t *testing.T) {
	src := `
module m (
  a,
  y
);
  input [3:0] a;
  output [7:0] y;
  assign y[3:0] = a;
  assign y[7:4] = (~a);
endmodule
`
	m := parse(t, src)
	sim, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetInput("a", bitvec.FromUint64(4, 0x6)); err != nil {
		t.Fatal(err)
	}
	v, err := sim.Get("y")
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() != 0x96 {
		t.Fatalf("y = %#x, want 0x96", v.Uint64())
	}
}

func TestEmitIsValidSubset(t *testing.T) {
	m := parse(t, memSrc)
	text := verilog.Emit(m)
	for _, want := range []string{"module memdut", "reg [7:0] mem [0:15];", "always @(posedge clk)", "endmodule"} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted text missing %q:\n%s", want, text)
		}
	}
}

const blockingSrc = `
module swap (
  clk,
  a,
  b
);
  input clk;
  output [7:0] a;
  output [7:0] b;

  reg [7:0] a;
  reg [7:0] b;
  reg [7:0] ta;
  reg [7:0] tb;

  always @(posedge clk) begin
    ta = b;
    tb = a;
    a = (ta + 8'h01);
    b = tb;
  end
endmodule
`

// TestBlockingAssign checks the read-into-temps-then-write idiom the
// generated processor models rely on: blocking assignments sequence within
// the block, so a and b swap (with an increment) every cycle.
func TestBlockingAssign(t *testing.T) {
	m := parse(t, blockingSrc)
	sim, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Tick("clk"); err != nil { // a=1, b=0
		t.Fatal(err)
	}
	if err := sim.Tick("clk"); err != nil { // a=0+1=1, b=1
		t.Fatal(err)
	}
	if err := sim.Tick("clk"); err != nil { // a=1+1=2, b=1
		t.Fatal(err)
	}
	av, _ := sim.Get("a")
	bv, _ := sim.Get("b")
	if av.Uint64() != 2 || bv.Uint64() != 1 {
		t.Fatalf("a=%d b=%d, want 2 1", av.Uint64(), bv.Uint64())
	}
	// Round trip through the emitter.
	text := verilog.Emit(m)
	if !strings.Contains(text, "ta = b;") {
		t.Fatalf("blocking assign not emitted:\n%s", text)
	}
	if _, err := verilog.Parse(text); err != nil {
		t.Fatal(err)
	}
}
