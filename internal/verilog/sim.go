package verilog

import (
	"fmt"

	"repro/internal/bitvec"
)

// Sim is an event-driven, two-value simulator for one elaborated module.
//
// Continuous assignments are processes with sensitivity lists; a change on a
// net schedules every process in its fan-out, and evaluation repeats until
// the combinational network reaches a fixpoint — the classic event-driven
// HDL execution model whose per-cycle cost Table 1 compares against the
// instruction-level simulator.
type Sim struct {
	m *Module

	vals map[string]bitvec.Value
	mems map[string][]bitvec.Value

	// fanout maps a net to the continuous assignments that read it.
	fanout map[string][]int
	// queued marks assignments already in the work queue.
	queued []bool
	queue  []int

	events uint64
}

// NewSim elaborates a module. Every net starts at zero (two-value
// simulation).
func NewSim(m *Module) (*Sim, error) {
	s := &Sim{
		m:      m,
		vals:   map[string]bitvec.Value{},
		mems:   map[string][]bitvec.Value{},
		fanout: map[string][]int{},
		queued: make([]bool, len(m.Assigns)),
	}
	for _, p := range m.Ports {
		s.vals[p.Name] = bitvec.New(p.Width)
	}
	for _, n := range m.Nets {
		if n.Depth > 0 {
			mem := make([]bitvec.Value, n.Depth)
			for i := range mem {
				mem[i] = bitvec.New(n.Width)
			}
			s.mems[n.Name] = mem
		} else {
			s.vals[n.Name] = bitvec.New(n.Width)
		}
	}
	driven := map[string]bool{}
	for i := range m.Assigns {
		a := &m.Assigns[i]
		for _, dep := range exprDeps(a.RHS, nil) {
			s.fanout[dep] = append(s.fanout[dep], i)
		}
		if nl, ok := a.LHS.(*NetL); ok {
			if driven[nl.Name] {
				return nil, fmt.Errorf("verilog: net %s has multiple whole-net drivers", nl.Name)
			}
			driven[nl.Name] = true
		}
	}
	// Initial settle so outputs reflect the zero state.
	for i := range m.Assigns {
		s.schedule(i)
	}
	if err := s.settle(); err != nil {
		return nil, err
	}
	return s, nil
}

// Events returns the number of process evaluations so far — the measure of
// event-driven simulation work.
func (s *Sim) Events() uint64 { return s.events }

// Module returns the simulated module.
func (s *Sim) Module() *Module { return s.m }

// Get reads a scalar net or port.
func (s *Sim) Get(name string) (bitvec.Value, error) {
	v, ok := s.vals[name]
	if !ok {
		return bitvec.Value{}, fmt.Errorf("verilog: no net %s", name)
	}
	return v, nil
}

// GetMem reads one memory word.
func (s *Sim) GetMem(name string, idx int) (bitvec.Value, error) {
	mem, ok := s.mems[name]
	if !ok {
		return bitvec.Value{}, fmt.Errorf("verilog: no memory %s", name)
	}
	if idx < 0 || idx >= len(mem) {
		return bitvec.Value{}, fmt.Errorf("verilog: %s[%d] out of range", name, idx)
	}
	return mem[idx], nil
}

// SetMem initializes one memory word (testbench use: program load).
func (s *Sim) SetMem(name string, idx int, v bitvec.Value) error {
	mem, ok := s.mems[name]
	if !ok {
		return fmt.Errorf("verilog: no memory %s", name)
	}
	if idx < 0 || idx >= len(mem) {
		return fmt.Errorf("verilog: %s[%d] out of range", name, idx)
	}
	mem[idx] = v.Trunc(mem[idx].Width())
	for _, ai := range s.fanout[name] {
		s.schedule(ai)
	}
	return s.settle()
}

// SetInput drives an input port and settles the combinational network.
func (s *Sim) SetInput(name string, v bitvec.Value) error {
	for _, p := range s.m.Ports {
		if p.Name == name {
			if p.Dir != In {
				return fmt.Errorf("verilog: %s is not an input", name)
			}
			s.update(name, v.Trunc(p.Width))
			return s.settle()
		}
	}
	return fmt.Errorf("verilog: no port %s", name)
}

// Tick performs one clock cycle on the named clock: all always blocks
// evaluate against pre-edge state, their non-blocking updates apply
// together, and the combinational network settles.
func (s *Sim) Tick(clock string) error {
	type memUpd struct {
		name string
		idx  int
		val  bitvec.Value
	}
	type netUpd struct {
		name   string
		hi, lo int
		val    bitvec.Value
	}
	var mus []memUpd
	var nus []netUpd

	var run func(stmts []Stmt) error
	run = func(stmts []Stmt) error {
		for _, st := range stmts {
			switch st := st.(type) {
			case *NBAssign:
				v, err := s.eval(st.RHS)
				if err != nil {
					return err
				}
				s.events++
				switch l := st.LHS.(type) {
				case *NetL:
					w, _, _ := s.m.NetByName(l.Name)
					nus = append(nus, netUpd{name: l.Name, hi: w - 1, lo: 0, val: v.Trunc(w)})
				case *SliceL:
					nus = append(nus, netUpd{name: l.Name, hi: l.Hi, lo: l.Lo, val: v.Trunc(l.Hi - l.Lo + 1)})
				case *IndexL:
					iv, err := s.eval(l.Idx)
					if err != nil {
						return err
					}
					w, depth, _ := s.m.NetByName(l.Name)
					idx := int(iv.Uint64())
					if depth > 0 {
						idx %= depth
					}
					mus = append(mus, memUpd{name: l.Name, idx: idx, val: v.Trunc(w)})
				}
			case *BAssign:
				v, err := s.eval(st.RHS)
				if err != nil {
					return err
				}
				s.events++
				switch l := st.LHS.(type) {
				case *NetL:
					w, _, _ := s.m.NetByName(l.Name)
					s.update(l.Name, v.Trunc(w))
				case *SliceL:
					old := s.vals[l.Name]
					nv := old
					sv := v.Trunc(l.Hi - l.Lo + 1)
					for b := l.Lo; b <= l.Hi; b++ {
						nv = nv.WithBit(b, sv.Bit(b-l.Lo))
					}
					s.update(l.Name, nv)
				case *IndexL:
					iv, err := s.eval(l.Idx)
					if err != nil {
						return err
					}
					w, depth, _ := s.m.NetByName(l.Name)
					idx := int(iv.Uint64())
					if depth > 0 {
						idx %= depth
					}
					nv := v.Trunc(w)
					if !s.mems[l.Name][idx].Eq(nv) {
						s.mems[l.Name][idx] = nv
						for _, ai := range s.fanout[l.Name] {
							s.schedule(ai)
						}
					}
				}
			case *If:
				c, err := s.eval(st.Cond)
				if err != nil {
					return err
				}
				body := st.Then
				if c.IsZero() {
					body = st.Else
				}
				if err := run(body); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for i := range s.m.Always {
		if s.m.Always[i].Clock != clock {
			continue
		}
		if err := run(s.m.Always[i].Stmts); err != nil {
			return err
		}
	}
	for _, mu := range mus {
		if !s.mems[mu.name][mu.idx].Eq(mu.val) {
			s.mems[mu.name][mu.idx] = mu.val
			for _, ai := range s.fanout[mu.name] {
				s.schedule(ai)
			}
		}
	}
	for _, nu := range nus {
		old := s.vals[nu.name]
		nv := old
		for b := nu.lo; b <= nu.hi; b++ {
			nv = nv.WithBit(b, nu.val.Bit(b-nu.lo))
		}
		s.update(nu.name, nv)
	}
	return s.settle()
}

// update writes a net value and schedules its fan-out on change.
func (s *Sim) update(name string, v bitvec.Value) {
	old := s.vals[name]
	if old.Eq(v) {
		return
	}
	s.vals[name] = v
	for _, ai := range s.fanout[name] {
		s.schedule(ai)
	}
}

func (s *Sim) schedule(i int) {
	if !s.queued[i] {
		s.queued[i] = true
		s.queue = append(s.queue, i)
	}
}

// settle evaluates scheduled continuous assignments until the network is
// quiescent.
func (s *Sim) settle() error {
	const maxEvents = 1 << 22
	n := 0
	for len(s.queue) > 0 {
		i := s.queue[0]
		s.queue = s.queue[1:]
		s.queued[i] = false
		a := &s.m.Assigns[i]
		v, err := s.eval(a.RHS)
		if err != nil {
			return err
		}
		s.events++
		switch l := a.LHS.(type) {
		case *NetL:
			w, _, _ := s.m.NetByName(l.Name)
			s.update(l.Name, v.Trunc(w))
		case *SliceL:
			old := s.vals[l.Name]
			nv := old
			sv := v.Trunc(l.Hi - l.Lo + 1)
			for b := l.Lo; b <= l.Hi; b++ {
				nv = nv.WithBit(b, sv.Bit(b-l.Lo))
			}
			s.update(l.Name, nv)
		default:
			return fmt.Errorf("verilog: continuous assignment to a memory")
		}
		if n++; n > maxEvents {
			return fmt.Errorf("verilog: combinational network did not settle (loop?)")
		}
	}
	return nil
}

// eval computes an expression against current net values.
func (s *Sim) eval(e Expr) (bitvec.Value, error) {
	switch e := e.(type) {
	case *Const:
		return e.Val, nil
	case *Ref:
		v, ok := s.vals[e.Name]
		if !ok {
			return bitvec.Value{}, fmt.Errorf("verilog: no net %s", e.Name)
		}
		return v, nil
	case *Index:
		iv, err := s.eval(e.Idx)
		if err != nil {
			return bitvec.Value{}, err
		}
		mem, ok := s.mems[e.Name]
		if !ok {
			return bitvec.Value{}, fmt.Errorf("verilog: no memory %s", e.Name)
		}
		return mem[int(iv.Uint64())%len(mem)], nil
	case *Slice:
		v, err := s.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		return v.Slice(e.Hi, e.Lo), nil
	case *Unary:
		v, err := s.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		switch e.Op {
		case "~":
			return v.Not(), nil
		case "-":
			return v.Neg(), nil
		case "!":
			return vbool(v.IsZero()), nil
		case "|":
			return vbool(!v.IsZero()), nil
		}
	case *Binary:
		x, err := s.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		y, err := s.eval(e.Y)
		if err != nil {
			return bitvec.Value{}, err
		}
		switch e.Op {
		case "&&":
			return vbool(!x.IsZero() && !y.IsZero()), nil
		case "||":
			return vbool(!x.IsZero() || !y.IsZero()), nil
		case "<<":
			return x.Shl(int(y.Uint64())), nil
		case ">>":
			return x.ShrL(int(y.Uint64())), nil
		}
		// Width-matched operators zero-extend the narrower operand.
		w := x.Width()
		if y.Width() > w {
			w = y.Width()
		}
		x, y = x.ZeroExt(w), y.ZeroExt(w)
		switch e.Op {
		case "+":
			return x.Add(y), nil
		case "-":
			return x.Sub(y), nil
		case "*":
			return x.Mul(y), nil
		case "/":
			return x.DivU(y), nil
		case "%":
			return x.ModU(y), nil
		case "&":
			return x.And(y), nil
		case "|":
			return x.Or(y), nil
		case "^":
			return x.Xor(y), nil
		case "==":
			return vbool(x.Eq(y)), nil
		case "!=":
			return vbool(!x.Eq(y)), nil
		case "<":
			return vbool(x.CmpU(y) < 0), nil
		case "<=":
			return vbool(x.CmpU(y) <= 0), nil
		case ">":
			return vbool(x.CmpU(y) > 0), nil
		case ">=":
			return vbool(x.CmpU(y) >= 0), nil
		}
	case *Ternary:
		c, err := s.eval(e.C)
		if err != nil {
			return bitvec.Value{}, err
		}
		pick := e.A
		if c.IsZero() {
			pick = e.B
		}
		v, err := s.eval(pick)
		if err != nil {
			return bitvec.Value{}, err
		}
		return v.ZeroExt(e.W), nil
	case *ConcatE:
		var v bitvec.Value
		for i, part := range e.Parts {
			pv, err := s.eval(part)
			if err != nil {
				return bitvec.Value{}, err
			}
			if i == 0 {
				v = pv
			} else {
				v = v.Concat(pv)
			}
		}
		return v, nil
	}
	return bitvec.Value{}, fmt.Errorf("verilog: cannot evaluate expression")
}

func vbool(b bool) bitvec.Value {
	if b {
		return bitvec.FromUint64(1, 1)
	}
	return bitvec.New(1)
}

// exprDeps accumulates the nets an expression reads.
func exprDeps(e Expr, out []string) []string {
	switch e := e.(type) {
	case *Ref:
		out = append(out, e.Name)
	case *Index:
		out = append(out, e.Name)
		out = exprDeps(e.Idx, out)
	case *Slice:
		out = exprDeps(e.X, out)
	case *Unary:
		out = exprDeps(e.X, out)
	case *Binary:
		out = exprDeps(e.X, exprDeps(e.Y, out))
	case *Ternary:
		out = exprDeps(e.C, exprDeps(e.A, exprDeps(e.B, out)))
	case *ConcatE:
		for _, p := range e.Parts {
			out = exprDeps(p, out)
		}
	}
	return out
}
