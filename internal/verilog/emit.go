package verilog

import (
	"fmt"
	"strings"
)

// Emit renders a module as synthesizable Verilog text. The output is the
// hardware model of §4: what the paper fed to Verilog-XL (Table 1) and to
// Synopsys + the LSI 10K library (Table 2). Operator precedence is not
// relied on — every sub-expression is parenthesized — so the parser and any
// external tool agree on structure.
func Emit(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s (\n", m.Name)
	for i, p := range m.Ports {
		comma := ","
		if i == len(m.Ports)-1 {
			comma = ""
		}
		fmt.Fprintf(&sb, "  %s%s\n", p.Name, comma)
	}
	sb.WriteString(");\n")
	for _, p := range m.Ports {
		fmt.Fprintf(&sb, "  %s %s%s;\n", dirString(p.Dir), rangeString(p.Width), p.Name)
	}
	sb.WriteByte('\n')
	for _, n := range m.Nets {
		kind := "wire"
		if n.Reg {
			kind = "reg"
		}
		if n.Depth > 0 {
			fmt.Fprintf(&sb, "  %s %s%s [0:%d];\n", kind, rangeString(n.Width), n.Name, n.Depth-1)
		} else {
			fmt.Fprintf(&sb, "  %s %s%s;\n", kind, rangeString(n.Width), n.Name)
		}
	}
	sb.WriteByte('\n')
	for _, a := range m.Assigns {
		fmt.Fprintf(&sb, "  assign %s = %s;\n", emitLValue(a.LHS), emitExpr(a.RHS))
	}
	for _, al := range m.Always {
		fmt.Fprintf(&sb, "\n  always @(posedge %s) begin\n", al.Clock)
		emitStmts(&sb, al.Stmts, 2)
		sb.WriteString("  end\n")
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

func dirString(d PortDir) string {
	if d == In {
		return "input"
	}
	return "output"
}

func rangeString(w int) string {
	if w == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", w-1)
}

func emitStmts(sb *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *NBAssign:
			fmt.Fprintf(sb, "%s%s <= %s;\n", ind, emitLValue(s.LHS), emitExpr(s.RHS))
		case *BAssign:
			fmt.Fprintf(sb, "%s%s = %s;\n", ind, emitLValue(s.LHS), emitExpr(s.RHS))
		case *If:
			fmt.Fprintf(sb, "%sif (%s) begin\n", ind, emitExpr(s.Cond))
			emitStmts(sb, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(sb, "%send else begin\n", ind)
				emitStmts(sb, s.Else, depth+1)
			}
			fmt.Fprintf(sb, "%send\n", ind)
		}
	}
}

func emitLValue(l LValue) string {
	switch l := l.(type) {
	case *NetL:
		return l.Name
	case *IndexL:
		return fmt.Sprintf("%s[%s]", l.Name, emitExpr(l.Idx))
	case *SliceL:
		if l.Hi == l.Lo {
			return fmt.Sprintf("%s[%d]", l.Name, l.Lo)
		}
		return fmt.Sprintf("%s[%d:%d]", l.Name, l.Hi, l.Lo)
	}
	return "?"
}

func emitExpr(e Expr) string {
	switch e := e.(type) {
	case *Const:
		return fmt.Sprintf("%d'h%s", e.Val.Width(), hexDigits(e))
	case *Ref:
		return e.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", e.Name, emitExpr(e.Idx))
	case *Slice:
		// The subset keeps slices on simple references so the text stays
		// legal Verilog (no (expr)[h:l]).
		inner := emitExpr(e.X)
		if e.Hi == e.Lo {
			return fmt.Sprintf("%s[%d]", inner, e.Lo)
		}
		return fmt.Sprintf("%s[%d:%d]", inner, e.Hi, e.Lo)
	case *Unary:
		return fmt.Sprintf("(%s%s)", e.Op, emitExpr(e.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", emitExpr(e.X), e.Op, emitExpr(e.Y))
	case *Ternary:
		return fmt.Sprintf("(%s ? %s : %s)", emitExpr(e.C), emitExpr(e.A), emitExpr(e.B))
	case *ConcatE:
		parts := make([]string, len(e.Parts))
		for i, p := range e.Parts {
			parts[i] = emitExpr(p)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "?"
}

func hexDigits(c *Const) string {
	digits := (c.Val.Width() + 3) / 4
	s := ""
	for i := 0; i < digits; i++ {
		nib := c.Val.ShrL(4*i).Uint64() & 0xf
		s = fmt.Sprintf("%x", nib) + s
	}
	return s
}

// CountLines returns the number of source lines — the "Lines of Verilog"
// column of Table 2.
func CountLines(text string) int {
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
