package verilog

import (
	"fmt"

	"repro/internal/bitvec"
)

// Parse reads one module in the synthesizable subset back into the AST. The
// Table 1 flow is: HGEN emits Verilog text → Parse → event-driven
// simulation, so the hardware model is exercised exactly as a Verilog
// simulator would see it, not through a private in-memory shortcut.
func Parse(src string) (*Module, error) {
	p := &vparser{}
	p.tokenize(src)
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	if err := resolveWidths(m); err != nil {
		return nil, err
	}
	return m, nil
}

type vtok struct {
	text  string
	num   uint64
	width int // -1: not a number; 0: unsized decimal; >0: sized literal
	line  int
}

type vparser struct {
	toks []vtok
	pos  int
}

func (p *vparser) tokenize(src string) {
	line := 1
	i := 0
	push := func(t vtok) { t.line = line; p.toks = append(p.toks, t) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isVWord(c):
			j := i
			for j < len(src) && isVWord(src[j]) {
				j++
			}
			word := src[i:j]
			if isVDigit(c) {
				// Number; possibly the width part of a sized literal.
				if j < len(src) && src[j] == '\'' {
					width := parseUint(word)
					base := src[j+1]
					k := j + 2
					for k < len(src) && isVWord(src[k]) {
						k++
					}
					digits := src[j+2 : k]
					var v uint64
					switch base {
					case 'h':
						for _, d := range digits {
							v = v<<4 | uint64(hexDigitVal(byte(d)))
						}
					case 'b':
						for _, d := range digits {
							v = v<<1 | uint64(d-'0')
						}
					default: // 'd'
						v = parseUint(digits)
					}
					push(vtok{text: src[i:k], num: v, width: int(width)})
					i = k
					continue
				}
				push(vtok{text: word, num: parseUint(word), width: 0})
			} else {
				push(vtok{text: word, width: -1})
			}
			i = j
		default:
			// Multi-char operators.
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "==", "!=", "<<", ">>", "&&", "||":
				push(vtok{text: two, width: -1})
				i += 2
			default:
				push(vtok{text: string(c), width: -1})
				i++
			}
		}
	}
}

func isVWord(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || isVDigit(c)
}

func isVDigit(c byte) bool { return c >= '0' && c <= '9' }

func parseUint(s string) uint64 {
	var v uint64
	for _, c := range s {
		v = v*10 + uint64(c-'0')
	}
	return v
}

func hexDigitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (p *vparser) errf(format string, args ...interface{}) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("verilog line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *vparser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *vparser) next() vtok {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *vparser) accept(text string) bool {
	if p.peek() == text {
		p.pos++
		return true
	}
	return false
}

func (p *vparser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.peek())
	}
	return nil
}

func (p *vparser) ident() (string, error) {
	if p.pos >= len(p.toks) || p.toks[p.pos].width != -1 || !isVWord(p.toks[p.pos].text[0]) || isVDigit(p.toks[p.pos].text[0]) {
		return "", p.errf("expected identifier, found %q", p.peek())
	}
	return p.next().text, nil
}

// number returns an unsized decimal value.
func (p *vparser) number() (int, error) {
	if p.pos >= len(p.toks) || p.toks[p.pos].width != 0 {
		return 0, p.errf("expected number, found %q", p.peek())
	}
	return int(p.next().num), nil
}

// rangeDecl parses an optional "[h:0]" range and returns the width.
func (p *vparser) rangeDecl() (int, error) {
	if !p.accept("[") {
		return 1, nil
	}
	h, err := p.number()
	if err != nil {
		return 0, err
	}
	if err := p.expect(":"); err != nil {
		return 0, err
	}
	l, err := p.number()
	if err != nil {
		return 0, err
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	if l != 0 || h < 0 {
		return 0, p.errf("only [N:0] ranges are supported")
	}
	return h + 1, nil
}

func (p *vparser) parseModule() (*Module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	m := &Module{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m.Name = name
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var portNames []string
	for !p.accept(")") {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		portNames = append(portNames, n)
		p.accept(",")
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	portDir := map[string]PortDir{}
	portWidth := map[string]int{}

	for {
		switch p.peek() {
		case "input", "output":
			dir := In
			if p.next().text == "output" {
				dir = Out
			}
			w, err := p.rangeDecl()
			if err != nil {
				return nil, err
			}
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			portDir[n] = dir
			portWidth[n] = w
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "wire", "reg":
			isReg := p.next().text == "reg"
			w, err := p.rangeDecl()
			if err != nil {
				return nil, err
			}
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			depth := 0
			if p.accept("[") {
				lo, err := p.number()
				if err != nil {
					return nil, err
				}
				if err := p.expect(":"); err != nil {
					return nil, err
				}
				hi, err := p.number()
				if err != nil {
					return nil, err
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				if lo != 0 {
					return nil, p.errf("memory ranges must start at 0")
				}
				depth = hi + 1
			}
			m.Nets = append(m.Nets, Net{Name: n, Width: w, Reg: isReg, Depth: depth})
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		case "assign":
			p.next()
			lhs, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			m.Assigns = append(m.Assigns, Assign{LHS: lhs, RHS: rhs})
		case "always":
			p.next()
			if err := p.expect("@"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			if err := p.expect("posedge"); err != nil {
				return nil, err
			}
			clk, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			stmts, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			m.Always = append(m.Always, Always{Clock: clk, Stmts: stmts})
		case "endmodule":
			p.next()
			for _, n := range portNames {
				d, ok := portDir[n]
				if !ok {
					return nil, fmt.Errorf("verilog: port %s has no direction declaration", n)
				}
				m.Ports = append(m.Ports, Port{Name: n, Dir: d, Width: portWidth[n]})
			}
			return m, nil
		default:
			return nil, p.errf("unexpected token %q", p.peek())
		}
	}
}

func (p *vparser) parseBlock() ([]Stmt, error) {
	if err := p.expect("begin"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("end") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *vparser) parseStmt() (Stmt, error) {
	if p.accept("if") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept("else") {
			st.Else, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	blocking := false
	switch {
	case p.accept("<="):
	case p.accept("="):
		blocking = true
	default:
		return nil, p.errf("expected <= or = in assignment")
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if blocking {
		return &BAssign{LHS: lhs, RHS: rhs}, nil
	}
	return &NBAssign{LHS: lhs, RHS: rhs}, nil
}

func (p *vparser) parseLValue() (LValue, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.accept("[") {
		return &NetL{Name: name}, nil
	}
	// Static "h:l" or "n" is a slice; anything else is a memory index.
	if p.pos < len(p.toks) && p.toks[p.pos].width == 0 {
		save := p.pos
		first, _ := p.number()
		if p.accept(":") {
			lo, err := p.number()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return &SliceL{Name: name, Hi: first, Lo: lo}, nil
		}
		if p.accept("]") {
			return &SliceL{Name: name, Hi: first, Lo: first}, nil
		}
		p.pos = save
	}
	idx, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("]"); err != nil {
		return nil, err
	}
	return &IndexL{Name: name, Idx: idx}, nil
}

// Expression parsing with conventional precedence; the ternary is lowest.
var vprec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *vparser) parseExpr() (Expr, error) {
	e, err := p.parseBin(1)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{C: e, A: a, B: b}, nil
	}
	return e, nil
}

func (p *vparser) parseBin(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.peek()
		prec, ok := vprec[op]
		// "<=" inside an expression context is a comparison, but our
		// statement parser consumes it first, so no ambiguity here.
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *vparser) parseUnary() (Expr, error) {
	switch p.peek() {
	case "~", "!", "-", "|":
		op := p.next().text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *vparser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept("[") {
		if p.pos < len(p.toks) && p.toks[p.pos].width == 0 {
			save := p.pos
			first, _ := p.number()
			if p.accept(":") {
				lo, err := p.number()
				if err != nil {
					return nil, err
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				e = &Slice{X: e, Hi: first, Lo: lo}
				continue
			}
			if p.accept("]") {
				// Single static index: memory word or bit-select,
				// disambiguated during width resolution.
				e = &Slice{X: e, Hi: first, Lo: first}
				continue
			}
			p.pos = save
		}
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		ref, ok := e.(*Ref)
		if !ok {
			return nil, p.errf("only a net can be memory-indexed")
		}
		e = &Index{Name: ref.Name, Idx: idx}
	}
	return e, nil
}

func (p *vparser) parsePrimary() (Expr, error) {
	switch {
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept("{"):
		c := &ConcatE{}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return c, nil
	case p.pos < len(p.toks) && p.toks[p.pos].width > 0:
		t := p.next()
		if t.width > 64 {
			return nil, p.errf("literal wider than 64 bits")
		}
		return &Const{Val: bitvec.FromUint64(t.width, t.num)}, nil
	case p.pos < len(p.toks) && p.toks[p.pos].width == 0:
		// Bare decimal: give it a self-determined 32-bit width.
		t := p.next()
		return &Const{Val: bitvec.FromUint64(32, t.num)}, nil
	default:
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Ref{Name: name}, nil
	}
}

// resolveWidths computes expression widths from declarations. Rules (a
// deterministic simplification of the Verilog standard, matched by the
// emitter): ref = declaration width; memory index = element width; slice =
// hi−lo+1; ~,- = operand; !,| (reduce), comparisons, && and || = 1; shifts =
// left operand; other binary = max of operands (zero-extending the
// narrower); ternary = max of arms; concat = sum.
func resolveWidths(m *Module) error {
	var fix func(e Expr) (int, error)
	fix = func(e Expr) (int, error) {
		switch e := e.(type) {
		case *Const:
			return e.Val.Width(), nil
		case *Ref:
			w, depth, ok := m.NetByName(e.Name)
			if !ok {
				return 0, fmt.Errorf("verilog: undeclared net %s", e.Name)
			}
			if depth > 0 {
				return 0, fmt.Errorf("verilog: memory %s used without an index", e.Name)
			}
			e.W = w
			return w, nil
		case *Index:
			w, depth, ok := m.NetByName(e.Name)
			if !ok {
				return 0, fmt.Errorf("verilog: undeclared memory %s", e.Name)
			}
			if depth == 0 {
				return 0, fmt.Errorf("verilog: %s is not a memory", e.Name)
			}
			if _, err := fix(e.Idx); err != nil {
				return 0, err
			}
			e.W = w
			return w, nil
		case *Slice:
			// A slice whose base is a memory reference is really an
			// indexed word (bit-select of memories is not in the subset).
			if ref, ok := e.X.(*Ref); ok {
				if w, depth, found := m.NetByName(ref.Name); found && depth > 0 {
					if e.Hi != e.Lo {
						return 0, fmt.Errorf("verilog: part-select of memory %s", ref.Name)
					}
					idx := &Index{Name: ref.Name, Idx: &Const{Val: bitvec.FromUint64(32, uint64(e.Lo))}, W: w}
					*e = Slice{X: idx, Hi: w - 1, Lo: 0}
					return w, nil
				}
			}
			xw, err := fix(e.X)
			if err != nil {
				return 0, err
			}
			if e.Hi >= xw || e.Lo < 0 || e.Hi < e.Lo {
				return 0, fmt.Errorf("verilog: slice [%d:%d] out of range of %d-bit value", e.Hi, e.Lo, xw)
			}
			return e.Hi - e.Lo + 1, nil
		case *Unary:
			xw, err := fix(e.X)
			if err != nil {
				return 0, err
			}
			switch e.Op {
			case "!", "|":
				e.W = 1
			default:
				e.W = xw
			}
			return e.W, nil
		case *Binary:
			xw, err := fix(e.X)
			if err != nil {
				return 0, err
			}
			yw, err := fix(e.Y)
			if err != nil {
				return 0, err
			}
			switch e.Op {
			case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
				e.W = 1
			case "<<", ">>":
				e.W = xw
			default:
				e.W = xw
				if yw > e.W {
					e.W = yw
				}
			}
			return e.W, nil
		case *Ternary:
			if _, err := fix(e.C); err != nil {
				return 0, err
			}
			aw, err := fix(e.A)
			if err != nil {
				return 0, err
			}
			bw, err := fix(e.B)
			if err != nil {
				return 0, err
			}
			e.W = aw
			if bw > e.W {
				e.W = bw
			}
			return e.W, nil
		case *ConcatE:
			total := 0
			for _, part := range e.Parts {
				w, err := fix(part)
				if err != nil {
					return 0, err
				}
				total += w
			}
			e.W = total
			return total, nil
		}
		return 0, fmt.Errorf("verilog: unknown expression")
	}

	fixL := func(l LValue) error {
		switch l := l.(type) {
		case *NetL:
			if _, _, ok := m.NetByName(l.Name); !ok {
				return fmt.Errorf("verilog: undeclared net %s", l.Name)
			}
		case *IndexL:
			if _, depth, ok := m.NetByName(l.Name); !ok || depth == 0 {
				return fmt.Errorf("verilog: %s is not a memory", l.Name)
			}
			if _, err := fix(l.Idx); err != nil {
				return err
			}
		case *SliceL:
			w, depth, ok := m.NetByName(l.Name)
			if !ok {
				return fmt.Errorf("verilog: undeclared net %s", l.Name)
			}
			if depth > 0 {
				return fmt.Errorf("verilog: part-select of memory %s", l.Name)
			}
			if l.Hi >= w || l.Lo < 0 || l.Hi < l.Lo {
				return fmt.Errorf("verilog: slice [%d:%d] out of range of %s", l.Hi, l.Lo, l.Name)
			}
		}
		return nil
	}

	for i := range m.Assigns {
		if err := fixL(m.Assigns[i].LHS); err != nil {
			return err
		}
		if _, err := fix(m.Assigns[i].RHS); err != nil {
			return err
		}
	}
	var fixStmts func(stmts []Stmt) error
	fixStmts = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch s := s.(type) {
			case *NBAssign:
				if err := fixL(s.LHS); err != nil {
					return err
				}
				if _, err := fix(s.RHS); err != nil {
					return err
				}
			case *BAssign:
				if err := fixL(s.LHS); err != nil {
					return err
				}
				if _, err := fix(s.RHS); err != nil {
					return err
				}
			case *If:
				if _, err := fix(s.Cond); err != nil {
					return err
				}
				if err := fixStmts(s.Then); err != nil {
					return err
				}
				if err := fixStmts(s.Else); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for i := range m.Always {
		if err := fixStmts(m.Always[i].Stmts); err != nil {
			return err
		}
	}
	return nil
}
