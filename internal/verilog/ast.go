// Package verilog implements the synthesizable-Verilog subset that the HGEN
// hardware synthesis system emits (paper §4), together with a parser and an
// event-driven two-value simulator for it.
//
// The paper evaluates the generated hardware model with Cadence Verilog-XL
// (Table 1); this repository has no commercial simulator, so the emitted
// text is parsed back in and executed by the event-driven interpreter in
// sim.go, which reproduces the cost structure that makes HDL simulation slow
// relative to an instruction-level simulator: per-net events, sensitivity
// lists, and re-evaluation to a fixpoint every cycle. As the paper notes,
// "the synthesizable Verilog model is itself a simulator".
package verilog

import (
	"repro/internal/bitvec"
)

// PortDir is a port direction.
type PortDir int

const (
	// In is an input port.
	In PortDir = iota
	// Out is an output port.
	Out
)

// Port is a module port.
type Port struct {
	Name  string
	Dir   PortDir
	Width int
}

// Net is a wire or register declaration; Depth > 0 declares a memory.
type Net struct {
	Name  string
	Width int
	Reg   bool
	Depth int // 0 for scalars
}

// Module is one synthesizable module.
type Module struct {
	Name    string
	Ports   []Port
	Nets    []Net
	Assigns []Assign
	Always  []Always
}

// NetByName returns the declaration (port or net) width and whether the name
// exists.
func (m *Module) NetByName(name string) (width, depth int, ok bool) {
	for _, p := range m.Ports {
		if p.Name == name {
			return p.Width, 0, true
		}
	}
	for _, n := range m.Nets {
		if n.Name == name {
			return n.Width, n.Depth, true
		}
	}
	return 0, 0, false
}

// Assign is a continuous assignment.
type Assign struct {
	LHS LValue
	RHS Expr
}

// Always is a sequential block: always @(posedge Clock).
type Always struct {
	Clock string
	Stmts []Stmt
}

// Stmt is a statement inside an always block.
type Stmt interface{ vstmt() }

// NBAssign is a non-blocking assignment "lhs <= rhs;".
type NBAssign struct {
	LHS LValue
	RHS Expr
}

// BAssign is a blocking assignment "lhs = rhs;" inside an always block; the
// generated processor models use blocking assignments with explicit
// temporaries to reproduce the two-phase read/write semantics of §3.3.3.
type BAssign struct {
	LHS LValue
	RHS Expr
}

// If is "if (cond) begin … end [else begin … end]".
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*NBAssign) vstmt() {}
func (*BAssign) vstmt()  {}
func (*If) vstmt()       {}

// LValue is an assignment destination.
type LValue interface{ vlval() }

// NetL names a whole net.
type NetL struct{ Name string }

// IndexL is one memory word: Name[Idx].
type IndexL struct {
	Name string
	Idx  Expr
}

// SliceL is a bit range of a net: Name[Hi:Lo].
type SliceL struct {
	Name   string
	Hi, Lo int
}

func (*NetL) vlval()   {}
func (*IndexL) vlval() {}
func (*SliceL) vlval() {}

// Expr is a Verilog expression. W is the expression width in bits; the
// emitter and parser agree on the width rules documented in width().
type Expr interface{ vexpr() }

// Const is a sized literal.
type Const struct{ Val bitvec.Value }

// Ref reads a whole net.
type Ref struct {
	Name string
	W    int
}

// Index reads one memory word.
type Index struct {
	Name string
	Idx  Expr
	W    int
}

// Slice reads a static bit range of an expression.
type Slice struct {
	X      Expr
	Hi, Lo int
}

// Unary applies ~, !, - or the reduction OR "|".
type Unary struct {
	Op string
	X  Expr
	W  int
}

// Binary applies a two-operand operator.
type Binary struct {
	Op   string
	X, Y Expr
	W    int
}

// Ternary is "c ? a : b".
type Ternary struct {
	C, A, B Expr
	W       int
}

// ConcatE is "{a, b, …}" with the first element most significant.
type ConcatE struct {
	Parts []Expr
	W     int
}

func (*Const) vexpr()   {}
func (*Ref) vexpr()     {}
func (*Index) vexpr()   {}
func (*Slice) vexpr()   {}
func (*Unary) vexpr()   {}
func (*Binary) vexpr()  {}
func (*Ternary) vexpr() {}
func (*ConcatE) vexpr() {}

// Width returns the width of an expression.
func Width(e Expr) int {
	switch e := e.(type) {
	case *Const:
		return e.Val.Width()
	case *Ref:
		return e.W
	case *Index:
		return e.W
	case *Slice:
		return e.Hi - e.Lo + 1
	case *Unary:
		return e.W
	case *Binary:
		return e.W
	case *Ternary:
		return e.W
	case *ConcatE:
		return e.W
	}
	return 0
}
