package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatalf("Counter(x) not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if got := r.Counters()["x"]; got != 5 {
		t.Fatalf("Counters()[x] = %d, want 5", got)
	}
	if got := r.Gauges()["g"]; got != 4 {
		t.Fatalf("Gauges()[g] = %d, want 4", got)
	}
}

func TestCounterConcurrentExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost increments)", got, workers*perWorker)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c").Observe(time.Millisecond)
	sp := r.StartSpan("root")
	sp.SetArg("k", "v")
	child := sp.Child("child")
	child.End()
	sp.End()
	r.SetLaneName(1, "x")
	if r.Spans() != nil || r.Counters() != nil {
		t.Fatalf("nil registry should return nil snapshots")
	}
	if err := r.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if err := r.WriteMetricsJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteMetricsJSON: %v", err)
	}
	if err := r.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	var c *Counter
	c.Inc()
	c.Add(2)
	if c.Value() != 0 {
		t.Fatalf("nil counter value")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Snapshot().Count != 0 {
		t.Fatalf("nil histogram snapshot")
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.ObserveNs(1500)
	s := h.Snapshot()
	if s.Count != 1 || s.MinNs != 1500 || s.MaxNs != 1500 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Quantiles of a single observation must be that observation exactly
	// (clamped to [min, max]).
	for _, q := range []float64{s.P50Ns, s.P95Ns, s.P99Ns} {
		if q != 1500 {
			t.Fatalf("quantile = %v, want 1500", q)
		}
	}
	if s.MeanNs() != 1500 {
		t.Fatalf("mean = %v", s.MeanNs())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	// 100 observations: 1000ns ... 100000ns in equal steps.
	for i := 1; i <= 100; i++ {
		h.ObserveNs(float64(i) * 1000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// Power-of-two buckets are coarse; accept the right order of magnitude
	// and monotone ordering.
	if s.P50Ns < 20000 || s.P50Ns > 80000 {
		t.Fatalf("p50 = %v, want within [20000, 80000]", s.P50Ns)
	}
	if !(s.P50Ns <= s.P95Ns && s.P95Ns <= s.P99Ns && s.P99Ns <= s.MaxNs) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", s.P50Ns, s.P95Ns, s.P99Ns, s.MaxNs)
	}
	if s.MinNs != 1000 || s.MaxNs != 100000 {
		t.Fatalf("min/max = %v/%v", s.MinNs, s.MaxNs)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := &Histogram{}
	h.ObserveNs(-5) // clamped to 0
	h.ObserveNs(0)
	s := h.Snapshot()
	if s.Count != 2 || s.MinNs != 0 || s.MaxNs != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestSpansAndTraceExport(t *testing.T) {
	r := NewRegistry()
	r.SetLaneName(0, "explorer")
	r.SetLaneName(1, "worker 1")
	root := r.StartSpan("iteration")
	root.SetArg("iter", "1")
	cand := r.StartSpanLane("candidate", 1)
	stage := cand.Child("simulate")
	time.Sleep(time.Millisecond)
	stage.End()
	cand.End()
	root.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var stageRec, candRec *SpanRecord
	for i := range spans {
		switch spans[i].Name {
		case "simulate":
			stageRec = &spans[i]
		case "candidate":
			candRec = &spans[i]
		}
	}
	if stageRec == nil || candRec == nil {
		t.Fatalf("missing span records: %+v", spans)
	}
	if stageRec.Parent != candRec.ID {
		t.Fatalf("child parent = %d, want %d", stageRec.Parent, candRec.ID)
	}
	if stageRec.Lane != 1 {
		t.Fatalf("child lane = %d, want inherited 1", stageRec.Lane)
	}
	if stageRec.Dur < time.Millisecond {
		t.Fatalf("child dur = %v, want >= 1ms", stageRec.Dur)
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	var sawIterArg bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Name == "iteration" && ev.Args["iter"] == "1" {
				sawIterArg = true
			}
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 { // process_name + 2 lane names
		t.Fatalf("metadata events = %d, want 3", meta)
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if !sawIterArg {
		t.Fatalf("iteration span args not exported")
	}
}

func TestMetricsJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.simulate.hits").Add(3)
	r.Gauge("pipeline.simulate.inflight").Set(0)
	r.Histogram("stage.simulate.ns").Observe(2 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteMetricsJSON(&buf); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	var doc struct {
		Counters   map[string]uint64            `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if doc.Counters["cache.simulate.hits"] != 3 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	h, ok := doc.Histograms["stage.simulate.ns"]
	if !ok || h.Count != 1 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if h.P50Ns <= 0 {
		t.Fatalf("p50 = %v, want > 0", h.P50Ns)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("explore.moves.accepted").Add(2)
	r.Histogram("stage.parse.ns").Observe(10 * time.Microsecond)
	sp := r.StartSpan("run")
	sp.End()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"counters:", "explore.moves.accepted", "latency", "stage.parse.ns", "spans: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text summary missing %q:\n%s", want, out)
		}
	}
}
