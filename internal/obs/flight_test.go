package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestFlightRecorderNilSafety(t *testing.T) {
	var f *FlightRecorder
	f.Record(SpanRecord{Name: "x"}) // must not panic
	if f.Spans() != nil {
		t.Error("nil recorder Spans() != nil")
	}
	if f.Total() != 0 {
		t.Error("nil recorder Total() != 0")
	}
	if err := f.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil recorder WriteJSON: %v", err)
	}
	var r *Registry
	r.AttachFlight(NewFlightRecorder(4)) // nil registry: no-op
	NewRegistry().AttachFlight(nil)      // nil recorder: no-op
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		f.Record(SpanRecord{Name: fmt.Sprintf("s%d", i), ID: uint64(i)})
	}
	if f.Total() != 5 {
		t.Errorf("Total = %d, want 5", f.Total())
	}
	spans := f.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring holds %d, want 3", len(spans))
	}
	for i, want := range []string{"s3", "s4", "s5"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %s, want %s (oldest first)", i, spans[i].Name, want)
		}
	}
}

func TestFlightRecorderViaRegistry(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(8)
	r.AttachFlight(f)
	sp := r.StartSpan("work")
	sp.End()
	if got := f.Spans(); len(got) != 1 || got[0].Name != "work" {
		t.Fatalf("flight ring after one span = %+v", got)
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int        `json:"capacity"`
		Total    uint64     `json:"total"`
		Spans    []WireSpan `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if doc.Capacity != 8 || doc.Total != 1 || len(doc.Spans) != 1 {
		t.Errorf("doc = %+v", doc)
	}
	// Attached to a registry, starts are absolute wall clock.
	if start := time.Unix(0, doc.Spans[0].StartUnixNs); time.Since(start) > time.Minute {
		t.Errorf("flight span start %v is not recent wall clock", start)
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	f := NewFlightRecorder(0)
	for i := 0; i < 300; i++ {
		f.Record(SpanRecord{ID: uint64(i)})
	}
	if got := len(f.Spans()); got != 256 {
		t.Errorf("default capacity = %d, want 256", got)
	}
}
