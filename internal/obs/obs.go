// Package obs is the toolchain's observability layer: a small,
// dependency-free, concurrency-safe metrics registry (counters, gauges,
// latency histograms) plus lightweight spans (span.go) and exporters
// (export.go) — a human-readable text summary, a metrics JSON document,
// and Chrome trace_event JSON that opens directly in chrome://tracing or
// Perfetto.
//
// The paper's methodology lives on measurement — §3.1's traces and
// profiles are what tell the explorer which candidate to keep — and this
// package applies the same discipline to the toolchain itself: the staged
// evaluation pipeline records per-stage latencies and cache traffic, the
// explorer emits one span per iteration and per scored candidate, the
// simulator exposes its own performance counters, and every future
// performance PR (parallel co-simulation, beam search) reports through the
// same registry.
//
// Everything is nil-safe by design: every method on a nil *Registry,
// *Counter, *Gauge, *Histogram or *Span is a no-op, so instrumented code
// runs with essentially zero overhead when no registry is configured —
// instrumentation never needs to be guarded at the call site.
package obs

import (
	"math"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Increments are atomic and
// exact: concurrent writers never lose updates.
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a standalone counter (not owned by any registry);
// Registry.Counter is the usual way to obtain one.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value (e.g. in-flight stage executions).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of the power-of-two latency histogram:
// bucket b holds observations in [2^(b-1), 2^b) nanoseconds, which covers
// 1 ns through ~292 years in 64 buckets.
const histBuckets = 64

// Histogram aggregates latency observations into power-of-two buckets, from
// which quantiles (p50/p95/p99) are estimated by linear interpolation
// within the covering bucket, clamped to the exact observed min and max.
type Histogram struct {
	mu      sync.Mutex
	count   uint64
	sumNs   float64
	minNs   float64
	maxNs   float64
	buckets [histBuckets]uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(float64(d.Nanoseconds())) }

// ObserveNs records one duration given in nanoseconds.
func (h *Histogram) ObserveNs(ns float64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	b := bucketOf(ns)
	h.mu.Lock()
	if h.count == 0 || ns < h.minNs {
		h.minNs = ns
	}
	if ns > h.maxNs {
		h.maxNs = ns
	}
	h.count++
	h.sumNs += ns
	h.buckets[b]++
	h.mu.Unlock()
}

// bucketOf maps a nanosecond value to its power-of-two bucket.
func bucketOf(ns float64) int {
	if ns < 1 {
		return 0
	}
	v := uint64(ns)
	b := bits.Len64(v) // v in [2^(b-1), 2^b)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// HistogramSnapshot is a consistent read of a histogram, with estimated
// quantiles. All values are nanoseconds.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	SumNs float64 `json:"sum_ns"`
	MinNs float64 `json:"min_ns"`
	MaxNs float64 `json:"max_ns"`
	P50Ns float64 `json:"p50_ns"`
	P95Ns float64 `json:"p95_ns"`
	P99Ns float64 `json:"p99_ns"`
	// Buckets holds the raw power-of-two bucket counts (bucket b covers
	// [2^(b-1), 2^b) ns). The Prometheus exporter renders them as
	// cumulative `le` buckets; they are omitted from the JSON document.
	Buckets []uint64 `json:"-"`
}

// MeanNs returns the average observation.
func (s HistogramSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / float64(s.Count)
}

// Snapshot returns the histogram's current aggregate state and quantile
// estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, SumNs: h.sumNs, MinNs: h.minNs, MaxNs: h.maxNs}
	s.P50Ns = h.quantileLocked(0.50)
	s.P95Ns = h.quantileLocked(0.95)
	s.P99Ns = h.quantileLocked(0.99)
	s.Buckets = append([]uint64(nil), h.buckets[:]...)
	return s
}

// quantileLocked estimates the q-quantile (0 < q <= 1) from the buckets:
// find the bucket where the cumulative count crosses rank q·count, then
// interpolate linearly within the bucket's range. Clamped to [min, max],
// so single-observation histograms report that observation exactly.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := 0.0
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketRange(b)
			frac := (rank - cum) / float64(n)
			v := lo + (hi-lo)*frac
			return math.Min(math.Max(v, h.minNs), h.maxNs)
		}
		cum = next
	}
	return h.maxNs
}

// bucketRange returns bucket b's [lo, hi) nanosecond range.
func bucketRange(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// Registry is a named collection of metrics and finished spans. All methods
// are safe for concurrent use, and all methods on a nil registry are
// no-ops returning nil instruments (whose methods are no-ops in turn), so
// a nil registry disables instrumentation end to end.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	lanes    map[int]string
	spans    []SpanRecord
	flight   *FlightRecorder
	epoch    time.Time
	traceID  uint64
	spanID   atomic.Uint64
}

// NewRegistry returns an empty registry. The construction time is the
// epoch all span timestamps are relative to, and the registry is born
// with a random non-zero trace ID (see TraceContext) identifying this
// process's span stream across process boundaries.
func NewRegistry() *Registry {
	tid := rand.Uint64()
	for tid == 0 {
		tid = rand.Uint64()
	}
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		lanes:    map[int]string{},
		epoch:    time.Now(),
		traceID:  tid,
	}
}

// TraceID returns the registry's process-local trace identity (0 for a
// nil registry).
func (r *Registry) TraceID() uint64 {
	if r == nil {
		return 0
	}
	return r.traceID
}

// record stores one finished span and feeds the attached flight
// recorder, if any.
func (r *Registry) record(rec SpanRecord) {
	r.mu.Lock()
	r.spans = append(r.spans, rec)
	f := r.flight
	r.mu.Unlock()
	f.Record(rec)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counters returns a snapshot of every counter value, by name.
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns a snapshot of every gauge value, by name.
func (r *Registry) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Histograms returns a snapshot of every histogram, by name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	hists := make([]*Histogram, len(names))
	for i, name := range names {
		hists[i] = r.hists[name]
	}
	r.mu.Unlock()
	// Snapshot outside r.mu: each histogram has its own lock.
	out := make(map[string]HistogramSnapshot, len(names))
	for i, name := range names {
		out[name] = hists[i].Snapshot()
	}
	return out
}

// sortedNames returns a map's keys in order (export helpers).
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
