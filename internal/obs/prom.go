package obs

// Prometheus text exposition (version 0.0.4), the fourth exporter: the
// same registry state as WriteText/WriteMetricsJSON, rendered so an
// off-the-shelf Prometheus can scrape cmd/served's /metrics?format=prom.
// Counter names gain the conventional _total suffix; power-of-two
// histogram buckets become cumulative `le` buckets whose upper bounds
// are the bucket boundaries (2^b nanoseconds). CheckExposition is a
// small dependency-free validator of the same format, used by the tests
// and CI in place of promtool.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName maps a registry metric name to a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit gains a '_' prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a sample value. Prometheus accepts Go's shortest
// float form.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm renders the registry in the Prometheus text exposition
// format. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	counters := r.Counters()
	for _, name := range sortedNames(counters) {
		n := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s %d\n", n, counters[name])
	}
	gauges := r.Gauges()
	for _, name := range sortedNames(gauges) {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		fmt.Fprintf(bw, "%s %d\n", n, gauges[name])
	}
	hists := r.Histograms()
	for _, name := range sortedNames(hists) {
		n := promName(name)
		s := hists[name]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		// Emit cumulative le buckets up to the highest occupied one;
		// an empty histogram contributes only the mandatory +Inf.
		top := -1
		for b, c := range s.Buckets {
			if c > 0 {
				top = b
			}
		}
		cum := uint64(0)
		for b := 0; b <= top; b++ {
			cum += s.Buckets[b]
			_, hi := bucketRange(b)
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", n, promFloat(hi), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, s.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(s.SumNs))
		fmt.Fprintf(bw, "%s_count %d\n", n, s.Count)
	}
	return bw.Flush()
}

// CheckExposition validates that data is well-formed Prometheus text
// exposition: every non-comment line is `name[{labels}] value`, metric
// names are legal, values parse as floats, every sample belongs to a
// family declared by a preceding # TYPE line with a known type, counter
// samples end in _total, and histogram families carry consistent
// cumulative buckets plus _sum and _count. Returns nil when valid.
func CheckExposition(data []byte) error {
	types := map[string]string{} // family name -> type
	lastBucket := map[string]float64{}
	lines := bytes.Split(data, []byte("\n"))
	for i, raw := range lines {
		line := string(raw)
		lineNo := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				return fmt.Errorf("line %d: comment is neither # TYPE nor # HELP: %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed # TYPE line: %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if !validPromName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		switch typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter sample %q should end in _total", lineNo, name)
			}
			if value < 0 {
				return fmt.Errorf("line %d: counter %q is negative", lineNo, name)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: %s_bucket without le label", lineNo, family)
				}
				bound, err := parseLe(le)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q: %v", lineNo, le, err)
				}
				_ = bound
				if prev, seen := lastBucket[family]; seen && value < prev {
					return fmt.Errorf("line %d: histogram %q buckets are not cumulative", lineNo, family)
				}
				lastBucket[family] = value
			case "_sum":
			case "_count":
				if prev, seen := lastBucket[family]; seen && value < prev {
					return fmt.Errorf("line %d: histogram %q count below its largest bucket", lineNo, family)
				}
			default:
				return fmt.Errorf("line %d: histogram family %q sample %q is not _bucket/_sum/_count", lineNo, family, name)
			}
		}
	}
	return nil
}

// validPromName reports whether s is a legal Prometheus metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample splits a sample line into name, labels and value.
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unterminated label block: %q", line)
		}
		labels = map[string]string{}
		for _, pair := range strings.Split(rest[i+1:j], ",") {
			if pair == "" {
				continue
			}
			k, v, found := strings.Cut(pair, "=")
			if !found || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = rest[j+1:]
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return "", nil, 0, fmt.Errorf("empty sample line")
		}
		name = fields[0]
		rest = strings.TrimPrefix(strings.TrimSpace(rest), name)
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("expected value after metric name: %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

// parseLe parses a histogram bucket bound ("+Inf" allowed).
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
