package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Exporters. Three views of one registry:
//
//   - WriteText: the human-readable summary table (cmd/explore prints it
//     to stderr at the end of a run);
//   - WriteMetricsJSON: the machine-readable metrics document
//     (`explore -metrics-out`);
//   - WriteTrace: Chrome trace_event JSON (`explore -trace-out`), the
//     "JSON Array Format with metadata" every trace viewer understands —
//     open the file in chrome://tracing or https://ui.perfetto.dev.

// WriteText renders the registry as an aligned text summary: counters,
// gauges, then histograms with count / mean / p50 / p95 / p99 / max.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, hists := r.Counters(), r.Gauges(), r.Histograms()
	if len(counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		for _, name := range sortedNames(counters) {
			fmt.Fprintf(w, "  %-32s %12d\n", name, counters[name])
		}
	}
	if len(gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		for _, name := range sortedNames(gauges) {
			fmt.Fprintf(w, "  %-32s %12d\n", name, gauges[name])
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(w, "latency (count, mean, p50, p95, p99, max):\n")
		for _, name := range sortedNames(hists) {
			s := hists[name]
			fmt.Fprintf(w, "  %-32s %8d  %9s %9s %9s %9s %9s\n", name, s.Count,
				fmtNs(s.MeanNs()), fmtNs(s.P50Ns), fmtNs(s.P95Ns), fmtNs(s.P99Ns), fmtNs(s.MaxNs))
		}
	}
	if n := len(r.Spans()); n > 0 {
		fmt.Fprintf(w, "spans: %d recorded (export with -trace-out and open in Perfetto)\n", n)
	}
	return nil
}

// fmtNs renders a nanosecond quantity with a human unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// metricsDoc is the `-metrics-out` JSON shape. Map keys marshal in sorted
// order, so the document is deterministic for a given registry state.
type metricsDoc struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// WriteMetricsJSON writes the counters, gauges and histogram snapshots as
// one indented JSON document.
func (r *Registry) WriteMetricsJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	doc := metricsDoc{Counters: r.Counters(), Gauges: r.Gauges(), Histograms: r.Histograms()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

// traceEvent is one Chrome trace_event record. "X" complete events carry
// ts+dur; "M" metadata events name the process and lanes.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds from the registry epoch
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceDoc is the trace_event "JSON Object Format".
type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes every finished span as Chrome trace_event JSON. The
// file loads directly in chrome://tracing and Perfetto: spans become
// complete ("X") slices on their lane, nested by time; lane names appear
// as thread names. Span identity and parent linkage are preserved in each
// event's args ("id", "parent").
func (r *Registry) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lanes := make(map[int]string, len(r.lanes))
	for lane, name := range r.lanes {
		lanes[lane] = name
	}
	r.mu.Unlock()

	spans := r.Spans()
	events := make([]traceEvent, 0, len(spans)+len(lanes)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]string{"name": "repro evaluation pipeline"},
	})
	laneIDs := make([]int, 0, len(lanes))
	for lane := range lanes {
		laneIDs = append(laneIDs, lane)
	}
	sort.Ints(laneIDs)
	for _, lane := range laneIDs {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]string{"name": lanes[lane]},
		})
	}
	for _, s := range spans {
		args := make(map[string]string, len(s.Args)+2)
		for k, v := range s.Args {
			args[k] = v
		}
		args["id"] = strconv.FormatUint(s.ID, 10)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 10)
		}
		events = append(events, traceEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  s.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&traceDoc{TraceEvents: events, DisplayTimeUnit: "ms"})
}
