package obs

import (
	"testing"
	"time"
)

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.Start()
	s.SampleNow()
	s.Stop()
	if s.Samples() != nil {
		t.Error("nil sampler Samples() != nil")
	}
	if s.Interval() != 0 {
		t.Error("nil sampler Interval() != 0")
	}
	if doc := s.DashData(); len(doc.Series) != 0 {
		t.Errorf("nil sampler DashData has %d series", len(doc.Series))
	}
	if NewSampler(nil, time.Second, 10) != nil {
		t.Error("NewSampler(nil registry) != nil")
	}
}

func TestSamplerWindowWrap(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 3) // ticker never fires; drive by hand
	for i := 1; i <= 5; i++ {
		r.Counter("c").Inc()
		s.SampleNow()
	}
	samples := s.Samples()
	if len(samples) != 3 {
		t.Fatalf("window holds %d, want 3", len(samples))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got := samples[i].Counters["c"]; got != want {
			t.Errorf("samples[%d].c = %d, want %d (oldest first)", i, got, want)
		}
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Hour, 3)
	s.Stop() // must not hang or panic
	s.Stop() // idempotent
}

func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Millisecond, 16)
	s.Start()
	deadline := time.After(2 * time.Second)
	for len(s.Samples()) == 0 {
		select {
		case <-deadline:
			t.Fatal("sampler produced no samples in 2s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	s.Stop()
	n := len(s.Samples())
	time.Sleep(20 * time.Millisecond)
	if got := len(s.Samples()); got != n {
		t.Errorf("sampler still sampling after Stop: %d -> %d", n, got)
	}
}

func TestDashDataSeries(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 8)
	r.Gauge("explore.best.score.milli").Set(1234)
	r.Gauge("served.queue.depth").Set(7)
	r.Counter("cache.compile.hits").Add(3)
	r.Counter("cache.compile.misses").Add(1)
	r.Counter("cache.store.hits").Add(100) // store tier: excluded from hit rate
	r.Histogram("stage.compile.ns").Observe(2 * time.Millisecond)
	s.SampleNow()

	doc := s.DashData()
	vals := map[string][]DashPoint{}
	for _, series := range doc.Series {
		vals[series.Name] = series.Points
	}
	if pts := vals["explore.best.score"]; len(pts) != 1 || pts[0][1] != 1.234 {
		t.Errorf("explore.best.score = %v, want one point 1.234 (milli divided out)", pts)
	}
	if pts := vals["cache.hit.rate"]; len(pts) != 1 || pts[0][1] != 0.75 {
		t.Errorf("cache.hit.rate = %v, want 0.75 (store tier excluded)", pts)
	}
	if pts := vals["stage.compile.p50.ms"]; len(pts) != 1 || pts[0][1] != 2.0 {
		t.Errorf("stage.compile.p50.ms = %v, want 2.0", pts)
	}
	if _, ok := vals["explore.best.score.milli"]; ok {
		t.Error("raw .milli gauge leaked into the dashboard series")
	}
	// Preferred panels lead the series order.
	if doc.Series[0].Name != "explore.best.score" {
		t.Errorf("series[0] = %s, want explore.best.score first", doc.Series[0].Name)
	}
}

func TestDashDataZeroDenominator(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 4)
	r.Counter("cache.compile.hits") // exists, zero: no division by zero
	s.SampleNow()
	for _, series := range s.DashData().Series {
		if series.Name == "cache.hit.rate" {
			t.Error("cache.hit.rate emitted with zero traffic")
		}
	}
}
