package obs

import (
	"net/http"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeef12345678, SpanID: 42}
	got, ok := ParseTraceContext(tc.String())
	if !ok || got != tc {
		t.Fatalf("ParseTraceContext(%q) = %v, %v; want %v, true", tc.String(), got, ok, tc)
	}
	h := http.Header{}
	tc.Inject(h)
	got, ok = ExtractTrace(h)
	if !ok || got != tc {
		t.Fatalf("ExtractTrace after Inject = %v, %v; want %v, true", got, ok, tc)
	}
}

func TestParseTraceContextMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-trace",
		"0000000000000000-0000000000000001",  // zero trace ID
		"deadbeef12345678_0000000000000001",  // wrong separator
		"deadbeef1234567-00000000000000012",  // dash in wrong place
		"deadbeef12345678-000000000000001",   // too short
		"deadbeef12345678-00000000000000012", // too long
		"deadbeefXYZ45678-0000000000000001",  // bad hex
	}
	for _, s := range bad {
		if tc, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) = %v, true; want ok=false", s, tc)
		}
	}
}

func TestTraceContextNilSafety(t *testing.T) {
	var sp *Span
	if tc := sp.Context(); tc.Valid() {
		t.Errorf("nil span Context() = %v, want invalid", tc)
	}
	TraceContext{}.Inject(nil) // must not panic
	if _, ok := ExtractTrace(nil); ok {
		t.Error("ExtractTrace(nil) reported ok")
	}
	var r *Registry
	if r.TraceID() != 0 {
		t.Error("nil registry TraceID != 0")
	}
	if spans := r.ExportSubtrees(1, 2); spans != nil {
		t.Errorf("nil registry ExportSubtrees = %v, want nil", spans)
	}
	if n := r.ImportSpans([]WireSpan{{Name: "x", ID: 1}}, nil, 0, nil); n != 0 {
		t.Errorf("nil registry ImportSpans = %d, want 0", n)
	}
}

func TestRegistryTraceIDNonZeroAndDistinct(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	if a.TraceID() == 0 || b.TraceID() == 0 {
		t.Fatal("registry born with zero trace ID")
	}
	if a.TraceID() == b.TraceID() {
		t.Fatal("two registries share a trace ID")
	}
}

// TestExportImportMerge is the cross-process round trip in miniature:
// a "daemon" registry records a queue-wait span and a job span with a
// stage child; the wire spans are imported into a "client" registry
// under its submit span; the merged trace must show the daemon spans as
// descendants of the submit span, on shifted lanes, with fresh IDs.
func TestExportImportMerge(t *testing.T) {
	daemon := NewRegistry()
	wait := daemon.StartSpanLane("queue-wait", 1)
	wait.End()
	jobSpan := daemon.StartSpan("job")
	stage := jobSpan.Child("stage.compile")
	stage.End()
	jobSpan.End()
	unrelated := daemon.StartSpan("unrelated")
	unrelated.End()

	wire := daemon.ExportSubtrees(wait.ID(), jobSpan.ID())
	if len(wire) != 3 {
		t.Fatalf("exported %d spans, want 3 (queue-wait, job, stage)", len(wire))
	}
	for _, w := range wire {
		if w.Name == "unrelated" {
			t.Fatal("unrelated span leaked into the subtree export")
		}
	}

	client := NewRegistry()
	submit := client.StartSpan("submit")
	n := client.ImportSpans(wire, submit, 10, map[string]string{"daemon": "test"})
	submit.End()
	if n != 3 {
		t.Fatalf("imported %d spans, want 3", n)
	}

	spans := client.Spans()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	sub, ok := byName["submit"]
	if !ok {
		t.Fatal("submit span missing after import")
	}
	for _, name := range []string{"queue-wait", "job"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("imported span %q missing", name)
		}
		if s.Parent != sub.ID {
			t.Errorf("%s parent = %d, want submit %d", name, s.Parent, sub.ID)
		}
		if s.Args["daemon"] != "test" {
			t.Errorf("%s lost the extra arg: %v", name, s.Args)
		}
	}
	st, ok := byName["stage.compile"]
	if !ok {
		t.Fatal("imported stage span missing")
	}
	if st.Parent != byName["job"].ID {
		t.Errorf("stage parent = %d, want imported job %d (internal links preserved)", st.Parent, byName["job"].ID)
	}
	if byName["queue-wait"].Lane != 11 || byName["job"].Lane != 10 {
		t.Errorf("lanes = %d/%d, want shifted by 10", byName["queue-wait"].Lane, byName["job"].Lane)
	}
	if st.ID == stage.ID() && byName["job"].ID == jobSpan.ID() {
		t.Error("imported spans kept remote IDs; want fresh local IDs")
	}
}

// TestImportSpansClockMapping: wall-clock starts land on the importing
// registry's epoch, so a span recorded "now" imports near now.
func TestImportSpansClockMapping(t *testing.T) {
	r := NewRegistry()
	w := WireSpan{Name: "x", ID: 1, StartUnixNs: time.Now().UnixNano(), DurNs: 1000}
	r.ImportSpans([]WireSpan{w}, nil, 0, nil)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("have %d spans", len(spans))
	}
	if off := spans[0].Start; off < -time.Second || off > time.Minute {
		t.Errorf("imported start offset %v is nowhere near the epoch", off)
	}
	if spans[0].Parent != 0 {
		t.Errorf("orphan with nil parent got parent %d, want 0 (root)", spans[0].Parent)
	}
}
