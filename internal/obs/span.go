package obs

import (
	"sort"
	"time"
)

// Spans are lightweight hierarchical timers. A span is started on a lane
// (an integer "thread" lane in the exported trace; concurrent spans belong
// on distinct lanes so trace viewers render them side by side), children
// inherit their parent's lane, and End records the finished span into the
// registry. Arguments (SetArg) become the args block of the exported
// trace_event, so a candidate span can carry its mutation action, score,
// or error.
//
// A span is owned by the goroutine that started it: Start/Child/SetArg/End
// need no external synchronization for one span, and spans on different
// goroutines never share state except the registry append under its lock.

// SpanRecord is one finished span as stored in the registry. Start is the
// offset from the registry's epoch.
type SpanRecord struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 = root
	Lane   int
	Start  time.Duration
	Dur    time.Duration
	Args   map[string]string
}

// Span is an in-flight span; see the package comment for the ownership
// rules. All methods on a nil span are no-ops.
type Span struct {
	r      *Registry
	name   string
	id     uint64
	parent uint64
	lane   int
	start  time.Time
	args   map[string]string
}

// StartSpan starts a root span on lane 0.
func (r *Registry) StartSpan(name string) *Span { return r.StartSpanLane(name, 0) }

// StartSpanLane starts a root span on an explicit lane.
func (r *Registry) StartSpanLane(name string, lane int) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, id: r.spanID.Add(1), lane: lane, start: time.Now()}
}

// Child starts a sub-span on the parent's lane.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, name: name, id: s.r.spanID.Add(1), parent: s.id, lane: s.lane, start: time.Now()}
}

// ChildLane starts a sub-span on an explicit lane — for children that run
// concurrently with each other (one lane per worker keeps them side by
// side in trace viewers). Unlike the other span methods it is safe to
// call from a goroutine other than the parent's: it reads only the
// parent's immutable identity.
func (s *Span) ChildLane(name string, lane int) *Span {
	if s == nil {
		return nil
	}
	return &Span{r: s.r, name: name, id: s.r.spanID.Add(1), parent: s.id, lane: lane, start: time.Now()}
}

// SetArg attaches a key/value argument, exported in the trace.
func (s *Span) SetArg(key, value string) {
	if s == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
}

// ID returns the span's registry-local identity (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span and records it in the registry (and the
// registry's flight recorder, when one is attached).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.r.record(SpanRecord{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Lane:   s.lane,
		Start:  s.start.Sub(s.r.epoch),
		Dur:    time.Since(s.start),
		Args:   s.args,
	})
}

// SetLaneName labels a lane for the trace export (rendered as the thread
// name in chrome://tracing / Perfetto). Idempotent.
func (r *Registry) SetLaneName(lane int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lanes[lane] = name
	r.mu.Unlock()
}

// Spans returns the finished spans in start order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
