package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func promOutput(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWritePromShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("served.jobs.submitted").Add(3)
	r.Gauge("served.queue.depth").Set(2)
	r.Histogram("stage.compile.ns").Observe(3 * time.Microsecond)
	out := promOutput(t, r)

	for _, want := range []string{
		"# TYPE served_jobs_submitted_total counter",
		"served_jobs_submitted_total 3",
		"# TYPE served_queue_depth gauge",
		"served_queue_depth 2",
		"# TYPE stage_compile_ns histogram",
		`stage_compile_ns_bucket{le="+Inf"} 1`,
		"stage_compile_ns_sum 3000",
		"stage_compile_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("own exposition fails CheckExposition: %v", err)
	}
}

func TestWritePromCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat.ns")
	h.ObserveNs(3)   // bucket [2,4)
	h.ObserveNs(3)   // same bucket
	h.ObserveNs(100) // bucket [64,128)
	out := promOutput(t, r)
	// The cumulative count at the top bucket's bound equals the total.
	if !strings.Contains(out, `lat_ns_bucket{le="128"} 3`) {
		t.Errorf("want cumulative top bucket le=128 -> 3:\n%s", out)
	}
	if !strings.Contains(out, `lat_ns_bucket{le="4"} 2`) {
		t.Errorf("want le=4 -> 2:\n%s", out)
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

// TestZeroCountHistogramAllExporters: a histogram that was created but
// never observed must render in all four exporters without a division
// by zero or a NaN.
func TestZeroCountHistogramAllExporters(t *testing.T) {
	r := NewRegistry()
	r.Histogram("never.observed.ns") // count 0
	sp := r.StartSpan("tick")
	sp.End()

	var text, metrics, trace, prom bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Errorf("WriteText: %v", err)
	}
	if err := r.WriteMetricsJSON(&metrics); err != nil {
		t.Errorf("WriteMetricsJSON: %v", err)
	}
	if err := r.WriteTrace(&trace); err != nil {
		t.Errorf("WriteTrace: %v", err)
	}
	if err := r.WriteProm(&prom); err != nil {
		t.Errorf("WriteProm: %v", err)
	}
	for name, out := range map[string]string{
		"text": text.String(), "metrics": metrics.String(),
		"trace": trace.String(), "prom": prom.String(),
	} {
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf\"") && name == "metrics" {
			t.Errorf("%s exporter rendered NaN/Inf for a zero-count histogram:\n%s", name, out)
		}
	}
	if !json.Valid(metrics.Bytes()) {
		t.Error("metrics JSON invalid for zero-count histogram")
	}
	if !json.Valid(trace.Bytes()) {
		t.Error("trace JSON invalid for zero-count histogram")
	}
	out := prom.String()
	for _, want := range []string{
		`never_observed_ns_bucket{le="+Inf"} 0`,
		"never_observed_ns_sum 0",
		"never_observed_ns_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom exposition missing %q for zero-count histogram:\n%s", want, out)
		}
	}
	if err := CheckExposition(prom.Bytes()); err != nil {
		t.Errorf("CheckExposition on zero-count exposition: %v", err)
	}
}

// TestSingleObservationProm: with one observation the _sum equals the
// observation and every bucket at or past it counts 1 (the quantile
// clamp is pinned by TestHistogramSingleObservation).
func TestSingleObservationProm(t *testing.T) {
	r := NewRegistry()
	r.Histogram("one.ns").ObserveNs(5)
	out := promOutput(t, r)
	if !strings.Contains(out, "one_ns_sum 5") || !strings.Contains(out, "one_ns_count 1") {
		t.Errorf("single observation exposition wrong:\n%s", out)
	}
	if err := CheckExposition([]byte(out)); err != nil {
		t.Errorf("CheckExposition: %v", err)
	}
}

func TestWritePromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("nil registry WriteProm: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"stage.compile.ns": "stage_compile_ns",
		"cache.store.hits": "cache_store_hits",
		"9lives":           "_9lives",
		"ok_name:x":        "ok_name:x",
		"spaces and-dash":  "spaces_and_dash",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	bad := map[string]string{
		"no TYPE":            "some_metric 1\n",
		"counter sans total": "# TYPE hits counter\nhits 1\n",
		"bad name":           "# TYPE bad-name gauge\nbad-name 1\n",
		"bad value":          "# TYPE g gauge\ng one\n",
		"non-cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"stray comment": "# NOTE whatever\n",
	}
	for name, doc := range bad {
		if err := CheckExposition([]byte(doc)); err == nil {
			t.Errorf("CheckExposition accepted %s:\n%s", name, doc)
		}
	}
	good := "# HELP g a gauge\n# TYPE g gauge\ng 1\n\n# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1.5\nh_count 2\n"
	if err := CheckExposition([]byte(good)); err != nil {
		t.Errorf("CheckExposition rejected valid exposition: %v", err)
	}
}

func TestDashHandler(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, time.Hour, 4)
	r.Gauge("served.queue.depth").Set(1)
	s.SampleNow()
	h := DashHandler(s)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dash", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "<!doctype html>") {
		t.Errorf("GET /dash: code %d, body %.60q", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "prefers-color-scheme: dark") {
		t.Error("dashboard HTML has no dark-mode palette")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dash/data", nil))
	var doc DashDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("GET /dash/data is not JSON: %v", err)
	}
	if len(doc.Series) == 0 {
		t.Error("dash data has no series")
	}

	// Nil sampler: both endpoints still answer.
	h = DashHandler(nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dash/data", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("nil-sampler /dash/data code = %d", rec.Code)
	}
}
