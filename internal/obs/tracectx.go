package obs

// Cross-process trace propagation, the fleet tier's backbone. A
// TraceContext is the pair (trace ID, span ID) a process hands to
// another over an HTTP header so daemon-side work can be stitched under
// the client's span in one merged trace: the blob HTTP client and the
// service jobs client inject it, cmd/served and blob.HandlerObs extract
// it, and ExportSubtrees/ImportSpans move the finished span records
// themselves across the boundary (the daemon returns its job-span
// subtree with the result; the client re-homes it under its submit
// span). Timestamps cross the wire as absolute wall-clock nanoseconds —
// merged timelines are exact on one machine and off by clock skew
// across machines, which is the honest best a header can do.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// TraceHeader is the HTTP header carrying a serialized TraceContext
// ("%016x-%016x", trace ID then span ID).
const TraceHeader = "X-Repro-Trace"

// TraceContext names one span in one process's registry. The zero value
// is "no context" (Valid reports false) and serializes to nothing.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a trace identity. A zero
// SpanID with a non-zero TraceID is valid: "this trace, no particular
// parent span".
func (t TraceContext) Valid() bool { return t.TraceID != 0 }

// String renders the wire form, "%016x-%016x".
func (t TraceContext) String() string {
	return fmt.Sprintf("%016x-%016x", t.TraceID, t.SpanID)
}

// ParseTraceContext decodes the wire form. Anything malformed — wrong
// length, bad hex, zero trace ID — reports ok=false rather than an
// error: an unparsable header means "untraced request", never a failed
// request.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return TraceContext{}, false
	}
	tid, err := strconv.ParseUint(s[:16], 16, 64)
	if err != nil || tid == 0 {
		return TraceContext{}, false
	}
	sid, err := strconv.ParseUint(s[17:], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: tid, SpanID: sid}, true
}

// Inject sets the trace header on h. Invalid contexts and nil headers
// are no-ops.
func (t TraceContext) Inject(h http.Header) {
	if t.Valid() && h != nil {
		h.Set(TraceHeader, t.String())
	}
}

// ExtractTrace reads the trace header from h; ok is false when the
// header is absent or malformed.
func ExtractTrace(h http.Header) (TraceContext, bool) {
	if h == nil {
		return TraceContext{}, false
	}
	return ParseTraceContext(h.Get(TraceHeader))
}

// Context returns the trace context naming this span: the owning
// registry's trace ID plus the span's ID. A nil span yields the zero
// (invalid) context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.r.traceID, SpanID: s.id}
}

// WireSpan is one finished span in cross-process form: IDs are local to
// the exporting registry, and the start time is absolute wall-clock
// nanoseconds so the importer can place it on its own epoch.
type WireSpan struct {
	Name        string            `json:"name"`
	ID          uint64            `json:"id"`
	Parent      uint64            `json:"parent,omitempty"`
	Lane        int               `json:"lane,omitempty"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurNs       int64             `json:"dur_ns"`
	Args        map[string]string `json:"args,omitempty"`
}

// ExportSubtrees returns the wire form of every finished span whose
// parent chain reaches one of the given root IDs (the roots included),
// in start order. Spans still in flight are absent — export after the
// roots have ended. Nil registry or no roots exports nothing.
func (r *Registry) ExportSubtrees(roots ...uint64) []WireSpan {
	if r == nil || len(roots) == 0 {
		return nil
	}
	rootSet := make(map[uint64]bool, len(roots))
	for _, id := range roots {
		if id != 0 {
			rootSet[id] = true
		}
	}
	if len(rootSet) == 0 {
		return nil
	}
	spans := r.Spans()
	parentOf := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	// reaches memoizes "this span's ancestor chain hits a root". The
	// chain is bounded by the span count, so a corrupt parent cycle
	// cannot loop forever.
	reaches := make(map[uint64]bool, len(spans))
	var walk func(id uint64, hops int) bool
	walk = func(id uint64, hops int) bool {
		if rootSet[id] {
			return true
		}
		if v, ok := reaches[id]; ok {
			return v
		}
		p, ok := parentOf[id]
		if !ok || p == 0 || hops > len(spans) {
			reaches[id] = false
			return false
		}
		v := walk(p, hops+1)
		reaches[id] = v
		return v
	}
	var out []WireSpan
	for _, s := range spans {
		if !walk(s.ID, 0) {
			continue
		}
		out = append(out, WireSpan{
			Name:        s.Name,
			ID:          s.ID,
			Parent:      s.Parent,
			Lane:        s.Lane,
			StartUnixNs: r.epoch.Add(s.Start).UnixNano(),
			DurNs:       s.Dur.Nanoseconds(),
			Args:        s.Args,
		})
	}
	return out
}

// ImportSpans merges spans exported by another process's registry into
// this one: every span gets a fresh local ID (so imported IDs never
// collide with native ones), internal parent links are preserved, spans
// whose exported parent is absent from the slice are re-parented under
// parent (the client's submit span; nil leaves them as roots), lanes are
// shifted by laneBase, and wall-clock starts are converted onto this
// registry's epoch. Each extraArgs entry is stamped onto every imported
// span (e.g. the remote daemon's address). Returns the number imported;
// a nil registry imports nothing.
func (r *Registry) ImportSpans(spans []WireSpan, parent *Span, laneBase int, extraArgs map[string]string) int {
	if r == nil || len(spans) == 0 {
		return 0
	}
	idmap := make(map[uint64]uint64, len(spans))
	for _, w := range spans {
		idmap[w.ID] = r.spanID.Add(1)
	}
	var parentID uint64
	if parent != nil {
		parentID = parent.id
	}
	for _, w := range spans {
		rec := SpanRecord{
			Name:  w.Name,
			ID:    idmap[w.ID],
			Lane:  laneBase + w.Lane,
			Start: time.Unix(0, w.StartUnixNs).Sub(r.epoch),
			Dur:   time.Duration(w.DurNs),
		}
		if p, ok := idmap[w.Parent]; ok && w.Parent != 0 {
			rec.Parent = p
		} else {
			rec.Parent = parentID
		}
		if len(w.Args)+len(extraArgs) > 0 {
			rec.Args = make(map[string]string, len(w.Args)+len(extraArgs))
			for k, v := range w.Args {
				rec.Args[k] = v
			}
			for k, v := range extraArgs {
				rec.Args[k] = v
			}
		}
		r.record(rec)
	}
	return len(spans)
}
