package obs

// FlightRecorder is the postmortem ring: a bounded buffer of the last N
// completed spans, cheap enough to leave attached to a production
// registry forever. When a daemon wedges, the ring answers "what were
// the last things that finished, and when?" without a full trace export
// — cmd/served and cmd/explore dump it on SIGQUIT and serve it at
// /debug/flight.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightRecorder records the most recent completed spans into a fixed
// ring. All methods on a nil recorder are no-ops, so the uninstrumented
// path stays free.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	full  bool
	total uint64
	epoch time.Time
}

// NewFlightRecorder returns a recorder keeping the last capacity spans
// (<= 0 means 256). Attach it with Registry.AttachFlight.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{ring: make([]SpanRecord, capacity)}
}

// AttachFlight wires f to receive every span the registry records from
// now on. One recorder per registry; attaching replaces any previous
// one. Nil registry or recorder is a no-op.
func (r *Registry) AttachFlight(f *FlightRecorder) {
	if r == nil || f == nil {
		return
	}
	f.mu.Lock()
	f.epoch = r.epoch
	f.mu.Unlock()
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
}

// Record stores one finished span, evicting the oldest when full.
func (f *FlightRecorder) Record(rec SpanRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring[f.next] = rec
	f.next++
	if f.next == len(f.ring) {
		f.next, f.full = 0, true
	}
	f.total++
	f.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (f *FlightRecorder) Spans() []SpanRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]SpanRecord(nil), f.ring[:f.next]...)
	}
	out := make([]SpanRecord, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Total returns how many spans have ever been recorded (not just the
// ones still in the ring).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// flightDoc is the WriteJSON shape.
type flightDoc struct {
	Capacity int        `json:"capacity"`
	Total    uint64     `json:"total"`
	Spans    []WireSpan `json:"spans"`
}

// WriteJSON dumps the ring as one JSON document of WireSpans (absolute
// wall-clock starts when the recorder is attached to a registry; epoch
// offsets read as small absolute times otherwise). Oldest span first. A
// nil recorder writes nothing and reports no error.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	epoch := f.epoch
	f.mu.Unlock()
	spans := f.Spans()
	doc := flightDoc{Capacity: cap(f.ring), Total: f.Total(), Spans: make([]WireSpan, 0, len(spans))}
	for _, s := range spans {
		doc.Spans = append(doc.Spans, WireSpan{
			Name:        s.Name,
			ID:          s.ID,
			Parent:      s.Parent,
			Lane:        s.Lane,
			StartUnixNs: epoch.Add(s.Start).UnixNano(),
			DurNs:       s.Dur.Nanoseconds(),
			Args:        s.Args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}
