package obs

// Sampler turns the registry's point-in-time state into a bounded time
// series: every interval it snapshots all counters, gauges, and
// histograms into a fixed ring, which the dashboard (dash.go) renders as
// sparklines. The ring is bounded so a daemon that runs for weeks holds
// a sliding window, not an unbounded log.

import (
	"sync"
	"time"
)

// Sample is one timestamped snapshot of every metric in a registry.
type Sample struct {
	UnixMs   int64
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistogramSnapshot
}

// Sampler periodically snapshots a registry into a bounded ring. Create
// with NewSampler, then Start; Stop waits for the sampling goroutine to
// exit. All methods on a nil sampler are no-ops.
type Sampler struct {
	reg   *Registry
	every time.Duration

	mu   sync.Mutex
	ring []Sample
	next int
	full bool

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSampler returns a sampler taking one snapshot per interval
// (<= 0 means 1s) keeping the most recent window samples (<= 0 means
// 360 — two hours at the default interval). Nil registry yields nil.
func NewSampler(reg *Registry, every time.Duration, window int) *Sampler {
	if reg == nil {
		return nil
	}
	if every <= 0 {
		every = time.Second
	}
	if window <= 0 {
		window = 360
	}
	return &Sampler{
		reg:   reg,
		every: every,
		ring:  make([]Sample, window),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Interval returns the sampling interval (0 for a nil sampler).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.every
}

// Start launches the sampling goroutine. Idempotent; nil-safe.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.every)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.SampleNow()
				case <-s.stop:
					return
				}
			}
		}()
	})
}

// Stop halts sampling and waits for the goroutine to exit. Safe to call
// without Start, more than once, and on nil.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
}

// SampleNow takes one snapshot immediately (also used by the ticker).
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	smp := Sample{
		UnixMs:   time.Now().UnixMilli(),
		Counters: s.reg.Counters(),
		Gauges:   s.reg.Gauges(),
		Hists:    s.reg.Histograms(),
	}
	s.mu.Lock()
	s.ring[s.next] = smp
	s.next++
	if s.next == len(s.ring) {
		s.next, s.full = 0, true
	}
	s.mu.Unlock()
}

// Samples returns the window, oldest first.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]Sample(nil), s.ring[:s.next]...)
	}
	out := make([]Sample, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}
