package obs

// The live exploration dashboard: a dependency-free single-file HTML
// page (GET /dash) polling a JSON time-series endpoint (GET /dash/data)
// fed by a Sampler, rendering one inline-SVG sparkline per series —
// best score so far, frontier size, cache hit rate, queue depth, stage
// latency percentiles. No build step, no external assets: the page is a
// Go string constant and the charts are paths computed in ~80 lines of
// inline JavaScript, so it works from a daemon on an air-gapped box.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
)

// DashPoint is one (time, value) pair: [unix milliseconds, value].
type DashPoint [2]float64

// DashSeries is one metric's sampled history.
type DashSeries struct {
	Name   string      `json:"name"`
	Points []DashPoint `json:"points"`
}

// DashDoc is the /dash/data payload.
type DashDoc struct {
	UpdatedUnixMs int64        `json:"updated_unix_ms"`
	IntervalMs    int64        `json:"interval_ms"`
	Series        []DashSeries `json:"series"`
}

// dashPreferred pins the panels an exploration run is watched by to the
// front of the grid; everything else follows alphabetically.
var dashPreferred = []string{
	"explore.best.score",
	"explore.frontier.size",
	"cache.hit.rate",
	"served.queue.depth",
	"served.jobs.running",
}

// dashValues flattens one sample into chartable series values:
// counters as-is (cumulative), gauges as-is (a ".milli" suffix is
// divided out, so fixed-point score gauges chart as real numbers), and
// each ".ns" latency histogram as p50/p95 milliseconds. A derived
// cache.hit.rate aggregates the per-stage memory-tier cache counters.
func dashValues(smp Sample) map[string]float64 {
	out := make(map[string]float64, len(smp.Counters)+len(smp.Gauges)+2*len(smp.Hists)+1)
	var hits, misses float64
	for name, v := range smp.Counters {
		out[name] = float64(v)
		if strings.HasPrefix(name, "cache.") && !strings.HasPrefix(name, "cache.store.") {
			switch {
			case strings.HasSuffix(name, ".hits"):
				hits += float64(v)
			case strings.HasSuffix(name, ".misses"):
				misses += float64(v)
			}
		}
	}
	if hits+misses > 0 {
		out["cache.hit.rate"] = hits / (hits + misses)
	}
	for name, v := range smp.Gauges {
		if base := strings.TrimSuffix(name, ".milli"); base != name {
			out[base] = float64(v) / 1000
		} else {
			out[name] = float64(v)
		}
	}
	for name, h := range smp.Hists {
		if h.Count == 0 {
			continue
		}
		base := strings.TrimSuffix(name, ".ns")
		out[base+".p50.ms"] = h.P50Ns / 1e6
		out[base+".p95.ms"] = h.P95Ns / 1e6
	}
	return out
}

// DashData assembles the sampled window into per-series point lists.
// Nil sampler yields an empty document.
func (s *Sampler) DashData() DashDoc {
	doc := DashDoc{IntervalMs: s.Interval().Milliseconds()}
	samples := s.Samples()
	bySeries := map[string][]DashPoint{}
	for _, smp := range samples {
		doc.UpdatedUnixMs = smp.UnixMs
		for name, v := range dashValues(smp) {
			bySeries[name] = append(bySeries[name], DashPoint{float64(smp.UnixMs), v})
		}
	}
	names := make([]string, 0, len(bySeries))
	for name := range bySeries {
		names = append(names, name)
	}
	sort.Strings(names)
	rank := func(name string) int {
		for i, p := range dashPreferred {
			if p == name {
				return i
			}
		}
		return len(dashPreferred)
	}
	sort.SliceStable(names, func(i, j int) bool { return rank(names[i]) < rank(names[j]) })
	for _, name := range names {
		doc.Series = append(doc.Series, DashSeries{Name: name, Points: bySeries[name]})
	}
	return doc
}

// DashHandler serves the dashboard: the HTML page at its mount path and
// the JSON series document at <mount>/data. Mount it at both /dash and
// /dash/data (the page fetches the absolute path /dash/data). Works —
// as an empty dashboard — with a nil sampler.
func DashHandler(s *Sampler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/data") {
			doc := s.DashData()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(&doc)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(dashHTML))
	})
}

// dashHTML is the whole dashboard. Single series per panel, so no
// legends; text wears ink tokens, never the series color; light and
// dark palettes swap via CSS custom properties under
// prefers-color-scheme.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>exploration dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --muted:          #898781;
    --grid:           #e1e0d9;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --muted:          #898781;
      --grid:           #2c2c2a;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --muted:          #898781;
    --grid:           #2c2c2a;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
  }
  html, body { margin: 0; }
  body.viz-root {
    background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
    padding: 20px;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 16px; }
  header h1 { font-size: 16px; font-weight: 600; margin: 0; }
  header .sub { color: var(--text-secondary); font-size: 12px; }
  #grid {
    display: grid;
    grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
    gap: 12px;
  }
  .panel {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 8px;
    padding: 10px 12px 8px;
  }
  .panel .name { color: var(--text-secondary); font-size: 12px; overflow-wrap: anywhere; }
  .panel .val {
    font-size: 22px; font-weight: 600; margin: 2px 0 4px;
    font-variant-numeric: tabular-nums;
  }
  .panel .hover { color: var(--text-secondary); font-size: 11px; min-height: 14px;
    font-variant-numeric: tabular-nums; }
  .panel svg { display: block; width: 100%; height: 56px; }
  .empty { color: var(--muted); padding: 24px 0; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>exploration dashboard</h1>
  <span class="sub" id="status">connecting&hellip;</span>
</header>
<div id="grid"><div class="empty">waiting for first sample&hellip;</div></div>
<script>
"use strict";
const W = 300, H = 56, PAD = 3;
const fmt = v => {
  if (!isFinite(v)) return "-";
  const a = Math.abs(v);
  if (a >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (a >= 1e4) return (v / 1e3).toFixed(1) + "k";
  if (a >= 100 || v === Math.round(v)) return String(Math.round(v));
  return v.toFixed(a >= 1 ? 2 : 3);
};
const tfmt = ms => new Date(ms).toLocaleTimeString();

function panel(s) {
  const pts = s.points;
  let lo = Infinity, hi = -Infinity;
  for (const [, v] of pts) { if (v < lo) lo = v; if (v > hi) hi = v; }
  if (!isFinite(lo)) { lo = 0; hi = 1; }
  if (hi === lo) { hi = lo + 1; }
  const t0 = pts[0][0], t1 = pts[pts.length - 1][0];
  const x = t => t1 === t0 ? W / 2 : PAD + (t - t0) / (t1 - t0) * (W - 2 * PAD);
  const y = v => H - PAD - (v - lo) / (hi - lo) * (H - 2 * PAD);
  let d = "";
  for (let i = 0; i < pts.length; i++)
    d += (i ? "L" : "M") + x(pts[i][0]).toFixed(1) + " " + y(pts[i][1]).toFixed(1);
  const last = pts[pts.length - 1][1];
  const div = document.createElement("div");
  div.className = "panel";
  div.innerHTML =
    '<div class="name"></div><div class="val"></div>' +
    '<svg viewBox="0 0 ' + W + ' ' + H + '" preserveAspectRatio="none" role="img">' +
    '<line x1="0" y1="' + (H - PAD) + '" x2="' + W + '" y2="' + (H - PAD) +
      '" stroke="var(--grid)" stroke-width="1"></line>' +
    '<path d="' + d + '" fill="none" stroke="var(--series-1)" stroke-width="2" ' +
      'stroke-linejoin="round" stroke-linecap="round"></path>' +
    '<circle r="3" fill="var(--series-1)" cx="' + x(t1).toFixed(1) +
      '" cy="' + y(last).toFixed(1) + '"></circle>' +
    '<circle class="hoverdot" r="4" fill="none" stroke="var(--series-1)" ' +
      'stroke-width="2" style="display:none"></circle>' +
    '</svg><div class="hover"></div>';
  div.querySelector(".name").textContent = s.name;
  div.querySelector(".val").textContent = fmt(last);
  const svg = div.querySelector("svg"), hov = div.querySelector(".hover"),
        dot = div.querySelector(".hoverdot");
  svg.addEventListener("mousemove", ev => {
    const r = svg.getBoundingClientRect();
    const mx = (ev.clientX - r.left) / r.width * W;
    let best = 0, bd = Infinity;
    for (let i = 0; i < pts.length; i++) {
      const dd = Math.abs(x(pts[i][0]) - mx);
      if (dd < bd) { bd = dd; best = i; }
    }
    const [t, v] = pts[best];
    dot.style.display = "";
    dot.setAttribute("cx", x(t).toFixed(1));
    dot.setAttribute("cy", y(v).toFixed(1));
    hov.textContent = tfmt(t) + " · " + fmt(v);
  });
  svg.addEventListener("mouseleave", () => {
    dot.style.display = "none";
    hov.textContent = "";
  });
  return div;
}

async function refresh() {
  try {
    const res = await fetch("/dash/data", { cache: "no-store" });
    if (!res.ok) throw new Error("HTTP " + res.status);
    const doc = await res.json();
    const grid = document.getElementById("grid");
    grid.replaceChildren();
    const series = (doc.series || []).filter(s => s.points && s.points.length);
    if (!series.length) {
      const e = document.createElement("div");
      e.className = "empty";
      e.textContent = "no samples yet — is the sampler running?";
      grid.appendChild(e);
    }
    for (const s of series) grid.appendChild(panel(s));
    document.getElementById("status").textContent = doc.updated_unix_ms
      ? "updated " + tfmt(doc.updated_unix_ms) + " · " + series.length + " series"
      : "no data yet";
  } catch (err) {
    document.getElementById("status").textContent = "fetch failed: " + err.message;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
