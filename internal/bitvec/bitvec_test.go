package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a Value to a non-negative big.Int for reference checks.
func toBig(v Value) *big.Int {
	r := new(big.Int)
	for i := wordsFor(v.Width()) - 1; i >= 0; i-- {
		r.Lsh(r, 64)
		r.Or(r, new(big.Int).SetUint64(v.word(i)))
	}
	return r
}

// randValue returns a random value of the given width.
func randValue(rnd *rand.Rand, width int) Value {
	words := make([]uint64, wordsFor(width))
	for i := range words {
		words[i] = rnd.Uint64()
	}
	return FromWords(width, words)
}

func mask(width int) *big.Int {
	return new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(width)), big.NewInt(1))
}

// widths is an awkward mix of sizes: 1-bit, word-boundary and multi-word.
var widths = []int{1, 3, 7, 8, 16, 31, 32, 33, 40, 63, 64, 65, 100, 128, 129, 200}

func TestFromUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return FromUint64(64, v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromInt64SignExtension(t *testing.T) {
	cases := []struct {
		width int
		v     int64
		want  int64
	}{
		{8, -1, -1},
		{8, 127, 127},
		{8, 128, -128},
		{4, 7, 7},
		{4, 8, -8},
		{100, -5, -5},
		{64, -1, -1},
	}
	for _, c := range cases {
		got := FromInt64(c.width, c.v).Int64()
		if got != c.want {
			t.Errorf("FromInt64(%d, %d).Int64() = %d, want %d", c.width, c.v, got, c.want)
		}
	}
}

func checkBinary(t *testing.T, name string, op func(a, b Value) Value, ref func(a, b, m *big.Int) *big.Int) {
	t.Helper()
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		w := widths[rnd.Intn(len(widths))]
		a, b := randValue(rnd, w), randValue(rnd, w)
		got := op(a, b)
		if got.Width() != w {
			t.Fatalf("%s: result width %d, want %d", name, got.Width(), w)
		}
		m := mask(w)
		want := new(big.Int).And(ref(toBig(a), toBig(b), m), m)
		if toBig(got).Cmp(want) != 0 {
			t.Fatalf("%s(%s, %s) = %s, want %s", name, a, b, got, want.Text(16))
		}
	}
}

func TestAdd(t *testing.T) {
	checkBinary(t, "Add", Value.Add, func(a, b, m *big.Int) *big.Int { return new(big.Int).Add(a, b) })
}

func TestSub(t *testing.T) {
	checkBinary(t, "Sub", Value.Sub, func(a, b, m *big.Int) *big.Int { return new(big.Int).Sub(a, b) })
}

func TestMul(t *testing.T) {
	checkBinary(t, "Mul", Value.Mul, func(a, b, m *big.Int) *big.Int { return new(big.Int).Mul(a, b) })
}

func TestAnd(t *testing.T) {
	checkBinary(t, "And", Value.And, func(a, b, m *big.Int) *big.Int { return new(big.Int).And(a, b) })
}

func TestOr(t *testing.T) {
	checkBinary(t, "Or", Value.Or, func(a, b, m *big.Int) *big.Int { return new(big.Int).Or(a, b) })
}

func TestXor(t *testing.T) {
	checkBinary(t, "Xor", Value.Xor, func(a, b, m *big.Int) *big.Int { return new(big.Int).Xor(a, b) })
}

func TestDivMod(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		w := widths[rnd.Intn(len(widths))]
		a, b := randValue(rnd, w), randValue(rnd, w)
		if b.IsZero() {
			if !a.DivU(b).Eq(New(w).Not()) {
				t.Fatalf("div by zero should be all ones")
			}
			if !a.ModU(b).Eq(a) {
				t.Fatalf("mod by zero should be the dividend")
			}
			continue
		}
		q, r := a.DivU(b), a.ModU(b)
		wantQ := new(big.Int).Div(toBig(a), toBig(b))
		wantR := new(big.Int).Mod(toBig(a), toBig(b))
		if toBig(q).Cmp(wantQ) != 0 || toBig(r).Cmp(wantR) != 0 {
			t.Fatalf("divmod(%s, %s) = %s, %s; want %s, %s", a, b, q, r, wantQ, wantR)
		}
	}
}

func TestAddCarry(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		w := widths[rnd.Intn(len(widths))]
		a, b := randValue(rnd, w), randValue(rnd, w)
		_, carry := a.AddCarry(b)
		sum := new(big.Int).Add(toBig(a), toBig(b))
		wantCarry := sum.Cmp(mask(w)) > 0
		if carry != wantCarry {
			t.Fatalf("AddCarry(%s, %s) carry = %v, want %v", a, b, carry, wantCarry)
		}
	}
}

func TestSubBorrow(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		w := widths[rnd.Intn(len(widths))]
		a, b := randValue(rnd, w), randValue(rnd, w)
		_, borrow := a.SubBorrow(b)
		if borrow != (toBig(a).Cmp(toBig(b)) < 0) {
			t.Fatalf("SubBorrow(%s, %s) borrow = %v", a, b, borrow)
		}
	}
}

func TestShifts(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		w := widths[rnd.Intn(len(widths))]
		a := randValue(rnd, w)
		n := rnd.Intn(w + 10)
		m := mask(w)

		gotL := a.Shl(n)
		wantL := new(big.Int).And(new(big.Int).Lsh(toBig(a), uint(n)), m)
		if toBig(gotL).Cmp(wantL) != 0 {
			t.Fatalf("Shl(%s, %d) = %s, want %s", a, n, gotL, wantL.Text(16))
		}

		gotR := a.ShrL(n)
		wantR := new(big.Int).Rsh(toBig(a), uint(n))
		if toBig(gotR).Cmp(wantR) != 0 {
			t.Fatalf("ShrL(%s, %d) = %s, want %s", a, n, gotR, wantR.Text(16))
		}

		gotA := a.ShrA(n)
		// Reference: shift of the sign-extended value.
		ext := toBig(a)
		if a.Sign() {
			ext = new(big.Int).Sub(ext, new(big.Int).Lsh(big.NewInt(1), uint(w)))
		}
		wantA := new(big.Int).And(new(big.Int).Rsh(ext, uint(n)), m)
		if toBig(gotA).Cmp(wantA) != 0 {
			t.Fatalf("ShrA(%s, %d) = %s, want %s", a, n, gotA, wantA.Text(16))
		}
	}
}

func TestSliceConcatInverse(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		w := 2 + rnd.Intn(190)
		a := randValue(rnd, w)
		cut := 1 + rnd.Intn(w-1)
		hi := a.Slice(w-1, cut)
		lo := a.Slice(cut-1, 0)
		if got := hi.Concat(lo); !got.Eq(a) {
			t.Fatalf("Concat(Slice hi, Slice lo) = %s, want %s", got, a)
		}
	}
}

func TestExtensions(t *testing.T) {
	v := FromInt64(8, -3)
	if got := v.SignExt(16).Int64(); got != -3 {
		t.Errorf("SignExt(-3) = %d", got)
	}
	if got := v.ZeroExt(16).Uint64(); got != 0xfd {
		t.Errorf("ZeroExt(0xfd) = %#x", got)
	}
	if got := v.Trunc(4).Uint64(); got != 0xd {
		t.Errorf("Trunc(4) = %#x", got)
	}
	if got := v.SignExt(8); !got.Eq(v) {
		t.Errorf("SignExt to same width changed value")
	}
}

func TestCompare(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		w := widths[rnd.Intn(len(widths))]
		a, b := randValue(rnd, w), randValue(rnd, w)
		if got, want := a.CmpU(b), toBig(a).Cmp(toBig(b)); got != want {
			t.Fatalf("CmpU(%s, %s) = %d, want %d", a, b, got, want)
		}
		sa, sb := toBig(a), toBig(b)
		if a.Sign() {
			sa = new(big.Int).Sub(sa, new(big.Int).Lsh(big.NewInt(1), uint(w)))
		}
		if b.Sign() {
			sb = new(big.Int).Sub(sb, new(big.Int).Lsh(big.NewInt(1), uint(w)))
		}
		if got, want := a.CmpS(b), sa.Cmp(sb); got != want {
			t.Fatalf("CmpS(%s, %s) = %d, want %d", a, b, got, want)
		}
	}
}

func TestNegIsSubFromZero(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		w := widths[rnd.Intn(len(widths))]
		a := randValue(rnd, w)
		if !a.Neg().Add(a).IsZero() {
			t.Fatalf("a + (-a) != 0 for %s", a)
		}
	}
}

func TestParseBits(t *testing.T) {
	v, err := ParseBits("1010")
	if err != nil {
		t.Fatal(err)
	}
	if v.Width() != 4 || v.Uint64() != 10 {
		t.Fatalf("ParseBits(1010) = %s", v)
	}
	if v.BitString() != "1010" {
		t.Fatalf("BitString = %q", v.BitString())
	}
	if _, err := ParseBits("10x0"); err == nil {
		t.Fatal("expected error for invalid character")
	}
	if _, err := ParseBits(""); err == nil {
		t.Fatal("expected error for empty string")
	}
}

func TestBitAccess(t *testing.T) {
	v := New(70)
	v2 := v.WithBit(65, 1).WithBit(0, 1)
	if v2.Bit(65) != 1 || v2.Bit(0) != 1 || v2.Bit(64) != 0 {
		t.Fatalf("WithBit/Bit inconsistent: %s", v2)
	}
	if !v.IsZero() {
		t.Fatal("WithBit mutated the receiver")
	}
	if v2.Bit(-1) != 0 || v2.Bit(1000) != 0 {
		t.Fatal("out-of-range Bit should read 0")
	}
}

func TestString(t *testing.T) {
	if got := FromUint64(8, 0x3f).String(); got != "8'h3f" {
		t.Errorf("String = %q", got)
	}
	if got := FromUint64(12, 0).String(); got != "12'h0" {
		t.Errorf("String(0) = %q", got)
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	for _, w := range []int{0, -1, MaxWidth + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched widths did not panic")
		}
	}()
	FromUint64(8, 1).Add(FromUint64(9, 1))
}

func TestMul64AgainstBig(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
		got.Or(got, new(big.Int).SetUint64(lo))
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEqValue(t *testing.T) {
	a := FromUint64(8, 5)
	b := FromUint64(100, 5)
	if !a.EqValue(b) {
		t.Error("EqValue should ignore width")
	}
	if a.Eq(b) {
		t.Error("Eq should respect width")
	}
}
