// Package bitvec implements fixed-width, bit-true two's-complement values.
//
// Every architectural quantity in this repository — storage contents,
// instruction words, RTL temporaries, non-terminal return values — is a
// bitvec.Value. The XSIM simulators of the paper are "bit-true by
// construction"; this package is the construction. Values carry an explicit
// width in bits and all arithmetic wraps modulo 2^width, exactly as the
// corresponding hardware datapath would.
//
// Values up to 64 bits wide are stored inline (no heap allocation), which
// keeps the generated simulators fast; wider values use a word slice.
package bitvec

import (
	"fmt"
	"strings"
)

// MaxWidth bounds the width of a single value. It is far above anything an
// ISDL description needs (the widest practical machine word plus headroom
// for concatenated VLIW instruction words).
const MaxWidth = 1 << 16

// Value is a fixed-width bit vector. The zero Value has width 0 and no bits;
// it is returned by failed operations and is not a valid architectural value.
// Values are immutable: all operations return new Values.
type Value struct {
	width int
	// small holds the bits when width <= 64; otherwise words holds them
	// little-endian, 64 per word. Bits at positions >= width are always
	// zero (canonical form).
	small uint64
	words []uint64
}

func wordsFor(width int) int { return (width + 63) / 64 }

// mask64 returns the canonical mask for an inline value of the given width
// (1..64).
func mask64(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// New returns a zero value of the given width. It panics if width is not in
// [1, MaxWidth]; widths are static properties of an ISDL description and a
// bad one is a programming error, not a runtime condition.
func New(width int) Value {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	if width <= 64 {
		return Value{width: width}
	}
	return Value{width: width, words: make([]uint64, wordsFor(width))}
}

// small64 builds an inline value, masking to width.
func small64(width int, v uint64) Value {
	return Value{width: width, small: v & mask64(width)}
}

// FromUint64 returns a value of the given width holding v truncated to width
// bits.
func FromUint64(width int, v uint64) Value {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	if width <= 64 {
		return small64(width, v)
	}
	r := New(width)
	r.words[0] = v
	return r
}

// FromInt64 returns a value of the given width holding v sign-extended (or
// truncated) to width bits.
func FromInt64(width int, v int64) Value {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	if width <= 64 {
		return small64(width, uint64(v))
	}
	r := New(width)
	u := uint64(v)
	for i := range r.words {
		r.words[i] = u
		if v >= 0 {
			u = 0
		} else {
			u = ^uint64(0)
		}
	}
	r.canon()
	return r
}

// FromWords returns a value of the given width using the supplied
// little-endian words. Extra high bits are truncated.
func FromWords(width int, words []uint64) Value {
	r := New(width)
	if r.words == nil {
		if len(words) > 0 {
			r.small = words[0] & mask64(width)
		}
		return r
	}
	copy(r.words, words)
	r.canon()
	return r
}

// canon zeroes bits above width.
func (v *Value) canon() {
	if v.width == 0 {
		return
	}
	if v.words == nil {
		v.small &= mask64(v.width)
		return
	}
	if rem := v.width % 64; rem != 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// word returns the i-th 64-bit word.
func (v Value) word(i int) uint64 {
	if v.words == nil {
		if i == 0 {
			return v.small
		}
		return 0
	}
	if i < len(v.words) {
		return v.words[i]
	}
	return 0
}

// Width reports the width of v in bits.
func (v Value) Width() int { return v.width }

// IsZero reports whether every bit of v is zero.
func (v Value) IsZero() bool {
	if v.words == nil {
		return v.small == 0
	}
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bit returns bit i (0 = least significant). Out-of-range bits read as 0.
func (v Value) Bit(i int) uint {
	if i < 0 || i >= v.width {
		return 0
	}
	return uint(v.word(i/64)>>(uint(i)%64)) & 1
}

// WithBit returns a copy of v with bit i set to b (b is 0 or 1).
func (v Value) WithBit(i int, b uint) Value {
	if i < 0 || i >= v.width {
		return v
	}
	r := v.clone()
	if r.words == nil {
		if b&1 == 1 {
			r.small |= 1 << uint(i)
		} else {
			r.small &^= 1 << uint(i)
		}
		return r
	}
	if b&1 == 1 {
		r.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		r.words[i/64] &^= 1 << (uint(i) % 64)
	}
	return r
}

func (v Value) clone() Value {
	if v.words == nil {
		return v
	}
	r := Value{width: v.width, words: make([]uint64, len(v.words))}
	copy(r.words, v.words)
	return r
}

// Uint64 returns the low 64 bits of v.
func (v Value) Uint64() uint64 { return v.word(0) }

// Int64 returns the value of v interpreted as a signed two's-complement
// number, truncated to 64 bits of magnitude.
func (v Value) Int64() int64 {
	u := v.Uint64()
	if v.width < 64 {
		if v.Bit(v.width-1) == 1 {
			u |= ^uint64(0) << uint(v.width)
		}
	}
	return int64(u)
}

// Sign reports whether the most significant (sign) bit of v is set.
func (v Value) Sign() bool { return v.Bit(v.width-1) == 1 }

// Eq reports whether v and o have identical width and bits.
func (v Value) Eq(o Value) bool {
	if v.width != o.width {
		return false
	}
	if v.words == nil && o.words == nil {
		return v.small == o.small
	}
	n := wordsFor(v.width)
	for i := 0; i < n; i++ {
		if v.word(i) != o.word(i) {
			return false
		}
	}
	return true
}

// EqValue reports whether v and o represent the same unsigned number,
// ignoring width differences.
func (v Value) EqValue(o Value) bool {
	n := wordsFor(v.width)
	if m := wordsFor(o.width); m > n {
		n = m
	}
	for i := 0; i < n; i++ {
		if v.word(i) != o.word(i) {
			return false
		}
	}
	return true
}

func sameWidth(a, b Value, op string) {
	if a.width != b.width {
		panic(fmt.Sprintf("bitvec: %s width mismatch %d vs %d", op, a.width, b.width))
	}
}

// Add returns a+b mod 2^width. Panics if widths differ.
func (a Value) Add(b Value) Value {
	sameWidth(a, b, "add")
	if a.words == nil {
		return small64(a.width, a.small+b.small)
	}
	r, _ := a.AddCarry(b)
	return r
}

// AddCarry returns a+b mod 2^width and the carry out of the top bit.
func (a Value) AddCarry(b Value) (Value, bool) {
	sameWidth(a, b, "add")
	if a.words == nil {
		s := a.small + b.small
		var carry bool
		if a.width == 64 {
			carry = s < a.small
		} else {
			carry = s>>uint(a.width)&1 == 1
		}
		return small64(a.width, s), carry
	}
	r := New(a.width)
	var carry uint64
	for i := range r.words {
		aw, bw := a.words[i], b.words[i]
		s := aw + bw
		c1 := boolToU64(s < aw)
		s2 := s + carry
		c2 := boolToU64(s2 < s)
		r.words[i] = s2
		carry = c1 | c2
	}
	if rem := a.width % 64; rem != 0 {
		carry = (r.words[len(r.words)-1] >> uint(rem)) & 1
	}
	r.canon()
	return r, carry == 1
}

// Sub returns a-b mod 2^width.
func (a Value) Sub(b Value) Value {
	sameWidth(a, b, "sub")
	if a.words == nil {
		return small64(a.width, a.small-b.small)
	}
	r, _ := a.SubBorrow(b)
	return r
}

// SubBorrow returns a-b mod 2^width and whether the subtraction borrowed
// (i.e. a < b unsigned).
func (a Value) SubBorrow(b Value) (Value, bool) {
	sameWidth(a, b, "sub")
	if a.words == nil {
		return small64(a.width, a.small-b.small), a.small < b.small
	}
	r, _ := a.AddCarry(b.Not().Add(one(a.width)))
	borrow := a.CmpU(b) < 0
	return r, borrow
}

func one(width int) Value { return FromUint64(width, 1) }

// Neg returns the two's-complement negation of a.
func (a Value) Neg() Value {
	if a.words == nil {
		return small64(a.width, -a.small)
	}
	return New(a.width).Sub(a)
}

// Mul returns a*b mod 2^width.
func (a Value) Mul(b Value) Value {
	sameWidth(a, b, "mul")
	if a.words == nil {
		return small64(a.width, a.small*b.small)
	}
	r := New(a.width)
	n := len(r.words)
	for i := 0; i < n; i++ {
		if a.word(i) == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < n; j++ {
			hi, lo := mul64(a.word(i), b.word(j))
			s := r.words[i+j] + lo
			c := boolToU64(s < lo)
			s2 := s + carry
			c2 := boolToU64(s2 < s)
			r.words[i+j] = s2
			carry = hi + c + c2
		}
	}
	r.canon()
	return r
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	ll := al * bl
	lh := al * bh
	hl := ah * bl
	hh := ah * bh
	mid := lh + (ll >> 32)
	midc := boolToU64(mid < lh)
	mid2 := mid + hl
	midc += boolToU64(mid2 < mid)
	lo = (mid2 << 32) | (ll & mask)
	hi = hh + (mid2 >> 32) + (midc << 32)
	return hi, lo
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DivU returns a/b (unsigned). Division by zero yields an all-ones value, the
// conventional hardware result.
func (a Value) DivU(b Value) Value {
	sameWidth(a, b, "div")
	if a.words == nil {
		if b.small == 0 {
			return small64(a.width, ^uint64(0))
		}
		return small64(a.width, a.small/b.small)
	}
	q, _ := a.divmod(b)
	return q
}

// ModU returns a%b (unsigned). Modulo by zero yields a, the conventional
// hardware result.
func (a Value) ModU(b Value) Value {
	sameWidth(a, b, "mod")
	if a.words == nil {
		if b.small == 0 {
			return a
		}
		return small64(a.width, a.small%b.small)
	}
	_, r := a.divmod(b)
	return r
}

func (a Value) divmod(b Value) (q, r Value) {
	if b.IsZero() {
		return New(a.width).Not(), a.clone()
	}
	q = New(a.width)
	r = New(a.width)
	for i := a.width - 1; i >= 0; i-- {
		r = r.Shl(1)
		if a.Bit(i) == 1 {
			r.words[0] |= 1
		}
		if r.CmpU(b) >= 0 {
			r = r.Sub(b)
			q.words[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return q, r
}

// And returns the bitwise AND of a and b.
func (a Value) And(b Value) Value {
	sameWidth(a, b, "and")
	if a.words == nil {
		return Value{width: a.width, small: a.small & b.small}
	}
	r := New(a.width)
	for i := range a.words {
		r.words[i] = a.words[i] & b.words[i]
	}
	return r
}

// Or returns the bitwise OR of a and b.
func (a Value) Or(b Value) Value {
	sameWidth(a, b, "or")
	if a.words == nil {
		return Value{width: a.width, small: a.small | b.small}
	}
	r := New(a.width)
	for i := range a.words {
		r.words[i] = a.words[i] | b.words[i]
	}
	return r
}

// Xor returns the bitwise XOR of a and b.
func (a Value) Xor(b Value) Value {
	sameWidth(a, b, "xor")
	if a.words == nil {
		return Value{width: a.width, small: a.small ^ b.small}
	}
	r := New(a.width)
	for i := range a.words {
		r.words[i] = a.words[i] ^ b.words[i]
	}
	return r
}

// Not returns the bitwise complement of a.
func (a Value) Not() Value {
	if a.words == nil {
		return small64(a.width, ^a.small)
	}
	r := New(a.width)
	for i := range a.words {
		r.words[i] = ^a.words[i]
	}
	r.canon()
	return r
}

// Shl returns a shifted left by n bits; vacated bits are zero.
func (a Value) Shl(n int) Value {
	if n < 0 {
		return a.ShrL(-n)
	}
	if n >= a.width {
		return New(a.width)
	}
	if a.words == nil {
		return small64(a.width, a.small<<uint(n))
	}
	r := New(a.width)
	wordShift, bitShift := n/64, uint(n%64)
	for i := len(r.words) - 1; i >= wordShift; i-- {
		w := a.words[i-wordShift] << bitShift
		if bitShift > 0 && i-wordShift-1 >= 0 {
			w |= a.words[i-wordShift-1] >> (64 - bitShift)
		}
		r.words[i] = w
	}
	r.canon()
	return r
}

// ShrL returns a logically shifted right by n bits; vacated bits are zero.
func (a Value) ShrL(n int) Value {
	if n < 0 {
		return a.Shl(-n)
	}
	if n >= a.width {
		return New(a.width)
	}
	if a.words == nil {
		return Value{width: a.width, small: a.small >> uint(n)}
	}
	r := New(a.width)
	wordShift, bitShift := n/64, uint(n%64)
	for i := 0; i+wordShift < len(a.words); i++ {
		w := a.words[i+wordShift] >> bitShift
		if bitShift > 0 && i+wordShift+1 < len(a.words) {
			w |= a.words[i+wordShift+1] << (64 - bitShift)
		}
		r.words[i] = w
	}
	return r
}

// ShrA returns a arithmetically shifted right by n bits; vacated bits copy
// the sign bit.
func (a Value) ShrA(n int) Value {
	if n < 0 {
		return a.Shl(-n)
	}
	if !a.Sign() {
		return a.ShrL(n)
	}
	if n >= a.width {
		return New(a.width).Not()
	}
	if a.words == nil {
		ones := ^(mask64(a.width) >> uint(n))
		return small64(a.width, a.small>>uint(n)|ones)
	}
	r := a.ShrL(n)
	for i := a.width - n; i < a.width; i++ {
		r.words[i/64] |= 1 << (uint(i) % 64)
	}
	return r
}

// CmpU compares a and b as unsigned numbers: -1 if a<b, 0 if equal, 1 if a>b.
func (a Value) CmpU(b Value) int {
	sameWidth(a, b, "cmp")
	if a.words == nil {
		switch {
		case a.small < b.small:
			return -1
		case a.small > b.small:
			return 1
		}
		return 0
	}
	for i := wordsFor(a.width) - 1; i >= 0; i-- {
		aw, bw := a.word(i), b.word(i)
		switch {
		case aw < bw:
			return -1
		case aw > bw:
			return 1
		}
	}
	return 0
}

// CmpS compares a and b as signed two's-complement numbers.
func (a Value) CmpS(b Value) int {
	sa, sb := a.Sign(), b.Sign()
	switch {
	case sa && !sb:
		return -1
	case !sa && sb:
		return 1
	}
	return a.CmpU(b)
}

// Slice returns bits [hi:lo] of v (inclusive, hi >= lo) as a new value of
// width hi-lo+1. It panics on an out-of-range slice; slice bounds come from
// validated ISDL text.
func (v Value) Slice(hi, lo int) Value {
	if lo < 0 || hi < lo || hi >= v.width {
		panic(fmt.Sprintf("bitvec: slice [%d:%d] of %d-bit value", hi, lo, v.width))
	}
	if v.words == nil {
		return small64(hi-lo+1, v.small>>uint(lo))
	}
	return v.ShrL(lo).Trunc(hi - lo + 1)
}

// Concat returns the concatenation hi:lo with hi in the most significant
// position; the result width is the sum of the operand widths.
func (hi Value) Concat(lo Value) Value {
	w := hi.width + lo.width
	if w <= 64 {
		return Value{width: w, small: hi.small<<uint(lo.width) | lo.small}
	}
	r := New(w)
	for i := 0; i < wordsFor(lo.width); i++ {
		r.words[i] = lo.word(i)
	}
	shifted := hi.ZeroExt(w).Shl(lo.width)
	for i := range r.words {
		r.words[i] |= shifted.word(i)
	}
	return r
}

// Trunc returns the low w bits of v. If w >= v.Width() the value is returned
// zero-extended (Trunc doubles as a width adjuster in either direction).
func (v Value) Trunc(w int) Value {
	if w == v.width {
		return v
	}
	if w <= 64 {
		return small64(w, v.word(0))
	}
	r := New(w)
	n := wordsFor(w)
	if v.words != nil {
		if n > len(v.words) {
			n = len(v.words)
		}
		copy(r.words, v.words[:n])
	} else {
		r.words[0] = v.small
	}
	r.canon()
	return r
}

// ZeroExt returns v zero-extended to width w (w >= v.Width(); otherwise it
// truncates).
func (v Value) ZeroExt(w int) Value { return v.Trunc(w) }

// SignExt returns v sign-extended to width w (w >= v.Width(); otherwise it
// truncates).
func (v Value) SignExt(w int) Value {
	if w <= v.width {
		return v.Trunc(w)
	}
	if !v.Sign() {
		return v.ZeroExt(w)
	}
	if w <= 64 {
		return small64(w, v.small|^mask64(v.width))
	}
	r := v.ZeroExt(w)
	for i := v.width; i < w; i++ {
		r.words[i/64] |= 1 << (uint(i) % 64)
	}
	return r
}

// String renders v as a width-annotated hexadecimal literal, e.g. 8'h3f.
func (v Value) String() string {
	if v.width == 0 {
		return "0'h0"
	}
	digits := (v.width + 3) / 4
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'h", v.width)
	started := false
	for i := digits - 1; i >= 0; i-- {
		nib := (v.word(i*4/64) >> (uint(i*4) % 64)) & 0xf
		if !started && nib == 0 && i != 0 {
			continue
		}
		started = true
		fmt.Fprintf(&sb, "%x", nib)
	}
	return sb.String()
}

// BitString renders v as a binary string, most significant bit first.
func (v Value) BitString() string {
	b := make([]byte, v.width)
	for i := 0; i < v.width; i++ {
		b[v.width-1-i] = '0' + byte(v.Bit(i))
	}
	return string(b)
}

// ParseBits parses a string of '0'/'1' characters (MSB first, as written in
// ISDL binary literals) into a value whose width is the string length.
func ParseBits(s string) (Value, error) {
	if len(s) == 0 {
		return Value{}, fmt.Errorf("bitvec: empty bit string")
	}
	if len(s) > MaxWidth {
		return Value{}, fmt.Errorf("bitvec: bit string longer than %d", MaxWidth)
	}
	r := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			pos := len(s) - 1 - i
			if r.words == nil {
				r.small |= 1 << uint(pos)
			} else {
				r.words[pos/64] |= 1 << (uint(pos) % 64)
			}
		default:
			return Value{}, fmt.Errorf("bitvec: invalid bit character %q", c)
		}
	}
	return r, nil
}
