package tech_test

import (
	"testing"

	"repro/internal/tech"
)

func lib() *tech.Library { return tech.LSI10K() }

// TestMonotoneInWidth checks the basic sanity property every cost model must
// have: wider datapaths are never cheaper or faster.
func TestMonotoneInWidth(t *testing.T) {
	l := lib()
	units := map[string]func(int) tech.Metrics{
		"adder":      l.Adder,
		"multiplier": l.Multiplier,
		"divider":    l.Divider,
		"logic":      l.Logic,
		"comparator": l.Comparator,
		"shifter":    l.Shifter,
		"register":   l.Register,
	}
	for name, f := range units {
		prev := tech.Metrics{}
		for _, w := range []int{1, 4, 8, 16, 32, 64} {
			m := f(w)
			if m.AreaCells < prev.AreaCells || m.DelayNs < prev.DelayNs {
				t.Errorf("%s: width %d cheaper than narrower (%+v < %+v)", name, w, m, prev)
			}
			if w > 1 && m.AreaCells <= 0 {
				t.Errorf("%s: zero area at width %d", name, w)
			}
			prev = m
		}
	}
}

func TestMultiplierDominatesAdder(t *testing.T) {
	l := lib()
	for _, w := range []int{8, 16, 32} {
		if l.Multiplier(w).AreaCells <= l.Adder(w).AreaCells {
			t.Errorf("multiplier should dwarf adder at width %d", w)
		}
		if l.Multiplier(w).DelayNs <= l.Adder(w).DelayNs {
			t.Errorf("multiplier should be slower than adder at width %d", w)
		}
	}
}

func TestMux(t *testing.T) {
	l := lib()
	if m := l.Mux(8, 1); m.AreaCells != 0 {
		t.Errorf("1-way mux should be free: %+v", m)
	}
	m2, m4 := l.Mux(8, 2), l.Mux(8, 4)
	if m4.AreaCells <= m2.AreaCells || m4.DelayNs <= m2.DelayNs {
		t.Errorf("4-way mux should cost more than 2-way: %+v vs %+v", m4, m2)
	}
}

func TestMemoryScaling(t *testing.T) {
	l := lib()
	small, big := l.Memory(8, 16, 1), l.Memory(8, 1024, 1)
	if big.AreaCells <= small.AreaCells || big.DelayNs <= small.DelayNs {
		t.Error("deeper memory should be larger and slower")
	}
	dual := l.Memory(8, 16, 2)
	if dual.AreaCells <= small.AreaCells {
		t.Error("dual-port memory should be larger")
	}
}

func TestDecodeTerm(t *testing.T) {
	l := lib()
	if m := l.DecodeTerm(0); m.AreaCells != 0 {
		t.Errorf("empty term: %+v", m)
	}
	t4, t8 := l.DecodeTerm(4), l.DecodeTerm(8)
	if t8.AreaCells <= t4.AreaCells || t8.DelayNs < t4.DelayNs {
		t.Error("wider decode terms should cost more")
	}
}

func TestMetricsAdd(t *testing.T) {
	m := tech.Metrics{AreaCells: 1, DelayNs: 5, EnergyPJ: 1}
	m.Add(tech.Metrics{AreaCells: 2, DelayNs: 3, EnergyPJ: 4})
	if m.AreaCells != 3 || m.DelayNs != 5 || m.EnergyPJ != 5 {
		t.Errorf("Add: %+v", m)
	}
}

func TestPowerModel(t *testing.T) {
	l := lib()
	if l.LeakageMW(0) != 0 {
		t.Error("zero area should leak nothing")
	}
	if l.LeakageMW(1e6) <= 0 {
		t.Error("leakage should be positive")
	}
	if got := l.DynamicMW(50, 10); got != 5 {
		t.Errorf("DynamicMW = %v, want 5 (pJ/ns = mW)", got)
	}
	if l.DynamicMW(50, 0) != 0 {
		t.Error("zero cycle guard")
	}
}

func TestWireDelay(t *testing.T) {
	l := lib()
	if l.WireDelay(0) != l.WireDelay(1) {
		t.Error("fanout floor at 1")
	}
	if l.WireDelay(10) <= l.WireDelay(1) {
		t.Error("wire delay should grow with fanout")
	}
}
