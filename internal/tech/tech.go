// Package tech models the target implementation technology: cell areas in
// grid cells, delays in nanoseconds, and switching energies. The paper
// synthesized the HGEN output with Synopsys against the LSI Logic LSI 10K
// library (Table 2); that library is proprietary, so this package provides a
// self-contained cost model with LSI10K-flavoured constants (≈1 ns basic
// gate, grid-cell areas). Die size, cycle length and power are computed by
// internal/hgen from these models; the relative SPAM vs SPAM2 shape of
// Table 2 depends only on the model's consistency, not its absolute values.
package tech

import "math"

// Metrics aggregates the implementation costs of one hardware unit.
type Metrics struct {
	// AreaCells is the silicon area in technology grid cells.
	AreaCells float64
	// DelayNs is the worst-case propagation delay through the unit.
	DelayNs float64
	// EnergyPJ is the switching energy of one activation.
	EnergyPJ float64
}

// Add accumulates area and energy (delays do not add here; path delays are
// summed by the timing analyzer along paths).
func (m *Metrics) Add(o Metrics) {
	m.AreaCells += o.AreaCells
	m.EnergyPJ += o.EnergyPJ
	if o.DelayNs > m.DelayNs {
		m.DelayNs = o.DelayNs
	}
}

// Library is a technology cost model.
type Library struct {
	Name string

	// GateDelayNs is one two-input gate level.
	GateDelayNs float64
	// GateArea is the grid cells of a two-input gate.
	GateArea float64
	// GateEnergyPJ is the switching energy of a gate.
	GateEnergyPJ float64

	// FullAdderDelayNs is one ripple-carry stage.
	FullAdderDelayNs float64
	FullAdderArea    float64

	// FlopDelayNs is clock-to-Q plus setup: the sequential overhead added
	// to every register-to-register path.
	FlopDelayNs float64
	FlopArea    float64

	// MemCellArea is one bit of RAM; MemFixedArea a per-array overhead.
	MemCellArea  float64
	MemFixedArea float64
	// MemAccessNs is the base access time; doubled word lines add
	// logarithmic depth delay.
	MemAccessNs float64

	// WireDelayPerFanoutNs charges loading on multi-fanout nets.
	WireDelayPerFanoutNs float64

	// LeakagePWPerCell converts area into static power.
	LeakagePWPerCell float64
}

// LSI10K returns the default library. The constants are synthetic but sized
// like the mid-1990s gate arrays the paper used: ~1 ns gates, flip-flops a
// few grid cells, RAM bits cheaper than logic bits.
func LSI10K() *Library {
	return &Library{
		Name:                 "lsi10k",
		GateDelayNs:          1.0,
		GateArea:             1.0,
		GateEnergyPJ:         0.5,
		FullAdderDelayNs:     1.8,
		FullAdderArea:        6.0,
		FlopDelayNs:          2.2,
		FlopArea:             6.0,
		MemCellArea:          1.5,
		MemFixedArea:         64.0,
		MemAccessNs:          3.0,
		WireDelayPerFanoutNs: 0.08,
		LeakagePWPerCell:     2.0,
	}
}

func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Adder is an n-bit carry-propagate adder (or subtractor; the cost is the
// same plus one level of input inversion folded into the model).
func (l *Library) Adder(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n * l.FullAdderArea,
		DelayNs:   n * l.FullAdderDelayNs,
		EnergyPJ:  n * 3 * l.GateEnergyPJ,
	}
}

// Multiplier is an n×n array multiplier producing n bits.
func (l *Library) Multiplier(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n * n * (l.FullAdderArea * 0.75),
		DelayNs:   2 * n * l.FullAdderDelayNs,
		EnergyPJ:  n * n * l.GateEnergyPJ,
	}
}

// Divider is an n-bit sequential-restoring divider flattened combinationally
// (rarely used; deliberately expensive, as on real gate arrays).
func (l *Library) Divider(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n * n * l.FullAdderArea,
		DelayNs:   n * n * l.FullAdderDelayNs * 0.5,
		EnergyPJ:  n * n * 2 * l.GateEnergyPJ,
	}
}

// Logic is an n-bit two-input bitwise unit (AND/OR/XOR/NOT).
func (l *Library) Logic(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n * l.GateArea,
		DelayNs:   l.GateDelayNs,
		EnergyPJ:  n * l.GateEnergyPJ,
	}
}

// Comparator is an n-bit equality/magnitude comparator.
func (l *Library) Comparator(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n*l.GateArea*2 + log2ceil(width)*l.GateArea,
		DelayNs:   (log2ceil(width) + 1) * l.GateDelayNs,
		EnergyPJ:  n * l.GateEnergyPJ,
	}
}

// Shifter is an n-bit barrel shifter (variable shift amount).
func (l *Library) Shifter(width int) Metrics {
	n := float64(width)
	levels := log2ceil(width)
	return Metrics{
		AreaCells: n * levels * 2 * l.GateArea,
		DelayNs:   levels * l.GateDelayNs,
		EnergyPJ:  n * levels * l.GateEnergyPJ,
	}
}

// Mux is an n-bit ways-input multiplexer tree.
func (l *Library) Mux(width, ways int) Metrics {
	if ways < 2 {
		return Metrics{}
	}
	n := float64(width)
	levels := log2ceil(ways)
	m2 := float64(ways-1) * n * 1.5 * l.GateArea
	return Metrics{
		AreaCells: m2,
		DelayNs:   levels * l.GateDelayNs * 1.2,
		EnergyPJ:  n * float64(ways-1) * 0.3 * l.GateEnergyPJ,
	}
}

// Register is an n-bit flip-flop bank.
func (l *Library) Register(width int) Metrics {
	n := float64(width)
	return Metrics{
		AreaCells: n * l.FlopArea,
		DelayNs:   l.FlopDelayNs,
		EnergyPJ:  n * 1.2 * l.GateEnergyPJ,
	}
}

// Memory is a width×depth RAM with the given number of access ports.
func (l *Library) Memory(width, depth, ports int) Metrics {
	bits := float64(width * depth)
	p := float64(ports)
	return Metrics{
		AreaCells: l.MemFixedArea + bits*l.MemCellArea*(0.7+0.3*p),
		DelayNs:   l.MemAccessNs + log2ceil(depth)*0.25*l.GateDelayNs,
		EnergyPJ:  float64(width) * 2 * l.GateEnergyPJ,
	}
}

// DecodeTerm is one product term over the given number of literals — the
// two-level decode equations of §4.2 (e.g. I9'·I8·I6·I5).
func (l *Library) DecodeTerm(literals int) Metrics {
	if literals < 1 {
		return Metrics{}
	}
	return Metrics{
		AreaCells: float64(literals-1)*l.GateArea + 0.5,
		DelayNs:   (log2ceil(literals) + 1) * l.GateDelayNs,
		EnergyPJ:  float64(literals) * 0.2 * l.GateEnergyPJ,
	}
}

// WireDelay charges fan-out loading on a net.
func (l *Library) WireDelay(fanout int) float64 {
	if fanout < 1 {
		fanout = 1
	}
	return float64(fanout) * l.WireDelayPerFanoutNs
}

// LeakageMW converts total area into static power in milliwatts.
func (l *Library) LeakageMW(areaCells float64) float64 {
	return areaCells * l.LeakagePWPerCell * 1e-9 * 1e3
}

// DynamicMW estimates dynamic power from switched energy per cycle and the
// cycle length.
func (l *Library) DynamicMW(energyPerCyclePJ, cycleNs float64) float64 {
	if cycleNs <= 0 {
		return 0
	}
	// pJ / ns = mW.
	return energyPerCyclePJ / cycleNs
}
