package xsim

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// This file defines the simulator backend ladder of ROADMAP item 3. Three
// backends produce bit-identical architectural results at different speeds:
//
//	interp    the AST interpreter (eval.go) — the reference semantics
//	compiled  the closure-compiled core (compile.go) — the default
//	aot       ahead-of-time generated Go, natively compiled per description
//	          (internal/gensim) — the analogue of the paper's generated,
//	          natively compiled C simulators (§3.3, §6.2)
//
// The aot backend needs a Go toolchain at runtime; NewEngine degrades down
// the ladder (aot → compiled) instead of failing, reporting the reason, so
// every caller keeps working on toolchain-less hosts.

// Backend names one simulator execution strategy.
type Backend string

const (
	// BackendInterp runs the AST interpreter core.
	BackendInterp Backend = "interp"
	// BackendCompiled runs the closure-compiled core (the default).
	BackendCompiled Backend = "compiled"
	// BackendAOT generates, builds and runs specialized Go for the
	// description (internal/gensim), falling back to compiled when no
	// toolchain is available.
	BackendAOT Backend = "aot"
)

// Backends lists the selectable backends in ladder order.
func Backends() []Backend { return []Backend{BackendInterp, BackendCompiled, BackendAOT} }

// ParseBackend validates a backend name; the empty string selects the
// default (compiled).
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "":
		return BackendCompiled, nil
	case BackendInterp, BackendCompiled, BackendAOT:
		return Backend(s), nil
	}
	return "", fmt.Errorf("xsim: unknown backend %q (want interp, compiled or aot)", s)
}

// Engine is the backend-independent view of one simulator instance: load a
// program, run it, observe the architectural results. All backends are
// bit-identical in Stats, Cycle and Snapshot for the same program (the
// differential gauntlet in internal/gensim enforces it).
type Engine interface {
	// Load loads an assembled program and resets architectural state.
	Load(p *asm.Program) error
	// Run executes until halt or limit instructions (limit <= 0: no limit).
	Run(limit int64) error
	// Halted reports whether the machine stopped (halt storage or fault).
	Halted() bool
	// Err returns the fault that halted the machine, if any.
	Err() error
	// Cycle returns the current cycle count.
	Cycle() uint64
	// Stats returns the architectural statistics gathered so far.
	Stats() *Stats
	// Perf returns the simulator's own performance counters.
	Perf() PerfReport
	// Snapshot captures every storage element (for co-simulation checks).
	Snapshot() map[string][]bitvec.Value
	// Description returns the machine description the engine simulates.
	Description() *isdl.Description
	// Close releases backend resources (subprocesses for aot); the engine
	// is unusable afterwards.
	Close() error
}

// Snapshot captures every storage element of the simulator's state; it is
// the Engine form of State().Snapshot().
func (sim *Simulator) Snapshot() map[string][]bitvec.Value { return sim.st.Snapshot() }

// Close releases the simulator (a no-op for the in-process cores).
func (sim *Simulator) Close() error { return nil }

var _ Engine = (*Simulator)(nil)

// aotFactory builds an aot engine; it is registered by internal/gensim's
// init so that xsim never imports the generator (no import cycle).
var aotFactory func(d *isdl.Description) (Engine, error)

// RegisterAOT installs the aot engine constructor. Called from
// internal/gensim; last registration wins.
func RegisterAOT(f func(d *isdl.Description) (Engine, error)) { aotFactory = f }

// EngineInfo reports which backend a NewEngine call actually produced.
type EngineInfo struct {
	Requested Backend
	Used      Backend
	// FallbackReason is non-empty when Used != Requested.
	FallbackReason string
}

// NewEngine builds a simulation engine for the requested backend, walking
// down the ladder (aot → compiled) when the request cannot be satisfied:
// no gensim registered, no Go toolchain, or a description the generator
// does not support. The returned error is non-nil only for an invalid
// backend name — fallback is not an error.
func NewEngine(d *isdl.Description, b Backend) (Engine, EngineInfo, error) {
	if b == "" {
		b = BackendCompiled
	}
	info := EngineInfo{Requested: b, Used: b}
	switch b {
	case BackendInterp:
		sim := New(d)
		sim.CompiledCore = false
		return sim, info, nil
	case BackendCompiled:
		return New(d), info, nil
	case BackendAOT:
		if aotFactory == nil {
			info.Used = BackendCompiled
			info.FallbackReason = "aot backend not linked in (import repro/internal/gensim)"
			return New(d), info, nil
		}
		eng, err := aotFactory(d)
		if err != nil {
			info.Used = BackendCompiled
			info.FallbackReason = err.Error()
			return New(d), info, nil
		}
		return eng, info, nil
	}
	return nil, info, fmt.Errorf("xsim: unknown backend %q", b)
}
