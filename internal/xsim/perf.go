package xsim

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/obs"
)

// Simulator performance counters — the simulator measuring itself, the way
// ScaleSimulator-style parallel simulators expose built-in perf counters.
// Architectural statistics (Stats) describe the simulated machine and reset
// with it; these counters describe the simulator and are cumulative over
// the simulator's lifetime: decode-cache and compiled-op cache traffic
// accrue as instructions are decoded, and every Run adds its wall-clock
// time and executed instruction/cycle/stall deltas, so simulated MIPS stays
// meaningful across Load/Reset cycles.
type perfCounters struct {
	decodeHits   uint64
	decodeMisses uint64
	opReused     uint64
	opCompiled   uint64
	instructions uint64
	cycles       uint64
	dataStalls   uint64
	structStalls uint64
	runNs        int64
}

// PerfReport is a snapshot of the simulator's own performance counters.
type PerfReport struct {
	// Simulated work accumulated across every Run call.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	DataStalls   uint64 `json:"data_stalls"`
	StructStalls uint64 `json:"struct_stalls"`
	// Decode cache (off-line disassembly) traffic: a hit is a fetch served
	// from a cached decoded instruction, a miss decodes fresh.
	DecodeHits   uint64 `json:"decode_hits"`
	DecodeMisses uint64 `json:"decode_misses"`
	// Compiled-op cache traffic: reused closures vs. fresh compilations.
	OpsReused   uint64 `json:"ops_reused"`
	OpsCompiled uint64 `json:"ops_compiled"`
	// RunSeconds is wall-clock time inside Run; MIPS and SimCyclesPerSec
	// are simulated instructions and cycles per host second.
	RunSeconds      float64 `json:"run_seconds"`
	MIPS            float64 `json:"mips"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// Perf snapshots the simulator's performance counters.
func (sim *Simulator) Perf() PerfReport {
	p := PerfReport{
		Instructions: sim.perf.instructions,
		Cycles:       sim.perf.cycles,
		DataStalls:   sim.perf.dataStalls,
		StructStalls: sim.perf.structStalls,
		DecodeHits:   sim.perf.decodeHits,
		DecodeMisses: sim.perf.decodeMisses,
		OpsReused:    sim.perf.opReused,
		OpsCompiled:  sim.perf.opCompiled,
	}
	p.DeriveRates(sim.perf.runNs)
	return p
}

// DeriveRates fills RunSeconds, MIPS and SimCyclesPerSec from a wall-clock
// duration in integer nanoseconds. A non-positive duration (a Run too short
// for the clock to advance, or a clock stepping backwards) leaves the rates
// at zero, and any non-finite result of the division is clamped to zero —
// the report must marshal as JSON, which rejects +Inf/NaN. All backends
// (and the gensim subprocess report) share this derivation.
func (p *PerfReport) DeriveRates(runNs int64) {
	if runNs <= 0 {
		p.RunSeconds, p.MIPS, p.SimCyclesPerSec = 0, 0, 0
		return
	}
	p.RunSeconds = float64(runNs) / 1e9
	p.MIPS = finiteOrZero(float64(p.Instructions) / p.RunSeconds / 1e6)
	p.SimCyclesPerSec = finiteOrZero(float64(p.Cycles) / p.RunSeconds)
}

func finiteOrZero(f float64) float64 {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return 0
	}
	return f
}

// DecodeHitRate is the fraction of fetches served by the decode cache.
func (p PerfReport) DecodeHitRate() float64 {
	if total := p.DecodeHits + p.DecodeMisses; total > 0 {
		return float64(p.DecodeHits) / float64(total)
	}
	return 0
}

// OpReuseRate is the fraction of decoded operations whose compiled closure
// came from the op cache.
func (p PerfReport) OpReuseRate() float64 {
	if total := p.OpsReused + p.OpsCompiled; total > 0 {
		return float64(p.OpsReused) / float64(total)
	}
	return 0
}

// Summary renders the counters as a short report.
func (p PerfReport) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "instructions:   %d (%d cycles, %d data + %d structural stalls)\n",
		p.Instructions, p.Cycles, p.DataStalls, p.StructStalls)
	fmt.Fprintf(&sb, "decode cache:   %d hits / %d misses (%.1f%% hit rate)\n",
		p.DecodeHits, p.DecodeMisses, 100*p.DecodeHitRate())
	fmt.Fprintf(&sb, "compiled ops:   %d reused / %d compiled (%.1f%% reuse)\n",
		p.OpsReused, p.OpsCompiled, 100*p.OpReuseRate())
	if p.RunSeconds > 0 {
		fmt.Fprintf(&sb, "simulation:     %.4f s wall, %.2f MIPS, %.0f cycles/s\n",
			p.RunSeconds, p.MIPS, p.SimCyclesPerSec)
	} else {
		fmt.Fprintf(&sb, "simulation:     no Run recorded yet\n")
	}
	return sb.String()
}

// Publish adds the counters into a registry under the xsim.* names, so
// simulator performance appears alongside pipeline and explorer metrics in
// the exported metrics document. Counters are cumulative, so publish once
// per registry (or into a fresh registry) to avoid double counting.
func (p PerfReport) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("xsim.instructions").Add(p.Instructions)
	r.Counter("xsim.cycles").Add(p.Cycles)
	r.Counter("xsim.stalls.data").Add(p.DataStalls)
	r.Counter("xsim.stalls.struct").Add(p.StructStalls)
	r.Counter("xsim.decode.hits").Add(p.DecodeHits)
	r.Counter("xsim.decode.misses").Add(p.DecodeMisses)
	r.Counter("xsim.ops.reused").Add(p.OpsReused)
	r.Counter("xsim.ops.compiled").Add(p.OpsCompiled)
	r.Counter("xsim.run_ns").Add(uint64(p.RunSeconds * 1e9))
}
