package xsim_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/state"
	"repro/internal/xsim"
)

// runToy assembles src for the toy machine, runs it to completion and
// returns the simulator.
func runToy(t *testing.T, src string) *xsim.Simulator {
	t.Helper()
	d := machines.Toy()
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !sim.Halted() {
		t.Fatal("program did not halt")
	}
	return sim
}

func reg(t *testing.T, sim *xsim.Simulator, i int) uint64 {
	t.Helper()
	return sim.State().Get("RF", i).Uint64()
}

func TestArithmetic(t *testing.T) {
	sim := runToy(t, `
    mv R1, #5
    mv R2, #3
    add R3, R1, R2
    sub R4, R1, #7
    and R5, R3, #12
    mul R6, R2, #10
    halt
`)
	if got := reg(t, sim, 3); got != 8 {
		t.Errorf("R3 = %d, want 8", got)
	}
	if got := reg(t, sim, 4); got != 0xfe { // 5-7 wraps to -2
		t.Errorf("R4 = %#x, want 0xfe", got)
	}
	if got := reg(t, sim, 5); got != 8 {
		t.Errorf("R5 = %d, want 8", got)
	}
	if got := reg(t, sim, 6); got != 30 {
		t.Errorf("R6 = %d, want 30", got)
	}
}

func TestCarrySideEffect(t *testing.T) {
	// Note: side effects read post-action state (§3.3.3), so the carry
	// side effect must not have its operand overwritten by the action —
	// the destination register differs from both sources here.
	sim := runToy(t, `
    mv R1, #127
    add R2, R1, #127
    add R3, R2, #127
    halt
`)
	// 254 + 127 = 381 > 255: carry set on the second add.
	if got := sim.State().Get("CC", 0).Uint64() & 1; got != 1 {
		t.Errorf("carry = %d, want 1", got)
	}
}

func TestLoop(t *testing.T) {
	sim := runToy(t, `
    mv R1, #0      ; sum
    mv R2, #10     ; n
loop:
    beq R2, R0, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`)
	if got := reg(t, sim, 1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestMemory(t *testing.T) {
	sim := runToy(t, `
.data DMEM 16 7
    mv R1, #16
    ld R2, @R1
    add R2, R2, #1
    mv R3, #17
    st @R3, R2
    halt
`)
	if got := sim.State().Get("DMEM", 17).Uint64(); got != 8 {
		t.Errorf("DMEM[17] = %d, want 8", got)
	}
}

func TestStackAndCall(t *testing.T) {
	sim := runToy(t, `
    mv R1, #1
    call fn
    add R3, R1, #0
    halt
fn:
    push R1
    mv R1, #9
    pop R2
    ret
`)
	if got := reg(t, sim, 2); got != 1 {
		t.Errorf("R2 = %d, want 1 (pushed value)", got)
	}
	if got := reg(t, sim, 3); got != 9 {
		t.Errorf("R3 = %d, want 9 (set inside fn)", got)
	}
}

func TestStackOverflowFault(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, `
loop:
    push R0
    jmp loop
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	err = sim.Run(1000)
	var re *xsim.RuntimeError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want stack overflow RuntimeError", err)
	}
	if !sim.Halted() {
		t.Fatal("fault should halt the machine")
	}
}

func TestIllegalInstruction(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, ".word 0xe00000")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err == nil {
		t.Fatal("expected illegal instruction error")
	}
}

// TestCycleAccounting checks the §3.3.3 model precisely: one cycle per
// instruction, plus data-hazard bubbles derived from Latency.
func TestCycleAccounting(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		cycles     uint64
		dataStalls uint64
	}{
		{
			// Four single-cycle instructions, no hazards.
			name: "straight line",
			src:  "mv R1, #1\n mv R2, #2\n add R3, R1, R2\n halt",
			// mv t0, mv t1, add t2 (R1 ready: mv latency 1), halt t3.
			cycles: 4, dataStalls: 0,
		},
		{
			// mul has Latency 3: a consumer in the next slot waits 2.
			name:   "mul use next",
			src:    "mv R1, #4\n mul R2, R1, #3\n add R3, R2, #1\n halt",
			cycles: 6, dataStalls: 2,
		},
		{
			// One independent instruction between producer and consumer
			// hides one of the two bubbles.
			name:   "mul use after one",
			src:    "mv R1, #4\n mul R2, R1, #3\n mv R4, #9\n add R3, R2, #1\n halt",
			cycles: 6, dataStalls: 1,
		},
		{
			// Two independent instructions hide the latency entirely.
			name:   "mul fully hidden",
			src:    "mv R1, #4\n mul R2, R1, #3\n mv R4, #9\n mv R5, #8\n add R3, R2, #1\n halt",
			cycles: 6, dataStalls: 0,
		},
		{
			// ld has Latency 2: one bubble when used immediately.
			name:   "load use",
			src:    "mv R1, #0\n ld R2, @R1\n add R3, R2, #1\n halt",
			cycles: 5, dataStalls: 1,
		},
		{
			// The consumer reads a different register: no stall.
			name:   "load no use",
			src:    "mv R1, #0\n ld R2, @R1\n add R3, R1, #1\n halt",
			cycles: 4, dataStalls: 0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sim := runToy(t, c.src)
			if got := sim.Cycle(); got != c.cycles {
				t.Errorf("cycles = %d, want %d", got, c.cycles)
			}
			if got := sim.Stats().DataStalls; got != c.dataStalls {
				t.Errorf("data stalls = %d, want %d", got, c.dataStalls)
			}
		})
	}
}

// TestLatencyValueCorrect verifies delayed write-back still yields correct
// results with the interlock on: the stalled consumer sees the new value.
func TestLatencyValueCorrect(t *testing.T) {
	sim := runToy(t, "mv R1, #4\n mul R2, R1, #3\n add R3, R2, #1\n halt")
	if got := reg(t, sim, 3); got != 13 {
		t.Errorf("R3 = %d, want 13", got)
	}
}

// TestStallModelOff is ablation C: with the interlock disabled, the machine
// issues back-to-back, counts no stalls, and the consumer reads the stale
// register value — exactly what interlock-free hardware would do.
func TestStallModelOff(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R1, #4\n mul R2, R1, #3\n add R3, R2, #1\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	sim.StallModel = false
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := sim.Cycle(); got != 4 {
		t.Errorf("cycles = %d, want 4", got)
	}
	if got := sim.Stats().DataStalls; got != 0 {
		t.Errorf("data stalls = %d, want 0", got)
	}
	if got := reg(t, sim, 3); got != 1 { // stale R2 (= 0) + 1
		t.Errorf("R3 = %d, want 1 (stale read)", got)
	}
}

// TestUsageStall exercises the structural hazard path with a Usage > Cycle
// operation on a dedicated machine.
func TestUsageStall(t *testing.T) {
	src := `
Machine u;
Format 8;
Section Global_Definitions
Section Storage
InstructionMemory IMEM width 8 depth 32;
Register ACC width 8;
ControlRegister HLT width 1;
ProgramCounter PC width 5;
Section Instruction_Set
Field F:
  op inc
    Encode { I[7:4] = 0x1; }
    Action { ACC <- ACC + 1; }
    Timing { Latency = 1; Usage = 3; }
  op halt
    Encode { I[7:4] = 0x2; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[7:4] = 0x0; }
`
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, "inc\ninc\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	// inc t0 (unit busy until t3), inc t3, halt t6: 7 cycles total.
	if got := sim.Cycle(); got != 7 {
		t.Errorf("cycles = %d, want 7", got)
	}
	if got := sim.Stats().StructStalls; got != 4 {
		t.Errorf("struct stalls = %d, want 4", got)
	}
	if got := sim.State().Get("ACC", 0).Uint64(); got != 2 {
		t.Errorf("ACC = %d, want 2", got)
	}
}

func TestBreakpoints(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, `
    mv R1, #1
    mv R2, #2
target:
    mv R3, #3
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	sim.AddBreakpoint(p.Symbols["target"])
	err = sim.Run(0)
	if !errors.Is(err, xsim.ErrBreakpoint) {
		t.Fatalf("err = %v, want breakpoint", err)
	}
	if got := reg(t, sim, 2); got != 2 {
		t.Errorf("R2 = %d before breakpoint", got)
	}
	if got := reg(t, sim, 3); got != 0 {
		t.Errorf("R3 = %d, breakpoint did not stop in time", got)
	}
	// Continue from the breakpoint.
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg(t, sim, 3); got != 3 {
		t.Errorf("R3 = %d after continue", got)
	}
	if got := sim.Breakpoints(); len(got) != 1 || got[0] != p.Symbols["target"] {
		t.Errorf("Breakpoints() = %v", got)
	}
	if !sim.RemoveBreakpoint(p.Symbols["target"]) || sim.RemoveBreakpoint(99) {
		t.Error("RemoveBreakpoint bookkeeping wrong")
	}
}

func TestTrace(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R1, #1\n jmp skip\n mv R2, #2\nskip:\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	var buf bytes.Buffer
	sim.SetTrace(&buf)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "0\n1\n3\n" {
		t.Errorf("trace = %q, want 0,1,3", got)
	}
}

func TestStats(t *testing.T) {
	sim := runToy(t, "mv R1, #1\n nop\n add R2, R1, #1\n halt")
	st := sim.Stats()
	if st.Instructions != 4 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	if st.OpCounts["EX.mv"] != 1 || st.OpCounts["EX.nop"] != 1 || st.OpCounts["EX.add"] != 1 {
		t.Errorf("op counts: %v", st.OpCounts)
	}
	// 3 of 4 instructions did real work on the single field.
	if u := st.Utilization()[0]; u != 0.75 {
		t.Errorf("utilization = %v", u)
	}
	if s := st.Summary(sim.Description()); !strings.Contains(s, "EX.add") || !strings.Contains(s, "utilization") {
		t.Errorf("summary: %q", s)
	}
}

func TestMonitorsDuringRun(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R5, #9\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	var events []state.ChangeEvent
	if _, err := sim.State().Watch("RF", 5, func(ev state.ChangeEvent) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].New.Uint64() != 9 {
		t.Fatalf("events: %v", events)
	}
}

func TestSelfModifyingCodeInvalidatesDecode(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R1, #1\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	// Execute once so address 0 is cached, then rewrite it.
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	p2, err := asm.Assemble(d, "mv R1, #7\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim.State().Set("IMEM", 0, p2.Words[0])
	sim.State().SetPC(sim.State().Get("PC", 0).Trunc(8).Sub(sim.State().Get("PC", 0).Trunc(8))) // PC <- 0
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg(t, sim, 1); got != 7 {
		t.Errorf("R1 = %d, want 7 (decode cache should invalidate)", got)
	}
}

func TestStepAfterHalt(t *testing.T) {
	sim := runToy(t, "halt")
	c := sim.Cycle()
	if err := sim.Step(); err != nil {
		t.Fatal(err)
	}
	if sim.Cycle() != c {
		t.Error("halted machine advanced")
	}
}

func TestDisassembleAt(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "add R1, R2, #3")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	got, err := sim.Disassemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != "add R1, R2, #3" {
		t.Errorf("disassemble = %q", got)
	}
}

func TestRunLimit(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "loop: jmp loop")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	if got := sim.Stats().Instructions; got != 50 {
		t.Errorf("instructions = %d, want 50", got)
	}
	if sim.Halted() {
		t.Error("limit stop should not halt the machine")
	}
}

func TestLoadEntrySymbol(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "fn:\n ret\nstart:\n mv R1, #3\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if got := sim.State().PC().Uint64(); got != uint64(p.Symbols["start"]) {
		t.Errorf("entry PC = %d, want start", got)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg(t, sim, 1); got != 3 {
		t.Errorf("R1 = %d", got)
	}
}

func TestHaltFlushesPendingWrites(t *testing.T) {
	// mul result must be architecturally visible after halt even though
	// the program halts before its latency elapses.
	sim := runToy(t, "mv R1, #6\n mul R2, R1, #7\n halt")
	if got := reg(t, sim, 2); got != 42 {
		t.Errorf("R2 = %d, want 42", got)
	}
}

// TestCompiledVsInterpretedCore cross-checks the two processing cores: the
// closure-compiled core (GENSIM's generated-C analogue) and the AST
// interpreter must produce identical architectural state and cycle counts
// on every toy workload.
func TestCompiledVsInterpretedCore(t *testing.T) {
	programs := []string{
		"mv R1, #5\n mv R2, #3\n add R3, R1, R2\n sub R4, R1, #7\n halt",
		"mv R1, #0\n mv R2, #10\nloop:\n beq R2, R0, done\n add R1, R1, R2\n sub R2, R2, #1\n jmp loop\ndone:\n halt",
		".data DMEM 16 7\n mv R1, #16\n ld R2, @R1\n add R2, R2, #1\n mv R3, #17\n st @R3, R2\n halt",
		"mv R1, #1\n call fn\n halt\nfn:\n push R1\n mv R1, #9\n pop R2\n ret",
		"mv R1, #4\n mul R2, R1, #3\n add R3, R2, #1\n halt",
	}
	d := machines.Toy()
	for i, src := range programs {
		p, err := asm.Assemble(d, src)
		if err != nil {
			t.Fatal(err)
		}
		run := func(compiled bool) *xsim.Simulator {
			sim := xsim.New(d)
			sim.CompiledCore = compiled
			if err := sim.Load(p); err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(10000); err != nil {
				t.Fatal(err)
			}
			return sim
		}
		a, b := run(true), run(false)
		if a.Cycle() != b.Cycle() {
			t.Fatalf("program %d: cycles differ: %d vs %d", i, a.Cycle(), b.Cycle())
		}
		sa, sb := a.State().Snapshot(), b.State().Snapshot()
		for name, va := range sa {
			vb := sb[name]
			for j := range va {
				if !va[j].Eq(vb[j]) {
					t.Fatalf("program %d: %s[%d] differs: %s vs %s", i, name, j, va[j], vb[j])
				}
			}
		}
	}
}

// TestCompiledCoreFault: runtime faults surface as errors, not panics.
func TestCompiledCoreFault(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "pop R1\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	err = sim.Run(10)
	var re *xsim.RuntimeError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "underflow") {
		t.Fatalf("err = %v, want underflow RuntimeError", err)
	}
}

// TestMultiWordInstructions executes Size-2 operations: fetch spans two
// instruction words and the PC advances by the instruction's Size.
func TestMultiWordInstructions(t *testing.T) {
	src := `
Machine wide;
Format 8;
Section Global_Definitions
Token IMM12 imm unsigned 12;
Section Storage
InstructionMemory IMEM width 8 depth 32;
Register ACC width 12;
ControlRegister HLT width 1;
ProgramCounter PC width 5;
Section Instruction_Set
Field F:
  op ldi (v: IMM12)
    Encode { I[7:4] = 0x1; I[3:0] = v[11:8]; I[15:8] = v[7:0]; }
    Action { ACC <- v; }
    Cost { Cycle = 1; Size = 2; }
  op addi (v: IMM12)
    Encode { I[7:4] = 0x2; I[3:0] = v[11:8]; I[15:8] = v[7:0]; }
    Action { ACC <- ACC + v; }
    Cost { Cycle = 1; Size = 2; }
  op halt
    Encode { I[7:4] = 0x3; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[7:4] = 0x0; }
`
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, "ldi 3000\naddi 500\nnop\naddi 100\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 2 + 1 + 2 + 1 words.
	if len(p.Words) != 8 {
		t.Fatalf("words: %d", len(p.Words))
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sim.State().Get("ACC", 0).Uint64(); got != 3600 {
		t.Fatalf("ACC = %d, want 3600", got)
	}
	if got := sim.Stats().Instructions; got != 5 {
		t.Fatalf("instructions = %d, want 5", got)
	}
	// One cycle per instruction regardless of width.
	if got := sim.Cycle(); got != 5 {
		t.Fatalf("cycles = %d, want 5", got)
	}
}
