package xsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
	"repro/internal/state"
)

// This file interprets the RTL of decoded operations against processor
// state. It implements the two-phase evaluation of §3.3.3: every statement
// of a phase reads the pre-phase state ("all RTL statements read their input
// values before any RTL statement writes its results"), writes are collected
// into temporary storage, and the caller commits them afterwards — possibly
// delayed by the operation's Latency.

// env binds the parameters of one operation or option instance. Environments
// are built once per decoded instruction (load-time disassembly) and reused
// every execution; sub-environments for non-terminal arguments are prebuilt
// recursively.
type env struct {
	sim  *Simulator
	args map[string]*decode.Arg
	subs map[string]*env
	// ordered lists the non-terminal sub-environments in parameter
	// declaration order, for deterministic side-effect evaluation; option
	// is the decoded option this environment belongs to (nil at op level).
	ordered []*env
	option  *isdl.Option
	// op is set on operation-level environments (used by the compiled
	// core).
	op *isdl.Operation
}

func newEnv(sim *Simulator, params []*isdl.Param, args []decode.Arg) *env {
	e := &env{sim: sim, args: make(map[string]*decode.Arg, len(params))}
	for i := range params {
		e.args[params[i].Name] = &args[i]
		if args[i].Option != nil {
			if e.subs == nil {
				e.subs = map[string]*env{}
			}
			sub := newEnv(sim, args[i].Option.Params, args[i].Sub)
			sub.option = args[i].Option
			e.subs[params[i].Name] = sub
			e.ordered = append(e.ordered, sub)
		}
	}
	return e
}

// subEnv returns the prebuilt environment of a non-terminal parameter.
func (ev *env) subEnv(name string) *env { return ev.subs[name] }

// loc is a write destination: a bit range of one storage location. h is a
// resolved handle when the write came from the evaluator (zero in read-set
// entries, which are only compared field-wise).
type loc struct {
	storage string
	index   int
	hi, lo  int // -1,-1 = whole element
	h       state.Handle
}

func (l loc) String() string {
	if l.hi >= 0 {
		return fmt.Sprintf("%s[%d][%d:%d]", l.storage, l.index, l.hi, l.lo)
	}
	return fmt.Sprintf("%s[%d]", l.storage, l.index)
}

// write is one collected state update.
type write struct {
	loc loc
	val bitvec.Value
}

// pushOp is a deferred stack push (applied in the write half of a phase).
type pushOp struct {
	stack string
	val   bitvec.Value
}

// phase collects the effects of evaluating one phase's statements.
type phase struct {
	writes []write
	pushes []pushOp
}

// RuntimeError is a simulation fault (stack overflow, malformed RTL); it
// halts the simulator.
type RuntimeError struct {
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime error at %#x: %s", e.PC, e.Msg) }

func (ev *env) fault(format string, args ...interface{}) error {
	return &RuntimeError{PC: ev.sim.currentPC, Msg: fmt.Sprintf(format, args...)}
}

// execStmts evaluates statements into ph (reads against current state).
func (ev *env) execStmts(stmts []isdl.Stmt, ph *phase) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *isdl.Assign:
			v, err := ev.eval(s.RHS)
			if err != nil {
				return err
			}
			l, err := ev.evalLoc(s.LHS)
			if err != nil {
				return err
			}
			ph.writes = append(ph.writes, write{loc: l, val: v})
		case *isdl.If:
			c, err := ev.eval(s.Cond)
			if err != nil {
				return err
			}
			body := s.Then
			if c.IsZero() {
				body = s.Else
			}
			if err := ev.execStmts(body, ph); err != nil {
				return err
			}
		case *isdl.ExprStmt:
			call := s.X.(*isdl.Call)
			switch call.Fn {
			case "push":
				v, err := ev.eval(call.Args[1])
				if err != nil {
					return err
				}
				ph.pushes = append(ph.pushes, pushOp{stack: call.Args[0].(*isdl.Ref).Name, val: v})
			case "pop":
				if _, err := ev.eval(call); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// commit applies the collected writes of a phase. Statements later in the
// phase override earlier ones on the same bits, matching the sequential
// write-back of the generated simulators.
func (sim *Simulator) commit(ph *phase) error {
	for _, w := range ph.writes {
		sim.applyWrite(w)
	}
	for _, p := range ph.pushes {
		if err := sim.st.Push(p.stack, p.val); err != nil {
			return &RuntimeError{PC: sim.currentPC, Msg: err.Error()}
		}
	}
	return nil
}

func (sim *Simulator) applyWrite(w write) {
	h := w.loc.h
	if !h.Valid() {
		h, _ = sim.st.Handle(w.loc.storage)
	}
	if w.loc.hi >= 0 {
		h.SetBits(w.loc.index, w.loc.hi, w.loc.lo, w.val)
	} else {
		h.Set(w.loc.index, w.val)
	}
	sim.stats.Writes++
}

// evalLoc resolves an lvalue expression to a concrete write destination,
// evaluating any index expressions against pre-phase state.
func (ev *env) evalLoc(e isdl.Expr) (loc, error) {
	switch e := e.(type) {
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			return loc{storage: e.Storage.Name, index: 0, hi: -1, lo: -1, h: ev.sim.handles[e.Storage]}, nil
		case e.AliasTo != nil:
			a := e.AliasTo
			l := loc{storage: a.Target, index: int(a.Index), hi: -1, lo: -1, h: ev.sim.aliasH[a]}
			if a.Sliced {
				l.hi, l.lo = a.Hi, a.Lo
			}
			return l, nil
		case e.Param != nil:
			arg := ev.args[e.Param.Name]
			return ev.subEnv(e.Param.Name).evalLoc(arg.Option.Value)
		}
	case *isdl.Index:
		idx, err := ev.eval(e.Idx)
		if err != nil {
			return loc{}, err
		}
		return loc{storage: e.Storage.Name, index: int(idx.Uint64()), hi: -1, lo: -1, h: ev.sim.handles[e.Storage]}, nil
	case *isdl.SliceE:
		base, err := ev.evalLoc(e.X)
		if err != nil {
			return loc{}, err
		}
		if base.hi >= 0 {
			// Slice of a slice: offsets compose.
			return loc{storage: base.storage, index: base.index, hi: base.lo + e.Hi, lo: base.lo + e.Lo}, nil
		}
		base.hi, base.lo = e.Hi, e.Lo
		return base, nil
	}
	return loc{}, ev.fault("%s is not assignable", e)
}

// eval computes the value of an RTL expression against current state.
func (ev *env) eval(e isdl.Expr) (bitvec.Value, error) {
	switch e := e.(type) {
	case *isdl.Lit:
		return e.Val, nil

	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			ev.sim.stats.Reads++
			return ev.sim.handles[e.Storage].Get(0), nil
		case e.AliasTo != nil:
			a := e.AliasTo
			ev.sim.stats.Reads++
			v := ev.sim.aliasH[a].Get(int(a.Index))
			if a.Sliced {
				v = v.Slice(a.Hi, a.Lo)
			}
			return v, nil
		case e.Param != nil:
			arg := ev.args[e.Param.Name]
			if e.Param.Token != nil {
				return arg.Value, nil
			}
			return ev.subEnv(e.Param.Name).eval(arg.Option.Value)
		}
		return bitvec.Value{}, ev.fault("unresolved reference %s", e.Name)

	case *isdl.Index:
		idx, err := ev.eval(e.Idx)
		if err != nil {
			return bitvec.Value{}, err
		}
		ev.sim.stats.Reads++
		return ev.sim.handles[e.Storage].Get(int(idx.Uint64())), nil

	case *isdl.SliceE:
		v, err := ev.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		return v.Slice(e.Hi, e.Lo), nil

	case *isdl.Unary:
		v, err := ev.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		switch e.Op {
		case "-":
			return v.Neg(), nil
		case "~":
			return v.Not(), nil
		case "!":
			return boolVal(v.IsZero()), nil
		}

	case *isdl.Binary:
		x, err := ev.eval(e.X)
		if err != nil {
			return bitvec.Value{}, err
		}
		// Short-circuit logical operators.
		switch e.Op {
		case "&&":
			if x.IsZero() {
				return boolVal(false), nil
			}
			y, err := ev.eval(e.Y)
			if err != nil {
				return bitvec.Value{}, err
			}
			return boolVal(!y.IsZero()), nil
		case "||":
			if !x.IsZero() {
				return boolVal(true), nil
			}
			y, err := ev.eval(e.Y)
			if err != nil {
				return bitvec.Value{}, err
			}
			return boolVal(!y.IsZero()), nil
		}
		y, err := ev.eval(e.Y)
		if err != nil {
			return bitvec.Value{}, err
		}
		return evalBinary(e.Op, x, y)

	case *isdl.Call:
		return ev.evalCall(e)
	}
	return bitvec.Value{}, ev.fault("cannot evaluate %s", e)
}

func boolVal(b bool) bitvec.Value {
	if b {
		return bitvec.FromUint64(1, 1)
	}
	return bitvec.New(1)
}

func evalBinary(op string, x, y bitvec.Value) (bitvec.Value, error) {
	switch op {
	case "+":
		return x.Add(y), nil
	case "-":
		return x.Sub(y), nil
	case "*":
		return x.Mul(y), nil
	case "/":
		return x.DivU(y), nil
	case "%":
		return x.ModU(y), nil
	case "&":
		return x.And(y), nil
	case "|":
		return x.Or(y), nil
	case "^":
		return x.Xor(y), nil
	case "<<":
		return x.Shl(int(y.Uint64())), nil
	case ">>":
		return x.ShrL(int(y.Uint64())), nil
	case "==":
		return boolVal(x.Eq(y)), nil
	case "!=":
		return boolVal(!x.Eq(y)), nil
	case "<":
		return boolVal(x.CmpU(y) < 0), nil
	case "<=":
		return boolVal(x.CmpU(y) <= 0), nil
	case ">":
		return boolVal(x.CmpU(y) > 0), nil
	case ">=":
		return boolVal(x.CmpU(y) >= 0), nil
	}
	return bitvec.Value{}, fmt.Errorf("unknown operator %q", op)
}

func (ev *env) evalCall(e *isdl.Call) (bitvec.Value, error) {
	// push/pop touch the stack; the rest are pure.
	switch e.Fn {
	case "pop":
		name := e.Args[0].(*isdl.Ref).Name
		v, err := ev.sim.st.Pop(name)
		if err != nil {
			return bitvec.Value{}, &RuntimeError{PC: ev.sim.currentPC, Msg: err.Error()}
		}
		return v, nil
	case "push":
		return bitvec.Value{}, ev.fault("push used as a value")
	}

	var argBuf [4]bitvec.Value
	var args []bitvec.Value
	if len(e.Args) <= len(argBuf) {
		args = argBuf[:len(e.Args)]
	} else {
		args = make([]bitvec.Value, len(e.Args))
	}
	for i, a := range e.Args {
		// Width arguments of sext/zext/trunc are unsized literals carrying
		// the target width; skip evaluating them.
		if i == 1 && (e.Fn == "sext" || e.Fn == "zext" || e.Fn == "trunc") {
			continue
		}
		v, err := ev.eval(a)
		if err != nil {
			return bitvec.Value{}, err
		}
		args[i] = v
	}
	switch e.Fn {
	case "sext":
		return args[0].SignExt(e.W), nil
	case "zext":
		return args[0].ZeroExt(e.W), nil
	case "trunc":
		return args[0].Trunc(e.W), nil
	case "carry":
		_, c := args[0].AddCarry(args[1])
		return boolVal(c), nil
	case "borrow":
		_, b := args[0].SubBorrow(args[1])
		return boolVal(b), nil
	case "addov":
		s := args[0].Add(args[1])
		return boolVal(args[0].Sign() == args[1].Sign() && s.Sign() != args[0].Sign()), nil
	case "subov":
		s := args[0].Sub(args[1])
		return boolVal(args[0].Sign() != args[1].Sign() && s.Sign() != args[0].Sign()), nil
	case "slt":
		return boolVal(args[0].CmpS(args[1]) < 0), nil
	case "sle":
		return boolVal(args[0].CmpS(args[1]) <= 0), nil
	case "sgt":
		return boolVal(args[0].CmpS(args[1]) > 0), nil
	case "sge":
		return boolVal(args[0].CmpS(args[1]) >= 0), nil
	case "asr":
		return args[0].ShrA(int(args[1].Uint64())), nil
	case "concat":
		v := args[0]
		for _, a := range args[1:] {
			v = v.Concat(a)
		}
		return v, nil
	}
	return bitvec.Value{}, ev.fault("unknown builtin %s", e.Fn)
}
