package xsim_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// TestReloadReproducesRun: Load must fully reset the machine — dense decode
// cache, op counters, statistics — so re-running the same program yields
// identical cycle counts and statistics.
func TestReloadReproducesRun(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, `
    mv R1, #5
    mv R2, #3
    add R3, R1, R2
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	run := func() (uint64, uint64, uint64) {
		if err := sim.Load(p); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		st := sim.Stats()
		return sim.Cycle(), st.Instructions, st.OpCounts["main.add"]
	}
	c1, i1, a1 := run()
	for n := 0; n < 3; n++ {
		c2, i2, a2 := run()
		if c1 != c2 || i1 != i2 || a1 != a2 {
			t.Fatalf("reload run %d differs: (%d,%d,%d) vs (%d,%d,%d)", n, c1, i1, a1, c2, i2, a2)
		}
	}
}

// TestFetchOutsideLoadedImage: instructions materialized into instruction
// memory beyond the loaded program image sit outside the dense decode
// window and must decode through the fallback path.
func TestFetchOutsideLoadedImage(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R1, #1\n halt")
	if err != nil {
		t.Fatal(err)
	}
	// A second fragment whose words we plant far beyond the image.
	frag, err := asm.Assemble(d, "mv R2, #9\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	const far = 40
	for i, w := range frag.Words {
		sim.State().Set("IMEM", far+i, w)
	}
	sim.State().SetPC(bitvec.FromUint64(d.PC().Width, far))
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := reg(t, sim, 2); got != 9 {
		t.Errorf("R2 = %d, want 9 (out-of-image fetch)", got)
	}
	// The out-of-range decode must also disassemble and re-run after an
	// in-place Reset.
	if _, err := sim.Disassemble(far); err != nil {
		t.Fatal(err)
	}
	sim.Reset()
	if got := sim.Stats().Instructions; got != 0 {
		t.Errorf("instructions after Reset = %d, want 0", got)
	}
}

// TestResetReusesStorage: Reset keeps the machine allocation-free — it may
// not reallocate the decode cache, counter maps, or statistics storage.
func TestResetReusesStorage(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R1, #2\n add R1, R1, #3\n halt")
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() { sim.Reset() })
	if allocs > 0 {
		t.Errorf("Reset allocates %.1f objects/op, want 0", allocs)
	}
}
