package xsim_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// perfLoop runs a short counted loop, so re-executed addresses exercise the
// decode cache.
const perfLoop = `
    mv R1, #0
    mv R2, #5
loop:
    beq R2, R0, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`

func TestPerfCounters(t *testing.T) {
	sim := runToy(t, perfLoop)
	p := sim.Perf()

	stats := sim.Stats()
	if p.Instructions != stats.Instructions {
		t.Errorf("perf instructions = %d, want %d", p.Instructions, stats.Instructions)
	}
	if p.Cycles != sim.Cycle() {
		t.Errorf("perf cycles = %d, want %d", p.Cycles, sim.Cycle())
	}
	// The loop body re-executes: 7 distinct addresses decode fresh, every
	// further fetch hits the decode cache.
	if p.DecodeMisses != 7 {
		t.Errorf("decode misses = %d, want 7 (one per distinct address)", p.DecodeMisses)
	}
	if p.DecodeHits+p.DecodeMisses != p.Instructions {
		t.Errorf("decode hits %d + misses %d != %d instructions", p.DecodeHits, p.DecodeMisses, p.Instructions)
	}
	if p.DecodeHitRate() <= 0.5 {
		t.Errorf("decode hit rate = %v, want > 0.5 for a loop", p.DecodeHitRate())
	}
	if p.OpsReused+p.OpsCompiled == 0 {
		t.Error("no compiled-op traffic recorded")
	}
	if p.RunSeconds <= 0 {
		t.Errorf("run seconds = %v, want > 0", p.RunSeconds)
	}
	if p.MIPS <= 0 || p.SimCyclesPerSec <= 0 {
		t.Errorf("throughput not computed: MIPS=%v cycles/s=%v", p.MIPS, p.SimCyclesPerSec)
	}

	sum := p.Summary()
	for _, want := range []string{"instructions:", "decode cache:", "compiled ops:", "MIPS"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestPerfSurvivesReset(t *testing.T) {
	d := machines.Toy()
	prog, err := asm.Assemble(d, perfLoop)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	first := sim.Perf()
	sim.Reset()
	if err := sim.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	second := sim.Perf()
	if second.Instructions != 2*first.Instructions {
		t.Errorf("instructions after reset+rerun = %d, want %d (cumulative)", second.Instructions, 2*first.Instructions)
	}
	if second.RunSeconds <= first.RunSeconds {
		t.Error("run seconds did not accumulate across Reset")
	}
}

func TestPerfPublish(t *testing.T) {
	sim := runToy(t, perfLoop)
	reg := obs.NewRegistry()
	sim.Perf().Publish(reg)
	counters := reg.Counters()
	if counters["xsim.instructions"] != sim.Perf().Instructions {
		t.Errorf("published instructions = %d, want %d", counters["xsim.instructions"], sim.Perf().Instructions)
	}
	for _, name := range []string{"xsim.cycles", "xsim.decode.hits", "xsim.decode.misses", "xsim.run_ns"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("counter %s not published", name)
		}
	}
	// Nil registry is a no-op.
	sim.Perf().Publish(nil)
}
