package xsim_test

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/xsim"
)

// perfLoop runs a short counted loop, so re-executed addresses exercise the
// decode cache.
const perfLoop = `
    mv R1, #0
    mv R2, #5
loop:
    beq R2, R0, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`

func TestPerfCounters(t *testing.T) {
	sim := runToy(t, perfLoop)
	p := sim.Perf()

	stats := sim.Stats()
	if p.Instructions != stats.Instructions {
		t.Errorf("perf instructions = %d, want %d", p.Instructions, stats.Instructions)
	}
	if p.Cycles != sim.Cycle() {
		t.Errorf("perf cycles = %d, want %d", p.Cycles, sim.Cycle())
	}
	// The loop body re-executes: 7 distinct addresses decode fresh, every
	// further fetch hits the decode cache.
	if p.DecodeMisses != 7 {
		t.Errorf("decode misses = %d, want 7 (one per distinct address)", p.DecodeMisses)
	}
	if p.DecodeHits+p.DecodeMisses != p.Instructions {
		t.Errorf("decode hits %d + misses %d != %d instructions", p.DecodeHits, p.DecodeMisses, p.Instructions)
	}
	if p.DecodeHitRate() <= 0.5 {
		t.Errorf("decode hit rate = %v, want > 0.5 for a loop", p.DecodeHitRate())
	}
	if p.OpsReused+p.OpsCompiled == 0 {
		t.Error("no compiled-op traffic recorded")
	}
	if p.RunSeconds <= 0 {
		t.Errorf("run seconds = %v, want > 0", p.RunSeconds)
	}
	if p.MIPS <= 0 || p.SimCyclesPerSec <= 0 {
		t.Errorf("throughput not computed: MIPS=%v cycles/s=%v", p.MIPS, p.SimCyclesPerSec)
	}

	sum := p.Summary()
	for _, want := range []string{"instructions:", "decode cache:", "compiled ops:", "MIPS"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestPerfSurvivesReset(t *testing.T) {
	d := machines.Toy()
	prog, err := asm.Assemble(d, perfLoop)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	first := sim.Perf()
	sim.Reset()
	if err := sim.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100000); err != nil {
		t.Fatal(err)
	}
	second := sim.Perf()
	if second.Instructions != 2*first.Instructions {
		t.Errorf("instructions after reset+rerun = %d, want %d (cumulative)", second.Instructions, 2*first.Instructions)
	}
	if second.RunSeconds <= first.RunSeconds {
		t.Error("run seconds did not accumulate across Reset")
	}
}

// TestPerfRatesNearZeroClock injects clocks whose Run deltas are zero or
// negative: the derived rates must stay zero (never ±Inf or NaN) and the
// report must still marshal as JSON — the regression that motivated
// DeriveRates was a frozen clock turning MIPS into +Inf and poisoning the
// metrics export.
func TestPerfRatesNearZeroClock(t *testing.T) {
	frozen := time.Unix(1_700_000_000, 0)
	clocks := map[string]func() time.Time{
		"frozen": func() time.Time { return frozen },
		"backwards": func() func() time.Time {
			step := 0
			return func() time.Time {
				step++
				return frozen.Add(-time.Duration(step) * time.Second)
			}
		}(),
	}
	for name, clock := range clocks {
		t.Run(name, func(t *testing.T) {
			d := machines.Toy()
			prog, err := asm.Assemble(d, perfLoop)
			if err != nil {
				t.Fatal(err)
			}
			sim := xsim.New(d)
			sim.SetClock(clock)
			if err := sim.Load(prog); err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(100000); err != nil {
				t.Fatal(err)
			}
			p := sim.Perf()
			if p.Instructions == 0 {
				t.Fatal("no instructions recorded — test is vacuous")
			}
			if p.RunSeconds != 0 || p.MIPS != 0 || p.SimCyclesPerSec != 0 {
				t.Errorf("rates with %s clock = (%v s, %v MIPS, %v cycles/s), want all zero",
					name, p.RunSeconds, p.MIPS, p.SimCyclesPerSec)
			}
			blob, err := json.Marshal(p)
			if err != nil {
				t.Fatalf("perf report does not marshal: %v", err)
			}
			var back xsim.PerfReport
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatalf("perf report does not round-trip: %v", err)
			}
		})
	}
}

// TestDeriveRatesClamps covers the derivation directly: non-positive
// durations zero the rates, and non-finite divisions clamp to zero.
func TestDeriveRatesClamps(t *testing.T) {
	p := xsim.PerfReport{Instructions: 10, Cycles: 20}
	for _, ns := range []int64{0, -1, math.MinInt64} {
		p.DeriveRates(ns)
		if p.RunSeconds != 0 || p.MIPS != 0 || p.SimCyclesPerSec != 0 {
			t.Errorf("DeriveRates(%d) = (%v, %v, %v), want zeros", ns, p.RunSeconds, p.MIPS, p.SimCyclesPerSec)
		}
	}
	p.DeriveRates(1) // one nanosecond: huge but finite rates
	if math.IsInf(p.MIPS, 0) || math.IsNaN(p.MIPS) || math.IsInf(p.SimCyclesPerSec, 0) {
		t.Errorf("DeriveRates(1) produced non-finite rates: %v MIPS, %v cycles/s", p.MIPS, p.SimCyclesPerSec)
	}
}

func TestPerfPublish(t *testing.T) {
	sim := runToy(t, perfLoop)
	reg := obs.NewRegistry()
	sim.Perf().Publish(reg)
	counters := reg.Counters()
	if counters["xsim.instructions"] != sim.Perf().Instructions {
		t.Errorf("published instructions = %d, want %d", counters["xsim.instructions"], sim.Perf().Instructions)
	}
	for _, name := range []string{"xsim.cycles", "xsim.decode.hits", "xsim.decode.misses", "xsim.run_ns"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("counter %s not published", name)
		}
	}
	// Nil registry is a no-op.
	sim.Perf().Publish(nil)
}
