package xsim

// White-box tests for the two load-path caches: the compiled-op closure
// cache shared across simulators, and decode-cache survival across Load.

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isdl"
	"repro/internal/machines"
)

const opcProg = `
    mv R1, #5
    mv R2, #3
    add R3, R1, R2
    halt
`

func mustAssemble(t *testing.T, d *isdl.Description, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runToHalt(t *testing.T, sim *Simulator, p *asm.Program) {
	t.Helper()
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
}

// TestLoadKeepsDecodeCacheForSameImage: reloading an identical program
// image keeps the dense decode entries; a different image drops them.
func TestLoadKeepsDecodeCacheForSameImage(t *testing.T) {
	d := machines.Toy()
	p1 := mustAssemble(t, d, opcProg)
	p2 := mustAssemble(t, d, "mv R1, #7\n halt")

	sim := New(d)
	runToHalt(t, sim, p1)
	before, err := sim.fetch(p1.Base)
	if err != nil {
		t.Fatal(err)
	}

	// Same image: the decode entry must survive the reload.
	if err := sim.Load(p1); err != nil {
		t.Fatal(err)
	}
	after, err := sim.fetch(p1.Base)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Error("reload with identical image re-decoded the program")
	}

	// Different image: every decode entry must be dropped.
	if err := sim.Load(p2); err != nil {
		t.Fatal(err)
	}
	changed, err := sim.fetch(p2.Base)
	if err != nil {
		t.Fatal(err)
	}
	if changed == before {
		t.Error("reload with different image kept a stale decode")
	}

	// The reloaded program still runs correctly from the kept state.
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sim.State().Get("RF", 1).Uint64(); got != 7 {
		t.Errorf("after reload R1 = %d, want 7", got)
	}
}

// TestOpCacheReuseAcrossSimulators: a second simulator built from an
// independently parsed but textually identical description compiles
// nothing — every decoded operation instance hits the shared cache.
func TestOpCacheReuseAcrossSimulators(t *testing.T) {
	d1 := machines.Toy()
	d2, err := isdl.Parse(isdl.Format(d1))
	if err != nil {
		t.Fatal(err)
	}

	opc := NewOpCache()
	sim1 := New(d1)
	sim1.SetOpCache(opc)
	runToHalt(t, sim1, mustAssemble(t, d1, opcProg))
	hits1, misses1 := opc.Stats()
	if misses1 == 0 {
		t.Fatal("first simulator compiled nothing")
	}

	sim2 := New(d2)
	sim2.SetOpCache(opc)
	runToHalt(t, sim2, mustAssemble(t, d2, opcProg))
	hits2, misses2 := opc.Stats()
	if misses2 != misses1 {
		t.Errorf("equivalent description recompiled %d ops; want full reuse", misses2-misses1)
	}
	if hits2-hits1 != misses1 {
		t.Errorf("second simulator hit %d times, want %d (one per decoded instance)", hits2-hits1, misses1)
	}

	// Cached closures must execute correctly on the second simulator.
	if got := sim2.State().Get("RF", 3).Uint64(); got != 8 {
		t.Errorf("cached-closure run: R3 = %d, want 8", got)
	}
	if sim1.Cycle() != sim2.Cycle() {
		t.Errorf("cycle counts differ: %d vs %d", sim1.Cycle(), sim2.Cycle())
	}
}

// TestOpCacheInvalidatesChangedOpsOnly: changing one operation's body
// recompiles exactly the decoded instances of that operation; every other
// instance still hits.
func TestOpCacheInvalidatesChangedOpsOnly(t *testing.T) {
	d1 := machines.Toy()
	mut := machines.Toy()
	mut.Fields[0].ByName["add"].Timing.Latency++
	d2, err := isdl.Parse(isdl.Format(mut))
	if err != nil {
		t.Fatal(err)
	}

	opc := NewOpCache()
	sim1 := New(d1)
	sim1.SetOpCache(opc)
	runToHalt(t, sim1, mustAssemble(t, d1, opcProg))
	_, misses1 := opc.Stats()

	sim2 := New(d2)
	sim2.SetOpCache(opc)
	runToHalt(t, sim2, mustAssemble(t, d2, opcProg))
	_, misses2 := opc.Stats()

	// The program decodes exactly one instance of the changed op ("add");
	// mv, mv, halt must all reuse their compiled closures.
	if got := misses2 - misses1; got != 1 {
		t.Errorf("op-body change recompiled %d instances, want exactly 1 (the changed op)", got)
	}
}

// TestOpCacheDisabled: SetOpCache(nil) compiles fresh per decode and the
// simulator still runs correctly.
func TestOpCacheDisabled(t *testing.T) {
	d := machines.Toy()
	sim := New(d)
	sim.SetOpCache(nil)
	runToHalt(t, sim, mustAssemble(t, d, opcProg))
	if got := sim.State().Get("RF", 3).Uint64(); got != 8 {
		t.Errorf("R3 = %d, want 8", got)
	}
}
