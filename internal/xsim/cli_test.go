package xsim_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/state"
	"repro/internal/xsim"
)

func newSession(t *testing.T, src string) (*xsim.Session, *bytes.Buffer) {
	t.Helper()
	d := machines.Toy()
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	s := xsim.NewSession(xsim.New(d), &out)
	if err := s.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	return s, &out
}

func exec(t *testing.T, s *xsim.Session, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := s.Execute(l); err != nil {
			t.Fatalf("%s: %v", l, err)
		}
	}
}

func TestSessionRunAndExamine(t *testing.T) {
	s, out := newSession(t, "mv R1, #42\n halt")
	exec(t, s, "run", "x RF 1")
	if !strings.Contains(out.String(), "RF[1] = 8'h2a (42)") {
		t.Fatalf("output: %q", out.String())
	}
	if !strings.Contains(out.String(), "halted at cycle 2") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestSessionStepAndDisasm(t *testing.T) {
	s, out := newSession(t, "mv R1, #1\n mv R2, #2\n halt")
	exec(t, s, "step 2", "disasm 0 3", "pc")
	text := out.String()
	if !strings.Contains(text, "0000  mv R1, #1") || !strings.Contains(text, "0002  halt") {
		t.Fatalf("output: %q", text)
	}
}

func TestSessionBreakpointBySymbol(t *testing.T) {
	s, out := newSession(t, "mv R1, #1\nhere:\n mv R2, #2\n halt")
	exec(t, s, "break here", "run")
	if !strings.Contains(out.String(), "breakpoint at 0001") {
		t.Fatalf("output: %q", out.String())
	}
	exec(t, s, "breaks", "unbreak here", "run")
	if !strings.Contains(out.String(), "halted") {
		t.Fatalf("output: %q", out.String())
	}
	if err := s.Execute("unbreak here"); err == nil {
		t.Fatal("unbreak of cleared breakpoint should fail")
	}
}

func TestSessionWatch(t *testing.T) {
	s, out := newSession(t, "mv R3, #7\n halt")
	exec(t, s, "watch RF 3", "run")
	if !strings.Contains(out.String(), "watch: cycle 0: RF[3]: 8'h0 -> 8'h7") {
		t.Fatalf("output: %q", out.String())
	}
	exec(t, s, "unwatch 1")
	if err := s.Execute("unwatch 99"); err == nil {
		t.Fatal("unwatch of unknown id should fail")
	}
}

func TestSessionAttachedCommands(t *testing.T) {
	s, out := newSession(t, `
    mv R1, #0
loop:
    add R1, R1, #1
    beq R1, R2, done
    jmp loop
done:
    halt
`)
	// Attach a state dump to the loop head; the run resumes automatically.
	exec(t, s, "set RF 2 3", "attach loop x RF 1", "run")
	text := out.String()
	if got := strings.Count(text, "RF[1]"); got != 3 {
		t.Fatalf("attached command ran %d times, want 3:\n%s", got, text)
	}
	if !strings.Contains(text, "halted") {
		t.Fatalf("run did not complete: %q", text)
	}
}

func TestSessionSetAndReset(t *testing.T) {
	s, out := newSession(t, "add R1, R2, #1\n halt")
	exec(t, s, "set RF 2 10", "run", "x RF 1")
	if !strings.Contains(out.String(), "RF[1] = 8'hb (11)") {
		t.Fatalf("output: %q", out.String())
	}
	out.Reset()
	exec(t, s, "reset", "x RF 1")
	if !strings.Contains(out.String(), "RF[1] = 8'h0 (0)") {
		t.Fatalf("after reset: %q", out.String())
	}
}

func TestSessionScriptAndFiles(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, "mv R5, #5\n halt")
	if err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{
		"prog.xbin": asm.Marshal(p),
		"script":    []byte("# batch\nload prog.xbin\nrun\nx RF 5\necho done\n"),
	}
	var out bytes.Buffer
	s := xsim.NewSession(xsim.New(d), &out)
	s.Open = func(name string) ([]byte, error) {
		b, ok := files[name]
		if !ok {
			return nil, fmt.Errorf("no file %s", name)
		}
		return b, nil
	}
	if err := s.Execute("source script"); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "RF[5] = 8'h5 (5)") || !strings.Contains(text, "done") {
		t.Fatalf("output: %q", text)
	}
}

func TestSessionSymbolsAndSetpc(t *testing.T) {
	s, out := newSession(t, "a:\n nop\nb:\n halt")
	exec(t, s, "symbols", "setpc b", "run")
	text := out.String()
	if !strings.Contains(text, "a") || !strings.Contains(text, "0001") {
		t.Fatalf("symbols: %q", text)
	}
	if s.Sim.Stats().Instructions != 1 {
		t.Fatalf("setpc b should skip the nop; executed %d", s.Sim.Stats().Instructions)
	}
}

func TestSessionStats(t *testing.T) {
	s, out := newSession(t, "nop\n halt")
	exec(t, s, "run", "stats")
	if !strings.Contains(out.String(), "instructions:  2") {
		t.Fatalf("stats: %q", out.String())
	}
}

func TestSessionErrors(t *testing.T) {
	s, _ := newSession(t, "halt")
	for _, bad := range []string{
		"bogus", "x NOPE", "break zzz9x", "set NOPE 0 1", "step x",
		"watch NOPE", "load x", "source x", "run x", "unbreak",
	} {
		if err := s.Execute(bad); err == nil {
			t.Errorf("command %q should fail", bad)
		}
	}
}

func TestSessionREPLAndQuit(t *testing.T) {
	s, out := newSession(t, "halt")
	s.REPL(strings.NewReader("echo hi\nbadcmd\nquit\n"))
	text := out.String()
	if !strings.Contains(text, "hi") || !strings.Contains(text, "error:") {
		t.Fatalf("repl output: %q", text)
	}
	if !s.Quit() {
		t.Fatal("quit flag not set")
	}
}

func TestSessionHelp(t *testing.T) {
	s, out := newSession(t, "halt")
	exec(t, s, "help")
	if !strings.Contains(out.String(), "breakpoints") {
		t.Fatalf("help: %q", out.String())
	}
}

func TestSessionProfile(t *testing.T) {
	s, out := newSession(t, `
    mv R1, #3
again:
    sub R1, R1, #1
    beq R1, R0, fin
    jmp again
fin:
    halt
`)
	exec(t, s, "profile on", "run", "profile report 3")
	text := out.String()
	if !strings.Contains(text, "execution profile") || !strings.Contains(text, "again") {
		t.Fatalf("profile output: %q", text)
	}
	exec(t, s, "profile off")
	if err := s.Execute("profile report"); err == nil {
		t.Fatal("report after off should fail")
	}
	if err := s.Execute("profile bogus"); err == nil {
		t.Fatal("bad subcommand should fail")
	}
}

// TestMMIODeviceHook shows memory-mapped output: a state monitor on the MMIO
// storage acts as the attached device, observing every `out` write.
func TestMMIODeviceHook(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, `
    mv R1, #65
    out 0, R1
    add R1, R1, #1
    out 1, R1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	var device []byte
	if _, err := sim.State().Watch("MMIO", -1, func(ev state.ChangeEvent) {
		device = append(device, byte(ev.New.Uint64()))
	}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if string(device) != "AB" {
		t.Fatalf("device received %q, want AB", device)
	}
	if got := sim.State().Get("MMIO", 1).Uint64(); got != 66 {
		t.Fatalf("MMIO[1] = %d", got)
	}
}
