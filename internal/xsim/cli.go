package xsim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/state"
	"repro/internal/traceprof"
)

// Session is the command-line / batch interface of an XSIM simulator
// (§3.1-3.2: "a command-line interface with full batch-file support" and
// "full debugging support — breakpoints, state monitors and attached
// commands"). The graphical Tcl/Tk interface of the original is a
// presentation layer and is not reproduced; every capability it exposed is
// available as a command here.
type Session struct {
	Sim *Simulator
	Out io.Writer
	// Open loads a named file for the load/source commands; the cmd tools
	// install os.ReadFile, tests install a map lookup.
	Open func(name string) ([]byte, error)
	// Create opens a named file for writing (trace command).
	Create func(name string) (io.WriteCloser, error)

	prog     *asm.Program
	profile  *traceprof.Profile
	watchIDs []int
	// attached maps an address to commands executed (and then resumed
	// past) whenever execution reaches it.
	attached map[int][]string
	quit     bool
}

// NewSession wraps a simulator in a command session writing to out.
func NewSession(sim *Simulator, out io.Writer) *Session {
	return &Session{Sim: sim, Out: out, attached: map[int][]string{}}
}

// Quit reports whether the quit command has been issued.
func (s *Session) Quit() bool { return s.quit }

// LoadProgram installs an assembled program directly (bypassing the file
// system).
func (s *Session) LoadProgram(p *asm.Program) error {
	s.prog = p
	return s.Sim.Load(p)
}

// Program returns the loaded program, if any.
func (s *Session) Program() *asm.Program { return s.prog }

// RunScript executes a batch file: one command per line, '#' comments.
func (s *Session) RunScript(r io.Reader) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() && !s.quit {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := s.Execute(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

// REPL reads commands interactively until quit or EOF. Command errors are
// printed, not fatal.
func (s *Session) REPL(in io.Reader) {
	sc := bufio.NewScanner(in)
	fmt.Fprintf(s.Out, "xsim %s> ", s.Sim.d.Name)
	for sc.Scan() && !s.quit {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if err := s.Execute(line); err != nil {
				fmt.Fprintf(s.Out, "error: %v\n", err)
			}
		}
		if !s.quit {
			fmt.Fprintf(s.Out, "xsim %s> ", s.Sim.d.Name)
		}
	}
}

// addr resolves a numeric or symbolic address.
func (s *Session) addr(arg string) (int, error) {
	if s.prog != nil {
		if a, ok := s.prog.Symbols[arg]; ok {
			return a, nil
		}
	}
	base := 10
	t := arg
	if strings.HasPrefix(arg, "0x") {
		base, t = 16, arg[2:]
	}
	n, err := strconv.ParseInt(t, base, 32)
	if err != nil {
		return 0, fmt.Errorf("bad address %q", arg)
	}
	return int(n), nil
}

// Execute runs one command line.
func (s *Session) Execute(line string) error {
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "help":
		fmt.Fprint(s.Out, helpText)
	case "quit", "q":
		s.quit = true
	case "echo":
		fmt.Fprintln(s.Out, strings.Join(args, " "))
	case "load":
		if len(args) != 1 {
			return fmt.Errorf("usage: load <file.xbin>")
		}
		if s.Open == nil {
			return fmt.Errorf("load: no file access in this session")
		}
		blob, err := s.Open(args[0])
		if err != nil {
			return err
		}
		p, err := asm.Unmarshal(s.Sim.d, blob)
		if err != nil {
			return err
		}
		return s.LoadProgram(p)
	case "source":
		if len(args) != 1 {
			return fmt.Errorf("usage: source <script>")
		}
		if s.Open == nil {
			return fmt.Errorf("source: no file access in this session")
		}
		blob, err := s.Open(args[0])
		if err != nil {
			return err
		}
		return s.RunScript(strings.NewReader(string(blob)))
	case "run", "r":
		limit := int64(0)
		if len(args) == 1 {
			n, err := strconv.ParseInt(args[0], 10, 64)
			if err != nil {
				return fmt.Errorf("bad limit %q", args[0])
			}
			limit = n
		}
		return s.runWithAttached(limit)
	case "step", "s":
		n := 1
		if len(args) == 1 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v < 1 {
				return fmt.Errorf("bad step count %q", args[0])
			}
			n = v
		}
		for i := 0; i < n && !s.Sim.Halted(); i++ {
			pc := int(s.Sim.State().PC().Uint64())
			text, err := s.Sim.Disassemble(pc)
			if err != nil {
				return err
			}
			if err := s.Sim.Step(); err != nil {
				return err
			}
			fmt.Fprintf(s.Out, "%04x  %s\n", pc, text)
		}
		s.reportStop()
	case "break", "b":
		if len(args) != 1 {
			return fmt.Errorf("usage: break <addr|symbol>")
		}
		a, err := s.addr(args[0])
		if err != nil {
			return err
		}
		s.Sim.AddBreakpoint(a)
	case "unbreak":
		if len(args) != 1 {
			return fmt.Errorf("usage: unbreak <addr|symbol>")
		}
		a, err := s.addr(args[0])
		if err != nil {
			return err
		}
		if !s.Sim.RemoveBreakpoint(a) {
			return fmt.Errorf("no breakpoint at %#x", a)
		}
	case "breaks":
		for _, a := range s.Sim.Breakpoints() {
			fmt.Fprintf(s.Out, "%04x\n", a)
		}
	case "attach":
		if len(args) < 2 {
			return fmt.Errorf("usage: attach <addr|symbol> <command...>")
		}
		a, err := s.addr(args[0])
		if err != nil {
			return err
		}
		s.attached[a] = append(s.attached[a], strings.Join(args[1:], " "))
		s.Sim.AddBreakpoint(a)
	case "watch":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("usage: watch <storage> [index]")
		}
		idx := -1
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("bad index %q", args[1])
			}
			idx = v
		}
		id, err := s.Sim.State().Watch(args[0], idx, func(ev state.ChangeEvent) {
			fmt.Fprintf(s.Out, "watch: %s\n", ev)
		})
		if err != nil {
			return err
		}
		s.watchIDs = append(s.watchIDs, id)
		fmt.Fprintf(s.Out, "watch %d installed\n", id)
	case "unwatch":
		if len(args) != 1 {
			return fmt.Errorf("usage: unwatch <id>")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil || !s.Sim.State().Unwatch(id) {
			return fmt.Errorf("no watch %q", args[0])
		}
	case "x", "examine":
		return s.examine(args)
	case "set":
		if len(args) != 3 {
			return fmt.Errorf("usage: set <storage> <index> <value>")
		}
		st, ok := s.Sim.d.StorageByName[args[0]]
		if !ok {
			return fmt.Errorf("unknown storage %s", args[0])
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad index %q", args[1])
		}
		v, err := s.addr(args[2]) // reuse numeric/symbol parsing
		if err != nil {
			return err
		}
		s.Sim.State().Set(st.Name, idx, bitvec.FromInt64(st.Width, int64(v)))
	case "pc":
		fmt.Fprintf(s.Out, "%04x\n", s.Sim.State().PC().Uint64())
	case "setpc":
		if len(args) != 1 {
			return fmt.Errorf("usage: setpc <addr|symbol>")
		}
		a, err := s.addr(args[0])
		if err != nil {
			return err
		}
		s.Sim.State().SetPC(bitvec.FromUint64(s.Sim.d.PC().Width, uint64(a)))
	case "disasm":
		start := int(s.Sim.State().PC().Uint64())
		count := 4
		if len(args) >= 1 {
			a, err := s.addr(args[0])
			if err != nil {
				return err
			}
			start = a
		}
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return fmt.Errorf("bad count %q", args[1])
			}
			count = v
		}
		pc := start
		for i := 0; i < count; i++ {
			text, err := s.Sim.Disassemble(pc)
			if err != nil {
				fmt.Fprintf(s.Out, "%04x  <illegal>\n", pc)
				pc++
				continue
			}
			ii, _ := s.Sim.fetch(pc) // cached: Disassemble just decoded it
			fmt.Fprintf(s.Out, "%04x  %s\n", pc, text)
			pc += ii.inst.Size
		}
	case "stats":
		fmt.Fprint(s.Out, s.Sim.Stats().Summary(s.Sim.d))
	case "perf":
		fmt.Fprint(s.Out, s.Sim.Perf().Summary())
	case "trace":
		if len(args) != 1 {
			return fmt.Errorf("usage: trace <file|off>")
		}
		if args[0] == "off" {
			s.Sim.SetTrace(nil)
			return nil
		}
		if s.Create == nil {
			return fmt.Errorf("trace: no file access in this session")
		}
		w, err := s.Create(args[0])
		if err != nil {
			return err
		}
		s.Sim.SetTrace(w)
	case "profile":
		// The in-process trace consumer of §3.1 ("directly to a
		// processing program").
		if len(args) < 1 {
			return fmt.Errorf("usage: profile on|off|report [top]")
		}
		switch args[0] {
		case "on":
			s.profile = traceprof.New()
			s.Sim.SetTrace(s.profile.Writer())
		case "off":
			s.Sim.SetTrace(nil)
			s.profile = nil
		case "report":
			if s.profile == nil {
				return fmt.Errorf("profile: not enabled (use profile on)")
			}
			if s.prog == nil {
				return fmt.Errorf("profile: no program loaded")
			}
			top := 10
			if len(args) == 2 {
				v, err := strconv.Atoi(args[1])
				if err != nil {
					return fmt.Errorf("bad count %q", args[1])
				}
				top = v
			}
			return s.profile.Report(s.Out, s.Sim.d, s.prog, top)
		default:
			return fmt.Errorf("usage: profile on|off|report [top]")
		}
	case "reset":
		s.Sim.Reset()
		if s.prog != nil {
			return s.Sim.Load(s.prog)
		}
	case "symbols":
		if s.prog == nil {
			return fmt.Errorf("no program loaded")
		}
		names := s.prog.SymbolsSorted()
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(s.Out, "%-16s %04x\n", n, s.prog.Symbols[n])
		}
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return nil
}

// runWithAttached runs the simulator, executing attached commands and
// resuming when it stops at an address that has them.
func (s *Session) runWithAttached(limit int64) error {
	for {
		err := s.Sim.Run(limit)
		if err == ErrBreakpoint {
			pc := int(s.Sim.State().PC().Uint64())
			cmds, ok := s.attached[pc]
			if ok {
				for _, c := range cmds {
					if err := s.Execute(c); err != nil {
						return err
					}
				}
				// Step over the attachment point and resume.
				if err := s.Sim.Step(); err != nil {
					return err
				}
				continue
			}
			fmt.Fprintf(s.Out, "breakpoint at %04x\n", pc)
			return nil
		}
		if err != nil {
			fmt.Fprintf(s.Out, "stopped: %v\n", err)
			return nil
		}
		s.reportStop()
		return nil
	}
}

func (s *Session) reportStop() {
	if s.Sim.Halted() {
		fmt.Fprintf(s.Out, "halted at cycle %d (%d instructions)\n", s.Sim.Cycle(), s.Sim.Stats().Instructions)
	}
}

func (s *Session) examine(args []string) error {
	if len(args) < 1 || len(args) > 3 {
		return fmt.Errorf("usage: x <storage> [index [count]]")
	}
	st, ok := s.Sim.d.StorageByName[args[0]]
	if !ok {
		return fmt.Errorf("unknown storage %s", args[0])
	}
	idx, count := 0, 1
	if len(args) >= 2 {
		v, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad index %q", args[1])
		}
		idx = v
	}
	if len(args) == 3 {
		v, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad count %q", args[2])
		}
		count = v
	}
	for i := 0; i < count; i++ {
		v := s.Sim.State().Get(st.Name, idx+i)
		if st.Kind.Addressed() {
			fmt.Fprintf(s.Out, "%s[%d] = %s (%d)\n", st.Name, idx+i, v, v.Uint64())
		} else {
			fmt.Fprintf(s.Out, "%s = %s (%d)\n", st.Name, v, v.Uint64())
		}
	}
	return nil
}

const helpText = `commands:
  load <file.xbin>          load a program image
  source <script>           run a batch command file
  run [n] | step [n]        execute (n instructions)
  break/unbreak <addr|sym>  manage breakpoints; breaks lists them
  attach <addr> <command>   run a command whenever addr is reached
  watch <storage> [idx]     print state changes; unwatch <id>
  x <storage> [idx [n]]     examine state
  set <storage> <idx> <v>   modify state
  pc | setpc <addr|sym>     program counter
  disasm [addr [n]]         disassemble
  trace <file|off>          execution address trace
  profile on|off|report     in-process execution profiling
  perf                      simulator performance counters (MIPS, caches)
  stats | symbols | reset | echo | quit
`
