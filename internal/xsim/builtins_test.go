package xsim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// opsSource defines one operation per RTL operator and builtin so both
// processing cores (compiled closures and the AST interpreter) can be
// checked operator-by-operator against Go arithmetic.
const opsSource = `
Machine opsbox;
Format 32;

Section Global_Definitions

Token GPR "R" [0..7];
Token OPC imm unsigned 5;
Token IMM8 imm signed 8;

Section Storage

InstructionMemory IMEM width 32 depth 64;
RegFile RF width 16 depth 8;
Register ACC width 24;
ControlRegister HLT width 1;
ProgramCounter PC width 6;
Alias AMID = ACC[19:4];

Section Instruction_Set

Field EX:
  op ldi (d: GPR) "," (i: IMM8)
    Encode { I[31:27] = 0b00000; I[26:24] = d; I[7:0] = i; }
    Action { RF[d] <- sext(i, 16); }
  op alu (k: OPC) "," (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b00001; I[26:24] = d; I[23:21] = a; I[20:18] = b; I[12:8] = k; }
    Action {
      if (k == 0) { RF[d] <- RF[a] + RF[b]; }
      if (k == 1) { RF[d] <- RF[a] - RF[b]; }
      if (k == 2) { RF[d] <- RF[a] * RF[b]; }
      if (k == 3) { RF[d] <- RF[a] / RF[b]; }
      if (k == 4) { RF[d] <- RF[a] % RF[b]; }
      if (k == 5) { RF[d] <- RF[a] & RF[b]; }
      if (k == 6) { RF[d] <- RF[a] | RF[b]; }
      if (k == 7) { RF[d] <- RF[a] ^ RF[b]; }
      if (k == 8) { RF[d] <- RF[a] << (RF[b] & 15); }
      if (k == 9) { RF[d] <- RF[a] >> (RF[b] & 15); }
      if (k == 10) { RF[d] <- asr(RF[a], RF[b] & 15); }
      if (k == 11) { RF[d] <- zext(RF[a] == RF[b], 16); }
      if (k == 12) { RF[d] <- zext(RF[a] != RF[b], 16); }
      if (k == 13) { RF[d] <- zext(RF[a] < RF[b], 16); }
      if (k == 14) { RF[d] <- zext(RF[a] <= RF[b], 16); }
      if (k == 15) { RF[d] <- zext(RF[a] > RF[b], 16); }
      if (k == 16) { RF[d] <- zext(RF[a] >= RF[b], 16); }
      if (k == 17) { RF[d] <- zext(slt(RF[a], RF[b]), 16); }
      if (k == 18) { RF[d] <- zext(sle(RF[a], RF[b]), 16); }
      if (k == 19) { RF[d] <- zext(sgt(RF[a], RF[b]), 16); }
      if (k == 20) { RF[d] <- zext(sge(RF[a], RF[b]), 16); }
      if (k == 21) { RF[d] <- zext(carry(RF[a], RF[b]), 16); }
      if (k == 22) { RF[d] <- zext(borrow(RF[a], RF[b]), 16); }
      if (k == 23) { RF[d] <- zext(addov(RF[a], RF[b]), 16); }
      if (k == 24) { RF[d] <- zext(subov(RF[a], RF[b]), 16); }
      if (k == 25) { RF[d] <- -RF[a]; }
      if (k == 26) { RF[d] <- ~RF[a]; }
      if (k == 27) { RF[d] <- zext(!RF[a], 16); }
      if (k == 28) { RF[d] <- zext(RF[a] && RF[b], 16); }
      if (k == 29) { RF[d] <- zext(RF[a] || RF[b], 16); }
      if (k == 30) { RF[d] <- concat(trunc(RF[a], 8), trunc(RF[b], 8)); }
      if (k == 31) { RF[d] <- trunc(asr(sext(RF[a], 24), 4), 16); }
    }
  op sta (a: GPR)
    Encode { I[31:27] = 0b00010; I[23:21] = a; }
    Action { AMID <- RF[a]; }
  op lda (d: GPR)
    Encode { I[31:27] = 0b00011; I[26:24] = d; }
    Action { RF[d] <- AMID; }
  op halt
    Encode { I[31:27] = 0b11110; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[31:27] = 0b11111; }
`

// goRef computes the expected 16-bit result of alu opcode k on a, b.
func goRef(k int, a, b uint16) uint16 {
	sa, sb := int16(a), int16(b)
	bl := func(c bool) uint16 {
		if c {
			return 1
		}
		return 0
	}
	switch k {
	case 0:
		return a + b
	case 1:
		return a - b
	case 2:
		return a * b
	case 3:
		if b == 0 {
			return 0xffff
		}
		return a / b
	case 4:
		if b == 0 {
			return a
		}
		return a % b
	case 5:
		return a & b
	case 6:
		return a | b
	case 7:
		return a ^ b
	case 8:
		return a << (b & 15)
	case 9:
		return a >> (b & 15)
	case 10:
		return uint16(sa >> (b & 15))
	case 11:
		return bl(a == b)
	case 12:
		return bl(a != b)
	case 13:
		return bl(a < b)
	case 14:
		return bl(a <= b)
	case 15:
		return bl(a > b)
	case 16:
		return bl(a >= b)
	case 17:
		return bl(sa < sb)
	case 18:
		return bl(sa <= sb)
	case 19:
		return bl(sa > sb)
	case 20:
		return bl(sa >= sb)
	case 21:
		return bl(uint32(a)+uint32(b) > 0xffff)
	case 22:
		return bl(a < b)
	case 23:
		s := a + b
		return bl((a>>15) == (b>>15) && (s>>15) != (a>>15))
	case 24:
		d := a - b
		return bl((a>>15) != (b>>15) && (d>>15) != (a>>15))
	case 25:
		return -a
	case 26:
		return ^a
	case 27:
		return bl(a == 0)
	case 28:
		return bl(a != 0 && b != 0)
	case 29:
		return bl(a != 0 || b != 0)
	case 30:
		return a<<8 | b&0xff
	case 31:
		return uint16(int32(sa) << 8 >> 8 >> 4) // sext to 24, asr 4, trunc
	}
	panic("bad opcode")
}

// TestOperatorMatrix runs every ALU opcode over random operands on both
// simulator cores and checks each result against Go arithmetic.
func TestOperatorMatrix(t *testing.T) {
	d, err := isdl.Parse(opsSource)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(5))
	type tc struct {
		k    int
		a, b uint16
	}
	var cases []tc
	for k := 0; k <= 31; k++ {
		for n := 0; n < 6; n++ {
			a := uint16(rnd.Intn(1 << 16))
			b := uint16(rnd.Intn(1 << 16))
			switch n {
			case 0:
				b = 0 // zero operand edge (division, logical ops)
			case 1:
				a, b = 0x8000, 0x8000 // sign-boundary edge
			case 2:
				a, b = 0xffff, 1 // wraparound edge
			}
			cases = append(cases, tc{k, a, b})
		}
	}

	for _, compiled := range []bool{true, false} {
		// Batch the cases into programs of 8 (register pressure: R1=a,
		// R2=b via two ldi each since IMM8 is 8-bit: build with shifts...
		// simpler: one case per program).
		for _, c := range cases {
			// Operands are built with the concat opcode (30):
			// R = (hi & 0xff) << 8 | (lo & 0xff).
			src := fmt.Sprintf(`
    ldi R1, %d
    ldi R4, %d
    alu 30, R1, R1, R4
    ldi R2, %d
    ldi R4, %d
    alu 30, R2, R2, R4
    alu %d, R5, R1, R2
    halt
`,
				int8(c.a>>8), int8(c.a&0xff),
				int8(c.b>>8), int8(c.b&0xff),
				c.k)
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatal(err)
			}
			sim := xsim.New(d)
			sim.CompiledCore = compiled
			if err := sim.Load(p); err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(0); err != nil {
				t.Fatal(err)
			}
			// Verify operand construction first.
			if got := uint16(sim.State().Get("RF", 1).Uint64()); got != c.a {
				t.Fatalf("operand a = %#x, want %#x", got, c.a)
			}
			if got := uint16(sim.State().Get("RF", 2).Uint64()); got != c.b {
				t.Fatalf("operand b = %#x, want %#x", got, c.b)
			}
			want := goRef(c.k, c.a, c.b)
			got := uint16(sim.State().Get("RF", 5).Uint64())
			if got != want {
				t.Fatalf("core(compiled=%v) opcode %d on %#x,%#x = %#x, want %#x",
					compiled, c.k, c.a, c.b, got, want)
			}
		}
	}
}

// TestAliasMidSlice reads and writes an alias covering a middle bit range of
// a wider register, on both cores.
func TestAliasMidSlice(t *testing.T) {
	d, err := isdl.Parse(opsSource)
	if err != nil {
		t.Fatal(err)
	}
	for _, compiled := range []bool{true, false} {
		p, err := asm.Assemble(d, `
    ldi R1, -1
    sta R1          ; ACC[19:4] <- 0xffff
    lda R2          ; R2 <- ACC[19:4]
    halt
`)
		if err != nil {
			t.Fatal(err)
		}
		sim := xsim.New(d)
		sim.CompiledCore = compiled
		if err := sim.Load(p); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		if got := sim.State().Get("ACC", 0).Uint64(); got != 0xffff0 {
			t.Fatalf("compiled=%v: ACC = %#x, want 0xffff0", compiled, got)
		}
		if got := sim.State().Get("RF", 2).Uint64(); got != 0xffff {
			t.Fatalf("compiled=%v: R2 = %#x", compiled, got)
		}
	}
}

// TestSetHaltStorageAndErr covers the remaining simulator control surface.
func TestSetHaltStorageAndErr(t *testing.T) {
	d := machines.Toy()
	sim := xsim.New(d)
	if err := sim.SetHaltStorage("ACC"); err != nil {
		t.Fatal(err)
	}
	if err := sim.SetHaltStorage("NOPE"); err == nil {
		t.Fatal("unknown storage should fail")
	}
	p, err := asm.Assemble(d, "mv R1, #1\nst @R2, R1\njmp 0") // never halts by HLT
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	// ACC is never written, so the program runs to the limit.
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if sim.Err() != nil {
		t.Fatalf("unexpected error: %v", sim.Err())
	}
}
