package xsim

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/decode"
	"repro/internal/isdl"
)

// OpCache memoizes compiled operation closures across simulator instances
// (the ROADMAP's compiled-core codegen cache). The exploration loop builds
// a fresh simulator per candidate, but neighbouring candidates share
// almost every operation definition; keying each compiled instance by
// content — the operation's fingerprint, the state-layout fingerprint of
// its description, and the decoded argument values — lets a new candidate
// reuse ~all compiled ops instead of re-running compileOp per decoded
// operation. Compiled closures address state only through the per-
// simulator execCtx, which is what makes sharing them sound (see
// compile.go).
//
// The cache is safe for concurrent use. Concurrent compilations of the
// same key are benign: compilation is a pure function of the key, so
// every writer stores an equivalent program.
type OpCache struct {
	mu      sync.Mutex
	entries map[opKey]opProgram
	hits    uint64
	misses  uint64
	// max bounds the entry count; on overflow the table is dropped
	// wholesale (content keys repopulate it deterministically).
	max int
}

// opKey identifies one compiled operation instance by content.
type opKey struct {
	layout isdl.Fingerprint
	op     isdl.Fingerprint
	args   string
}

// opProgram is one compiled operation instance: both phase closures.
type opProgram struct {
	action, side stmtFn
}

// defaultOpCacheMax bounds the shared cache; a SPAM-sized exploration
// decodes a few hundred distinct operation instances, so this is plenty.
const defaultOpCacheMax = 1 << 16

// sharedOpCache is the process-wide cache every simulator uses unless
// SetOpCache overrides it.
var sharedOpCache = NewOpCache()

// SharedOpCache returns the process-wide compiled-op cache (for metrics
// reporting; exploration logs read its counters).
func SharedOpCache() *OpCache { return sharedOpCache }

// NewOpCache returns an empty compiled-op cache.
func NewOpCache() *OpCache {
	return &OpCache{entries: map[opKey]opProgram{}, max: defaultOpCacheMax}
}

// Stats returns the hit and miss counts so far.
func (c *OpCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached compiled operations.
func (c *OpCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry (counters are kept).
func (c *OpCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[opKey]opProgram{}
}

func (c *OpCache) get(k opKey) (opProgram, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return p, ok
}

func (c *OpCache) put(k opKey, p opProgram) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.max {
		c.entries = map[opKey]opProgram{}
	}
	c.entries[k] = p
}

// SetOpCache selects the compiled-op cache this simulator uses; nil
// disables sharing (every decode compiles fresh). Call it before the
// first instruction is decoded.
func (sim *Simulator) SetOpCache(c *OpCache) { sim.opc = c }

// compiledFor returns the compiled phases for a decoded operation
// instance, consulting the op cache when one is configured.
func (sim *Simulator) compiledFor(dop *decode.Op, opEnv *env) (action, side stmtFn) {
	if sim.opc == nil {
		sim.perf.opCompiled++
		return compileOp(sim.cc, opEnv)
	}
	key := opKey{layout: sim.layoutFP, op: sim.opFP(dop.Op), args: argKeyString(dop.Args)}
	if p, ok := sim.opc.get(key); ok {
		sim.perf.opReused++
		return p.action, p.side
	}
	sim.perf.opCompiled++
	action, side = compileOp(sim.cc, opEnv)
	sim.opc.put(key, opProgram{action: action, side: side})
	return action, side
}

// opFP memoizes per-operation content fingerprints for this simulator's
// description (fingerprinting walks the canonical text; the ops are fixed
// for a description, so compute each once).
func (sim *Simulator) opFP(op *isdl.Operation) isdl.Fingerprint {
	if fp, ok := sim.opFPs[op]; ok {
		return fp
	}
	fp := isdl.OpFingerprint(op)
	sim.opFPs[op] = fp
	return fp
}

// argKeyString encodes a decoded argument tree: token values verbatim,
// non-terminal choices as the option index plus the option's own
// arguments. Together with the op fingerprint (which covers reachable
// non-terminal definitions) this pins down everything a compiled instance
// captured.
func argKeyString(args []decode.Arg) string {
	var sb strings.Builder
	writeArgKey(&sb, args)
	return sb.String()
}

func writeArgKey(sb *strings.Builder, args []decode.Arg) {
	for i := range args {
		a := &args[i]
		if a.Option != nil {
			fmt.Fprintf(sb, "o%d(", a.Option.Index)
			writeArgKey(sb, a.Sub)
			sb.WriteByte(')')
			continue
		}
		fmt.Fprintf(sb, "t%d:%s;", a.Value.Width(), a.Value.BitString())
	}
}
