package xsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

func sprintf(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// The compiled processing core. The paper's GENSIM emits architecture-
// specific C that is natively compiled and linked with a common library
// (§3.3); the closest Go analogue is compiling every decoded operation
// instance into a tree of closures at load time, with parameter values,
// storage handles and operator selection all resolved once. This is the
// default core; the AST interpreter in eval.go remains as the reference
// implementation (the two are cross-checked by tests), and §6.2's
// "compiled-code simulator" speedup is measurable by flipping
// Simulator.CompiledCore (part of the Table 1 benchmark).
//
// Runtime faults (stack overflow/underflow) are rare, so compiled code
// reports them by panicking with *RuntimeError; Step recovers.

// valFn computes one RTL expression value.
type valFn func() bitvec.Value

// locFn resolves one write destination.
type locFn func() loc

// stmtFn evaluates statements of one phase into ph.
type stmtFn func(ph *phase)

// compileOp compiles both phases of a decoded operation instance.
func compileOp(opEnv *env) (action, side stmtFn) {
	c := &compiler{env: opEnv}
	op := envOp(opEnv)
	action = c.stmts(op.Action)
	side = c.stmts(op.SideEffect)
	// Non-terminal option side effects run after the operation's own.
	var optFns []stmtFn
	var collect func(e *env)
	collect = func(e *env) {
		for _, sub := range e.ordered {
			sc := &compiler{env: sub}
			optFns = append(optFns, sc.stmts(sub.option.SideEffect))
			collect(sub)
		}
	}
	collect(opEnv)
	if len(optFns) > 0 {
		base := side
		side = func(ph *phase) {
			base(ph)
			for _, f := range optFns {
				f(ph)
			}
		}
	}
	return action, side
}

// envOp retrieves the operation this environment was built for; set by
// fetch (compileOp is only called on op-level environments).
func envOp(e *env) *isdl.Operation { return e.op }

type compiler struct {
	env *env
}

func (c *compiler) fault(format string, args ...interface{}) {
	panicRuntime(c.env.sim, format, args...)
}

func panicRuntime(sim *Simulator, format string, args ...interface{}) {
	panic(&RuntimeError{PC: sim.currentPC, Msg: sprintf(format, args...)})
}

func (c *compiler) stmts(stmts []isdl.Stmt) stmtFn {
	fns := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		fns = append(fns, c.stmt(s))
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(ph *phase) {
		for _, f := range fns {
			f(ph)
		}
	}
}

func (c *compiler) stmt(s isdl.Stmt) stmtFn {
	switch s := s.(type) {
	case *isdl.Assign:
		rhs := c.expr(s.RHS)
		dst := c.loc(s.LHS)
		return func(ph *phase) {
			v := rhs()
			l := dst()
			ph.writes = append(ph.writes, write{loc: l, val: v})
		}
	case *isdl.If:
		cond := c.expr(s.Cond)
		then := c.stmts(s.Then)
		var els stmtFn
		if len(s.Else) > 0 {
			els = c.stmts(s.Else)
		}
		return func(ph *phase) {
			if !cond().IsZero() {
				then(ph)
			} else if els != nil {
				els(ph)
			}
		}
	case *isdl.ExprStmt:
		call := s.X.(*isdl.Call)
		switch call.Fn {
		case "push":
			stack := call.Args[0].(*isdl.Ref).Name
			val := c.expr(call.Args[1])
			return func(ph *phase) {
				ph.pushes = append(ph.pushes, pushOp{stack: stack, val: val()})
			}
		case "pop":
			f := c.expr(call)
			return func(ph *phase) { f() }
		}
	}
	sim := c.env.sim
	return func(*phase) { panicRuntime(sim, "unknown statement") }
}

func (c *compiler) loc(e isdl.Expr) locFn {
	sim := c.env.sim
	switch e := e.(type) {
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			l := loc{storage: e.Storage.Name, index: 0, hi: -1, lo: -1, h: sim.handles[e.Storage]}
			return func() loc { return l }
		case e.AliasTo != nil:
			a := e.AliasTo
			l := loc{storage: a.Target, index: int(a.Index), hi: -1, lo: -1, h: sim.aliasH[a]}
			if a.Sliced {
				l.hi, l.lo = a.Hi, a.Lo
			}
			return func() loc { return l }
		case e.Param != nil && e.Param.NT != nil:
			sub := c.env.subEnv(e.Param.Name)
			sc := &compiler{env: sub}
			return sc.loc(sub.option.Value)
		}
	case *isdl.Index:
		idx := c.expr(e.Idx)
		name := e.Storage.Name
		h := sim.handles[e.Storage]
		return func() loc {
			return loc{storage: name, index: int(idx().Uint64()), hi: -1, lo: -1, h: h}
		}
	case *isdl.SliceE:
		base := c.loc(e.X)
		hi, lo := e.Hi, e.Lo
		return func() loc {
			l := base()
			if l.hi >= 0 {
				return loc{storage: l.storage, index: l.index, hi: l.lo + hi, lo: l.lo + lo, h: l.h}
			}
			l.hi, l.lo = hi, lo
			return l
		}
	}
	return func() loc { panicRuntime(sim, "%s is not assignable", e); return loc{} }
}

func (c *compiler) expr(e isdl.Expr) valFn {
	sim := c.env.sim
	switch e := e.(type) {
	case *isdl.Lit:
		v := e.Val
		return func() bitvec.Value { return v }

	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			h := sim.handles[e.Storage]
			return func() bitvec.Value { sim.stats.Reads++; return h.Get(0) }
		case e.AliasTo != nil:
			a := e.AliasTo
			h := sim.aliasH[a]
			idx := int(a.Index)
			if a.Sliced {
				hi, lo := a.Hi, a.Lo
				return func() bitvec.Value { sim.stats.Reads++; return h.Get(idx).Slice(hi, lo) }
			}
			return func() bitvec.Value { sim.stats.Reads++; return h.Get(idx) }
		case e.Param != nil:
			arg := c.env.args[e.Param.Name]
			if e.Param.Token != nil {
				v := arg.Value
				return func() bitvec.Value { return v }
			}
			sub := c.env.subEnv(e.Param.Name)
			sc := &compiler{env: sub}
			return sc.expr(sub.option.Value)
		}

	case *isdl.Index:
		idx := c.expr(e.Idx)
		h := sim.handles[e.Storage]
		return func() bitvec.Value { sim.stats.Reads++; return h.Get(int(idx().Uint64())) }

	case *isdl.SliceE:
		x := c.expr(e.X)
		hi, lo := e.Hi, e.Lo
		return func() bitvec.Value { return x().Slice(hi, lo) }

	case *isdl.Unary:
		x := c.expr(e.X)
		switch e.Op {
		case "-":
			return func() bitvec.Value { return x().Neg() }
		case "~":
			return func() bitvec.Value { return x().Not() }
		case "!":
			return func() bitvec.Value { return boolVal(x().IsZero()) }
		}

	case *isdl.Binary:
		x := c.expr(e.X)
		// Short-circuit logical operators.
		switch e.Op {
		case "&&":
			y := c.expr(e.Y)
			return func() bitvec.Value { return boolVal(!x().IsZero() && !y().IsZero()) }
		case "||":
			y := c.expr(e.Y)
			return func() bitvec.Value { return boolVal(!x().IsZero() || !y().IsZero()) }
		}
		y := c.expr(e.Y)
		switch e.Op {
		case "+":
			return func() bitvec.Value { return x().Add(y()) }
		case "-":
			return func() bitvec.Value { return x().Sub(y()) }
		case "*":
			return func() bitvec.Value { return x().Mul(y()) }
		case "/":
			return func() bitvec.Value { return x().DivU(y()) }
		case "%":
			return func() bitvec.Value { return x().ModU(y()) }
		case "&":
			return func() bitvec.Value { return x().And(y()) }
		case "|":
			return func() bitvec.Value { return x().Or(y()) }
		case "^":
			return func() bitvec.Value { return x().Xor(y()) }
		case "<<":
			return func() bitvec.Value { return x().Shl(int(y().Uint64())) }
		case ">>":
			return func() bitvec.Value { return x().ShrL(int(y().Uint64())) }
		case "==":
			return func() bitvec.Value { return boolVal(x().Eq(y())) }
		case "!=":
			return func() bitvec.Value { return boolVal(!x().Eq(y())) }
		case "<":
			return func() bitvec.Value { return boolVal(x().CmpU(y()) < 0) }
		case "<=":
			return func() bitvec.Value { return boolVal(x().CmpU(y()) <= 0) }
		case ">":
			return func() bitvec.Value { return boolVal(x().CmpU(y()) > 0) }
		case ">=":
			return func() bitvec.Value { return boolVal(x().CmpU(y()) >= 0) }
		}

	case *isdl.Call:
		return c.call(e)
	}
	return func() bitvec.Value { panicRuntime(sim, "cannot compile expression"); return bitvec.Value{} }
}

func (c *compiler) call(e *isdl.Call) valFn {
	sim := c.env.sim
	switch e.Fn {
	case "pop":
		name := e.Args[0].(*isdl.Ref).Name
		return func() bitvec.Value {
			v, err := sim.st.Pop(name)
			if err != nil {
				panicRuntime(sim, "%s", err.Error())
			}
			return v
		}
	case "sext":
		x := c.expr(e.Args[0])
		w := e.W
		return func() bitvec.Value { return x().SignExt(w) }
	case "zext":
		x := c.expr(e.Args[0])
		w := e.W
		return func() bitvec.Value { return x().ZeroExt(w) }
	case "trunc":
		x := c.expr(e.Args[0])
		w := e.W
		return func() bitvec.Value { return x().Trunc(w) }
	case "carry":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { _, cy := x().AddCarry(y()); return boolVal(cy) }
	case "borrow":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { _, b := x().SubBorrow(y()); return boolVal(b) }
	case "addov":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value {
			a, b := x(), y()
			s := a.Add(b)
			return boolVal(a.Sign() == b.Sign() && s.Sign() != a.Sign())
		}
	case "subov":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value {
			a, b := x(), y()
			s := a.Sub(b)
			return boolVal(a.Sign() != b.Sign() && s.Sign() != a.Sign())
		}
	case "slt":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { return boolVal(x().CmpS(y()) < 0) }
	case "sle":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { return boolVal(x().CmpS(y()) <= 0) }
	case "sgt":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { return boolVal(x().CmpS(y()) > 0) }
	case "sge":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { return boolVal(x().CmpS(y()) >= 0) }
	case "asr":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func() bitvec.Value { return x().ShrA(int(y().Uint64())) }
	case "concat":
		fns := make([]valFn, len(e.Args))
		for i := range e.Args {
			fns[i] = c.expr(e.Args[i])
		}
		return func() bitvec.Value {
			v := fns[0]()
			for _, f := range fns[1:] {
				v = v.Concat(f())
			}
			return v
		}
	}
	return func() bitvec.Value { panicRuntime(sim, "unknown builtin %s", e.Fn); return bitvec.Value{} }
}
