package xsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
	"repro/internal/state"
)

func sprintf(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }

// The compiled processing core. The paper's GENSIM emits architecture-
// specific C that is natively compiled and linked with a common library
// (§3.3); the closest Go analogue is compiling every decoded operation
// instance into a tree of closures at load time, with parameter values,
// storage indices and operator selection all resolved once. This is the
// default core; the AST interpreter in eval.go remains as the reference
// implementation (the two are cross-checked by tests), and §6.2's
// "compiled-code simulator" speedup is measurable by flipping
// Simulator.CompiledCore (part of the Table 1 benchmark).
//
// Compiled closures are deliberately simulator-independent: they address
// processor state positionally through the per-simulator execCtx instead
// of capturing state handles, and reach the simulator (statistics, stacks,
// fault PC) through the same context. A closure therefore runs correctly
// on any simulator whose description has the same state layout, which is
// what lets the OpCache share compiled operations across the neighbour
// candidates of an exploration run (see opcache.go).
//
// Runtime faults (stack overflow/underflow) are rare, so compiled code
// reports them by panicking with *RuntimeError; Step recovers.

// execCtx is the per-simulator execution context compiled closures run
// against: storage and alias handles in description declaration order.
type execCtx struct {
	sim    *Simulator
	stH    []state.Handle
	aliasH []state.Handle
}

// valFn computes one RTL expression value.
type valFn func(ctx *execCtx) bitvec.Value

// locFn resolves one write destination.
type locFn func(ctx *execCtx) loc

// stmtFn evaluates statements of one phase into ph.
type stmtFn func(ctx *execCtx, ph *phase)

// compileCtx resolves AST references to layout positions at compile time.
type compileCtx struct {
	stIdx map[*isdl.Storage]int
	alIdx map[*isdl.Alias]int
}

func newCompileCtx(d *isdl.Description) *compileCtx {
	cc := &compileCtx{
		stIdx: make(map[*isdl.Storage]int, len(d.Storage)),
		alIdx: make(map[*isdl.Alias]int, len(d.Aliases)),
	}
	for i, st := range d.Storage {
		cc.stIdx[st] = i
	}
	for i, a := range d.Aliases {
		cc.alIdx[a] = i
	}
	return cc
}

// compileOp compiles both phases of a decoded operation instance. The env
// supplies parameter bindings only; compiled closures never capture it (or
// any simulator state), so the result is reusable across simulators with
// the same state layout.
func compileOp(cc *compileCtx, opEnv *env) (action, side stmtFn) {
	c := &compiler{env: opEnv, cc: cc}
	op := envOp(opEnv)
	action = c.stmts(op.Action)
	side = c.stmts(op.SideEffect)
	// Non-terminal option side effects run after the operation's own.
	var optFns []stmtFn
	var collect func(e *env)
	collect = func(e *env) {
		for _, sub := range e.ordered {
			sc := &compiler{env: sub, cc: cc}
			optFns = append(optFns, sc.stmts(sub.option.SideEffect))
			collect(sub)
		}
	}
	collect(opEnv)
	if len(optFns) > 0 {
		base := side
		side = func(ctx *execCtx, ph *phase) {
			base(ctx, ph)
			for _, f := range optFns {
				f(ctx, ph)
			}
		}
	}
	return action, side
}

// envOp retrieves the operation this environment was built for; set by
// fetch (compileOp is only called on op-level environments).
func envOp(e *env) *isdl.Operation { return e.op }

type compiler struct {
	env *env
	cc  *compileCtx
}

func panicRuntime(sim *Simulator, format string, args ...interface{}) {
	panic(&RuntimeError{PC: sim.currentPC, Msg: sprintf(format, args...)})
}

func (c *compiler) stmts(stmts []isdl.Stmt) stmtFn {
	fns := make([]stmtFn, 0, len(stmts))
	for _, s := range stmts {
		fns = append(fns, c.stmt(s))
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(ctx *execCtx, ph *phase) {
		for _, f := range fns {
			f(ctx, ph)
		}
	}
}

func (c *compiler) stmt(s isdl.Stmt) stmtFn {
	switch s := s.(type) {
	case *isdl.Assign:
		rhs := c.expr(s.RHS)
		dst := c.loc(s.LHS)
		return func(ctx *execCtx, ph *phase) {
			v := rhs(ctx)
			l := dst(ctx)
			ph.writes = append(ph.writes, write{loc: l, val: v})
		}
	case *isdl.If:
		cond := c.expr(s.Cond)
		then := c.stmts(s.Then)
		var els stmtFn
		if len(s.Else) > 0 {
			els = c.stmts(s.Else)
		}
		return func(ctx *execCtx, ph *phase) {
			if !cond(ctx).IsZero() {
				then(ctx, ph)
			} else if els != nil {
				els(ctx, ph)
			}
		}
	case *isdl.ExprStmt:
		call := s.X.(*isdl.Call)
		switch call.Fn {
		case "push":
			stack := call.Args[0].(*isdl.Ref).Name
			val := c.expr(call.Args[1])
			return func(ctx *execCtx, ph *phase) {
				ph.pushes = append(ph.pushes, pushOp{stack: stack, val: val(ctx)})
			}
		case "pop":
			f := c.expr(call)
			return func(ctx *execCtx, ph *phase) { f(ctx) }
		}
	}
	return func(ctx *execCtx, ph *phase) { panicRuntime(ctx.sim, "unknown statement") }
}

func (c *compiler) loc(e isdl.Expr) locFn {
	switch e := e.(type) {
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			name := e.Storage.Name
			idx := c.cc.stIdx[e.Storage]
			return func(ctx *execCtx) loc {
				return loc{storage: name, index: 0, hi: -1, lo: -1, h: ctx.stH[idx]}
			}
		case e.AliasTo != nil:
			a := e.AliasTo
			idx := c.cc.alIdx[a]
			l := loc{storage: a.Target, index: int(a.Index), hi: -1, lo: -1}
			if a.Sliced {
				l.hi, l.lo = a.Hi, a.Lo
			}
			return func(ctx *execCtx) loc {
				l := l
				l.h = ctx.aliasH[idx]
				return l
			}
		case e.Param != nil && e.Param.NT != nil:
			sub := c.env.subEnv(e.Param.Name)
			sc := &compiler{env: sub, cc: c.cc}
			return sc.loc(sub.option.Value)
		}
	case *isdl.Index:
		idx := c.expr(e.Idx)
		name := e.Storage.Name
		si := c.cc.stIdx[e.Storage]
		return func(ctx *execCtx) loc {
			return loc{storage: name, index: int(idx(ctx).Uint64()), hi: -1, lo: -1, h: ctx.stH[si]}
		}
	case *isdl.SliceE:
		base := c.loc(e.X)
		hi, lo := e.Hi, e.Lo
		return func(ctx *execCtx) loc {
			l := base(ctx)
			if l.hi >= 0 {
				return loc{storage: l.storage, index: l.index, hi: l.lo + hi, lo: l.lo + lo, h: l.h}
			}
			l.hi, l.lo = hi, lo
			return l
		}
	}
	return func(ctx *execCtx) loc { panicRuntime(ctx.sim, "%s is not assignable", e); return loc{} }
}

func (c *compiler) expr(e isdl.Expr) valFn {
	switch e := e.(type) {
	case *isdl.Lit:
		v := e.Val
		return func(*execCtx) bitvec.Value { return v }

	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			idx := c.cc.stIdx[e.Storage]
			return func(ctx *execCtx) bitvec.Value { ctx.sim.stats.Reads++; return ctx.stH[idx].Get(0) }
		case e.AliasTo != nil:
			a := e.AliasTo
			ai := c.cc.alIdx[a]
			idx := int(a.Index)
			if a.Sliced {
				hi, lo := a.Hi, a.Lo
				return func(ctx *execCtx) bitvec.Value {
					ctx.sim.stats.Reads++
					return ctx.aliasH[ai].Get(idx).Slice(hi, lo)
				}
			}
			return func(ctx *execCtx) bitvec.Value { ctx.sim.stats.Reads++; return ctx.aliasH[ai].Get(idx) }
		case e.Param != nil:
			arg := c.env.args[e.Param.Name]
			if e.Param.Token != nil {
				v := arg.Value
				return func(*execCtx) bitvec.Value { return v }
			}
			sub := c.env.subEnv(e.Param.Name)
			sc := &compiler{env: sub, cc: c.cc}
			return sc.expr(sub.option.Value)
		}

	case *isdl.Index:
		idx := c.expr(e.Idx)
		si := c.cc.stIdx[e.Storage]
		return func(ctx *execCtx) bitvec.Value {
			ctx.sim.stats.Reads++
			return ctx.stH[si].Get(int(idx(ctx).Uint64()))
		}

	case *isdl.SliceE:
		x := c.expr(e.X)
		hi, lo := e.Hi, e.Lo
		return func(ctx *execCtx) bitvec.Value { return x(ctx).Slice(hi, lo) }

	case *isdl.Unary:
		x := c.expr(e.X)
		switch e.Op {
		case "-":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Neg() }
		case "~":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Not() }
		case "!":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).IsZero()) }
		}

	case *isdl.Binary:
		x := c.expr(e.X)
		// Short-circuit logical operators.
		switch e.Op {
		case "&&":
			y := c.expr(e.Y)
			return func(ctx *execCtx) bitvec.Value {
				return boolVal(!x(ctx).IsZero() && !y(ctx).IsZero())
			}
		case "||":
			y := c.expr(e.Y)
			return func(ctx *execCtx) bitvec.Value {
				return boolVal(!x(ctx).IsZero() || !y(ctx).IsZero())
			}
		}
		y := c.expr(e.Y)
		switch e.Op {
		case "+":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Add(y(ctx)) }
		case "-":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Sub(y(ctx)) }
		case "*":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Mul(y(ctx)) }
		case "/":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).DivU(y(ctx)) }
		case "%":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).ModU(y(ctx)) }
		case "&":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).And(y(ctx)) }
		case "|":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Or(y(ctx)) }
		case "^":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Xor(y(ctx)) }
		case "<<":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).Shl(int(y(ctx).Uint64())) }
		case ">>":
			return func(ctx *execCtx) bitvec.Value { return x(ctx).ShrL(int(y(ctx).Uint64())) }
		case "==":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).Eq(y(ctx))) }
		case "!=":
			return func(ctx *execCtx) bitvec.Value { return boolVal(!x(ctx).Eq(y(ctx))) }
		case "<":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpU(y(ctx)) < 0) }
		case "<=":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpU(y(ctx)) <= 0) }
		case ">":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpU(y(ctx)) > 0) }
		case ">=":
			return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpU(y(ctx)) >= 0) }
		}

	case *isdl.Call:
		return c.call(e)
	}
	return func(ctx *execCtx) bitvec.Value {
		panicRuntime(ctx.sim, "cannot compile expression")
		return bitvec.Value{}
	}
}

func (c *compiler) call(e *isdl.Call) valFn {
	switch e.Fn {
	case "pop":
		name := e.Args[0].(*isdl.Ref).Name
		return func(ctx *execCtx) bitvec.Value {
			v, err := ctx.sim.st.Pop(name)
			if err != nil {
				panicRuntime(ctx.sim, "%s", err.Error())
			}
			return v
		}
	case "sext":
		x := c.expr(e.Args[0])
		w := e.W
		return func(ctx *execCtx) bitvec.Value { return x(ctx).SignExt(w) }
	case "zext":
		x := c.expr(e.Args[0])
		w := e.W
		return func(ctx *execCtx) bitvec.Value { return x(ctx).ZeroExt(w) }
	case "trunc":
		x := c.expr(e.Args[0])
		w := e.W
		return func(ctx *execCtx) bitvec.Value { return x(ctx).Trunc(w) }
	case "carry":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { _, cy := x(ctx).AddCarry(y(ctx)); return boolVal(cy) }
	case "borrow":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { _, b := x(ctx).SubBorrow(y(ctx)); return boolVal(b) }
	case "addov":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value {
			a, b := x(ctx), y(ctx)
			s := a.Add(b)
			return boolVal(a.Sign() == b.Sign() && s.Sign() != a.Sign())
		}
	case "subov":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value {
			a, b := x(ctx), y(ctx)
			s := a.Sub(b)
			return boolVal(a.Sign() != b.Sign() && s.Sign() != a.Sign())
		}
	case "slt":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpS(y(ctx)) < 0) }
	case "sle":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpS(y(ctx)) <= 0) }
	case "sgt":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpS(y(ctx)) > 0) }
	case "sge":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { return boolVal(x(ctx).CmpS(y(ctx)) >= 0) }
	case "asr":
		x, y := c.expr(e.Args[0]), c.expr(e.Args[1])
		return func(ctx *execCtx) bitvec.Value { return x(ctx).ShrA(int(y(ctx).Uint64())) }
	case "concat":
		fns := make([]valFn, len(e.Args))
		for i := range e.Args {
			fns[i] = c.expr(e.Args[i])
		}
		return func(ctx *execCtx) bitvec.Value {
			v := fns[0](ctx)
			for _, f := range fns[1:] {
				v = v.Concat(f(ctx))
			}
			return v
		}
	}
	return func(ctx *execCtx) bitvec.Value {
		panicRuntime(ctx.sim, "unknown builtin %s", e.Fn)
		return bitvec.Value{}
	}
}
