package xsim

import (
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
)

// This file computes, at load time, the set of storage locations an
// operation instance may read. The interlock of §3.3.3 compares pending
// latency-delayed write-backs against this set to decide how many stall
// cycles an instruction needs. Indices that are static for the instance
// (literals, token parameters) give per-location precision; anything
// runtime-dependent falls back to whole-storage granularity (index -1),
// which can only over-stall, never under-stall.

func readSet(sim *Simulator, dop *decode.Op) []loc {
	c := &readCollector{sim: sim}
	se := staticEnv{params: dop.Op.Params, args: dop.Args}
	c.stmts(dop.Op.Action, se)
	c.stmts(dop.Op.SideEffect, se)
	c.optionEffects(dop.Args)
	return c.dedup()
}

type staticEnv struct {
	params []*isdl.Param
	args   []decode.Arg
}

func (se staticEnv) arg(name string) (*decode.Arg, bool) {
	for i, p := range se.params {
		if p.Name == name {
			return &se.args[i], true
		}
	}
	return nil, false
}

type readCollector struct {
	sim  *Simulator
	locs []loc
}

func (c *readCollector) add(l loc) { c.locs = append(c.locs, l) }

func (c *readCollector) dedup() []loc {
	seen := map[loc]bool{}
	out := c.locs[:0]
	for _, l := range c.locs {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

func (c *readCollector) optionEffects(args []decode.Arg) {
	for i := range args {
		a := &args[i]
		if a.Option == nil {
			continue
		}
		sub := staticEnv{params: a.Option.Params, args: a.Sub}
		c.stmts(a.Option.SideEffect, sub)
		c.optionEffects(a.Sub)
	}
}

func (c *readCollector) stmts(stmts []isdl.Stmt, se staticEnv) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *isdl.Assign:
			c.expr(s.RHS, se)
			// Index computations on the LHS are reads too.
			c.lhsIndices(s.LHS, se)
		case *isdl.If:
			c.expr(s.Cond, se)
			c.stmts(s.Then, se)
			c.stmts(s.Else, se)
		case *isdl.ExprStmt:
			c.expr(s.X, se)
		}
	}
}

func (c *readCollector) lhsIndices(e isdl.Expr, se staticEnv) {
	switch e := e.(type) {
	case *isdl.Index:
		c.expr(e.Idx, se)
	case *isdl.SliceE:
		c.lhsIndices(e.X, se)
	case *isdl.Ref:
		if e.Param != nil && e.Param.NT != nil {
			if a, ok := se.arg(e.Name); ok && a.Option != nil {
				sub := staticEnv{params: a.Option.Params, args: a.Sub}
				c.lhsIndices(a.Option.Value, sub)
			}
		}
	}
}

func (c *readCollector) expr(e isdl.Expr, se staticEnv) {
	switch e := e.(type) {
	case *isdl.Lit:
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			if e.Storage.Kind == isdl.StStack {
				c.add(loc{storage: e.Storage.Name, index: -1, hi: -1, lo: -1})
			} else {
				c.add(loc{storage: e.Storage.Name, index: 0, hi: -1, lo: -1})
			}
		case e.AliasTo != nil:
			c.add(loc{storage: e.AliasTo.Target, index: int(e.AliasTo.Index), hi: -1, lo: -1})
		case e.Param != nil && e.Param.NT != nil:
			if a, ok := se.arg(e.Name); ok && a.Option != nil {
				sub := staticEnv{params: a.Option.Params, args: a.Sub}
				c.expr(a.Option.Value, sub)
			}
		}
	case *isdl.Index:
		c.expr(e.Idx, se)
		if v, ok := staticEval(e.Idx, se); ok {
			idx := int(v.Uint64())
			if e.Storage.Depth > 0 {
				idx %= e.Storage.Depth
			}
			c.add(loc{storage: e.Storage.Name, index: idx, hi: -1, lo: -1})
		} else {
			c.add(loc{storage: e.Storage.Name, index: -1, hi: -1, lo: -1})
		}
	case *isdl.SliceE:
		c.expr(e.X, se)
	case *isdl.Unary:
		c.expr(e.X, se)
	case *isdl.Binary:
		c.expr(e.X, se)
		c.expr(e.Y, se)
	case *isdl.Call:
		if e.Fn == "pop" {
			if ref, ok := e.Args[0].(*isdl.Ref); ok {
				c.add(loc{storage: ref.Name, index: -1, hi: -1, lo: -1})
			}
			return
		}
		skipWidth := e.Fn == "sext" || e.Fn == "zext" || e.Fn == "trunc"
		for i, a := range e.Args {
			if skipWidth && i == 1 {
				continue
			}
			c.expr(a, se)
		}
	}
}

// staticEval evaluates an expression that depends only on literals and bound
// parameter values. ok is false when the expression touches state.
func staticEval(e isdl.Expr, se staticEnv) (bitvec.Value, bool) {
	switch e := e.(type) {
	case *isdl.Lit:
		return e.Val, true
	case *isdl.Ref:
		if e.Param != nil {
			a, ok := se.arg(e.Name)
			if !ok {
				return bitvec.Value{}, false
			}
			if e.Param.Token != nil {
				return a.Value, true
			}
			sub := staticEnv{params: a.Option.Params, args: a.Sub}
			return staticEval(a.Option.Value, sub)
		}
		return bitvec.Value{}, false
	case *isdl.SliceE:
		v, ok := staticEval(e.X, se)
		if !ok {
			return bitvec.Value{}, false
		}
		return v.Slice(e.Hi, e.Lo), true
	case *isdl.Unary:
		v, ok := staticEval(e.X, se)
		if !ok {
			return bitvec.Value{}, false
		}
		switch e.Op {
		case "-":
			return v.Neg(), true
		case "~":
			return v.Not(), true
		case "!":
			return boolVal(v.IsZero()), true
		}
	case *isdl.Binary:
		x, okx := staticEval(e.X, se)
		y, oky := staticEval(e.Y, se)
		if !okx || !oky {
			return bitvec.Value{}, false
		}
		v, err := evalBinary(e.Op, x, y)
		return v, err == nil
	case *isdl.Call:
		switch e.Fn {
		case "sext", "zext", "trunc":
			v, ok := staticEval(e.Args[0], se)
			if !ok {
				return bitvec.Value{}, false
			}
			switch e.Fn {
			case "sext":
				return v.SignExt(e.W), true
			case "zext":
				return v.ZeroExt(e.W), true
			default:
				return v.Trunc(e.W), true
			}
		}
	}
	return bitvec.Value{}, false
}
