// Package xsim is the instruction-level simulator of the paper's GENSIM
// system (§3): cycle-accurate and bit-true by construction. Where the
// original emitted C source per architecture and linked it against a common
// library, this implementation instantiates a simulator directly from the
// parsed ISDL description; the structure (Figure 2) is the same — scheduler,
// state, state monitors, off-line disassembly at load time, and a processing
// core interpreting the RTL of each operation.
//
// Cycle accounting follows §3.3.3. There is no explicit pipeline model.
// Each instruction issues at the earliest cycle that satisfies:
//
//   - every field's functional unit is free (the Usage timing parameter),
//   - no pending latency-delayed write-back targets a location the
//     instruction reads (the Latency timing parameter); the bubbles inserted
//     are the stall cycles the paper computes from the static instruction
//     stream, realized here as an interlock at issue time so they are also
//     exact around branches.
//
// A write by an operation with Latency L issued at cycle t commits at the
// end of cycle t+L−1 and is visible to instructions issuing at t+L or later.
// Writes to the program counter always take effect immediately (control
// flow has no write-back latency). Disabling the stall model (ablation C)
// issues back-to-back and lets consumers read stale values, which is what
// interlock-free hardware would do.
package xsim

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
	"repro/internal/state"
)

// Stats are the utilization statistics the evaluation loop of Figure 1
// feeds back into architecture improvement.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	DataStalls   uint64
	StructStalls uint64
	Reads        uint64
	Writes       uint64
	// OpCounts counts executed operations by qualified name.
	OpCounts map[string]uint64
	// FieldIssue counts, per field, the instructions whose slot held an
	// operation with architectural effect (a non-empty action) — the
	// functional-unit utilization measure.
	FieldIssue []uint64
}

// Utilization returns each field's busy fraction over the executed
// instructions.
func (s *Stats) Utilization() []float64 {
	out := make([]float64, len(s.FieldIssue))
	if s.Instructions == 0 {
		return out
	}
	for i, n := range s.FieldIssue {
		out[i] = float64(n) / float64(s.Instructions)
	}
	return out
}

// Summary renders the statistics as text.
func (s *Stats) Summary(d *isdl.Description) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles:        %d\n", s.Cycles)
	fmt.Fprintf(&sb, "instructions:  %d\n", s.Instructions)
	fmt.Fprintf(&sb, "data stalls:   %d\n", s.DataStalls)
	fmt.Fprintf(&sb, "struct stalls: %d\n", s.StructStalls)
	fmt.Fprintf(&sb, "state reads:   %d\n", s.Reads)
	fmt.Fprintf(&sb, "state writes:  %d\n", s.Writes)
	util := s.Utilization()
	for i, f := range d.Fields {
		fmt.Fprintf(&sb, "field %-12s utilization %5.1f%%\n", f.Name, util[i]*100)
	}
	names := make([]string, 0, len(s.OpCounts))
	for n := range s.OpCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %-20s %d\n", n, s.OpCounts[n])
	}
	return sb.String()
}

// pendingWrite is a latency-delayed write-back.
type pendingWrite struct {
	w        write
	commitAt uint64 // end of this cycle; visible to issues > commitAt
}

// opInfo is the pre-bound execution record for one operation instance,
// produced by the load-time disassembly.
type opInfo struct {
	dop     *decode.Op
	env     *env
	latency int
	usage   int
	cycle   int
	reads   []loc
	active  bool // has architectural effect (non-empty action/side effect)
	// count is the cached execution counter for this operation (avoids a
	// per-step string-keyed map update).
	count *uint64
	// Compiled-core phase functions (nil when running the interpreter).
	actionFn stmtFn
	sideFn   stmtFn
}

// instInfo is one decoded, pre-analyzed instruction.
type instInfo struct {
	inst  *decode.Inst
	ops   []opInfo
	cycle int // instruction cycles: max over operations
}

// ErrBreakpoint is returned by Run when it stops at a breakpoint.
var ErrBreakpoint = errors.New("xsim: breakpoint")

// Simulator is one XSIM simulator instance.
type Simulator struct {
	d  *isdl.Description
	st *state.State

	// The decode cache (off-line disassembly, §3.3.2) is a dense slice
	// indexed by pc - denseBase for the program's address range — the
	// fetch fast path — with a map fallback for instructions outside it
	// (e.g. code materialized into untouched instruction memory).
	dense      []*instInfo
	denseBase  int
	cacheOv    map[int]*instInfo
	opCounters map[*isdl.Operation]*uint64
	phaseBuf   []phase
	// handles bypass name lookup on the hot path; resolved once at
	// construction (they stay valid across Reset).
	handles map[*isdl.Storage]state.Handle
	aliasH  map[*isdl.Alias]state.Handle
	pcH     state.Handle
	imH     state.Handle
	// Compiled-core plumbing: ctx is the execution context compiled
	// closures run against, cc resolves AST references to layout positions
	// at compile time, opc is the (shareable) compiled-op cache with its
	// per-description fingerprint memo and the layout fingerprint half of
	// its keys.
	ctx       *execCtx
	cc        *compileCtx
	opc       *OpCache
	opFPs     map[*isdl.Operation]isdl.Fingerprint
	layoutFP  isdl.Fingerprint
	pcName    string
	imName    string
	haltName  string // storage that halts the machine when non-zero
	currentPC int

	cycle       uint64
	fieldFreeAt []uint64
	pending     []pendingWrite
	halted      bool
	stopErr     error

	breakpoints map[int]bool
	trace       io.Writer
	stats       Stats
	// perf counts the simulator's own work (decode-cache traffic, wall
	// clock, cumulative simulated work); see perf.go. Unlike stats it
	// survives Reset.
	perf perfCounters

	// clock overrides time.Now for Run's wall-clock accounting; tests
	// inject deterministic clocks to pin down the perf derivation.
	clock func() time.Time

	// StallModel enables the latency/usage interlock (§3.3.3); disabling
	// it is ablation C.
	StallModel bool
	// CompiledCore selects the closure-compiled processing core (the
	// analogue of GENSIM's generated, natively compiled C — and the §6.2
	// compiled-code direction). Disabling it runs the AST interpreter;
	// the two are equivalent (cross-checked by tests). Changing the flag
	// takes effect for instructions decoded afterwards (call Reset).
	CompiledCore bool
}

// New builds a simulator for a description. A storage named "HLT" (any
// kind), when present, halts the machine when it becomes non-zero; use
// SetHaltStorage to choose a different one.
func New(d *isdl.Description) *Simulator {
	sim := &Simulator{
		d:            d,
		st:           state.New(d),
		cacheOv:      map[int]*instInfo{},
		opCounters:   map[*isdl.Operation]*uint64{},
		phaseBuf:     make([]phase, len(d.Fields)),
		pcName:       d.PC().Name,
		imName:       d.InstructionMemory().Name,
		fieldFreeAt:  make([]uint64, len(d.Fields)),
		breakpoints:  map[int]bool{},
		StallModel:   true,
		CompiledCore: true,
	}
	sim.stats.OpCounts = map[string]uint64{}
	sim.stats.FieldIssue = make([]uint64, len(d.Fields))
	sim.handles = make(map[*isdl.Storage]state.Handle, len(d.Storage))
	for _, st := range d.Storage {
		h, _ := sim.st.Handle(st.Name)
		sim.handles[st] = h
	}
	sim.aliasH = make(map[*isdl.Alias]state.Handle, len(d.Aliases))
	for _, a := range d.Aliases {
		h, _ := sim.st.Handle(a.Target)
		sim.aliasH[a] = h
	}
	sim.pcH = sim.handles[d.PC()]
	sim.imH = sim.handles[d.InstructionMemory()]
	sim.ctx = &execCtx{
		sim:    sim,
		stH:    make([]state.Handle, len(d.Storage)),
		aliasH: make([]state.Handle, len(d.Aliases)),
	}
	for i, st := range d.Storage {
		sim.ctx.stH[i] = sim.handles[st]
	}
	for i, a := range d.Aliases {
		sim.ctx.aliasH[i] = sim.aliasH[a]
	}
	sim.cc = newCompileCtx(d)
	sim.opc = sharedOpCache
	sim.opFPs = map[*isdl.Operation]isdl.Fingerprint{}
	sim.layoutFP = isdl.LayoutFingerprint(d)
	if _, ok := d.StorageByName["HLT"]; ok {
		sim.haltName = "HLT"
	}
	// Self-modifying writes invalidate the load-time decode of the
	// affected address.
	if _, err := sim.st.Watch(sim.imName, -1, func(ev state.ChangeEvent) {
		sim.invalidate(ev.Index)
	}); err != nil {
		panic("xsim: " + err.Error())
	}
	return sim
}

// invalidate drops the cached decode of one instruction address.
func (sim *Simulator) invalidate(addr int) {
	if i := addr - sim.denseBase; i >= 0 && i < len(sim.dense) {
		sim.dense[i] = nil
		return
	}
	delete(sim.cacheOv, addr)
}

// State exposes the simulated processor state (for examine/set commands and
// the co-simulation tests).
func (sim *Simulator) State() *state.State { return sim.st }

// Description returns the machine description.
func (sim *Simulator) Description() *isdl.Description { return sim.d }

// Stats returns the utilization statistics gathered so far.
func (sim *Simulator) Stats() *Stats {
	// Per-operation counts are kept in cached counters on the hot path;
	// materialize the map view here.
	for op, c := range sim.opCounters {
		sim.stats.OpCounts[op.QualName()] = *c
	}
	return &sim.stats
}

// Cycle returns the current cycle count.
func (sim *Simulator) Cycle() uint64 { return sim.cycle }

// Halted reports whether the machine has stopped (halt storage or error).
func (sim *Simulator) Halted() bool { return sim.halted }

// Err returns the error that halted the machine, if any.
func (sim *Simulator) Err() error { return sim.stopErr }

// SetHaltStorage selects the storage whose non-zero value halts the machine.
func (sim *Simulator) SetHaltStorage(name string) error {
	if _, ok := sim.d.StorageByName[name]; !ok {
		return fmt.Errorf("xsim: unknown storage %s", name)
	}
	sim.haltName = name
	return nil
}

// SetClock overrides the wall clock used by Run's perf accounting; nil
// restores time.Now. Tests inject frozen or stepped clocks to exercise the
// near-zero-RunSeconds guards of the perf derivation.
func (sim *Simulator) SetClock(now func() time.Time) { sim.clock = now }

// SetTrace directs the execution address trace (§3.1) to w; nil disables it.
func (sim *Simulator) SetTrace(w io.Writer) { sim.trace = w }

// AddBreakpoint sets a breakpoint at an instruction address.
func (sim *Simulator) AddBreakpoint(addr int) { sim.breakpoints[addr] = true }

// RemoveBreakpoint clears a breakpoint; it reports whether one existed.
func (sim *Simulator) RemoveBreakpoint(addr int) bool {
	ok := sim.breakpoints[addr]
	delete(sim.breakpoints, addr)
	return ok
}

// Breakpoints lists the breakpoint addresses in order.
func (sim *Simulator) Breakpoints() []int {
	out := make([]int, 0, len(sim.breakpoints))
	for a := range sim.breakpoints {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Load loads an assembled program: instruction memory, data initializers,
// and the PC set to the load base (or the "start"/"main" symbol if
// defined). It resets machine state but keeps monitors and breakpoints.
//
// When the incoming image is identical to the one already loaded (same
// base, length and words), the dense decode cache survives: reload loops
// over one program (benchmark harnesses, repeated co-simulation runs)
// skip the whole re-decode. The comparison runs against current memory
// contents, so self-modified images never keep stale decodes. Map-
// overflow decodes (addresses outside the image) are always dropped —
// Reset clears the memory they decoded from. To force a full re-decode
// (e.g. after flipping CompiledCore), call Reset before Load.
func (sim *Simulator) Load(p *asm.Program) error {
	keep := sim.sameImage(p)
	sim.reset(keep)
	// Size the dense decode window to the program image; repeated Loads of
	// same-sized programs reuse the slice. When the image changed, clear
	// after resizing so a grow-within-capacity never exposes stale decodes
	// past the previous length.
	sim.denseBase = p.Base
	if n := len(p.Words); n <= cap(sim.dense) {
		sim.dense = sim.dense[:n]
		if !keep {
			clear(sim.dense)
		}
	} else {
		sim.dense = make([]*instInfo, n)
	}
	if err := sim.st.LoadProgram(p.Base, p.Words); err != nil {
		return err
	}
	for _, di := range p.Data {
		if err := sim.st.LoadData(di.Storage, di.Base, di.Values); err != nil {
			return err
		}
	}
	entry := p.Base
	for _, s := range []string{"start", "main"} {
		if a, ok := p.Symbols[s]; ok {
			entry = a
			break
		}
	}
	sim.st.SetPC(bitvec.FromUint64(sim.d.PC().Width, uint64(entry)))
	return nil
}

// sameImage reports whether the program's instruction image is identical
// to the one currently decoded: same base, same length, and every word
// equal to current instruction-memory contents (so self-modifying runs
// compare against what the decodes actually came from).
func (sim *Simulator) sameImage(p *asm.Program) bool {
	if sim.denseBase != p.Base || len(sim.dense) != len(p.Words) {
		return false
	}
	for i, w := range p.Words {
		if !sim.imH.Get(p.Base + i).Eq(w) {
			return false
		}
	}
	return true
}

// Reset clears machine state, statistics and the decode cache. Storage is
// reused in place — no maps or slices are reallocated — so Load-heavy loops
// (benchmark harnesses, repeated co-simulation runs) stay allocation-free.
func (sim *Simulator) Reset() {
	sim.reset(false)
}

// reset is Reset with the option to keep the dense decode cache, used by
// Load when the incoming image is unchanged. The map-overflow decodes are
// always dropped: they cover addresses outside the loaded image, whose
// contents the state reset clears.
func (sim *Simulator) reset(keepDecodes bool) {
	sim.st.Reset()
	if !keepDecodes {
		clear(sim.dense)
	}
	clear(sim.cacheOv)
	// Keep the per-operation counters (the operations belong to the fixed
	// description) and zero them through the shared pointers, so cached
	// opInfo records from a previous program stay consistent if callers
	// hold on to them.
	for _, c := range sim.opCounters {
		*c = 0
	}
	sim.cycle = 0
	sim.pending = sim.pending[:0]
	for i := range sim.fieldFreeAt {
		sim.fieldFreeAt[i] = 0
	}
	sim.halted = false
	sim.stopErr = nil
	oc, fi := sim.stats.OpCounts, sim.stats.FieldIssue
	clear(oc)
	for i := range fi {
		fi[i] = 0
	}
	sim.stats = Stats{OpCounts: oc, FieldIssue: fi}
}

// fetch returns the pre-analyzed instruction at pc, decoding on first use
// (the off-line disassembly of §3.3.2, performed lazily per address so that
// data words in instruction memory never need to decode).
func (sim *Simulator) fetch(pc int) (*instInfo, error) {
	// Fast path: a bounds-checked slice load for the program's own address
	// range; the map only serves addresses outside the loaded image.
	di := pc - sim.denseBase
	if di >= 0 && di < len(sim.dense) {
		if ii := sim.dense[di]; ii != nil {
			sim.perf.decodeHits++
			return ii, nil
		}
	} else if ii, ok := sim.cacheOv[pc]; ok {
		sim.perf.decodeHits++
		return ii, nil
	}
	sim.perf.decodeMisses++
	img := decode.FetchWord(sim.d, func(a int) bitvec.Value {
		return sim.imH.Get(a)
	}, pc)
	inst, err := decode.Instruction(sim.d, img)
	if err != nil {
		return nil, err
	}
	ii := &instInfo{inst: inst}
	for _, dop := range inst.Ops {
		counter := sim.opCounters[dop.Op]
		if counter == nil {
			counter = new(uint64)
			sim.opCounters[dop.Op] = counter
		}
		oi := opInfo{
			dop:     dop,
			env:     newEnv(sim, dop.Op.Params, dop.Args),
			latency: dop.Op.Timing.Latency,
			usage:   dop.Op.Timing.Usage,
			cycle:   dop.Op.Costs.Cycle,
			active:  len(dop.Op.Action) > 0 || len(dop.Op.SideEffect) > 0,
			count:   counter,
		}
		oi.env.op = dop.Op
		if sim.CompiledCore {
			oi.actionFn, oi.sideFn = sim.compiledFor(dop, oi.env)
		}
		addOptionCosts(&oi, dop.Args)
		oi.reads = readSet(sim, dop)
		ii.ops = append(ii.ops, oi)
		if oi.cycle > ii.cycle {
			ii.cycle = oi.cycle
		}
	}
	if di >= 0 && di < len(sim.dense) {
		sim.dense[di] = ii
	} else {
		sim.cacheOv[pc] = ii
	}
	return ii, nil
}

// addOptionCosts folds non-terminal option costs and timing into the
// operation's (ISDL option costs are additive adders, §2.1.1).
func addOptionCosts(oi *opInfo, args []decode.Arg) {
	for i := range args {
		a := &args[i]
		if a.Option == nil {
			continue
		}
		oi.cycle += a.Option.Costs.Cycle
		oi.latency += a.Option.Timing.Latency
		oi.usage += a.Option.Timing.Usage
		if len(a.Option.SideEffect) > 0 {
			oi.active = true
		}
		addOptionCosts(oi, a.Sub)
	}
}

// Step executes one instruction. It returns an error if the machine faults;
// a halted machine steps to no effect.
func (sim *Simulator) Step() (err error) {
	if sim.halted {
		return sim.stopErr
	}
	// The compiled core reports rare faults (stack overflow/underflow) by
	// panicking with *RuntimeError.
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(*RuntimeError)
			if !ok {
				panic(r)
			}
			sim.halted = true
			sim.stopErr = re
			err = re
		}
	}()
	pc := int(sim.pcH.Get(0).Uint64())
	sim.currentPC = pc
	ii, err := sim.fetch(pc)
	if err != nil {
		sim.halted = true
		sim.stopErr = err
		return err
	}

	issue := sim.cycle
	if sim.StallModel {
		// Structural hazards: every field must be free.
		for fi := range sim.d.Fields {
			if sim.fieldFreeAt[fi] > issue {
				issue = sim.fieldFreeAt[fi]
			}
		}
		sim.stats.StructStalls += issue - sim.cycle
		// Data hazards: stall past pending write-backs we read.
		dataStart := issue
		for changed := true; changed; {
			changed = false
			for _, p := range sim.pending {
				if p.commitAt >= issue && instReads(ii, p.w.loc) {
					issue = p.commitAt + 1
					changed = true
				}
			}
		}
		sim.stats.DataStalls += issue - dataStart
	}
	sim.commitPendingBefore(issue)

	sim.st.Cycle = issue
	size := ii.inst.Size
	// PC reads as the next instruction's address during execution; a
	// control-flow operation overwrites it.
	sim.pcH.Set(0, bitvec.FromUint64(sim.d.PC().Width, uint64(pc+size)))

	if err := sim.execPhase(ii, issue, false); err != nil {
		sim.halted = true
		sim.stopErr = err
		return err
	}
	// Side effects conceptually take place after the actions, still within
	// the same cycle (§3.3.3).
	if err := sim.execPhase(ii, issue, true); err != nil {
		sim.halted = true
		sim.stopErr = err
		return err
	}

	for fi := range ii.ops {
		oi := &ii.ops[fi]
		sim.fieldFreeAt[fi] = issue + uint64(oi.usage)
		*oi.count++
		if oi.active {
			sim.stats.FieldIssue[fi]++
		}
	}
	sim.cycle = issue + uint64(ii.cycle)
	sim.stats.Cycles = sim.cycle
	sim.stats.Instructions++

	if sim.trace != nil {
		fmt.Fprintf(sim.trace, "%x\n", pc)
	}
	if sim.haltName != "" && !sim.st.Get(sim.haltName, 0).IsZero() {
		sim.halted = true
		// Flush outstanding write-backs so the final state is complete.
		sim.commitPendingBefore(^uint64(0))
	}
	return nil
}

// execPhase runs the action phase (sideEffects=false) or the side-effects
// phase (sideEffects=true) for every operation of the instruction: all reads
// happen against pre-phase state, then writes commit (or are scheduled per
// the operation's latency).
func (sim *Simulator) execPhase(ii *instInfo, issue uint64, sideEffects bool) error {
	phases := sim.phaseBuf
	for i := range phases {
		phases[i].writes = phases[i].writes[:0]
		phases[i].pushes = phases[i].pushes[:0]
	}
	for i := range ii.ops {
		oi := &ii.ops[i]
		if oi.actionFn != nil {
			// Compiled core: option side effects are folded into sideFn.
			if sideEffects {
				oi.sideFn(sim.ctx, &phases[i])
			} else {
				oi.actionFn(sim.ctx, &phases[i])
			}
			continue
		}
		stmts := oi.dop.Op.Action
		if sideEffects {
			stmts = oi.dop.Op.SideEffect
		}
		if err := oi.env.execStmts(stmts, &phases[i]); err != nil {
			return err
		}
		if sideEffects {
			// Non-terminal option side effects (e.g. post-increment
			// addressing) run with the option's own environment.
			if err := execOptionSideEffects(oi.env, &phases[i]); err != nil {
				return err
			}
		}
	}
	for i := range ii.ops {
		oi := &ii.ops[i]
		if err := sim.commitWithLatency(&phases[i], oi.latency, issue); err != nil {
			return err
		}
	}
	return nil
}

func execOptionSideEffects(parent *env, ph *phase) error {
	for _, sub := range parent.ordered {
		if err := sub.execStmts(sub.option.SideEffect, ph); err != nil {
			return err
		}
		if err := execOptionSideEffects(sub, ph); err != nil {
			return err
		}
	}
	return nil
}

// commitWithLatency applies a phase's effects: latency-1 writes and all
// stack operations commit now; longer-latency writes are queued. Writes to
// the program counter always commit immediately.
func (sim *Simulator) commitWithLatency(ph *phase, latency int, issue uint64) error {
	if latency <= 1 {
		return sim.commit(ph)
	}
	imm := phase{pushes: ph.pushes}
	for _, w := range ph.writes {
		if w.loc.storage == sim.pcName {
			imm.writes = append(imm.writes, w)
			continue
		}
		sim.pending = append(sim.pending, pendingWrite{w: w, commitAt: issue + uint64(latency) - 1})
	}
	return sim.commit(&imm)
}

// commitPendingBefore commits every pending write visible to an instruction
// issuing at the given cycle (commitAt < issue), in scheduling order.
func (sim *Simulator) commitPendingBefore(issue uint64) {
	if len(sim.pending) == 0 {
		return
	}
	kept := sim.pending[:0]
	for _, p := range sim.pending {
		if p.commitAt < issue {
			sim.st.Cycle = p.commitAt
			sim.applyWrite(p.w)
		} else {
			kept = append(kept, p)
		}
	}
	sim.pending = kept
}

// instReads reports whether the instruction's read set intersects a write
// location.
func instReads(ii *instInfo, l loc) bool {
	for i := range ii.ops {
		for _, r := range ii.ops[i].reads {
			if r.storage != l.storage {
				continue
			}
			if r.index < 0 || r.index == l.index {
				return true
			}
		}
	}
	return false
}

// FlushPending commits every outstanding latency-delayed write-back
// immediately. The architectural end state is unchanged (the interlock
// already guarantees consumers wait for these values); co-simulation and
// debugging use it to observe a consistent state between instructions.
func (sim *Simulator) FlushPending() {
	sim.commitPendingBefore(^uint64(0))
}

// Run executes until the machine halts, a breakpoint is reached, or limit
// instructions have executed (limit <= 0 means no limit). It returns
// ErrBreakpoint when stopped by a breakpoint.
func (sim *Simulator) Run(limit int64) error {
	// Perf accounting (perf.go): wall clock plus the architectural deltas
	// of this Run, measured once per call so the step loop stays clean.
	now := time.Now
	if sim.clock != nil {
		now = sim.clock
	}
	start := now()
	i0, c0, d0, s0 := sim.stats.Instructions, sim.cycle, sim.stats.DataStalls, sim.stats.StructStalls
	defer func() {
		sim.perf.runNs += now().Sub(start).Nanoseconds()
		sim.perf.instructions += sim.stats.Instructions - i0
		sim.perf.cycles += sim.cycle - c0
		sim.perf.dataStalls += sim.stats.DataStalls - d0
		sim.perf.structStalls += sim.stats.StructStalls - s0
	}()
	executed := int64(0)
	for !sim.halted {
		if limit > 0 && executed >= limit {
			return nil
		}
		if executed > 0 {
			if pc := int(sim.st.PC().Uint64()); sim.breakpoints[pc] {
				return ErrBreakpoint
			}
		}
		if err := sim.Step(); err != nil {
			return err
		}
		executed++
	}
	return sim.stopErr
}

// Disassemble renders the instruction at an address, for debugging UIs.
func (sim *Simulator) Disassemble(pc int) (string, error) {
	ii, err := sim.fetch(pc)
	if err != nil {
		return "", err
	}
	return asm.RenderInst(sim.d, ii.inst), nil
}
