// Package gensim is the ahead-of-time compiled simulator backend: the
// analogue of the paper's GENSIM proper, which emits architecture-specific C
// and compiles it natively (§3.3) — the decisive speed lever of §6.2. Given
// an isdl.Description it emits a specialized, self-contained Go main package:
//
//   - a flat decode switch generated from the operation signatures (mask /
//     compare over the raw instruction image, parameter bit-gathers inlined),
//   - a fused two-phase cycle step with every storage access compiled to a
//     direct slice operation on uint64 state — no state.Handle indirection
//     and no bitvec.Value boxing for word-sized storages,
//   - the latency/commit queues and the §3.3.3 interlock specialized to the
//     description's fields and timing parameters.
//
// The source is built once per description with `go build` into a cache
// directory keyed by the ISDL fingerprint and driven over a versioned
// JSON-lines stdin/stdout protocol (docs/GENSIM.md); an optional plugin fast
// path loads the same code in-process. The generated simulator is
// bit-identical to the interpreter and closure cores — final state, Stats,
// stall counts, fault messages — which the differential gauntlet in this
// package enforces. Descriptions outside the specializable subset (an RTL
// expression or storage wider than 64 bits) and hosts without a Go
// toolchain degrade gracefully: xsim.NewEngine falls back to the closure
// core.
package gensim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/isdl"
)

// GeneratorVersion tags the emitted code shape; it is part of the build
// fingerprint, so bumping it invalidates every cached binary.
const GeneratorVersion = 2

// ProtoVersion is the stdin/stdout protocol version; the handshake rejects
// a mismatched child binary.
const ProtoVersion = 1

// ErrUnavailable reports that the aot backend cannot run on this host: the
// Go toolchain is missing or REPRO_GENSIM_DISABLE is set. Callers fall back
// to the closure core.
var ErrUnavailable = errors.New("gensim: aot backend unavailable (no Go toolchain or REPRO_GENSIM_DISABLE set)")

// UnsupportedError reports a description outside the specializable subset
// (e.g. an RTL expression wider than 64 bits). It is a deterministic
// property of the description, so pipeline caches may memoize it; callers
// fall back to the closure core.
type UnsupportedError struct {
	Reason string
}

func (e *UnsupportedError) Error() string { return "gensim: unsupported description: " + e.Reason }

// IsUnsupported reports whether err is an UnsupportedError.
func IsUnsupported(err error) bool {
	var ue *UnsupportedError
	return errors.As(err, &ue)
}

// Fingerprint keys the build cache: the canonical ISDL text plus the
// generator and protocol versions, so a description change, a generator
// change, or a protocol change each produce a fresh binary.
func Fingerprint(d *isdl.Description) string {
	h := sha256.New()
	fmt.Fprintf(h, "gensim g%d p%d\n", GeneratorVersion, ProtoVersion)
	h.Write([]byte(isdl.Format(d)))
	return hex.EncodeToString(h.Sum(nil))
}
