package gensim

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/blob"
	"repro/internal/isdl"
)

// Disabled reports whether the aot backend is switched off by environment:
// REPRO_GENSIM_DISABLE set (CI fallback smoke tests use this) or no Go
// toolchain on PATH.
func Disabled() bool {
	if os.Getenv("REPRO_GENSIM_DISABLE") != "" {
		return true
	}
	_, err := goTool()
	return err != nil
}

// goTool resolves the Go toolchain binary: REPRO_GENSIM_GO overrides, else
// $PATH.
func goTool() (string, error) {
	if g := os.Getenv("REPRO_GENSIM_GO"); g != "" {
		return g, nil
	}
	return exec.LookPath("go")
}

// CacheDir is where built simulator binaries live, keyed by fingerprint:
// REPRO_GENSIM_CACHE, else the user cache dir, else the system temp dir.
func CacheDir() string {
	if d := os.Getenv("REPRO_GENSIM_CACHE"); d != "" {
		return d
	}
	if d, err := os.UserCacheDir(); err == nil {
		return filepath.Join(d, "repro-gensim")
	}
	return filepath.Join(os.TempDir(), "repro-gensim")
}

// The shared build store. When a blob.Store is attached (SetStore — the
// CLIs wire their -store flag here), built simulator binaries are
// published under a namespace keyed by generator version and platform,
// so one machine's native build serves every other machine of the same
// platform sharing the store: the local fingerprint-keyed cache dir
// stays the first tier, the store becomes the second — exactly the
// StageCache arrangement (internal/core/blobstore.go).
var (
	storeMu sync.Mutex
	store   blob.Store
)

// SetStore attaches (or, with nil, detaches) the shared artifact store
// consulted and populated by Build.
func SetStore(s blob.Store) {
	storeMu.Lock()
	store = s
	storeMu.Unlock()
}

func getStore() blob.Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	return store
}

// storeNS is the binary namespace: binaries are platform- and
// generator-version-specific, the fingerprint key covers the rest.
func storeNS() string {
	return fmt.Sprintf("gensim.bin.g%d.%s-%s", GeneratorVersion, runtime.GOOS, runtime.GOARCH)
}

// BuildResult describes one generate+build: where the binary landed,
// whether the cache already had it, and how long codegen+build took.
type BuildResult struct {
	Dir         string // cache entry directory
	Bin         string // built simulator binary
	Fingerprint string
	CacheHit    bool
	// StoreHit reports the binary was fetched from the shared blob store
	// rather than built locally (CacheHit is also set: no build ran).
	StoreHit bool
	BuildNs  int64
}

// Build generates, compiles and caches the specialized simulator for d.
// Returns ErrUnavailable when the toolchain is missing or the backend is
// disabled, an UnsupportedError when d is outside the compilable subset.
func Build(d *isdl.Description) (*BuildResult, error) {
	if os.Getenv("REPRO_GENSIM_DISABLE") != "" {
		return nil, ErrUnavailable
	}
	gobin, err := goTool()
	if err != nil {
		return nil, ErrUnavailable
	}
	fp := Fingerprint(d)
	dir := filepath.Join(CacheDir(), fp)
	bin := filepath.Join(dir, "sim")
	if _, err := os.Stat(bin); err == nil {
		return &BuildResult{Dir: dir, Bin: bin, Fingerprint: fp, CacheHit: true}, nil
	}

	start := time.Now()
	src, err := Generate(d)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gensim: cache dir: %w", err)
	}
	// Keep the source in the cache entry: the plugin fast path rebuilds
	// from it, and it is the artifact to read when debugging.
	if err := writeModule(dir, src); err != nil {
		return nil, err
	}
	// Second tier: a binary another process (possibly on another machine
	// of the same platform) already built and published. Store trouble
	// degrades to a local build, never a failure.
	if st := getStore(); st != nil {
		if data, err := st.Get(storeNS(), blob.KeyOf(fp)); err == nil {
			if err := atomicfile.WriteFile(bin, data, 0o755); err == nil {
				return &BuildResult{Dir: dir, Bin: bin, Fingerprint: fp, CacheHit: true, StoreHit: true}, nil
			}
		}
	}
	// Build in a scratch dir and rename into place so concurrent builders
	// of the same description race benignly.
	tmp, err := os.MkdirTemp(dir, "build-*")
	if err != nil {
		return nil, fmt.Errorf("gensim: scratch dir: %w", err)
	}
	defer os.RemoveAll(tmp)
	if err := writeModule(tmp, src); err != nil {
		return nil, err
	}
	out, err := runGoBuild(gobin, tmp, filepath.Join(tmp, "sim"), "")
	if err != nil {
		return nil, fmt.Errorf("gensim: go build: %v\n%s", err, firstLines(out, 20))
	}
	if err := os.Rename(filepath.Join(tmp, "sim"), bin); err != nil {
		// A concurrent build may have won the race; its binary is
		// identical (same fingerprint), so losing is fine.
		if _, statErr := os.Stat(bin); statErr != nil {
			return nil, fmt.Errorf("gensim: install binary: %w", err)
		}
	}
	// Publish for the next machine; best-effort, the local cache already
	// has the binary.
	if st := getStore(); st != nil {
		if data, err := os.ReadFile(bin); err == nil {
			st.Put(storeNS(), blob.KeyOf(fp), data)
		}
	}
	return &BuildResult{
		Dir:         dir,
		Bin:         bin,
		Fingerprint: fp,
		BuildNs:     time.Since(start).Nanoseconds(),
	}, nil
}

// writeModule lays out a self-contained module around the generated
// main. Writes are atomic (internal/atomicfile) because the cache entry
// directory is shared: a concurrent process reading the entry — the
// plugin fast path rebuilds from main.go — must never see a torn file.
func writeModule(dir, src string) error {
	gomod := "module gensim-generated\n\ngo 1.21\n"
	if err := atomicfile.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		return fmt.Errorf("gensim: write go.mod: %w", err)
	}
	if err := atomicfile.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		return fmt.Errorf("gensim: write main.go: %w", err)
	}
	return nil
}

// runGoBuild invokes the toolchain with an isolated build environment.
// buildmode, when non-empty, is passed through (plugin fast path).
func runGoBuild(gobin, dir, out, buildmode string) ([]byte, error) {
	args := []string{"build", "-o", out}
	if buildmode != "" {
		args = append(args, "-buildmode="+buildmode)
	}
	args = append(args, ".")
	cmd := exec.Command(gobin, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(),
		"GOFLAGS=-mod=mod",
		"GO111MODULE=on",
		"GOWORK=off",
	)
	return cmd.CombinedOutput()
}

func firstLines(b []byte, n int) string {
	lines := strings.SplitN(string(b), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
