package gensim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// This file drives source generation: it lays out decoded-argument slots,
// emits the storage tables and the flat decode switch, and stitches the
// result onto the runtime template. The RTL compilers live in genrtl.go.

// paramLoc assigns one parameter a slot in the flat argument array of a
// decoded operation. Token parameters use one slot (the return value);
// non-terminal parameters use one slot for the decoded option index plus a
// union of their options' recursive layouts (options are mutually
// exclusive, so their sub-slots overlap).
type paramLoc struct {
	p    *isdl.Param
	slot int
	opts []*optScope // per option, when p.NT != nil
}

type optScope struct {
	opt    *isdl.Option
	params []paramLoc
}

func layoutParams(params []*isdl.Param, base int) ([]paramLoc, int) {
	locs := make([]paramLoc, len(params))
	for i, p := range params {
		pl := paramLoc{p: p, slot: base}
		base++
		if p.NT != nil {
			maxEnd := base
			for _, opt := range p.NT.Options {
				sub, end := layoutParams(opt.Params, base)
				pl.opts = append(pl.opts, &optScope{opt: opt, params: sub})
				if end > maxEnd {
					maxEnd = end
				}
			}
			base = maxEnd
		}
		locs[i] = pl
	}
	return locs, base
}

// opGen is the generation record for one operation; ids are global across
// fields (they index opNames/opCount in the generated machine).
type opGen struct {
	id, fi int
	op     *isdl.Operation
	params []paramLoc
	nslots int
}

type gen struct {
	d        *isdl.Description
	sid      map[string]int
	pcSid    int
	imSid    int
	haltSid  int // -1 when no halt storage
	imgW     int
	maxSize  int
	ops      []*opGen
	opOf     map[*isdl.Operation]*opGen
	aliasIdx map[*isdl.Alias]int
	// pushBad maps sids of non-stack push targets; their pushTo cases fault
	// at commit time with the interpreter's "not a stack" message.
	pushBad map[int]string

	// methods collects generated method bodies; emitted memoizes them and
	// tmp numbers statement temporaries.
	methods []string
	emitted map[string]bool
	tmp     int
}

func (g *gen) unsupported(format string, args ...any) error {
	return &UnsupportedError{Reason: fmt.Sprintf(format, args...)}
}

// genWrap mirrors state.wrapIndex for generation-time constant indices.
func genWrap(idx, depth int) int {
	if idx < 0 {
		idx = -idx
	}
	return idx % depth
}

func maskU(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(w) - 1
}

func hexU(v uint64) string { return fmt.Sprintf("%#x", v) }

// Generate emits the specialized simulator source for d, or an
// UnsupportedError when the description falls outside the compilable
// subset (any RTL-visible value wider than 64 bits, among others).
func Generate(d *isdl.Description) (string, error) {
	g := &gen{
		d:        d,
		sid:      map[string]int{},
		haltSid:  -1,
		maxSize:  d.MaxSize(),
		opOf:     map[*isdl.Operation]*opGen{},
		aliasIdx: map[*isdl.Alias]int{},
		pushBad:  map[int]string{},
		emitted:  map[string]bool{},
	}
	for i, st := range d.Storage {
		g.sid[st.Name] = i
	}
	pc, im := d.PC(), d.InstructionMemory()
	if pc == nil || im == nil {
		return "", g.unsupported("description lacks a program counter or instruction memory")
	}
	g.pcSid, g.imSid = g.sid[pc.Name], g.sid[im.Name]
	if pc.Width > 64 {
		return "", g.unsupported("program counter %s is %d bits wide (max 64)", pc.Name, pc.Width)
	}
	if hlt, ok := d.StorageByName["HLT"]; ok {
		g.haltSid = g.sid[hlt.Name]
	}
	g.imgW = im.Width * g.maxSize
	for i, a := range d.Aliases {
		g.aliasIdx[a] = i
	}
	id := 0
	for fi, f := range d.Fields {
		for _, op := range f.Ops {
			og := &opGen{id: id, fi: fi, op: op}
			og.params, og.nslots = layoutParams(op.Params, 0)
			g.ops = append(g.ops, og)
			g.opOf[op] = og
			id++
		}
	}

	var sb strings.Builder
	name := d.Name
	if name == "" {
		name = "machine"
	}
	repl := strings.NewReplacer(
		"@GENV@", strconv.Itoa(GeneratorVersion),
		"@MACHINE@", name,
		"@PROTO@", strconv.Itoa(ProtoVersion),
		"@NF@", strconv.Itoa(len(d.Fields)),
		"@IMSID@", strconv.Itoa(g.imSid),
		"@PCSID@", strconv.Itoa(g.pcSid),
		"@PCMASK@", hexU(maskU(pc.Width)),
		"@IMDEPTH@", strconv.Itoa(im.Depth),
		"@IMGW@", strconv.Itoa(g.imgW),
		"@IMGWORDS@", strconv.Itoa((g.imgW+63)/64),
	)
	sb.WriteString(repl.Replace(runtimeTemplate))

	w := &cw{}
	w.ln("")
	w.ln("const fingerprint = %q", Fingerprint(d))
	w.ln("const machineName = %q", name)
	w.ln("")
	g.emitTables(w)
	g.emitHaltCheck(w)
	if err := g.emitDecode(w); err != nil {
		return "", err
	}
	if err := g.emitOps(w); err != nil {
		return "", err
	}
	// After ops: push targets (including non-stack faults) are now known.
	g.emitStacks(w)
	sb.WriteString(w.sb.String())
	for _, m := range g.methods {
		sb.WriteString(m)
	}
	return sb.String(), nil
}

// emitTables writes the storage metadata and operation name tables.
func (g *gen) emitTables(w *cw) {
	w.ln("var stInfo = [...]struct {")
	w.in()
	w.ln("name                string")
	w.ln("width, depth, words int")
	w.ln("mask, topMask       uint64")
	w.out()
	w.ln("}{")
	w.in()
	for _, st := range g.d.Storage {
		words := (st.Width + 63) / 64
		mask := uint64(0)
		if st.Width <= 64 {
			mask = maskU(st.Width)
		}
		top := maskU(st.Width)
		if rem := st.Width % 64; st.Width > 64 && rem != 0 {
			top = uint64(1)<<uint(rem) - 1
		} else if st.Width > 64 {
			top = ^uint64(0)
		}
		w.ln("{name: %q, width: %d, depth: %d, words: %d, mask: %s, topMask: %s},",
			st.Name, st.Width, st.Depth, words, hexU(mask), hexU(top))
	}
	w.out()
	w.ln("}")
	w.ln("")
	w.ln("var opNames = [...]string{")
	w.in()
	for _, og := range g.ops {
		w.ln("%q,", og.op.QualName())
	}
	w.out()
	w.ln("}")
	w.ln("")
	// Whether each op does any work in the action / side-effect phase:
	// decode uses these to precompute the working-field lists so the step
	// loop skips nop fields entirely.
	boolTable := func(name string, has func(og *opGen) bool) {
		w.ln("var %s = [...]bool{", name)
		w.in()
		for _, og := range g.ops {
			w.ln("%v,", has(og))
		}
		w.out()
		w.ln("}")
		w.ln("")
	}
	boolTable("opHasAct", func(og *opGen) bool { return len(og.op.Action) > 0 })
	boolTable("opHasSide", func(og *opGen) bool {
		return len(og.op.SideEffect) > 0 || paramsHaveSide(og.params)
	})
	w.ln("// wrv binds a value onto a write destination (assignment commit).")
	w.ln("func wrv(w wr, v uint64) wr {")
	w.in()
	w.ln("w.val = v")
	w.ln("return w")
	w.out()
	w.ln("}")
	w.ln("")
}

func (g *gen) emitHaltCheck(w *cw) {
	w.ln("// haltCheck is the \"HLT storage became non-zero\" test of xsim.Step.")
	w.ln("func haltCheck(m *mach) bool {")
	w.in()
	if g.haltSid >= 0 {
		w.ln("return m.st[%d][0] != 0", g.haltSid)
	} else {
		w.ln("return false")
	}
	w.out()
	w.ln("}")
	w.ln("")
}

// emitStacks writes push/pop methods per stack storage plus the pushTo
// commit dispatcher. Error strings match internal/state exactly.
func (g *gen) emitStacks(w *cw) {
	var stacks []int
	for i, st := range g.d.Storage {
		if st.Kind == isdl.StStack {
			stacks = append(stacks, i)
		}
	}
	for _, sid := range stacks {
		st := g.d.Storage[sid]
		w.ln("func (m *mach) push%d(v uint64) {", sid)
		w.in()
		w.ln("if m.sp[%d] >= %d {", sid, st.Depth)
		w.in()
		w.ln("panic(&simErr{m.curPC, %q})", fmt.Sprintf("state: stack %s overflow (depth %d)", st.Name, st.Depth))
		w.out()
		w.ln("}")
		w.ln("m.st[%d][m.sp[%d]] = v & %s", sid, sid, hexU(maskU(st.Width)))
		w.ln("m.sp[%d]++", sid)
		w.out()
		w.ln("}")
		w.ln("")
		w.ln("func (m *mach) pop%d() uint64 {", sid)
		w.in()
		w.ln("if m.sp[%d] == 0 {", sid)
		w.in()
		w.ln("panic(&simErr{m.curPC, %q})", fmt.Sprintf("state: stack %s underflow", st.Name))
		w.out()
		w.ln("}")
		w.ln("m.sp[%d]--", sid)
		w.ln("return m.st[%d][m.sp[%d]]", sid, sid)
		w.out()
		w.ln("}")
		w.ln("")
	}
	w.ln("func (m *mach) pushTo(sid int, v uint64) {")
	w.in()
	if len(stacks)+len(g.pushBad) > 0 {
		w.ln("switch sid {")
		for _, sid := range stacks {
			w.ln("case %d:", sid)
			w.in()
			w.ln("m.push%d(v)", sid)
			w.out()
		}
		bad := make([]int, 0, len(g.pushBad))
		for sid := range g.pushBad {
			bad = append(bad, sid)
		}
		sort.Ints(bad)
		for _, sid := range bad {
			w.ln("case %d:", sid)
			w.in()
			w.ln("panic(&simErr{m.curPC, %q})", fmt.Sprintf("state: %s is not a stack", g.pushBad[sid]))
			w.out()
		}
		w.ln("}")
	} else {
		w.ln("_ = sid")
		w.ln("_ = v")
	}
	w.out()
	w.ln("}")
	w.ln("")
}

// maskChunks splits a bitvec into 64-bit little-endian words (gen time).
func maskChunks(v bitvec.Value) []uint64 {
	n := (v.Width() + 63) / 64
	out := make([]uint64, n)
	for c := 0; c < n; c++ {
		lo := c * 64
		hi := lo + 63
		if hi >= v.Width() {
			hi = v.Width() - 1
		}
		out[c] = v.Slice(hi, lo).Uint64()
	}
	return out
}

// sigBits are the (image bit, param bit) pairs that encode one parameter.
type sigBitPair struct{ pos, pbit int }

// extractExpr builds the Go expression gathering a parameter's return value
// out of the instruction image (or a non-terminal return value). src maps a
// 64-bit word index to its Go expression; imgBits bounds readable bits.
func extractExpr(sig *isdl.Signature, param, retWidth, imgBits int, src func(word int) string) string {
	var pairs []sigBitPair
	for i, b := range sig.Bits {
		if b.Kind == isdl.SigParam && b.Param == param && b.PBit < retWidth && i < imgBits {
			pairs = append(pairs, sigBitPair{pos: i, pbit: b.PBit})
		}
	}
	if len(pairs) == 0 {
		return "0"
	}
	// Signature bits iterate in image order; gather maximal runs that are
	// consecutive in both the image and the parameter and stay in one word.
	var terms []string
	for i := 0; i < len(pairs); {
		j := i + 1
		for j < len(pairs) &&
			pairs[j].pos == pairs[j-1].pos+1 &&
			pairs[j].pbit == pairs[j-1].pbit+1 &&
			pairs[j].pos/64 == pairs[i].pos/64 {
			j++
		}
		run := pairs[i:j]
		word, off, p0 := run[0].pos/64, run[0].pos%64, run[0].pbit
		m := maskU(len(run))
		t := src(word)
		if off > 0 {
			t = fmt.Sprintf("%s>>%d", t, off)
		}
		t = fmt.Sprintf("%s&%s", t, hexU(m))
		if p0 > 0 {
			t = fmt.Sprintf("(%s)<<%d", t, p0)
		}
		terms = append(terms, t)
		i = j
	}
	if len(terms) == 1 {
		return "(" + terms[0] + ")"
	}
	return "(" + strings.Join(terms, " | ") + ")"
}

// matchCond builds the constant mask/compare condition for a signature over
// the image words. Returns "true" when the signature has no constant bits.
func matchCond(sig *isdl.Signature, imgBits int, src func(word int) string) string {
	mask, val := sig.ConstMask()
	// Constant one-bits beyond the readable image can never match (those
	// bits read as zero); constant zeros there match trivially.
	for i := imgBits; i < len(sig.Bits); i++ {
		if sig.Bits[i].Kind == isdl.SigConst && sig.Bits[i].Const == 1 {
			return "false"
		}
	}
	if imgBits < mask.Width() {
		mask = mask.Trunc(imgBits)
		val = val.Trunc(imgBits)
	}
	mc, vc := maskChunks(mask), maskChunks(val)
	var conds []string
	for c := range mc {
		if mc[c] == 0 {
			continue
		}
		conds = append(conds, fmt.Sprintf("%s&%s == %s", src(c), hexU(mc[c]), hexU(vc[c])))
	}
	if len(conds) == 0 {
		return "true"
	}
	return strings.Join(conds, " && ")
}

// emitDecode writes the generated decode: image fetch, per-field operation
// match + argument extraction + cost folding, constraints — the compiled
// form of decode.Instruction plus xsim.fetch's per-op analysis.
func (g *gen) emitDecode(w *cw) error {
	im := g.d.Storage[g.imSid]
	imgWords := (g.imgW + 63) / 64
	w.ln("func (m *mach) decode(pc int) (*instRec, error) {")
	w.in()
	w.ln("var img [imgWs]uint64")
	// Fetch: maxSize consecutive instruction words concatenated
	// little-endian, each address wrapped (decode.FetchWord + Handle.Get).
	elemWords := (im.Width + 63) / 64
	for k := 0; k < g.maxSize; k++ {
		for j := 0; j < elemWords; j++ {
			nb := im.Width - j*64
			if nb > 64 {
				nb = 64
			}
			var srcExpr string
			if elemWords == 1 {
				srcExpr = fmt.Sprintf("m.st[imSid][wrapIdx(pc+%d, %d)]", k, im.Depth)
			} else {
				srcExpr = fmt.Sprintf("m.st[imSid][wrapIdx(pc+%d, %d)*%d+%d]", k, im.Depth, elemWords, j)
			}
			dstBit := k*im.Width + j*64
			wl, off := dstBit/64, dstBit%64
			if off == 0 {
				w.ln("img[%d] |= %s", wl, srcExpr)
			} else {
				w.ln("img[%d] |= %s << %d", wl, srcExpr, off)
				if off+nb > 64 && wl+1 < imgWords {
					w.ln("img[%d] |= %s >> %d", wl+1, srcExpr, 64-off)
				}
			}
		}
	}
	w.ln("ii := &instRec{size: 1}")
	src := func(word int) string { return fmt.Sprintf("img[%d]", word) }
	for fi, f := range g.d.Fields {
		w.ln("{")
		w.in()
		w.ln("o := &ii.ops[%d]", fi)
		w.ln("switch {")
		for _, op := range f.Ops {
			og := g.opOf[op]
			w.ln("case %s:", matchCond(&op.Sig, g.imgW, src))
			w.in()
			w.ln("o.op = %d", og.id)
			if og.nslots > 0 {
				w.ln("a := make([]uint64, %d)", og.nslots)
				if err := g.emitArgExtract(w, og.params, &op.Sig, g.imgW, src); err != nil {
					return err
				}
				w.ln("o.a = a")
			}
			active := len(op.Action) > 0 || len(op.SideEffect) > 0
			w.ln("o.lat, o.usage, o.cyc = %d, %d, %d", op.Timing.Latency, op.Timing.Usage, op.Costs.Cycle)
			if active {
				w.ln("o.active = true")
			}
			g.emitAdders(w, og.params, active)
			if og.nslots > 0 {
				w.ln("o.reads = m.rs%d(a)", og.id)
			} else {
				w.ln("o.reads = m.rs%d(nil)", og.id)
			}
			if op.Costs.Size > 1 {
				w.ln("if %d > ii.size {", op.Costs.Size)
				w.in()
				w.ln("ii.size = %d", op.Costs.Size)
				w.out()
				w.ln("}")
			}
			w.out()
		}
		w.ln("default:")
		w.in()
		w.ln("return nil, fmt.Errorf(\"illegal instruction: no operation of field %%s matches %%s\", %q, hexv(imgW, img[:]))", f.Name)
		w.out()
		w.ln("}")
		w.ln("if o.cyc > ii.cyc {")
		w.in()
		w.ln("ii.cyc = o.cyc")
		w.out()
		w.ln("}")
		w.out()
		w.ln("}")
	}
	for _, c := range g.d.Constraints {
		cond, err := g.cexpr(c.Expr)
		if err != nil {
			return err
		}
		w.ln("if !(%s) {", cond)
		w.in()
		w.ln("return nil, fmt.Errorf(\"%%s\", %q)", "constraint violated: "+c.Text)
		w.out()
		w.ln("}")
	}
	// Operation counters exist from first decode on (zero-count entries in
	// OpCounts) — but only once the whole instruction decoded legally.
	w.ln("for f := 0; f < nf; f++ {")
	w.in()
	w.ln("m.opSeen[ii.ops[f].op] = true")
	w.ln("if opHasAct[ii.ops[f].op] {")
	w.in()
	w.ln("ii.actF[ii.nact] = uint8(f)")
	w.ln("ii.nact++")
	w.out()
	w.ln("}")
	w.ln("if opHasSide[ii.ops[f].op] {")
	w.in()
	w.ln("ii.sideF[ii.nside] = uint8(f)")
	w.ln("ii.nside++")
	w.out()
	w.ln("}")
	w.out()
	w.ln("}")
	w.ln("return ii, nil")
	w.out()
	w.ln("}")
	w.ln("")
	return nil
}

// emitArgExtract extracts every parameter of a (sub)signature into its
// slots, recursing through non-terminal options (decode.extractArgs + NT).
func (g *gen) emitArgExtract(w *cw, params []paramLoc, sig *isdl.Signature, imgBits int, src func(int) string) error {
	for i := range params {
		pl := &params[i]
		rw := pl.p.RetWidth()
		if rw < 1 || rw > 64 {
			return g.unsupported("parameter %s return width %d (want 1..64)", pl.p.Name, rw)
		}
		if pl.p.Token != nil {
			w.ln("a[%d] = %s", pl.slot, extractExpr(sig, i, rw, imgBits, src))
			continue
		}
		// Non-terminal: extract the return bitfield, decode the option.
		rv := fmt.Sprintf("r%d", g.tmp)
		g.tmp++
		w.ln("%s := %s", rv, extractExpr(sig, i, rw, imgBits, src))
		rsrc := func(int) string { return rv }
		w.ln("switch {")
		for oi, os := range pl.opts {
			w.ln("case %s:", matchCond(&os.opt.Sig, rw, rsrc))
			w.in()
			w.ln("a[%d] = %d", pl.slot, oi)
			if err := g.emitArgExtract(w, os.params, &os.opt.Sig, rw, rsrc); err != nil {
				return err
			}
			w.out()
		}
		w.ln("default:")
		w.in()
		w.ln("return nil, fmt.Errorf(\"illegal instruction: no option of non-terminal %%s matches %%s\", %q, hexv(%d, []uint64{%s}))",
			pl.p.NT.Name, rw, rv)
		w.out()
		w.ln("}")
	}
	return nil
}

// emitAdders folds decoded-option costs/timing adders into the opInst
// (xsim.addOptionCosts): additive, recursive, in parameter order.
func (g *gen) emitAdders(w *cw, params []paramLoc, baseActive bool) {
	for i := range params {
		pl := &params[i]
		if pl.p.NT == nil {
			continue
		}
		if !addersNeeded(pl, baseActive) {
			// Still recurse: nested options may need adders even when this
			// level has none — addersNeeded already checked the subtree.
			continue
		}
		w.ln("switch a[%d] {", pl.slot)
		for oi, os := range pl.opts {
			var lines []func()
			o := os.opt
			if o.Costs.Cycle != 0 {
				lines = append(lines, func() { w.ln("o.cyc += %d", o.Costs.Cycle) })
			}
			if o.Timing.Latency != 0 {
				lines = append(lines, func() { w.ln("o.lat += %d", o.Timing.Latency) })
			}
			if o.Timing.Usage != 0 {
				lines = append(lines, func() { w.ln("o.usage += %d", o.Timing.Usage) })
			}
			if len(o.SideEffect) > 0 && !baseActive {
				lines = append(lines, func() { w.ln("o.active = true") })
			}
			sub := &cw{indent: w.indent + 1}
			g.emitAdders(sub, os.params, baseActive || len(o.SideEffect) > 0)
			if len(lines) == 0 && sub.sb.Len() == 0 {
				continue
			}
			w.ln("case %d:", oi)
			w.in()
			for _, fn := range lines {
				fn()
			}
			w.sb.WriteString(sub.sb.String())
			w.out()
		}
		w.ln("}")
	}
}

// addersNeeded reports whether any option in the subtree contributes a
// non-zero cost/timing adder or a side effect.
func addersNeeded(pl *paramLoc, baseActive bool) bool {
	for _, os := range pl.opts {
		o := os.opt
		if o.Costs.Cycle != 0 || o.Timing.Latency != 0 || o.Timing.Usage != 0 {
			return true
		}
		if len(o.SideEffect) > 0 && !baseActive {
			return true
		}
		for i := range os.params {
			sub := &os.params[i]
			if sub.p.NT != nil && addersNeeded(sub, baseActive || len(o.SideEffect) > 0) {
				return true
			}
		}
	}
	return false
}

// cexpr compiles a constraint expression over the decoded operation ids.
func (g *gen) cexpr(e isdl.CExpr) (string, error) {
	switch e := e.(type) {
	case *isdl.CAtom:
		og := g.opOf[e.ResolvedOp]
		if og == nil {
			return "", g.unsupported("constraint references unknown operation %s.%s", e.Field, e.Op)
		}
		return fmt.Sprintf("ii.ops[%d].op == %d", og.fi, og.id), nil
	case *isdl.CNot:
		x, err := g.cexpr(e.X)
		if err != nil {
			return "", err
		}
		return "!(" + x + ")", nil
	case *isdl.CBin:
		x, err := g.cexpr(e.X)
		if err != nil {
			return "", err
		}
		y, err := g.cexpr(e.Y)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case "&":
			return "(" + x + " && " + y + ")", nil
		case "|":
			return "(" + x + " || " + y + ")", nil
		case "->":
			return "(!(" + x + ") || " + y + ")", nil
		}
	}
	return "", g.unsupported("constraint expression form")
}

// emitOps writes the per-operation methods (action/side/read-set) and the
// phase dispatchers.
func (g *gen) emitOps(w *cw) error {
	var acts, sides []*opGen
	for _, og := range g.ops {
		hasAct := len(og.op.Action) > 0
		hasSide := len(og.op.SideEffect) > 0 || paramsHaveSide(og.params)
		if hasAct {
			acts = append(acts, og)
			if err := g.emitActionMethod(og); err != nil {
				return err
			}
		}
		if hasSide {
			sides = append(sides, og)
			if err := g.emitSideMethod(og); err != nil {
				return err
			}
		}
		if err := g.emitRS(og); err != nil {
			return err
		}
	}
	emitDispatch := func(name string, list []*opGen, prefix string) {
		w.ln("func (m *mach) %s(o *opInst, ph *phaseBuf) {", name)
		w.in()
		if len(list) > 0 {
			w.ln("switch o.op {")
			for _, og := range list {
				w.ln("case %d:", og.id)
				w.in()
				w.ln("m.%s%d(o.a, ph)", prefix, og.id)
				w.out()
			}
			w.ln("}")
		} else {
			w.ln("_ = o")
			w.ln("_ = ph")
		}
		w.out()
		w.ln("}")
		w.ln("")
	}
	emitDispatch("doAction", acts, "ac")
	emitDispatch("doSide", sides, "se")
	return nil
}

func paramsHaveSide(params []paramLoc) bool {
	for i := range params {
		for _, os := range params[i].opts {
			if len(os.opt.SideEffect) > 0 || paramsHaveSide(os.params) {
				return true
			}
		}
	}
	return false
}

// sortedStorageNames is used by tests and debugging helpers.
func (g *gen) sortedStorageNames() []string {
	names := make([]string, 0, len(g.sid))
	for n := range g.sid {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
