package gensim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"time"
)

// Host-side protocol client. The wire structures mirror the generated
// child's (genruntime.go) field for field; values cross as plain hex
// strings so storages wider than 53 bits survive JSON number precision.

type wireHandshake struct {
	Proto   int    `json:"gensim"`
	FP      string `json:"fp"`
	Machine string `json:"machine"`
}

type wireData struct {
	Storage string   `json:"storage"`
	Base    int      `json:"base"`
	Values  []string `json:"values"`
}

type wireReq struct {
	Op    string     `json:"op"`
	Base  int        `json:"base"`
	Words []string   `json:"words"`
	Data  []wireData `json:"data,omitempty"`
	Entry int        `json:"entry"`
	Limit int64      `json:"limit"`
	Stall bool       `json:"stall"`
	// WantState asks the child for the full final state dump (expensive:
	// one hex string per storage element); only Snapshot sets it.
	WantState bool `json:"state,omitempty"`
}

type wireState struct {
	Storage string   `json:"storage"`
	Values  []string `json:"values"`
}

type wireResp struct {
	OK           bool              `json:"ok"`
	Err          string            `json:"err,omitempty"`
	Fault        string            `json:"fault,omitempty"`
	Halted       bool              `json:"halted"`
	Cycle        uint64            `json:"cycle"`
	Instructions uint64            `json:"instructions"`
	DataStalls   uint64            `json:"data_stalls"`
	StructStalls uint64            `json:"struct_stalls"`
	Reads        uint64            `json:"reads"`
	Writes       uint64            `json:"writes"`
	OpCounts     map[string]uint64 `json:"op_counts,omitempty"`
	FieldIssue   []uint64          `json:"field_issue,omitempty"`
	DecodeHits   uint64            `json:"decode_hits"`
	DecodeMisses uint64            `json:"decode_misses"`
	RunNs        int64             `json:"run_ns"`
	State        []wireState       `json:"state,omitempty"`
}

// runner drives one generated simulator: a subprocess over stdin/stdout,
// or — on the plugin fast path — an in-process Serve function.
type runner struct {
	mu    sync.Mutex
	serve func([]byte) []byte // plugin fast path; nil for subprocess
	cmd   *exec.Cmd
	stdin io.WriteCloser
	out   *bufio.Reader
	dead  bool
}

// newRunner spawns the built simulator and verifies the handshake.
func newRunner(bin, fp string) (*runner, error) {
	cmd := exec.Command(bin)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("gensim: stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("gensim: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("gensim: start simulator: %w", err)
	}
	r := &runner{cmd: cmd, stdin: stdin, out: bufio.NewReader(stdout)}
	line, err := r.out.ReadBytes('\n')
	if err != nil {
		r.kill()
		return nil, fmt.Errorf("gensim: handshake read: %w", err)
	}
	var hs wireHandshake
	if err := json.Unmarshal(line, &hs); err != nil {
		r.kill()
		return nil, fmt.Errorf("gensim: handshake parse: %w", err)
	}
	if hs.Proto != ProtoVersion {
		r.kill()
		return nil, fmt.Errorf("gensim: protocol version %d from child, host speaks %d", hs.Proto, ProtoVersion)
	}
	if fp != "" && hs.FP != fp {
		r.kill()
		return nil, fmt.Errorf("gensim: fingerprint mismatch: child %s, want %s", hs.FP, fp)
	}
	return r, nil
}

// newPluginRunner wraps an in-process Serve function (plugin fast path).
func newPluginRunner(serve func([]byte) []byte) *runner {
	return &runner{serve: serve}
}

// run executes one request/response round trip. Serialized: the child
// handles one request at a time.
func (r *runner) run(req *wireReq) (*wireResp, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.serve != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		var resp wireResp
		if err := json.Unmarshal(r.serve(b), &resp); err != nil {
			return nil, fmt.Errorf("gensim: plugin response: %w", err)
		}
		return &resp, nil
	}
	if r.dead {
		return nil, fmt.Errorf("gensim: simulator process is gone")
	}
	b, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	b = append(b, '\n')
	if _, err := r.stdin.Write(b); err != nil {
		r.dead = true
		return nil, fmt.Errorf("gensim: write request: %w", err)
	}
	line, err := r.out.ReadBytes('\n')
	if err != nil {
		r.dead = true
		return nil, fmt.Errorf("gensim: read response: %w", err)
	}
	var resp wireResp
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, fmt.Errorf("gensim: parse response: %w", err)
	}
	return &resp, nil
}

// close asks the child to quit, then reaps it; kill after a grace period.
func (r *runner) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.serve != nil || r.cmd == nil {
		return
	}
	if !r.dead {
		r.stdin.Write([]byte(`{"op":"quit"}` + "\n"))
	}
	r.stdin.Close()
	done := make(chan struct{})
	go func() {
		r.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		r.cmd.Process.Kill()
		<-done
	}
	r.dead = true
}

func (r *runner) kill() {
	if r.cmd != nil && r.cmd.Process != nil {
		r.cmd.Process.Kill()
		r.cmd.Wait()
	}
}
