package gensim_test

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/gensim"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/randmachine"
	"repro/internal/xsim"
)

// TestMain points the build cache at a shared scratch dir so test runs
// don't pollute the user cache but still reuse binaries across tests.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_GENSIM_CACHE") == "" {
		dir, err := os.MkdirTemp("", "gensim-test-cache-*")
		if err == nil {
			os.Setenv("REPRO_GENSIM_CACHE", dir)
			defer os.RemoveAll(dir)
		}
	}
	os.Exit(m.Run())
}

func mustAOT(t *testing.T, d *isdl.Description) *gensim.Engine {
	t.Helper()
	eng, err := gensim.NewEngineFor(d)
	if err != nil {
		t.Fatalf("aot engine: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// runAll loads and runs the same program on the aot engine, the compiled
// closure core and the AST interpreter, then checks final storage state,
// statistics, cycle count and fault text are identical across all three.
func runAll(t *testing.T, d *isdl.Description, p *asm.Program, limit int64) {
	t.Helper()
	engines := map[string]xsim.Engine{}
	aot := mustAOT(t, d)
	engines["aot"] = aot
	compiled := xsim.New(d)
	engines["compiled"] = compiled
	interp := xsim.New(d)
	interp.CompiledCore = false
	engines["interp"] = interp

	errs := map[string]error{}
	for name, e := range engines {
		if err := e.Load(p); err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		errs[name] = e.Run(limit)
	}
	for _, name := range []string{"compiled", "interp"} {
		if (errs[name] == nil) != (errs["aot"] == nil) {
			t.Fatalf("run error mismatch: aot=%v %s=%v", errs["aot"], name, errs[name])
		}
		if errs["aot"] != nil && errs["aot"].Error() != errs[name].Error() {
			t.Fatalf("fault text mismatch:\naot: %s\n%s:  %s", errs["aot"], name, errs[name])
		}
		if engines[name].Halted() != aot.Halted() {
			t.Fatalf("halted mismatch: aot=%v %s=%v", aot.Halted(), name, engines[name].Halted())
		}
		if engines[name].Cycle() != aot.Cycle() {
			t.Fatalf("cycle mismatch: aot=%d %s=%d", aot.Cycle(), name, engines[name].Cycle())
		}
		compareStats(t, name, engines[name].Stats(), aot.Stats())
		compareSnapshots(t, name, engines[name].Snapshot(), aot.Snapshot())
	}
}

func compareStats(t *testing.T, name string, want, got *xsim.Stats) {
	t.Helper()
	if want.Cycles != got.Cycles || want.Instructions != got.Instructions ||
		want.DataStalls != got.DataStalls || want.StructStalls != got.StructStalls ||
		want.Reads != got.Reads || want.Writes != got.Writes {
		t.Fatalf("stats mismatch vs %s:\nwant %+v\ngot  %+v", name, *want, *got)
	}
	if len(want.OpCounts) != len(got.OpCounts) {
		t.Fatalf("op count keys mismatch vs %s: want %v got %v", name, want.OpCounts, got.OpCounts)
	}
	for k, v := range want.OpCounts {
		if got.OpCounts[k] != v {
			t.Fatalf("op count %s mismatch vs %s: want %d got %d", k, name, v, got.OpCounts[k])
		}
	}
	if len(want.FieldIssue) != len(got.FieldIssue) {
		t.Fatalf("field issue length mismatch vs %s", name)
	}
	for i, v := range want.FieldIssue {
		if got.FieldIssue[i] != v {
			t.Fatalf("field %d issue mismatch vs %s: want %d got %d", i, name, v, got.FieldIssue[i])
		}
	}
}

func compareSnapshots(t *testing.T, name string, want, got map[string][]bitvec.Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("snapshot storage sets differ vs %s: want %d got %d", name, len(want), len(got))
	}
	for st, wv := range want {
		gv, ok := got[st]
		if !ok {
			t.Fatalf("snapshot missing storage %s (vs %s)", st, name)
		}
		if len(wv) != len(gv) {
			t.Fatalf("snapshot %s depth mismatch vs %s: want %d got %d", st, name, len(wv), len(gv))
		}
		for i := range wv {
			if !wv[i].Eq(gv[i]) {
				t.Fatalf("snapshot %s[%d] mismatch vs %s: want %s got %s", st, i, name, wv[i], gv[i])
			}
		}
	}
}

func TestAOTEquivalenceToy(t *testing.T) {
	d := machines.Toy()
	for name, src := range map[string]string{
		"arith": `
    mv R1, #5
    mv R2, #3
    add R3, R1, R2
    sub R4, R1, #7
    and R5, R3, #12
    mul R6, R2, #10
    halt`,
		"memory": `
    mv R1, #42
    mv R3, #7
    st @R3, R1
    ld R2, @R3
    add R4, R2, #1
    halt`,
		"control": `
    mv R1, #0
    mv R2, #5
loop:
    add R1, R1, #1
    sub R2, R2, #1
    beq R2, R0, done
    jmp loop
done:
    halt`,
		"stack": `
    mv R1, #9
    push R1
    call fn
    pop R3
    halt
fn:
    pop R2
    push R2
    mv R3, #9
    ret`,
		"mmio": `
    mv R1, #7
    out 241, R1
    halt`,
		"stall": `
    mv R1, #4
    mul R2, R1, #3
    add R3, R2, #1
    mv R6, #0
    ld R4, @R6
    add R5, R4, R3
    halt`,
	} {
		t.Run(name, func(t *testing.T) {
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, d, p, 100000)
		})
	}
}

func TestAOTEquivalenceToyFaults(t *testing.T) {
	d := machines.Toy()
	for name, src := range map[string]string{
		"stack overflow":  "loop:\n push R0\n jmp loop",
		"stack underflow": "pop R1\n halt",
		"illegal":         ".word 0xe00000",
	} {
		t.Run(name, func(t *testing.T) {
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, d, p, 1000)
		})
	}
}

// TestAOTEquivalenceSPAM runs the paper's kernels on both SPAM variants:
// 96-bit instruction words exercise the multi-word image fetch path.
func TestAOTEquivalenceSPAM(t *testing.T) {
	spam := machines.SPAM()
	spam2 := machines.SPAM2()
	s, c := machines.FIRTestVectors(8, 8)
	x, y := machines.VecTestVectors(8)
	for _, tc := range []struct {
		name string
		d    *isdl.Description
		src  string
	}{
		{"fir", spam, machines.FIRSPAM(8, 8, s, c)},
		{"dot", spam, machines.DotSPAM(8, x, y)},
		{"vecadd", spam2, machines.VecAddSPAM2(8, x, y)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := asm.Assemble(tc.d, tc.src)
			if err != nil {
				t.Fatal(err)
			}
			runAll(t, tc.d, p, 1000000)
		})
	}
}

// TestAOTDifferentialRandom is the gauntlet: random machines x random
// programs, aot vs compiled closure core vs AST interpreter, bit-identical
// state and statistics under fixed seeds.
func TestAOTDifferentialRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("differential gauntlet is slow")
	}
	rnd := rand.New(rand.NewSource(7))
	trials := 6
	for trial := 0; trial < trials; trial++ {
		m := randmachine.Generate(rnd, randmachine.Config{})
		d, err := isdl.Parse(m.Source)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for prog := 0; prog < 3; prog++ {
			src := m.RandomProgram(rnd, 24)
			p, err := asm.Assemble(d, src)
			if err != nil {
				t.Fatalf("trial %d prog %d: %v", trial, prog, err)
			}
			t.Run(fmt.Sprintf("m%d_p%d", trial, prog), func(t *testing.T) {
				runAll(t, d, p, 2000)
			})
		}
	}
}

// TestAOTRunContinuation checks the replay-based Run(limit) continuation:
// stepping in chunks lands on the same state as one long run.
func TestAOTRunContinuation(t *testing.T) {
	d := machines.Toy()
	src := `
    mv R1, #0
loop:
    add R1, R1, #1
    sub R2, R1, #10
    beq R2, R0, done
    jmp loop
done:
    halt`
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	aot := mustAOT(t, d)
	if err := aot.Load(p); err != nil {
		t.Fatal(err)
	}
	ref := xsim.New(d)
	if err := ref.Load(p); err != nil {
		t.Fatal(err)
	}
	for !aot.Halted() {
		if err := aot.Run(3); err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(3); err != nil {
			t.Fatal(err)
		}
		if aot.Cycle() != ref.Cycle() {
			t.Fatalf("cycle diverged mid-run: aot=%d ref=%d", aot.Cycle(), ref.Cycle())
		}
	}
	if !ref.Halted() {
		t.Fatal("reference did not halt in lockstep")
	}
	compareStats(t, "compiled", ref.Stats(), aot.Stats())
}

// TestFallbackWhenDisabled: with the backend disabled the engine ladder
// degrades to the compiled core and reports why.
func TestFallbackWhenDisabled(t *testing.T) {
	t.Setenv("REPRO_GENSIM_DISABLE", "1")
	if _, err := gensim.Build(machines.Toy()); !errors.Is(err, gensim.ErrUnavailable) {
		t.Fatalf("Build = %v, want ErrUnavailable", err)
	}
	eng, info, err := xsim.NewEngine(machines.Toy(), xsim.BackendAOT)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if info.Used != xsim.BackendCompiled {
		t.Fatalf("Used = %s, want compiled fallback", info.Used)
	}
	if info.FallbackReason == "" {
		t.Fatal("fallback reason empty")
	}
	if _, ok := eng.(*xsim.Simulator); !ok {
		t.Fatalf("fallback engine is %T, want *xsim.Simulator", eng)
	}
}

// TestUnsupportedDescriptionFallsBack: RTL over a >64-bit storage is
// outside the compilable subset — generation refuses, NewEngine falls back.
func TestUnsupportedDescriptionFallsBack(t *testing.T) {
	src := `
Machine wide;
Format 8;
Section Global_Definitions
Section Storage
InstructionMemory IMEM width 8 depth 32;
Register ACC width 96;
ControlRegister HLT width 1;
ProgramCounter PC width 5;
Section Instruction_Set
Field F:
  op inc
    Encode { I[7:4] = 0x1; }
    Action { ACC <- ACC + 1; }
  op halt
    Encode { I[7:4] = 0x2; }
    Action { HLT <- 0b1; }
`
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, genErr := gensim.Generate(d)
	if !gensim.IsUnsupported(genErr) {
		t.Fatalf("Generate = %v, want UnsupportedError", genErr)
	}
	eng, info, err := xsim.NewEngine(d, xsim.BackendAOT)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if info.Used != xsim.BackendCompiled || info.FallbackReason == "" {
		t.Fatalf("info = %+v, want compiled fallback with reason", info)
	}
}

// TestBuildCache: the second build of the same description is a cache hit
// serving the same binary.
func TestBuildCache(t *testing.T) {
	t.Setenv("REPRO_GENSIM_CACHE", t.TempDir())
	d := machines.Toy()
	br1, err := gensim.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if br1.CacheHit {
		t.Fatal("first build reported a cache hit")
	}
	br2, err := gensim.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if !br2.CacheHit {
		t.Fatal("second build missed the cache")
	}
	if br1.Bin != br2.Bin {
		t.Fatalf("cache returned a different binary: %s vs %s", br1.Bin, br2.Bin)
	}
	if _, err := os.Stat(filepath.Join(br1.Dir, "main.go")); err != nil {
		t.Fatalf("cache entry is missing the generated source: %v", err)
	}
}

// TestFingerprintSensitivity: different descriptions get different cache
// keys; identical descriptions share one.
func TestFingerprintSensitivity(t *testing.T) {
	a := gensim.Fingerprint(machines.Toy())
	b := gensim.Fingerprint(machines.Toy())
	c := gensim.Fingerprint(machines.SPAM())
	if a != b {
		t.Fatal("fingerprint not deterministic")
	}
	if a == c {
		t.Fatal("distinct machines share a fingerprint")
	}
}
