package gensim

import (
	"fmt"
	"strings"

	"repro/internal/isdl"
)

// This file compiles RTL expressions and statements into Go source. Every
// construct mirrors the interpreter in internal/xsim/eval.go bit for bit:
// evaluation order (and therefore read counting), canonical-width masking,
// shift/divide edge cases, and fault points. Values stay in uint64 — the
// generator refuses descriptions whose RTL touches anything wider.

// cw is an indented code writer.
type cw struct {
	sb     strings.Builder
	indent int
}

func (w *cw) ln(format string, args ...any) {
	for i := 0; i < w.indent; i++ {
		w.sb.WriteByte('\t')
	}
	fmt.Fprintf(&w.sb, format, args...)
	w.sb.WriteByte('\n')
}

func (w *cw) in()  { w.indent++ }
func (w *cw) out() { w.indent-- }

// scope is one parameter binding level: an operation's parameters, or one
// option's parameters when compiling inside a non-terminal. path uniquely
// names the level for method memoization.
type scope struct {
	og   *opGen
	locs []paramLoc
	path string
}

func (sc *scope) find(p *isdl.Param) *paramLoc {
	for i := range sc.locs {
		if sc.locs[i].p == p {
			return &sc.locs[i]
		}
	}
	return nil
}

func (sc *scope) sub(pl *paramLoc, oi int) *scope {
	return &scope{
		og:   sc.og,
		locs: pl.opts[oi].params,
		path: sc.path + "_" + ident(pl.p.Name) + "_o" + fmt.Sprint(oi),
	}
}

func ident(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			b.WriteRune(r)
		} else {
			b.WriteByte('x')
		}
	}
	return b.String()
}

// masked truncates an expression to w bits (canonical-form invariant).
func masked(s string, w int) string {
	if w >= 64 {
		return "(" + s + ")"
	}
	return "(" + s + ") & " + hexU(maskU(w))
}

func (g *gen) checkWidth(w int, what string) error {
	if w < 1 || w > 64 {
		return g.unsupported("%s is %d bits wide (want 1..64)", what, w)
	}
	return nil
}

// expr compiles an RTL expression to a pure Go expression over the decoded
// argument array `a` and the machine `m`. Side effects (read counting, pop)
// live in method calls inside the expression, so Go's left-to-right
// evaluation preserves the interpreter's effect order.
func (g *gen) expr(e isdl.Expr, sc *scope) (string, error) {
	if err := g.checkWidth(e.Width(), "expression"); err != nil {
		return "", err
	}
	switch e := e.(type) {
	case *isdl.Lit:
		return hexU(e.Val.Uint64()), nil

	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			if e.Storage.Width > 64 {
				return "", g.unsupported("storage %s is %d bits wide", e.Storage.Name, e.Storage.Width)
			}
			return fmt.Sprintf("m.rd(%d, 0, %d)", g.sid[e.Storage.Name], e.Storage.Depth), nil
		case e.AliasTo != nil:
			name, err := g.aliasMethod(e.AliasTo)
			if err != nil {
				return "", err
			}
			return "m." + name + "()", nil
		case e.Param != nil:
			pl := sc.find(e.Param)
			if pl == nil {
				return "", g.unsupported("parameter %s not bound in scope", e.Param.Name)
			}
			if pl.p.Token != nil {
				return fmt.Sprintf("a[%d]", pl.slot), nil
			}
			name, err := g.valueMethod(sc, pl)
			if err != nil {
				return "", err
			}
			return "m." + name + "(a)", nil
		}
		return "", g.unsupported("unresolved reference %s", e.Name)

	case *isdl.Index:
		if e.Storage == nil {
			return "", g.unsupported("unresolved indexed access %s", e.Name)
		}
		if e.Storage.Width > 64 {
			return "", g.unsupported("storage %s is %d bits wide", e.Storage.Name, e.Storage.Width)
		}
		// The index expression evaluates (and counts its reads) before the
		// element read, exactly like eval's Index case.
		idx, err := g.expr(e.Idx, sc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("m.rd(%d, int(%s), %d)", g.sid[e.Storage.Name], idx, e.Storage.Depth), nil

	case *isdl.SliceE:
		x, err := g.expr(e.X, sc)
		if err != nil {
			return "", err
		}
		w := e.Hi - e.Lo + 1
		if e.Lo == 0 && w == e.X.Width() {
			return x, nil
		}
		if e.Lo == 0 {
			return masked(x, w), nil
		}
		return masked(fmt.Sprintf("%s >> %d", x, e.Lo), w), nil

	case *isdl.Unary:
		x, err := g.expr(e.X, sc)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case "-":
			return masked("-"+x, e.W), nil
		case "~":
			return masked("^"+x, e.W), nil
		case "!":
			return fmt.Sprintf("b2u(%s == 0)", x), nil
		}
		return "", g.unsupported("unary operator %q", e.Op)

	case *isdl.Binary:
		x, err := g.expr(e.X, sc)
		if err != nil {
			return "", err
		}
		y, err := g.expr(e.Y, sc)
		if err != nil {
			return "", err
		}
		// Short-circuit forms skip the right operand — and its reads —
		// exactly like the interpreter.
		switch e.Op {
		case "&&":
			return fmt.Sprintf("b2u(%s != 0 && %s != 0)", x, y), nil
		case "||":
			return fmt.Sprintf("b2u(%s != 0 || %s != 0)", x, y), nil
		}
		return g.binOp(e.Op, x, y, e.X.Width(), e.W)

	case *isdl.Call:
		return g.call(e, sc)
	}
	return "", g.unsupported("expression form %T", e)
}

// binOp compiles a non-short-circuit binary operator (shared with the
// read-set static evaluator, which routes through the same evalBinary).
func (g *gen) binOp(op, x, y string, xw, w int) (string, error) {
	switch op {
	case "+":
		return masked(x+" + "+y, w), nil
	case "-":
		return masked(x+" - "+y, w), nil
	case "*":
		return masked(x+" * "+y, w), nil
	case "/":
		return fmt.Sprintf("hdivu(%s, %s, %s)", x, y, hexU(maskU(w))), nil
	case "%":
		return fmt.Sprintf("hmodu(%s, %s)", x, y), nil
	case "&":
		return "(" + x + " & " + y + ")", nil
	case "|":
		return "(" + x + " | " + y + ")", nil
	case "^":
		return "(" + x + " ^ " + y + ")", nil
	case "<<":
		return fmt.Sprintf("hshl(%s, int(%s), %d, %s)", x, y, xw, hexU(maskU(xw))), nil
	case ">>":
		return fmt.Sprintf("hshr(%s, int(%s), %d, %s)", x, y, xw, hexU(maskU(xw))), nil
	case "==":
		return fmt.Sprintf("b2u(%s == %s)", x, y), nil
	case "!=":
		return fmt.Sprintf("b2u(%s != %s)", x, y), nil
	case "<":
		return fmt.Sprintf("b2u(%s < %s)", x, y), nil
	case "<=":
		return fmt.Sprintf("b2u(%s <= %s)", x, y), nil
	case ">":
		return fmt.Sprintf("b2u(%s > %s)", x, y), nil
	case ">=":
		return fmt.Sprintf("b2u(%s >= %s)", x, y), nil
	}
	return "", g.unsupported("binary operator %q", op)
}

// extCall compiles sext/zext/trunc width adjustment from fw to tw bits
// (bitvec: SignExt/ZeroExt truncate when narrowing, Trunc zero-extends when
// widening).
func extCall(fn, x string, fw, tw int) string {
	if tw == fw {
		return x
	}
	if tw < fw {
		return masked(x, tw)
	}
	if fn != "sext" {
		return x // canonical value is already zero-extended
	}
	hi := maskU(tw) &^ maskU(fw)
	return fmt.Sprintf("hsext(%s, %d, %s)", x, fw-1, hexU(hi))
}

func (g *gen) call(e *isdl.Call, sc *scope) (string, error) {
	arg := func(i int) (string, error) { return g.expr(e.Args[i], sc) }
	switch e.Fn {
	case "pop":
		ref, ok := e.Args[0].(*isdl.Ref)
		if !ok {
			return "", g.unsupported("pop target form")
		}
		st, ok := g.d.StorageByName[ref.Name]
		if !ok {
			return "", g.unsupported("pop of unknown storage %s", ref.Name)
		}
		sid := g.sid[st.Name]
		if st.Kind != isdl.StStack {
			name := fmt.Sprintf("popbad%d", sid)
			if !g.emitted[name] {
				g.emitted[name] = true
				w := &cw{}
				w.ln("func (m *mach) %s() uint64 {", name)
				w.in()
				w.ln("panic(&simErr{m.curPC, %q})", fmt.Sprintf("state: %s is not a stack", st.Name))
				w.out()
				w.ln("}")
				w.ln("")
				g.methods = append(g.methods, w.sb.String())
			}
			return "m." + name + "()", nil
		}
		return fmt.Sprintf("m.pop%d()", sid), nil
	case "push":
		return "", g.unsupported("push used as a value")
	case "sext", "zext", "trunc":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		return extCall(e.Fn, x, e.Args[0].Width(), e.W), nil
	case "carry":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		y, err := arg(1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("b2u(hcarry(%s, %s, %d))", x, y, e.Args[0].Width()), nil
	case "borrow":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		y, err := arg(1)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("b2u(%s < %s)", x, y), nil
	case "addov", "subov":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		y, err := arg(1)
		if err != nil {
			return "", err
		}
		fn := "haddov"
		if e.Fn == "subov" {
			fn = "hsubov"
		}
		return fmt.Sprintf("b2u(%s(%s, %s, %d))", fn, x, y, e.Args[0].Width()-1), nil
	case "slt", "sle", "sgt", "sge":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		y, err := arg(1)
		if err != nil {
			return "", err
		}
		op := map[string]string{"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}[e.Fn]
		w := e.Args[0].Width()
		return fmt.Sprintf("b2u(sxt(%s, %d) %s sxt(%s, %d))", x, w, op, y, w), nil
	case "asr":
		x, err := arg(0)
		if err != nil {
			return "", err
		}
		y, err := arg(1)
		if err != nil {
			return "", err
		}
		w := e.Args[0].Width()
		return fmt.Sprintf("hasr(%s, int(%s), %d, %s)", x, y, w, hexU(maskU(w))), nil
	case "concat":
		acc, err := arg(0)
		if err != nil {
			return "", err
		}
		for i := 1; i < len(e.Args); i++ {
			ai, err := arg(i)
			if err != nil {
				return "", err
			}
			acc = fmt.Sprintf("(%s<<%d | %s)", acc, e.Args[i].Width(), ai)
		}
		return acc, nil
	}
	return "", g.unsupported("builtin %s", e.Fn)
}

// loc compiles an lvalue to a wr expression (evalLoc).
func (g *gen) loc(e isdl.Expr, sc *scope) (string, error) {
	switch e := e.(type) {
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			return fmt.Sprintf("wr{sid: %d, idx: 0, hi: -1, lo: -1}", g.sid[e.Storage.Name]), nil
		case e.AliasTo != nil:
			a := e.AliasTo
			st, ok := g.d.StorageByName[a.Target]
			if !ok {
				return "", g.unsupported("alias %s targets unknown storage %s", a.Name, a.Target)
			}
			hi, lo := -1, -1
			if a.Sliced {
				hi, lo = a.Hi, a.Lo
			}
			// The write index stays raw (evalLoc does not wrap); apply wraps.
			return fmt.Sprintf("wr{sid: %d, idx: %d, hi: %d, lo: %d}", g.sid[st.Name], int(a.Index), hi, lo), nil
		case e.Param != nil:
			pl := sc.find(e.Param)
			if pl == nil {
				return "", g.unsupported("parameter %s not bound in scope", e.Param.Name)
			}
			if pl.p.NT == nil {
				return "", g.unsupported("token parameter %s used as lvalue", e.Param.Name)
			}
			name, err := g.locMethod(sc, pl)
			if err != nil {
				return "", err
			}
			return "m." + name + "(a)", nil
		}
		return "", g.unsupported("unresolved lvalue %s", e.Name)
	case *isdl.Index:
		if e.Storage == nil {
			return "", g.unsupported("unresolved indexed lvalue %s", e.Name)
		}
		idx, err := g.expr(e.Idx, sc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("wr{sid: %d, idx: int(%s), hi: -1, lo: -1}", g.sid[e.Storage.Name], idx), nil
	case *isdl.SliceE:
		base, err := g.loc(e.X, sc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("sliceLoc(%s, %d, %d)", base, e.Hi, e.Lo), nil
	}
	return "", g.unsupported("lvalue form %T", e)
}

// stmts compiles a statement list into w (execStmts).
func (g *gen) stmts(list []isdl.Stmt, sc *scope, w *cw) error {
	for _, s := range list {
		switch s := s.(type) {
		case *isdl.Assign:
			rhs, err := g.expr(s.RHS, sc)
			if err != nil {
				return err
			}
			n := g.tmp
			g.tmp++
			w.ln("v%d := uint64(%s)", n, rhs)
			lhs, err := g.loc(s.LHS, sc)
			if err != nil {
				return err
			}
			w.ln("ph.wrs = append(ph.wrs, wrv(%s, v%d))", lhs, n)
		case *isdl.If:
			cond, err := g.expr(s.Cond, sc)
			if err != nil {
				return err
			}
			w.ln("if %s != 0 {", cond)
			w.in()
			if err := g.stmts(s.Then, sc, w); err != nil {
				return err
			}
			w.out()
			if len(s.Else) > 0 {
				w.ln("} else {")
				w.in()
				if err := g.stmts(s.Else, sc, w); err != nil {
					return err
				}
				w.out()
			}
			w.ln("}")
		case *isdl.ExprStmt:
			call, ok := s.X.(*isdl.Call)
			if !ok {
				continue
			}
			switch call.Fn {
			case "push":
				ref, ok := call.Args[0].(*isdl.Ref)
				if !ok {
					return g.unsupported("push target form")
				}
				st, ok := g.d.StorageByName[ref.Name]
				if !ok {
					return g.unsupported("push to unknown storage %s", ref.Name)
				}
				sid := g.sid[st.Name]
				if st.Kind != isdl.StStack {
					g.pushBad[sid] = st.Name
				}
				v, err := g.expr(call.Args[1], sc)
				if err != nil {
					return err
				}
				n := g.tmp
				g.tmp++
				w.ln("v%d := uint64(%s)", n, v)
				w.ln("ph.pushes = append(ph.pushes, pushOp{sid: %d, val: v%d})", sid, n)
			case "pop":
				// A pop statement pops at exec time and drops the value.
				x, err := g.call(call, sc)
				if err != nil {
					return err
				}
				w.ln("_ = %s", x)
			}
			// Other builtins in statement position are ignored (execStmts).
		}
	}
	return nil
}

// valueMethod emits (once) and names the method computing a non-terminal
// parameter's value: a switch over the decoded option index.
func (g *gen) valueMethod(sc *scope, pl *paramLoc) (string, error) {
	name := fmt.Sprintf("v%d%s_%s", sc.og.id, sc.path, ident(pl.p.Name))
	if g.emitted[name] {
		return name, nil
	}
	g.emitted[name] = true
	w := &cw{}
	w.ln("func (m *mach) %s(a []uint64) uint64 {", name)
	w.in()
	w.ln("switch a[%d] {", pl.slot)
	for oi, os := range pl.opts {
		e, err := g.expr(os.opt.Value, sc.sub(pl, oi))
		if err != nil {
			return "", err
		}
		w.ln("case %d:", oi)
		w.in()
		w.ln("return %s", e)
		w.out()
	}
	w.ln("}")
	w.ln("return 0")
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return name, nil
}

// locMethod is valueMethod's lvalue twin: the option's value expression
// compiled as a write destination.
func (g *gen) locMethod(sc *scope, pl *paramLoc) (string, error) {
	name := fmt.Sprintf("l%d%s_%s", sc.og.id, sc.path, ident(pl.p.Name))
	if g.emitted[name] {
		return name, nil
	}
	g.emitted[name] = true
	w := &cw{}
	w.ln("func (m *mach) %s(a []uint64) wr {", name)
	w.in()
	w.ln("switch a[%d] {", pl.slot)
	for oi, os := range pl.opts {
		l, err := g.loc(os.opt.Value, sc.sub(pl, oi))
		if err != nil {
			return "", err
		}
		w.ln("case %d:", oi)
		w.in()
		w.ln("return %s", l)
		w.out()
	}
	w.ln("}")
	w.ln("return wr{hi: -1, lo: -1}")
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return name, nil
}

// aliasMethod emits (once) the counted read of an alias: element fetch with
// the gen-time wrapped index plus the optional bit slice.
func (g *gen) aliasMethod(a *isdl.Alias) (string, error) {
	st, ok := g.d.StorageByName[a.Target]
	if !ok {
		return "", g.unsupported("alias %s targets unknown storage %s", a.Name, a.Target)
	}
	if st.Width > 64 {
		return "", g.unsupported("storage %s is %d bits wide", st.Name, st.Width)
	}
	name := fmt.Sprintf("rda%d", g.aliasIdx[a])
	if g.emitted[name] {
		return name, nil
	}
	g.emitted[name] = true
	sid := g.sid[st.Name]
	idx := genWrap(int(a.Index), st.Depth)
	w := &cw{}
	w.ln("// %s reads alias %s = %s.", name, a.Name, a.Target)
	w.ln("func (m *mach) %s() uint64 {", name)
	w.in()
	w.ln("m.reads++")
	if a.Sliced {
		sw := a.Hi - a.Lo + 1
		if a.Lo == 0 {
			w.ln("return m.st[%d][%d] & %s", sid, idx, hexU(maskU(sw)))
		} else {
			w.ln("return m.st[%d][%d] >> %d & %s", sid, idx, a.Lo, hexU(maskU(sw)))
		}
	} else {
		w.ln("return m.st[%d][%d]", sid, idx)
	}
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return name, nil
}

// emitActionMethod compiles one operation's action phase.
func (g *gen) emitActionMethod(og *opGen) error {
	w := &cw{}
	w.ln("func (m *mach) ac%d(a []uint64, ph *phaseBuf) {", og.id)
	w.in()
	if err := g.stmts(og.op.Action, &scope{og: og, locs: og.params}, w); err != nil {
		return err
	}
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return nil
}

// emitSideMethod compiles one operation's side-effect phase: the
// operation's own statements, then each decoded option's side effects in
// parameter declaration order, depth first (execOptionSideEffects).
func (g *gen) emitSideMethod(og *opGen) error {
	w := &cw{}
	w.ln("func (m *mach) se%d(a []uint64, ph *phaseBuf) {", og.id)
	w.in()
	sc := &scope{og: og, locs: og.params}
	if err := g.stmts(og.op.SideEffect, sc, w); err != nil {
		return err
	}
	if err := g.emitOptSides(w, sc); err != nil {
		return err
	}
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return nil
}

func (g *gen) emitOptSides(w *cw, sc *scope) error {
	for i := range sc.locs {
		pl := &sc.locs[i]
		if pl.p.NT == nil || !plHasSide(pl) {
			continue
		}
		w.ln("switch a[%d] {", pl.slot)
		for oi, os := range pl.opts {
			sub := sc.sub(pl, oi)
			body := &cw{indent: w.indent + 1}
			if err := g.stmts(os.opt.SideEffect, sub, body); err != nil {
				return err
			}
			if err := g.emitOptSides(body, sub); err != nil {
				return err
			}
			if body.sb.Len() == 0 {
				continue
			}
			w.ln("case %d:", oi)
			w.sb.WriteString(body.sb.String())
		}
		w.ln("}")
	}
	return nil
}

func plHasSide(pl *paramLoc) bool {
	for _, os := range pl.opts {
		if len(os.opt.SideEffect) > 0 || paramsHaveSide(os.params) {
			return true
		}
	}
	return false
}
