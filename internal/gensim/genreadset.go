package gensim

import (
	"fmt"

	"repro/internal/isdl"
)

// This file generates the per-operation read-set methods that feed the
// data-hazard interlock. The interpreter (internal/xsim/readset.go) walks
// the RTL per decoded instruction; here the walk runs at generation time,
// once per combination of decoded non-terminal options, and each
// combination becomes a switch case over the decoded option indices. Index
// expressions that the interpreter's staticEval can decide are compiled to
// the same value over the argument array; the rest degrade to the same
// whole-storage wildcard (index -1).

// maxCombos bounds the option-combination product per operation; a
// description beyond it is unsupported (falls back to the closure core).
const maxCombos = 512

type choice struct {
	pl  *paramLoc
	opt int
}

// comboCount is the size of the option cross-product for a parameter list.
func comboCount(locs []paramLoc) int {
	n := 1
	for i := range locs {
		pl := &locs[i]
		if pl.p.NT == nil {
			continue
		}
		s := 0
		for _, os := range pl.opts {
			s += comboCount(os.params)
			if s > maxCombos {
				return s
			}
		}
		n *= s
		if n > maxCombos {
			return n
		}
	}
	return n
}

// combosOf enumerates every assignment of options to non-terminal
// parameters, recursively.
func combosOf(locs []paramLoc) [][]choice {
	out := [][]choice{{}}
	for i := range locs {
		pl := &locs[i]
		if pl.p.NT == nil {
			continue
		}
		var next [][]choice
		for oi, os := range pl.opts {
			for _, sub := range combosOf(os.params) {
				for _, base := range out {
					c := make([]choice, 0, len(base)+1+len(sub))
					c = append(c, base...)
					c = append(c, choice{pl: pl, opt: oi})
					c = append(c, sub...)
					next = append(next, c)
				}
			}
		}
		out = next
	}
	return out
}

// rsctx compiles the read-set walk for one fixed option assignment.
type rsctx struct {
	g      *gen
	assign map[*paramLoc]int
}

func findPL(locs []paramLoc, p *isdl.Param) *paramLoc {
	for i := range locs {
		if locs[i].p == p {
			return &locs[i]
		}
	}
	return nil
}

// emitRS generates func (m *mach) rs<id>(a []uint64) []rloc.
func (g *gen) emitRS(og *opGen) error {
	if n := comboCount(og.params); n > maxCombos {
		return g.unsupported("operation %s has %d option combinations (max %d)", og.op.QualName(), n, maxCombos)
	}
	combos := combosOf(og.params)
	type comboBody struct {
		cond string
		body string
	}
	var cases []comboBody
	empty := true
	for _, combo := range combos {
		c := &rsctx{g: g, assign: map[*paramLoc]int{}}
		var conds []string
		for _, ch := range combo {
			c.assign[ch.pl] = ch.opt
			conds = append(conds, fmt.Sprintf("a[%d] == %d", ch.pl.slot, ch.opt))
		}
		body := &cw{indent: 1}
		if err := c.rstmts(og.op.Action, og.params, body); err != nil {
			return err
		}
		if err := c.rstmts(og.op.SideEffect, og.params, body); err != nil {
			return err
		}
		if err := c.roptEffects(og.params, body); err != nil {
			return err
		}
		if body.sb.Len() > 0 {
			empty = false
		}
		cond := "true"
		if len(conds) > 0 {
			cond = joinAnd(conds)
		}
		cases = append(cases, comboBody{cond: cond, body: body.sb.String()})
	}

	w := &cw{}
	w.ln("func (m *mach) rs%d(a []uint64) []rloc {", og.id)
	w.in()
	switch {
	case empty:
		w.ln("return nil")
	case len(cases) == 1:
		w.ln("var out []rloc")
		w.sb.WriteString(reindent(cases[0].body, w.indent))
		w.ln("return out")
	default:
		w.ln("var out []rloc")
		w.ln("switch {")
		for _, cb := range cases {
			w.ln("case %s:", cb.cond)
			w.sb.WriteString(reindent(cb.body, w.indent+1))
		}
		w.ln("}")
		w.ln("return out")
	}
	w.out()
	w.ln("}")
	w.ln("")
	g.methods = append(g.methods, w.sb.String())
	return nil
}

func joinAnd(conds []string) string {
	s := conds[0]
	for _, c := range conds[1:] {
		s += " && " + c
	}
	return s
}

// reindent shifts a body emitted at indent 1 to the target indent.
func reindent(body string, indent int) string {
	if indent == 1 || body == "" {
		return body
	}
	pad := ""
	for i := 1; i < indent; i++ {
		pad += "\t"
	}
	var out string
	for len(body) > 0 {
		i := 0
		for i < len(body) && body[i] != '\n' {
			i++
		}
		out += pad + body[:i+1]
		body = body[i+1:]
	}
	return out
}

// roptEffects mirrors optionEffects: per non-terminal parameter in
// declaration order, the chosen option's side effects then its own
// parameters, depth first.
func (c *rsctx) roptEffects(locs []paramLoc, w *cw) error {
	for i := range locs {
		pl := &locs[i]
		if pl.p.NT == nil {
			continue
		}
		oi := c.assign[pl]
		os := pl.opts[oi]
		if err := c.rstmts(os.opt.SideEffect, os.params, w); err != nil {
			return err
		}
		if err := c.roptEffects(os.params, w); err != nil {
			return err
		}
	}
	return nil
}

// rstmts mirrors readCollector.stmts.
func (c *rsctx) rstmts(list []isdl.Stmt, locs []paramLoc, w *cw) error {
	for _, s := range list {
		switch s := s.(type) {
		case *isdl.Assign:
			if err := c.rexpr(s.RHS, locs, w); err != nil {
				return err
			}
			if err := c.rlhs(s.LHS, locs, w); err != nil {
				return err
			}
		case *isdl.If:
			if err := c.rexpr(s.Cond, locs, w); err != nil {
				return err
			}
			if err := c.rstmts(s.Then, locs, w); err != nil {
				return err
			}
			if err := c.rstmts(s.Else, locs, w); err != nil {
				return err
			}
		case *isdl.ExprStmt:
			if err := c.rexpr(s.X, locs, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// rlhs mirrors readCollector.lhsIndices: only index computations on the
// write path are reads.
func (c *rsctx) rlhs(e isdl.Expr, locs []paramLoc, w *cw) error {
	switch e := e.(type) {
	case *isdl.Index:
		return c.rexpr(e.Idx, locs, w)
	case *isdl.SliceE:
		return c.rlhs(e.X, locs, w)
	case *isdl.Ref:
		if e.Param != nil && e.Param.NT != nil {
			pl := findPL(locs, e.Param)
			if pl == nil {
				return c.g.unsupported("parameter %s not bound in scope", e.Param.Name)
			}
			oi := c.assign[pl]
			return c.rlhs(pl.opts[oi].opt.Value, pl.opts[oi].params, w)
		}
	}
	return nil
}

// rexpr mirrors readCollector.expr.
func (c *rsctx) rexpr(e isdl.Expr, locs []paramLoc, w *cw) error {
	switch e := e.(type) {
	case *isdl.Lit:
		return nil
	case *isdl.Ref:
		switch {
		case e.Storage != nil:
			idx := 0
			if e.Storage.Kind == isdl.StStack {
				idx = -1
			}
			w.ln("out = addr(out, %d, %d)", c.g.sid[e.Storage.Name], idx)
		case e.AliasTo != nil:
			a := e.AliasTo
			st, ok := c.g.d.StorageByName[a.Target]
			if !ok {
				return c.g.unsupported("alias %s targets unknown storage %s", a.Name, a.Target)
			}
			// Raw alias index, exactly like the collector.
			w.ln("out = addr(out, %d, %d)", c.g.sid[st.Name], int(a.Index))
		case e.Param != nil && e.Param.NT != nil:
			pl := findPL(locs, e.Param)
			if pl == nil {
				return c.g.unsupported("parameter %s not bound in scope", e.Param.Name)
			}
			oi := c.assign[pl]
			return c.rexpr(pl.opts[oi].opt.Value, pl.opts[oi].params, w)
		}
		return nil
	case *isdl.Index:
		// Index expression reads first, then the element: static index if
		// decidable (wrapped with the collector's %), else a wildcard.
		if err := c.rexpr(e.Idx, locs, w); err != nil {
			return err
		}
		if e.Storage == nil {
			return nil
		}
		sid := c.g.sid[e.Storage.Name]
		s, ok, err := c.rstatic(e.Idx, locs)
		if err != nil {
			return err
		}
		if !ok {
			w.ln("out = addr(out, %d, -1)", sid)
			return nil
		}
		if e.Storage.Depth > 0 {
			w.ln("out = addr(out, %d, int(%s)%%%d)", sid, s, e.Storage.Depth)
		} else {
			w.ln("out = addr(out, %d, int(%s))", sid, s)
		}
		return nil
	case *isdl.SliceE:
		return c.rexpr(e.X, locs, w)
	case *isdl.Unary:
		return c.rexpr(e.X, locs, w)
	case *isdl.Binary:
		// The collector traverses both operands even for && / ||.
		if err := c.rexpr(e.X, locs, w); err != nil {
			return err
		}
		return c.rexpr(e.Y, locs, w)
	case *isdl.Call:
		if e.Fn == "pop" {
			// The whole stack, any element; no argument recursion.
			if ref, ok := e.Args[0].(*isdl.Ref); ok {
				if st, ok := c.g.d.StorageByName[ref.Name]; ok {
					w.ln("out = addr(out, %d, -1)", c.g.sid[st.Name])
				}
			}
			return nil
		}
		for i, a := range e.Args {
			if i == 1 && (e.Fn == "sext" || e.Fn == "zext" || e.Fn == "trunc") {
				continue // width argument
			}
			if err := c.rexpr(a, locs, w); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// rstatic mirrors staticEval: compiles an index expression that is
// decidable at decode time to a Go expression over the argument array.
func (c *rsctx) rstatic(e isdl.Expr, locs []paramLoc) (string, bool, error) {
	if w := e.Width(); w < 1 || w > 64 {
		return "", false, c.g.unsupported("expression is %d bits wide (want 1..64)", w)
	}
	switch e := e.(type) {
	case *isdl.Lit:
		return hexU(e.Val.Uint64()), true, nil
	case *isdl.Ref:
		if e.Param == nil {
			return "", false, nil
		}
		pl := findPL(locs, e.Param)
		if pl == nil {
			return "", false, nil
		}
		if pl.p.Token != nil {
			return fmt.Sprintf("a[%d]", pl.slot), true, nil
		}
		oi := c.assign[pl]
		return c.rstatic(pl.opts[oi].opt.Value, pl.opts[oi].params)
	case *isdl.SliceE:
		x, ok, err := c.rstatic(e.X, locs)
		if !ok || err != nil {
			return "", false, err
		}
		w := e.Hi - e.Lo + 1
		if e.Lo == 0 && w == e.X.Width() {
			return x, true, nil
		}
		if e.Lo == 0 {
			return masked(x, w), true, nil
		}
		return masked(fmt.Sprintf("%s >> %d", x, e.Lo), w), true, nil
	case *isdl.Unary:
		x, ok, err := c.rstatic(e.X, locs)
		if !ok || err != nil {
			return "", false, err
		}
		switch e.Op {
		case "-":
			return masked("-"+x, e.W), true, nil
		case "~":
			return masked("^"+x, e.W), true, nil
		case "!":
			return fmt.Sprintf("b2u(%s == 0)", x), true, nil
		}
		return "", false, nil
	case *isdl.Binary:
		// && and || route through evalBinary in staticEval, which rejects
		// them — so they are not static.
		if e.Op == "&&" || e.Op == "||" {
			return "", false, nil
		}
		x, ok, err := c.rstatic(e.X, locs)
		if !ok || err != nil {
			return "", false, err
		}
		y, ok, err := c.rstatic(e.Y, locs)
		if !ok || err != nil {
			return "", false, err
		}
		s, err := c.g.binOp(e.Op, x, y, e.X.Width(), e.W)
		if err != nil {
			return "", false, nil
		}
		return s, true, nil
	case *isdl.Call:
		switch e.Fn {
		case "sext", "zext", "trunc":
			x, ok, err := c.rstatic(e.Args[0], locs)
			if !ok || err != nil {
				return "", false, err
			}
			return extCall(e.Fn, x, e.Args[0].Width(), e.W), true, nil
		}
		return "", false, nil
	}
	return "", false, nil
}
