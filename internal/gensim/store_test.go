package gensim

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/blob"
	"repro/internal/machines"
)

// TestBuildPublishesAndFetchesFromStore: a build with a store attached
// publishes the binary; a second build against a cold local cache (new
// REPRO_GENSIM_CACHE) is served from the store without invoking the
// toolchain's build step, and the fetched binary runs.
func TestBuildPublishesAndFetchesFromStore(t *testing.T) {
	if Disabled() {
		t.Skip("no Go toolchain (or REPRO_GENSIM_DISABLE set)")
	}
	st := blob.NewMem()
	SetStore(st)
	t.Cleanup(func() { SetStore(nil) })

	t.Setenv("REPRO_GENSIM_CACHE", filepath.Join(t.TempDir(), "cache-a"))
	d := machines.Toy()
	first, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if first.StoreHit {
		t.Fatal("first build claims a store hit on an empty store")
	}
	if ok, err := st.Has(storeNS(), blob.KeyOf(first.Fingerprint)); err != nil || !ok {
		t.Fatalf("binary not published to store: has=%v err=%v", ok, err)
	}

	// A different machine (modeled as a cold local cache) fetches instead
	// of building.
	t.Setenv("REPRO_GENSIM_CACHE", filepath.Join(t.TempDir(), "cache-b"))
	second, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if !second.StoreHit || !second.CacheHit {
		t.Fatalf("second build = %+v, want store-served cache hit", second)
	}
	fi, err := os.Stat(second.Bin)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm()&0o100 == 0 {
		t.Errorf("fetched binary not executable: %v", fi.Mode())
	}
	want, _ := os.ReadFile(first.Bin)
	got, _ := os.ReadFile(second.Bin)
	if len(got) == 0 || string(got) != string(want) {
		t.Fatalf("fetched binary differs from built one (%d vs %d bytes)", len(got), len(want))
	}

	// Third build: pure local hit, no store round trip needed.
	third, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit || third.StoreHit {
		t.Fatalf("third build = %+v, want local cache hit", third)
	}
}
