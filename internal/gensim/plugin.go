package gensim

import (
	"os"
	"path/filepath"
	"plugin"
)

// Plugin fast path: with REPRO_GENSIM_PLUGIN=1 the generated simulator is
// additionally built as a Go plugin and its Serve function called
// in-process, skipping the subprocess round trip. Plugins need cgo and a C
// toolchain and cannot be unloaded, so this stays opt-in; every failure
// falls back silently to the subprocess.

// loadPlugin tries to build and open the plugin for a completed build.
// Returns nil (fall back to subprocess) on any failure.
func loadPlugin(br *BuildResult) func([]byte) []byte {
	if os.Getenv("REPRO_GENSIM_PLUGIN") != "1" {
		return nil
	}
	so := filepath.Join(br.Dir, "sim.so")
	if _, err := os.Stat(so); err != nil {
		gobin, err := goTool()
		if err != nil {
			return nil
		}
		// Rebuild the module source in a scratch dir (the cache keeps only
		// the binary) and compile with -buildmode=plugin.
		tmp, err := os.MkdirTemp(br.Dir, "plugin-*")
		if err != nil {
			return nil
		}
		defer os.RemoveAll(tmp)
		src, err := os.ReadFile(filepath.Join(br.Dir, "main.go"))
		if err != nil {
			return nil
		}
		if err := writeModule(tmp, string(src)); err != nil {
			return nil
		}
		if _, err := runGoBuild(gobin, tmp, filepath.Join(tmp, "sim.so"), "plugin"); err != nil {
			return nil
		}
		if err := os.Rename(filepath.Join(tmp, "sim.so"), so); err != nil {
			if _, statErr := os.Stat(so); statErr != nil {
				return nil
			}
		}
	}
	p, err := plugin.Open(so)
	if err != nil {
		return nil
	}
	sym, err := p.Lookup("Serve")
	if err != nil {
		return nil
	}
	serve, ok := sym.(func([]byte) []byte)
	if !ok {
		return nil
	}
	return serve
}
