package gensim_test

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/xsim"
)

// macLoopSPAM is a raw step-rate workload: 1<<p iterations of a single
// VLIW mac/djnz instruction, so backend overhead per simulated instruction
// dominates the measurement.
func macLoopSPAM(p int) string {
	return fmt.Sprintf(`
    mvi R6, #1
    shl R6, R6, #%d
    clr
loop:
    mac R2, R3 || BR.djnz R6, loop
    halt
`, p)
}

// BenchmarkXsim_Backends measures simulated-MIPS of the three backends on
// the SPAM DSP kernels (satellite experiment of docs/GENSIM.md; results in
// EXPERIMENTS.md). Each iteration loads and runs the whole program; the
// reported MIPS metric is cumulative simulated instructions over wall time,
// so for the aot backend it includes the subprocess round trip (build cost
// is paid once outside the timed region).
func BenchmarkXsim_Backends(b *testing.B) {
	d := machines.SPAM()
	s, c := machines.FIRTestVectors(16, 64)
	x, y := machines.VecTestVectors(120)
	kernels := []struct{ name, src string }{
		{"fir", machines.FIRSPAM(16, 64, s, c)},
		{"dot", machines.DotSPAM(120, x, y)},
		{"macloop", macLoopSPAM(15)},
	}
	for _, backend := range xsim.Backends() {
		for _, k := range kernels {
			b.Run(string(backend)+"/"+k.name, func(b *testing.B) {
				prog, err := asm.Assemble(d, k.src)
				if err != nil {
					b.Fatal(err)
				}
				eng, info, err := xsim.NewEngine(d, backend)
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				if info.Used != backend {
					b.Skipf("%s backend unavailable: %s", backend, info.FallbackReason)
				}
				pb := eng.Perf()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.Load(prog); err != nil {
						b.Fatal(err)
					}
					if err := eng.Run(0); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				pa := eng.Perf()
				insts := pa.Instructions - pb.Instructions
				if insts == 0 {
					b.Fatal("no instructions simulated")
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(insts)/sec/1e6, "MIPS")
				}
				// Core speed: the engine's own accounting of time inside the
				// simulation loop — for aot this excludes the per-request
				// subprocess round trip, isolating the generated core.
				if coreSec := pa.RunSeconds - pb.RunSeconds; coreSec > 0 {
					b.ReportMetric(float64(insts)/coreSec/1e6, "coreMIPS")
				}
				b.ReportMetric(float64(insts)/float64(b.N), "instrs/op")
			})
		}
	}
}
