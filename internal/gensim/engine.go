package gensim

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/isdl"
	"repro/internal/xsim"
)

// Engine adapts a generated simulator to xsim.Engine. The child is
// stateless per request, so Run replays the whole program with a cumulative
// instruction limit; for the batch workloads the backend targets (load once,
// run to halt, read stats) each Run is a single request.
type Engine struct {
	d     *isdl.Description
	r     *runner
	build *BuildResult

	// StallModel mirrors xsim.Simulator.StallModel (default on).
	StallModel bool

	// Loaded program in wire form.
	loaded bool
	base   int
	words  []string
	data   []wireData
	entry  int

	// Run-continuation bookkeeping: cumulative instruction limit replayed
	// into each request. unlimited latches a Run(limit<=0).
	cum       int64
	unlimited bool

	resp  *wireResp // latest child response, nil before the first Run
	fault error

	perf struct {
		instructions, cycles, dataStalls, structStalls uint64
		decodeHits, decodeMisses                       uint64
		runNs                                          int64
	}
}

var _ xsim.Engine = (*Engine)(nil)

func init() {
	xsim.RegisterAOT(func(d *isdl.Description) (xsim.Engine, error) {
		return NewEngineFor(d)
	})
}

// NewEngineFor generates (or reuses from cache) the specialized simulator
// for d and connects to it. Returns ErrUnavailable / UnsupportedError for
// the fallback ladder.
func NewEngineFor(d *isdl.Description) (*Engine, error) {
	br, err := Build(d)
	if err != nil {
		return nil, err
	}
	var r *runner
	if serve := loadPlugin(br); serve != nil {
		r = newPluginRunner(serve)
	} else {
		r, err = newRunner(br.Bin, br.Fingerprint)
		if err != nil {
			return nil, err
		}
	}
	return &Engine{d: d, r: r, build: br, StallModel: true}, nil
}

// Build returns how the engine's simulator was produced (cache hit, build
// time); nil on a hand-constructed engine.
func (e *Engine) Build() *BuildResult { return e.build }

// Load stages an assembled program. Bounds are validated host-side with
// state's exact messages so Load-time errors match the other backends.
func (e *Engine) Load(p *asm.Program) error {
	im := e.d.InstructionMemory()
	if p.Base < 0 || p.Base+len(p.Words) > im.Depth {
		return fmt.Errorf("state: program of %d words at %d exceeds %s depth %d",
			len(p.Words), p.Base, im.Name, im.Depth)
	}
	words := make([]string, len(p.Words))
	for i, w := range p.Words {
		words[i] = encodeHex(w)
	}
	var data []wireData
	for _, di := range p.Data {
		st, ok := e.d.StorageByName[di.Storage]
		if !ok {
			return fmt.Errorf("state: unknown storage %s", di.Storage)
		}
		if di.Base < 0 || di.Base+len(di.Values) > st.Depth {
			return fmt.Errorf("state: %d words at %d exceed %s depth %d",
				len(di.Values), di.Base, di.Storage, st.Depth)
		}
		vals := make([]string, len(di.Values))
		for i, v := range di.Values {
			vals[i] = encodeHex(v)
		}
		data = append(data, wireData{Storage: di.Storage, Base: di.Base, Values: vals})
	}
	entry := p.Base
	for _, s := range []string{"start", "main"} {
		if a, ok := p.Symbols[s]; ok {
			entry = a
			break
		}
	}
	e.loaded = true
	e.base, e.words, e.data, e.entry = p.Base, words, data, entry
	e.cum, e.unlimited = 0, false
	e.resp, e.fault = nil, nil
	return nil
}

// Run executes until halt or limit more instructions (limit <= 0: no
// limit), replaying from the load point with the cumulative limit.
func (e *Engine) Run(limit int64) error {
	if !e.loaded {
		return errors.New("gensim: no program loaded")
	}
	if e.resp != nil && e.resp.Halted {
		return e.fault
	}
	if limit <= 0 {
		e.unlimited = true
	} else if !e.unlimited {
		e.cum += limit
	}
	resp, err := e.r.run(e.makeReq(false))
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	e.resp = resp
	e.fault = nil
	if resp.Fault != "" {
		e.fault = errors.New(resp.Fault)
	}
	// Perf counters accumulate the work of this request (a replayed prefix
	// counts as work: the simulator really executed it).
	e.perf.instructions += resp.Instructions
	e.perf.cycles += resp.Cycle
	e.perf.dataStalls += resp.DataStalls
	e.perf.structStalls += resp.StructStalls
	e.perf.decodeHits += resp.DecodeHits
	e.perf.decodeMisses += resp.DecodeMisses
	e.perf.runNs += resp.RunNs
	return e.fault
}

// Halted reports whether the simulated machine stopped.
func (e *Engine) Halted() bool { return e.resp != nil && e.resp.Halted }

// Err returns the fault that halted the machine, if any.
func (e *Engine) Err() error { return e.fault }

// Cycle returns the simulated cycle count.
func (e *Engine) Cycle() uint64 {
	if e.resp == nil {
		return 0
	}
	return e.resp.Cycle
}

// Stats returns architectural statistics identical to the other backends'.
func (e *Engine) Stats() *xsim.Stats {
	s := &xsim.Stats{
		OpCounts:   map[string]uint64{},
		FieldIssue: make([]uint64, len(e.d.Fields)),
	}
	if e.resp == nil {
		return s
	}
	s.Cycles = e.resp.Cycle
	s.Instructions = e.resp.Instructions
	s.DataStalls = e.resp.DataStalls
	s.StructStalls = e.resp.StructStalls
	s.Reads = e.resp.Reads
	s.Writes = e.resp.Writes
	for k, v := range e.resp.OpCounts {
		s.OpCounts[k] = v
	}
	copy(s.FieldIssue, e.resp.FieldIssue)
	return s
}

// Perf returns the engine's own performance counters with derived rates.
func (e *Engine) Perf() xsim.PerfReport {
	p := xsim.PerfReport{
		Instructions: e.perf.instructions,
		Cycles:       e.perf.cycles,
		DataStalls:   e.perf.dataStalls,
		StructStalls: e.perf.structStalls,
		DecodeHits:   e.perf.decodeHits,
		DecodeMisses: e.perf.decodeMisses,
	}
	p.DeriveRates(e.perf.runNs)
	return p
}

// makeReq builds the replay request for the staged program and cumulative
// limit; wantState additionally asks for the full final state dump (kept
// off the common path — encoding it costs the child more than most runs).
func (e *Engine) makeReq(wantState bool) *wireReq {
	req := &wireReq{
		Op:        "run",
		Base:      e.base,
		Words:     e.words,
		Data:      e.data,
		Entry:     e.entry,
		Stall:     e.StallModel,
		WantState: wantState,
	}
	if !e.unlimited {
		req.Limit = e.cum
	}
	return req
}

// Snapshot captures every storage element. Before the first Run this is the
// post-Load state, synthesized host-side (the child holds no state between
// requests); afterwards it replays the deterministic run once more with the
// state dump enabled and decodes the child's final state. The replay's perf
// is not accumulated — Snapshot is an observation, not simulated progress.
func (e *Engine) Snapshot() map[string][]bitvec.Value {
	out := make(map[string][]bitvec.Value, len(e.d.Storage))
	if e.resp != nil && e.resp.State == nil {
		if resp, err := e.r.run(e.makeReq(true)); err == nil && resp.Err == "" {
			e.resp.State = resp.State
		}
	}
	if e.resp != nil {
		for _, ws := range e.resp.State {
			st, ok := e.d.StorageByName[ws.Storage]
			if !ok {
				continue
			}
			vals := make([]bitvec.Value, len(ws.Values))
			for i, s := range ws.Values {
				vals[i] = decodeHex(st.Width, s)
			}
			out[ws.Storage] = vals
		}
		return out
	}
	for _, st := range e.d.Storage {
		vals := make([]bitvec.Value, st.Depth)
		for i := range vals {
			vals[i] = bitvec.New(st.Width)
		}
		out[st.Name] = vals
	}
	if e.loaded {
		im := e.d.InstructionMemory()
		for i, w := range e.words {
			out[im.Name][e.base+i] = decodeHex(im.Width, w)
		}
		for _, di := range e.data {
			st := e.d.StorageByName[di.Storage]
			for i, v := range di.Values {
				out[di.Storage][di.Base+i] = decodeHex(st.Width, v)
			}
		}
		pc := e.d.PC()
		out[pc.Name][0] = bitvec.FromUint64(pc.Width, uint64(e.entry))
	}
	return out
}

// Description returns the simulated machine description.
func (e *Engine) Description() *isdl.Description { return e.d }

// Close shuts the child simulator down.
func (e *Engine) Close() error {
	if e.r != nil {
		e.r.close()
	}
	return nil
}

// encodeHex renders a bitvec as the wire's plain-hex format (big-endian
// nibbles over the value's 64-bit words).
func encodeHex(v bitvec.Value) string {
	n := (v.Width() + 63) / 64
	if n <= 1 {
		return fmt.Sprintf("%x", v.Uint64())
	}
	ws := make([]uint64, n)
	for c := 0; c < n; c++ {
		hi := c*64 + 63
		if hi >= v.Width() {
			hi = v.Width() - 1
		}
		ws[c] = v.Slice(hi, c*64).Uint64()
	}
	i := n - 1
	for i > 0 && ws[i] == 0 {
		i--
	}
	s := fmt.Sprintf("%x", ws[i])
	for i--; i >= 0; i-- {
		s += fmt.Sprintf("%016x", ws[i])
	}
	return s
}

// decodeHex parses the wire's plain-hex format at the given width.
func decodeHex(width int, s string) bitvec.Value {
	ws := make([]uint64, (len(s)+15)/16)
	for i := 0; i < len(s); i++ {
		c := s[len(s)-1-i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		}
		ws[i/16] |= d << (uint(i%16) * 4)
	}
	return bitvec.FromWords(width, ws)
}
