package state_test

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/machines"
	"repro/internal/state"
)

func newToy(t *testing.T) *state.State {
	t.Helper()
	return state.New(machines.Toy())
}

func TestGetSetWidthTruncation(t *testing.T) {
	s := newToy(t)
	s.Set("RF", 3, bitvec.FromUint64(16, 0x1ff)) // RF is 8 bits wide
	if got := s.Get("RF", 3).Uint64(); got != 0xff {
		t.Fatalf("RF[3] = %#x, want 0xff", got)
	}
	if got := s.Get("RF", 3).Width(); got != 8 {
		t.Fatalf("width %d", got)
	}
}

func TestAddressWrap(t *testing.T) {
	s := newToy(t)
	s.Set("RF", 8+2, bitvec.FromUint64(8, 7)) // depth 8: wraps to 2
	if got := s.Get("RF", 2).Uint64(); got != 7 {
		t.Fatalf("RF[2] = %d", got)
	}
}

func TestMonitors(t *testing.T) {
	s := newToy(t)
	var events []state.ChangeEvent
	id, err := s.Watch("RF", -1, func(ev state.ChangeEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	s.Cycle = 42
	s.Set("RF", 1, bitvec.FromUint64(8, 5))
	s.Set("RF", 1, bitvec.FromUint64(8, 5)) // no change: no event
	s.Set("ACC", 0, bitvec.FromUint64(8, 9))
	if len(events) != 1 {
		t.Fatalf("events: %d", len(events))
	}
	ev := events[0]
	if ev.Storage.Name != "RF" || ev.Index != 1 || ev.New.Uint64() != 5 || ev.Cycle != 42 {
		t.Fatalf("event: %v", ev)
	}
	if !s.Unwatch(id) {
		t.Fatal("Unwatch failed")
	}
	s.Set("RF", 1, bitvec.FromUint64(8, 6))
	if len(events) != 1 {
		t.Fatal("monitor fired after Unwatch")
	}
	if s.Unwatch(id) {
		t.Fatal("double Unwatch succeeded")
	}
}

func TestIndexedWatch(t *testing.T) {
	s := newToy(t)
	var n int
	if _, err := s.Watch("RF", 2, func(state.ChangeEvent) { n++ }); err != nil {
		t.Fatal(err)
	}
	s.Set("RF", 1, bitvec.FromUint64(8, 1))
	s.Set("RF", 2, bitvec.FromUint64(8, 1))
	if n != 1 {
		t.Fatalf("indexed watch fired %d times", n)
	}
	if _, err := s.Watch("NOPE", -1, nil); err == nil {
		t.Fatal("Watch on unknown storage should fail")
	}
}

func TestStack(t *testing.T) {
	s := newToy(t)
	for i := 0; i < 16; i++ {
		if err := s.Push("STK", bitvec.FromUint64(8, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Push("STK", bitvec.FromUint64(8, 99)); err == nil {
		t.Fatal("expected overflow")
	}
	if got := s.StackDepth("STK"); got != 16 {
		t.Fatalf("depth %d", got)
	}
	for i := 15; i >= 0; i-- {
		v, err := s.Pop("STK")
		if err != nil {
			t.Fatal(err)
		}
		if v.Uint64() != uint64(i) {
			t.Fatalf("pop = %d, want %d", v.Uint64(), i)
		}
	}
	if _, err := s.Pop("STK"); err == nil {
		t.Fatal("expected underflow")
	}
	if err := s.Push("RF", bitvec.FromUint64(8, 0)); err == nil {
		t.Fatal("push to non-stack should fail")
	}
}

func TestBitsAccess(t *testing.T) {
	s := newToy(t)
	s.Set("ACC", 0, bitvec.FromUint64(8, 0b10110100))
	if got := s.GetBits("ACC", 0, 5, 2).Uint64(); got != 0b1101 {
		t.Fatalf("GetBits = %#b", got)
	}
	s.SetBits("ACC", 0, 3, 0, bitvec.FromUint64(4, 0b1111))
	if got := s.Get("ACC", 0).Uint64(); got != 0b10111111 {
		t.Fatalf("after SetBits: %#b", got)
	}
}

func TestPCHelpers(t *testing.T) {
	s := newToy(t)
	s.SetPC(bitvec.FromUint64(8, 0x20))
	if got := s.PC().Uint64(); got != 0x20 {
		t.Fatalf("PC = %#x", got)
	}
}

func TestLoadProgramQuiet(t *testing.T) {
	s := newToy(t)
	var n int
	if _, err := s.Watch("IMEM", -1, func(state.ChangeEvent) { n++ }); err != nil {
		t.Fatal(err)
	}
	words := []bitvec.Value{bitvec.FromUint64(24, 1), bitvec.FromUint64(24, 2)}
	if err := s.LoadProgram(10, words); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("LoadProgram fired monitors")
	}
	if got := s.Get("IMEM", 11).Uint64(); got != 2 {
		t.Fatalf("IMEM[11] = %d", got)
	}
	if err := s.LoadProgram(255, words); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestLoadData(t *testing.T) {
	s := newToy(t)
	if err := s.LoadData("DMEM", 5, []bitvec.Value{bitvec.FromUint64(8, 42)}); err != nil {
		t.Fatal(err)
	}
	if got := s.Get("DMEM", 5).Uint64(); got != 42 {
		t.Fatalf("DMEM[5] = %d", got)
	}
	if err := s.LoadData("DMEM", 256, []bitvec.Value{bitvec.New(8)}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestResetKeepsMonitors(t *testing.T) {
	s := newToy(t)
	var n int
	if _, err := s.Watch("ACC", -1, func(state.ChangeEvent) { n++ }); err != nil {
		t.Fatal(err)
	}
	s.Set("ACC", 0, bitvec.FromUint64(8, 1))
	s.Reset()
	if got := s.Get("ACC", 0).Uint64(); got != 0 {
		t.Fatal("Reset did not zero ACC")
	}
	s.Set("ACC", 0, bitvec.FromUint64(8, 2))
	if n != 2 {
		t.Fatalf("monitor fired %d times, want 2", n)
	}
}

func TestSnapshot(t *testing.T) {
	s := newToy(t)
	s.Set("RF", 0, bitvec.FromUint64(8, 9))
	snap := s.Snapshot()
	s.Set("RF", 0, bitvec.FromUint64(8, 1))
	if snap["RF"][0].Uint64() != 9 {
		t.Fatal("snapshot aliases live state")
	}
}

func TestChangeEventString(t *testing.T) {
	s := newToy(t)
	var got string
	if _, err := s.Watch("RF", -1, func(ev state.ChangeEvent) { got = ev.String() }); err != nil {
		t.Fatal(err)
	}
	s.Set("RF", 4, bitvec.FromUint64(8, 3))
	if got != "cycle 0: RF[4]: 8'h0 -> 8'h3" {
		t.Fatalf("String = %q", got)
	}
}
