// Package state emulates the processor state of a target architecture: one
// data structure per ISDL storage element, with every access routed through
// the state monitors (paper §3.2 parts 3–4, §3.3.1). The simulator, the
// assembler's loader and the co-simulation checker all manipulate state
// through this package, which keeps them bit-true by construction: every
// stored value has exactly the declared storage width.
package state

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
)

// ChangeEvent describes one modification of the processor state.
type ChangeEvent struct {
	Storage *isdl.Storage
	Index   int
	Old     bitvec.Value
	New     bitvec.Value
	// Cycle is the simulation cycle at which the change committed.
	Cycle uint64
}

func (e ChangeEvent) String() string {
	if e.Storage.Kind.Addressed() {
		return fmt.Sprintf("cycle %d: %s[%d]: %s -> %s", e.Cycle, e.Storage.Name, e.Index, e.Old, e.New)
	}
	return fmt.Sprintf("cycle %d: %s: %s -> %s", e.Cycle, e.Storage.Name, e.Old, e.New)
}

// ChangeFunc is a state-monitor hook.
type ChangeFunc func(ChangeEvent)

type watch struct {
	id      int
	storage string
	index   int // -1 = any location
	fn      ChangeFunc
}

// element is the storage for one ISDL storage definition.
type element struct {
	def  *isdl.Storage
	data []bitvec.Value
	// sp is the stack pointer for Stack storage: the number of live
	// entries (push writes data[sp], then increments).
	sp int
}

// State is the complete visible state of a target architecture.
type State struct {
	desc  *isdl.Description
	elems map[string]*element
	// Cycle is maintained by the scheduler and stamped onto change events.
	Cycle uint64

	watches []watch
	nextID  int
	// quiet suppresses monitors during bulk loads.
	quiet bool
}

// New allocates zeroed state for a description.
func New(d *isdl.Description) *State {
	s := &State{desc: d, elems: map[string]*element{}}
	for _, st := range d.Storage {
		e := &element{def: st, data: make([]bitvec.Value, st.Depth)}
		for i := range e.data {
			e.data[i] = bitvec.New(st.Width)
		}
		s.elems[st.Name] = e
	}
	return s
}

// Description returns the machine description this state belongs to.
func (s *State) Description() *isdl.Description { return s.desc }

// Reset zeroes every storage element and stack pointer without removing
// monitors.
func (s *State) Reset() {
	for _, e := range s.elems {
		for i := range e.data {
			e.data[i] = bitvec.New(e.def.Width)
		}
		e.sp = 0
	}
	s.Cycle = 0
}

func (s *State) elem(name string) *element {
	e, ok := s.elems[name]
	if !ok {
		panic(fmt.Sprintf("state: unknown storage %s", name))
	}
	return e
}

// wrapIndex reduces an index to the storage depth; hardware address decoders
// ignore high bits, and the simulator mirrors that (§3: bit-true behaviour
// includes address truncation).
func wrapIndex(e *element, idx int) int {
	if idx < 0 {
		idx = -idx
	}
	return idx % len(e.data)
}

// Handle is a direct reference to one storage element, bypassing the
// name-to-element lookup on every access. The generated simulator resolves
// handles at load time; handles stay valid across Reset.
type Handle struct {
	s *State
	e *element
}

// Handle returns a direct handle on the named storage.
func (s *State) Handle(name string) (Handle, bool) {
	e, ok := s.elems[name]
	if !ok {
		return Handle{}, false
	}
	return Handle{s: s, e: e}, true
}

// Valid reports whether the handle is bound.
func (h Handle) Valid() bool { return h.e != nil }

// Get reads location idx through the handle.
func (h Handle) Get(idx int) bitvec.Value {
	return h.e.data[wrapIndex(h.e, idx)]
}

// Set writes location idx through the handle (same semantics as State.Set).
func (h Handle) Set(idx int, v bitvec.Value) {
	e := h.e
	idx = wrapIndex(e, idx)
	nv := v.Trunc(e.def.Width)
	old := e.data[idx]
	e.data[idx] = nv
	if !h.s.quiet && len(h.s.watches) > 0 && !old.Eq(nv) {
		h.s.fire(ChangeEvent{Storage: e.def, Index: idx, Old: old, New: nv, Cycle: h.s.Cycle})
	}
}

// SetBits writes bits [hi:lo] of a location through the handle.
func (h Handle) SetBits(idx, hi, lo int, v bitvec.Value) {
	old := h.Get(idx)
	nv := old
	for b := lo; b <= hi; b++ {
		nv = nv.WithBit(b, v.Bit(b-lo))
	}
	h.Set(idx, nv)
}

// Get reads location idx of the named storage (idx 0 for unaddressed kinds).
func (s *State) Get(name string, idx int) bitvec.Value {
	e := s.elem(name)
	return e.data[wrapIndex(e, idx)]
}

// Set writes location idx of the named storage, truncating or zero-extending
// v to the storage width, and fires any matching monitors.
func (s *State) Set(name string, idx int, v bitvec.Value) {
	e := s.elem(name)
	idx = wrapIndex(e, idx)
	nv := v.Trunc(e.def.Width)
	old := e.data[idx]
	if old.Eq(nv) {
		e.data[idx] = nv
		return
	}
	e.data[idx] = nv
	if !s.quiet {
		s.fire(ChangeEvent{Storage: e.def, Index: idx, Old: old, New: nv, Cycle: s.Cycle})
	}
}

// GetBits reads bits [hi:lo] of a storage location.
func (s *State) GetBits(name string, idx, hi, lo int) bitvec.Value {
	return s.Get(name, idx).Slice(hi, lo)
}

// SetBits writes bits [hi:lo] of a storage location, leaving the rest
// untouched.
func (s *State) SetBits(name string, idx, hi, lo int, v bitvec.Value) {
	old := s.Get(name, idx)
	nv := old
	for b := lo; b <= hi; b++ {
		nv = nv.WithBit(b, v.Bit(b-lo))
	}
	s.Set(name, idx, nv)
}

// Push pushes v onto a Stack storage. It reports an error on overflow.
func (s *State) Push(name string, v bitvec.Value) error {
	e := s.elem(name)
	if e.def.Kind != isdl.StStack {
		return fmt.Errorf("state: %s is not a stack", name)
	}
	if e.sp >= len(e.data) {
		return fmt.Errorf("state: stack %s overflow (depth %d)", name, len(e.data))
	}
	idx := e.sp
	e.sp++
	s.Set(name, idx, v)
	return nil
}

// Pop pops the top of a Stack storage. It reports an error on underflow.
func (s *State) Pop(name string) (bitvec.Value, error) {
	e := s.elem(name)
	if e.def.Kind != isdl.StStack {
		return bitvec.Value{}, fmt.Errorf("state: %s is not a stack", name)
	}
	if e.sp == 0 {
		return bitvec.Value{}, fmt.Errorf("state: stack %s underflow", name)
	}
	e.sp--
	return e.data[e.sp], nil
}

// StackDepth returns the number of live entries of a Stack storage.
func (s *State) StackDepth(name string) int { return s.elem(name).sp }

// PC reads the program counter.
func (s *State) PC() bitvec.Value { return s.Get(s.desc.PC().Name, 0) }

// SetPC writes the program counter.
func (s *State) SetPC(v bitvec.Value) { s.Set(s.desc.PC().Name, 0, v) }

// Watch registers a monitor on the named storage; index -1 watches every
// location. It returns an id for Unwatch. Watching an unknown storage is an
// error so batch scripts get a diagnostic instead of silence.
func (s *State) Watch(storage string, index int, fn ChangeFunc) (int, error) {
	if _, ok := s.elems[storage]; !ok {
		return 0, fmt.Errorf("state: unknown storage %s", storage)
	}
	s.nextID++
	s.watches = append(s.watches, watch{id: s.nextID, storage: storage, index: index, fn: fn})
	return s.nextID, nil
}

// Unwatch removes a monitor; it reports whether the id existed.
func (s *State) Unwatch(id int) bool {
	for i, w := range s.watches {
		if w.id == id {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			return true
		}
	}
	return false
}

func (s *State) fire(ev ChangeEvent) {
	for _, w := range s.watches {
		if w.storage == ev.Storage.Name && (w.index < 0 || w.index == ev.Index) {
			w.fn(ev)
		}
	}
}

// LoadProgram writes words into the instruction memory starting at base,
// without firing monitors (program load is not an architectural state
// change).
func (s *State) LoadProgram(base int, words []bitvec.Value) error {
	im := s.desc.InstructionMemory()
	if base < 0 || base+len(words) > im.Depth {
		return fmt.Errorf("state: program of %d words at %d exceeds %s depth %d", len(words), base, im.Name, im.Depth)
	}
	s.quiet = true
	defer func() { s.quiet = false }()
	for i, w := range words {
		s.Set(im.Name, base+i, w)
	}
	return nil
}

// LoadData writes words into a data memory starting at base, without firing
// monitors.
func (s *State) LoadData(name string, base int, words []bitvec.Value) error {
	e := s.elem(name)
	if base < 0 || base+len(words) > len(e.data) {
		return fmt.Errorf("state: %d words at %d exceed %s depth %d", len(words), base, name, len(e.data))
	}
	s.quiet = true
	defer func() { s.quiet = false }()
	for i, w := range words {
		s.Set(name, base+i, w)
	}
	return nil
}

// Snapshot captures every storage element for later comparison (used by the
// lock-step co-simulation tests).
func (s *State) Snapshot() map[string][]bitvec.Value {
	out := make(map[string][]bitvec.Value, len(s.elems))
	for name, e := range s.elems {
		cp := make([]bitvec.Value, len(e.data))
		copy(cp, e.data)
		out[name] = cp
	}
	return out
}
