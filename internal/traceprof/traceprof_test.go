package traceprof_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/machines"
	"repro/internal/traceprof"
	"repro/internal/xsim"
)

const loopProgram = `
    mv R1, #0
    mv R2, #5
top:
    beq R2, R0, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp top
done:
    halt
`

func runWithProfile(t *testing.T) (*traceprof.Profile, *asm.Program) {
	t.Helper()
	d := machines.Toy()
	p, err := asm.Assemble(d, loopProgram)
	if err != nil {
		t.Fatal(err)
	}
	prof := traceprof.New()
	sim := xsim.New(d)
	sim.SetTrace(prof.Writer())
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	return prof, p
}

func TestProfileDirectAttachment(t *testing.T) {
	prof, p := runWithProfile(t)
	// 2 setup + 6×beq? loop body: beq(6 times: 5 taken + final exit),
	// add/sub/jmp ×5, halt.
	if prof.Total != 2+6+15+1 {
		t.Fatalf("total = %d", prof.Total)
	}
	// The loop head executes 6 times.
	if got := prof.Counts[p.Symbols["top"]]; got != 6 {
		t.Fatalf("loop head count = %d", got)
	}
	hot := prof.Hot(3)
	if len(hot) != 3 || hot[0].Count < hot[1].Count {
		t.Fatalf("hot: %+v", hot)
	}
}

func TestProfileBySymbol(t *testing.T) {
	prof, p := runWithProfile(t)
	by := prof.BySymbol(p)
	if by[0].Symbol != "top" {
		t.Fatalf("hottest symbol = %s", by[0].Symbol)
	}
	if by[0].Count != 21 { // 6 beq + 5×(add,sub,jmp)
		t.Fatalf("top count = %d", by[0].Count)
	}
	var sum float64
	for _, s := range by {
		sum += s.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestReadTraceFile(t *testing.T) {
	prof, err := traceprof.Read(strings.NewReader("# comment\n0\n1\n1\na\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Total != 4 || prof.Counts[1] != 2 || prof.Counts[10] != 1 {
		t.Fatalf("profile: %+v", prof)
	}
	if _, err := traceprof.Read(strings.NewReader("zz\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestReportAndAnnotate(t *testing.T) {
	prof, p := runWithProfile(t)
	d := machines.Toy()
	var buf bytes.Buffer
	if err := prof.Report(&buf, d, p, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"by symbol:", "top", "hottest addresses:", "beq"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := prof.Annotate(&buf, d, p); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "top:") || !strings.Contains(out, "halt") {
		t.Fatalf("annotate output:\n%s", out)
	}
	if !strings.Contains(out, "distinct addresses") {
		t.Fatalf("annotate missing summary:\n%s", out)
	}
}

// mulLoop executes mul (Cycle 1 + Stall 2 in the toy ISDL, weight 3) five
// times and the loop-head beq six — most-executed and most-expensive
// addresses differ, which is exactly what the weighted ranking is for.
const mulLoop = `
    mv R1, #1
    mv R2, #5
loop:
    beq R2, R0, done
    mul R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`

func TestCycleWeightedAttribution(t *testing.T) {
	d := machines.Toy()
	p, err := asm.Assemble(d, mulLoop)
	if err != nil {
		t.Fatal(err)
	}
	prof := traceprof.New()
	sim := xsim.New(d)
	sim.SetTrace(prof.Writer())
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}

	beqAddr := p.Symbols["loop"]
	mulAddr := beqAddr + 1
	weigh := traceprof.CycleWeigher(d, p)
	if w := weigh(mulAddr); w != 3 {
		t.Errorf("mul weight = %v, want 3 (Cycle 1 + Stall 2)", w)
	}
	if w := weigh(beqAddr); w != 1 {
		t.Errorf("beq weight = %v, want 1", w)
	}
	if w := weigh(-5); w != 1 {
		t.Errorf("out-of-program weight = %v, want 1", w)
	}

	// By count the loop head is hottest (6 executions); by estimated
	// cycles the mul dominates (5 × 3 = 15).
	if hot := prof.Hot(1); hot[0].Addr != beqAddr {
		t.Errorf("hottest by count = %04x, want beq at %04x", hot[0].Addr, beqAddr)
	}
	weighted := prof.HotWeighted(1, weigh)
	if weighted[0].Addr != mulAddr || weighted[0].Cycles != 15 || weighted[0].Count != 5 {
		t.Errorf("hottest by cycles = %+v, want mul at %04x with 15 cycles over 5 executions",
			weighted[0], mulAddr)
	}
	// Nil weight degenerates to the count ranking.
	if plain := prof.HotWeighted(1, nil); plain[0].Addr != beqAddr {
		t.Errorf("nil-weight hottest = %04x, want %04x", plain[0].Addr, beqAddr)
	}

	var buf bytes.Buffer
	if err := prof.Report(&buf, d, p, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "hottest addresses by estimated cycles:") {
		t.Fatalf("report missing weighted section:\n%s", out)
	}
	weightedSection := out[strings.Index(out, "by estimated cycles"):]
	if !strings.Contains(strings.SplitN(weightedSection, "\n", 3)[1], "mul") {
		t.Errorf("weighted section should lead with mul:\n%s", weightedSection)
	}
}

func TestWriterPartialLines(t *testing.T) {
	prof := traceprof.New()
	w := prof.Writer()
	if _, err := w.Write([]byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("f\n2")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("0\n")); err != nil {
		t.Fatal(err)
	}
	if prof.Counts[0x1f] != 1 || prof.Counts[0x20] != 1 {
		t.Fatalf("counts: %+v", prof.Counts)
	}
}
