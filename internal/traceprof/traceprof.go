// Package traceprof is the trace "processing program" of paper §3.1: the
// XSIM simulators emit an execution address trace (one instruction address
// per line) either to a file or directly to a consumer; this package is
// that consumer. It aggregates the trace into an execution profile —
// per-address counts, symbol-level attribution, hottest regions — the kind
// of utilization evidence the exploration loop uses to decide what to
// improve next.
package traceprof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
)

// Profile is an aggregated execution-address trace.
type Profile struct {
	Total  uint64
	Counts map[int]uint64
}

// New returns an empty profile. It implements io.Writer, so it can be
// attached directly to a simulator with SetTrace (the "directly to a
// processing program" path); partial lines across Write calls are handled.
func New() *Profile {
	return &Profile{Counts: map[int]uint64{}}
}

// Add records one execution of the instruction at addr.
func (p *Profile) Add(addr int) {
	p.Counts[addr]++
	p.Total++
}

// pending holds an incomplete trailing line between Write calls.
type writerState struct {
	p       *Profile
	pending []byte
}

// Writer adapts the profile to io.Writer for Simulator.SetTrace.
func (p *Profile) Writer() io.Writer { return &writerState{p: p} }

func (w *writerState) Write(b []byte) (int, error) {
	w.pending = append(w.pending, b...)
	for {
		i := indexByte(w.pending, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := strings.TrimSpace(string(w.pending[:i]))
		w.pending = w.pending[i+1:]
		if line == "" {
			continue
		}
		addr, err := strconv.ParseInt(line, 16, 32)
		if err != nil {
			return len(b), fmt.Errorf("traceprof: bad trace line %q", line)
		}
		w.p.Add(int(addr))
	}
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// Read parses a trace file (hexadecimal addresses, one per line).
func Read(r io.Reader) (*Profile, error) {
	p := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addr, err := strconv.ParseInt(line, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("traceprof: line %d: bad address %q", lineNo, line)
		}
		p.Add(int(addr))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// HotSpot is one address with its execution count.
type HotSpot struct {
	Addr  int
	Count uint64
}

// Hot returns the n most-executed addresses, hottest first (ties by
// address).
func (p *Profile) Hot(n int) []HotSpot {
	out := make([]HotSpot, 0, len(p.Counts))
	for a, c := range p.Counts {
		out = append(out, HotSpot{Addr: a, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SymbolCount attributes executions to the nearest preceding program symbol
// — a function-level profile.
type SymbolCount struct {
	Symbol string
	Count  uint64
	Share  float64
}

// BySymbol aggregates the profile over the program's symbols. Addresses
// before the first symbol are attributed to the load base.
func (p *Profile) BySymbol(prog *asm.Program) []SymbolCount {
	type sym struct {
		name string
		addr int
	}
	syms := make([]sym, 0, len(prog.Symbols)+1)
	syms = append(syms, sym{name: fmt.Sprintf("<base+%#x>", prog.Base), addr: prog.Base})
	for name, addr := range prog.Symbols {
		syms = append(syms, sym{name: name, addr: addr})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})

	counts := map[string]uint64{}
	for addr, c := range p.Counts {
		name := syms[0].name
		for _, s := range syms {
			if s.addr <= addr {
				name = s.name
			} else {
				break
			}
		}
		counts[name] += c
	}
	out := make([]SymbolCount, 0, len(counts))
	for name, c := range counts {
		share := 0.0
		if p.Total > 0 {
			share = float64(c) / float64(p.Total)
		}
		out = append(out, SymbolCount{Symbol: name, Count: c, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// Annotate renders an annotated listing: every profiled address with its
// count, share, and disassembly.
func (p *Profile) Annotate(w io.Writer, d *isdl.Description, prog *asm.Program) error {
	addrs := make([]int, 0, len(p.Counts))
	for a := range p.Counts {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	addrToSym := map[int][]string{}
	for _, name := range prog.SymbolsSorted() {
		addrToSym[prog.Symbols[name]] = append(addrToSym[prog.Symbols[name]], name)
	}
	for _, a := range addrs {
		for _, s := range addrToSym[a] {
			fmt.Fprintf(w, "%s:\n", s)
		}
		text := "<outside program>"
		if idx := a - prog.Base; idx >= 0 && idx < len(prog.Words) {
			img := decode.FetchWord(d, func(x int) bitvec.Value {
				if i := x - prog.Base; i >= 0 && i < len(prog.Words) {
					return prog.Words[i]
				}
				return prog.Words[idx]
			}, a)
			if inst, err := decode.Instruction(d, img); err == nil {
				text = asm.RenderInst(d, inst)
			} else {
				text = "<data>"
			}
		}
		share := float64(p.Counts[a]) / float64(p.Total) * 100
		fmt.Fprintf(w, "%04x %10d %6.2f%%  %s\n", a, p.Counts[a], share, text)
	}
	fmt.Fprintf(w, "total %d instructions at %d distinct addresses\n", p.Total, len(p.Counts))
	return nil
}

// Report writes the standard profile report: symbol attribution then the
// hottest addresses.
func (p *Profile) Report(w io.Writer, d *isdl.Description, prog *asm.Program, topN int) error {
	fmt.Fprintf(w, "execution profile: %d instructions\n\nby symbol:\n", p.Total)
	for _, sc := range p.BySymbol(prog) {
		fmt.Fprintf(w, "  %-20s %10d %6.2f%%\n", sc.Symbol, sc.Count, sc.Share*100)
	}
	fmt.Fprintf(w, "\nhottest addresses:\n")
	for _, h := range p.Hot(topN) {
		text := ""
		if idx := h.Addr - prog.Base; idx >= 0 && idx < len(prog.Words) {
			img := decode.FetchWord(d, func(x int) bitvec.Value {
				if i := x - prog.Base; i >= 0 && i < len(prog.Words) {
					return prog.Words[i]
				}
				return prog.Words[idx]
			}, h.Addr)
			if inst, err := decode.Instruction(d, img); err == nil {
				text = asm.RenderInst(d, inst)
			}
		}
		fmt.Fprintf(w, "  %04x %10d  %s\n", h.Addr, h.Count, text)
	}
	return nil
}
