// Package traceprof is the trace "processing program" of paper §3.1: the
// XSIM simulators emit an execution address trace (one instruction address
// per line) either to a file or directly to a consumer; this package is
// that consumer. It aggregates the trace into an execution profile —
// per-address counts, symbol-level attribution, hottest regions — the kind
// of utilization evidence the exploration loop uses to decide what to
// improve next.
package traceprof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/decode"
	"repro/internal/isdl"
)

// Profile is an aggregated execution-address trace.
type Profile struct {
	Total  uint64
	Counts map[int]uint64
}

// New returns an empty profile. It implements io.Writer, so it can be
// attached directly to a simulator with SetTrace (the "directly to a
// processing program" path); partial lines across Write calls are handled.
func New() *Profile {
	return &Profile{Counts: map[int]uint64{}}
}

// Add records one execution of the instruction at addr.
func (p *Profile) Add(addr int) {
	p.Counts[addr]++
	p.Total++
}

// pending holds an incomplete trailing line between Write calls.
type writerState struct {
	p       *Profile
	pending []byte
}

// Writer adapts the profile to io.Writer for Simulator.SetTrace.
func (p *Profile) Writer() io.Writer { return &writerState{p: p} }

func (w *writerState) Write(b []byte) (int, error) {
	w.pending = append(w.pending, b...)
	for {
		i := indexByte(w.pending, '\n')
		if i < 0 {
			return len(b), nil
		}
		line := strings.TrimSpace(string(w.pending[:i]))
		w.pending = w.pending[i+1:]
		if line == "" {
			continue
		}
		addr, err := strconv.ParseInt(line, 16, 32)
		if err != nil {
			return len(b), fmt.Errorf("traceprof: bad trace line %q", line)
		}
		w.p.Add(int(addr))
	}
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// Read parses a trace file (hexadecimal addresses, one per line).
func Read(r io.Reader) (*Profile, error) {
	p := New()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addr, err := strconv.ParseInt(line, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("traceprof: line %d: bad address %q", lineNo, line)
		}
		p.Add(int(addr))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// HotSpot is one address with its execution count.
type HotSpot struct {
	Addr  int
	Count uint64
}

// Hot returns the n most-executed addresses, hottest first (ties by
// address).
func (p *Profile) Hot(n int) []HotSpot {
	out := make([]HotSpot, 0, len(p.Counts))
	for a, c := range p.Counts {
		out = append(out, HotSpot{Addr: a, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// WeightedSpot is one address with its execution count and its estimated
// cycle contribution (count × per-execution weight).
type WeightedSpot struct {
	Addr   int
	Count  uint64
	Cycles float64
}

// CycleWeigher returns a weight function over program addresses: the
// estimated cycles one execution of the instruction at addr costs under
// the ISDL cost model (§2.1.3) — the maximum per-operation Cycle cost
// across the VLIW fields (ops in one word issue together), each folded
// with its selected non-terminal options' additive adders (§2.1.1), plus
// every operation's possible Stall cycles. Addresses that do not decode
// to an instruction weigh 1.0. Decodes are memoized per address, so the
// weigher is cheap to apply to a long profile (but not safe for
// concurrent use).
func CycleWeigher(d *isdl.Description, prog *asm.Program) func(addr int) float64 {
	memo := map[int]float64{}
	return func(addr int) float64 {
		if w, ok := memo[addr]; ok {
			return w
		}
		w := 1.0
		if inst := decodeAt(d, prog, addr); inst != nil {
			maxCycle, stalls := 0, 0
			for _, dop := range inst.Ops {
				cyc, st := opCosts(dop.Op.Costs, dop.Args)
				if cyc > maxCycle {
					maxCycle = cyc
				}
				stalls += st
			}
			if est := maxCycle + stalls; est > 0 {
				w = float64(est)
			}
		}
		memo[addr] = w
		return w
	}
}

// opCosts folds one operation's base costs with the additive cost adders
// of its selected non-terminal options.
func opCosts(base isdl.Costs, args []decode.Arg) (cycle, stall int) {
	cycle, stall = base.Cycle, base.Stall
	var walk func(args []decode.Arg)
	walk = func(args []decode.Arg) {
		for i := range args {
			a := &args[i]
			if a.Option == nil {
				continue
			}
			cycle += a.Option.Costs.Cycle
			stall += a.Option.Costs.Stall
			walk(a.Sub)
		}
	}
	walk(args)
	return cycle, stall
}

// HotWeighted returns the n addresses with the largest estimated cycle
// contribution, hottest first (ties by address). weight is typically a
// CycleWeigher; nil weighs every execution 1.0 (count order). n <= 0
// returns all addresses.
func (p *Profile) HotWeighted(n int, weight func(addr int) float64) []WeightedSpot {
	out := make([]WeightedSpot, 0, len(p.Counts))
	for a, c := range p.Counts {
		w := 1.0
		if weight != nil {
			w = weight(a)
		}
		out = append(out, WeightedSpot{Addr: a, Count: c, Cycles: float64(c) * w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Addr < out[j].Addr
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// SymbolCount attributes executions to the nearest preceding program symbol
// — a function-level profile.
type SymbolCount struct {
	Symbol string
	Count  uint64
	Share  float64
}

// BySymbol aggregates the profile over the program's symbols. Addresses
// before the first symbol are attributed to the load base.
func (p *Profile) BySymbol(prog *asm.Program) []SymbolCount {
	type sym struct {
		name string
		addr int
	}
	syms := make([]sym, 0, len(prog.Symbols)+1)
	syms = append(syms, sym{name: fmt.Sprintf("<base+%#x>", prog.Base), addr: prog.Base})
	for name, addr := range prog.Symbols {
		syms = append(syms, sym{name: name, addr: addr})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].addr != syms[j].addr {
			return syms[i].addr < syms[j].addr
		}
		return syms[i].name < syms[j].name
	})

	counts := map[string]uint64{}
	for addr, c := range p.Counts {
		name := syms[0].name
		for _, s := range syms {
			if s.addr <= addr {
				name = s.name
			} else {
				break
			}
		}
		counts[name] += c
	}
	out := make([]SymbolCount, 0, len(counts))
	for name, c := range counts {
		share := 0.0
		if p.Total > 0 {
			share = float64(c) / float64(p.Total)
		}
		out = append(out, SymbolCount{Symbol: name, Count: c, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

// Annotate renders an annotated listing: every profiled address with its
// count, share, and disassembly.
func (p *Profile) Annotate(w io.Writer, d *isdl.Description, prog *asm.Program) error {
	addrs := make([]int, 0, len(p.Counts))
	for a := range p.Counts {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	addrToSym := map[int][]string{}
	for _, name := range prog.SymbolsSorted() {
		addrToSym[prog.Symbols[name]] = append(addrToSym[prog.Symbols[name]], name)
	}
	for _, a := range addrs {
		for _, s := range addrToSym[a] {
			fmt.Fprintf(w, "%s:\n", s)
		}
		text := "<outside program>"
		if idx := a - prog.Base; idx >= 0 && idx < len(prog.Words) {
			img := decode.FetchWord(d, func(x int) bitvec.Value {
				if i := x - prog.Base; i >= 0 && i < len(prog.Words) {
					return prog.Words[i]
				}
				return prog.Words[idx]
			}, a)
			if inst, err := decode.Instruction(d, img); err == nil {
				text = asm.RenderInst(d, inst)
			} else {
				text = "<data>"
			}
		}
		share := float64(p.Counts[a]) / float64(p.Total) * 100
		fmt.Fprintf(w, "%04x %10d %6.2f%%  %s\n", a, p.Counts[a], share, text)
	}
	fmt.Fprintf(w, "total %d instructions at %d distinct addresses\n", p.Total, len(p.Counts))
	return nil
}

// decodeAt decodes the instruction at addr, or nil when the address lies
// outside the program or does not decode.
func decodeAt(d *isdl.Description, prog *asm.Program, addr int) *decode.Inst {
	idx := addr - prog.Base
	if idx < 0 || idx >= len(prog.Words) {
		return nil
	}
	img := decode.FetchWord(d, func(x int) bitvec.Value {
		if i := x - prog.Base; i >= 0 && i < len(prog.Words) {
			return prog.Words[i]
		}
		return prog.Words[idx]
	}, addr)
	inst, err := decode.Instruction(d, img)
	if err != nil {
		return nil
	}
	return inst
}

// disasm renders the instruction at addr, or "" when it does not decode.
func disasm(d *isdl.Description, prog *asm.Program, addr int) string {
	inst := decodeAt(d, prog, addr)
	if inst == nil {
		return ""
	}
	return asm.RenderInst(d, inst)
}

// Report writes the standard profile report: symbol attribution, the
// most-executed addresses, and the addresses ranked by estimated cycle
// contribution under the ISDL cost model (CycleWeigher) — the count
// ranking says what runs most, the cycle ranking says where the time
// goes, and they differ exactly where expensive (multi-cycle or
// stall-prone) operations sit on cool paths.
func (p *Profile) Report(w io.Writer, d *isdl.Description, prog *asm.Program, topN int) error {
	fmt.Fprintf(w, "execution profile: %d instructions\n\nby symbol:\n", p.Total)
	for _, sc := range p.BySymbol(prog) {
		fmt.Fprintf(w, "  %-20s %10d %6.2f%%\n", sc.Symbol, sc.Count, sc.Share*100)
	}
	fmt.Fprintf(w, "\nhottest addresses:\n")
	for _, h := range p.Hot(topN) {
		fmt.Fprintf(w, "  %04x %10d  %s\n", h.Addr, h.Count, disasm(d, prog, h.Addr))
	}
	weighted := p.HotWeighted(0, CycleWeigher(d, prog))
	var totalCycles float64
	for _, h := range weighted {
		totalCycles += h.Cycles
	}
	if topN > 0 && len(weighted) > topN {
		weighted = weighted[:topN]
	}
	fmt.Fprintf(w, "\nhottest addresses by estimated cycles:\n")
	for _, h := range weighted {
		share := 0.0
		if totalCycles > 0 {
			share = h.Cycles / totalCycles * 100
		}
		fmt.Fprintf(w, "  %04x %10.0f cyc %6.2f%%  (%d executions)  %s\n",
			h.Addr, h.Cycles, share, h.Count, disasm(d, prog, h.Addr))
	}
	return nil
}
