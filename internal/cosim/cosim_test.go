package cosim_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/cosim"
	"repro/internal/obs"
	"repro/internal/verilog"
)

// poolSrc is a small sequential design with a memory: ten cycles of
// accumulate-and-scramble, then halt. Distinct memory images give distinct
// (but deterministic) final states, which is what the bit-identity tests
// compare across worker counts.
const poolSrc = `
module poolcounter (
  clk,
  halted,
  acc
);
  input clk;
  output halted;
  output [7:0] acc;

  reg [7:0] cnt;
  reg [7:0] sum;
  reg [2:0] idx;
  reg [7:0] mem [0:7];

  assign halted = (cnt == 8'h0a);
  assign acc = sum;

  always @(posedge clk) begin
    cnt <= (cnt + 8'h01);
    idx <= (idx + 3'h1);
    sum <= (sum + mem[idx]);
    mem[idx] <= (sum ^ cnt);
  end
endmodule
`

func parsePool(t *testing.T) *verilog.Module {
	t.Helper()
	m, err := verilog.Parse(poolSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// finalState is everything observable about one finished workload.
type finalState struct {
	cycles uint64
	events uint64
	acc    uint64
	mem    [8]uint64
}

// runJobs executes n poolcounter workloads (job i seeds the memory from i)
// and returns the per-job final states plus the aggregate stats.
func runJobs(t *testing.T, mod *verilog.Module, workers, n int, reg *obs.Registry) ([]finalState, cosim.Stats) {
	t.Helper()
	pool := &cosim.Pool{Workers: workers, Obs: reg}
	finals := make([]finalState, n)
	var mu sync.Mutex
	stats, err := pool.Run("test.pool", n, func(i int, l *cosim.Lane) error {
		wl := cosim.Workload{
			Mod: mod,
			Init: func(hw *verilog.Sim) error {
				for k := 0; k < 8; k++ {
					if err := hw.SetMem("mem", k, bitvec.FromUint64(8, uint64(i*13+k*7))); err != nil {
						return err
					}
				}
				return nil
			},
		}
		ev0 := l.Events()
		cy0 := l.Cycles()
		hw, err := wl.Run(l)
		if err != nil {
			return err
		}
		var fs finalState
		fs.cycles = l.Cycles() - cy0
		fs.events = l.Events() - ev0
		acc, err := hw.Get("acc")
		if err != nil {
			return err
		}
		fs.acc = acc.Uint64()
		for k := 0; k < 8; k++ {
			v, err := hw.GetMem("mem", k)
			if err != nil {
				return err
			}
			fs.mem[k] = v.Uint64()
		}
		mu.Lock()
		finals[i] = fs
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return finals, stats
}

// TestPoolBitIdentity runs the same 8 independent workloads at workers=1
// and workers=8 (under -race in CI) and requires identical final storage
// state per job and identical aggregate cycle/event counts — the proof
// that fanning out changes nothing but the wall clock.
func TestPoolBitIdentity(t *testing.T) {
	mod := parsePool(t)
	const n = 8
	serial, sstats := runJobs(t, mod, 1, n, nil)
	parallel, pstats := runJobs(t, mod, 8, n, obs.NewRegistry())
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("job %d diverged: serial %+v parallel %+v", i, serial[i], parallel[i])
		}
	}
	if sstats.Cycles != pstats.Cycles || sstats.Events != pstats.Events {
		t.Errorf("aggregate counts diverged: serial %d cycles / %d events, parallel %d / %d",
			sstats.Cycles, sstats.Events, pstats.Cycles, pstats.Events)
	}
	if sstats.Cycles == 0 || sstats.Events == 0 {
		t.Fatalf("degenerate run: %+v", sstats)
	}
	// Distinct memory images must really produce distinct final states.
	if serial[0] == serial[1] {
		t.Error("jobs 0 and 1 should differ (distinct memory images)")
	}
}

// TestPoolErrorReductionOrder checks that the reported error is the
// lowest-index failure no matter which worker hits its failure first.
func TestPoolErrorReductionOrder(t *testing.T) {
	pool := &cosim.Pool{Workers: 8}
	errLow := errors.New("job 3 failed")
	_, err := pool.Run("test.errs", 10, func(i int, l *cosim.Lane) error {
		switch i {
		case 3:
			time.Sleep(10 * time.Millisecond) // fail late: order must not matter
			return errLow
		case 7:
			return errors.New("job 7 failed")
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want the lowest-index failure %v", err, errLow)
	}
}

// TestPoolFakeClockWindows pins the setup/sim/wall windows down exactly
// with an injected clock that advances one second per reading.
func TestPoolFakeClockWindows(t *testing.T) {
	var ticks int
	clock := func() time.Time {
		ticks++
		return time.Unix(int64(ticks), 0)
	}
	pool := &cosim.Pool{Workers: 1, Now: clock}
	const n = 3
	stats, err := pool.Run("test.clock", n, func(i int, l *cosim.Lane) error {
		if err := l.Setup(func() error { return nil }); err != nil {
			return err
		}
		return l.Sim(func() error { l.AddCycles(10); return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := n * time.Second; stats.Setup != want {
		t.Errorf("Setup = %v, want %v", stats.Setup, want)
	}
	if want := n * time.Second; stats.Sim != want {
		t.Errorf("Sim = %v, want %v", stats.Sim, want)
	}
	// Wall spans every clock reading between start and end: 1 (start) +
	// 4 per job + 1 (end) readings → n*4+1 seconds.
	if want := time.Duration(n*4+1) * time.Second; stats.Wall != want {
		t.Errorf("Wall = %v, want %v", stats.Wall, want)
	}
	// cycles/sec must divide by the sim window only: 30 cycles over 3 s.
	if got := stats.SimCyclesPerSec(); got != 10 {
		t.Errorf("SimCyclesPerSec = %v, want 10 (setup leaked into the denominator?)", got)
	}
	if got, want := stats.Speedup(), stats.Sim.Seconds()/stats.Wall.Seconds(); got != want {
		t.Errorf("Speedup = %v, want %v", got, want)
	}
}

// TestStatsZeroGuards: degenerate measurements report 0, never Inf/NaN.
func TestStatsZeroGuards(t *testing.T) {
	var s cosim.Stats
	if s.SimCyclesPerSec() != 0 || s.AggregateCyclesPerSec() != 0 || s.Speedup() != 0 {
		t.Errorf("zero stats should report zero rates: %v %v %v",
			s.SimCyclesPerSec(), s.AggregateCyclesPerSec(), s.Speedup())
	}
}

// TestWorkloadMaxCycles bounds a never-halting run.
func TestWorkloadMaxCycles(t *testing.T) {
	mod := parsePool(t)
	pool := &cosim.Pool{Workers: 1}
	stats, err := pool.Run("test.max", 1, func(i int, l *cosim.Lane) error {
		// halted goes high at cnt==10; cap below that.
		_, err := cosim.Workload{Mod: mod, MaxCycles: 4}.Run(l)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", stats.Cycles)
	}
}

// TestPoolObsInstrumentation checks the registry wiring: per-worker cycle
// counters sum to the aggregate, the cosim.* totals match, per-job
// histograms saw every job, and each job produced a span.
func TestPoolObsInstrumentation(t *testing.T) {
	mod := parsePool(t)
	reg := obs.NewRegistry()
	const n = 6
	_, stats := func() ([]finalState, cosim.Stats) { return runJobs(t, mod, 3, n, reg) }()
	counters := reg.Counters()
	if counters["cosim.jobs"] != n {
		t.Errorf("cosim.jobs = %d, want %d", counters["cosim.jobs"], n)
	}
	if counters["cosim.cycles"] != stats.Cycles || counters["cosim.events"] != stats.Events {
		t.Errorf("counter totals %d/%d, stats %d/%d",
			counters["cosim.cycles"], counters["cosim.events"], stats.Cycles, stats.Events)
	}
	var perWorker uint64
	for w := 0; w < 3; w++ {
		perWorker += counters[fmt.Sprintf("cosim.worker%d.cycles", w)]
	}
	if perWorker != stats.Cycles {
		t.Errorf("per-worker cycles sum %d, want %d", perWorker, stats.Cycles)
	}
	hists := reg.Histograms()
	if hists["cosim.job.sim.ns"].Count != n || hists["cosim.job.setup.ns"].Count != n {
		t.Errorf("histogram counts: sim %d setup %d, want %d each",
			hists["cosim.job.sim.ns"].Count, hists["cosim.job.setup.ns"].Count, n)
	}
	var jobs int
	for _, sp := range reg.Spans() {
		if sp.Name == "job" {
			jobs++
		}
	}
	if jobs != n {
		t.Errorf("job spans = %d, want %d", jobs, n)
	}
}
