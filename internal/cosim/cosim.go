// Package cosim fans independent event-driven Verilog simulations across a
// bounded worker pool — the Table 1 measurement's slow side, parallelized
// with the same discipline as explore.evaluateAll: jobs are handed to
// workers in index order and results are reduced in index order, so the
// outcome is bit-identical to the sequential loop no matter how the workers
// interleave.
//
// Safety of the fan-out rests on an audited invariant: a verilog.Sim holds
// its elaborated *verilog.Module strictly read-only (elaboration state —
// net values, memories, the event queue — lives in the Sim), and
// bitvec.Value is immutable (every operation returns a fresh value), so any
// number of concurrent Sims may share one parsed Module and one program
// image. The -race co-simulation tests (cosim, hgen, experiments) exercise
// exactly that sharing.
//
// Measurement is first-class: each worker owns a Lane that separates setup
// time (elaboration, program load) from simulation time (the Tick loop) and
// accumulates cycle/event counts, reported through internal/obs as
// per-worker counters, per-job latency histograms and one span per job on
// the worker's trace lane. The parallel speedup is therefore measured —
// summed per-instance simulation time over wall clock — never assumed.
package cosim

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/verilog"
)

// Pool runs independent co-simulation jobs over a bounded worker pool.
// The zero value is usable: NumCPU workers, no instrumentation, real clock.
type Pool struct {
	// Workers bounds concurrency (<= 0 means runtime.NumCPU()). Workers=1
	// runs jobs inline on the calling goroutine.
	Workers int
	// Obs, when non-nil, receives cosim.* counters, per-job setup/sim
	// latency histograms, and one span per job on the owning worker's lane.
	Obs *obs.Registry
	// Lane0 is the first obs trace lane used for workers (default 1; lane 0
	// conventionally belongs to the caller).
	Lane0 int
	// Now is the clock used for the setup/sim/wall timing windows; nil
	// means time.Now. Tests inject a fake clock to pin the windows down
	// exactly.
	Now func() time.Time
}

// NumWorkers returns the effective worker count.
func (p *Pool) NumWorkers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.NumCPU()
}

func (p *Pool) clock() func() time.Time {
	if p.Now != nil {
		return p.Now
	}
	return time.Now
}

// Lane is one worker's measurement context. A Lane is owned by exactly one
// worker goroutine for the duration of a Run; jobs record their work
// through it and the pool aggregates the lanes into Stats afterwards.
type Lane struct {
	// Worker is the owning worker's index in [0, NumWorkers).
	Worker int

	lane    int
	now     func() time.Time
	cycles  uint64
	events  uint64
	setup   time.Duration
	sim     time.Duration
	cCycles *obs.Counter
	cEvents *obs.Counter
	hSetup  *obs.Histogram
	hSim    *obs.Histogram
}

// AddCycles records n simulated clock cycles on this lane.
func (l *Lane) AddCycles(n uint64) {
	l.cycles += n
	l.cCycles.Add(n)
}

// AddEvents records n event-driven process evaluations on this lane.
func (l *Lane) AddEvents(n uint64) {
	l.events += n
	l.cEvents.Add(n)
}

// Cycles returns the lane's accumulated cycle count so far.
func (l *Lane) Cycles() uint64 { return l.cycles }

// Events returns the lane's accumulated event count so far.
func (l *Lane) Events() uint64 { return l.events }

// Setup runs f inside the lane's setup-time window (elaboration, program
// load — everything Table 1 must exclude from the simulation denominator).
func (l *Lane) Setup(f func() error) error {
	t0 := l.now()
	err := f()
	d := l.now().Sub(t0)
	l.setup += d
	l.hSetup.Observe(d)
	return err
}

// Sim runs f inside the lane's simulation-time window (the Tick loop).
func (l *Lane) Sim(f func() error) error {
	t0 := l.now()
	err := f()
	d := l.now().Sub(t0)
	l.sim += d
	l.hSim.Observe(d)
	return err
}

// Stats aggregates the measured work of one Run (or, via Add, several).
type Stats struct {
	// Jobs is the number of jobs executed.
	Jobs int
	// Workers is the effective worker count.
	Workers int
	// Cycles and Events sum every lane's AddCycles/AddEvents.
	Cycles uint64
	Events uint64
	// Setup is the summed per-job setup time (outside the timed window).
	Setup time.Duration
	// Sim is the summed per-job simulation (Tick-loop) time — the
	// serial-equivalent cost of the work.
	Sim time.Duration
	// Wall is the wall-clock duration of the whole fan-out.
	Wall time.Duration
}

// Add merges two measurements (batched Runs): counts and durations sum,
// Workers keeps the maximum.
func (s Stats) Add(o Stats) Stats {
	s.Jobs += o.Jobs
	s.Cycles += o.Cycles
	s.Events += o.Events
	s.Setup += o.Setup
	s.Sim += o.Sim
	s.Wall += o.Wall
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	return s
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// SimCyclesPerSec is the per-instance simulator speed: cycles over summed
// Tick-loop time. This is the honest Table 1 denominator — it excludes
// setup and does not credit parallelism.
func (s Stats) SimCyclesPerSec() float64 {
	return ratio(float64(s.Cycles), s.Sim.Seconds())
}

// AggregateCyclesPerSec is the pool throughput: cycles over wall clock.
func (s Stats) AggregateCyclesPerSec() float64 {
	return ratio(float64(s.Cycles), s.Wall.Seconds())
}

// Speedup is the measured parallelism of the fan-out: summed per-instance
// simulation time over wall clock (1.0 ≈ serial; ≈ Workers when the pool
// keeps every worker busy). This equals the true parallel-vs-serial
// wall-clock speedup when workers have free cores; with more workers than
// cores, per-instance time inflates under contention and this measures
// oversubscription, not gain — compare AggregateCyclesPerSec across worker
// counts (as BenchmarkTable1_VerilogModel does) for the honest wall-clock
// answer.
func (s Stats) Speedup() float64 {
	return ratio(s.Sim.Seconds(), s.Wall.Seconds())
}

// Run executes jobs 0..n-1 across the pool, calling job(i, lane) for each.
// Jobs must be mutually independent. The returned error is the
// lowest-index failure (reduced in index order after all jobs finish),
// exactly as a sequential loop that kept going would report; Stats
// aggregates every lane's measurements either way.
func (p *Pool) Run(name string, n int, job func(i int, l *Lane) error) (Stats, error) {
	workers := p.NumWorkers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	now := p.clock()
	lane0 := p.Lane0
	if lane0 <= 0 {
		lane0 = 1
	}
	lanes := make([]*Lane, workers)
	for w := range lanes {
		lanes[w] = &Lane{
			Worker:  w,
			lane:    lane0 + w,
			now:     now,
			cCycles: p.Obs.Counter(fmt.Sprintf("cosim.worker%d.cycles", w)),
			cEvents: p.Obs.Counter(fmt.Sprintf("cosim.worker%d.events", w)),
			hSetup:  p.Obs.Histogram("cosim.job.setup.ns"),
			hSim:    p.Obs.Histogram("cosim.job.sim.ns"),
		}
		p.Obs.SetLaneName(lane0+w, fmt.Sprintf("cosim worker %d", w))
	}

	root := p.Obs.StartSpan(name)
	errs := make([]error, n)
	runJob := func(i int, l *Lane) {
		sp := root.ChildLane("job", l.lane)
		sp.SetArg("job", strconv.Itoa(i))
		errs[i] = job(i, l)
		if errs[i] != nil {
			sp.SetArg("err", errs[i].Error())
		}
		sp.End()
	}

	start := now()
	if workers == 1 {
		for i := 0; i < n; i++ {
			runJob(i, lanes[0])
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(l *Lane) {
				defer wg.Done()
				for i := range next {
					runJob(i, l)
				}
			}(lanes[w])
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	wall := now().Sub(start)
	root.SetArg("jobs", strconv.Itoa(n))
	root.End()

	stats := Stats{Jobs: n, Workers: workers, Wall: wall}
	for _, l := range lanes {
		stats.Cycles += l.cycles
		stats.Events += l.events
		stats.Setup += l.setup
		stats.Sim += l.sim
	}
	p.Obs.Counter("cosim.jobs").Add(uint64(n))
	p.Obs.Counter("cosim.cycles").Add(stats.Cycles)
	p.Obs.Counter("cosim.events").Add(stats.Events)

	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// Workload is the standard co-simulation job shape: elaborate a fresh Sim
// over a shared (read-only) Module, initialize memories, then tick the
// clock until a halt net goes nonzero. Elaboration and Init are timed as
// setup; only the Tick loop is timed as simulation.
type Workload struct {
	// Mod is the parsed module; it may be shared by concurrent jobs.
	Mod *verilog.Module
	// Init loads program and data memories (timed as setup). May be nil.
	Init func(hw *verilog.Sim) error
	// Clock is the clock net (default "clk").
	Clock string
	// Halt is the net that ends the run when nonzero (default "halted").
	Halt string
	// MaxCycles bounds the run (0 = until halt).
	MaxCycles uint64
	// Stop, when non-nil, is polled each cycle and ends the run early —
	// the budget guard for very slow hosts.
	Stop func() bool
}

// Run executes the workload on lane l and returns the finished simulator
// (for final-state inspection). Cycle and event totals are recorded on the
// lane; the event count includes the settles Init triggered, since those
// are real event-driven work, while the *time* they took stays in the
// setup window.
func (w Workload) Run(l *Lane) (*verilog.Sim, error) {
	clock := w.Clock
	if clock == "" {
		clock = "clk"
	}
	halt := w.Halt
	if halt == "" {
		halt = "halted"
	}
	var hw *verilog.Sim
	err := l.Setup(func() error {
		var err error
		hw, err = verilog.NewSim(w.Mod)
		if err != nil {
			return err
		}
		if w.Init != nil {
			return w.Init(hw)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cycles uint64
	err = l.Sim(func() error {
		for {
			if err := hw.Tick(clock); err != nil {
				return err
			}
			cycles++
			hv, err := hw.Get(halt)
			if err != nil {
				return err
			}
			if !hv.IsZero() {
				return nil
			}
			if w.MaxCycles > 0 && cycles >= w.MaxCycles {
				return nil
			}
			if w.Stop != nil && w.Stop() {
				return nil
			}
		}
	})
	l.AddCycles(cycles)
	l.AddEvents(hw.Events())
	if err != nil {
		return nil, err
	}
	return hw, nil
}
