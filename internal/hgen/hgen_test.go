package hgen_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bitvec"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/machines"
	"repro/internal/tech"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

func synth(t *testing.T, d *isdl.Description, opts hgen.Options) *hgen.Result {
	t.Helper()
	r, err := hgen.Synthesize(d, tech.LSI10K(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSynthesizeToyEstimates(t *testing.T) {
	// The toy machine has a Stack, so only the cost model runs (no
	// Verilog).
	opts := hgen.DefaultOptions()
	opts.EmitVerilog = false
	r := synth(t, machines.Toy(), opts)
	if r.AreaCells <= 0 || r.CycleNs <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if len(r.Nodes) == 0 || len(r.Units) == 0 {
		t.Fatal("no nodes or units extracted")
	}
	if r.Report() == "" {
		t.Fatal("empty report")
	}
	// Phase timings: share and retime always run; emit only with Verilog.
	for _, ph := range []string{"share", "retime"} {
		if _, ok := r.PhaseSeconds[ph]; !ok {
			t.Errorf("PhaseSeconds missing %q: %v", ph, r.PhaseSeconds)
		}
	}
	if _, ok := r.PhaseSeconds["emit"]; ok {
		t.Error("emit phase recorded without Verilog emission")
	}
	if !strings.Contains(r.Report(), "share") {
		t.Error("report does not show phase timings")
	}
}

// TestCosimToyStack co-simulates the toy machine — whose Stack storage
// synthesizes to a memory plus pointer register — through call/ret and
// push/pop, including a conditional pop path.
func TestCosimToyStack(t *testing.T) {
	d := machines.Toy()
	r := synth(t, d, hgen.DefaultOptions())
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, `
    mv R1, #7
    push R1
    mv R1, #9
    push R1
    pop R2          ; 9
    pop R3          ; 7
    call fn
    add R6, R4, R2
    halt
fn:
    mv R4, #5
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	ils := xsim.New(d)
	if err := ils.Load(p); err != nil {
		t.Fatal(err)
	}
	hw, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", i, w); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; !ils.Halted(); step++ {
		if err := ils.Step(); err != nil {
			t.Fatal(err)
		}
		ils.FlushPending()
		if err := hw.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		compareState(t, d, ils, hw, 0, step)
	}
	if got := ils.State().Get("RF", 6).Uint64(); got != 14 {
		t.Fatalf("R6 = %d, want 14", got)
	}
	if got := ils.State().Get("RF", 3).Uint64(); got != 7 {
		t.Fatalf("R3 = %d, want 7", got)
	}
}

func TestSynthesizeSPAM2Verilog(t *testing.T) {
	r := synth(t, machines.SPAM2(), hgen.DefaultOptions())
	if r.VerilogLines == 0 {
		t.Fatal("no Verilog emitted")
	}
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatalf("emitted Verilog does not parse: %v", err)
	}
	if m.Name != "proc_spam2" {
		t.Fatalf("module name %q", m.Name)
	}
	if _, err := verilog.NewSim(m); err != nil {
		t.Fatalf("emitted Verilog does not elaborate: %v", err)
	}
}

func TestSynthesizeSPAMVerilog(t *testing.T) {
	r := synth(t, machines.SPAM(), hgen.DefaultOptions())
	if _, err := verilog.Parse(r.VerilogText); err != nil {
		t.Fatalf("SPAM Verilog does not parse: %v", err)
	}
}

// TestSharingReducesArea is ablation A: more sharing, less area; and
// constraints unlock sharing that rules 1–4 alone cannot (the §4.1.1 bus
// example).
func TestSharingReducesArea(t *testing.T) {
	for _, d := range []*isdl.Description{machines.SPAM(), machines.SPAM2()} {
		areas := map[hgen.SharingMode]float64{}
		for _, mode := range []hgen.SharingMode{hgen.ShareOff, hgen.ShareRules, hgen.ShareRulesAndConstraints} {
			opts := hgen.Options{Sharing: mode, Decode: hgen.DecodeTwoLevel}
			areas[mode] = synth(t, d, opts).AreaCells
		}
		if !(areas[hgen.ShareOff] > areas[hgen.ShareRules]) {
			t.Errorf("%s: rules sharing did not reduce area: %v", d.Name, areas)
		}
		if !(areas[hgen.ShareRules] >= areas[hgen.ShareRulesAndConstraints]) {
			t.Errorf("%s: constraint sharing increased area: %v", d.Name, areas)
		}
	}
	// SPAM's constraints (accumulator stores vs ALU) must actually help.
	opts := hgen.Options{Sharing: hgen.ShareRules, Decode: hgen.DecodeTwoLevel}
	rules := synth(t, machines.SPAM(), opts)
	opts.Sharing = hgen.ShareRulesAndConstraints
	full := synth(t, machines.SPAM(), opts)
	if !(full.AreaCells < rules.AreaCells) {
		t.Errorf("SPAM constraints did not unlock sharing: %.0f vs %.0f", full.AreaCells, rules.AreaCells)
	}
}

// TestDecodeStyleAblation is ablation B: the two-level signature decode is
// smaller than the naive comparator decode.
func TestDecodeStyleAblation(t *testing.T) {
	two := synth(t, machines.SPAM(), hgen.Options{Sharing: hgen.ShareRulesAndConstraints, Decode: hgen.DecodeTwoLevel})
	cmp := synth(t, machines.SPAM(), hgen.Options{Sharing: hgen.ShareRulesAndConstraints, Decode: hgen.DecodeComparator})
	if !(two.Breakdown["decode"] < cmp.Breakdown["decode"]) {
		t.Errorf("two-level decode %.0f should beat comparator %.0f",
			two.Breakdown["decode"], cmp.Breakdown["decode"])
	}
}

// TestTable2Shape pins the relative shape of Table 2: SPAM (4 ops + 3
// moves) costs more than SPAM2 (3-way, limited ops) on every column.
func TestTable2Shape(t *testing.T) {
	spam := synth(t, machines.SPAM(), hgen.DefaultOptions())
	spam2 := synth(t, machines.SPAM2(), hgen.DefaultOptions())
	if !(spam.AreaCells > spam2.AreaCells) {
		t.Errorf("die size: SPAM %.0f should exceed SPAM2 %.0f", spam.AreaCells, spam2.AreaCells)
	}
	if !(spam.CycleNs > spam2.CycleNs) {
		t.Errorf("cycle: SPAM %.1f should exceed SPAM2 %.1f", spam.CycleNs, spam2.CycleNs)
	}
	if !(spam.VerilogLines > spam2.VerilogLines) {
		t.Errorf("verilog lines: SPAM %d should exceed SPAM2 %d", spam.VerilogLines, spam2.VerilogLines)
	}
}

// TestPipelineInference checks §4.1.3: SPAM's multiplier (Cycle 1, Stall 2,
// Latency 3) synthesizes as a 3-deep pipeline without bypass.
func TestPipelineInference(t *testing.T) {
	r := synth(t, machines.SPAM(), hgen.Options{Sharing: hgen.ShareRulesAndConstraints})
	var mulUnit *hgen.Unit
	for _, u := range r.Units {
		if u.Class == "mul" {
			mulUnit = u
			break
		}
	}
	if mulUnit == nil {
		t.Fatal("no multiplier unit")
	}
	if mulUnit.PipeDepth != 3 {
		t.Errorf("multiplier pipeline depth = %d, want 3", mulUnit.PipeDepth)
	}
	if mulUnit.Bypass {
		t.Error("Stall > 0 implies no bypass")
	}
}

// TestCliqueCoverValidity is the property test on the sharing result: every
// group must be a clique of the compatibility matrix (no two incompatible
// nodes share a unit), and every node must be covered exactly once.
func TestCliqueCoverValidity(t *testing.T) {
	for _, d := range []*isdl.Description{machines.Toy(), machines.SPAM(), machines.SPAM2()} {
		opts := hgen.Options{Sharing: hgen.ShareRulesAndConstraints}
		r := synth(t, d, opts)
		seen := map[int]bool{}
		for _, group := range r.Groups {
			for _, n := range group {
				if seen[n] {
					t.Fatalf("%s: node %d in two groups", d.Name, n)
				}
				seen[n] = true
			}
			// All nodes in a group share one unit class.
			for _, n := range group[1:] {
				a, b := r.Nodes[group[0]], r.Nodes[n]
				if (a.Kind == hgen.NodeMul) != (b.Kind == hgen.NodeMul) {
					t.Fatalf("%s: mixed mul/non-mul group", d.Name)
				}
				// Nodes of the same operation may share only across
				// exclusive options.
				if a.Op == b.Op && a.ParamPath == b.ParamPath {
					t.Fatalf("%s: same-op same-path nodes %s and %s share", d.Name, a, b)
				}
			}
		}
		if len(seen) != len(r.Nodes) {
			t.Fatalf("%s: cover misses nodes: %d of %d", d.Name, len(seen), len(r.Nodes))
		}
	}
}

// randomStraightLine builds a constraint-valid straight-line SPAM2 program
// (no branches) of n instructions plus a halt.
func randomStraightLine(t *testing.T, d *isdl.Description, rnd *rand.Rand, n int) *asm.Program {
	t.Helper()
	var lines []string
	alu := []string{
		"add R%d, R%d, R%d", "sub R%d, R%d, R%d", "and R%d, R%d, R%d",
	}
	for len(lines) < n {
		switch rnd.Intn(6) {
		case 0:
			lines = append(lines, sprintf("mvi R%d, #%d", rnd.Intn(8), rnd.Intn(200)-100))
		case 1:
			f := alu[rnd.Intn(len(alu))]
			lines = append(lines, sprintf(f, rnd.Intn(8), rnd.Intn(8), rnd.Intn(8)))
		case 2:
			lines = append(lines, sprintf("mvar A%d, R%d", rnd.Intn(4), rnd.Intn(8)))
		case 3:
			// Loads forbid a parallel branch (constraint), which is fine
			// in a straight line. Post-increment exercises option side
			// effects.
			if rnd.Intn(2) == 0 {
				lines = append(lines, sprintf("ld R%d, @A%d+", rnd.Intn(8), rnd.Intn(4)))
			} else {
				lines = append(lines, sprintf("ld R%d, @A%d", rnd.Intn(8), rnd.Intn(4)))
			}
		case 4:
			lines = append(lines, sprintf("st @A%d, R%d", rnd.Intn(4), rnd.Intn(8)))
		case 5:
			// A VLIW pair: ALU op with a parallel move.
			lines = append(lines, sprintf("add R%d, R%d, #%d || MV.mvar A%d, R%d",
				rnd.Intn(8), rnd.Intn(8), rnd.Intn(100), rnd.Intn(4), rnd.Intn(8)))
		}
	}
	lines = append(lines, "halt")
	p, err := asm.Assemble(d, strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("random program: %v\n%s", err, strings.Join(lines, "\n"))
	}
	return p
}

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// TestCosimILSvsVerilog is the central integration test of the paper's
// claim that both generated models implement the same machine: random SPAM2
// programs run lock-step on the XSIM instruction-level simulator and on the
// event-driven simulation of the HGEN-generated Verilog; every storage
// element must match after every instruction.
func TestCosimILSvsVerilog(t *testing.T) {
	d := machines.SPAM2()
	r := synth(t, d, hgen.DefaultOptions())
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		p := randomStraightLine(t, d, rnd, 25)

		ils := xsim.New(d)
		if err := ils.Load(p); err != nil {
			t.Fatal(err)
		}
		hw, err := verilog.NewSim(m)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range p.Words {
			if err := hw.SetMem("s_IMEM", p.Base+i, w); err != nil {
				t.Fatal(err)
			}
		}
		// Seed both data memories identically.
		for i := 0; i < 16; i++ {
			v := bitvec.FromUint64(16, uint64(rnd.Intn(1<<16)))
			ils.State().Set("DM", i, v)
			if err := hw.SetMem("s_DM", i, v); err != nil {
				t.Fatal(err)
			}
		}

		for step := 0; !ils.Halted(); step++ {
			if err := ils.Step(); err != nil {
				t.Fatalf("trial %d step %d: ILS fault: %v", trial, step, err)
			}
			ils.FlushPending()
			if err := hw.Tick("clk"); err != nil {
				t.Fatalf("trial %d step %d: HW fault: %v", trial, step, err)
			}
			compareState(t, d, ils, hw, trial, step)
		}
		// The hardware model must report halted too.
		hv, err := hw.Get("halted")
		if err != nil {
			t.Fatal(err)
		}
		if hv.Uint64() != 1 {
			t.Fatalf("trial %d: hardware model did not halt", trial)
		}
	}
}

func compareState(t *testing.T, d *isdl.Description, ils *xsim.Simulator, hw *verilog.Sim, trial, step int) {
	t.Helper()
	if err := stateDiff(d, ils, hw); err != nil {
		t.Fatalf("trial %d step %d: %v", trial, step, err)
	}
}

// stateDiff compares every architectural storage element of the two models
// and reports the first mismatch. It returns (rather than fails) so
// concurrent co-simulation trials can run it off the test goroutine.
func stateDiff(d *isdl.Description, ils *xsim.Simulator, hw *verilog.Sim) error {
	for _, st := range d.Storage {
		if st.Kind.Addressed() {
			if st.Kind == isdl.StInstructionMemory {
				continue
			}
			for i := 0; i < st.Depth; i++ {
				want := ils.State().Get(st.Name, i)
				got, err := hw.GetMem("s_"+st.Name, i)
				if err != nil {
					return err
				}
				if !got.Eq(want) {
					return fmt.Errorf("%s[%d] = %s (hw) vs %s (ils)", st.Name, i, got, want)
				}
			}
		} else {
			want := ils.State().Get(st.Name, 0)
			got, err := hw.Get("s_" + st.Name)
			if err != nil {
				return err
			}
			if !got.Eq(want) {
				return fmt.Errorf("%s = %s (hw) vs %s (ils)", st.Name, got, want)
			}
		}
	}
	return nil
}

// TestCosimControlFlow runs a branching SPAM2 kernel (a down-counting loop)
// on both models.
func TestCosimControlFlow(t *testing.T) {
	d := machines.SPAM2()
	r := synth(t, d, hgen.DefaultOptions())
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, `
    mvi R1, #0
    mvi R2, #10
loop:
    beqz R2, done
    add R1, R1, R2
    sub R2, R2, #1
    jmp loop
done:
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ils := xsim.New(d)
	if err := ils.Load(p); err != nil {
		t.Fatal(err)
	}
	hw, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", i, w); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; !ils.Halted(); step++ {
		if err := ils.Step(); err != nil {
			t.Fatal(err)
		}
		ils.FlushPending()
		if err := hw.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		compareState(t, d, ils, hw, 0, step)
	}
	if got := ils.State().Get("RF", 1).Uint64(); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

// TestRetimeForCycle exercises the §6.2 pipeline optimizer: deepening the
// critical multiplier pipeline must shorten SPAM's cycle, the retimed
// description must be valid, and programs must still compute the same
// results (with more stall cycles where dependences exist).
func TestRetimeForCycle(t *testing.T) {
	d := machines.SPAM()
	before := synth(t, d, hgen.Options{Sharing: hgen.ShareRulesAndConstraints})

	res, err := hgen.RetimeForCycle(d, tech.LSI10K(), before.CycleNs*0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) == 0 {
		t.Fatal("no retiming changes were made")
	}
	if !(res.CycleNs < before.CycleNs) {
		t.Fatalf("cycle did not improve: %.1f -> %.1f", before.CycleNs, res.CycleNs)
	}
	// The MAC operations should be the ones retimed (the 64-bit multiplier
	// owns the critical stage).
	sawMul := false
	for _, c := range res.Changes {
		if strings.HasPrefix(c.Op, "MAC.") {
			sawMul = true
		}
	}
	if !sawMul {
		t.Errorf("expected MAC operations in the changes: %+v", res.Changes)
	}
	if !strings.Contains(res.Report(), "retiming:") {
		t.Error("empty report")
	}

	// The retimed machine still computes the dot product correctly.
	const n = 16
	x, y := machines.VecTestVectors(n)
	p, err := asm.Assemble(res.Desc, machines.DotSPAM(n, x, y))
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(res.Desc)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	want := machines.DotReference(n, x, y)
	if got := sim.State().Get("RF", 8).Uint64(); got != uint64(want) {
		t.Fatalf("retimed dot = %d, want %d", got, want)
	}

	// Deeper pipeline, same program: at least as many stalls as before.
	base := xsim.New(d)
	p0, err := asm.Assemble(d, machines.DotSPAM(n, x, y))
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Load(p0); err != nil {
		t.Fatal(err)
	}
	if err := base.Run(0); err != nil {
		t.Fatal(err)
	}
	if sim.Stats().DataStalls < base.Stats().DataStalls {
		t.Errorf("retimed machine has fewer stalls (%d) than base (%d)",
			sim.Stats().DataStalls, base.Stats().DataStalls)
	}
}

func TestRetimeBadTarget(t *testing.T) {
	if _, err := hgen.RetimeForCycle(machines.SPAM(), tech.LSI10K(), -1); err == nil {
		t.Fatal("negative target should fail")
	}
}

// TestRetimeUnreachableTarget: an absurdly low target stops at the depth cap
// with Met == false rather than looping.
func TestRetimeUnreachableTarget(t *testing.T) {
	res, err := hgen.RetimeForCycle(machines.SPAM(), tech.LSI10K(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatal("1 ns target cannot be met")
	}
	if res.CycleNs <= 1 {
		t.Fatalf("cycle %f", res.CycleNs)
	}
}

// TestCosimRISC32 co-simulates the RISC machine (register+offset memory
// addressing: the Verilog model indexes memories with computed expressions).
func TestCosimRISC32(t *testing.T) {
	d := machines.RISC32()
	r := synth(t, d, hgen.DefaultOptions())
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, `
    li R1, 0          ; sum
    li R2, 10         ; counter
    li R3, 100        ; base address
    li R4, 1
loop:
    beq R2, R0, done
    add R1, R1, R2
    sw R1, 4(R3)
    lw R5, 4(R3)
    sub R2, R2, R4
    j loop
done:
    sra R6, R1, R4
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	ils := xsim.New(d)
	if err := ils.Load(p); err != nil {
		t.Fatal(err)
	}
	hw, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", i, w); err != nil {
			t.Fatal(err)
		}
	}
	for step := 0; !ils.Halted(); step++ {
		if err := ils.Step(); err != nil {
			t.Fatal(err)
		}
		ils.FlushPending()
		if err := hw.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		compareState(t, d, ils, hw, 0, step)
	}
	if got := ils.State().Get("RF", 1).Uint64(); got != 55 {
		t.Fatalf("sum = %d", got)
	}
	if got := ils.State().Get("DMEM", 104).Uint64(); got != 55 {
		t.Fatalf("DMEM[104] = %d", got)
	}
	if got := ils.State().Get("RF", 6).Uint64(); got != 27 {
		t.Fatalf("sra result = %d", got)
	}
}

// TestEstimateDeterministic is the regression test for the write-back
// energy accumulation: estimate() used to sum the per-storage mux energy
// in map-iteration order, and float addition is not associative, so
// EnergyPerInstrPJ — and through it the PowerMW objective every
// exploration strategy ranks candidates by — differed in the last bit
// from run to run. Repeated synthesis of the same description must be
// bit-identical.
func TestEstimateDeterministic(t *testing.T) {
	opts := hgen.DefaultOptions()
	opts.EmitVerilog = false
	ref := synth(t, machines.SPAM(), opts)
	for i := 0; i < 20; i++ {
		r := synth(t, machines.SPAM(), opts)
		if r.EnergyPerInstrPJ != ref.EnergyPerInstrPJ {
			t.Fatalf("run %d: EnergyPerInstrPJ %v != %v", i, r.EnergyPerInstrPJ, ref.EnergyPerInstrPJ)
		}
		if r.AreaCells != ref.AreaCells || r.CycleNs != ref.CycleNs {
			t.Fatalf("run %d: area/cycle differ: (%v, %v) != (%v, %v)",
				i, r.AreaCells, r.CycleNs, ref.AreaCells, ref.CycleNs)
		}
	}
}
