package hgen

import (
	"sort"

	"repro/internal/decode"
	"repro/internal/isdl"
)

// This file implements the resource-sharing algorithm of Figure 5:
//
//	Label each operation in RTL with an integer
//	A[i][j] = 1 if the nodes can be shared, 0 otherwise
//	Generate maximal cliques for A
//	Generate hardware for maximal cliques
//
// with the shareability criteria of §4.1.2 (rules 1–4) and the refinement
// that constraints can prove operations in different fields mutually
// exclusive, enabling more sharing (the bus example of §4.1.1).

// SharingMode selects how aggressively nodes are shared (ablation A).
type SharingMode int

const (
	// ShareOff generates one circuit per node (the "naive scheme" of
	// §4.1.1).
	ShareOff SharingMode = iota
	// ShareRules applies rules 1–4 only.
	ShareRules
	// ShareRulesAndConstraints additionally consults the constraint
	// section to prove cross-field mutual exclusion (the paper's full
	// algorithm).
	ShareRulesAndConstraints
)

func (m SharingMode) String() string {
	switch m {
	case ShareOff:
		return "off"
	case ShareRules:
		return "rules"
	default:
		return "rules+constraints"
	}
}

// shareMatrix builds A. A[i][j] is true iff nodes i and j may share a
// circuit.
func shareMatrix(d *isdl.Description, nodes []*Node, mode SharingMode, coex *coexistence) [][]bool {
	n := len(nodes)
	a := make([][]bool, n)
	for i := range a {
		a[i] = make([]bool, n)
	}
	if mode == ShareOff {
		return a
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ok := shareable(nodes[i], nodes[j], mode, coex)
			a[i][j], a[j][i] = ok, ok
		}
	}
	return a
}

func shareable(x, y *Node, mode SharingMode, coex *coexistence) bool {
	// Rule 2: different tasks cannot share (add/sub subsume each other).
	if unitClass(x.Kind) != unitClass(y.Kind) {
		return false
	}
	if x.Op == y.Op {
		// Same operation: live in the same cycle (rule 1 covers the same
		// statement; concurrently-evaluated statements of one operation
		// are equally parallel) — unless they belong to different options
		// of the same non-terminal parameter, which are mutually
		// exclusive by construction.
		xp, yp := x.ParamPath, y.ParamPath
		if xp == "" || yp == "" {
			return false
		}
		return paramOf(xp) == paramOf(yp) && xp != yp
	}
	if x.Op.Field == y.Op.Field {
		// Rule 3: operations of one field are mutually exclusive.
		return true
	}
	// Rule 4: different fields operate in parallel — unless the
	// constraints prove the two operations never co-occur.
	if mode == ShareRulesAndConstraints {
		return !coex.canCoexist(x.Op, y.Op)
	}
	return false
}

// paramOf strips the option index from "param/idx[...]" leaving the
// parameter root.
func paramOf(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}

// coexistence answers "can these two operations appear in the same valid
// instruction?" by searching for a completing selection of one operation
// per remaining field that satisfies every constraint.
type coexistence struct {
	d     *isdl.Description
	cache map[[2]*isdl.Operation]bool
	// budget caps the search; exhausting it answers "yes" (conservative:
	// no sharing).
	budget int
}

func newCoexistence(d *isdl.Description) *coexistence {
	return &coexistence{d: d, cache: map[[2]*isdl.Operation]bool{}}
}

func (c *coexistence) canCoexist(a, b *isdl.Operation) bool {
	if a.Field == b.Field {
		return a == b
	}
	key := [2]*isdl.Operation{a, b}
	if a.Field.Index > b.Field.Index {
		key = [2]*isdl.Operation{b, a}
	}
	if v, ok := c.cache[key]; ok {
		return v
	}
	c.budget = 200000
	sel := make([]*isdl.Operation, len(c.d.Fields))
	sel[a.Field.Index] = a
	sel[b.Field.Index] = b
	v := c.search(sel, 0)
	c.cache[key] = v
	return v
}

func (c *coexistence) search(sel []*isdl.Operation, field int) bool {
	if c.budget <= 0 {
		return true // give up: assume they can co-occur
	}
	c.budget--
	if field == len(sel) {
		m := make(map[*isdl.Operation]bool, len(sel))
		for _, op := range sel {
			m[op] = true
		}
		return decode.CheckConstraints(c.d, m) == nil
	}
	if sel[field] != nil {
		return c.search(sel, field+1)
	}
	for _, op := range c.d.Fields[field].Ops {
		sel[field] = op
		if c.search(sel, field+1) {
			sel[field] = nil
			return true
		}
	}
	sel[field] = nil
	return false
}

// maximalCliques enumerates maximal cliques of A with the Bron–Kerbosch
// algorithm (pivoting on the vertex with most candidates). Enumeration is
// capped; the greedy cover below only needs a rich-enough pool.
func maximalCliques(a [][]bool, cap int) [][]int {
	n := len(a)
	var cliques [][]int
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(cliques) >= cap {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			clique := make([]int, len(r))
			copy(clique, r)
			cliques = append(cliques, clique)
			return
		}
		// Pivot: vertex of p∪x with most neighbours in p.
		pivot, best := -1, -1
		for _, u := range append(append([]int{}, p...), x...) {
			cnt := 0
			for _, v := range p {
				if a[u][v] {
					cnt++
				}
			}
			if cnt > best {
				best, pivot = cnt, u
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot < 0 || !a[pivot][v] {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, w := range p {
				if a[v][w] {
					np = append(np, w)
				}
			}
			for _, w := range x {
				if a[v][w] {
					nx = append(nx, w)
				}
			}
			nr := make([]int, len(r), len(r)+1)
			copy(nr, r)
			bk(append(nr, v), np, nx)
			// Move v from p to x.
			for i, w := range p {
				if w == v {
					p = append(p[:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	bk(nil, all, nil)
	return cliques
}

// cliqueCover partitions the nodes into shared groups: a greedy set cover
// over the maximal cliques (largest-first), falling back to greedy clique
// growth for nodes the capped enumeration missed. Every returned group is a
// clique of A.
func cliqueCover(a [][]bool, cliques [][]int) [][]int {
	n := len(a)
	assigned := make([]bool, n)
	var groups [][]int

	sort.Slice(cliques, func(i, j int) bool { return len(cliques[i]) > len(cliques[j]) })
	for _, cl := range cliques {
		var fresh []int
		for _, v := range cl {
			if !assigned[v] {
				fresh = append(fresh, v)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		for _, v := range fresh {
			assigned[v] = true
		}
		groups = append(groups, fresh)
	}
	// Fallback for anything the cap left uncovered.
	for v := 0; v < n; v++ {
		if assigned[v] {
			continue
		}
		group := []int{v}
		assigned[v] = true
		for w := v + 1; w < n; w++ {
			if assigned[w] {
				continue
			}
			ok := true
			for _, g := range group {
				if !a[g][w] {
					ok = false
					break
				}
			}
			if ok {
				group = append(group, w)
				assigned[w] = true
			}
		}
		groups = append(groups, group)
	}
	return groups
}
