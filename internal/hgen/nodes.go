// Package hgen is the HGEN hardware synthesis system of the paper (§4): it
// compiles an ISDL description into a hardware implementation model —
// synthesizable Verilog plus die size, cycle length and power estimates
// against a technology library. It implements the resource-sharing
// formulation of §4.1.1–4.1.2 (compatibility matrix + maximal cliques,
// Figure 5), the structural inference of §4.1.3 (pipeline depth and bypass
// from the Cycle/Stall/Latency costs), and the decode-logic generation of
// §4.2 (the same signatures that drive the GENSIM disassembler).
package hgen

import (
	"fmt"

	"repro/internal/isdl"
)

// NodeKind classifies an RTL node by the circuit it maps to (§4.1.2: "we
// break up the RTL expressions for all operation definitions into a number
// of nodes, each of which can be mapped to a circuit").
type NodeKind int

const (
	// NodeAdd and NodeSub map to a carry-propagate adder; per sharing rule
	// 2 an add is a subset of a subtract, so they share an add/sub unit.
	NodeAdd NodeKind = iota
	NodeSub
	NodeMul
	NodeDiv
	// NodeLogic covers bitwise AND/OR/XOR/NOT and boolean reductions.
	NodeLogic
	NodeShift
	NodeCmp
)

var nodeKindNames = map[NodeKind]string{
	NodeAdd: "add", NodeSub: "sub", NodeMul: "mul", NodeDiv: "div",
	NodeLogic: "logic", NodeShift: "shift", NodeCmp: "cmp",
}

func (k NodeKind) String() string { return nodeKindNames[k] }

// unitClass groups kinds that can share one functional unit (sharing rule
// 2, with the add⊂sub subsumption).
func unitClass(k NodeKind) string {
	switch k {
	case NodeAdd, NodeSub:
		return "addsub"
	default:
		return k.String()
	}
}

// Node is one numbered RTL node.
type Node struct {
	ID    int
	Kind  NodeKind
	Width int
	// Op owns the node; Stmt is the statement ordinal within the owner
	// (sharing rule 1 forbids sharing within one statement, and nodes of
	// one operation are all live in the same cycle).
	Op   *isdl.Operation
	Stmt int
	// ParamPath is non-empty for nodes contributed by a non-terminal
	// option: "param/optionIndex". Nodes from different options of the
	// same parameter are mutually exclusive and may share.
	ParamPath string
	OptionIdx int // -1 when not from an option
}

func (n *Node) String() string {
	p := ""
	if n.ParamPath != "" {
		p = " " + n.ParamPath
	}
	return fmt.Sprintf("n%d %s%d %s%s", n.ID, n.Kind, n.Width, n.Op.QualName(), p)
}

// extractNodes numbers every circuit-mappable node of every operation
// (actions, side effects, and the value/side-effect RTL of each reachable
// non-terminal option).
func extractNodes(d *isdl.Description) []*Node {
	var nodes []*Node
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			x := &extractor{nodes: &nodes, op: op, optionIdx: -1}
			x.stmts(op.Action)
			x.stmts(op.SideEffect)
			for _, prm := range op.Params {
				if prm.NT != nil {
					extractNTNodes(&nodes, op, prm.Name, prm.NT)
				}
			}
		}
	}
	for i, n := range nodes {
		n.ID = i
	}
	return nodes
}

func extractNTNodes(nodes *[]*Node, op *isdl.Operation, path string, nt *isdl.NonTerminal) {
	for _, opt := range nt.Options {
		x := &extractor{
			nodes:     nodes,
			op:        op,
			paramPath: fmt.Sprintf("%s/%d", path, opt.Index),
			optionIdx: opt.Index,
		}
		x.expr(opt.Value)
		x.stmts(opt.SideEffect)
		for _, prm := range opt.Params {
			if prm.NT != nil {
				extractNTNodes(nodes, op, fmt.Sprintf("%s/%d/%s", path, opt.Index, prm.Name), prm.NT)
			}
		}
	}
}

type extractor struct {
	nodes     *[]*Node
	op        *isdl.Operation
	stmt      int
	paramPath string
	optionIdx int
}

func (x *extractor) add(kind NodeKind, width int) {
	*x.nodes = append(*x.nodes, &Node{
		Kind: kind, Width: width, Op: x.op, Stmt: x.stmt,
		ParamPath: x.paramPath, OptionIdx: x.optionIdx,
	})
}

func (x *extractor) stmts(stmts []isdl.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *isdl.Assign:
			x.expr(s.RHS)
			x.expr(s.LHS)
		case *isdl.If:
			x.expr(s.Cond)
			x.stmts(s.Then)
			x.stmts(s.Else)
		case *isdl.ExprStmt:
			x.expr(s.X)
		}
		x.stmt++
	}
}

func (x *extractor) expr(e isdl.Expr) {
	isdl.WalkExpr(e, func(e isdl.Expr) {
		switch e := e.(type) {
		case *isdl.Binary:
			w := e.Width()
			if w == 0 {
				w = 1
			}
			ow := opWidth(e)
			switch e.Op {
			case "+":
				x.add(NodeAdd, ow)
			case "-":
				x.add(NodeSub, ow)
			case "*":
				x.add(NodeMul, ow)
			case "/", "%":
				x.add(NodeDiv, ow)
			case "&", "|", "^":
				x.add(NodeLogic, ow)
			case "<<", ">>":
				x.add(NodeShift, ow)
			case "==", "!=", "<", "<=", ">", ">=":
				x.add(NodeCmp, ow)
			case "&&", "||":
				x.add(NodeLogic, 1)
			}
		case *isdl.Unary:
			switch e.Op {
			case "-":
				x.add(NodeSub, e.Width())
			case "~", "!":
				x.add(NodeLogic, maxInt(e.Width(), 1))
			}
		case *isdl.Call:
			switch e.Fn {
			case "carry", "addov":
				x.add(NodeAdd, argWidth(e))
			case "borrow", "subov":
				x.add(NodeSub, argWidth(e))
			case "slt", "sle", "sgt", "sge":
				x.add(NodeCmp, argWidth(e))
			case "asr":
				x.add(NodeShift, argWidth(e))
			}
		}
	})
}

// opWidth is the operand width of a binary node (comparisons produce one
// bit but the circuit is sized by its inputs).
func opWidth(e *isdl.Binary) int {
	w := e.X.Width()
	if e.Y.Width() > w {
		w = e.Y.Width()
	}
	if w == 0 {
		w = 1
	}
	return w
}

func argWidth(e *isdl.Call) int {
	w := 1
	for _, a := range e.Args {
		if a.Width() > w {
			w = a.Width()
		}
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
