package hgen

import (
	"fmt"
	"strings"

	"repro/internal/isdl"
	"repro/internal/tech"
)

// Pipeline optimization — the future work §6.2 names for the HGEN system.
//
// RetimeForCycle shortens the clock period of a candidate architecture by
// deepening the pipelines of the functional units on the critical path:
// each iteration synthesizes the description, finds the unit whose execute
// stage sets the cycle, and adds one pipeline stage to every operation that
// uses it — expressed back in ISDL terms, by incrementing the operation's
// Latency (and Stall, for operations declared without bypass, preserving
// the §4.1.3 structural inference). The result is a new, fully re-validated
// ISDL description plus the edit list; the generated simulator then charges
// the extra latency as stall cycles only where the program actually has
// dependent consumers, so run time (cycles × cycle length) typically
// improves even though some cycle counts rise.

// RetimeChange records one pipeline edit.
type RetimeChange struct {
	Op          string // qualified operation name
	Latency     int    // new latency
	Stall       int    // new stall cost
	UnitClass   string
	UnitWidth   int
	CycleBefore float64
	CycleAfter  float64
}

// RetimeResult is the outcome of RetimeForCycle.
type RetimeResult struct {
	// Desc is the retimed description (the input is not modified).
	Desc *isdl.Description
	// Source is the retimed description's ISDL text.
	Source  string
	Changes []RetimeChange
	// CycleNs is the achieved cycle length; Met reports whether it meets
	// the target.
	CycleNs float64
	Met     bool
}

// maxRetimeDepth caps how deep a unit may be pipelined.
const maxRetimeDepth = 8

// RetimeForCycle retimes the description toward a target cycle length.
func RetimeForCycle(d *isdl.Description, lib *tech.Library, targetNs float64) (*RetimeResult, error) {
	if targetNs <= 0 {
		return nil, fmt.Errorf("hgen: retime target must be positive")
	}
	// Work on a private copy so the caller's description is untouched.
	cur, err := isdl.Parse(isdl.Format(d))
	if err != nil {
		return nil, fmt.Errorf("hgen: retime copy: %w", err)
	}
	opts := Options{Sharing: ShareRulesAndConstraints, Decode: DecodeTwoLevel}
	res := &RetimeResult{}

	noProgress := 0
	for iter := 0; iter < 32; iter++ {
		r, err := Synthesize(cur, lib, opts)
		if err != nil {
			return nil, err
		}
		res.CycleNs = r.CycleNs
		if r.CycleNs <= targetNs {
			res.Met = true
			break
		}
		u := r.CritUnit
		if u == nil {
			break // the cycle is set by decode/storage, not a unit
		}
		if u.PipeDepth >= maxRetimeDepth {
			break
		}
		// Deepen every operation mapped onto the critical unit.
		ops := map[*isdl.Operation]bool{}
		for _, n := range u.Nodes {
			ops[n.Op] = true
		}
		changed := false
		for _, f := range cur.Fields {
			for _, op := range f.Ops {
				if !sameOpIn(ops, op) {
					continue
				}
				op.Timing.Latency++
				if op.Costs.Stall > 0 {
					// Declared without bypass: keep Stall = Latency − 1.
					op.Costs.Stall = op.Timing.Latency - 1
				}
				res.Changes = append(res.Changes, RetimeChange{
					Op: op.QualName(), Latency: op.Timing.Latency, Stall: op.Costs.Stall,
					UnitClass: u.Class, UnitWidth: u.Width,
					CycleBefore: r.CycleNs,
				})
				changed = true
			}
		}
		if !changed {
			break
		}
		// Re-materialize and re-validate the mutated candidate, exactly as
		// the exploration driver does.
		cur, err = isdl.Parse(isdl.Format(cur))
		if err != nil {
			return nil, fmt.Errorf("hgen: retimed description invalid: %w", err)
		}
		rAfter, err := Synthesize(cur, lib, opts)
		if err != nil {
			return nil, err
		}
		for i := range res.Changes {
			if res.Changes[i].CycleAfter == 0 {
				res.Changes[i].CycleAfter = rAfter.CycleNs
			}
		}
		if rAfter.CycleNs >= r.CycleNs {
			// The critical stage may have moved to a sibling unit with the
			// same delay; allow a couple of mutations to catch up before
			// concluding retiming cannot help.
			noProgress++
			if noProgress >= 3 {
				res.CycleNs = rAfter.CycleNs
				break
			}
		} else {
			noProgress = 0
		}
		res.CycleNs = rAfter.CycleNs
		if rAfter.CycleNs <= targetNs {
			res.Met = true
			break
		}
	}
	res.Desc = cur
	res.Source = isdl.Format(cur)
	return res, nil
}

// sameOpIn matches operations across the Parse(Format()) copy by qualified
// name (pointers differ between copies).
func sameOpIn(ops map[*isdl.Operation]bool, op *isdl.Operation) bool {
	for o := range ops {
		if o.QualName() == op.QualName() {
			return true
		}
	}
	return false
}

// Report renders the retiming history.
func (r *RetimeResult) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "retiming: achieved %.1f ns (target met: %v)\n", r.CycleNs, r.Met)
	for _, c := range r.Changes {
		fmt.Fprintf(&sb, "  %-14s -> Latency %d, Stall %d (%s%d unit; cycle %.1f -> %.1f ns)\n",
			c.Op, c.Latency, c.Stall, c.UnitClass, c.UnitWidth, c.CycleBefore, c.CycleAfter)
	}
	return sb.String()
}
