package hgen_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// nestedSource nests one non-terminal inside another (the paper's grammar
// explicitly allows this; Figure 4's disassemble_ntl recurses). BASE is a
// register-or-zero operand; SRC2 wraps BASE or an immediate. This exercises
// the recursive paths of the assembler's option matcher, the decoder, the
// simulator's environment tree, and the Verilog generator's parameter
// extraction.
const nestedSource = `
Machine nested;
Format 16;

Section Global_Definitions

Token GPR "R" [0..3];
Token IMM4 imm signed 4;

Non_Terminal BASE width 3 :
  option (r: GPR)
    Encode { R[2] = 0b0; R[1:0] = r; }
    Value { RF[r] }
  option "z"
    Encode { R[2] = 0b1; R[1:0] = 0b00; }
    Value { zext(0b0, 8) }
;

Non_Terminal SRC2 width 9 :
  option (b: BASE)
    Encode { R[8] = 0b0; R[7:3] = 0b00000; R[2:0] = b; }
    Value { b }
  option "#" (i: IMM4)
    Encode { R[8] = 0b1; R[7:4] = 0b0000; R[3:0] = i; }
    Value { sext(i, 8) }
;

Section Storage

InstructionMemory IMEM width 16 depth 32;
RegFile RF width 8 depth 4;
ControlRegister HLT width 1;
ProgramCounter PC width 5;

Section Instruction_Set

Field EX:
  op mv (d: GPR) "," (s: SRC2)
    Encode { I[15:13] = 0b000; I[12:11] = d; I[8:0] = s; }
    Action { RF[d] <- s; }
  op add (d: GPR) "," (a: GPR) "," (s: SRC2)
    Encode { I[15:13] = 0b001; I[12:11] = d; I[10:9] = a; I[8:0] = s; }
    Action { RF[d] <- RF[a] + s; }
  op halt
    Encode { I[15:13] = 0b010; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[15:13] = 0b111; }
`

func TestNestedNonTerminals(t *testing.T) {
	d, err := isdl.Parse(nestedSource)
	if err != nil {
		t.Fatal(err)
	}

	// Assembly accepts all three operand spellings; text round-trips.
	src := `
    mv R1, #5
    mv R2, R1
    add R3, R1, R2
    add R3, R3, z
    add R0, R3, #-2
    halt
`
	p, err := asm.Assemble(d, src)
	if err != nil {
		t.Fatal(err)
	}
	listing := asm.DisassembleProgram(p)
	p2, err := asm.Assemble(d, listing)
	if err != nil {
		t.Fatalf("listing did not re-assemble: %v\n%s", err, listing)
	}
	for i := range p.Words {
		if !p2.Words[i].Eq(p.Words[i]) {
			t.Fatalf("round trip changed word %d", i)
		}
	}

	// Simulation through the nested environment tree.
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sim.State().Get("RF", 3).Uint64(); got != 10 { // 5+5 then +z(0)
		t.Fatalf("R3 = %d, want 10", got)
	}
	if got := sim.State().Get("RF", 0).Uint64(); got != 8 {
		t.Fatalf("R0 = %d, want 8", got)
	}

	// Hardware model: recursive option decode and value muxing, then a
	// full lock-step co-simulation.
	r := synth(t, d, hgen.DefaultOptions())
	m, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := verilog.NewSim(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Words {
		if err := hw.SetMem("s_IMEM", i, w); err != nil {
			t.Fatal(err)
		}
	}
	ils := xsim.New(d)
	if err := ils.Load(p); err != nil {
		t.Fatal(err)
	}
	for step := 0; !ils.Halted(); step++ {
		if err := ils.Step(); err != nil {
			t.Fatal(err)
		}
		ils.FlushPending()
		if err := hw.Tick("clk"); err != nil {
			t.Fatal(err)
		}
		compareState(t, d, ils, hw, 0, step)
	}
}
