package hgen

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
	"repro/internal/verilog"
)

// expr translates a (width-checked) ISDL RTL expression into the Verilog
// subset, emitting temporaries where the subset needs simple nets (slices of
// compound values, carry chains, signed comparisons, arithmetic shifts).
func (e *venv) expr(x isdl.Expr) (verilog.Expr, error) {
	g := e.g
	switch x := x.(type) {
	case *isdl.Lit:
		return constE(x.Val), nil

	case *isdl.Ref:
		switch {
		case x.Storage != nil:
			return &verilog.Ref{Name: "s_" + x.Storage.Name, W: x.Storage.Width}, nil
		case x.AliasTo != nil:
			a := x.AliasTo
			st := g.d.StorageByName[a.Target]
			var base verilog.Expr
			if a.Indexed {
				base = &verilog.Index{Name: "s_" + a.Target, Idx: constE(bitvec.FromUint64(maxInt(1, addrBitsFor(st.Depth)), a.Index)), W: st.Width}
			} else {
				base = &verilog.Ref{Name: "s_" + a.Target, W: st.Width}
			}
			if a.Sliced {
				return &verilog.Slice{X: base, Hi: a.Hi, Lo: a.Lo}, nil
			}
			return base, nil
		case x.Param != nil:
			b := e.binds[x.Param.Name]
			if x.Param.Token != nil {
				return &verilog.Ref{Name: b.wire, W: x.Param.Token.RetWidth}, nil
			}
			// Non-terminal value: multiplex the options.
			nt := x.Param.NT
			var out verilog.Expr
			for i := len(nt.Options) - 1; i >= 0; i-- {
				opt := nt.Options[i]
				sub := e.sub(b, opt)
				v, err := sub.expr(opt.Value)
				if err != nil {
					return nil, err
				}
				if out == nil {
					out = v
					continue
				}
				sel := &verilog.Ref{Name: fmt.Sprintf("%s_o%d_sel", b.wire, opt.Index), W: 1}
				out = &verilog.Ternary{C: sel, A: v, B: out, W: nt.ValueWidth}
			}
			return out, nil
		}
		return nil, fmt.Errorf("unresolved reference %s", x.Name)

	case *isdl.Index:
		idx, err := e.expr(x.Idx)
		if err != nil {
			return nil, err
		}
		return &verilog.Index{Name: "s_" + x.Storage.Name, Idx: g.ensureRef(idx), W: x.Storage.Width}, nil

	case *isdl.SliceE:
		inner, err := e.expr(x.X)
		if err != nil {
			return nil, err
		}
		return &verilog.Slice{X: g.ensureRef(inner), Hi: x.Hi, Lo: x.Lo}, nil

	case *isdl.Unary:
		v, err := e.expr(x.X)
		if err != nil {
			return nil, err
		}
		return &verilog.Unary{Op: x.Op, X: v, W: x.Width()}, nil

	case *isdl.Binary:
		xx, err := e.expr(x.X)
		if err != nil {
			return nil, err
		}
		yy, err := e.expr(x.Y)
		if err != nil {
			return nil, err
		}
		return &verilog.Binary{Op: x.Op, X: xx, Y: yy, W: x.Width()}, nil

	case *isdl.Call:
		return e.call(x)
	}
	return nil, fmt.Errorf("cannot synthesize %s", x)
}

func constE(v bitvec.Value) verilog.Expr {
	// Verilog literals in the subset are ≤64 bits; wider constants are
	// concatenated.
	if v.Width() <= 64 {
		return &verilog.Const{Val: v}
	}
	var parts []verilog.Expr
	w := v.Width()
	for hi := w - 1; hi >= 0; hi -= 64 {
		lo := hi - 63
		if lo < 0 {
			lo = 0
		}
		parts = append(parts, &verilog.Const{Val: v.Slice(hi, lo)})
	}
	return &verilog.ConcatE{Parts: parts, W: w}
}

func (e *venv) call(x *isdl.Call) (verilog.Expr, error) {
	g := e.g
	arg := func(i int) (verilog.Expr, error) { return e.expr(x.Args[i]) }
	argRef := func(i int) (verilog.Expr, error) {
		v, err := arg(i)
		if err != nil {
			return nil, err
		}
		return g.ensureRef(v), nil
	}

	switch x.Fn {
	case "zext", "trunc":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		return adjustWidth(g, a, x.W), nil

	case "sext":
		a, err := argRef(0)
		if err != nil {
			return nil, err
		}
		aw := verilog.Width(a)
		if x.W <= aw {
			return adjustWidth(g, a, x.W), nil
		}
		sign := &verilog.Slice{X: a, Hi: aw - 1, Lo: aw - 1}
		ext := &verilog.Ternary{C: sign, A: constE(bitvec.New(x.W - aw).Not()), B: constE(bitvec.New(x.W - aw)), W: x.W - aw}
		return &verilog.ConcatE{Parts: []verilog.Expr{ext, a}, W: x.W}, nil

	case "carry":
		a, err := argRef(0)
		if err != nil {
			return nil, err
		}
		b, err := argRef(1)
		if err != nil {
			return nil, err
		}
		w := verilog.Width(a)
		sum := g.store(&verilog.Binary{Op: "+",
			X: &verilog.ConcatE{Parts: []verilog.Expr{constE(bitvec.New(1)), a}, W: w + 1},
			Y: &verilog.ConcatE{Parts: []verilog.Expr{constE(bitvec.New(1)), b}, W: w + 1},
			W: w + 1}, w+1)
		return &verilog.Slice{X: sum, Hi: w, Lo: w}, nil

	case "borrow":
		a, err := arg(0)
		if err != nil {
			return nil, err
		}
		b, err := arg(1)
		if err != nil {
			return nil, err
		}
		return &verilog.Binary{Op: "<", X: a, Y: b, W: 1}, nil

	case "addov", "subov":
		a, err := argRef(0)
		if err != nil {
			return nil, err
		}
		b, err := argRef(1)
		if err != nil {
			return nil, err
		}
		w := verilog.Width(a)
		op := "+"
		if x.Fn == "subov" {
			op = "-"
		}
		res := g.store(&verilog.Binary{Op: op, X: a, Y: b, W: w}, w)
		am := &verilog.Slice{X: a, Hi: w - 1, Lo: w - 1}
		bm := &verilog.Slice{X: b, Hi: w - 1, Lo: w - 1}
		rm := &verilog.Slice{X: res, Hi: w - 1, Lo: w - 1}
		signsCmp := "=="
		if x.Fn == "subov" {
			signsCmp = "!="
		}
		return &verilog.Binary{Op: "&&",
			X: &verilog.Binary{Op: signsCmp, X: am, Y: bm, W: 1},
			Y: &verilog.Binary{Op: "!=", X: rm, Y: am, W: 1},
			W: 1}, nil

	case "slt", "sle", "sgt", "sge":
		a, err := argRef(0)
		if err != nil {
			return nil, err
		}
		b, err := argRef(1)
		if err != nil {
			return nil, err
		}
		w := verilog.Width(a)
		am := &verilog.Slice{X: a, Hi: w - 1, Lo: w - 1}
		bm := &verilog.Slice{X: b, Hi: w - 1, Lo: w - 1}
		diff := &verilog.Binary{Op: "!=", X: am, Y: bm, W: 1}
		var onDiff verilog.Expr
		var uop string
		switch x.Fn {
		case "slt":
			onDiff, uop = am, "<"
		case "sle":
			onDiff, uop = am, "<="
		case "sgt":
			onDiff, uop = bm, ">"
		case "sge":
			onDiff, uop = bm, ">="
		}
		return &verilog.Ternary{C: diff, A: onDiff,
			B: &verilog.Binary{Op: uop, X: a, Y: b, W: 1}, W: 1}, nil

	case "asr":
		a, err := argRef(0)
		if err != nil {
			return nil, err
		}
		n, err := argRef(1)
		if err != nil {
			return nil, err
		}
		w := verilog.Width(a)
		logical := g.store(&verilog.Binary{Op: ">>", X: a, Y: n, W: w}, w)
		highMask := &verilog.Unary{Op: "~", X: &verilog.Binary{Op: ">>", X: constE(bitvec.New(w).Not()), Y: n, W: w}, W: w}
		sign := &verilog.Slice{X: a, Hi: w - 1, Lo: w - 1}
		return &verilog.Ternary{C: sign,
			A: &verilog.Binary{Op: "|", X: logical, Y: highMask, W: w},
			B: logical, W: w}, nil

	case "concat":
		c := &verilog.ConcatE{W: x.W}
		for i := range x.Args {
			v, err := arg(i)
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, v)
		}
		return c, nil

	case "pop":
		// Read the top of stack into a temporary and bump the pointer down,
		// guarded by the enclosing condition (the read itself is harmless).
		name := "s_" + x.Args[0].(*isdl.Ref).Name
		spW, _, _ := g.mod.NetByName(name + "_sp")
		w, _, _ := g.mod.NetByName(name)
		sp := &verilog.Ref{Name: name + "_sp", W: spW}
		one := constE(bitvec.FromUint64(spW, 1))
		spm1 := g.store(&verilog.Binary{Op: "-", X: sp, Y: one, W: spW}, spW)
		val := g.store(&verilog.Index{Name: name, Idx: spm1, W: w}, w)
		dec := verilog.Stmt(&verilog.BAssign{LHS: &verilog.NetL{Name: name + "_sp"}, RHS: spm1})
		if e.guard != nil {
			dec = &verilog.If{Cond: e.guard, Then: []verilog.Stmt{dec}}
		}
		g.stmt(dec)
		return val, nil

	case "push":
		return nil, fmt.Errorf("push used as a value")
	}
	return nil, fmt.Errorf("unknown builtin %s", x.Fn)
}

// adjustWidth zero-extends or truncates an expression to w bits.
func adjustWidth(g *vgen, e verilog.Expr, w int) verilog.Expr {
	ew := verilog.Width(e)
	switch {
	case ew == w:
		return e
	case ew > w:
		return &verilog.Slice{X: g.ensureRef(e), Hi: w - 1, Lo: 0}
	default:
		return &verilog.ConcatE{Parts: []verilog.Expr{constE(bitvec.New(w - ew)), e}, W: w}
	}
}
