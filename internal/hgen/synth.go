package hgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/isdl"
	"repro/internal/tech"
	"repro/internal/verilog"
)

// DecodeStyle selects the decode-logic implementation (ablation B).
type DecodeStyle int

const (
	// DecodeTwoLevel derives one product term per operation from the
	// constant bits of its signature — the efficient two-level
	// implementation of §4.2.
	DecodeTwoLevel DecodeStyle = iota
	// DecodeComparator is the naive alternative: a full-width masked
	// comparator per operation.
	DecodeComparator
)

func (s DecodeStyle) String() string {
	if s == DecodeTwoLevel {
		return "two-level"
	}
	return "comparator"
}

// Options configure a synthesis run.
type Options struct {
	Sharing SharingMode
	Decode  DecodeStyle
	// EmitVerilog additionally generates the synthesizable Verilog model
	// (requires MaxSize == 1 and no Stack storage).
	EmitVerilog bool
}

// DefaultOptions is the paper's configuration: full sharing, two-level
// decode, Verilog output.
func DefaultOptions() Options {
	return Options{Sharing: ShareRulesAndConstraints, Decode: DecodeTwoLevel, EmitVerilog: true}
}

// Unit is one shared functional unit generated for a maximal clique.
type Unit struct {
	Class string
	Width int
	// Nodes mapped onto this unit; Ways is the resulting mux fan-in.
	Nodes []*Node
	Ways  int
	// PipeDepth and Bypass are inferred from the costs/timing of the
	// operations using the unit (§4.1.3).
	PipeDepth int
	Bypass    bool

	Metrics     tech.Metrics // the unit proper
	MuxCost     tech.Metrics // operand multiplexers
	PipeRegCost tech.Metrics
}

// Result is the hardware implementation model.
type Result struct {
	Desc    *isdl.Description
	Lib     *tech.Library
	Options Options

	Nodes  []*Node
	Units  []*Unit
	Groups [][]int

	AreaCells float64
	Breakdown map[string]float64
	CycleNs   float64
	// CriticalPath names the cycle-limiting segment for diagnostics;
	// CritUnit is the functional unit whose execute stage sets the cycle
	// (nil when another segment dominates or there are no units).
	CriticalPath string
	CritUnit     *Unit
	// EnergyPerInstrPJ is the estimated switched energy of one average
	// instruction (every field active).
	EnergyPerInstrPJ float64

	VerilogText  string
	VerilogLines int
	// SynthSeconds is the wall-clock synthesis time (Table 2).
	SynthSeconds float64
	// PhaseSeconds splits SynthSeconds by phase: "share" (node extraction
	// and resource-sharing clique cover), "retime" (unit construction and
	// area/cycle/energy estimation) and "emit" (Verilog generation and the
	// re-parse gate; absent when EmitVerilog is off).
	PhaseSeconds map[string]float64
}

// Synthesize compiles a description into a hardware model.
func Synthesize(d *isdl.Description, lib *tech.Library, opts Options) (*Result, error) {
	start := time.Now()
	r := &Result{Desc: d, Lib: lib, Options: opts, Breakdown: map[string]float64{}, PhaseSeconds: map[string]float64{}}

	r.Nodes = extractNodes(d)
	coex := newCoexistence(d)
	a := shareMatrix(d, r.Nodes, opts.Sharing, coex)
	var cliques [][]int
	if opts.Sharing != ShareOff {
		cliques = maximalCliques(a, 4000)
	}
	r.Groups = cliqueCover(a, cliques)
	if opts.Sharing != ShareOff {
		r.refineGroups(a)
	}
	phase := time.Now()
	r.PhaseSeconds["share"] = phase.Sub(start).Seconds()
	r.buildUnits()
	r.estimate()
	r.PhaseSeconds["retime"] = time.Since(phase).Seconds()
	if opts.EmitVerilog {
		phase = time.Now()
		text, err := generateVerilog(d)
		if err != nil {
			return nil, err
		}
		r.VerilogText = text
		r.VerilogLines = verilog.CountLines(text)
		// The emitted model must parse back in our own subset — the same
		// gate a real flow applies by linting the RTL.
		if _, err := verilog.Parse(text); err != nil {
			return nil, fmt.Errorf("hgen: generated Verilog does not re-parse: %v", err)
		}
		r.PhaseSeconds["emit"] = time.Since(phase).Seconds()
	}
	r.SynthSeconds = time.Since(start).Seconds()
	return r, nil
}

// buildUnits turns each clique group into a shared functional unit.
func (r *Result) buildUnits() {
	for _, group := range r.Groups {
		u := &Unit{Class: unitClass(r.Nodes[group[0]].Kind), Ways: len(group)}
		ops := map[*isdl.Operation]bool{}
		for _, idx := range group {
			n := r.Nodes[idx]
			u.Nodes = append(u.Nodes, n)
			if n.Width > u.Width {
				u.Width = n.Width
			}
			ops[n.Op] = true
		}
		// Structural inference (§4.1.3): an operation with Stall > 0 and
		// Latency L implies a (Cycle+Stall)-deep pipeline without bypass
		// for that path; Stall = 0 with L > 1 implies the same depth with
		// full bypass.
		u.PipeDepth = 1
		for op := range ops {
			depth := op.Costs.Cycle
			if op.Costs.Stall > 0 {
				depth = op.Costs.Cycle + op.Costs.Stall
			} else if op.Timing.Latency > 1 {
				depth = op.Costs.Cycle + op.Timing.Latency - 1
				u.Bypass = true
			}
			if depth > u.PipeDepth {
				u.PipeDepth = depth
			}
		}
		r.Units = append(r.Units, u)
	}
	sort.Slice(r.Units, func(i, j int) bool {
		if r.Units[i].Class != r.Units[j].Class {
			return r.Units[i].Class < r.Units[j].Class
		}
		return r.Units[i].Width > r.Units[j].Width
	})
}

func (r *Result) unitMetrics(u *Unit) tech.Metrics {
	return metricsFor(r.Lib, u.Class, u.Width)
}

func metricsFor(l *tech.Library, class string, width int) tech.Metrics {
	switch class {
	case "addsub":
		return l.Adder(width)
	case "mul":
		return l.Multiplier(width)
	case "div":
		return l.Divider(width)
	case "logic":
		return l.Logic(width)
	case "shift":
		return l.Shifter(width)
	case "cmp":
		return l.Comparator(width)
	}
	return tech.Metrics{}
}

// groupCost estimates the silicon cost of implementing a node group as one
// shared unit: the unit itself plus its two operand multiplexers.
func (r *Result) groupCost(group []int) float64 {
	if len(group) == 0 {
		return 0
	}
	class := unitClass(r.Nodes[group[0]].Kind)
	width := 0
	for _, n := range group {
		if r.Nodes[n].Width > width {
			width = r.Nodes[n].Width
		}
	}
	u := metricsFor(r.Lib, class, width)
	mux := r.Lib.Mux(width, len(group))
	return u.AreaCells + 2*mux.AreaCells
}

// refineGroups improves the clique cover with local search — the
// "combinatorial optimization strategy" the paper proposes for the resource
// sharing problem (§4.1.1): nodes move between compatible groups (or out to
// a fresh unit) whenever that reduces total datapath cost, so added
// compatibility can never increase the estimate.
func (r *Result) refineGroups(a [][]bool) {
	compatible := func(n int, group []int) bool {
		for _, m := range group {
			if m != n && !a[n][m] {
				return false
			}
		}
		return len(group) == 0 || unitClass(r.Nodes[n].Kind) == unitClass(r.Nodes[group[0]].Kind)
	}
	remove := func(group []int, n int) []int {
		out := make([]int, 0, len(group)-1)
		for _, m := range group {
			if m != n {
				out = append(out, m)
			}
		}
		return out
	}
	for pass := 0; pass < 20; pass++ {
		improved := false
		for gi := 0; gi < len(r.Groups); gi++ {
			for _, n := range append([]int(nil), r.Groups[gi]...) {
				src := r.Groups[gi]
				srcCost := r.groupCost(src)
				srcWithout := remove(src, n)
				bestDelta := -1e-9
				bestTarget := -2 // -2 none, -1 new singleton, >=0 group index
				// Moving out to a fresh unit.
				delta := r.groupCost(srcWithout) + r.groupCost([]int{n}) - srcCost
				if len(src) > 1 && delta < bestDelta {
					bestDelta, bestTarget = delta, -1
				}
				for gj := 0; gj < len(r.Groups); gj++ {
					if gj == gi || !compatible(n, r.Groups[gj]) {
						continue
					}
					dst := r.Groups[gj]
					delta := r.groupCost(srcWithout) + r.groupCost(append(append([]int(nil), dst...), n)) -
						srcCost - r.groupCost(dst)
					if delta < bestDelta {
						bestDelta, bestTarget = delta, gj
					}
				}
				switch bestTarget {
				case -2:
				case -1:
					r.Groups[gi] = srcWithout
					r.Groups = append(r.Groups, []int{n})
					improved = true
				default:
					r.Groups[gi] = srcWithout
					r.Groups[bestTarget] = append(r.Groups[bestTarget], n)
					improved = true
				}
			}
		}
		// Drop emptied groups.
		kept := r.Groups[:0]
		for _, g := range r.Groups {
			if len(g) > 0 {
				kept = append(kept, g)
			}
		}
		r.Groups = kept
		if !improved {
			break
		}
	}
}

// estimate computes die size, cycle length and energy.
func (r *Result) estimate() {
	l := r.Lib
	d := r.Desc

	// Datapath units, operand muxes and pipeline registers.
	var datapath, muxes, pipeRegs, energy float64
	maxStageNs := 0.0
	stageOwner := ""
	for _, u := range r.Units {
		u.Metrics = r.unitMetrics(u)
		u.MuxCost = l.Mux(u.Width, u.Ways)
		u.MuxCost.Add(l.Mux(u.Width, u.Ways)) // two operand ports
		if u.PipeDepth > 1 {
			reg := l.Register(u.Width)
			u.PipeRegCost = tech.Metrics{
				AreaCells: reg.AreaCells * float64(u.PipeDepth-1),
				EnergyPJ:  reg.EnergyPJ * float64(u.PipeDepth-1),
			}
			if u.Bypass {
				byp := l.Mux(u.Width, u.PipeDepth)
				u.PipeRegCost.AreaCells += byp.AreaCells
				u.PipeRegCost.EnergyPJ += byp.EnergyPJ
			}
		}
		datapath += u.Metrics.AreaCells
		muxes += u.MuxCost.AreaCells
		pipeRegs += u.PipeRegCost.AreaCells
		energy += u.Metrics.EnergyPJ*0.4 + u.MuxCost.EnergyPJ

		stage := u.Metrics.DelayNs/float64(u.PipeDepth) + u.MuxCost.DelayNs
		if stage > maxStageNs {
			maxStageNs = stage
			stageOwner = fmt.Sprintf("%s%d (%d-way, depth %d)", u.Class, u.Width, u.Ways, u.PipeDepth)
			r.CritUnit = u
		}
	}

	// Decode logic (§4.2): one decode line per operation per field, plus
	// the option decoders of every non-terminal.
	var decodeArea float64
	decodeDelay := 0.0
	countTerm := func(sig *isdl.Signature) {
		lits := 0
		for _, b := range sig.Bits {
			if b.Kind == isdl.SigConst {
				lits++
			}
		}
		var m tech.Metrics
		if r.Options.Decode == DecodeTwoLevel {
			m = l.DecodeTerm(lits)
		} else {
			m = l.Comparator(len(sig.Bits))
			m.Add(l.Logic(len(sig.Bits)))
		}
		decodeArea += m.AreaCells
		energy += m.EnergyPJ
		if m.DelayNs > decodeDelay {
			decodeDelay = m.DelayNs
		}
	}
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			countTerm(&op.Sig)
		}
	}
	for _, nt := range d.NonTerminals {
		for _, opt := range nt.Options {
			countTerm(&opt.Sig)
		}
	}

	// Storage.
	var storageArea float64
	memDelay := 0.0
	ports := storagePorts(d)
	for _, st := range d.Storage {
		var m tech.Metrics
		if st.Kind.Addressed() {
			m = l.Memory(st.Width, st.Depth, ports[st.Name])
			if st.Kind == isdl.StStack {
				m.Add(l.Register(16)) // stack pointer
			}
			if m.DelayNs > memDelay && st.Kind != isdl.StInstructionMemory {
				memDelay = m.DelayNs
			}
		} else {
			m = l.Register(st.Width)
		}
		storageArea += m.AreaCells
		energy += m.EnergyPJ * 0.5
	}

	// Write-back multiplexing: one mux per written storage, fan-in = the
	// number of operations that write it. Accumulate in sorted storage
	// order: float addition is not associative, so summing in map order
	// made EnergyPerInstrPJ — and through it the power objective every
	// exploration strategy compares — wobble in the last bit from run to
	// run (TestEstimateDeterministic).
	writers := storageWriters(d)
	wbNames := make([]string, 0, len(writers))
	for name := range writers {
		wbNames = append(wbNames, name)
	}
	sort.Strings(wbNames)
	var wbArea float64
	wbDelay := 0.0
	for _, name := range wbNames {
		st := d.StorageByName[name]
		m := l.Mux(st.Width, writers[name])
		wbArea += m.AreaCells
		energy += m.EnergyPJ
		if m.DelayNs > wbDelay {
			wbDelay = m.DelayNs
		}
	}

	r.Breakdown["datapath"] = datapath
	r.Breakdown["operand muxes"] = muxes
	r.Breakdown["pipeline regs"] = pipeRegs
	r.Breakdown["decode"] = decodeArea
	r.Breakdown["storage"] = storageArea
	r.Breakdown["writeback muxes"] = wbArea
	r.AreaCells = datapath + muxes + pipeRegs + decodeArea + storageArea + wbArea

	wire := l.WireDelay(4)
	r.CycleNs = l.FlopDelayNs + decodeDelay + memDelay + maxStageNs + wbDelay + wire
	r.CriticalPath = fmt.Sprintf("flop %.1f + decode %.1f + storage %.1f + exec %.1f [%s] + writeback %.1f + wire %.1f ns",
		l.FlopDelayNs, decodeDelay, memDelay, maxStageNs, stageOwner, wbDelay, wire)
	r.EnergyPerInstrPJ = energy
}

// storagePorts counts, per storage, the fields whose operations access it —
// the concurrent-port requirement of the VLIW.
func storagePorts(d *isdl.Description) map[string]int {
	ports := map[string]int{}
	for _, f := range d.Fields {
		touched := map[string]bool{}
		for _, op := range f.Ops {
			for name := range storageAccesses(d, op) {
				touched[name] = true
			}
		}
		for name := range touched {
			ports[name]++
		}
	}
	for _, st := range d.Storage {
		if ports[st.Name] < 1 {
			ports[st.Name] = 1
		}
	}
	return ports
}

// storageWriters counts, per storage, how many operations write it.
func storageWriters(d *isdl.Description) map[string]int {
	writers := map[string]int{}
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			acc := storageAccesses(d, op)
			for name, wrote := range acc {
				if wrote {
					writers[name]++
				}
			}
		}
	}
	return writers
}

// storageAccesses maps storage name → wasWritten for one operation,
// following non-terminal parameters.
func storageAccesses(d *isdl.Description, op *isdl.Operation) map[string]bool {
	acc := map[string]bool{}
	var walkStmts func(stmts []isdl.Stmt)
	var walkE func(e isdl.Expr, writing bool)
	walkE = func(e isdl.Expr, writing bool) {
		isdl.WalkExpr(e, func(e isdl.Expr) {
			switch e := e.(type) {
			case *isdl.Ref:
				switch {
				case e.Storage != nil:
					acc[e.Storage.Name] = acc[e.Storage.Name] || writing
				case e.AliasTo != nil:
					acc[e.AliasTo.Target] = acc[e.AliasTo.Target] || writing
				case e.Param != nil && e.Param.NT != nil:
					for _, opt := range e.Param.NT.Options {
						walkE(opt.Value, writing)
					}
				}
			case *isdl.Index:
				acc[e.Storage.Name] = acc[e.Storage.Name] || writing
			case *isdl.Call:
				if e.Fn == "push" || e.Fn == "pop" {
					if ref, ok := e.Args[0].(*isdl.Ref); ok {
						acc[ref.Name] = true
					}
				}
			}
		})
	}
	walkStmts = func(stmts []isdl.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *isdl.Assign:
				walkE(s.LHS, true)
				walkE(s.RHS, false)
			case *isdl.If:
				walkE(s.Cond, false)
				walkStmts(s.Then)
				walkStmts(s.Else)
			case *isdl.ExprStmt:
				walkE(s.X, false)
			}
		}
	}
	walkStmts(op.Action)
	walkStmts(op.SideEffect)
	for _, prm := range op.Params {
		if prm.NT != nil {
			for _, opt := range prm.NT.Options {
				walkStmts(opt.SideEffect)
			}
		}
	}
	return acc
}

// Report renders the synthesis statistics (the Table 2 row plus the area
// breakdown).
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine:        %s\n", r.Desc.Name)
	fmt.Fprintf(&sb, "sharing:        %s, decode: %s\n", r.Options.Sharing, r.Options.Decode)
	fmt.Fprintf(&sb, "cycle:          %.1f ns\n", r.CycleNs)
	fmt.Fprintf(&sb, "critical path:  %s\n", r.CriticalPath)
	fmt.Fprintf(&sb, "die size:       %.0f grid cells\n", r.AreaCells)
	keys := make([]string, 0, len(r.Breakdown))
	for k := range r.Breakdown {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-16s %8.0f\n", k, r.Breakdown[k])
	}
	fmt.Fprintf(&sb, "units:          %d (from %d RTL nodes)\n", len(r.Units), len(r.Nodes))
	for _, u := range r.Units {
		fmt.Fprintf(&sb, "  %-8s w%-3d ways %-3d depth %d bypass %-5v area %8.0f\n",
			u.Class, u.Width, u.Ways, u.PipeDepth, u.Bypass, u.Metrics.AreaCells+u.MuxCost.AreaCells+u.PipeRegCost.AreaCells)
	}
	if r.VerilogLines > 0 {
		fmt.Fprintf(&sb, "verilog:        %d lines\n", r.VerilogLines)
	}
	fmt.Fprintf(&sb, "synthesis time: %.3f s", r.SynthSeconds)
	if len(r.PhaseSeconds) > 0 {
		sb.WriteString(" (")
		for i, ph := range []string{"share", "retime", "emit"} {
			if sec, ok := r.PhaseSeconds[ph]; ok {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "%s %.3f", ph, sec)
			}
		}
		sb.WriteString(")")
	}
	sb.WriteByte('\n')
	return sb.String()
}
