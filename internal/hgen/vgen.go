package hgen

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/isdl"
	"repro/internal/verilog"
)

// This file generates the synthesizable Verilog model (§4.1): a
// single-clock implementation of the instruction set. Decode logic comes
// from the operation signatures (§4.2). The always block reproduces the
// cycle semantics of §3.3.3 exactly — as the paper notes, the Verilog model
// is itself a simulator — using blocking assignments with explicit
// temporaries:
//
//	s_PC = s_PC + 1;           // PC reads as the next address (§ xsim)
//	<action-phase reads into temporaries>
//	<action-phase guarded writes>
//	<side-effect-phase reads into temporaries>
//	<side-effect-phase guarded writes>
//
// so every statement of a phase reads pre-phase state, and side effects see
// action results, matching the generated ILS bit for bit (the co-simulation
// tests lock-step the two).
//
// Restriction (documented in DESIGN.md): MaxSize must be 1 (multi-word
// instructions remain ILS-only). Stack storage synthesizes to a memory plus
// a pointer register; push/pop mutate the pointer with the same phase
// ordering as the simulator. On overflow the hardware wraps where the
// simulator reports a fault — programs that respect the declared depth
// behave identically.

type vgen struct {
	d    *isdl.Description
	mod  *verilog.Module
	body []verilog.Stmt
	tmpN int
	// tempDecls accumulates the widths of allocated temporaries.
	tempDecls []verilog.Net
}

// generateVerilog builds and renders the hardware model.
func generateVerilog(d *isdl.Description) (string, error) {
	if d.MaxSize() != 1 {
		return "", fmt.Errorf("hgen: multi-word instructions (Size > 1) are not synthesizable")
	}

	g := &vgen{d: d, mod: &verilog.Module{Name: "proc_" + d.Name}}
	m := g.mod
	m.Ports = append(m.Ports,
		verilog.Port{Name: "clk", Dir: verilog.In, Width: 1},
		verilog.Port{Name: "halted", Dir: verilog.Out, Width: 1},
	)

	// Storage. Stacks additionally get a pointer register (the number of
	// live entries, matching the state package).
	for _, st := range d.Storage {
		n := verilog.Net{Name: "s_" + st.Name, Width: st.Width, Reg: true}
		if st.Kind.Addressed() {
			n.Depth = st.Depth
		}
		m.Nets = append(m.Nets, n)
		if st.Kind == isdl.StStack {
			m.Nets = append(m.Nets, verilog.Net{Name: "s_" + st.Name + "_sp", Width: addrBitsFor(st.Depth) + 1, Reg: true})
		}
	}

	// Fetch: the instruction register wire.
	im := d.InstructionMemory()
	pc := d.PC()
	m.Nets = append(m.Nets, verilog.Net{Name: "ir", Width: d.WordWidth})
	m.Assigns = append(m.Assigns, verilog.Assign{
		LHS: &verilog.NetL{Name: "ir"},
		RHS: &verilog.Index{Name: "s_" + im.Name, Idx: &verilog.Ref{Name: "s_" + pc.Name}},
	})

	// Decode lines and parameter extraction (§4.2).
	for _, f := range d.Fields {
		for _, op := range f.Ops {
			g.emitDecode(decName(op), &op.Sig, &verilog.Ref{Name: "ir"}, d.WordWidth)
			for pi, prm := range op.Params {
				g.emitParamExtract(paramWire(op, prm), &op.Sig, pi, prm, &verilog.Ref{Name: "ir"})
			}
		}
	}

	// Halt output.
	if _, ok := d.StorageByName["HLT"]; ok {
		m.Assigns = append(m.Assigns, verilog.Assign{
			LHS: &verilog.NetL{Name: "halted"},
			RHS: &verilog.Binary{Op: "!=", X: &verilog.Ref{Name: "s_HLT"}, Y: &verilog.Const{Val: bitvec.New(d.StorageByName["HLT"].Width)}, W: 1},
		})
	} else {
		m.Assigns = append(m.Assigns, verilog.Assign{
			LHS: &verilog.NetL{Name: "halted"},
			RHS: &verilog.Const{Val: bitvec.New(1)},
		})
	}

	// The execute block.
	g.stmt(&verilog.BAssign{
		LHS: &verilog.NetL{Name: "s_" + pc.Name},
		RHS: &verilog.Binary{Op: "+", X: &verilog.Ref{Name: "s_" + pc.Name, W: pc.Width}, Y: &verilog.Const{Val: bitvec.FromUint64(pc.Width, 1)}, W: pc.Width},
	})
	if err := g.emitPhase(false); err != nil {
		return "", err
	}
	if err := g.emitPhase(true); err != nil {
		return "", err
	}
	m.Nets = append(m.Nets, g.tempDecls...)
	m.Always = append(m.Always, verilog.Always{Clock: "clk", Stmts: g.body})

	return verilog.Emit(m), nil
}

func decName(op *isdl.Operation) string {
	return fmt.Sprintf("dec_%s_%s", op.Field.Name, op.Name)
}

func paramWire(op *isdl.Operation, prm *isdl.Param) string {
	return fmt.Sprintf("p_%s_%s_%s", op.Field.Name, op.Name, prm.Name)
}

// emitDecode declares "wire name = ((src & mask) == val);" from a
// signature's constant bits.
func (g *vgen) emitDecode(name string, sig *isdl.Signature, src verilog.Expr, width int) {
	mask, val := sig.ConstMask()
	g.mod.Nets = append(g.mod.Nets, verilog.Net{Name: name, Width: 1})
	g.mod.Assigns = append(g.mod.Assigns, verilog.Assign{
		LHS: &verilog.NetL{Name: name},
		RHS: &verilog.Binary{
			Op: "==",
			X:  &verilog.Binary{Op: "&", X: src, Y: constE(mask.Trunc(width)), W: width},
			Y:  constE(val.Trunc(width)),
			W:  1,
		},
	})
}

// emitParamExtract declares the wire carrying parameter pi's return value,
// rebuilt from the signature's parameter bits, and recursively the decode
// and extraction wires of non-terminal options.
func (g *vgen) emitParamExtract(name string, sig *isdl.Signature, pi int, prm *isdl.Param, src verilog.Expr) {
	rw := prm.RetWidth()
	// instruction-bit position of each parameter bit.
	pos := make([]int, rw)
	for i := range pos {
		pos[i] = -1
	}
	for b, sb := range sig.Bits {
		if sb.Kind == isdl.SigParam && sb.Param == pi && sb.PBit < rw {
			pos[sb.PBit] = b
		}
	}
	// Build a concat of contiguous source slices, MSB first.
	var parts []verilog.Expr
	i := rw - 1
	for i >= 0 {
		if pos[i] < 0 {
			parts = append(parts, &verilog.Const{Val: bitvec.New(1)})
			i--
			continue
		}
		hi := pos[i]
		lo := hi
		j := i - 1
		for j >= 0 && pos[j] == lo-1 {
			lo--
			j--
		}
		parts = append(parts, &verilog.Slice{X: src, Hi: hi, Lo: lo})
		i = j
	}
	var rhs verilog.Expr
	if len(parts) == 1 {
		rhs = parts[0]
	} else {
		rhs = &verilog.ConcatE{Parts: parts, W: rw}
	}
	g.mod.Nets = append(g.mod.Nets, verilog.Net{Name: name, Width: rw})
	g.mod.Assigns = append(g.mod.Assigns, verilog.Assign{LHS: &verilog.NetL{Name: name}, RHS: rhs})

	if prm.NT != nil {
		for _, opt := range prm.NT.Options {
			base := fmt.Sprintf("%s_o%d", name, opt.Index)
			g.emitDecode(base+"_sel", &opt.Sig, &verilog.Ref{Name: name, W: rw}, rw)
			for spi, sp := range opt.Params {
				g.emitParamExtract(fmt.Sprintf("%s_%s", base, sp.Name), &opt.Sig, spi, sp, &verilog.Ref{Name: name, W: rw})
			}
		}
	}
}

func (g *vgen) stmt(s verilog.Stmt) { g.body = append(g.body, s) }

func (g *vgen) temp(width int) string {
	g.tmpN++
	name := fmt.Sprintf("t%d", g.tmpN)
	g.tempDecls = append(g.tempDecls, verilog.Net{Name: name, Width: width, Reg: true})
	return name
}

// store computes an expression into a fresh temporary and returns its
// reference; used where the subset needs a simple net (slices, reuse).
func (g *vgen) store(e verilog.Expr, width int) *verilog.Ref {
	t := g.temp(width)
	g.stmt(&verilog.BAssign{LHS: &verilog.NetL{Name: t}, RHS: e})
	return &verilog.Ref{Name: t, W: width}
}

func (g *vgen) ensureRef(e verilog.Expr) verilog.Expr {
	switch e.(type) {
	case *verilog.Ref, *verilog.Index, *verilog.Const:
		return e
	}
	return g.store(e, verilog.Width(e))
}

// binding maps one ISDL parameter to its hardware wires.
type binding struct {
	prm *isdl.Param
	// wire carries the parameter's return value.
	wire string
}

type venv struct {
	g     *vgen
	binds map[string]binding
	// guard is the condition under which the enclosing statements execute;
	// stateful reads (pop) guard their pointer updates with it.
	guard verilog.Expr
}

func (g *vgen) opEnv(op *isdl.Operation) *venv {
	e := &venv{g: g, binds: map[string]binding{}}
	for _, prm := range op.Params {
		e.binds[prm.Name] = binding{prm: prm, wire: paramWire(op, prm)}
	}
	return e
}

func (e *venv) sub(b binding, opt *isdl.Option) *venv {
	s := &venv{g: e.g, binds: map[string]binding{}, guard: e.guard}
	base := fmt.Sprintf("%s_o%d", b.wire, opt.Index)
	for _, sp := range opt.Params {
		s.binds[sp.Name] = binding{prm: sp, wire: fmt.Sprintf("%s_%s", base, sp.Name)}
	}
	return s
}

// withGuard returns a copy of the environment carrying the given guard.
func (e *venv) withGuard(guard verilog.Expr) *venv {
	c := *e
	c.guard = guard
	return &c
}

// guardedWrite is one flattened, guarded state update collected during the
// read pass of a phase.
type guardedWrite struct {
	guard verilog.Expr // nil = unconditional
	apply []verilog.Stmt
}

// emitPhase flattens one phase (actions or side effects) of every
// operation: first all reads into temporaries, then all guarded writes.
func (g *vgen) emitPhase(sideEffects bool) error {
	var writes []guardedWrite
	for _, f := range g.d.Fields {
		for _, op := range f.Ops {
			env := g.opEnv(op)
			guard := verilog.Expr(&verilog.Ref{Name: decName(op), W: 1})
			stmts := op.Action
			if sideEffects {
				stmts = op.SideEffect
			}
			ws, err := g.flatten(stmts, guard, env)
			if err != nil {
				return fmt.Errorf("%s: %v", op.QualName(), err)
			}
			writes = append(writes, ws...)
			if sideEffects {
				// Non-terminal option side effects, guarded by the option
				// selects.
				for _, prm := range op.Params {
					if prm.NT == nil {
						continue
					}
					b := env.binds[prm.Name]
					for _, opt := range prm.NT.Options {
						og := &verilog.Binary{Op: "&&", X: guard, Y: &verilog.Ref{Name: fmt.Sprintf("%s_o%d_sel", b.wire, opt.Index), W: 1}, W: 1}
						ws, err := g.flatten(opt.SideEffect, og, env.sub(b, opt))
						if err != nil {
							return fmt.Errorf("%s %s: %v", op.QualName(), prm.Name, err)
						}
						writes = append(writes, ws...)
					}
				}
			}
		}
	}
	for _, w := range writes {
		if w.guard == nil {
			g.body = append(g.body, w.apply...)
		} else {
			g.stmt(&verilog.If{Cond: w.guard, Then: w.apply})
		}
	}
	return nil
}

// flatten evaluates the reads of a statement list (emitting temporaries)
// and returns the guarded writes to apply afterwards.
func (g *vgen) flatten(stmts []isdl.Stmt, guard verilog.Expr, env *venv) ([]guardedWrite, error) {
	env = env.withGuard(guard)
	var out []guardedWrite
	for _, s := range stmts {
		switch s := s.(type) {
		case *isdl.Assign:
			rhs, err := env.expr(s.RHS)
			if err != nil {
				return nil, err
			}
			rhsRef := g.ensureRef(rhs)
			cases, err := env.lvalues(s.LHS, guard)
			if err != nil {
				return nil, err
			}
			for _, c := range cases {
				out = append(out, guardedWrite{guard: c.guard, apply: c.apply(g, rhsRef)})
			}
		case *isdl.If:
			cond, err := env.expr(s.Cond)
			if err != nil {
				return nil, err
			}
			condRef := g.ensureRef(boolify(cond))
			thenG := andE(guard, condRef)
			ws, err := g.flatten(s.Then, thenG, env)
			if err != nil {
				return nil, err
			}
			out = append(out, ws...)
			if len(s.Else) > 0 {
				elseG := andE(guard, &verilog.Unary{Op: "!", X: condRef, W: 1})
				ws, err := g.flatten(s.Else, elseG, env)
				if err != nil {
					return nil, err
				}
				out = append(out, ws...)
			}
		case *isdl.ExprStmt:
			call := s.X.(*isdl.Call)
			switch call.Fn {
			case "push":
				name := "s_" + call.Args[0].(*isdl.Ref).Name
				v, err := env.expr(call.Args[1])
				if err != nil {
					return nil, err
				}
				vRef := g.ensureRef(v)
				out = append(out, guardedWrite{guard: guard, apply: g.pushStmts(name, vRef)})
			case "pop":
				if _, err := env.expr(call); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// pushStmts writes v at the stack pointer and bumps it (write phase).
func (g *vgen) pushStmts(name string, v verilog.Expr) []verilog.Stmt {
	spW, _, _ := g.mod.NetByName(name + "_sp")
	sp := &verilog.Ref{Name: name + "_sp", W: spW}
	one := constE(bitvec.FromUint64(spW, 1))
	return []verilog.Stmt{
		&verilog.BAssign{LHS: &verilog.IndexL{Name: name, Idx: sp}, RHS: v},
		&verilog.BAssign{LHS: &verilog.NetL{Name: name + "_sp"}, RHS: &verilog.Binary{Op: "+", X: sp, Y: one, W: spW}},
	}
}

func boolify(e verilog.Expr) verilog.Expr {
	if verilog.Width(e) == 1 {
		return e
	}
	return &verilog.Unary{Op: "|", X: e, W: 1}
}

func andE(a, b verilog.Expr) verilog.Expr {
	if a == nil {
		return b
	}
	return &verilog.Binary{Op: "&&", X: a, Y: b, W: 1}
}

// target is one resolved write destination with its (possibly
// option-refined) guard.
type target struct {
	guard verilog.Expr
	apply func(g *vgen, val verilog.Expr) []verilog.Stmt
}

// lvalues resolves an ISDL lvalue into hardware write targets. A
// non-terminal parameter fans out into one guarded target per option.
func (e *venv) lvalues(x isdl.Expr, guard verilog.Expr) ([]target, error) {
	switch x := x.(type) {
	case *isdl.Ref:
		switch {
		case x.Storage != nil:
			name := "s_" + x.Storage.Name
			return []target{{guard: guard, apply: func(g *vgen, v verilog.Expr) []verilog.Stmt {
				return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.NetL{Name: name}, RHS: v}}
			}}}, nil
		case x.AliasTo != nil:
			return e.aliasTargets(x.AliasTo, guard)
		case x.Param != nil && x.Param.NT != nil:
			b := e.binds[x.Param.Name]
			var out []target
			for _, opt := range x.Param.NT.Options {
				sel := &verilog.Ref{Name: fmt.Sprintf("%s_o%d_sel", b.wire, opt.Index), W: 1}
				sub := e.sub(b, opt)
				ts, err := sub.lvalues(opt.Value, andE(guard, sel))
				if err != nil {
					return nil, err
				}
				out = append(out, ts...)
			}
			return out, nil
		}
	case *isdl.Index:
		idx, err := e.expr(x.Idx)
		if err != nil {
			return nil, err
		}
		idxRef := e.g.ensureRef(idx)
		name := "s_" + x.Storage.Name
		return []target{{guard: guard, apply: func(g *vgen, v verilog.Expr) []verilog.Stmt {
			return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.IndexL{Name: name, Idx: idxRef}, RHS: v}}
		}}}, nil
	case *isdl.SliceE:
		inner, err := e.lvalues(x.X, guard)
		if err != nil {
			return nil, err
		}
		var out []target
		for _, t := range inner {
			out = append(out, sliceTarget(t, x.Hi, x.Lo))
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s is not a synthesizable lvalue", x)
}

func (e *venv) aliasTargets(a *isdl.Alias, guard verilog.Expr) ([]target, error) {
	name := "s_" + a.Target
	base := target{guard: guard}
	if a.Indexed {
		st := e.g.d.StorageByName[a.Target]
		idx := &verilog.Const{Val: bitvec.FromUint64(maxInt(1, addrBitsFor(st.Depth)), a.Index)}
		base.apply = func(g *vgen, v verilog.Expr) []verilog.Stmt {
			return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.IndexL{Name: name, Idx: idx}, RHS: v}}
		}
	} else {
		base.apply = func(g *vgen, v verilog.Expr) []verilog.Stmt {
			return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.NetL{Name: name}, RHS: v}}
		}
	}
	if a.Sliced {
		base = sliceTarget(base, a.Hi, a.Lo)
	}
	return []target{base}, nil
}

func addrBitsFor(depth int) int {
	n := 1
	for 1<<n < depth {
		n++
	}
	return n
}

// sliceTarget narrows a target to bits [hi:lo]. Whole-net targets become
// part-select assignments; memory-word targets become read-modify-write.
func sliceTarget(t target, hi, lo int) target {
	inner := t.apply
	t.apply = func(g *vgen, v verilog.Expr) []verilog.Stmt {
		// Probe the inner target with a marker to discover its shape.
		probe := inner(g, v)
		ba := probe[0].(*verilog.BAssign)
		switch l := ba.LHS.(type) {
		case *verilog.NetL:
			w, _, _ := g.mod.NetByName(l.Name)
			_ = w
			return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.SliceL{Name: l.Name, Hi: hi, Lo: lo}, RHS: v}}
		case *verilog.IndexL:
			// Read-modify-write on the memory word.
			w, _, _ := g.mod.NetByName(l.Name)
			old := g.store(&verilog.Index{Name: l.Name, Idx: l.Idx, W: w}, w)
			var parts []verilog.Expr
			if hi < w-1 {
				parts = append(parts, &verilog.Slice{X: old, Hi: w - 1, Lo: hi + 1})
			}
			parts = append(parts, v)
			if lo > 0 {
				parts = append(parts, &verilog.Slice{X: old, Hi: lo - 1, Lo: 0})
			}
			var nv verilog.Expr
			if len(parts) == 1 {
				nv = parts[0]
			} else {
				nv = &verilog.ConcatE{Parts: parts, W: w}
			}
			return []verilog.Stmt{&verilog.BAssign{LHS: l, RHS: nv}}
		case *verilog.SliceL:
			return []verilog.Stmt{&verilog.BAssign{LHS: &verilog.SliceL{Name: l.Name, Hi: l.Lo + hi, Lo: l.Lo + lo}, RHS: v}}
		}
		return probe
	}
	return t
}
