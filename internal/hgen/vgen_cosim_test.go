package hgen_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cosim"
	"repro/internal/hgen"
	"repro/internal/isdl"
	"repro/internal/verilog"
	"repro/internal/xsim"
)

// gauntletSource exercises every RTL builtin and lvalue shape through the
// Verilog generator: carry/overflow flags, arithmetic shift, the signed
// comparisons, byte swaps via concat and slices, sign extension, alias and
// part-select writes, and if/else actions — the constructs the SPAM2
// co-simulation does not reach.
const gauntletSource = `
Machine gauntlet;
Format 32;

Section Global_Definitions

Token GPR "R" [0..15];
Token IMM8 imm signed 8;

Section Storage

InstructionMemory IMEM width 32 depth 128;
RegFile RF width 16 depth 16;
Register ACC width 24;
ControlRegister FL width 4;
ControlRegister HLT width 1;
ProgramCounter PC width 7;
Alias ACHI = ACC[23:16];
Alias ACLO = ACC[15:0];

Section Instruction_Set

Field EX:
  op addc (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b00000; I[26:23] = d; I[22:19] = a; I[18:15] = b; }
    Action { RF[d] <- RF[a] + RF[b]; }
    SideEffect { FL[0:0] <- carry(RF[a], RF[b]); FL[1:1] <- addov(RF[a], RF[b]); }
  op subb (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b00001; I[26:23] = d; I[22:19] = a; I[18:15] = b; }
    Action { RF[d] <- RF[a] - RF[b]; }
    SideEffect { FL[2:2] <- borrow(RF[a], RF[b]); FL[3:3] <- subov(RF[a], RF[b]); }
  op sasr (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b00010; I[26:23] = d; I[22:19] = a; I[18:15] = b; }
    Action { RF[d] <- asr(RF[a], RF[b] & 15); }
  op scmp (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b00011; I[26:23] = d; I[22:19] = a; I[18:15] = b; }
    Action { RF[d] <- zext(concat(slt(RF[a], RF[b]), sle(RF[a], RF[b]), sgt(RF[a], RF[b]), sge(RF[a], RF[b])), 16); }
  op swap (d: GPR) "," (a: GPR)
    Encode { I[31:27] = 0b00100; I[26:23] = d; I[22:19] = a; }
    Action { RF[d] <- concat(RF[a][7:0], RF[a][15:8]); }
  op sxtb (d: GPR) "," (a: GPR)
    Encode { I[31:27] = 0b00101; I[26:23] = d; I[22:19] = a; }
    Action { RF[d] <- sext(trunc(RF[a], 8), 16); }
  op acch (a: GPR)
    Encode { I[31:27] = 0b00110; I[22:19] = a; }
    Action { ACHI <- trunc(RF[a], 8); }
  op accl (a: GPR)
    Encode { I[31:27] = 0b00111; I[22:19] = a; }
    Action { ACLO <- RF[a]; }
  op mvac (d: GPR)
    Encode { I[31:27] = 0b01000; I[26:23] = d; }
    Action { RF[d] <- ACLO; }
  op selp (d: GPR) "," (a: GPR) "," (b: GPR)
    Encode { I[31:27] = 0b01001; I[26:23] = d; I[22:19] = a; I[18:15] = b; }
    Action { if (slt(RF[a], RF[b])) { RF[d] <- RF[a]; } else { RF[d] <- RF[b]; } }
  op half (d: GPR) "," (a: GPR)
    Encode { I[31:27] = 0b01010; I[26:23] = d; I[22:19] = a; }
    Action { RF[d][7:0] <- trunc(RF[a] >> 1, 8); }
  op ldi (d: GPR) "," (i: IMM8)
    Encode { I[31:27] = 0b01011; I[26:23] = d; I[7:0] = i; }
    Action { RF[d] <- sext(i, 16); }
  op halt
    Encode { I[31:27] = 0b11110; }
    Action { HLT <- 0b1; }
  op nop
    Encode { I[31:27] = 0b11111; }
`

// TestGauntletCosim lock-steps random gauntlet programs on the ILS and on
// the event-driven simulation of the generated Verilog, comparing every
// storage element after every instruction. The programs are generated
// serially (one rand stream, so the trial set is reproducible), then the
// six trials run concurrently on the cosim pool — each with its own
// xsim.Simulator and verilog.Sim over the shared parsed Module, which is
// exactly the read-only sharing the pool's safety rests on. Run under
// -race by the CI race job.
func TestGauntletCosim(t *testing.T) {
	d, err := isdl.Parse(gauntletSource)
	if err != nil {
		t.Fatal(err)
	}
	r := synth(t, d, hgen.DefaultOptions())
	mod, err := verilog.Parse(r.VerilogText)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 6
	ops3 := []string{"addc", "subb", "sasr", "scmp", "selp"}
	ops2 := []string{"swap", "sxtb", "half"}
	rnd := rand.New(rand.NewSource(11))
	progs := make([]*asm.Program, trials)
	texts := make([]string, trials)
	for trial := 0; trial < trials; trial++ {
		var lines []string
		for len(lines) < 30 {
			switch rnd.Intn(5) {
			case 0:
				lines = append(lines, fmt.Sprintf("ldi R%d, %d", rnd.Intn(16), rnd.Intn(256)-128))
			case 1:
				op := ops3[rnd.Intn(len(ops3))]
				lines = append(lines, fmt.Sprintf("%s R%d, R%d, R%d", op, rnd.Intn(16), rnd.Intn(16), rnd.Intn(16)))
			case 2:
				op := ops2[rnd.Intn(len(ops2))]
				lines = append(lines, fmt.Sprintf("%s R%d, R%d", op, rnd.Intn(16), rnd.Intn(16)))
			case 3:
				lines = append(lines, fmt.Sprintf("acch R%d", rnd.Intn(16)), fmt.Sprintf("accl R%d", rnd.Intn(16)))
			default:
				lines = append(lines, fmt.Sprintf("mvac R%d", rnd.Intn(16)))
			}
		}
		lines = append(lines, "halt")
		texts[trial] = strings.Join(lines, "\n")
		progs[trial], err = asm.Assemble(d, texts[trial])
		if err != nil {
			t.Fatal(err)
		}
	}

	pool := &cosim.Pool{Workers: runtime.NumCPU()}
	_, err = pool.Run("gauntlet", trials, func(trial int, l *cosim.Lane) error {
		p := progs[trial]
		ils := xsim.New(d)
		if err := ils.Load(p); err != nil {
			return err
		}
		var hw *verilog.Sim
		err := l.Setup(func() error {
			var err error
			hw, err = verilog.NewSim(mod)
			if err != nil {
				return err
			}
			for i, w := range p.Words {
				if err := hw.SetMem("s_IMEM", i, w); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		return l.Sim(func() error {
			for step := 0; !ils.Halted(); step++ {
				if err := ils.Step(); err != nil {
					return fmt.Errorf("trial %d step %d: %v\n%s", trial, step, err, texts[trial])
				}
				ils.FlushPending()
				if err := hw.Tick("clk"); err != nil {
					return fmt.Errorf("trial %d step %d: %v", trial, step, err)
				}
				l.AddCycles(1)
				if err := stateDiff(d, ils, hw); err != nil {
					return fmt.Errorf("trial %d step %d: %v\n%s", trial, step, err, texts[trial])
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGauntletBuiltinsAgainstGo spot-checks a few builtins against direct Go
// arithmetic through the ILS (the co-simulation above then extends the
// check to the hardware model).
func TestGauntletBuiltinsAgainstGo(t *testing.T) {
	d, err := isdl.Parse(gauntletSource)
	if err != nil {
		t.Fatal(err)
	}
	p, err := asm.Assemble(d, `
    ldi R1, -100
    ldi R2, 3
    sasr R3, R1, R2      ; -100 >> 3 = -13
    scmp R4, R1, R2      ; slt sle sgt sge = 1,1,0,0 -> 0b1100
    swap R5, R1          ; 0xff9c -> 0x9cff
    sxtb R6, R5          ; sext(0xff) = 0xffff
    half R7, R2          ; R7[7:0] = 1
    halt
`)
	if err != nil {
		t.Fatal(err)
	}
	sim := xsim.New(d)
	if err := sim.Load(p); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	get := func(i int) uint64 { return sim.State().Get("RF", i).Uint64() }
	if got := sim.State().Get("RF", 3).Int64(); got != -13 {
		t.Errorf("asr: %d, want -13", got)
	}
	if got := get(4); got != 0b1100 {
		t.Errorf("scmp: %#b, want 0b1100", got)
	}
	if got := get(5); got != 0x9cff {
		t.Errorf("swap: %#x", got)
	}
	if got := get(6); got != 0xffff {
		t.Errorf("sxtb: %#x", got)
	}
	if got := get(7); got != 1 {
		t.Errorf("half: %d", got)
	}
}
