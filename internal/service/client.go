// Package service is the Go client for cmd/served's job API: submit an
// evaluation, poll it, fetch the result — and, when the caller traces,
// carry its obs.TraceContext to the daemon and merge the daemon-side
// spans back, so one Chrome trace shows the whole client → queue →
// pipeline-stage → store timeline. docs/SERVICE.md is the wire
// contract; the JSON shapes here mirror cmd/served's statusJSON.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// JobRequest is one evaluation submission: a builtin machine name or
// raw ISDL source (exactly one), plus the kernel.
type JobRequest struct {
	Machine  string `json:"machine,omitempty"`
	ISDL     string `json:"isdl,omitempty"`
	Kernel   string `json:"kernel"`
	Workload string `json:"workload,omitempty"`
}

// JobStatus is the daemon's job-state document. Spans and TraceID ride
// along with a done result when the daemon recorded spans for the job.
type JobStatus struct {
	ID        string           `json:"id,omitempty"`
	Status    string           `json:"status"`
	Error     string           `json:"error,omitempty"`
	Cached    bool             `json:"cached,omitempty"`
	Retryable bool             `json:"retryable,omitempty"`
	Eval      *core.Evaluation `json:"evaluation,omitempty"`
	TraceID   string           `json:"trace_id,omitempty"`
	Spans     []obs.WireSpan   `json:"spans,omitempty"`
}

// ErrRetryable marks a submission the daemon rejected retryably (queue
// full, or draining for shutdown): resubmitting the identical request
// later is safe and cheap.
var ErrRetryable = errors.New("service: retryable rejection")

// ErrNotDone marks a result fetched before the job finished.
var ErrNotDone = errors.New("service: job not done")

// RemoteLaneBase is the lane offset imported daemon spans are shifted
// by, keeping them visually separate from local work in the merged
// trace. Clients that import spans label it via obs.Registry.SetLaneName.
const RemoteLaneBase = 10

// Client talks to one daemon. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client

	mu    sync.Mutex
	trace obs.TraceContext
}

// NewClient returns a client for the daemon at base
// (e.g. "http://build-host:8344"). A trailing slash is tolerated.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimSuffix(base, "/"),
		hc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// Base returns the daemon address the client was built with.
func (c *Client) Base() string { return c.base }

// SetTrace makes every subsequent request carry tc in the X-Repro-Trace
// header. An invalid context clears it.
func (c *Client) SetTrace(tc obs.TraceContext) {
	c.mu.Lock()
	c.trace = tc
	c.mu.Unlock()
}

func (c *Client) do(ctx context.Context, method, path string, body []byte, tc obs.TraceContext) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("service: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if !tc.Valid() {
		c.mu.Lock()
		tc = c.trace
		c.mu.Unlock()
	}
	tc.Inject(req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, fmt.Errorf("service: %s %s: %w", method, path, err)
	}
	return resp.StatusCode, data, nil
}

// Submit enqueues an evaluation. On a retryable rejection the returned
// error wraps ErrRetryable and the status carries the daemon's message;
// tc overrides the client-wide trace context when valid.
func (c *Client) Submit(ctx context.Context, req JobRequest, tc obs.TraceContext) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: encode request: %w", err)
	}
	code, data, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, tc)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("service: submit: bad response (HTTP %d): %w", code, err)
	}
	switch {
	case code == http.StatusAccepted:
		return st, nil
	case st.Retryable:
		return st, fmt.Errorf("%w: %s", ErrRetryable, st.Error)
	default:
		return st, fmt.Errorf("service: submit rejected (HTTP %d): %s", code, st.Error)
	}
}

// Status fetches a job's state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	code, data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, obs.TraceContext{})
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("service: status: bad response (HTTP %d): %w", code, err)
	}
	if code != http.StatusOK {
		return st, fmt.Errorf("service: status %s (HTTP %d): %s", id, code, st.Error)
	}
	return st, nil
}

// Result fetches a finished job's evaluation (and daemon-side spans).
// A job still queued or running reports ErrNotDone; a failed or
// drain-retried job reports its error.
func (c *Client) Result(ctx context.Context, id string) (JobStatus, error) {
	code, data, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, obs.TraceContext{})
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		return JobStatus{}, fmt.Errorf("service: result: bad response (HTTP %d): %w", code, err)
	}
	switch {
	case code == http.StatusOK:
		return st, nil
	case st.Status == "queued" || st.Status == "running":
		return st, fmt.Errorf("%w: %s is %s", ErrNotDone, id, st.Status)
	case st.Retryable:
		return st, fmt.Errorf("%w: %s", ErrRetryable, st.Error)
	default:
		return st, fmt.Errorf("service: job %s: %s: %s", id, st.Status, st.Error)
	}
}

// WaitResult polls until the job leaves the queue and returns its
// result, honoring ctx for cancellation. poll <= 0 means 100ms.
func (c *Client) WaitResult(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Result(ctx, id)
		if !errors.Is(err, ErrNotDone) {
			return st, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// EvaluateTraced runs one evaluation remotely end to end: it opens a
// "submit" span under parent (or as a root when parent is nil), carries
// its context to the daemon, waits for the result, and imports the
// daemon's span subtree — queue wait, the job, its pipeline stages —
// under the submit span at RemoteLaneBase, tagged with the daemon
// address and its trace ID. With a nil registry it is a plain
// submit-and-wait.
func (c *Client) EvaluateTraced(ctx context.Context, req JobRequest, reg *obs.Registry, parent *obs.Span, poll time.Duration) (JobStatus, error) {
	var sub *obs.Span
	if parent != nil {
		sub = parent.Child("submit")
	} else {
		sub = reg.StartSpan("submit")
	}
	sub.SetArg("daemon", c.base)
	defer sub.End()

	tc := sub.Context()
	if !tc.Valid() && reg != nil {
		tc = obs.TraceContext{TraceID: reg.TraceID()}
	}
	st, err := c.Submit(ctx, req, tc)
	if err != nil {
		sub.SetArg("err", err.Error())
		return st, err
	}
	sub.SetArg("job", st.ID)
	st, err = c.WaitResult(ctx, st.ID, poll)
	if err != nil {
		sub.SetArg("err", err.Error())
		return st, err
	}
	if len(st.Spans) > 0 {
		n := reg.ImportSpans(st.Spans, sub, RemoteLaneBase, map[string]string{
			"daemon":       c.base,
			"remote_trace": st.TraceID,
		})
		reg.Counter("service.spans.imported").Add(uint64(n))
	}
	return st, nil
}
