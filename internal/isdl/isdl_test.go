package isdl_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/isdl"
	"repro/internal/machines"
)

func TestParseToy(t *testing.T) {
	d, err := isdl.Parse(machines.ToySource)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "toy" || d.WordWidth != 24 {
		t.Fatalf("header: name=%q width=%d", d.Name, d.WordWidth)
	}
	if len(d.Fields) != 1 {
		t.Fatalf("fields: %d", len(d.Fields))
	}
	if got := len(d.Fields[0].Ops); got != 16 {
		t.Fatalf("ops: %d", got)
	}
	if d.MaxSize() != 1 {
		t.Fatalf("MaxSize: %d", d.MaxSize())
	}
	if d.PC() == nil || d.PC().Name != "PC" {
		t.Fatal("PC not found")
	}
	if d.InstructionMemory() == nil || d.InstructionMemory().Name != "IMEM" {
		t.Fatal("IMEM not found")
	}
	if d.Info["issue_width"] != "1" {
		t.Fatalf("info: %v", d.Info)
	}
	if d.FieldByName("EX") == nil || d.FieldByName("nope") != nil {
		t.Fatal("FieldByName broken")
	}
}

func TestTokenRegSet(t *testing.T) {
	d := machines.Toy()
	gpr := d.Tokens["GPR"]
	if gpr.RetWidth != 3 {
		t.Fatalf("GPR width %d", gpr.RetWidth)
	}
	v, ok := gpr.ValueFor("R5")
	if !ok || v.Uint64() != 5 {
		t.Fatalf("ValueFor(R5) = %v, %v", v, ok)
	}
	for _, bad := range []string{"R8", "R", "R05", "Q3", "R-1", "R55"} {
		if _, ok := gpr.ValueFor(bad); ok {
			t.Errorf("ValueFor(%q) accepted", bad)
		}
	}
	name, ok := gpr.NameFor(bitvec.FromUint64(3, 6))
	if !ok || name != "R6" {
		t.Fatalf("NameFor(6) = %q, %v", name, ok)
	}
}

func TestTokenEnum(t *testing.T) {
	src := header() + `
Token CND enum { "eq" = 0, "ne" = 1, "gt" = 4 };
` + storageAndField()
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cnd := d.Tokens["CND"]
	if cnd.RetWidth != 3 {
		t.Fatalf("enum width %d", cnd.RetWidth)
	}
	v, ok := cnd.ValueFor("gt")
	if !ok || v.Uint64() != 4 {
		t.Fatalf("ValueFor(gt) = %v %v", v, ok)
	}
	if _, ok := cnd.ValueFor("lt"); ok {
		t.Error("ValueFor(lt) accepted")
	}
	if n, ok := cnd.NameFor(bitvec.FromUint64(3, 1)); !ok || n != "ne" {
		t.Errorf("NameFor(1) = %q %v", n, ok)
	}
	if _, ok := cnd.NameFor(bitvec.FromUint64(3, 7)); ok {
		t.Error("NameFor(7) accepted")
	}
}

func TestTokenImmNameFor(t *testing.T) {
	d := machines.Toy()
	imm := d.Tokens["IMM8"]
	if n, ok := imm.NameFor(bitvec.FromInt64(8, -3)); !ok || n != "-3" {
		t.Errorf("signed NameFor(-3) = %q %v", n, ok)
	}
	u := d.Tokens["UIMM8"]
	if n, ok := u.NameFor(bitvec.FromUint64(8, 200)); !ok || n != "200" {
		t.Errorf("unsigned NameFor(200) = %q %v", n, ok)
	}
}

func TestSignatureShape(t *testing.T) {
	d := machines.Toy()
	add := d.Fields[0].ByName["add"]
	if got := add.Sig.String(); got != "0000aaabbbxxxxxccccccccc" {
		t.Fatalf("add signature %q", got)
	}
	// Constant-part matching.
	word, _ := bitvec.ParseBits("000010101100000000000101")
	if !add.Sig.Match(word) {
		t.Fatal("add should match its own opcode")
	}
	sub := d.Fields[0].ByName["sub"]
	if sub.Sig.Match(word) {
		t.Fatal("sub must not match an add word")
	}
	// Parameter extraction reverses the encoding.
	if got := add.Sig.Extract(0, 3, word).Uint64(); got != 5 {
		t.Fatalf("extract d = %d, want 5", got)
	}
	if got := add.Sig.Extract(1, 3, word).Uint64(); got != 3 {
		t.Fatalf("extract a = %d, want 3", got)
	}
	if got := add.Sig.Extract(2, 9, word).Uint64(); got != 5 {
		t.Fatalf("extract s = %d, want 5", got)
	}
}

func TestSignatureConstMask(t *testing.T) {
	d := machines.Toy()
	nopSig := d.Fields[0].ByName["nop"].Sig
	mask, val := nopSig.ConstMask()
	if mask.Uint64() != 0xf00000 {
		t.Fatalf("mask %x", mask.Uint64())
	}
	if val.Uint64() != 0xf00000 {
		t.Fatalf("val %x", val.Uint64())
	}
}

func TestConstraintEval(t *testing.T) {
	src := header() + storageOnly() + `
Section Instruction_Set
Field A:
  op x Encode { I[7:7] = 0b0; } Action { ACC <- ACC; }
  op anop Encode { I[7:7] = 0b1; }
Field B:
  op y Encode { I[6:6] = 0b0; } Action { ACC <- ACC; }
  op bnop Encode { I[6:6] = 0b1; }

Section Constraints
never A.x & B.y;
constraint B.y -> A.anop;
`
	d, err := isdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Constraints) != 2 {
		t.Fatalf("constraints: %d", len(d.Constraints))
	}
	ax := d.Fields[0].ByName["x"]
	an := d.Fields[0].ByName["anop"]
	by := d.Fields[1].ByName["y"]
	sel := func(ops ...*isdl.Operation) map[*isdl.Operation]bool {
		m := map[*isdl.Operation]bool{}
		for _, o := range ops {
			m[o] = true
		}
		return m
	}
	if d.Constraints[0].Eval(sel(ax, by)) {
		t.Error("never A.x & B.y should fail when both selected")
	}
	if !d.Constraints[0].Eval(sel(ax)) {
		t.Error("constraint should pass with only A.x")
	}
	if !d.Constraints[1].Eval(sel(an, by)) {
		t.Error("B.y -> A.anop should pass")
	}
	if d.Constraints[1].Eval(sel(ax, by)) {
		t.Error("B.y -> A.anop should fail with A.x")
	}
}

// --- error-path tests -------------------------------------------------------

// header returns a minimal valid prologue.
func header() string {
	return "Machine t;\nFormat 8;\nSection Global_Definitions\n"
}

func storageOnly() string {
	return `
Section Storage
InstructionMemory IMEM width 8 depth 16;
Register ACC width 8;
ProgramCounter PC width 4;
`
}

func storageAndField() string {
	return storageOnly() + `
Section Instruction_Set
Field F:
  op nop Encode { I[7:7] = 0b0; }
`
}

func expectErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := isdl.Parse(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got success", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err.Error(), want)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing format", "Machine m;\nSection Storage\n", "Format"},
		{"unknown section", header() + "Section Bogus\n", "unknown section"},
		{"dup token", header() + "Token A \"R\" [0..1];\nToken A \"Q\" [0..1];\n" + storageAndField(), "duplicate token"},
		{"empty regset range", header() + "Token A \"R\" [5..2];\n" + storageAndField(), "empty range"},
		{"no pc", header() + "Section Storage\nInstructionMemory IMEM width 8 depth 16;\nRegister ACC width 8;\nSection Instruction_Set\nField F:\n op nop Encode { I[0:0] = 0b0; }\n", "ProgramCounter"},
		{"no imem", header() + "Section Storage\nRegister ACC width 8;\nProgramCounter PC width 4;\nSection Instruction_Set\nField F:\n op nop Encode { I[0:0] = 0b0; }\n", "InstructionMemory"},
		{"depth on register", header() + "Section Storage\nInstructionMemory IMEM width 8 depth 16;\nRegister ACC width 8 depth 2;\nProgramCounter PC width 4;\n", "cannot have a depth"},
		{"alias unknown", header() + storageOnly() + "Alias Z = NOPE;\nSection Instruction_Set\nField F:\n op nop Encode { I[0:0] = 0b0; }\n", "unknown storage"},
		{"alias bad slice", header() + storageOnly() + "Alias Z = ACC[9:0];\nSection Instruction_Set\nField F:\n op nop Encode { I[0:0] = 0b0; }\n", "exceeds width"},
		{"overlap bits", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[3:0] = 0x1; I[2:1] = 0b00; }\n", "assigned more than once"},
		{"bits out of range", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[8:5] = 0x1; }\n", "exceeds destination width"},
		{"unencoded param", header() + "Token GPR \"R\" [0..3];\n" + storageOnly() + "Section Instruction_Set\nField F:\n op a (r: GPR) Encode { I[0:0] = 0b1; } Action { ACC <- ACC; }\n", "never encoded"},
		{"ambiguous ops", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; }\n op b Encode { I[1:1] = 0b1; }\n", "not distinguishable"},
		{"unsized const", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[3:0] = 3; }\n", "must be sized"},
		{"const width mismatch", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[3:0] = 0b011; }\n", "does not match bitfield width"},
		{"unknown name in action", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- BOGUS; }\n", "unknown name"},
		{"assign width mismatch", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- PC; }\n", "width mismatch"},
		{"assign to token", header() + "Token GPR \"R\" [0..3];\n" + storageOnly() + "Section Instruction_Set\nField F:\n op a (r: GPR) Encode { I[0:0] = 0b1; I[2:1] = r; } Action { r <- ACC; }\n", "not assignable"},
		{"recursive nt", header() + "Non_Terminal N width 2 :\n option (x: N) Encode { R[1:0] = x; } Value { x }\n;\n" + storageAndField(), "recursively defined"},
		{"nt missing value", header() + "Token GPR \"R\" [0..3];\nNon_Terminal N width 2 :\n option (r: GPR) Encode { R[1:0] = r; }\n;\n" + storageAndField(), "missing Value"},
		{"nt value width disagrees", header() + "Token GPR \"R\" [0..3];\nNon_Terminal N width 3 :\n option (r: GPR) Encode { R[2] = 0b0; R[1:0] = r; } Value { r }\n option \"#\" (r: GPR) Encode { R[2] = 0b1; R[1:0] = r; } Value { zext(r, 4) }\n;\n" + storageAndField(), "differs"},
		{"bad constraint op", header() + storageAndField() + "Section Constraints\nnever F.bogus;\n", "unknown operation"},
		{"bad constraint field", header() + storageAndField() + "Section Constraints\nnever G.nop;\n", "unknown field"},
		{"push to non-stack", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { push(ACC, 0b00000001); }\n", "not a Stack"},
		{"unknown builtin", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- frobnicate(ACC); }\n", "unknown builtin"},
		{"index non-addressed", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- ACC[PC]; }\n", "not addressed"},
		{"addressed without index", header() + storageOnly() + "DataMemory D width 8 depth 4;\nSection Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- D; }\n", "addressed storage"},
		{"slice out of range", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- zext(ACC[9:0], 8); }\n", "exceeds"},
		{"literal too big", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Action { ACC <- 4096; }\n", "does not fit"},
		{"cycle zero", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; } Cost { Cycle = 0; }\n", "at least 1"},
		{"unterminated comment", header() + "/* oops", "unterminated"},
		{"unterminated string", header() + "Token A \"R [0..1];\n", "unterminated string"},
		{"empty field", header() + storageOnly() + "Section Instruction_Set\nField F:\n", "no operations"},
		{"dup op", header() + storageOnly() + "Section Instruction_Set\nField F:\n op a Encode { I[0:0] = 0b1; }\n op a Encode { I[0:0] = 0b0; }\n", "duplicate operation"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { expectErr(t, c.src, c.want) })
	}
}

func TestAliasResolution(t *testing.T) {
	d := machines.Toy()
	a := d.AliasByName("CARRY")
	if a == nil || !a.Sliced || a.Hi != 0 || a.Lo != 0 {
		t.Fatalf("CARRY alias: %+v", a)
	}
	if w := d.AliasWidth(a); w != 1 {
		t.Fatalf("CARRY width %d", w)
	}
	rz := d.AliasByName("RZ")
	if rz == nil || !rz.Indexed || rz.Index != 0 || rz.Sliced {
		t.Fatalf("RZ alias: %+v", rz)
	}
	if w := d.AliasWidth(rz); w != 8 {
		t.Fatalf("RZ width %d", w)
	}
}

func TestOperationDefaults(t *testing.T) {
	d := machines.Toy()
	nop := d.Fields[0].ByName["nop"]
	if nop.Costs.Cycle != 1 || nop.Costs.Size != 1 || nop.Timing.Latency != 1 || nop.Timing.Usage != 1 {
		t.Fatalf("defaults: %+v %+v", nop.Costs, nop.Timing)
	}
	mul := d.Fields[0].ByName["mul"]
	if mul.Costs.Stall != 2 || mul.Timing.Latency != 3 {
		t.Fatalf("mul costs: %+v %+v", mul.Costs, mul.Timing)
	}
	if mul.QualName() != "EX.mul" {
		t.Fatalf("QualName: %s", mul.QualName())
	}
}

func TestRTLStringer(t *testing.T) {
	d := machines.Toy()
	beq := d.Fields[0].ByName["beq"]
	s := beq.Action[0].String()
	if !strings.Contains(s, "if") || !strings.Contains(s, "PC <- t") {
		t.Fatalf("beq action rendered as %q", s)
	}
}

func TestWalkExprs(t *testing.T) {
	d := machines.Toy()
	add := d.Fields[0].ByName["add"]
	var count int
	isdl.WalkExprs(add.Action, func(isdl.Expr) { count++ })
	// RF[d] <- RF[a] + s: Index(LHS) + its Idx Ref, Binary, Index(RHS) + its
	// Idx Ref, Ref(s) = 6 nodes.
	if count != 6 {
		t.Fatalf("walk visited %d nodes, want 6", count)
	}
}

// TestFormatRoundTrip: Format output re-parses, and Format∘Parse is a
// fixpoint — the property the exploration driver relies on to materialize
// mutated candidates.
func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{machines.ToySource, machines.SPAMSource, machines.SPAM2Source} {
		d, err := isdl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text1 := isdl.Format(d)
		d2, err := isdl.Parse(text1)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%s", err, text1)
		}
		text2 := isdl.Format(d2)
		if text1 != text2 {
			t.Fatalf("Format∘Parse is not a fixpoint for %s", d.Name)
		}
		// Semantic spot checks survive the round trip.
		if len(d2.Fields) != len(d.Fields) || len(d2.Constraints) != len(d.Constraints) {
			t.Fatalf("%s: structure changed across round trip", d.Name)
		}
		for i, f := range d.Fields {
			if len(d2.Fields[i].Ops) != len(f.Ops) {
				t.Fatalf("%s: field %s op count changed", d.Name, f.Name)
			}
			for j, op := range f.Ops {
				if d2.Fields[i].Ops[j].Sig.String() != op.Sig.String() {
					t.Fatalf("%s: %s signature changed across round trip", d.Name, op.QualName())
				}
			}
		}
	}
}

// TestSignatureExtractInverseQuick is a testing/quick property on the core
// signature machinery: for random register/immediate operands, applying the
// toy add encoding and extracting through the signature recovers the exact
// parameter values (the invertibility Axiom 1 guarantees).
func TestSignatureExtractInverseQuick(t *testing.T) {
	d := machines.Toy()
	add := d.Fields[0].ByName["add"]
	f := func(dv, av uint8, imm int8) bool {
		dr := uint64(dv % 8)
		ar := uint64(av % 8)
		// Build the instruction word by hand from the known layout:
		// opcode 0, d [19:17], a [16:14], s = immediate option {1, imm}.
		word := bitvec.New(24)
		word = word.Or(bitvec.FromUint64(24, dr<<17))
		word = word.Or(bitvec.FromUint64(24, ar<<14))
		sval := uint64(0x100) | uint64(uint8(imm))
		word = word.Or(bitvec.FromUint64(24, sval))
		if !add.Sig.Match(word) {
			return false
		}
		if add.Sig.Extract(0, 3, word).Uint64() != dr {
			return false
		}
		if add.Sig.Extract(1, 3, word).Uint64() != ar {
			return false
		}
		ret := add.Sig.Extract(2, 9, word)
		opt, sub, err := func() (*isdl.Option, []interface{}, error) {
			o, s, e := decodeNT(d, ret)
			return o, s, e
		}()
		_ = sub
		if err != nil || opt.Index != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// decodeNT adapts the decode package's recursive option decode without
// importing it (isdl tests stay below decode in the dependency order):
// match each option's signature and verify the immediate round-trips.
func decodeNT(d *isdl.Description, ret bitvec.Value) (*isdl.Option, []interface{}, error) {
	nt := d.NonTerminals["SRC"]
	for _, opt := range nt.Options {
		if opt.Sig.Match(ret) {
			return opt, nil, nil
		}
	}
	return nil, nil, errNoOption
}

var errNoOption = fmt.Errorf("no option matched")
